// Public facade of the library: one header that exposes the full
// pipeline — assemble, simulate, analyze, validate — for examples,
// benchmarks and downstream users.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "isa/assembler.hpp"
#include "isa/disasm.hpp"
#include "isa/image.hpp"
#include "mem/hwmodel.hpp"
#include "sim/simulator.hpp"
#include "wcet/analyzer.hpp"

namespace wcet {

// Assemble + analyze in one step (convenience for small tasks).
WcetReport analyze_source(std::string_view asm_source, const mem::HwConfig& hw,
                          const std::string& annotations = "",
                          const AnalysisOptions& options = {});

// Outcome of checking a static bound against an observed execution.
struct BoundCheck {
  bool analysis_ok = false;
  bool run_completed = false;
  std::uint64_t observed_cycles = 0;
  std::uint64_t wcet_bound = 0;
  std::uint64_t bcet_bound = 0;

  bool sound() const {
    return analysis_ok && run_completed && bcet_bound <= observed_cycles &&
           observed_cycles <= wcet_bound;
  }
  // WCET over-estimation factor against this particular observation.
  double wcet_ratio() const {
    return observed_cycles == 0 ? 0.0
                                : static_cast<double>(wcet_bound) /
                                      static_cast<double>(observed_cycles);
  }
};

// Run one simulation and compare against the statically computed bounds.
BoundCheck check_bounds(const isa::Image& image, const mem::HwConfig& hw,
                        const WcetReport& report, sim::Simulator& sim);

} // namespace wcet
