#include "core/toolkit.hpp"

namespace wcet {

WcetReport analyze_source(std::string_view asm_source, const mem::HwConfig& hw,
                          const std::string& annotations,
                          const AnalysisOptions& options) {
  const isa::Image image = isa::assemble(asm_source);
  const Analyzer analyzer(image, hw, annotations);
  return analyzer.analyze(options);
}

BoundCheck check_bounds(const isa::Image& image, const mem::HwConfig& hw,
                        const WcetReport& report, sim::Simulator& sim) {
  (void)image;
  (void)hw;
  BoundCheck check;
  check.analysis_ok = report.ok;
  check.wcet_bound = report.wcet_cycles;
  check.bcet_bound = report.bcet_cycles;
  const sim::SimResult run = sim.run();
  check.run_completed = run.completed();
  check.observed_cycles = run.cycles;
  return check;
}

} // namespace wcet
