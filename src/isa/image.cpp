#include "isa/image.hpp"

#include <algorithm>
#include <sstream>

#include "support/diag.hpp"

namespace wcet::isa {

void Image::add_section(Section section) {
  for (const auto& existing : sections_) {
    const bool overlaps =
        section.vaddr < existing.end() && existing.vaddr < section.end();
    if (overlaps && !section.bytes.empty() && !existing.bytes.empty()) {
      throw InputError("section '" + section.name + "' overlaps '" + existing.name + "'");
    }
  }
  sections_.push_back(std::move(section));
}

void Image::add_symbol(Symbol symbol) { symbols_.push_back(std::move(symbol)); }

const Section* Image::section_at(std::uint32_t addr) const {
  for (const auto& s : sections_) {
    if (s.contains(addr)) return &s;
  }
  return nullptr;
}

const Symbol* Image::find_symbol(const std::string& name) const {
  for (const auto& s : symbols_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const Symbol* Image::symbol_covering(std::uint32_t addr) const {
  const Symbol* best = nullptr;
  for (const auto& s : symbols_) {
    const std::uint32_t size = std::max<std::uint32_t>(s.size, 1);
    if (addr < s.addr || addr >= s.addr + size) continue;
    if (best == nullptr || s.addr > best->addr ||
        (s.addr == best->addr && s.kind == Symbol::Kind::function)) {
      best = &s;
    }
  }
  return best;
}

std::string Image::describe(std::uint32_t addr) const {
  std::ostringstream os;
  if (const Symbol* sym = symbol_covering(addr)) {
    os << sym->name;
    if (addr != sym->addr) os << "+0x" << std::hex << (addr - sym->addr);
    return os.str();
  }
  os << "0x" << std::hex << addr;
  return os.str();
}

std::optional<std::uint32_t> Image::read_word(std::uint32_t addr) const {
  const Section* s = section_at(addr);
  if (s == nullptr || addr + 3 >= s->end() + (addr + 3 < addr ? 0u : 0u) ||
      !s->contains(addr + 3)) {
    return std::nullopt;
  }
  const std::size_t off = addr - s->vaddr;
  return static_cast<std::uint32_t>(s->bytes[off]) |
         (static_cast<std::uint32_t>(s->bytes[off + 1]) << 8) |
         (static_cast<std::uint32_t>(s->bytes[off + 2]) << 16) |
         (static_cast<std::uint32_t>(s->bytes[off + 3]) << 24);
}

std::optional<std::uint8_t> Image::read_byte(std::uint32_t addr) const {
  const Section* s = section_at(addr);
  if (s == nullptr) return std::nullopt;
  return s->bytes[addr - s->vaddr];
}

} // namespace wcet::isa
