// tiny32: the 32-bit RISC target ISA of this repository.
//
// The paper analyzes binary executables (PowerPC, HCS12X, LEON2). To
// reproduce its phenomena on a fully inspectable substrate we define a
// small load/store architecture with the features the paper's challenges
// require: indirect jumps and calls (function pointers, jump tables,
// returns), conditional branches with signed/unsigned predicates,
// predicated moves (the single-path discussion in Section 2), and
// multiply/divide units.
//
// Encoding: fixed 32-bit words, little-endian memory.
//   [31:24] opcode
//   [23:20] field1   (rd; rs1 for branches)
//   [19:16] field2   (rs1; rs2 for branches)
//   [15:12] field3   (rs2, R-format)
//   [15:0]  imm16    (I/B-format; branch offsets are signed word counts)
//   [19:0]  imm20    (J-format, signed word count)
//
// Registers: r0 hardwired to zero. ABI: r1..r4 = a0..a3 (arguments and
// return value a0), r5..r7 = t0..t2 (caller-saved temps), r8..r12 =
// s0..s4 (callee-saved), r13 = fp, r14 = sp, r15 = ra.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "support/interval.hpp"

namespace wcet::isa {

inline constexpr int num_registers = 16;
inline constexpr std::uint8_t reg_zero = 0;
inline constexpr std::uint8_t reg_a0 = 1;
inline constexpr std::uint8_t reg_a1 = 2;
inline constexpr std::uint8_t reg_a2 = 3;
inline constexpr std::uint8_t reg_a3 = 4;
inline constexpr std::uint8_t reg_t0 = 5;
inline constexpr std::uint8_t reg_t1 = 6;
inline constexpr std::uint8_t reg_t2 = 7;
inline constexpr std::uint8_t reg_s0 = 8;
inline constexpr std::uint8_t reg_fp = 13;
inline constexpr std::uint8_t reg_sp = 14;
inline constexpr std::uint8_t reg_ra = 15;

enum class Opcode : std::uint8_t {
  // R-format ALU.
  add, sub, and_, or_, xor_, sll, srl, sra, slt, sltu,
  mul, mulhu, divu, remu, div_, rem_,
  // Predicated moves: cmovz rd, rs1, rs2 — rd := rs1 if rs2 == 0.
  cmovz, cmovnz,
  // I-format ALU. Logical immediates are zero-extended, arithmetic
  // immediates sign-extended, shift immediates use the low 5 bits.
  addi, andi, ori, xori, slli, srli, srai, slti, sltiu,
  lui, // rd := imm16 << 16
  // Memory (I-format): address = rs1 + sign-extended imm16.
  lw, lh, lhu, lb, lbu, sw, sh, sb,
  // B-format conditional branches: target = pc + 4 + imm16*4.
  beq, bne, blt, bge, bltu, bgeu,
  // Jumps.
  jal,  // J-format: rd := pc+4; pc := pc + 4 + imm20*4
  jalr, // I-format: rd := pc+4; pc := (rs1 + imm16) & ~3
  // System.
  ecall, // environment call; function code in a0 (see EcallFn)
  halt,  // stop the machine
};

inline constexpr int num_opcodes = static_cast<int>(Opcode::halt) + 1;

// Environment-call function codes (in a0 at the ecall).
enum class EcallFn : std::uint32_t {
  exit = 0,    // a1 = exit code
  putchar = 1, // a1 = character
};

enum class Format { r, i, b, j, sys };

Format format_of(Opcode op);
const char* mnemonic(Opcode op);
std::optional<Opcode> opcode_from_mnemonic(const std::string& name);

// Decoded instruction. `imm` is the sign/zero-extended immediate with
// branch/jump immediates already scaled to *byte* offsets.
struct Inst {
  Opcode op = Opcode::halt;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int64_t imm = 0;

  bool is_conditional_branch() const;
  bool is_direct_jump() const { return op == Opcode::jal; }
  bool is_indirect_jump() const { return op == Opcode::jalr; }
  bool is_call() const; // jal/jalr with rd == ra
  bool is_return() const; // jalr r0, ra, 0
  bool is_load() const;
  bool is_store() const;
  bool is_mem_access() const { return is_load() || is_store(); }
  int access_size() const; // bytes, for loads/stores
  bool writes_rd() const;  // instruction defines rd
  bool ends_basic_block() const;

  // Predicate of a conditional branch (taken condition, rs1 pred rs2).
  Pred branch_pred() const;

  // Branch/jump target for pc-relative transfers.
  std::uint32_t target(std::uint32_t pc) const {
    return static_cast<std::uint32_t>(static_cast<std::int64_t>(pc) + 4 + imm);
  }
};

// Encode/decode. decode returns nullopt for invalid opcodes; operand
// fields of unused slots are ignored on decode and must be zero on
// encode (the assembler guarantees this).
std::uint32_t encode(const Inst& inst);
std::optional<Inst> decode(std::uint32_t word);

// Register name helpers ("r4"/"a3"/"sp"...).
std::string reg_name(std::uint8_t reg);
std::optional<std::uint8_t> reg_from_name(const std::string& name);

} // namespace wcet::isa
