#include "isa/tiny32.hpp"

#include <array>
#include <unordered_map>

#include "support/diag.hpp"

namespace wcet::isa {

namespace {

struct OpInfo {
  const char* name;
  Format format;
};

const std::array<OpInfo, num_opcodes>& op_table() {
  static const std::array<OpInfo, num_opcodes> table = {{
      {"add", Format::r},   {"sub", Format::r},   {"and", Format::r},
      {"or", Format::r},    {"xor", Format::r},   {"sll", Format::r},
      {"srl", Format::r},   {"sra", Format::r},   {"slt", Format::r},
      {"sltu", Format::r},  {"mul", Format::r},   {"mulhu", Format::r},
      {"divu", Format::r},  {"remu", Format::r},  {"div", Format::r},
      {"rem", Format::r},   {"cmovz", Format::r}, {"cmovnz", Format::r},
      {"addi", Format::i},  {"andi", Format::i},  {"ori", Format::i},
      {"xori", Format::i},  {"slli", Format::i},  {"srli", Format::i},
      {"srai", Format::i},  {"slti", Format::i},  {"sltiu", Format::i},
      {"lui", Format::i},   {"lw", Format::i},    {"lh", Format::i},
      {"lhu", Format::i},   {"lb", Format::i},    {"lbu", Format::i},
      {"sw", Format::i},    {"sh", Format::i},    {"sb", Format::i},
      {"beq", Format::b},   {"bne", Format::b},   {"blt", Format::b},
      {"bge", Format::b},   {"bltu", Format::b},  {"bgeu", Format::b},
      {"jal", Format::j},   {"jalr", Format::i},  {"ecall", Format::sys},
      {"halt", Format::sys},
  }};
  return table;
}

bool imm_is_signed(Opcode op) {
  switch (op) {
  case Opcode::andi:
  case Opcode::ori:
  case Opcode::xori:
  case Opcode::slli:
  case Opcode::srli:
  case Opcode::srai:
  case Opcode::sltiu:
  case Opcode::lui:
    return false;
  default:
    return true;
  }
}

} // namespace

Format format_of(Opcode op) { return op_table()[static_cast<std::size_t>(op)].format; }

const char* mnemonic(Opcode op) { return op_table()[static_cast<std::size_t>(op)].name; }

std::optional<Opcode> opcode_from_mnemonic(const std::string& name) {
  static const auto map = [] {
    std::unordered_map<std::string, Opcode> m;
    for (int i = 0; i < num_opcodes; ++i) {
      m.emplace(op_table()[static_cast<std::size_t>(i)].name, static_cast<Opcode>(i));
    }
    return m;
  }();
  const auto it = map.find(name);
  if (it == map.end()) return std::nullopt;
  return it->second;
}

bool Inst::is_conditional_branch() const {
  switch (op) {
  case Opcode::beq:
  case Opcode::bne:
  case Opcode::blt:
  case Opcode::bge:
  case Opcode::bltu:
  case Opcode::bgeu:
    return true;
  default:
    return false;
  }
}

bool Inst::is_call() const {
  return (op == Opcode::jal || op == Opcode::jalr) && rd == reg_ra;
}

bool Inst::is_return() const {
  return op == Opcode::jalr && rd == reg_zero && rs1 == reg_ra && imm == 0;
}

bool Inst::is_load() const {
  switch (op) {
  case Opcode::lw:
  case Opcode::lh:
  case Opcode::lhu:
  case Opcode::lb:
  case Opcode::lbu:
    return true;
  default:
    return false;
  }
}

bool Inst::is_store() const {
  switch (op) {
  case Opcode::sw:
  case Opcode::sh:
  case Opcode::sb:
    return true;
  default:
    return false;
  }
}

int Inst::access_size() const {
  switch (op) {
  case Opcode::lw:
  case Opcode::sw:
    return 4;
  case Opcode::lh:
  case Opcode::lhu:
  case Opcode::sh:
    return 2;
  case Opcode::lb:
  case Opcode::lbu:
  case Opcode::sb:
    return 1;
  default:
    return 0;
  }
}

bool Inst::writes_rd() const {
  if (is_store() || is_conditional_branch()) return false;
  switch (op) {
  case Opcode::ecall:
  case Opcode::halt:
    return false;
  default:
    return rd != reg_zero;
  }
}

bool Inst::ends_basic_block() const {
  // ecall terminates a block because the exit environment call leaves
  // the task mid-stream; modeling it as a terminator keeps BCET sound.
  return is_conditional_branch() || op == Opcode::jal || op == Opcode::jalr ||
         op == Opcode::halt || op == Opcode::ecall;
}

Pred Inst::branch_pred() const {
  switch (op) {
  case Opcode::beq: return Pred::eq;
  case Opcode::bne: return Pred::ne;
  case Opcode::blt: return Pred::lt_s;
  case Opcode::bge: return Pred::ge_s;
  case Opcode::bltu: return Pred::lt_u;
  case Opcode::bgeu: return Pred::ge_u;
  default:
    internal_fail(__FILE__, __LINE__, "branch_pred on non-branch");
  }
}

std::uint32_t encode(const Inst& inst) {
  const std::uint32_t op = static_cast<std::uint32_t>(inst.op) << 24;
  const auto f1 = [&](std::uint8_t r) { return static_cast<std::uint32_t>(r & 0xF) << 20; };
  const auto f2 = [&](std::uint8_t r) { return static_cast<std::uint32_t>(r & 0xF) << 16; };
  const auto f3 = [&](std::uint8_t r) { return static_cast<std::uint32_t>(r & 0xF) << 12; };
  switch (format_of(inst.op)) {
  case Format::r:
    return op | f1(inst.rd) | f2(inst.rs1) | f3(inst.rs2);
  case Format::i: {
    std::int64_t imm = inst.imm;
    WCET_CHECK(imm >= -0x8000 && imm <= 0xFFFF, "imm16 out of range for " +
                                                    std::string(mnemonic(inst.op)));
    return op | f1(inst.rd) | f2(inst.rs1) | (static_cast<std::uint32_t>(imm) & 0xFFFF);
  }
  case Format::b: {
    WCET_CHECK(inst.imm % 4 == 0, "branch offset not word aligned");
    const std::int64_t words = inst.imm / 4;
    WCET_CHECK(words >= -0x8000 && words <= 0x7FFF, "branch offset out of range");
    return op | f1(inst.rs1) | f2(inst.rs2) | (static_cast<std::uint32_t>(words) & 0xFFFF);
  }
  case Format::j: {
    WCET_CHECK(inst.imm % 4 == 0, "jump offset not word aligned");
    const std::int64_t words = inst.imm / 4;
    WCET_CHECK(words >= -0x80000 && words <= 0x7FFFF, "jump offset out of range");
    return op | f1(inst.rd) | (static_cast<std::uint32_t>(words) & 0xFFFFF);
  }
  case Format::sys:
    return op;
  }
  internal_fail(__FILE__, __LINE__, "bad format");
}

std::optional<Inst> decode(std::uint32_t word) {
  const std::uint32_t opbits = word >> 24;
  if (opbits >= static_cast<std::uint32_t>(num_opcodes)) return std::nullopt;
  Inst inst;
  inst.op = static_cast<Opcode>(opbits);
  const auto f1 = static_cast<std::uint8_t>((word >> 20) & 0xF);
  const auto f2 = static_cast<std::uint8_t>((word >> 16) & 0xF);
  const auto f3 = static_cast<std::uint8_t>((word >> 12) & 0xF);
  const auto imm16 = static_cast<std::uint32_t>(word & 0xFFFF);
  switch (format_of(inst.op)) {
  case Format::r:
    inst.rd = f1;
    inst.rs1 = f2;
    inst.rs2 = f3;
    break;
  case Format::i:
    inst.rd = f1;
    inst.rs1 = f2;
    inst.imm = imm_is_signed(inst.op) ? static_cast<std::int16_t>(imm16)
                                      : static_cast<std::int64_t>(imm16);
    break;
  case Format::b:
    inst.rs1 = f1;
    inst.rs2 = f2;
    inst.imm = static_cast<std::int64_t>(static_cast<std::int16_t>(imm16)) * 4;
    break;
  case Format::j: {
    inst.rd = f1;
    std::int64_t words = static_cast<std::int64_t>(word & 0xFFFFF);
    if (words & 0x80000) words -= 0x100000;
    inst.imm = words * 4;
    break;
  }
  case Format::sys:
    break;
  }
  return inst;
}

std::string reg_name(std::uint8_t reg) {
  static const char* names[num_registers] = {
      "zero", "a0", "a1", "a2", "a3", "t0", "t1", "t2",
      "s0",   "s1", "s2", "s3", "s4", "fp", "sp", "ra"};
  WCET_CHECK(reg < num_registers, "register out of range");
  return names[reg];
}

std::optional<std::uint8_t> reg_from_name(const std::string& name) {
  static const auto map = [] {
    std::unordered_map<std::string, std::uint8_t> m;
    for (std::uint8_t r = 0; r < num_registers; ++r) {
      m.emplace(reg_name(r), r);
      m.emplace("r" + std::to_string(r), r);
    }
    return m;
  }();
  const auto it = map.find(name);
  if (it == map.end()) return std::nullopt;
  return it->second;
}

} // namespace wcet::isa
