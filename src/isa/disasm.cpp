#include "isa/disasm.hpp"

#include <iomanip>
#include <sstream>

namespace wcet::isa {

namespace {

std::string target_text(std::uint32_t target, const Image* image) {
  std::ostringstream os;
  if (image != nullptr) {
    return image->describe(target);
  }
  os << "0x" << std::hex << target;
  return os.str();
}

} // namespace

std::string disassemble(const Inst& inst, std::uint32_t pc, const Image* image) {
  std::ostringstream os;
  os << mnemonic(inst.op);
  switch (format_of(inst.op)) {
  case Format::r:
    os << ' ' << reg_name(inst.rd) << ", " << reg_name(inst.rs1) << ", "
       << reg_name(inst.rs2);
    break;
  case Format::i:
    if (inst.is_load() || inst.is_store()) {
      os << ' ' << reg_name(inst.rd) << ", " << inst.imm << '(' << reg_name(inst.rs1) << ')';
    } else if (inst.op == Opcode::lui) {
      os << ' ' << reg_name(inst.rd) << ", 0x" << std::hex << inst.imm;
    } else if (inst.op == Opcode::jalr) {
      os << ' ' << reg_name(inst.rd) << ", " << reg_name(inst.rs1) << ", " << inst.imm;
    } else {
      os << ' ' << reg_name(inst.rd) << ", " << reg_name(inst.rs1) << ", " << inst.imm;
    }
    break;
  case Format::b:
    os << ' ' << reg_name(inst.rs1) << ", " << reg_name(inst.rs2) << ", "
       << target_text(inst.target(pc), image);
    break;
  case Format::j:
    os << ' ' << reg_name(inst.rd) << ", " << target_text(inst.target(pc), image);
    break;
  case Format::sys:
    break;
  }
  return os.str();
}

std::string disassemble_range(const Image& image, std::uint32_t begin, std::uint32_t end) {
  std::ostringstream os;
  for (std::uint32_t pc = begin; pc < end; pc += 4) {
    const auto word = image.read_word(pc);
    os << std::setw(8) << std::setfill('0') << std::hex << pc << "  ";
    if (!word) {
      os << "<unmapped>\n";
      continue;
    }
    const auto inst = decode(*word);
    if (!inst) {
      os << ".word 0x" << std::hex << *word << '\n';
      continue;
    }
    os << disassemble(*inst, pc, &image) << '\n';
  }
  return os.str();
}

} // namespace wcet::isa
