// Disassembler: renders decoded instructions for reports and debugging.
#pragma once

#include <cstdint>
#include <string>

#include "isa/image.hpp"
#include "isa/tiny32.hpp"

namespace wcet::isa {

// Render one instruction. `pc` is needed for pc-relative targets; if an
// image is given, targets are symbolized ("beq a0, zero, loop+0x8").
std::string disassemble(const Inst& inst, std::uint32_t pc, const Image* image = nullptr);

// Disassemble a [begin, end) address range of an image, one line per
// instruction ("00001004  addi sp, sp, -16").
std::string disassemble_range(const Image& image, std::uint32_t begin, std::uint32_t end);

} // namespace wcet::isa
