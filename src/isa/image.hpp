// Executable image: the unit the analyzer and the simulators consume.
// Models a fully linked embedded binary — sections placed at absolute
// addresses, a symbol table, and one or more task entry points (the
// paper, footnote 3: "a task (usually) corresponds to a specific entry
// point of the analyzed binary executable").
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace wcet::isa {

struct Section {
  std::string name;
  std::uint32_t vaddr = 0;
  std::vector<std::uint8_t> bytes;
  bool writable = false;
  bool executable = false;

  std::uint32_t end() const { return vaddr + static_cast<std::uint32_t>(bytes.size()); }
  bool contains(std::uint32_t addr) const { return addr >= vaddr && addr < end(); }
};

struct Symbol {
  enum class Kind { function, object, label };
  std::string name;
  std::uint32_t addr = 0;
  std::uint32_t size = 0;
  Kind kind = Kind::label;
};

class Image {
public:
  void add_section(Section section);
  void add_symbol(Symbol symbol);
  void set_entry(std::uint32_t addr) { entry_ = addr; }

  std::uint32_t entry() const { return entry_; }
  std::span<const Section> sections() const { return sections_; }
  std::span<const Symbol> symbols() const { return symbols_; }

  const Section* section_at(std::uint32_t addr) const;
  const Symbol* find_symbol(const std::string& name) const;
  // Innermost symbol covering `addr` (functions preferred over labels).
  const Symbol* symbol_covering(std::uint32_t addr) const;
  // Name for an address: "func", "func+0x12", or "0x...." if unknown.
  std::string describe(std::uint32_t addr) const;

  std::optional<std::uint32_t> read_word(std::uint32_t addr) const;
  std::optional<std::uint8_t> read_byte(std::uint32_t addr) const;

private:
  std::vector<Section> sections_;
  std::vector<Symbol> symbols_;
  std::uint32_t entry_ = 0;
};

} // namespace wcet::isa
