// Two-pass assembler for tiny32.
//
// Accepted syntax (one statement per line; ';' or '#' start a comment):
//
//   .text [addr]      switch to the executable section (default 0x1000)
//   .rodata [addr]    read-only data          (default 0x8000)
//   .data [addr]      read-write data         (default 0x10000)
//   .global name      mark `name` as a function symbol
//   .entry name       set the image entry point
//   .word e[, e...]   32-bit data; e may be a number or symbol[+/-off]
//   .half / .byte     16-/8-bit data
//   .space n          n zero bytes
//   .align n          pad to n-byte alignment
//   .asciz "s"        NUL-terminated string
//   label:            define `label` at the current cursor
//   mnemonic ops      machine instruction or pseudo-instruction
//
// Pseudo-instructions: movi/li/la rd, imm32|sym[+off]; mov rd, rs;
// ret; call sym; callr rs; j sym; jr rs; nop; beqz/bnez rs, sym;
// ble/bgt/bleu/bgtu a, b, sym (operand-swapped branches).
#pragma once

#include <string>
#include <string_view>

#include "isa/image.hpp"

namespace wcet::isa {

// Assemble `source` into an executable image. Throws InputError with a
// line-numbered message on malformed input.
Image assemble(std::string_view source);

} // namespace wcet::isa
