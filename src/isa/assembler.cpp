#include "isa/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <vector>

#include "isa/tiny32.hpp"
#include "support/diag.hpp"

namespace wcet::isa {

namespace {

struct Operand {
  enum class Kind { reg, expr, mem };
  Kind kind = Kind::expr;
  std::uint8_t reg = 0;       // reg / mem base
  std::int64_t value = 0;     // expr / mem offset constant part
  std::string symbol;         // optional symbol in expr / mem offset
};

struct Statement {
  int line = 0;
  std::vector<std::string> labels;
  std::string directive; // ".word" etc., empty for instructions
  std::string mnemonic;  // instruction or pseudo
  std::vector<Operand> operands;
  std::vector<Operand> data; // directive arguments
  std::string string_arg;    // .asciz
};

[[noreturn]] void fail(int line, const std::string& msg) {
  throw InputError("asm line " + std::to_string(line) + ": " + msg);
}

bool is_ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '.'; }
bool is_ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' || c == '$'; }

class Lexer {
public:
  Lexer(std::string_view text, int line) : text_(text), line_(line) {}

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t')) ++pos_;
  }

  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) fail(line_, std::string("expected '") + c + "'");
  }

  std::string ident() {
    skip_ws();
    if (pos_ >= text_.size() || !is_ident_start(text_[pos_])) fail(line_, "expected identifier");
    const std::size_t start = pos_;
    while (pos_ < text_.size() && is_ident_char(text_[pos_])) ++pos_;
    return std::string(text_.substr(start, pos_ - start));
  }

  std::optional<std::int64_t> try_number() {
    skip_ws();
    std::size_t p = pos_;
    bool neg = false;
    if (p < text_.size() && (text_[p] == '-' || text_[p] == '+')) {
      neg = text_[p] == '-';
      ++p;
    }
    if (p >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[p]))) {
      return std::nullopt;
    }
    std::int64_t value = 0;
    if (p + 1 < text_.size() && text_[p] == '0' && (text_[p + 1] == 'x' || text_[p + 1] == 'X')) {
      p += 2;
      const std::size_t digits = p;
      while (p < text_.size() && std::isxdigit(static_cast<unsigned char>(text_[p]))) {
        const char c = text_[p];
        const int d = std::isdigit(static_cast<unsigned char>(c)) ? c - '0'
                                                                  : (std::tolower(c) - 'a' + 10);
        value = value * 16 + d;
        ++p;
      }
      if (p == digits) fail(line_, "bad hex literal");
    } else {
      while (p < text_.size() && std::isdigit(static_cast<unsigned char>(text_[p]))) {
        value = value * 10 + (text_[p] - '0');
        ++p;
      }
    }
    pos_ = p;
    return neg ? -value : value;
  }

  std::string quoted_string() {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '"') fail(line_, "expected string literal");
    ++pos_;
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char e = text_[pos_++];
        switch (e) {
        case 'n': c = '\n'; break;
        case 't': c = '\t'; break;
        case '0': c = '\0'; break;
        case '\\': c = '\\'; break;
        case '"': c = '"'; break;
        default: fail(line_, "bad escape in string");
        }
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) fail(line_, "unterminated string");
    ++pos_;
    return out;
  }

  // expr := number | ident (('+'|'-') number)?
  Operand expr() {
    Operand op;
    op.kind = Operand::Kind::expr;
    if (auto num = try_number()) {
      op.value = *num;
      return op;
    }
    op.symbol = ident();
    skip_ws();
    if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
      const char sign = text_[pos_];
      // Only treat as offset if a number follows (not part of operand sep).
      const std::size_t save = pos_;
      ++pos_;
      if (auto num = try_number()) {
        op.value = sign == '-' ? -*num : *num;
      } else {
        pos_ = save;
      }
    }
    return op;
  }

  // operand := reg | expr | expr '(' reg ')'
  Operand operand() {
    skip_ws();
    // Register?
    if (pos_ < text_.size() && is_ident_start(text_[pos_])) {
      const std::size_t save = pos_;
      const std::string name = ident();
      if (auto reg = reg_from_name(name)) {
        Operand op;
        op.kind = Operand::Kind::reg;
        op.reg = *reg;
        return op;
      }
      pos_ = save;
    }
    Operand op = expr();
    if (consume('(')) {
      const std::string base = ident();
      const auto reg = reg_from_name(base);
      if (!reg) fail(line_, "bad base register '" + base + "'");
      expect(')');
      op.kind = Operand::Kind::mem;
      op.reg = *reg;
    }
    return op;
  }

private:
  std::string_view text_;
  std::size_t pos_ = 0;
  int line_;
};

std::vector<Statement> parse(std::string_view source) {
  std::vector<Statement> statements;
  std::size_t pos = 0;
  int line_no = 0;
  while (pos <= source.size()) {
    const std::size_t eol = source.find('\n', pos);
    std::string_view line = source.substr(pos, eol == std::string_view::npos ? std::string_view::npos : eol - pos);
    pos = eol == std::string_view::npos ? source.size() + 1 : eol + 1;
    ++line_no;
    // Strip comments.
    for (const char marker : {';', '#'}) {
      const std::size_t c = line.find(marker);
      if (c != std::string_view::npos) line = line.substr(0, c);
    }
    Lexer lex(line, line_no);
    Statement st;
    st.line = line_no;
    // Labels.
    for (;;) {
      if (lex.at_end()) break;
      if (lex.peek() == '.' || !is_ident_start(lex.peek())) break;
      // Lookahead: ident followed by ':' is a label.
      Lexer probe = lex;
      const std::string name = probe.ident();
      if (probe.consume(':')) {
        st.labels.push_back(name);
        lex = probe;
      } else {
        break;
      }
    }
    if (!lex.at_end() && lex.peek() == '.') {
      // Directive or label starting with '.'.
      Lexer probe = lex;
      const std::string name = probe.ident();
      if (probe.consume(':')) {
        st.labels.push_back(name);
        lex = probe;
        if (!lex.at_end()) {
          // Fall through to instruction parsing below.
          st.mnemonic = lex.ident();
        }
      } else {
        st.directive = name;
        lex = probe;
        if (st.directive == ".asciz") {
          st.string_arg = lex.quoted_string();
        } else if (st.directive == ".global" || st.directive == ".entry") {
          Operand op;
          op.kind = Operand::Kind::expr;
          op.symbol = lex.ident();
          st.data.push_back(op);
        } else {
          while (!lex.at_end()) {
            st.data.push_back(lex.expr());
            if (!lex.consume(',')) break;
          }
        }
      }
    } else if (!lex.at_end()) {
      st.mnemonic = lex.ident();
    }
    if (!st.mnemonic.empty()) {
      while (!lex.at_end()) {
        st.operands.push_back(lex.operand());
        if (!lex.consume(',')) break;
      }
    }
    if (!lex.at_end()) fail(line_no, "trailing garbage");
    if (!st.labels.empty() || !st.directive.empty() || !st.mnemonic.empty()) {
      statements.push_back(std::move(st));
    }
  }
  return statements;
}

struct SectionBuild {
  Section section;
  bool addr_fixed = false;
};

// A single pseudo- or machine instruction expands to 1..2 words. The
// expansion size must be computable in pass 1 (before symbols resolve),
// so symbol-valued movi always takes the 2-word form.
int expansion_words(const Statement& st) {
  const std::string& m = st.mnemonic;
  if (m == "movi" || m == "li" || m == "la") {
    if (st.operands.size() == 2 && st.operands[1].kind == Operand::Kind::expr &&
        st.operands[1].symbol.empty()) {
      const std::int64_t v = st.operands[1].value;
      if (v >= -0x8000 && v <= 0xFFFF) return 1;
    }
    return 2;
  }
  return 1;
}

class Assembler {
public:
  Image run(std::string_view source) {
    const std::vector<Statement> statements = parse(source);
    layout(statements);
    emit(statements);
    finish();
    return std::move(image_);
  }

private:
  void switch_section(const Statement& st) {
    const std::string name = st.directive.substr(1); // drop '.'
    auto it = sections_.find(name);
    if (it == sections_.end()) {
      SectionBuild b;
      b.section.name = name;
      b.section.executable = name == "text";
      b.section.writable = name == "data" || name == "bss";
      b.section.vaddr = name == "text" ? 0x1000 : name == "rodata" ? 0x8000 : 0x10000;
      it = sections_.emplace(name, std::move(b)).first;
    }
    if (!st.data.empty()) {
      if (!it->second.section.bytes.empty()) {
        fail(st.line, "section base address must be set before any content");
      }
      if (!st.data[0].symbol.empty()) fail(st.line, "section address must be numeric");
      it->second.section.vaddr = static_cast<std::uint32_t>(st.data[0].value);
      it->second.addr_fixed = true;
    }
    current_ = &it->second;
  }

  std::uint32_t cursor() const {
    WCET_CHECK(current_ != nullptr, "no current section");
    return current_->section.vaddr + static_cast<std::uint32_t>(current_->section.bytes.size());
  }

  void reserve(std::size_t n) { current_->section.bytes.resize(current_->section.bytes.size() + n); }

  void layout(const std::vector<Statement>& statements) {
    current_ = nullptr;
    for (const auto& st : statements) {
      if (st.directive == ".text" || st.directive == ".data" || st.directive == ".rodata") {
        switch_section(st);
        for (const auto& label : st.labels) define_label(st.line, label);
        continue;
      }
      if (!st.labels.empty() && current_ == nullptr) {
        Statement text;
        text.directive = ".text";
        text.line = st.line;
        switch_section(text);
      }
      for (const auto& label : st.labels) define_label(st.line, label);
      if (st.directive == ".global") {
        globals_.insert(st.data[0].symbol);
      } else if (st.directive == ".entry") {
        entry_symbol_ = st.data[0].symbol;
      } else if (st.directive == ".word") {
        align_to(4);
        for (const auto& label : st.labels) redefine_label_here(label);
        reserve(4 * st.data.size());
      } else if (st.directive == ".half") {
        align_to(2);
        reserve(2 * st.data.size());
      } else if (st.directive == ".byte") {
        reserve(st.data.size());
      } else if (st.directive == ".space") {
        if (st.data.size() != 1 || !st.data[0].symbol.empty()) fail(st.line, ".space needs a size");
        reserve(static_cast<std::size_t>(st.data[0].value));
      } else if (st.directive == ".align") {
        if (st.data.size() != 1) fail(st.line, ".align needs a value");
        align_to(static_cast<std::uint32_t>(st.data[0].value));
        for (const auto& label : st.labels) redefine_label_here(label);
      } else if (st.directive == ".asciz") {
        reserve(st.string_arg.size() + 1);
      } else if (!st.directive.empty()) {
        fail(st.line, "unknown directive '" + st.directive + "'");
      }
      if (!st.mnemonic.empty()) {
        if (current_ == nullptr) {
          Statement text;
          text.directive = ".text";
          text.line = st.line;
          switch_section(text);
        }
        align_to(4);
        for (const auto& label : st.labels) redefine_label_here(label);
        reserve(4 * static_cast<std::size_t>(expansion_words(st)));
      }
    }
    // Snapshot layout cursors, then reset content for pass 2.
    for (auto& [name, build] : sections_) {
      layout_sizes_[name] = build.section.bytes.size();
      build.section.bytes.clear();
    }
  }

  void define_label(int line, const std::string& name) {
    if (current_ == nullptr) {
      // Labels before any section directive go to .text; handled by caller.
    }
    if (labels_.count(name) != 0) fail(line, "duplicate label '" + name + "'");
    labels_[name] = current_ ? cursor() : 0;
    label_section_[name] = current_ ? current_->section.name : "text";
  }

  // .word/.align force alignment after the label was nominally defined;
  // move the label to the aligned cursor.
  void redefine_label_here(const std::string& name) { labels_[name] = cursor(); }

  void align_to(std::uint32_t alignment) {
    if (alignment == 0) return;
    while ((cursor() % alignment) != 0) reserve(1);
  }

  std::int64_t resolve(int line, const Operand& op) const {
    if (op.symbol.empty()) return op.value;
    const auto it = labels_.find(op.symbol);
    if (it == labels_.end()) fail(line, "undefined symbol '" + op.symbol + "'");
    return static_cast<std::int64_t>(it->second) + op.value;
  }

  void emit_word(std::uint32_t word) {
    for (int i = 0; i < 4; ++i) {
      current_->section.bytes.push_back(static_cast<std::uint8_t>(word >> (8 * i)));
    }
  }

  void emit_inst(const Inst& inst) { emit_word(encode(inst)); }

  static std::uint8_t want_reg(int line, const Operand& op) {
    if (op.kind != Operand::Kind::reg) fail(line, "expected register operand");
    return op.reg;
  }

  std::int64_t want_expr(int line, const Operand& op) const {
    if (op.kind != Operand::Kind::expr) fail(line, "expected immediate/symbol operand");
    return resolve(line, op);
  }

  void emit_instruction(const Statement& st) {
    const std::string& m = st.mnemonic;
    const auto& ops = st.operands;
    const int line = st.line;
    const auto need = [&](std::size_t n) {
      if (ops.size() != n) {
        fail(line, m + " expects " + std::to_string(n) + " operands, got " +
                       std::to_string(ops.size()));
      }
    };

    // Pseudo-instructions first.
    if (m == "movi" || m == "li" || m == "la") {
      need(2);
      const std::uint8_t rd = want_reg(line, ops[0]);
      const std::int64_t value64 = want_expr(line, ops[1]);
      const auto value = static_cast<std::uint32_t>(value64 & 0xFFFFFFFF);
      if (expansion_words(st) == 1) {
        if (value64 >= 0 && value64 <= 0xFFFF) {
          emit_inst({Opcode::ori, rd, reg_zero, 0, static_cast<std::int64_t>(value & 0xFFFF)});
        } else {
          emit_inst({Opcode::addi, rd, reg_zero, 0, value64});
        }
      } else {
        emit_inst({Opcode::lui, rd, 0, 0, static_cast<std::int64_t>(value >> 16)});
        emit_inst({Opcode::ori, rd, rd, 0, static_cast<std::int64_t>(value & 0xFFFF)});
      }
      return;
    }
    if (m == "mov") {
      need(2);
      emit_inst({Opcode::addi, want_reg(line, ops[0]), want_reg(line, ops[1]), 0, 0});
      return;
    }
    if (m == "nop") {
      need(0);
      emit_inst({Opcode::addi, reg_zero, reg_zero, 0, 0});
      return;
    }
    if (m == "ret") {
      need(0);
      emit_inst({Opcode::jalr, reg_zero, reg_ra, 0, 0});
      return;
    }
    if (m == "call" || m == "j") {
      need(1);
      const std::int64_t target = want_expr(line, ops[0]);
      const std::int64_t off = target - (static_cast<std::int64_t>(cursor()) + 4);
      emit_inst({Opcode::jal, m == "call" ? reg_ra : reg_zero, 0, 0, off});
      return;
    }
    if (m == "jr" || m == "callr") {
      need(1);
      emit_inst({Opcode::jalr, m == "callr" ? reg_ra : reg_zero, want_reg(line, ops[0]), 0, 0});
      return;
    }
    if (m == "beqz" || m == "bnez") {
      need(2);
      const std::int64_t target = want_expr(line, ops[1]);
      const std::int64_t off = target - (static_cast<std::int64_t>(cursor()) + 4);
      emit_inst({m == "beqz" ? Opcode::beq : Opcode::bne, 0, want_reg(line, ops[0]), reg_zero, off});
      return;
    }
    if (m == "ble" || m == "bgt" || m == "bleu" || m == "bgtu") {
      need(3);
      const std::int64_t target = want_expr(line, ops[2]);
      const std::int64_t off = target - (static_cast<std::int64_t>(cursor()) + 4);
      // a <= b  ==  b >= a ; a > b  ==  b < a (operand swap).
      const Opcode op = (m == "ble") ? Opcode::bge
                        : (m == "bgt") ? Opcode::blt
                        : (m == "bleu") ? Opcode::bgeu
                                        : Opcode::bltu;
      emit_inst({op, 0, want_reg(line, ops[1]), want_reg(line, ops[0]), off});
      return;
    }

    const auto opcode = opcode_from_mnemonic(m);
    if (!opcode) fail(line, "unknown mnemonic '" + m + "'");
    Inst inst;
    inst.op = *opcode;
    switch (format_of(inst.op)) {
    case Format::r:
      need(3);
      inst.rd = want_reg(line, ops[0]);
      inst.rs1 = want_reg(line, ops[1]);
      inst.rs2 = want_reg(line, ops[2]);
      break;
    case Format::i:
      if (inst.op == Opcode::lui) {
        need(2);
        inst.rd = want_reg(line, ops[0]);
        inst.imm = want_expr(line, ops[1]);
      } else if (Inst{*opcode}.is_load() || Inst{*opcode}.is_store()) {
        need(2);
        inst.rd = want_reg(line, ops[0]); // loaded reg / stored source
        if (ops[1].kind != Operand::Kind::mem) fail(line, "expected off(base) operand");
        inst.rs1 = ops[1].reg;
        Operand offset = ops[1];
        offset.kind = Operand::Kind::expr;
        inst.imm = resolve(line, offset);
      } else {
        need(3);
        inst.rd = want_reg(line, ops[0]);
        inst.rs1 = want_reg(line, ops[1]);
        inst.imm = want_expr(line, ops[2]);
      }
      break;
    case Format::b: {
      need(3);
      inst.rs1 = want_reg(line, ops[0]);
      inst.rs2 = want_reg(line, ops[1]);
      const std::int64_t target = want_expr(line, ops[2]);
      inst.imm = target - (static_cast<std::int64_t>(cursor()) + 4);
      break;
    }
    case Format::j: {
      need(2);
      inst.rd = want_reg(line, ops[0]);
      const std::int64_t target = want_expr(line, ops[1]);
      inst.imm = target - (static_cast<std::int64_t>(cursor()) + 4);
      break;
    }
    case Format::sys:
      need(0);
      break;
    }
    try {
      emit_inst(inst);
    } catch (const InternalError& e) {
      fail(line, e.what());
    }
  }

  void emit(const std::vector<Statement>& statements) {
    current_ = nullptr;
    for (const auto& st : statements) {
      if (st.directive == ".text" || st.directive == ".data" || st.directive == ".rodata") {
        Statement no_addr = st; // address already fixed in pass 1
        no_addr.data.clear();
        switch_section(no_addr);
        continue;
      }
      if ((!st.labels.empty() || !st.mnemonic.empty()) && current_ == nullptr) {
        Statement text;
        text.directive = ".text";
        text.line = st.line;
        switch_section(text);
      }
      if (st.directive == ".word") {
        align_to(4);
        for (const auto& d : st.data) {
          emit_word(static_cast<std::uint32_t>(resolve(st.line, d) & 0xFFFFFFFF));
        }
      } else if (st.directive == ".half") {
        align_to(2);
        for (const auto& d : st.data) {
          const auto v = static_cast<std::uint32_t>(resolve(st.line, d));
          current_->section.bytes.push_back(static_cast<std::uint8_t>(v));
          current_->section.bytes.push_back(static_cast<std::uint8_t>(v >> 8));
        }
      } else if (st.directive == ".byte") {
        for (const auto& d : st.data) {
          current_->section.bytes.push_back(
              static_cast<std::uint8_t>(resolve(st.line, d) & 0xFF));
        }
      } else if (st.directive == ".space") {
        reserve(static_cast<std::size_t>(st.data[0].value));
      } else if (st.directive == ".align") {
        align_to(static_cast<std::uint32_t>(st.data[0].value));
      } else if (st.directive == ".asciz") {
        for (const char c : st.string_arg) {
          current_->section.bytes.push_back(static_cast<std::uint8_t>(c));
        }
        current_->section.bytes.push_back(0);
      }
      if (!st.mnemonic.empty()) {
        align_to(4);
        emit_instruction(st);
      }
    }
  }

  void finish() {
    for (auto& [name, build] : sections_) {
      WCET_CHECK(build.section.bytes.size() == layout_sizes_[name],
                 "pass-2 size mismatch in section " + name);
      image_.add_section(std::move(build.section));
    }
    // Symbols: functions are .global labels in executable sections; size
    // runs to the next function symbol or section end.
    std::map<std::uint32_t, std::string> function_starts;
    for (const auto& [label, addr] : labels_) {
      if (globals_.count(label) != 0) function_starts[addr] = label;
    }
    for (const auto& [label, addr] : labels_) {
      Symbol sym;
      sym.name = label;
      sym.addr = addr;
      if (globals_.count(label) != 0) {
        sym.kind = label_section_.at(label) == "text" ? Symbol::Kind::function
                                                      : Symbol::Kind::object;
        auto next = function_starts.upper_bound(addr);
        const Section* sec = image_.section_at(addr);
        std::uint32_t end = sec != nullptr ? sec->end() : addr;
        if (next != function_starts.end() && next->first < end) end = next->first;
        sym.size = end - addr;
      } else {
        sym.kind = Symbol::Kind::label;
      }
      image_.add_symbol(std::move(sym));
    }
    if (!entry_symbol_.empty()) {
      const auto it = labels_.find(entry_symbol_);
      if (it == labels_.end()) throw InputError("entry symbol '" + entry_symbol_ + "' undefined");
      image_.set_entry(it->second);
    } else if (const auto it = labels_.find("_start"); it != labels_.end()) {
      image_.set_entry(it->second);
    } else if (const auto sec = sections_.find("text"); sec != sections_.end()) {
      image_.set_entry(sec->second.section.vaddr);
    }
  }

  std::map<std::string, SectionBuild> sections_;
  std::map<std::string, std::size_t> layout_sizes_;
  std::map<std::string, std::uint32_t> labels_;
  std::map<std::string, std::string> label_section_;
  std::set<std::string> globals_;
  std::string entry_symbol_;
  SectionBuild* current_ = nullptr;
  Image image_;
};

} // namespace

Image assemble(std::string_view source) {
  Assembler assembler;
  return assembler.run(source);
}

} // namespace wcet::isa
