#include "mem/memmap.hpp"

#include <algorithm>

#include "support/diag.hpp"

namespace wcet::mem {

MemoryMap::MemoryMap() {
  default_region_.name = "external-bus";
  default_region_.base = 0;
  default_region_.size = 0; // matches nothing explicitly; used as fallback
  default_region_.read_latency = 40;
  default_region_.write_latency = 40;
  default_region_.cacheable = false;
}

void MemoryMap::add_region(Region region) {
  for (const auto& r : regions_) {
    const bool overlap = region.base < r.end() && r.base < region.end();
    if (overlap) {
      throw InputError("memory region '" + region.name + "' overlaps '" + r.name + "'");
    }
  }
  regions_.push_back(std::move(region));
}

void MemoryMap::add_region_override(const Region& region) {
  std::vector<Region> rebuilt;
  rebuilt.reserve(regions_.size() + 2);
  for (const Region& existing : regions_) {
    const std::uint64_t lo = std::max<std::uint64_t>(existing.base, region.base);
    const std::uint64_t hi = std::min<std::uint64_t>(existing.end(), region.end());
    if (lo >= hi) {
      rebuilt.push_back(existing); // no overlap
      continue;
    }
    // Keep the non-overlapped remainders of the existing region.
    if (existing.base < region.base) {
      Region before = existing;
      before.size = region.base - existing.base;
      rebuilt.push_back(before);
    }
    if (existing.end() > region.end()) {
      Region after = existing;
      after.base = region.end();
      after.size = existing.end() - region.end();
      rebuilt.push_back(after);
    }
  }
  rebuilt.push_back(region);
  regions_ = std::move(rebuilt);
}

const Region& MemoryMap::region_for(std::uint32_t addr) const {
  for (const auto& r : regions_) {
    if (r.contains(addr)) return r;
  }
  return default_region_;
}

const Region* MemoryMap::find(const std::string& name) const {
  for (const auto& r : regions_) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

std::pair<unsigned, unsigned> MemoryMap::latency_bounds(const Interval& addr,
                                                        bool write) const {
  WCET_CHECK(!addr.is_bottom(), "latency bounds of unreachable access");
  unsigned lo = ~0u;
  unsigned hi = 0;
  const auto consider = [&](const Region& r) {
    const unsigned lat = write ? r.write_latency : r.read_latency;
    lo = std::min(lo, lat);
    hi = std::max(hi, lat);
  };
  bool gap = false; // does the interval touch addresses outside all regions?
  // Walk regions intersecting [umin, umax]; detect gaps by coverage count.
  std::uint64_t covered = 0;
  for (const auto& r : regions_) {
    const std::int64_t lo_a = std::max<std::int64_t>(addr.umin(), r.base);
    const std::int64_t hi_a = std::min<std::int64_t>(addr.umax(), static_cast<std::int64_t>(r.end()) - 1);
    if (lo_a <= hi_a) {
      consider(r);
      covered += static_cast<std::uint64_t>(hi_a - lo_a + 1);
    }
  }
  if (covered < addr.size()) gap = true;
  if (gap) consider(default_region_);
  WCET_CHECK(hi != 0 || lo != ~0u, "no region considered");
  return {lo, hi};
}

std::pair<unsigned, unsigned> MemoryMap::read_latency_bounds(const Interval& addr) const {
  return latency_bounds(addr, false);
}

std::pair<unsigned, unsigned> MemoryMap::write_latency_bounds(const Interval& addr) const {
  return latency_bounds(addr, true);
}

bool MemoryMap::all_cacheable(const Interval& addr) const {
  if (addr.is_bottom()) return true;
  std::uint64_t covered = 0;
  for (const auto& r : regions_) {
    const std::int64_t lo_a = std::max<std::int64_t>(addr.umin(), r.base);
    const std::int64_t hi_a = std::min<std::int64_t>(addr.umax(), static_cast<std::int64_t>(r.end()) - 1);
    if (lo_a <= hi_a) {
      if (!r.cacheable) return false;
      covered += static_cast<std::uint64_t>(hi_a - lo_a + 1);
    }
  }
  if (covered < addr.size()) return default_region_.cacheable;
  return true;
}

const Region* MemoryMap::unique_region(const Interval& addr) const {
  if (addr.is_bottom()) return nullptr;
  const Region& lo = region_for(static_cast<std::uint32_t>(addr.umin()));
  const Region& hi = region_for(static_cast<std::uint32_t>(addr.umax()));
  if (&lo != &hi) return nullptr;
  if (!lo.contains(static_cast<std::uint32_t>(addr.umin())) &&
      lo.size != 0) {
    return nullptr;
  }
  // Contiguous region covering both ends covers everything between.
  if (lo.size == 0) {
    // Default region: only unique if no explicit region intersects.
    for (const auto& r : regions_) {
      const std::int64_t lo_a = std::max<std::int64_t>(addr.umin(), r.base);
      const std::int64_t hi_a =
          std::min<std::int64_t>(addr.umax(), static_cast<std::int64_t>(r.end()) - 1);
      if (lo_a <= hi_a) return nullptr;
    }
  }
  return &lo;
}

MemoryMap typical_embedded_map() {
  MemoryMap map;
  map.add_region({.name = "sram-code",
                  .base = 0x00000000,
                  .size = 0x00008000,
                  .read_latency = 1,
                  .write_latency = 1,
                  .cacheable = true,
                  .io = false});
  map.add_region({.name = "flash",
                  .base = 0x00008000,
                  .size = 0x00008000,
                  .read_latency = 12,
                  .write_latency = 60,
                  .cacheable = true,
                  .io = false});
  map.add_region({.name = "sram-data",
                  .base = 0x00010000,
                  .size = 0x00030000,
                  .read_latency = 2,
                  .write_latency = 2,
                  .cacheable = true,
                  .io = false});
  map.add_region({.name = "can-mmio",
                  .base = 0xF0000000,
                  .size = 0x00001000,
                  .read_latency = 30,
                  .write_latency = 30,
                  .cacheable = false,
                  .io = true});
  return map;
}

} // namespace wcet::mem
