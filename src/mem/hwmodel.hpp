// Hardware timing model shared verbatim by the cycle-accurate simulator
// (src/sim) and the abstract pipeline analysis (src/analysis). Keeping
// one definition of every cost is what makes the soundness property
// "simulated cycles <= WCET bound" meaningful and testable.
//
// Timing semantics (scalar, in-order, no timing anomalies by design):
//   cost(inst) = fetch_cost + base_cost(op) + mem_cost + control_penalty
//   fetch_cost   = 1 on I-cache hit, 1 + region read latency otherwise
//   mem_cost     = loads: 1 on D-cache hit, 1 + region read latency
//                  otherwise; stores: region write latency (write-through,
//                  no write-allocate); 0 for non-memory instructions
//   control_penalty = taken branches and jumps pay a refill penalty
#pragma once

#include "isa/tiny32.hpp"
#include "mem/cache.hpp"
#include "mem/memmap.hpp"

namespace wcet::mem {

struct PipelineConfig {
  unsigned branch_taken_penalty = 2;
  unsigned jump_penalty = 2;    // jal and jalr
  unsigned mul_latency = 3;     // mul, mulhu
  unsigned div_latency = 12;    // divu, remu, div, rem (data-independent)
  unsigned ecall_latency = 10;  // fixed supervisor cost
};

struct HwConfig {
  PipelineConfig pipeline;
  CacheConfig icache{.enabled = true, .sets = 32, .ways = 2, .line_bytes = 16};
  CacheConfig dcache{.enabled = true, .sets = 32, .ways = 2, .line_bytes = 16};
  MemoryMap memory;
};

// Cost of the execute stage, excluding fetch, memory and control
// penalties. Deterministic per opcode (tiny32 divides in constant time —
// the *hardware* is predictable here; the paper's unpredictability comes
// from *software* structure on top).
unsigned base_cycles(isa::Opcode op, const PipelineConfig& pipeline);

inline unsigned fetch_cycles(bool icache_hit, unsigned region_read_latency) {
  return icache_hit ? 1 : 1 + region_read_latency;
}

inline unsigned load_cycles(bool dcache_hit, unsigned region_read_latency) {
  return dcache_hit ? 1 : 1 + region_read_latency;
}

inline unsigned store_cycles(unsigned region_write_latency) {
  return region_write_latency;
}

// Penalty paid when the instruction redirects the pc. For conditional
// branches this applies only on the taken path.
unsigned control_penalty(const isa::Inst& inst, bool taken, const PipelineConfig& pipeline);

// Default configuration used by examples, benches and most tests.
HwConfig typical_hw();

} // namespace wcet::mem
