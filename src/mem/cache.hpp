// Concrete set-associative LRU cache (tag store only — data always comes
// from backing memory, so the model tracks timing, not contents). The
// abstract must/may analysis in src/analysis/cache_analysis.* must stay
// in lock-step with this model; property tests enforce the relationship
// "must-hits hit, may-misses miss".
#pragma once

#include <cstdint>
#include <vector>

#include "support/diag.hpp"

namespace wcet::mem {

struct CacheConfig {
  bool enabled = true;
  unsigned sets = 16;
  unsigned ways = 2;
  unsigned line_bytes = 16;

  unsigned set_index(std::uint32_t addr) const {
    return (addr / line_bytes) % sets;
  }
  std::uint32_t tag(std::uint32_t addr) const { return addr / line_bytes / sets; }
  std::uint32_t line_of(std::uint32_t addr) const { return addr / line_bytes; }
};

class Cache {
public:
  explicit Cache(const CacheConfig& config);

  const CacheConfig& config() const { return config_; }

  // Perform a load access: returns true on hit; allocates and updates
  // LRU on miss. Stores do not go through the cache (write-through,
  // no-write-allocate; see DESIGN.md) and must not call this.
  bool access(std::uint32_t addr);

  // Non-mutating lookup.
  bool would_hit(std::uint32_t addr) const;

  void flush();

private:
  CacheConfig config_;
  // ways entries per set, most recently used first; ~0u marks empty.
  std::vector<std::uint32_t> lines_;
};

} // namespace wcet::mem
