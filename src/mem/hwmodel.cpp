#include "mem/hwmodel.hpp"

namespace wcet::mem {

unsigned base_cycles(isa::Opcode op, const PipelineConfig& pipeline) {
  using isa::Opcode;
  switch (op) {
  case Opcode::mul:
  case Opcode::mulhu:
    return pipeline.mul_latency;
  case Opcode::divu:
  case Opcode::remu:
  case Opcode::div_:
  case Opcode::rem_:
    return pipeline.div_latency;
  case Opcode::ecall:
    return pipeline.ecall_latency;
  default:
    return 1;
  }
}

unsigned control_penalty(const isa::Inst& inst, bool taken,
                         const PipelineConfig& pipeline) {
  if (inst.is_conditional_branch()) {
    return taken ? pipeline.branch_taken_penalty : 0;
  }
  if (inst.op == isa::Opcode::jal || inst.op == isa::Opcode::jalr) {
    return pipeline.jump_penalty;
  }
  return 0;
}

HwConfig typical_hw() {
  HwConfig hw;
  hw.memory = typical_embedded_map();
  return hw;
}

} // namespace wcet::mem
