#include "mem/cache.hpp"

#include <algorithm>

namespace wcet::mem {

namespace {
constexpr std::uint32_t empty_line = ~0u;
}

Cache::Cache(const CacheConfig& config) : config_(config) {
  WCET_CHECK(config.sets > 0 && config.ways > 0 && config.line_bytes >= 4,
             "bad cache geometry");
  WCET_CHECK((config.line_bytes & (config.line_bytes - 1)) == 0,
             "cache line size must be a power of two");
  lines_.assign(static_cast<std::size_t>(config.sets) * config.ways, empty_line);
}

bool Cache::access(std::uint32_t addr) {
  if (!config_.enabled) return false;
  const unsigned set = config_.set_index(addr);
  const std::uint32_t line = config_.line_of(addr);
  auto* base = &lines_[static_cast<std::size_t>(set) * config_.ways];
  for (unsigned w = 0; w < config_.ways; ++w) {
    if (base[w] == line) {
      // Move to MRU position.
      std::rotate(base, base + w, base + w + 1);
      return true;
    }
  }
  // Miss: evict LRU (last), insert at MRU.
  std::rotate(base, base + config_.ways - 1, base + config_.ways);
  base[0] = line;
  return false;
}

bool Cache::would_hit(std::uint32_t addr) const {
  if (!config_.enabled) return false;
  const unsigned set = config_.set_index(addr);
  const std::uint32_t line = config_.line_of(addr);
  const auto* base = &lines_[static_cast<std::size_t>(set) * config_.ways];
  for (unsigned w = 0; w < config_.ways; ++w) {
    if (base[w] == line) return true;
  }
  return false;
}

void Cache::flush() { std::fill(lines_.begin(), lines_.end(), empty_line); }

} // namespace wcet::mem
