// Address-space map: memory regions with distinct timing and
// cacheability, mirroring the paper's "multiple memory areas with
// different timings" (Section 4.2, rule 20.4; Section 4.3, imprecise
// memory accesses). Fast internal SRAM, slow flash, and memory-mapped
// I/O regions are all expressible.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "support/interval.hpp"

namespace wcet::mem {

struct Region {
  std::string name;
  std::uint32_t base = 0;
  std::uint32_t size = 0;
  unsigned read_latency = 1;  // cycles per access bypassing/missing the cache
  unsigned write_latency = 1;
  bool cacheable = true;
  bool io = false; // device registers: reads have side effects, never cached

  std::uint32_t end() const { return base + size; }
  bool contains(std::uint32_t addr) const { return addr >= base && addr - base < size; }
};

class MemoryMap {
public:
  // The default region backs all addresses not covered by any explicit
  // region (think: external bus). It is deliberately slow so that an
  // analysis confronted with an unknown address must assume the worst —
  // exactly the effect the paper describes.
  MemoryMap();

  void add_region(Region region);
  // Add a region that takes precedence over existing coverage: any
  // overlapped parts of existing regions are split away so the map stays
  // disjoint. Used for annotation-supplied region refinements.
  void add_region_override(const Region& region);
  const Region& region_for(std::uint32_t addr) const;
  const Region& default_region() const { return default_region_; }
  void set_default_region(Region region) { default_region_ = std::move(region); }
  const std::vector<Region>& regions() const { return regions_; }
  const Region* find(const std::string& name) const;

  // [min,max] read/write latency over every address a value-analysis
  // interval may touch. An unknown (TOP) address interval therefore
  // yields the slowest region in the whole map.
  std::pair<unsigned, unsigned> read_latency_bounds(const Interval& addr) const;
  std::pair<unsigned, unsigned> write_latency_bounds(const Interval& addr) const;
  // True iff every address in `addr` is cacheable.
  bool all_cacheable(const Interval& addr) const;
  // True iff `addr` certainly lies in one single region; returns it.
  const Region* unique_region(const Interval& addr) const;

private:
  std::pair<unsigned, unsigned> latency_bounds(const Interval& addr, bool write) const;

  std::vector<Region> regions_;
  Region default_region_;
};

// Standard map used by examples/benches: fast SRAM for code+data, slow
// flash for constants, one MMIO block for a CAN-style device.
MemoryMap typical_embedded_map();

} // namespace wcet::mem
