// Decoding phase (Figure 1): reconstruction of per-function control-flow
// graphs from the binary image.
//
// Indirect control transfers — the paper's first tier-one challenge —
// are resolved by, in order:
//   1. compiler-convention jump-table pattern matching (bounds-checked
//      `lw rT, 0(base+index*4); jr rT` against a sized read-only table),
//   2. user hints from the annotation language ("targets of the branch
//      at ADDR are ..."),
//   3. the value-analysis feedback loop in the driver (a jalr whose
//      operand interval collapses to constants triggers a re-decode).
// Anything still unresolved is reported as an analysis obstruction, not
// silently dropped: an unresolved transfer makes a sound WCET bound
// impossible (Section 3.2).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "isa/image.hpp"
#include "isa/tiny32.hpp"

namespace wcet::cfg {

enum class Term {
  fallthrough,   // block ends because the next address is a leader
  branch,        // conditional branch: taken + fallthrough successors
  jump,          // unconditional direct jump
  indirect_jump, // jalr-based computed goto / switch
  call,          // direct call; successor is the return site
  indirect_call, // call through a register
  ret,
  halt,
  ecall,         // environment call: may exit the task (EcallFn::exit)
};

struct CfgBlock {
  std::uint32_t begin = 0;
  std::uint32_t end = 0; // exclusive
  std::vector<isa::Inst> insts;
  Term term = Term::fallthrough;

  // Intra-procedural successor addresses (fallthrough first, then taken
  // / resolved indirect targets).
  std::vector<std::uint32_t> succs;
  // For calls: resolved callee entries (singleton for direct calls).
  std::vector<std::uint32_t> callees;
  bool indirect_unresolved = false;

  std::uint32_t term_pc() const { return end - 4; }
  const isa::Inst& terminator() const { return insts.back(); }
};

struct CfgFunction {
  std::uint32_t entry = 0;
  std::string name;
  std::map<std::uint32_t, CfgBlock> blocks; // keyed by begin address
  bool has_unresolved_indirect = false;

  const CfgBlock& block_at(std::uint32_t addr) const;
};

// External resolution hints (annotations and value-analysis feedback).
struct ResolutionHints {
  // pc of the jalr -> possible targets (jump) / callees (call).
  std::map<std::uint32_t, std::vector<std::uint32_t>> indirect_targets;
};

struct DecodeIssue {
  std::uint32_t pc = 0;
  std::string message;
};

class Program {
public:
  // Reconstruct CFGs for every function reachable from `entry`.
  static Program reconstruct(const isa::Image& image, std::uint32_t entry,
                             const ResolutionHints& hints = {});

  const isa::Image& image() const { return *image_; }
  std::uint32_t entry() const { return entry_; }
  const std::map<std::uint32_t, CfgFunction>& functions() const { return functions_; }
  const CfgFunction& function_at(std::uint32_t entry_addr) const;
  const std::vector<DecodeIssue>& issues() const { return issues_; }
  bool fully_resolved() const;

  // All call-graph edges (caller entry, callee entry).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> call_edges() const;
  // Functions on call-graph cycles (recursion — rule 16.2 territory).
  std::set<std::uint32_t> recursive_functions() const;

  std::string dump() const;

private:
  const isa::Image* image_ = nullptr;
  std::uint32_t entry_ = 0;
  std::map<std::uint32_t, CfgFunction> functions_;
  std::vector<DecodeIssue> issues_;
};

} // namespace wcet::cfg
