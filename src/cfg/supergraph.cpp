#include "cfg/supergraph.hpp"

#include <algorithm>
#include <sstream>

#include "support/diag.hpp"

namespace wcet::cfg {

namespace {

struct Expander {
  const Program& program;
  const Supergraph::Options& options;
  std::vector<SgNode>& nodes;
  std::vector<SgEdge>& edges;
  std::vector<Instance>& instances;
  std::vector<SupergraphIssue>& issues;
  std::vector<std::uint32_t> call_path; // function entries on the DFS path

  int add_edge(int from, int to, EdgeKind kind) {
    const int id = static_cast<int>(edges.size());
    edges.push_back(SgEdge{id, from, to, kind});
    nodes[static_cast<std::size_t>(from)].succ_edges.push_back(id);
    nodes[static_cast<std::size_t>(to)].pred_edges.push_back(id);
    return id;
  }

  unsigned depth_limit(std::uint32_t fn_entry) const {
    const auto it = options.recursion_depths.find(fn_entry);
    // Depth 1 == "appears once on the path" == non-recursive behaviour.
    return it == options.recursion_depths.end() ? 1 : std::max(1u, it->second);
  }

  // Expand `fn_entry`; returns {instance id, entry node id}.
  std::pair<int, int> expand_function(std::uint32_t fn_entry, int caller_instance,
                                      int call_site_node) {
    if (nodes.size() > options.max_nodes) {
      throw AnalysisError("supergraph exceeds node limit (context explosion)");
    }
    const CfgFunction& fn = program.function_at(fn_entry);
    const int instance_id = static_cast<int>(instances.size());
    instances.push_back(Instance{instance_id, fn_entry, caller_instance, call_site_node});
    call_path.push_back(fn_entry);

    // Create one node per block of this instance.
    std::map<std::uint32_t, int> node_of_block;
    for (const auto& [addr, block] : fn.blocks) {
      const int id = static_cast<int>(nodes.size());
      nodes.push_back(SgNode{id, instance_id, fn_entry, &block, {}, {}});
      node_of_block.emplace(addr, id);
    }

    // Intra edges + call expansion.
    for (const auto& [addr, block] : fn.blocks) {
      const int from = node_of_block.at(addr);
      switch (block.term) {
      case Term::branch: {
        WCET_CHECK(block.succs.size() == 2, "branch block needs 2 successors");
        if (const auto it = node_of_block.find(block.succs[0]); it != node_of_block.end()) {
          add_edge(from, it->second, EdgeKind::fall);
        }
        if (const auto it = node_of_block.find(block.succs[1]); it != node_of_block.end()) {
          add_edge(from, it->second, EdgeKind::taken);
        }
        break;
      }
      case Term::fallthrough:
      case Term::ecall:
        for (const std::uint32_t succ : block.succs) {
          if (const auto it = node_of_block.find(succ); it != node_of_block.end()) {
            add_edge(from, it->second, EdgeKind::fall);
          }
        }
        break;
      case Term::jump:
      case Term::indirect_jump:
        for (const std::uint32_t succ : block.succs) {
          if (const auto it = node_of_block.find(succ); it != node_of_block.end()) {
            add_edge(from, it->second, EdgeKind::taken);
          }
        }
        if (block.indirect_unresolved) {
          issues.push_back({block.term_pc(), "unresolved indirect jump in expanded graph"});
        }
        break;
      case Term::call:
      case Term::indirect_call: {
        WCET_CHECK(block.succs.size() == 1, "call block needs a return site");
        const auto ret_it = node_of_block.find(block.succs[0]);
        const int return_site = ret_it == node_of_block.end() ? -1 : ret_it->second;
        if (block.indirect_unresolved) {
          issues.push_back({block.term_pc(), "unresolved indirect call in expanded graph"});
        }
        bool any_callee = false;
        for (const std::uint32_t callee : block.callees) {
          const unsigned occurrences = static_cast<unsigned>(
              std::count(call_path.begin(), call_path.end(), callee));
          if (occurrences >= depth_limit(callee)) {
            if (depth_limit(callee) == 1 &&
                options.recursion_depths.count(callee) == 0) {
              issues.push_back(
                  {block.term_pc(),
                   "recursive call without a recursion-depth annotation"});
            }
            // Cut: model the too-deep call as a no-op transfer to the
            // return site (sound under the user's depth assertion).
            if (return_site >= 0) add_edge(from, return_site, EdgeKind::cut);
            continue;
          }
          any_callee = true;
          const auto [callee_instance, callee_entry_node] =
              expand_function(callee, instance_id, from);
          add_edge(from, callee_entry_node, EdgeKind::call);
          // Wire every return block of the callee back to the site.
          const CfgFunction& callee_fn = program.function_at(callee);
          for (const auto& [callee_addr, callee_block] : callee_fn.blocks) {
            if (callee_block.term != Term::ret) continue;
            // Find the callee instance's node for this block: nodes were
            // appended contiguously, search the instance range.
            for (std::size_t n = 0; n < nodes.size(); ++n) {
              if (nodes[n].instance == callee_instance &&
                  nodes[n].block == &callee_block && return_site >= 0) {
                add_edge(static_cast<int>(n), return_site, EdgeKind::ret);
              }
            }
          }
        }
        if (!any_callee && block.callees.empty() && return_site >= 0) {
          // Unresolved call: conservatively continue at the return site
          // (cost of the callee is unknown — the driver refuses to emit
          // a bound when issues are present).
          add_edge(from, return_site, EdgeKind::cut);
        }
        break;
      }
      case Term::ret:
      case Term::halt:
        break;
      }
    }
    call_path.pop_back();
    return {instance_id, node_of_block.at(fn_entry)};
  }
};

} // namespace

Supergraph Supergraph::expand(const Program& program, const Options& options) {
  Supergraph sg;
  sg.program_ = &program;
  Expander expander{program, options, sg.nodes_, sg.edges_, sg.instances_, sg.issues_, {}};
  const auto [root_instance, entry_node] =
      expander.expand_function(program.entry(), -1, -1);
  sg.entry_node_ = entry_node;
  sg.instance_nodes_.resize(sg.instances_.size());
  sg.instance_entry_.assign(sg.instances_.size(), -1);
  for (const SgNode& node : sg.nodes_) {
    sg.instance_nodes_[static_cast<std::size_t>(node.instance)].push_back(node.id);
    const Instance& inst = sg.instances_[static_cast<std::size_t>(node.instance)];
    if (node.block->begin == inst.fn_entry) {
      sg.instance_entry_[static_cast<std::size_t>(node.instance)] = node.id;
    }
  }
  for (const SgNode& node : sg.nodes_) {
    const bool root_ret =
        node.instance == root_instance && node.block->term == Term::ret;
    const bool halts = node.block->term == Term::halt;
    // ecall blocks may terminate the task (EcallFn::exit).
    const bool may_exit = node.block->term == Term::ecall;
    if (root_ret || halts || may_exit) sg.exit_nodes_.push_back(node.id);
  }
  return sg;
}

std::vector<int> Supergraph::instance_topo_order() const {
  // DFS expansion assigns ids caller-first, so id order is topological;
  // verified here so the invariant cannot silently rot.
  std::vector<int> order(instances_.size());
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    WCET_CHECK(instances_[i].caller_instance < static_cast<int>(i),
               "instance ids must be caller-before-callee");
    order[i] = static_cast<int>(i);
  }
  return order;
}

std::vector<int> Supergraph::nodes_covering(std::uint32_t addr) const {
  std::vector<int> covering;
  for (const SgNode& node : nodes_) {
    if (addr >= node.block->begin && addr < node.block->end) covering.push_back(node.id);
  }
  return covering;
}

std::string Supergraph::context_of(int node_id) const {
  const SgNode& node = nodes_[static_cast<std::size_t>(node_id)];
  std::vector<std::string> names;
  int instance = node.instance;
  while (instance >= 0) {
    const Instance& inst = instances_[static_cast<std::size_t>(instance)];
    names.push_back(program_->function_at(inst.fn_entry).name);
    instance = inst.caller_instance;
  }
  std::ostringstream os;
  for (auto it = names.rbegin(); it != names.rend(); ++it) {
    if (it != names.rbegin()) os << " -> ";
    os << *it;
  }
  os << " [0x" << std::hex << node.block->begin << ')';
  return os.str();
}

std::string Supergraph::dump() const {
  std::ostringstream os;
  for (const SgNode& node : nodes_) {
    os << 'n' << node.id << ' ' << context_of(node.id) << " ->";
    for (const int e : node.succ_edges) {
      os << ' ' << 'n' << edges_[static_cast<std::size_t>(e)].to;
    }
    os << '\n';
  }
  return os.str();
}

} // namespace wcet::cfg
