#include "cfg/domloop.hpp"

#include <algorithm>

#include "support/diag.hpp"

namespace wcet::cfg {

std::vector<int> reverse_postorder(const Supergraph& sg) {
  const std::size_t n = sg.nodes().size();
  std::vector<bool> visited(n, false);
  std::vector<int> postorder;
  postorder.reserve(n);
  std::vector<std::pair<int, std::size_t>> stack;
  stack.emplace_back(sg.entry_node(), 0);
  visited[static_cast<std::size_t>(sg.entry_node())] = true;
  while (!stack.empty()) {
    auto& [node, child] = stack.back();
    const auto& succs = sg.node(node).succ_edges;
    if (child < succs.size()) {
      const int next = sg.edge(succs[child]).to;
      ++child;
      if (!visited[static_cast<std::size_t>(next)]) {
        visited[static_cast<std::size_t>(next)] = true;
        stack.emplace_back(next, 0);
      }
    } else {
      postorder.push_back(node);
      stack.pop_back();
    }
  }
  return {postorder.rbegin(), postorder.rend()};
}

std::vector<int> rpo_priorities(const Supergraph& sg) {
  return rpo_priorities(sg, reverse_postorder(sg));
}

std::vector<int> rpo_priorities(const Supergraph& sg, const std::vector<int>& rpo) {
  std::vector<int> priority(sg.nodes().size(), static_cast<int>(sg.nodes().size()));
  for (std::size_t i = 0; i < rpo.size(); ++i) {
    priority[static_cast<std::size_t>(rpo[i])] = static_cast<int>(i);
  }
  return priority;
}

Dominators::Dominators(const Supergraph& sg) {
  const std::size_t n = sg.nodes().size();
  idom_.assign(n, -1);
  reachable_.assign(n, false);
  rpo_index_.assign(n, -1);

  rpo_ = reverse_postorder(sg);
  for (std::size_t i = 0; i < rpo_.size(); ++i) {
    reachable_[static_cast<std::size_t>(rpo_[i])] = true;
    rpo_index_[static_cast<std::size_t>(rpo_[i])] = static_cast<int>(i);
  }

  // Cooper–Harvey–Kennedy iterative dominators.
  const auto intersect = [&](int a, int b) {
    while (a != b) {
      while (rpo_index_[static_cast<std::size_t>(a)] > rpo_index_[static_cast<std::size_t>(b)]) {
        a = idom_[static_cast<std::size_t>(a)];
      }
      while (rpo_index_[static_cast<std::size_t>(b)] > rpo_index_[static_cast<std::size_t>(a)]) {
        b = idom_[static_cast<std::size_t>(b)];
      }
    }
    return a;
  };
  idom_[static_cast<std::size_t>(sg.entry_node())] = sg.entry_node();
  bool changed = true;
  while (changed) {
    changed = false;
    for (const int node : rpo_) {
      if (node == sg.entry_node()) continue;
      int new_idom = -1;
      for (const int e : sg.node(node).pred_edges) {
        const int pred = sg.edge(e).from;
        if (!reachable_[static_cast<std::size_t>(pred)]) continue;
        if (idom_[static_cast<std::size_t>(pred)] < 0) continue;
        new_idom = new_idom < 0 ? pred : intersect(new_idom, pred);
      }
      if (new_idom >= 0 && idom_[static_cast<std::size_t>(node)] != new_idom) {
        idom_[static_cast<std::size_t>(node)] = new_idom;
        changed = true;
      }
    }
  }
  // Entry's idom is conventionally -1 externally.
  idom_[static_cast<std::size_t>(sg.entry_node())] = -1;
}

bool Dominators::dominates(int a, int b) const {
  int walk = b;
  while (walk >= 0) {
    if (walk == a) return true;
    walk = idom_[static_cast<std::size_t>(walk)];
  }
  return false;
}

PostDominators::PostDominators(const Supergraph& sg) {
  const std::size_t n = sg.nodes().size();
  root_ = static_cast<int>(n); // virtual sink fed by every exit node
  ipdom_.assign(n + 1, -1);
  reachable_.assign(n + 1, false);
  rpo_index_.assign(n + 1, -1);

  // Reverse postorder of the *reversed* graph from the virtual sink.
  // Reversed successors of the sink are the exit nodes; of a real node,
  // the sources of its predecessor edges.
  const auto rev_succ_count = [&](int node) {
    return node == root_ ? sg.exit_nodes().size() : sg.node(node).pred_edges.size();
  };
  const auto rev_succ = [&](int node, std::size_t i) {
    return node == root_ ? sg.exit_nodes()[i] : sg.edge(sg.node(node).pred_edges[i]).from;
  };
  std::vector<bool> visited(n + 1, false);
  std::vector<int> postorder;
  postorder.reserve(n + 1);
  std::vector<std::pair<int, std::size_t>> stack;
  stack.emplace_back(root_, 0);
  visited[n] = true;
  while (!stack.empty()) {
    auto& [node, child] = stack.back();
    if (child < rev_succ_count(node)) {
      const int next = rev_succ(node, child);
      ++child;
      if (!visited[static_cast<std::size_t>(next)]) {
        visited[static_cast<std::size_t>(next)] = true;
        stack.emplace_back(next, 0);
      }
    } else {
      postorder.push_back(node);
      stack.pop_back();
    }
  }
  std::vector<int> rpo(postorder.rbegin(), postorder.rend());
  for (std::size_t i = 0; i < rpo.size(); ++i) {
    reachable_[static_cast<std::size_t>(rpo[i])] = true;
    rpo_index_[static_cast<std::size_t>(rpo[i])] = static_cast<int>(i);
  }

  const auto intersect = [&](int a, int b) {
    while (a != b) {
      while (rpo_index_[static_cast<std::size_t>(a)] > rpo_index_[static_cast<std::size_t>(b)]) {
        a = ipdom_[static_cast<std::size_t>(a)];
      }
      while (rpo_index_[static_cast<std::size_t>(b)] > rpo_index_[static_cast<std::size_t>(a)]) {
        b = ipdom_[static_cast<std::size_t>(b)];
      }
    }
    return a;
  };
  // Whether `node` is an exit (so the virtual sink is a reversed pred).
  std::vector<bool> is_exit(n, false);
  for (const int e : sg.exit_nodes()) is_exit[static_cast<std::size_t>(e)] = true;
  ipdom_[static_cast<std::size_t>(root_)] = root_;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const int node : rpo) {
      if (node == root_) continue;
      int new_ipdom = is_exit[static_cast<std::size_t>(node)] ? root_ : -1;
      for (const int e : sg.node(node).succ_edges) {
        const int succ = sg.edge(e).to;
        if (!reachable_[static_cast<std::size_t>(succ)]) continue;
        if (ipdom_[static_cast<std::size_t>(succ)] < 0) continue;
        new_ipdom = new_ipdom < 0 ? succ : intersect(new_ipdom, succ);
      }
      if (new_ipdom >= 0 && ipdom_[static_cast<std::size_t>(node)] != new_ipdom) {
        ipdom_[static_cast<std::size_t>(node)] = new_ipdom;
        changed = true;
      }
    }
  }
}

int PostDominators::ipdom(int node) const {
  const int p = ipdom_[static_cast<std::size_t>(node)];
  return p == root_ ? -1 : p;
}

bool PostDominators::dominates(int a, int b) const {
  int walk = b;
  while (walk >= 0 && walk != root_) {
    if (walk == a) return true;
    walk = ipdom_[static_cast<std::size_t>(walk)];
  }
  return false;
}

namespace {

// Tarjan SCC restricted to a node universe and enabled edges.
std::vector<std::vector<int>> sccs_of(const Supergraph& sg, const std::vector<int>& universe,
                                      const std::vector<bool>& edge_enabled) {
  const std::size_t n = sg.nodes().size();
  std::vector<bool> in_universe(n, false);
  for (const int v : universe) in_universe[static_cast<std::size_t>(v)] = true;

  std::vector<int> index(n, -1), low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<int> stack;
  std::vector<std::vector<int>> result;
  int counter = 0;

  struct Frame {
    int node;
    std::size_t child = 0;
  };
  for (const int root : universe) {
    if (index[static_cast<std::size_t>(root)] >= 0) continue;
    std::vector<Frame> frames{{root, 0}};
    index[static_cast<std::size_t>(root)] = low[static_cast<std::size_t>(root)] = counter++;
    stack.push_back(root);
    on_stack[static_cast<std::size_t>(root)] = true;
    while (!frames.empty()) {
      Frame& frame = frames.back();
      const auto& succs = sg.node(frame.node).succ_edges;
      bool descended = false;
      while (frame.child < succs.size()) {
        const int eid = succs[frame.child++];
        if (!edge_enabled[static_cast<std::size_t>(eid)]) continue;
        const int next = sg.edge(eid).to;
        if (!in_universe[static_cast<std::size_t>(next)]) continue;
        if (index[static_cast<std::size_t>(next)] < 0) {
          index[static_cast<std::size_t>(next)] = low[static_cast<std::size_t>(next)] = counter++;
          stack.push_back(next);
          on_stack[static_cast<std::size_t>(next)] = true;
          frames.push_back({next, 0});
          descended = true;
          break;
        }
        if (on_stack[static_cast<std::size_t>(next)]) {
          low[static_cast<std::size_t>(frame.node)] =
              std::min(low[static_cast<std::size_t>(frame.node)], index[static_cast<std::size_t>(next)]);
        }
      }
      if (descended) continue;
      if (low[static_cast<std::size_t>(frame.node)] == index[static_cast<std::size_t>(frame.node)]) {
        std::vector<int> scc;
        for (;;) {
          const int member = stack.back();
          stack.pop_back();
          on_stack[static_cast<std::size_t>(member)] = false;
          scc.push_back(member);
          if (member == frame.node) break;
        }
        result.push_back(std::move(scc));
      }
      const int done = frame.node;
      frames.pop_back();
      if (!frames.empty()) {
        low[static_cast<std::size_t>(frames.back().node)] =
            std::min(low[static_cast<std::size_t>(frames.back().node)],
                     low[static_cast<std::size_t>(done)]);
      }
    }
  }
  return result;
}

bool has_self_edge(const Supergraph& sg, int node, const std::vector<bool>& edge_enabled) {
  for (const int e : sg.node(node).succ_edges) {
    if (edge_enabled[static_cast<std::size_t>(e)] && sg.edge(e).to == node) return true;
  }
  return false;
}

} // namespace

LoopForest::LoopForest(const Supergraph& sg) {
  loop_of_.assign(sg.nodes().size(), -1);
  std::vector<int> universe;
  universe.reserve(sg.nodes().size());
  for (const SgNode& node : sg.nodes()) universe.push_back(node.id);
  std::vector<bool> edge_enabled(sg.edges().size(), true);
  discover(sg, universe, edge_enabled, -1);
  // Compute depths.
  for (Loop& loop : loops_) {
    int depth = 0;
    for (int p = loop.parent; p >= 0; p = loops_[static_cast<std::size_t>(p)].parent) ++depth;
    loop.depth = depth;
  }
}

void LoopForest::discover(const Supergraph& sg, const std::vector<int>& universe,
                          const std::vector<bool>& edge_enabled, int parent) {
  const auto sccs = sccs_of(sg, universe, edge_enabled);
  for (const auto& scc : sccs) {
    const bool trivial = scc.size() == 1 && !has_self_edge(sg, scc[0], edge_enabled);
    if (trivial) continue;

    std::vector<bool> in_scc(sg.nodes().size(), false);
    for (const int v : scc) in_scc[static_cast<std::size_t>(v)] = true;

    Loop loop;
    loop.id = static_cast<int>(loops_.size());
    loop.parent = parent;
    loop.nodes = scc;
    std::sort(loop.nodes.begin(), loop.nodes.end());

    // Entries: scc nodes with a predecessor outside the scc (within the
    // current universe view, edges as currently enabled).
    for (const int v : loop.nodes) {
      bool is_entry = false;
      for (const int e : sg.node(v).pred_edges) {
        if (!edge_enabled[static_cast<std::size_t>(e)]) continue;
        if (!in_scc[static_cast<std::size_t>(sg.edge(e).from)]) {
          is_entry = true;
          loop.entry_edges.push_back(e);
        }
      }
      if (is_entry) loop.entries.push_back(v);
    }
    if (loop.entries.empty()) {
      // Unreachable cycle (no external predecessor) — pick the smallest
      // node as a synthetic header; IPET will assign it count zero.
      loop.entries.push_back(loop.nodes.front());
    }
    loop.irreducible = loop.entries.size() > 1;
    loop.header = loop.entries.front();

    std::vector<bool> is_entry_node(sg.nodes().size(), false);
    for (const int v : loop.entries) is_entry_node[static_cast<std::size_t>(v)] = true;

    // Back edges (inside -> entry) and exit edges (inside -> outside).
    std::vector<bool> next_enabled = edge_enabled;
    for (const int v : loop.nodes) {
      for (const int e : sg.node(v).succ_edges) {
        if (!edge_enabled[static_cast<std::size_t>(e)]) continue;
        const int to = sg.edge(e).to;
        if (in_scc[static_cast<std::size_t>(to)]) {
          if (is_entry_node[static_cast<std::size_t>(to)]) {
            loop.back_edges.push_back(e);
            next_enabled[static_cast<std::size_t>(e)] = false; // sever for nesting
          }
        } else {
          loop.exit_edges.push_back(e);
        }
      }
    }

    const int loop_id = loop.id;
    // Overwrite unconditionally: recursion visits outer loops first, so
    // the last writer is the innermost loop.
    for (const int v : loop.nodes) {
      loop_of_[static_cast<std::size_t>(v)] = loop_id;
    }
    membership_.push_back(std::vector<bool>(sg.nodes().size(), false));
    for (const int v : loop.nodes) membership_.back()[static_cast<std::size_t>(v)] = true;
    loops_.push_back(std::move(loop));

    // Recurse into the body with the severed back edges: nested loops.
    discover(sg, loops_[static_cast<std::size_t>(loop_id)].nodes, next_enabled, loop_id);
    if (parent < 0) {
      // fixup children lists lazily below
    }
  }
  // Wire children lists (single pass at the end of each level).
  for (Loop& loop : loops_) {
    loop.children.clear();
  }
  for (const Loop& loop : loops_) {
    if (loop.parent >= 0) {
      loops_[static_cast<std::size_t>(loop.parent)].children.push_back(loop.id);
    }
  }
}

bool LoopForest::loop_contains(int loop_id, int node) const {
  return membership_[static_cast<std::size_t>(loop_id)][static_cast<std::size_t>(node)];
}

bool LoopForest::has_irreducible_loops() const {
  return std::any_of(loops_.begin(), loops_.end(),
                     [](const Loop& l) { return l.irreducible; });
}

} // namespace wcet::cfg
