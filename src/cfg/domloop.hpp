// Dominator tree and loop forest over the supergraph.
//
// The loop forest is computed by nested strongly-connected-component
// decomposition, which — unlike natural-loop detection — identifies
// *irreducible* loops (multiple-entry cycles) instead of silently
// mis-handling them. Irreducibility is the property the paper ties to
// rules 14.4 (goto), 16.2 (recursion) and 20.7 (setjmp/longjmp): no
// automatic loop-bound analysis, no virtual unrolling (Section 4.2).
#pragma once

#include <cstdint>
#include <vector>

#include "cfg/supergraph.hpp"

namespace wcet::cfg {

// Reverse postorder of the nodes reachable from the supergraph entry
// (a weak-topological iteration order: predecessors before successors
// except along back edges). Shared by the dominator computation and the
// fixpoint engine's priority worklists.
std::vector<int> reverse_postorder(const Supergraph& sg);

// Per-node scheduling priority for support/fixpoint.hpp: the node's
// reverse-postorder index; unreachable nodes are bucketed last. The
// second overload reuses an already-computed RPO (e.g. Dominators::rpo).
std::vector<int> rpo_priorities(const Supergraph& sg);
std::vector<int> rpo_priorities(const Supergraph& sg, const std::vector<int>& rpo);

class Dominators {
public:
  explicit Dominators(const Supergraph& sg);

  // Immediate dominator node id, -1 for the entry / unreachable nodes.
  int idom(int node) const { return idom_[static_cast<std::size_t>(node)]; }
  bool reachable(int node) const { return reachable_[static_cast<std::size_t>(node)]; }
  bool dominates(int a, int b) const;
  // Reverse postorder of reachable nodes.
  const std::vector<int>& rpo() const { return rpo_; }

private:
  std::vector<int> idom_;
  std::vector<bool> reachable_;
  std::vector<int> rpo_;
  std::vector<int> rpo_index_;
};

// Post-dominators: the same Cooper–Harvey–Kennedy iteration run on the
// reversed supergraph, rooted at a virtual sink fed by every exit node
// (the supergraph may return from several points). `a` post-dominating
// `b` means every path from `b` to any program exit passes through `a`
// — together with Dominators this is what identifies single-entry/
// single-exit regions for IPET's sub-function decomposition.
class PostDominators {
public:
  explicit PostDominators(const Supergraph& sg);

  // Immediate post-dominator node id; -1 when it is the virtual sink
  // (exit nodes) or the node cannot reach any exit.
  int ipdom(int node) const;
  // True when the node reaches some exit node (the virtual sink).
  bool reachable(int node) const { return reachable_[static_cast<std::size_t>(node)]; }
  // Does `a` post-dominate `b`?
  bool dominates(int a, int b) const;

private:
  std::vector<int> ipdom_; // internally the virtual sink is node id `n`
  std::vector<bool> reachable_;
  std::vector<int> rpo_index_;
  int root_ = -1;
};

struct Loop {
  int id = -1;
  int header = -1;            // representative entry node
  bool irreducible = false;   // more than one entry node
  std::vector<int> nodes;     // all member nodes (includes nested loops)
  std::vector<int> entries;   // member nodes with predecessors outside
  std::vector<int> entry_edges; // edges from outside into an entry node
  std::vector<int> back_edges;  // edges from inside onto an entry node
  std::vector<int> exit_edges;  // edges from inside to outside
  int parent = -1;
  std::vector<int> children;
  int depth = 0; // 0 == outermost
};

class LoopForest {
public:
  explicit LoopForest(const Supergraph& sg);

  const std::vector<Loop>& loops() const { return loops_; }
  const Loop& loop(int id) const { return loops_[static_cast<std::size_t>(id)]; }
  // Innermost loop containing `node`, -1 if none.
  int innermost_loop_of(int node) const { return loop_of_[static_cast<std::size_t>(node)]; }
  bool loop_contains(int loop_id, int node) const;
  bool has_irreducible_loops() const;

private:
  void discover(const Supergraph& sg, const std::vector<int>& universe,
                const std::vector<bool>& edge_enabled, int parent);

  std::vector<Loop> loops_;
  std::vector<int> loop_of_;
  std::vector<std::vector<bool>> membership_; // loop id -> node bitmap
};

} // namespace wcet::cfg
