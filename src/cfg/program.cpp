#include "cfg/program.hpp"

#include <algorithm>
#include <deque>
#include <sstream>

#include "isa/disasm.hpp"
#include "support/diag.hpp"

namespace wcet::cfg {

using isa::Inst;
using isa::Opcode;

const CfgBlock& CfgFunction::block_at(std::uint32_t addr) const {
  const auto it = blocks.find(addr);
  WCET_CHECK(it != blocks.end(), "no block at given address");
  return it->second;
}

namespace {

// Statically-known control flow — fall-through, conditional branches,
// direct jumps and calls — is part of the input, not of the analysis:
// a static successor outside the mapped image means the binary is
// truncated or mislinked, so it is rejected as an InputError naming
// the offending instruction. Indirect targets (annotation hints,
// value-analysis resolutions, jump-table matches) stay DecodeIssue
// obstructions instead: they may be over-approximations, and an
// over-approximate target set must never turn into a hard error.
void require_mapped(const isa::Image& image, std::uint32_t from_pc, std::uint32_t target,
                    const char* what) {
  if (image.read_word(target)) return;
  std::ostringstream os;
  os << what << " at " << image.describe(from_pc) << " leads to unmapped address 0x"
     << std::hex << target << " (truncated or mislinked image)";
  throw InputError(os.str());
}

// Decoded instruction fetch with diagnostics.
std::optional<Inst> fetch(const isa::Image& image, std::uint32_t pc,
                          std::vector<DecodeIssue>& issues) {
  const auto word = image.read_word(pc);
  if (!word) {
    issues.push_back({pc, "control flow reaches unmapped address"});
    return std::nullopt;
  }
  const auto inst = isa::decode(*word);
  if (!inst) {
    issues.push_back({pc, "control flow reaches invalid opcode"});
    return std::nullopt;
  }
  return inst;
}

// Recognize the bounds-checked jump-table idiom ending in `inst` (a
// non-return jalr) at `pc`. Walks the instruction window backwards
// looking for
//     lui  rB, hi(table)     (or movi expansion)
//     ori  rB, rB, lo(table)
//     slli rI, rIdx, 2
//     add  rB, rB, rI
//     lw   rT, 0(rB)
//     jalr r?, rT, 0
// and reads the table from a read-only section. The element count comes
// from the table's object symbol size — tables must be emitted with a
// .global symbol (mcc's switch lowering does this).
std::vector<std::uint32_t> match_jump_table(const isa::Image& image,
                                            const std::vector<std::pair<std::uint32_t, Inst>>& window,
                                            const Inst& jalr) {
  if (jalr.imm != 0) return {};
  // Find the defining load of the jalr operand.
  int load_at = -1;
  for (int i = static_cast<int>(window.size()) - 1; i >= 0; --i) {
    const Inst& inst = window[static_cast<std::size_t>(i)].second;
    if (inst.writes_rd() && inst.rd == jalr.rs1) {
      if (inst.op == Opcode::lw && inst.imm == 0) load_at = i;
      break;
    }
  }
  if (load_at < 0) return {};
  const Inst load = window[static_cast<std::size_t>(load_at)].second;
  // Find `add base, base, index` defining the load address.
  int add_at = -1;
  for (int i = load_at - 1; i >= 0; --i) {
    const Inst& inst = window[static_cast<std::size_t>(i)].second;
    if (inst.writes_rd() && inst.rd == load.rs1) {
      if (inst.op == Opcode::add) add_at = i;
      break;
    }
  }
  if (add_at < 0) return {};
  const Inst add = window[static_cast<std::size_t>(add_at)].second;
  // One operand must resolve to a constant via lui/ori, the other may be
  // anything (the scaled index).
  const auto resolve_constant = [&](std::uint8_t reg, int before) -> std::optional<std::uint32_t> {
    std::optional<std::uint32_t> upper;
    for (int i = before - 1; i >= 0; --i) {
      const Inst& inst = window[static_cast<std::size_t>(i)].second;
      if (!inst.writes_rd() || inst.rd != reg) continue;
      if (inst.op == Opcode::ori && inst.rs1 == reg) {
        // Keep scanning for the lui that feeds it.
        for (int j = i - 1; j >= 0; --j) {
          const Inst& def = window[static_cast<std::size_t>(j)].second;
          if (!def.writes_rd() || def.rd != reg) continue;
          if (def.op == Opcode::lui) {
            upper = (static_cast<std::uint32_t>(def.imm) << 16) |
                    static_cast<std::uint32_t>(inst.imm);
          }
          break;
        }
      } else if (inst.op == Opcode::ori && inst.rs1 == isa::reg_zero) {
        upper = static_cast<std::uint32_t>(inst.imm);
      }
      break;
    }
    return upper;
  };
  std::optional<std::uint32_t> table = resolve_constant(add.rs1, add_at);
  if (!table) table = resolve_constant(add.rs2, add_at);
  if (!table) return {};
  // Element count from the covering object symbol.
  const isa::Symbol* sym = image.symbol_covering(*table);
  if (sym == nullptr || sym->addr != *table || sym->size < 4) return {};
  const isa::Section* sec = image.section_at(*table);
  if (sec == nullptr || sec->writable) return {}; // table must be immutable
  std::vector<std::uint32_t> targets;
  for (std::uint32_t off = 0; off + 4 <= sym->size; off += 4) {
    const auto entry = image.read_word(*table + off);
    if (!entry) return {};
    targets.push_back(*entry);
  }
  std::sort(targets.begin(), targets.end());
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
  return targets;
}

struct Decoder {
  const isa::Image& image;
  const ResolutionHints& hints;
  std::vector<DecodeIssue>& issues;
  std::deque<std::uint32_t> pending_functions;
  std::set<std::uint32_t> known_functions;

  void enqueue_function(std::uint32_t entry) {
    if (known_functions.insert(entry).second) pending_functions.push_back(entry);
  }

  CfgFunction decode_function(std::uint32_t entry) {
    CfgFunction fn;
    fn.entry = entry;
    if (const isa::Symbol* sym = image.symbol_covering(entry);
        sym != nullptr && sym->addr == entry) {
      fn.name = sym->name;
    } else {
      std::ostringstream os;
      os << "fn_0x" << std::hex << entry;
      fn.name = os.str();
    }

    // Pass A: explore reachable instructions, collect leaders and edges.
    std::map<std::uint32_t, Inst> insts;
    std::set<std::uint32_t> leaders{entry};
    std::deque<std::uint32_t> work{entry};
    std::set<std::uint32_t> visited;
    // Sliding window per linear run for the jump-table matcher.
    std::map<std::uint32_t, std::vector<std::uint32_t>> resolved_indirect;

    while (!work.empty()) {
      std::uint32_t pc = work.front();
      work.pop_front();
      std::vector<std::pair<std::uint32_t, Inst>> window;
      bool fell_into_visited = false;
      for (;;) {
        if (!visited.insert(pc).second) {
          fell_into_visited = true;
          break;
        }
        const auto inst_opt = fetch(image, pc, issues);
        if (!inst_opt) {
          fn.has_unresolved_indirect = true;
          break;
        }
        const Inst inst = *inst_opt;
        insts.emplace(pc, inst);
        window.emplace_back(pc, inst);

        if (inst.is_conditional_branch()) {
          const std::uint32_t target = inst.target(pc);
          require_mapped(image, pc, target, "conditional branch");
          require_mapped(image, pc, pc + 4, "fall-through of conditional branch");
          leaders.insert(target);
          leaders.insert(pc + 4);
          work.push_back(target);
          work.push_back(pc + 4);
          break;
        }
        if (inst.op == Opcode::jal) {
          const std::uint32_t target = inst.target(pc);
          if (inst.is_call()) {
            require_mapped(image, pc, target, "direct call");
            require_mapped(image, pc, pc + 4, "return path of direct call");
            enqueue_function(target);
            leaders.insert(pc + 4);
            work.push_back(pc + 4);
          } else {
            require_mapped(image, pc, target, "direct jump");
            leaders.insert(target);
            work.push_back(target);
          }
          break;
        }
        if (inst.op == Opcode::jalr) {
          if (inst.is_return()) break;
          // Hints take precedence; then the table matcher.
          std::vector<std::uint32_t> targets;
          if (const auto hint = hints.indirect_targets.find(pc);
              hint != hints.indirect_targets.end()) {
            targets = hint->second;
          } else {
            targets = match_jump_table(image, window, inst);
          }
          if (inst.is_call()) {
            if (targets.empty()) {
              issues.push_back({pc, "unresolved indirect call (function pointer)"});
              fn.has_unresolved_indirect = true;
            }
            for (const std::uint32_t callee : targets) enqueue_function(callee);
            resolved_indirect[pc] = targets;
            leaders.insert(pc + 4);
            work.push_back(pc + 4);
          } else {
            if (targets.empty()) {
              issues.push_back({pc, "unresolved indirect jump"});
              fn.has_unresolved_indirect = true;
            }
            resolved_indirect[pc] = targets;
            for (const std::uint32_t t : targets) {
              leaders.insert(t);
              work.push_back(t);
            }
          }
          break;
        }
        if (inst.op == Opcode::halt) break;
        if (inst.op == Opcode::ecall) {
          require_mapped(image, pc, pc + 4, "fall-through of ecall");
          leaders.insert(pc + 4);
          work.push_back(pc + 4);
          break;
        }
        require_mapped(image, pc, pc + 4, "straight-line code");
        pc += 4;
      }
      // A run that fell into already-decoded code splits the block there.
      if (fell_into_visited && insts.count(pc) != 0) leaders.insert(pc);
    }

    // Pass B: slice the instruction map into basic blocks.
    for (auto it = insts.begin(); it != insts.end();) {
      const std::uint32_t begin = it->first;
      CfgBlock block;
      block.begin = begin;
      std::uint32_t pc = begin;
      while (it != insts.end() && it->first == pc) {
        const Inst inst = it->second;
        block.insts.push_back(inst);
        ++it;
        const std::uint32_t next = pc + 4;
        const bool next_is_leader = leaders.count(next) != 0;
        if (inst.ends_basic_block()) {
          // Terminator kinds and successors.
          if (inst.is_conditional_branch()) {
            block.term = Term::branch;
            block.succs = {next, inst.target(pc)};
          } else if (inst.op == Opcode::jal) {
            if (inst.is_call()) {
              block.term = Term::call;
              block.callees = {inst.target(pc)};
              block.succs = {next};
            } else {
              block.term = Term::jump;
              block.succs = {inst.target(pc)};
            }
          } else if (inst.op == Opcode::jalr) {
            if (inst.is_return()) {
              block.term = Term::ret;
            } else if (inst.is_call()) {
              block.term = Term::indirect_call;
              block.callees = resolved_indirect[pc];
              block.indirect_unresolved = block.callees.empty();
              block.succs = {next};
            } else {
              block.term = Term::indirect_jump;
              block.succs = resolved_indirect[pc];
              block.indirect_unresolved = block.succs.empty();
            }
          } else if (inst.op == Opcode::ecall) {
            block.term = Term::ecall;
            if (insts.count(next) != 0) block.succs = {next};
          } else {
            WCET_CHECK(inst.op == Opcode::halt, "unexpected terminator");
            block.term = Term::halt;
          }
          pc = next;
          break;
        }
        if (next_is_leader || it == insts.end() || it->first != next) {
          block.term = Term::fallthrough;
          if (insts.count(next) != 0) block.succs = {next};
          pc = next;
          break;
        }
        pc = next;
      }
      block.end = pc;
      fn.blocks.emplace(begin, std::move(block));
      // Advance `it` to the next leader-aligned position (it already is).
    }
    return fn;
  }
};

} // namespace

Program Program::reconstruct(const isa::Image& image, std::uint32_t entry,
                             const ResolutionHints& hints) {
  Program program;
  program.image_ = &image;
  program.entry_ = entry;
  Decoder decoder{image, hints, program.issues_, {}, {}};
  decoder.enqueue_function(entry);
  while (!decoder.pending_functions.empty()) {
    const std::uint32_t fn_entry = decoder.pending_functions.front();
    decoder.pending_functions.pop_front();
    program.functions_.emplace(fn_entry, decoder.decode_function(fn_entry));
  }
  return program;
}

const CfgFunction& Program::function_at(std::uint32_t entry_addr) const {
  const auto it = functions_.find(entry_addr);
  WCET_CHECK(it != functions_.end(), "no function at given entry");
  return it->second;
}

bool Program::fully_resolved() const {
  for (const auto& [entry, fn] : functions_) {
    if (fn.has_unresolved_indirect) return false;
  }
  return true;
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> Program::call_edges() const {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (const auto& [entry, fn] : functions_) {
    for (const auto& [addr, block] : fn.blocks) {
      for (const std::uint32_t callee : block.callees) {
        edges.emplace_back(entry, callee);
      }
    }
  }
  return edges;
}

std::set<std::uint32_t> Program::recursive_functions() const {
  // Tarjan SCC over the call graph; members of non-trivial SCCs (or with
  // self edges) are recursive.
  std::map<std::uint32_t, std::vector<std::uint32_t>> adjacency;
  for (const auto& [from, to] : call_edges()) adjacency[from].push_back(to);

  std::set<std::uint32_t> result;
  std::map<std::uint32_t, int> index, low;
  std::vector<std::uint32_t> stack;
  std::set<std::uint32_t> on_stack;
  int counter = 0;

  struct Frame {
    std::uint32_t node;
    std::size_t next_child = 0;
  };
  for (const auto& [fn_entry, fn] : functions_) {
    if (index.count(fn_entry) != 0) continue;
    std::vector<Frame> frames{{fn_entry}};
    index[fn_entry] = low[fn_entry] = counter++;
    stack.push_back(fn_entry);
    on_stack.insert(fn_entry);
    while (!frames.empty()) {
      Frame& frame = frames.back();
      const auto& children = adjacency[frame.node];
      if (frame.next_child < children.size()) {
        const std::uint32_t child = children[frame.next_child++];
        if (index.count(child) == 0) {
          index[child] = low[child] = counter++;
          stack.push_back(child);
          on_stack.insert(child);
          frames.push_back({child});
        } else if (on_stack.count(child) != 0) {
          low[frame.node] = std::min(low[frame.node], index[child]);
        }
      } else {
        if (low[frame.node] == index[frame.node]) {
          std::vector<std::uint32_t> scc;
          for (;;) {
            const std::uint32_t member = stack.back();
            stack.pop_back();
            on_stack.erase(member);
            scc.push_back(member);
            if (member == frame.node) break;
          }
          const bool self_loop = [&] {
            const auto& adj = adjacency[frame.node];
            return std::find(adj.begin(), adj.end(), frame.node) != adj.end();
          }();
          if (scc.size() > 1 || self_loop) {
            result.insert(scc.begin(), scc.end());
          }
        }
        const std::uint32_t done = frame.node;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().node] = std::min(low[frames.back().node], low[done]);
        }
      }
    }
  }
  return result;
}

std::string Program::dump() const {
  std::ostringstream os;
  for (const auto& [entry, fn] : functions_) {
    os << "function " << fn.name << " @0x" << std::hex << entry << std::dec << '\n';
    for (const auto& [addr, block] : fn.blocks) {
      os << "  block [0x" << std::hex << block.begin << ", 0x" << block.end << ")";
      os << " succs:";
      for (const auto s : block.succs) os << " 0x" << s;
      if (!block.callees.empty()) {
        os << " calls:";
        for (const auto c : block.callees) os << " 0x" << c;
      }
      os << std::dec << '\n';
      std::uint32_t pc = block.begin;
      for (const auto& inst : block.insts) {
        os << "    " << isa::disassemble(inst, pc, image_) << '\n';
        pc += 4;
      }
    }
  }
  return os.str();
}

} // namespace wcet::cfg
