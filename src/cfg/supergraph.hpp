// Supergraph: the context-expanded interprocedural CFG on which every
// analysis phase runs.
//
// Each function is cloned per call path ("virtual inlining"), giving the
// analyses unlimited call-string context on acyclic call graphs — the
// mechanism behind the paper's observation that loop bounds and cache
// behaviour differ per execution context (VIVU, Section 4.2 rule 14.4
// discussion). Recursion (rule 16.2) is unrolled up to a user-annotated
// depth; without an annotation the cycle is cut and reported as a
// tier-one obstruction.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cfg/program.hpp"

namespace wcet::cfg {

enum class EdgeKind {
  fall,  // branch not taken / straight-line flow
  taken, // branch taken / direct or indirect jump target
  call,  // into callee entry
  ret,   // callee return block back to the return site
  cut,   // recursion cut under a depth annotation: call treated as no-op
};

struct SgEdge {
  int id = -1;
  int from = -1;
  int to = -1;
  EdgeKind kind = EdgeKind::fall;
};

struct SgNode {
  int id = -1;
  int instance = -1;           // function instance
  std::uint32_t fn_entry = 0;  // defining function
  const CfgBlock* block = nullptr; // owned by the Program (must outlive)
  std::vector<int> succ_edges;
  std::vector<int> pred_edges;
};

struct Instance {
  int id = -1;
  std::uint32_t fn_entry = 0;
  int caller_instance = -1; // -1 for the root
  int call_site_node = -1;  // node holding the call, -1 for the root
};

struct SupergraphIssue {
  std::uint32_t pc = 0;
  std::string message;
};

class Supergraph {
public:
  struct Options {
    Options() {} // NOLINT: GCC 12 rejects `= {}` default args on aggregates here
    // function entry address -> maximum recursion depth (from the
    // annotation database). A function may appear on a call path at most
    // this many times; deeper calls are cut.
    std::map<std::uint32_t, unsigned> recursion_depths;
    std::size_t max_nodes = 200000;
  };

  static Supergraph expand(const Program& program, const Options& options = {});

  const Program& program() const { return *program_; }
  const std::vector<SgNode>& nodes() const { return nodes_; }
  const std::vector<SgEdge>& edges() const { return edges_; }
  const std::vector<Instance>& instances() const { return instances_; }
  const SgNode& node(int id) const { return nodes_[static_cast<std::size_t>(id)]; }
  const SgEdge& edge(int id) const { return edges_[static_cast<std::size_t>(id)]; }
  int entry_node() const { return entry_node_; }
  // Task exits: return blocks of the root instance, halt blocks anywhere.
  const std::vector<int>& exit_nodes() const { return exit_nodes_; }
  const std::vector<SupergraphIssue>& issues() const { return issues_; }

  // ------------------------------------------------------------------
  // Instance-DAG exports. The expansion builds a *tree* of function
  // instances (each instance has exactly one caller); together with the
  // call/ret edges this is the acyclic between-back-edges instance DAG
  // that per-instance schedulers iterate over: the shared round engine
  // (support/instance_rounds.hpp) driving the value and cache
  // fixpoints, and the IPET subtree decomposition. Every analysis edge
  // either stays inside one instance or is a call/ret edge between two
  // — the disjointness that makes the parallel schedules race-free and
  // deterministic.

  // Node ids of one instance, ascending (contiguous by construction).
  const std::vector<int>& instance_nodes(int instance) const {
    return instance_nodes_[static_cast<std::size_t>(instance)];
  }
  // Topological order of the instance tree: callers strictly before
  // callees. Instance ids are assigned in call-DFS order, so id order
  // is already topological; exported so schedulers depend on the
  // contract, not the construction detail.
  std::vector<int> instance_topo_order() const;
  // Entry node of an instance (the node of the function's entry block).
  int instance_entry_node(int instance) const {
    return instance_entry_[static_cast<std::size_t>(instance)];
  }
  // True when the edge connects two different function instances
  // (call / ret edges; cut edges stay within the caller).
  bool is_cross_instance(int edge_id) const {
    const SgEdge& e = edges_[static_cast<std::size_t>(edge_id)];
    return nodes_[static_cast<std::size_t>(e.from)].instance !=
           nodes_[static_cast<std::size_t>(e.to)].instance;
  }

  // Node ids (ascending) whose block covers `addr` — one per instance
  // the owning function was cloned into. This is the address->instance
  // mapping flow-fact eligibility is built on: an annotation at `addr`
  // constrains exactly these nodes, so IPET decomposition pins exactly
  // the subtrees containing one of them.
  std::vector<int> nodes_covering(std::uint32_t addr) const;

  // Human-readable call-path context of a node:
  // "main -> handler -> memcpy [0x1040)".
  std::string context_of(int node_id) const;

  std::string dump() const;

private:
  const Program* program_ = nullptr;
  std::vector<SgNode> nodes_;
  std::vector<SgEdge> edges_;
  std::vector<Instance> instances_;
  std::vector<std::vector<int>> instance_nodes_;
  std::vector<int> instance_entry_;
  std::vector<int> exit_nodes_;
  std::vector<SupergraphIssue> issues_;
  int entry_node_ = -1;
};

} // namespace wcet::cfg
