#include "serve/analysis_server.hpp"

#include <algorithm>
#include <chrono>
#include <new>
#include <sstream>
#include <utility>

#include "support/diag.hpp"
#include "support/fault_inject.hpp"
#include "support/fixpoint.hpp"
#include "support/thread_pool.hpp"
#include "wcet/pipeline.hpp"

namespace wcet::serve {

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

void put_u32(std::vector<std::uint8_t>& key, std::uint32_t v) {
  key.push_back(static_cast<std::uint8_t>(v));
  key.push_back(static_cast<std::uint8_t>(v >> 8));
  key.push_back(static_cast<std::uint8_t>(v >> 16));
  key.push_back(static_cast<std::uint8_t>(v >> 24));
}

// Canonical byte serialization of one request: everything the analysis
// result can depend on (entry, sections with flags and contents,
// symbols, annotation text). The FNV hash over it keys the report LRU;
// the bytes themselves back the exact comparison a hit must pass — a
// hash match alone is never trusted (support/fixpoint.hpp).
std::pair<std::uint64_t, std::vector<std::uint8_t>>
request_fingerprint(const isa::Image& image, const std::string& annotation_text) {
  std::vector<std::uint8_t> key;
  put_u32(key, image.entry());
  for (const isa::Section& s : image.sections()) {
    key.insert(key.end(), s.name.begin(), s.name.end());
    key.push_back(0);
    put_u32(key, s.vaddr);
    key.push_back(s.writable ? 1 : 0);
    key.push_back(s.executable ? 1 : 0);
    put_u32(key, static_cast<std::uint32_t>(s.bytes.size()));
    key.insert(key.end(), s.bytes.begin(), s.bytes.end());
  }
  for (const isa::Symbol& sym : image.symbols()) {
    key.insert(key.end(), sym.name.begin(), sym.name.end());
    key.push_back(0);
    put_u32(key, sym.addr);
    put_u32(key, sym.size);
    key.push_back(static_cast<std::uint8_t>(sym.kind));
  }
  key.insert(key.end(), annotation_text.begin(), annotation_text.end());
  StateHash h;
  for (const std::uint8_t byte : key) h.mix(byte);
  return {h.value(), std::move(key)};
}

// The warm handoff carries per-instance verdicts between two supergraph
// expansions, so the expansions must agree on every structural index:
// node <-> (instance, block) assignment, edge endpoints and kinds, and
// the instance tree itself. Any mismatch (an edit that moved a block
// boundary, added an edge, changed inlining depth) voids positional
// reuse entirely — the request falls back to a plain cold run.
bool structure_identical(const cfg::Supergraph& a, const cfg::Supergraph& b) {
  if (a.entry_node() != b.entry_node()) return false;
  if (a.nodes().size() != b.nodes().size() || a.edges().size() != b.edges().size() ||
      a.instances().size() != b.instances().size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.nodes().size(); ++i) {
    const cfg::SgNode& x = a.nodes()[i];
    const cfg::SgNode& y = b.nodes()[i];
    if (x.instance != y.instance || x.fn_entry != y.fn_entry ||
        x.block->begin != y.block->begin || x.block->end != y.block->end ||
        x.block->insts.size() != y.block->insts.size()) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.edges().size(); ++i) {
    const cfg::SgEdge& x = a.edges()[i];
    const cfg::SgEdge& y = b.edges()[i];
    if (x.from != y.from || x.to != y.to || x.kind != y.kind) return false;
  }
  for (std::size_t i = 0; i < a.instances().size(); ++i) {
    const cfg::Instance& x = a.instances()[i];
    const cfg::Instance& y = b.instances()[i];
    if (x.fn_entry != y.fn_entry || x.caller_instance != y.caller_instance ||
        x.call_site_node != y.call_site_node) {
      return false;
    }
  }
  return true;
}

// FNV fingerprint of one instance's code: the entry plus every covered
// block's address range and raw instruction words.
std::vector<std::uint64_t> instance_fingerprints(const cfg::Supergraph& sg,
                                                 const isa::Image& image) {
  std::vector<StateHash> h(sg.instances().size());
  for (std::size_t i = 0; i < sg.instances().size(); ++i) {
    h[i].mix(sg.instances()[i].fn_entry);
  }
  for (const cfg::SgNode& n : sg.nodes()) {
    StateHash& hi = h[static_cast<std::size_t>(n.instance)];
    hi.mix_pair(n.block->begin, n.block->end);
    for (std::uint32_t pc = n.block->begin; pc < n.block->end; pc += 4) {
      hi.mix(image.read_word(pc).value_or(0xdeadbeefu));
    }
  }
  std::vector<std::uint64_t> out(h.size());
  for (std::size_t i = 0; i < h.size(); ++i) out[i] = h[i].value();
  return out;
}

// Word-exact comparison of an instance's code between two images. Run
// after the fingerprints matched: a clean verdict feeds positional
// recipe reuse, so it must rest on real bytes, never on a 64-bit hash.
bool instance_bytes_equal(const cfg::Supergraph& sg, int instance, const isa::Image& a,
                          const isa::Image& b) {
  for (const cfg::SgNode& n : sg.nodes()) {
    if (n.instance != instance) continue;
    for (std::uint32_t pc = n.block->begin; pc < n.block->end; pc += 4) {
      if (a.read_word(pc) != b.read_word(pc)) return false;
    }
  }
  return true;
}

} // namespace

std::string ServeStats::to_string() const {
  std::ostringstream os;
  os << "=== wcet_serve stats ===\n";
  os << "requests: " << requests << " (fingerprint hits " << fingerprint_hits
     << ", collisions " << fingerprint_collisions << ")\n";
  os << "pipeline: " << warm_runs << " warm / " << cold_runs << " cold runs, "
     << warm_fallbacks << " warm fallbacks, " << path_reuses << " path reuses, "
     << dirty_instances << " dirty instances\n";
  os << "report cache: " << evictions << " evictions\n";
  os << "batch: " << batch_jobs << " jobs, " << batch_errors << " errors\n";
  os << "degradations: " << degradations << '\n';
  os << "last timings (ms): decode " << last_timings.decode_ms << ", value "
     << last_timings.value_ms << ", loop " << last_timings.loop_ms << ", cache "
     << last_timings.cache_ms << ", pipeline " << last_timings.pipeline_ms << ", path "
     << last_timings.path_ms << ", total " << last_timings.total_ms << '\n';
  return os.str();
}

// Last successful run's artifacts: everything the next request's warm
// path borrows. Heap-allocated and never moved internally — the
// AnalysisContext holds references into hw/annotations, and the next
// request's WarmHandoff points back at ctx, so member addresses must
// stay stable for the object's whole lifetime.
struct AnalysisServer::Converged {
  std::unique_ptr<isa::Image> image;
  std::string annotation_text;
  mem::HwConfig hw; // base map + annotation region overrides
  annot::AnnotationDb annotations;
  std::unique_ptr<AnalysisContext> ctx;
  std::vector<std::uint64_t> instance_fp;
  bool ok = false;
  bool degraded = false;
};

struct AnalysisServer::CacheEntry {
  std::uint64_t fp = 0;
  std::vector<std::uint8_t> key; // exact-compare backing of the fingerprint
  WcetReport report;
};

AnalysisServer::AnalysisServer(const mem::HwConfig& hw, ServeOptions options)
    : base_hw_(hw), options_(std::move(options)) {
  const int threads = options_.analysis.threads;
  pool_ = std::make_unique<ThreadPool>(threads > 1 ? static_cast<unsigned>(threads) : 1);
}

AnalysisServer::~AnalysisServer() = default;

WcetReport AnalysisServer::submit(const isa::Image& image,
                                  const std::string& annotation_text) {
  // Same classification contract as Analyzer::analyze: allocation
  // failure anywhere on the request path (image copy, cache insert,
  // injected at a serve:* site) surfaces as an AnalysisError, never a
  // raw bad_alloc.
  try {
    return submit_request(image, annotation_text);
  } catch (const std::bad_alloc&) {
    throw AnalysisError("analysis ran out of memory");
  }
}

WcetReport AnalysisServer::submit_request(const isa::Image& image,
                                          const std::string& annotation_text) {
  WCET_FAULT_POINT("serve:admit");
  ++stats_.requests;

  auto [fp, key] = request_fingerprint(image, annotation_text);
  if (options_.fingerprint_hook) fp = options_.fingerprint_hook(fp);
  for (auto it = report_cache_.begin(); it != report_cache_.end(); ++it) {
    if (it->fp != fp) continue;
    if (it->key == key) {
      ++stats_.fingerprint_hits;
      report_cache_.splice(report_cache_.begin(), report_cache_, it);
      WcetReport report = report_cache_.front().report;
      report.serve_requests = stats_.requests;
      report.serve_fingerprint_hits = stats_.fingerprint_hits;
      report.serve_dirty_instances = 0; // nothing re-analyzed
      return report;
    }
    // Same hash, different bytes: a real collision. Count it and fall
    // through to a full analysis — the colliding entry is replaced.
    ++stats_.fingerprint_collisions;
    break;
  }

  auto next = std::make_unique<Converged>();
  next->image = std::make_unique<isa::Image>(image);
  next->annotation_text = annotation_text;
  next->hw = base_hw_;
  next->annotations = annot::parse_annotations(annotation_text, *next->image);
  for (const mem::Region& region : next->annotations.regions) {
    next->hw.memory.add_region_override(region);
  }

  const WcetReport report = run_pipeline(std::move(next));
  cache_insert(fp, std::move(key), report);
  return report;
}

WcetReport AnalysisServer::run_pipeline(std::unique_ptr<Converged> next) {
  const auto t_total = std::chrono::steady_clock::now();
  const AnalysisOptions& options = options_.analysis;
  const isa::Image& image = *next->image;
  const std::uint32_t entry = image.entry();

  if (!image.read_word(entry)) {
    std::ostringstream os;
    os << "entry point 0x" << std::hex << entry
       << " has no complete instruction word (outside every section, or the image is "
          "truncated)";
    throw InputError(os.str());
  }

  next->ctx =
      std::make_unique<AnalysisContext>(image, next->hw, next->annotations, options, entry);
  AnalysisContext& ctx = *next->ctx;
  if (options.use_annotations) {
    ctx.hints.indirect_targets = next->annotations.indirect_targets;
    ctx.sg_options.recursion_depths = next->annotations.recursion_depths;
  }
  ctx.pool = pool_->workers() > 1 ? pool_.get() : nullptr;

  AnalysisGovernor governor(options.budget);
  ctx.governor = &governor;
  pool_->set_governor(&governor);

  AnalysisPassManager manager;
  const std::size_t back_half = register_figure1_passes(manager);

  // Incremental gate: warm reuse is only attempted against a previous
  // run that converged cleanly under the same annotations (the options
  // are fixed per server, so they are identical by construction).
  const bool can_warm = options_.enable_incremental && current_ != nullptr &&
                        current_->ok && !current_->degraded && current_->ctx != nullptr &&
                        current_->annotation_text == next->annotation_text;

  try {
    for (int round = 0; round < std::max(1, options.max_decode_rounds); ++round) {
      manager.run_pass(ctx, 0); // decode
      if (round == 0 && can_warm && current_->instance_fp.size() ==
                                        ctx.supergraph->instances().size() &&
          structure_identical(*current_->ctx->supergraph, *ctx.supergraph)) {
        auto warm = std::make_unique<AnalysisContext::WarmHandoff>();
        warm->prev = current_->ctx.get();
        const std::vector<std::uint64_t> fps = instance_fingerprints(*ctx.supergraph, image);
        warm->instance_clean.assign(fps.size(), 0);
        for (std::size_t i = 0; i < fps.size(); ++i) {
          const bool clean =
              fps[i] == current_->instance_fp[i] &&
              instance_bytes_equal(*ctx.supergraph, static_cast<int>(i), image,
                                   *current_->image);
          warm->instance_clean[i] = clean ? 1 : 0;
          if (!clean) ++warm->dirty_instances;
        }
        ctx.warm = std::move(warm);
      }
      for (std::size_t i = 1; i < back_half; ++i) manager.run_pass(ctx, i);
      if (ctx.program->fully_resolved()) break;
      if (!ctx.absorb_resolved_indirect_targets()) break;
      // A re-decode rebuilds the supergraph: every positional warm
      // verdict is void. Continue cold.
      ctx.warm.reset();
    }
    for (std::size_t i = back_half; i < manager.size(); ++i) manager.run_pass(ctx, i);
  } catch (const std::bad_alloc&) {
    pool_->set_governor(nullptr);
    throw AnalysisError("analysis ran out of memory");
  } catch (...) {
    pool_->set_governor(nullptr);
    throw;
  }
  pool_->set_governor(nullptr);

  std::uint64_t dirty = ctx.supergraph->instances().size();
  if (ctx.warm != nullptr) {
    ++stats_.warm_runs;
    dirty = static_cast<std::uint64_t>(ctx.warm->dirty_instances);
    stats_.dirty_instances += dirty;
    if (ctx.warm->cache_fallback) ++stats_.warm_fallbacks;
    if (ctx.warm->path_reused) ++stats_.path_reuses;
  } else {
    ++stats_.cold_runs;
  }

  // Copy (not move) the report out: ctx keeps its own copy because the
  // next request's whole-ILP reuse audits it (try_reuse_path).
  WcetReport report = ctx.report;
  report.degradations = governor.degradations();
  report.degraded = !report.degradations.empty();
  report.budget_checks = governor.budget_checks();
  report.cancel_latency_us = governor.cancel_latency_us();
  report.timings.decode_ms = manager.timing_ms("decode");
  report.timings.value_ms = manager.timing_ms("value");
  report.timings.loop_ms = manager.timing_ms("loop");
  report.timings.cache_ms = manager.timing_ms("cache");
  report.timings.pipeline_ms = manager.timing_ms("pipeline");
  report.timings.path_ms = manager.timing_ms("path");
  report.timings.validate_ms = manager.timing_ms("validate");
  report.timings.total_ms = ms_since(t_total);
  stats_.degradations += report.degradations.size();
  stats_.last_timings = report.timings;

  // Promote this run to the reuse anchor. The fingerprints come from
  // the *converged* supergraph (after any decode feedback rounds).
  next->instance_fp = instance_fingerprints(*ctx.supergraph, image);
  next->ok = report.ok;
  next->degraded = report.degraded;
  // Drop the borrowed pointer into the old context before destroying it.
  ctx.warm.reset();
  current_ = std::move(next);

  report.serve_requests = stats_.requests;
  report.serve_fingerprint_hits = stats_.fingerprint_hits;
  report.serve_dirty_instances = dirty;
  return report;
}

void AnalysisServer::cache_insert(std::uint64_t fp, std::vector<std::uint8_t> key,
                                  const WcetReport& report) {
  if (options_.report_cache_capacity == 0) return;
  for (auto it = report_cache_.begin(); it != report_cache_.end(); ++it) {
    if (it->fp == fp) { // collision casualty (same-key hits never get here)
      report_cache_.erase(it);
      break;
    }
  }
  while (report_cache_.size() >= options_.report_cache_capacity) {
    WCET_FAULT_POINT("serve:evict");
    report_cache_.pop_back();
    ++stats_.evictions;
  }
  report_cache_.push_front(CacheEntry{fp, std::move(key), report});
}

std::vector<WcetReport> AnalysisServer::submit_batch(const std::vector<BatchJob>& jobs) {
  stats_.batch_jobs += jobs.size();
  std::vector<WcetReport> reports(jobs.size());
  std::vector<char> errored(jobs.size(), 0);

  // Fleet isolation: each job runs sequentially inside one pool worker
  // (options.threads = 1) under its own governor and budget; failures
  // become classified error reports in the job's own slot.
  const auto run_job = [&](std::size_t i) {
    const BatchJob& job = jobs[i];
    WcetReport& report = reports[i];
    const auto fail = [&](const std::string& what) {
      report = WcetReport{};
      report.ok = false;
      report.obstructions.push_back("serve: " + what);
      errored[i] = 1;
    };
    try {
      if (job.image == nullptr) throw InputError("batch job has no image");
      AnalysisOptions options = options_.analysis;
      options.threads = 1; // fleet parallelism is across jobs, not within
      options.budget = job.budget;
      const Analyzer analyzer(*job.image, base_hw_, job.annotation_text);
      report = analyzer.analyze(options);
    } catch (const InputError& e) {
      fail(std::string("input error: ") + e.what());
    } catch (const AnalysisError& e) {
      fail(std::string("analysis error: ") + e.what());
    } catch (const InternalError& e) {
      fail(std::string("internal error: ") + e.what());
    } catch (const std::bad_alloc&) {
      fail("analysis error: out of memory");
    } catch (const std::exception& e) {
      fail(std::string("internal error: unclassified exception: ") + e.what());
    }
  };

  pool_->set_governor(nullptr); // job budgets live in per-job governors
  if (pool_->workers() > 1 && jobs.size() > 1) {
    pool_->parallel_for(jobs.size(), run_job);
  } else {
    for (std::size_t i = 0; i < jobs.size(); ++i) run_job(i);
  }

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (errored[i] != 0) ++stats_.batch_errors;
    stats_.degradations += reports[i].degradations.size();
  }
  return reports;
}

} // namespace wcet::serve
