// Persistent analysis server: the Figure-1 pipeline as a long-running
// service instead of a one-shot Analyzer call.
//
// The server keeps the converged artifacts of the last successful run
// (AnalysisContext, TransferCache recipes, per-instance code
// fingerprints) alive across requests. A re-submitted image is
// fingerprinted per function instance; when the decoded supergraph is
// structurally identical to the previous run's, the pipeline receives a
// WarmHandoff (wcet/pipeline.hpp) and re-derives only what the edit
// actually invalidated — clean instances keep their published value
// out-states, cache recipes and sub-ILP results. Every reuse is
// *verified, never trusted*: a warm bound is bit-identical to the cold
// bound by construction (the passes demote any verdict the fresh run
// contradicts and fall back to a full cold re-run on any divergence).
//
// On top of the incremental path sits a request-level cache: an FNV
// fingerprint over the image bytes + annotation text, confirmed by an
// exact byte comparison (a hash match alone is never trusted — see
// support/fixpoint.hpp), serves a repeat submission from the report LRU
// without touching the pipeline at all.
//
// Batch fleet mode (`submit_batch`) shards N independent images across
// the server's ThreadPool: each job runs sequentially inside one worker
// with its own AnalysisGovernor and budget, so one job's degradation or
// failure never leaks into another — a malformed image yields a
// classified error report in its slot, the remaining jobs are
// unaffected.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <vector>

#include "annot/annotations.hpp"
#include "isa/image.hpp"
#include "mem/hwmodel.hpp"
#include "support/budget.hpp"
#include "wcet/analyzer.hpp"

namespace wcet {

class ThreadPool;
struct AnalysisContext;

namespace serve {

struct ServeOptions {
  // Analysis options shared by every interactive request. Fixed per
  // server on purpose: the incremental warm path is only valid between
  // runs with identical options, and the request cache never has to
  // key on them.
  AnalysisOptions analysis;
  // Capacity of the request-level report LRU (fingerprint + exact byte
  // match -> cached WcetReport).
  std::size_t report_cache_capacity = 8;
  // Gate for the incremental warm path; off forces every miss cold.
  bool enable_incremental = true;
  // Test seam: post-processes the computed request fingerprint. Forcing
  // collisions here exercises the exact-byte-compare guard.
  std::function<std::uint64_t(std::uint64_t)> fingerprint_hook;
};

// Cumulative server telemetry, exported per request into
// WcetReport::serve_* and as text via to_string() (the --stats
// endpoint of cli/wcet_serve.cpp).
struct ServeStats {
  std::uint64_t requests = 0;           // interactive submissions handled
  std::uint64_t fingerprint_hits = 0;   // served from the report cache
  std::uint64_t fingerprint_collisions = 0; // hash matched, bytes differed
  std::uint64_t warm_runs = 0;          // pipeline ran with a WarmHandoff
  std::uint64_t cold_runs = 0;          // pipeline ran cold
  std::uint64_t warm_fallbacks = 0;     // warm cache attempt diverged -> cold fixpoint
  std::uint64_t path_reuses = 0;        // previous ILP result adopted wholesale
  std::uint64_t dirty_instances = 0;    // cumulative fingerprint-dirty instances
  std::uint64_t evictions = 0;          // report-cache LRU evictions
  std::uint64_t batch_jobs = 0;         // jobs accepted by submit_batch
  std::uint64_t batch_errors = 0;       // ... that ended in a classified error
  std::uint64_t degradations = 0;       // cumulative degradation-ledger entries
  // Per-phase milliseconds of the most recent pipeline run (cache hits
  // leave it untouched).
  PhaseTimings last_timings;

  std::string to_string() const;
};

// One independent image of a batch submission.
struct BatchJob {
  const isa::Image* image = nullptr; // caller-owned, must outlive the call
  std::string annotation_text;
  AnalysisBudget budget; // per-job resource envelope (cancel not owned)
};

class AnalysisServer {
public:
  AnalysisServer(const mem::HwConfig& hw, ServeOptions options = {});
  ~AnalysisServer();

  AnalysisServer(const AnalysisServer&) = delete;
  AnalysisServer& operator=(const AnalysisServer&) = delete;

  // Analyzes `image` under the server's fixed options, serving from the
  // report cache or the incremental warm path when possible. Throws the
  // same classified errors as Analyzer::analyze. The returned report's
  // serve_* fields carry the server counters as of this request.
  WcetReport submit(const isa::Image& image, const std::string& annotation_text = "");

  // Fleet mode: analyzes every job independently (cold, one worker
  // each), sharded across the server pool. Reports come back in
  // submission order; a failed job yields a classified !ok report in
  // its slot instead of poisoning the batch.
  std::vector<WcetReport> submit_batch(const std::vector<BatchJob>& jobs);

  const ServeStats& stats() const { return stats_; }

private:
  struct Converged;  // last successful run's artifacts (analysis_server.cpp)
  struct CacheEntry; // report-LRU slot

  WcetReport submit_request(const isa::Image& image, const std::string& annotation_text);
  WcetReport run_pipeline(std::unique_ptr<Converged> next);
  void cache_insert(std::uint64_t fp, std::vector<std::uint8_t> key,
                    const WcetReport& report);

  mem::HwConfig base_hw_;
  ServeOptions options_;
  ServeStats stats_;
  std::unique_ptr<ThreadPool> pool_;          // shared across requests
  std::unique_ptr<Converged> current_;        // incremental-reuse anchor
  std::list<CacheEntry> report_cache_;        // front = most recent
};

} // namespace serve
} // namespace wcet
