// Software binary32 floating point (paper Section 4.3, "Software
// Arithmetic"): the tiny32 target has no FPU — like the HCS12X, and like
// the MPC5554 for double precision — so float operations in compiled
// code lower to these routines.
//
// Scope: normal numbers, zeros, infinities and NaNs with round-to-
// nearest-even. Subnormal results are flushed to zero and subnormal
// inputs are treated as zero (FTZ/DAZ — documented deviation from IEEE
// 754, common in embedded soft-float libraries). Tests compare against
// hardware floats on operands where FTZ does not bite.
//
// Values are bit patterns (std::uint32_t), never host floats — the
// library must behave identically on any host.
#pragma once

#include <cstdint>

namespace wcet::softarith {

inline constexpr std::uint32_t f32_quiet_nan = 0x7FC00000u;

std::uint32_t f32_add(std::uint32_t a, std::uint32_t b);
std::uint32_t f32_sub(std::uint32_t a, std::uint32_t b);
std::uint32_t f32_mul(std::uint32_t a, std::uint32_t b);
std::uint32_t f32_div(std::uint32_t a, std::uint32_t b);

// Comparisons return 0/1; any NaN operand makes lt/le/eq return 0.
std::uint32_t f32_lt(std::uint32_t a, std::uint32_t b);
std::uint32_t f32_le(std::uint32_t a, std::uint32_t b);
std::uint32_t f32_eq(std::uint32_t a, std::uint32_t b);

std::uint32_t f32_from_i32(std::int32_t value);
std::int32_t f32_to_i32(std::uint32_t value); // truncates toward zero

// Convenience for tests: reinterpret a host float's bits.
std::uint32_t f32_bits(float value);
float f32_value(std::uint32_t bits);

} // namespace wcet::softarith
