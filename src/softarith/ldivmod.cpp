#include "softarith/ldivmod.hpp"

namespace wcet::softarith {

LDivModResult ldivmod(std::uint32_t a, std::uint32_t b) {
  if (b == 0) {
    // Saturating convention on division by zero (no trap on HCS12X-style
    // library code); not part of the Table-1 experiment.
    return {0xFFFFFFFFu, a, 0};
  }
  const std::uint32_t bh = b >> 16;
  if (bh == 0) {
    // Divisor fits the 32/16 hardware divider: one EDIV, no refinement.
    return {a / b, a % b, 0};
  }
  if (bh == 0xFFFFu) {
    // bh + 1 would overflow 16 bits; quotient is 0 or 1 -> compare path.
    const std::uint32_t q = a >= b ? 1u : 0u;
    return {q, a - q * b, 1};
  }

  std::uint32_t q = 0;
  std::uint32_t e = a;
  unsigned iterations = 1; // the first estimate-and-verify pass
  bool safe_mode = false;

  // 16-bit limb carry cross-check of d*b against e. When the low bits of
  // the low-limb product alias the dividend the check is inconclusive
  // and the routine drops to conservative unit subtraction for the rest
  // of the division ("safe mode").
  const auto alias = [&](std::uint32_t d, std::uint32_t residual) {
    return d >= 2 && d < 256 &&
           ((d * (b & 0xFFFFu)) & alias_low_mask) == (residual & alias_low_mask) &&
           ((residual >> 16) & alias_high_mask) == (d & alias_high_mask);
  };

  // Pass 1: up to two chained coarse digits, one EDIV on the high halves
  // each. Using bh + 1 guarantees d*b <= e (never overshoots) at the
  // cost of undershooting by up to a factor 1/(bh+1) per digit.
  for (int sub = 0; sub < 2 && e >= b && !safe_mode; ++sub) {
    std::uint32_t d = (e >> 16) / (bh + 1);
    if (d == 0) d = 1;
    if (alias(d, e)) {
      safe_mode = true;
      d = 1;
    }
    q += d;
    e -= d * b;
  }

  // Correction passes (rare): fine digit via the wide multiply-
  // accumulate slow path, or unit subtraction in safe mode.
  while (e >= b) {
    ++iterations;
    std::uint32_t d = 1;
    if (!safe_mode) {
      d = (e >> 4) / ((b >> 4) + 1);
      if (d == 0) d = 1;
      if (alias(d, e)) {
        safe_mode = true;
        d = 1;
      }
    }
    q += d;
    e -= d * b;
  }
  return {q, e, iterations};
}

UDivResult udivmod_bitserial(std::uint32_t a, std::uint32_t b) {
  std::uint32_t r = 0;
  std::uint32_t q = 0;
  for (unsigned i = 0; i < 32; ++i) {
    r = (r << 1) | (a >> 31);
    a <<= 1;
    q <<= 1;
    if (b != 0 && r >= b) {
      r -= b;
      q |= 1;
    }
  }
  // For b == 0 no subtraction ever fires: q == 0 and r == a, matching
  // the tiny32 port bit for bit.
  return {q, r};
}

std::string_view ldivmod_tiny32_program() {
  return R"(
; lDivMod reconstruction, tiny32 port. Same algorithm as the native
; implementation in ldivmod.cpp; the iteration counter is returned in a2
; so tests can cross-validate the two instruction streams.
        .text 0x1000
        .global _start
        .global ldivmod
_start:
        movi sp, 0x3F000
        movi t0, input_a
        lw   a0, 0(t0)
        movi t0, input_b
        lw   a1, 0(t0)
        call ldivmod
        movi t0, out_q
        sw   a0, 0(t0)
        movi t0, out_r
        sw   a1, 0(t0)
        movi t0, out_iters
        sw   a2, 0(t0)
        halt

; a0 = dividend, a1 = divisor -> a0 = quotient, a1 = remainder,
; a2 = refinement iterations
ldivmod:
        movi a2, 0
        bne  a1, zero, .nonzero
        mov  a1, a0              ; division by zero: r = a, q = ~0
        movi a0, 0xFFFFFFFF
        ret
.nonzero:
        srli t0, a1, 16          ; bh
        bne  t0, zero, .big
        divu t1, a0, a1          ; single EDIV path: 0 iterations
        remu a1, a0, a1
        mov  a0, t1
        ret
.big:
        movi t1, 0xFFFF
        bne  t0, t1, .general
        movi a2, 1               ; bh == 0xFFFF: compare path
        bltu a0, a1, .cmp0
        sub  a1, a0, a1
        movi a0, 1
        ret
.cmp0:
        mov  a1, a0
        movi a0, 0
        ret
.general:
        addi sp, sp, -8
        sw   s0, 0(sp)
        sw   s1, 4(sp)
        srli t1, a1, 16
        addi t1, t1, 1           ; t1 = bh + 1
        mov  t0, a0              ; t0 = e
        movi a0, 0               ; a0 = q
        movi a3, 0               ; a3 = safe_mode
        movi a2, 1               ; iterations = 1 (estimate-and-verify)

        ; ---- pass 1, coarse digit A -------------------------------
        bltu t0, a1, .done
        srli t2, t0, 16
        divu t2, t2, t1          ; d = (e >> 16) / (bh + 1)
        bne  t2, zero, .checkA
        movi t2, 1
        j    .applyA
.checkA:
        sltiu s0, t2, 2          ; alias window: 2 <= d < 256
        bne  s0, zero, .applyA
        sltiu s0, t2, 256
        beq  s0, zero, .applyA
        andi s0, a1, 0xFFFF      ; bl
        mul  s0, t2, s0          ; d * bl
        andi s0, s0, 0xFFF       ; alias_low_mask
        andi s1, t0, 0xFFF
        bne  s0, s1, .applyA
        srli s0, t0, 16
        andi s0, s0, 0x1F        ; alias_high_mask
        andi s1, t2, 0x1F
        bne  s0, s1, .applyA
        movi a3, 1               ; inconclusive: safe mode
        movi t2, 1
.applyA:
        add  a0, a0, t2
        mul  t2, t2, a1
        sub  t0, t0, t2          ; e -= d*b

        ; ---- pass 1, coarse digit B (skipped in safe mode) --------
        bltu t0, a1, .done
        bne  a3, zero, .loop
        srli t2, t0, 16
        divu t2, t2, t1
        bne  t2, zero, .checkB
        movi t2, 1
        j    .applyB
.checkB:
        sltiu s0, t2, 2
        bne  s0, zero, .applyB
        sltiu s0, t2, 256
        beq  s0, zero, .applyB
        andi s0, a1, 0xFFFF
        mul  s0, t2, s0
        andi s0, s0, 0xFFF
        andi s1, t0, 0xFFF
        bne  s0, s1, .applyB
        srli s0, t0, 16
        andi s0, s0, 0x1F
        andi s1, t2, 0x1F
        bne  s0, s1, .applyB
        movi a3, 1
        movi t2, 1
.applyB:
        add  a0, a0, t2
        mul  t2, t2, a1
        sub  t0, t0, t2

        ; ---- correction passes ------------------------------------
.loop:
        bltu t0, a1, .done
        addi a2, a2, 1           ; ++iterations
        movi t2, 1
        bne  a3, zero, .applyC   ; safe mode: unit step
        srli t2, t0, 4           ; fine digit
        srli s0, a1, 4
        addi s0, s0, 1
        divu t2, t2, s0          ; d = (e >> 4) / ((b >> 4) + 1)
        bne  t2, zero, .checkC
        movi t2, 1
        j    .applyC
.checkC:
        sltiu s0, t2, 2
        bne  s0, zero, .applyC
        sltiu s0, t2, 256
        beq  s0, zero, .applyC
        andi s0, a1, 0xFFFF
        mul  s0, t2, s0
        andi s0, s0, 0xFFF
        andi s1, t0, 0xFFF
        bne  s0, s1, .applyC
        srli s0, t0, 16
        andi s0, s0, 0x1F
        andi s1, t2, 0x1F
        bne  s0, s1, .applyC
        movi a3, 1
        movi t2, 1
.applyC:
        add  a0, a0, t2
        mul  t2, t2, a1
        sub  t0, t0, t2
        j    .loop
.done:
        mov  a1, t0
        lw   s0, 0(sp)
        lw   s1, 4(sp)
        addi sp, sp, 8
        ret

        .data 0x20000
        .global input_a
input_a:   .word 0
        .global input_b
input_b:   .word 0
        .global out_q
out_q:     .word 0
        .global out_r
out_r:     .word 0
        .global out_iters
out_iters: .word 0
)";
}

std::string_view bitserial_tiny32_program() {
  return R"(
; Constant-iteration restoring divider (the paper's predictability
; remedy): exactly 32 loop iterations for any input.
        .text 0x1000
        .global _start
        .global udiv32
_start:
        movi sp, 0x3F000
        movi t0, input_a
        lw   a0, 0(t0)
        movi t0, input_b
        lw   a1, 0(t0)
        call udiv32
        movi t0, out_q
        sw   a0, 0(t0)
        movi t0, out_r
        sw   a1, 0(t0)
        movi t0, out_iters
        sw   a2, 0(t0)
        halt

; a0 = dividend, a1 = divisor -> a0 = q, a1 = r, a2 = iterations (32)
udiv32:
        movi t0, 0               ; r
        movi t1, 0               ; q
        movi a2, 0               ; i
        movi a3, 32
.bitloop:
        slli t0, t0, 1
        srli t2, a0, 31
        or   t0, t0, t2
        slli a0, a0, 1
        slli t1, t1, 1
        bltu t0, a1, .skip
        beq  a1, zero, .skip     ; divisor 0: never subtract
        sub  t0, t0, a1
        ori  t1, t1, 1
.skip:
        addi a2, a2, 1
        blt  a2, a3, .bitloop
        mov  a0, t1
        mov  a1, t0
        ret

        .data 0x20000
        .global input_a
input_a:   .word 0
        .global input_b
input_b:   .word 0
        .global out_q
out_q:     .word 0
        .global out_r
out_r:     .word 0
        .global out_iters
out_iters: .word 0
)";
}

} // namespace wcet::softarith
