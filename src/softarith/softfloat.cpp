#include "softarith/softfloat.hpp"

#include <cstring>

namespace wcet::softarith {

namespace {

constexpr std::uint32_t sign_bit = 0x80000000u;

struct Unpacked {
  std::uint32_t sign = 0; // 0 or 1
  std::int32_t exp = 0;   // unbiased
  std::uint32_t frac = 0; // 24-bit significand with implicit bit, or 0
  bool is_zero = false;
  bool is_inf = false;
  bool is_nan = false;
};

Unpacked unpack(std::uint32_t bits) {
  Unpacked u;
  u.sign = bits >> 31;
  const std::uint32_t exp_field = (bits >> 23) & 0xFF;
  const std::uint32_t frac_field = bits & 0x7FFFFF;
  if (exp_field == 0) {
    // Zero or subnormal; subnormals are treated as zero (DAZ).
    u.is_zero = true;
  } else if (exp_field == 0xFF) {
    if (frac_field == 0) u.is_inf = true;
    else u.is_nan = true;
  } else {
    u.exp = static_cast<std::int32_t>(exp_field) - 127;
    u.frac = frac_field | 0x800000;
  }
  return u;
}

std::uint32_t pack_zero(std::uint32_t sign) { return sign << 31; }
std::uint32_t pack_inf(std::uint32_t sign) { return (sign << 31) | 0x7F800000u; }

// Round and pack a result given sign, unbiased exponent for a significand
// normalized to [2^23, 2^24), and a 24+3-bit significand where the low 3
// bits are guard/round/sticky.
std::uint32_t round_pack(std::uint32_t sign, std::int32_t exp, std::uint32_t sig_grs) {
  // Round to nearest even on the 3 GRS bits.
  std::uint32_t sig = sig_grs >> 3;
  const std::uint32_t grs = sig_grs & 7;
  if (grs > 4 || (grs == 4 && (sig & 1) != 0)) ++sig;
  if (sig == 0x1000000) { // rounding overflowed into the next binade
    sig >>= 1;
    ++exp;
  }
  if (exp > 127) return pack_inf(sign);
  if (exp < -126) return pack_zero(sign); // FTZ
  return (sign << 31) | (static_cast<std::uint32_t>(exp + 127) << 23) | (sig & 0x7FFFFF);
}

// Shift right collecting sticky into bit 0.
std::uint32_t shift_right_sticky(std::uint32_t value, std::int32_t amount) {
  if (amount <= 0) return value;
  if (amount > 31) return value != 0 ? 1u : 0u;
  const std::uint32_t shifted = value >> amount;
  const std::uint32_t lost = value & ((1u << amount) - 1);
  return shifted | (lost != 0 ? 1u : 0u);
}

int count_leading_zeros(std::uint32_t v) {
  if (v == 0) return 32;
  int n = 0;
  while ((v & 0x80000000u) == 0) {
    v <<= 1;
    ++n;
  }
  return n;
}

} // namespace

std::uint32_t f32_add(std::uint32_t a_bits, std::uint32_t b_bits) {
  const Unpacked a = unpack(a_bits);
  const Unpacked b = unpack(b_bits);
  if (a.is_nan || b.is_nan) return f32_quiet_nan;
  if (a.is_inf && b.is_inf) {
    return a.sign == b.sign ? pack_inf(a.sign) : f32_quiet_nan;
  }
  if (a.is_inf) return pack_inf(a.sign);
  if (b.is_inf) return pack_inf(b.sign);
  if (a.is_zero && b.is_zero) {
    // (+0) + (-0) == +0 under RNE.
    return a.sign == b.sign ? pack_zero(a.sign) : pack_zero(0);
  }
  if (a.is_zero) return b_bits & ~0u;
  if (b.is_zero) return a_bits & ~0u;

  // Order so that x has the larger magnitude (exp, then frac).
  Unpacked x = a;
  Unpacked y = b;
  if (y.exp > x.exp || (y.exp == x.exp && y.frac > x.frac)) {
    x = b;
    y = a;
  }
  // Significands with 3 GRS bits.
  std::uint32_t xs = x.frac << 3;
  std::uint32_t ys = shift_right_sticky(y.frac << 3, x.exp - y.exp);
  std::int32_t exp = x.exp;
  std::uint32_t sig;
  std::uint32_t sign = x.sign;
  if (x.sign == y.sign) {
    sig = xs + ys;
    if (sig >= (1u << 27)) { // carried past 2^24 (with GRS): renormalize
      sig = shift_right_sticky(sig, 1);
      ++exp;
    }
  } else {
    sig = xs - ys;
    if (sig == 0) return pack_zero(0);
    const int shift = count_leading_zeros(sig) - (32 - 27);
    if (shift > 0) {
      sig <<= shift;
      exp -= shift;
    }
  }
  return round_pack(sign, exp, sig);
}

std::uint32_t f32_sub(std::uint32_t a, std::uint32_t b) {
  return f32_add(a, b ^ sign_bit);
}

std::uint32_t f32_mul(std::uint32_t a_bits, std::uint32_t b_bits) {
  const Unpacked a = unpack(a_bits);
  const Unpacked b = unpack(b_bits);
  const std::uint32_t sign = a.sign ^ b.sign;
  if (a.is_nan || b.is_nan) return f32_quiet_nan;
  if (a.is_inf || b.is_inf) {
    if (a.is_zero || b.is_zero) return f32_quiet_nan; // 0 * inf
    return pack_inf(sign);
  }
  if (a.is_zero || b.is_zero) return pack_zero(sign);

  std::uint64_t product =
      static_cast<std::uint64_t>(a.frac) * static_cast<std::uint64_t>(b.frac);
  // product in [2^46, 2^48): normalize to 24+3 bits with sticky.
  std::int32_t exp = a.exp + b.exp;
  if (product >= (1ull << 47)) {
    ++exp;
  } else {
    product <<= 1;
  }
  // Keep 27 bits (24 + GRS): drop 48-27 = 21 bits with sticky.
  const std::uint64_t dropped = product & ((1ull << 21) - 1);
  std::uint32_t sig = static_cast<std::uint32_t>(product >> 21) | (dropped != 0 ? 1u : 0u);
  return round_pack(sign, exp, sig);
}

std::uint32_t f32_div(std::uint32_t a_bits, std::uint32_t b_bits) {
  const Unpacked a = unpack(a_bits);
  const Unpacked b = unpack(b_bits);
  const std::uint32_t sign = a.sign ^ b.sign;
  if (a.is_nan || b.is_nan) return f32_quiet_nan;
  if (a.is_inf) return b.is_inf ? f32_quiet_nan : pack_inf(sign);
  if (b.is_inf) return pack_zero(sign);
  if (b.is_zero) return a.is_zero ? f32_quiet_nan : pack_inf(sign);
  if (a.is_zero) return pack_zero(sign);

  std::int32_t exp = a.exp - b.exp;
  // Pre-shift so the quotient lands in [2^26, 2^27) (24 + GRS bits).
  int shift = 26;
  if (a.frac < b.frac) {
    shift = 27;
    --exp;
  }
  const std::uint64_t dividend = static_cast<std::uint64_t>(a.frac) << shift;
  const std::uint64_t quotient = dividend / b.frac;
  const std::uint64_t rem = dividend % b.frac;
  const std::uint32_t sig = static_cast<std::uint32_t>(quotient) | (rem != 0 ? 1u : 0u);
  return round_pack(sign, exp, sig);
}

namespace {

// Total order key for finite comparisons; NaN handled by callers.
std::int64_t compare_key(std::uint32_t bits) {
  // Treat subnormals as signed zero (DAZ), and map sign-magnitude to a
  // monotone integer.
  const std::uint32_t exp_field = (bits >> 23) & 0xFF;
  std::uint32_t magnitude = bits & 0x7FFFFFFF;
  if (exp_field == 0) magnitude = 0;
  return (bits & sign_bit) != 0 ? -static_cast<std::int64_t>(magnitude)
                                : static_cast<std::int64_t>(magnitude);
}

bool is_nan_bits(std::uint32_t bits) {
  return ((bits >> 23) & 0xFF) == 0xFF && (bits & 0x7FFFFF) != 0;
}

} // namespace

std::uint32_t f32_lt(std::uint32_t a, std::uint32_t b) {
  if (is_nan_bits(a) || is_nan_bits(b)) return 0;
  return compare_key(a) < compare_key(b) ? 1 : 0;
}

std::uint32_t f32_le(std::uint32_t a, std::uint32_t b) {
  if (is_nan_bits(a) || is_nan_bits(b)) return 0;
  return compare_key(a) <= compare_key(b) ? 1 : 0;
}

std::uint32_t f32_eq(std::uint32_t a, std::uint32_t b) {
  if (is_nan_bits(a) || is_nan_bits(b)) return 0;
  return compare_key(a) == compare_key(b) ? 1 : 0;
}

std::uint32_t f32_from_i32(std::int32_t value) {
  if (value == 0) return 0;
  const std::uint32_t sign = value < 0 ? 1u : 0u;
  std::uint32_t magnitude =
      value < 0 ? (value == INT32_MIN ? 0x80000000u : static_cast<std::uint32_t>(-value))
                : static_cast<std::uint32_t>(value);
  const int clz = count_leading_zeros(magnitude);
  const std::int32_t exp = 31 - clz;
  // Normalize so the leading bit sits at position 26 (24 + GRS - 1).
  std::uint32_t sig;
  if (exp <= 26) {
    sig = magnitude << (26 - exp);
  } else {
    sig = shift_right_sticky(magnitude, exp - 26);
  }
  return round_pack(sign, exp, sig);
}

std::int32_t f32_to_i32(std::uint32_t bits) {
  const Unpacked u = unpack(bits);
  if (u.is_nan) return 0;
  if (u.is_inf) return u.sign != 0 ? INT32_MIN : INT32_MAX;
  if (u.is_zero) return 0;
  if (u.exp < 0) return 0; // |value| < 1 truncates to 0
  if (u.exp > 30) return u.sign != 0 ? INT32_MIN : INT32_MAX;
  std::uint32_t magnitude;
  if (u.exp >= 23) {
    magnitude = u.frac << (u.exp - 23);
  } else {
    magnitude = u.frac >> (23 - u.exp);
  }
  return u.sign != 0 ? -static_cast<std::int32_t>(magnitude)
                     : static_cast<std::int32_t>(magnitude);
}

std::uint32_t f32_bits(float value) {
  std::uint32_t bits;
  std::memcpy(&bits, &value, sizeof bits);
  return bits;
}

float f32_value(std::uint32_t bits) {
  float value;
  std::memcpy(&value, &bits, sizeof value);
  return value;
}

} // namespace wcet::softarith
