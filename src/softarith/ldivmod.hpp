// Software arithmetic (paper Section 4.3, "Software Arithmetic" and
// Table 1).
//
// `ldivmod` is a *reconstruction* of the CodeWarrior V4.6 HCS12X library
// routine of the same name: 32/32-bit unsigned division by successive
// approximation on a 16-bit CPU whose hardware divider (EDIV) only
// handles 32/16 bit operands. The original is proprietary; this
// implementation is calibrated to reproduce the statistical *shape* of
// the paper's Table 1 (see DESIGN.md):
//   - 0 refinement iterations exactly when the divisor fits 16 bits
//     (direct EDIV; probability 2^16/2^32 ~ 1.5e-5 on random inputs),
//   - 1 iteration in the overwhelming majority of cases (the first
//     quotient-digit estimate via the truncated reciprocal digit
//     d = (e >> 16) / (bh + 1) is immediately confirmed),
//   - 2+ iterations when the conservative estimate falls short
//     (small divisor high-halves converge geometrically with ratio
//     1/(bh+1): divisors just above 2^16 can take ~17 passes),
//   - a rare long tail (> 150 iterations): the routine validates each
//     digit with a 16-bit limb carry cross-check; when the low-limb
//     product aliases the dividend limbs (a ~2^-19 coincidence) the
//     check is inconclusive and the routine falls back permanently to
//     conservative unit subtraction — "safe mode". Counts then track the
//     remaining quotient, capped near 256 by the d < 256 trigger window.
//
// The companion `udivmod_bitserial` is the paper's proposed remedy: a
// WCET-predictable constant-iteration (32-step) restoring divider.
//
// Both routines also exist as tiny32 assembly (`*_tiny32_asm`), so the
// static analyzer can be pointed at the very code whose distribution the
// host-side experiment measures; tests cross-validate the two
// implementations instruction-for-instruction on random inputs.
#pragma once

#include <cstdint>
#include <string_view>

namespace wcet::softarith {

struct LDivModResult {
  std::uint32_t quotient = 0;
  std::uint32_t remainder = 0;
  unsigned iterations = 0; // refinement-loop passes (Table 1 quantity)
};

// Tuning knobs of the safe-mode coincidence (see file comment): the limb
// cross-check compares 12 low bits of the d*b_low product against the
// dividend plus 5 bits of the high limb against the digit, so the
// per-digit trigger probability is about 2^-17 within the d in [2, 256)
// window — calibrated so roughly 10^-6 of random divisions enter the
// long tail, matching the tail mass of the paper's Table 1.
inline constexpr std::uint32_t alias_low_mask = 0xFFF;
inline constexpr std::uint32_t alias_high_mask = 0x1F;

LDivModResult ldivmod(std::uint32_t dividend, std::uint32_t divisor);

struct UDivResult {
  std::uint32_t quotient = 0;
  std::uint32_t remainder = 0;
};

// Constant-iteration restoring division: always exactly 32 loop
// iterations regardless of operand values.
UDivResult udivmod_bitserial(std::uint32_t dividend, std::uint32_t divisor);

// tiny32 assembly sources implementing the same routines. Calling
// convention: a0 = dividend, a1 = divisor; returns a0 = quotient,
// a1 = remainder, a2 = iteration count. Each is a complete program with
// `_start` reading inputs from the `input_a`/`input_b` words and storing
// results to `out_q`/`out_r`/`out_iters`.
std::string_view ldivmod_tiny32_program();
std::string_view bitserial_tiny32_program();

} // namespace wcet::softarith
