// mcc: a MISRA-oriented C subset compiler targeting tiny32.
//
// The subset covers what the paper's Section 4.2 experiments need:
// int/unsigned/char/float scalars, pointers (including function
// pointers), arrays, all C control flow (if/while/do/for/switch/goto/
// continue/break/return), varargs declarations, and the library calls
// the rules talk about (malloc, setjmp/longjmp). No structs, typedefs or
// 64-bit types — see DESIGN.md "Non-goals".
//
// This header defines tokens, types and the AST shared by the lexer,
// parser, semantic checker, MISRA checker and code generator.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

namespace wcet::mcc {

// ----------------------------------------------------------------- tokens

enum class Tok {
  end, identifier, int_literal, float_literal, string_literal, char_literal,
  // keywords
  kw_int, kw_unsigned, kw_char, kw_float, kw_void, kw_const, kw_static,
  kw_if, kw_else, kw_while, kw_do, kw_for, kw_switch, kw_case, kw_default,
  kw_break, kw_continue, kw_goto, kw_return, kw_sizeof,
  // punctuation / operators
  lparen, rparen, lbrace, rbrace, lbracket, rbracket, semi, comma, colon,
  question, ellipsis,
  assign, plus_assign, minus_assign, star_assign, slash_assign, percent_assign,
  amp_assign, pipe_assign, caret_assign, shl_assign, shr_assign,
  plus, minus, star, slash, percent, amp, pipe, caret, tilde, bang,
  shl, shr, lt, gt, le, ge, eq_eq, bang_eq, amp_amp, pipe_pipe,
  plus_plus, minus_minus,
};

struct Token {
  Tok kind = Tok::end;
  std::string text;      // identifier / literal spelling
  std::int64_t int_value = 0;
  double float_value = 0;
  bool is_unsigned = false; // 'u' suffix on an integer literal
  int line = 0;
};

// ------------------------------------------------------------------ types

struct Type;

struct FuncSig {
  const Type* ret = nullptr;
  std::vector<const Type*> params;
  bool varargs = false;
};

struct Type {
  enum class Kind { void_, int_, uint_, char_, float_, ptr, array, func };
  Kind kind = Kind::int_;
  const Type* pointee = nullptr; // ptr/array element, func: see sig
  int array_len = 0;
  std::unique_ptr<FuncSig> sig;  // only for Kind::func

  bool is_integer() const {
    return kind == Kind::int_ || kind == Kind::uint_ || kind == Kind::char_;
  }
  bool is_arith() const { return is_integer() || kind == Kind::float_; }
  bool is_pointer_like() const { return kind == Kind::ptr || kind == Kind::array; }
  bool is_float() const { return kind == Kind::float_; }
  int size_bytes() const;
};

// Type arena with interning of the basic types.
class TypeTable {
public:
  TypeTable();
  const Type* void_type() const { return void_; }
  const Type* int_type() const { return int_; }
  const Type* uint_type() const { return uint_; }
  const Type* char_type() const { return char_; }
  const Type* float_type() const { return float_; }
  const Type* pointer_to(const Type* pointee);
  const Type* array_of(const Type* element, int length);
  const Type* function(FuncSig sig);

private:
  std::deque<Type> arena_;
  const Type* void_;
  const Type* int_;
  const Type* uint_;
  const Type* char_;
  const Type* float_;
};

// ------------------------------------------------------------------- AST

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

struct Symbol; // variable or function, resolved by sema

struct Expr {
  enum class Kind {
    int_lit, float_lit, string_lit,
    name,        // resolved to `symbol` by sema
    unary,       // op: - ~ ! * & ++pre --pre
    post_incdec, // ++ / -- postfix (op is plus_plus/minus_minus)
    binary,      // arithmetic / relational / logical (no short-circuit fold)
    assign,      // op == Tok::assign or compound
    conditional, // a ? b : c
    call,        // callee + args
    index,       // base[index]
    cast,        // (type) operand
    sizeof_,     // sizeof(type) -> int_lit after sema
  };
  Kind kind = Kind::int_lit;
  int line = 0;
  Tok op = Tok::end;
  bool is_unsigned_literal = false;
  std::int64_t int_value = 0;
  double float_value = 0;
  std::string text; // name spelling / string literal bytes
  const Type* type = nullptr; // filled by sema
  const Type* cast_type = nullptr;
  Symbol* symbol = nullptr;   // for Kind::name
  ExprPtr lhs, rhs, third;    // operands (third: conditional else)
  std::vector<ExprPtr> args;  // call arguments
};

struct SwitchCase {
  bool is_default = false;
  std::int64_t value = 0;
  int line = 0;
  std::vector<StmtPtr> body;
};

struct Stmt {
  enum class Kind {
    expr, decl, block, if_, while_, do_, for_, switch_, break_, continue_,
    goto_, label, return_, empty,
  };
  Kind kind = Stmt::Kind::empty;
  int line = 0;
  ExprPtr expr;            // expr stmt / condition / return value
  ExprPtr init_expr;       // for-init expression (or decl in `decl`)
  ExprPtr step_expr;       // for-step
  StmtPtr then_body, else_body, body;
  std::vector<StmtPtr> stmts; // block
  std::vector<SwitchCase> cases;
  std::string label_name;  // goto target / label name
  Symbol* decl_symbol = nullptr; // local declaration
};

struct Symbol {
  enum class Kind { global, local, param, function };
  Kind kind = Kind::local;
  std::string name;
  const Type* type = nullptr;
  int line = 0;
  bool address_taken = false;
  bool is_const = false;
  bool is_static = false;
  // Globals: flattened word initializers (after sema constant folding);
  // for char arrays the bytes are packed. Words holding link-time symbol
  // addresses (&var, function names) are listed in init_symbols.
  std::vector<std::uint8_t> init_bytes;
  std::vector<std::pair<int, std::string>> init_symbols; // word index -> name
  bool has_init = false;
  // Codegen slots (assigned by codegen): s-register index or frame offset.
  int reg = -1;         // callee-saved register number, -1 if memory-homed
  int frame_offset = 0; // fp-relative, for memory-homed locals/params
  int param_index = -1;
};

struct Function {
  std::string name;
  const Type* type = nullptr; // Kind::func
  std::vector<std::unique_ptr<Symbol>> params;
  std::vector<std::unique_ptr<Symbol>> locals; // all block-scope decls
  std::vector<StmtPtr> body;
  bool defined = false;
  bool is_varargs = false;
  int line = 0;
};

struct TranslationUnit {
  TypeTable types;
  std::vector<std::unique_ptr<Symbol>> globals;
  std::vector<std::unique_ptr<Function>> functions;

  Function* find_function(const std::string& name) const;
  Symbol* find_global(const std::string& name) const;
};

} // namespace wcet::mcc
