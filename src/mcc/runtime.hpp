// mcc program driver: glues user source, the runtime library and the
// startup code into an executable tiny32 image.
//
// The runtime consists of
//  - a C prelude with the reserved prototypes (malloc, setjmp, longjmp,
//    putchar, __va_start),
//  - runtime C compiled together with the user code: the bump allocator
//    and the complete binary32 soft-float library (__f32_*), itself
//    written in the mcc subset — tiny32 has no FPU, so float operators
//    lower to these routines (paper Section 4.3, Software Arithmetic),
//  - runtime assembly: _start, putchar (ecall wrapper), setjmp/longjmp
//    (register-file save/restore — the rule 20.7 ingredients).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "isa/image.hpp"
#include "mcc/misra.hpp"

namespace wcet::mcc {

struct CompileOptions {
  CompileOptions() {}
  bool run_misra = true;
  std::uint32_t stack_top = 0x3F000;
  std::uint32_t heap_base = 0x30000;
};

struct CompileResult {
  isa::Image image;
  std::string assembly; // full program assembly (user + runtime)
  std::vector<MisraViolation> violations;
};

// Compile a user translation unit into a runnable/analyzable image.
// Throws InputError on lex/parse/sema/codegen errors.
CompileResult compile_program(std::string_view user_source,
                              const CompileOptions& options = {});

// Exposed for tests.
std::string_view runtime_prelude();
std::string runtime_c(const CompileOptions& options);
std::string runtime_asm(const CompileOptions& options);

} // namespace wcet::mcc
