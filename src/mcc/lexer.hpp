// Lexer for the mcc C subset.
#pragma once

#include <string_view>
#include <vector>

#include "mcc/ast.hpp"

namespace wcet::mcc {

// Tokenize `source`; the result always ends with a Tok::end token.
// Throws InputError with line information on malformed input.
std::vector<Token> lex(std::string_view source);

} // namespace wcet::mcc
