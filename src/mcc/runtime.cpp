#include "mcc/runtime.hpp"

#include <algorithm>
#include <sstream>

#include "isa/assembler.hpp"
#include "mcc/codegen.hpp"
#include "mcc/parser.hpp"
#include "mcc/sema.hpp"
#include "support/diag.hpp"

namespace wcet::mcc {

std::string_view runtime_prelude() {
  return R"(void* malloc(unsigned int n);
int setjmp(int* env);
void longjmp(int* env, int val);
void putchar(int c);
int* __va_start(void);
)";
}

std::string runtime_c(const CompileOptions& options) {
  std::ostringstream os;
  os << "static unsigned int __heap_ptr = " << options.heap_base << "u;\n";
  os << R"MCC(
void* malloc(unsigned int n) {
  unsigned int p = __heap_ptr;
  __heap_ptr = __heap_ptr + ((n + 3u) & 0xFFFFFFFCu);
  return (void*)p;
}

/* ---- binary32 soft-float library (FTZ/DAZ, round to nearest even). ----
   Written in the mcc subset itself; mirrors src/softarith/softfloat.cpp
   bit for bit (cross-validated by tests/test_mcc_softfloat.cpp). */

static unsigned int __f32_shr_sticky(unsigned int v, int n) {
  unsigned int s;
  if (n <= 0) { return v; }
  if (n > 31) {
    if (v != 0u) { return 1u; }
    return 0u;
  }
  s = v >> n;
  if ((v & ((1u << n) - 1u)) != 0u) { s = s | 1u; }
  return s;
}

static unsigned int __f32_pack(unsigned int sign, int exp, unsigned int sig_grs) {
  unsigned int sig = sig_grs >> 3;
  unsigned int grs = sig_grs & 7u;
  if (grs > 4u) { sig = sig + 1u; }
  else {
    if (grs == 4u) {
      if ((sig & 1u) != 0u) { sig = sig + 1u; }
    }
  }
  if (sig == 16777216u) { sig = sig >> 1; exp = exp + 1; }
  if (exp > 127) { return (sign << 31) | 2139095040u; }
  if (exp < -126) { return sign << 31; }
  return (sign << 31) | (((unsigned int)(exp + 127)) << 23) | (sig & 8388607u);
}

unsigned int __f32_add(unsigned int a, unsigned int b) {
  unsigned int asign = a >> 31;
  unsigned int bsign = b >> 31;
  unsigned int aexp = (a >> 23) & 255u;
  unsigned int bexp = (b >> 23) & 255u;
  unsigned int afrac = a & 8388607u;
  unsigned int bfrac = b & 8388607u;
  unsigned int xsign; unsigned int xexp; unsigned int xfrac;
  unsigned int yexp; unsigned int yfrac;
  unsigned int xs; unsigned int ys; unsigned int sig;
  int exp; int k;
  if (aexp == 255u) {
    if (afrac != 0u) { return 2143289344u; }
    if (bexp == 255u) {
      if (bfrac != 0u) { return 2143289344u; }
      if (asign == bsign) { return a; }
      return 2143289344u;
    }
    return a;
  }
  if (bexp == 255u) {
    if (bfrac != 0u) { return 2143289344u; }
    return b;
  }
  if (aexp == 0u) {
    if (bexp == 0u) {
      if (asign == bsign) { return asign << 31; }
      return 0u;
    }
    return b;
  }
  if (bexp == 0u) { return a; }
  if (aexp > bexp || (aexp == bexp && afrac >= bfrac)) {
    xsign = asign; xexp = aexp; xfrac = afrac; yexp = bexp; yfrac = bfrac;
    if (asign != bsign) { bsign = 1u; } else { bsign = 0u; }
  } else {
    xsign = bsign; xexp = bexp; xfrac = bfrac; yexp = aexp; yfrac = afrac;
    if (asign != bsign) { bsign = 1u; } else { bsign = 0u; }
  }
  /* bsign now means "operand signs differ" (subtract magnitudes). */
  xfrac = xfrac | 8388608u;
  yfrac = yfrac | 8388608u;
  xs = xfrac << 3;
  ys = __f32_shr_sticky(yfrac << 3, (int)(xexp - yexp));
  exp = (int)xexp - 127;
  if (bsign == 0u) {
    sig = xs + ys;
    if (sig >= 134217728u) { sig = __f32_shr_sticky(sig, 1); exp = exp + 1; }
    return __f32_pack(xsign, exp, sig);
  }
  sig = xs - ys;
  if (sig == 0u) { return 0u; }
  for (k = 0; k < 27; k = k + 1) {
    if (sig >= 67108864u) { break; }
    sig = sig << 1;
    exp = exp - 1;
  }
  return __f32_pack(xsign, exp, sig);
}

unsigned int __f32_sub(unsigned int a, unsigned int b) {
  return __f32_add(a, b ^ 2147483648u);
}

unsigned int __f32_mul(unsigned int a, unsigned int b) {
  unsigned int sign = (a >> 31) ^ (b >> 31);
  unsigned int aexp = (a >> 23) & 255u;
  unsigned int bexp = (b >> 23) & 255u;
  unsigned int afrac = a & 8388607u;
  unsigned int bfrac = b & 8388607u;
  unsigned int ma; unsigned int mb;
  unsigned int ah; unsigned int al; unsigned int bh; unsigned int bl;
  unsigned int hi; unsigned int mid; unsigned int lower25; unsigned int upper;
  unsigned int lower24; unsigned int sig;
  int exp;
  if (aexp == 255u) {
    if (afrac != 0u) { return 2143289344u; }
    if (bexp == 0u && (b & 8388607u) == 0u) { return 2143289344u; } /* inf * 0 */
    if (bexp == 0u) { return 2143289344u; } /* inf * (DAZ) 0 */
    if (bexp == 255u && bfrac != 0u) { return 2143289344u; }
    return (sign << 31) | 2139095040u;
  }
  if (bexp == 255u) {
    if (bfrac != 0u) { return 2143289344u; }
    if (aexp == 0u) { return 2143289344u; } /* 0 * inf */
    return (sign << 31) | 2139095040u;
  }
  if (aexp == 0u || bexp == 0u) { return sign << 31; }
  ma = afrac | 8388608u;
  mb = bfrac | 8388608u;
  /* 24x24 -> 48-bit product from 12-bit limbs (no 64-bit type). */
  ah = ma >> 12; al = ma & 4095u;
  bh = mb >> 12; bl = mb & 4095u;
  hi = ah * bh;
  mid = ah * bl + al * bh;
  lower25 = ((mid & 4095u) << 12) + (al * bl);
  upper = hi + (mid >> 12) + (lower25 >> 24);
  lower24 = lower25 & 16777215u;
  exp = (int)aexp - 127 + ((int)bexp - 127);
  if (upper >= 8388608u) {
    sig = (upper << 3) | (lower24 >> 21);
    if ((lower24 & 2097151u) != 0u) { sig = sig | 1u; }
    exp = exp + 1;
  } else {
    sig = (upper << 4) | (lower24 >> 20);
    if ((lower24 & 1048575u) != 0u) { sig = sig | 1u; }
  }
  return __f32_pack(sign, exp, sig);
}

unsigned int __f32_div(unsigned int a, unsigned int b) {
  unsigned int sign = (a >> 31) ^ (b >> 31);
  unsigned int aexp = (a >> 23) & 255u;
  unsigned int bexp = (b >> 23) & 255u;
  unsigned int afrac = a & 8388607u;
  unsigned int bfrac = b & 8388607u;
  unsigned int ma; unsigned int mb; unsigned int q; unsigned int r;
  unsigned int sig; int exp; int i; int total;
  if (aexp == 255u) {
    if (afrac != 0u) { return 2143289344u; }
    if (bexp == 255u) { return 2143289344u; }
    return (sign << 31) | 2139095040u;
  }
  if (bexp == 255u) {
    if (bfrac != 0u) { return 2143289344u; }
    return sign << 31;
  }
  if (bexp == 0u) {
    if (aexp == 0u) { return 2143289344u; } /* 0/0 */
    return (sign << 31) | 2139095040u;      /* x/0 -> inf */
  }
  if (aexp == 0u) { return sign << 31; }
  ma = afrac | 8388608u;
  mb = bfrac | 8388608u;
  exp = (int)aexp - (int)bexp;
  total = 24 + 26;
  if (ma < mb) { total = 24 + 27; exp = exp - 1; }
  q = 0u;
  r = 0u;
  for (i = 0; i < total; i = i + 1) {
    r = r << 1;
    if (i < 24) { r = r | ((ma >> (23 - i)) & 1u); }
    q = q << 1;
    if (r >= mb) { r = r - mb; q = q | 1u; }
  }
  sig = q;
  if (r != 0u) { sig = sig | 1u; }
  return __f32_pack(sign, exp, sig);
}

static int __f32_is_nan(unsigned int x) {
  if (((x >> 23) & 255u) == 255u && (x & 8388607u) != 0u) { return 1; }
  return 0;
}

/* Magnitude with DAZ applied; sign returned via the high bit untouched. */
static unsigned int __f32_mag(unsigned int x) {
  if (((x >> 23) & 255u) == 0u) { return 0u; }
  return x & 2147483647u;
}

unsigned int __f32_lt(unsigned int a, unsigned int b) {
  unsigned int am; unsigned int bm; unsigned int as; unsigned int bs;
  if (__f32_is_nan(a) != 0 || __f32_is_nan(b) != 0) { return 0u; }
  am = __f32_mag(a); bm = __f32_mag(b);
  as = a >> 31; bs = b >> 31;
  if (am == 0u && bm == 0u) { return 0u; }
  if (as != bs) {
    if (as == 1u) { return 1u; }
    return 0u;
  }
  if (as == 0u) {
    if (am < bm) { return 1u; }
    return 0u;
  }
  if (am > bm) { return 1u; }
  return 0u;
}

unsigned int __f32_eq(unsigned int a, unsigned int b) {
  unsigned int am; unsigned int bm;
  if (__f32_is_nan(a) != 0 || __f32_is_nan(b) != 0) { return 0u; }
  am = __f32_mag(a); bm = __f32_mag(b);
  if (am == 0u && bm == 0u) { return 1u; }
  if (am == bm && (a >> 31) == (b >> 31)) { return 1u; }
  return 0u;
}

unsigned int __f32_le(unsigned int a, unsigned int b) {
  if (__f32_is_nan(a) != 0 || __f32_is_nan(b) != 0) { return 0u; }
  if (__f32_eq(a, b) != 0u) { return 1u; }
  return __f32_lt(a, b);
}

unsigned int __f32_from_i32(int v) {
  unsigned int sign; unsigned int mag; unsigned int sig;
  int exp; int k;
  if (v == 0) { return 0u; }
  sign = 0u;
  mag = (unsigned int)v;
  if (v < 0) { sign = 1u; mag = (unsigned int)(0 - v); }
  /* Find the leading bit position. */
  exp = 31;
  for (k = 0; k < 32; k = k + 1) {
    if ((mag & 2147483648u) != 0u) { break; }
    mag = mag << 1;
    exp = exp - 1;
  }
  /* mag now has the leading bit at position 31; move it to 26 (24+GRS-1)
     with sticky collection. */
  sig = mag >> 5;
  if ((mag & 31u) != 0u) { sig = sig | 1u; }
  return __f32_pack(sign, exp, sig);
}

int __f32_to_i32(unsigned int x) {
  unsigned int exp = (x >> 23) & 255u;
  unsigned int frac = x & 8388607u;
  unsigned int mag; int e;
  if (exp == 255u) {
    if (frac != 0u) { return 0; }
    if ((x >> 31) != 0u) { return (int)2147483648u; }
    return 2147483647;
  }
  if (exp == 0u) { return 0; }
  e = (int)exp - 127;
  if (e < 0) { return 0; }
  if (e > 30) {
    if ((x >> 31) != 0u) { return (int)2147483648u; }
    return 2147483647;
  }
  mag = frac | 8388608u;
  if (e >= 23) { mag = mag << (e - 23); }
  else { mag = mag >> (23 - e); }
  if ((x >> 31) != 0u) { return (int)(0u - mag); }
  return (int)mag;
}
)MCC";
  return os.str();
}

std::string runtime_asm(const CompileOptions& options) {
  std::ostringstream os;
  os << R"(
; ---- mcc runtime (assembly part) ----
        .entry _start
        .global _start
_start:
        movi sp, )" << options.stack_top << R"(
        call main
        mov  a1, a0              ; exit code = main()'s result
        movi a0, 0               ; EcallFn::exit
        ecall
        halt

        .global putchar
putchar:
        mov  a1, a0
        movi a0, 1               ; EcallFn::putchar
        ecall
        ret

; int setjmp(int* env): env[0..7] = ra, sp, fp, s0..s4
        .global setjmp
setjmp:
        sw   ra, 0(a0)
        sw   sp, 4(a0)
        sw   fp, 8(a0)
        sw   s0, 12(a0)
        sw   s1, 16(a0)
        sw   s2, 20(a0)
        sw   s3, 24(a0)
        sw   s4, 28(a0)
        movi a0, 0
        ret

; void longjmp(int* env, int val): restores the register file and
; "returns" from the original setjmp call with a0 = val (or 1).
        .global longjmp
longjmp:
        lw   ra, 0(a0)
        lw   sp, 4(a0)
        lw   fp, 8(a0)
        lw   s0, 12(a0)
        lw   s1, 16(a0)
        lw   s2, 20(a0)
        lw   s3, 24(a0)
        lw   s4, 28(a0)
        mov  a0, a1
        bne  a0, zero, .Llj_nonzero
        movi a0, 1
.Llj_nonzero:
        ret
)";
  return os.str();
}

CompileResult compile_program(std::string_view user_source, const CompileOptions& options) {
  CompileResult result;

  // MISRA audit runs on the user code alone (prelude offset corrected)
  // so runtime internals never pollute the rule counts.
  const std::string prelude(runtime_prelude());
  const int prelude_lines =
      static_cast<int>(std::count(prelude.begin(), prelude.end(), '\n'));
  if (options.run_misra) {
    const std::string audit_source = prelude + std::string(user_source);
    auto audit_unit = parse(audit_source);
    analyze(*audit_unit);
    result.violations = check_misra(*audit_unit);
    for (auto& violation : result.violations) {
      violation.line -= prelude_lines;
    }
  }

  // Full build: prelude + user + runtime C, then runtime assembly.
  const std::string full_source =
      prelude + std::string(user_source) + runtime_c(options);
  auto unit = parse(full_source);
  analyze(*unit);
  if (unit->find_function("main") == nullptr || !unit->find_function("main")->defined) {
    throw InputError("mcc: program has no main()");
  }
  result.assembly = generate(*unit) + runtime_asm(options);
  result.image = isa::assemble(result.assembly);
  return result;
}

} // namespace wcet::mcc
