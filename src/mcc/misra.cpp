#include "mcc/misra.hpp"

#include <functional>
#include <map>
#include <set>
#include <sstream>

namespace wcet::mcc {

namespace {

const char* impact_of(const std::string& rule) {
  // Condensed from Section 4.2 of the paper.
  if (rule == "13.4") {
    return "float loop conditions defeat abstract-interpretation loop-bound "
           "detection (integer-only analyzers); soft-float lowering hides the "
           "counter behind opaque calls";
  }
  if (rule == "13.6") {
    return "modifying the counter in the body breaks the simple counter-loop "
           "pattern that automatic loop-bound detection relies on";
  }
  if (rule == "14.1") {
    return "unreachable code widens the control-flow over-approximation and "
           "adds spurious paths to the WCET computation";
  }
  if (rule == "14.4") {
    return "goto can create irreducible loops: no automatic loop bounds, no "
           "virtual loop unrolling, annotations always required";
  }
  if (rule == "14.5") {
    return "continue only adds back edges and cannot create irreducible "
           "loops; the rule is pure coding style (paper's correction of "
           "Wenzel et al.)";
  }
  if (rule == "16.1") {
    return "variadic functions imply data-dependent loops over the argument "
           "list that cannot be bounded automatically";
  }
  if (rule == "16.2") {
    return "recursion creates call-graph cycles analogous to irreducible "
           "loops; depth annotations are always required";
  }
  if (rule == "20.4") {
    return "heap allocation yields statically unknown addresses: cache "
           "analysis degrades and the slowest memory region must be assumed";
  }
  if (rule == "20.7") {
    return "setjmp/longjmp allow construction of irreducible control flow "
           "with the same impact as goto-built loops";
  }
  return "";
}

class Checker {
public:
  explicit Checker(const TranslationUnit& unit) : unit_(unit) {}

  std::vector<MisraViolation> run() {
    for (const auto& fn : unit_.functions) {
      if (fn->type->sig->varargs) {
        report("16.1", fn->line, fn->name,
               "function '" + fn->name + "' is declared with a variable number of arguments");
      }
      if (!fn->defined) continue;
      current_fn_ = fn->name;
      for (const auto& stmt : fn->body) visit_stmt(*stmt, /*reachable=*/true);
      check_block_reachability(fn->body);
    }
    check_recursion();
    return std::move(violations_);
  }

private:
  void report(const std::string& rule, int line, const std::string& function,
              const std::string& message) {
    violations_.push_back({rule, line, function, message, impact_of(rule)});
  }

  // ---------------------------------------------------------- expressions
  bool expr_has_float(const Expr& e) const {
    if (e.type != nullptr && e.type->is_float()) return true;
    if (e.lhs && expr_has_float(*e.lhs)) return true;
    if (e.rhs && expr_has_float(*e.rhs)) return true;
    if (e.third && expr_has_float(*e.third)) return true;
    for (const auto& arg : e.args) {
      if (expr_has_float(*arg)) return true;
    }
    return false;
  }

  void collect_counter_vars(const Expr& e, std::set<const Symbol*>& out) const {
    // "Numeric variables being used within a for loop for iteration
    // counting": variables updated by the for-statement's step
    // expression.
    if (e.kind == Expr::Kind::assign || e.kind == Expr::Kind::post_incdec ||
        (e.kind == Expr::Kind::unary &&
         (e.op == Tok::plus_plus || e.op == Tok::minus_minus))) {
      if (e.lhs && e.lhs->kind == Expr::Kind::name && e.lhs->symbol != nullptr) {
        out.insert(e.lhs->symbol);
      }
    }
    if (e.lhs) collect_counter_vars(*e.lhs, out);
    if (e.rhs) collect_counter_vars(*e.rhs, out);
    if (e.third) collect_counter_vars(*e.third, out);
  }

  void check_counter_modification(const Stmt& body,
                                  const std::set<const Symbol*>& counters) {
    const std::function<void(const Expr&)> scan_expr = [&](const Expr& e) {
      const bool writes = e.kind == Expr::Kind::assign ||
                          e.kind == Expr::Kind::post_incdec ||
                          (e.kind == Expr::Kind::unary &&
                           (e.op == Tok::plus_plus || e.op == Tok::minus_minus));
      if (writes && e.lhs->kind == Expr::Kind::name &&
          counters.count(e.lhs->symbol) != 0) {
        report("13.6", e.line, current_fn_,
               "loop counter '" + e.lhs->symbol->name + "' is modified in the loop body");
      }
      if (e.lhs) scan_expr(*e.lhs);
      if (e.rhs) scan_expr(*e.rhs);
      if (e.third) scan_expr(*e.third);
      for (const auto& arg : e.args) scan_expr(*arg);
    };
    const std::function<void(const Stmt&)> scan_stmt = [&](const Stmt& s) {
      if (s.expr) scan_expr(*s.expr);
      if (s.step_expr) scan_expr(*s.step_expr);
      if (s.then_body) scan_stmt(*s.then_body);
      if (s.else_body) scan_stmt(*s.else_body);
      if (s.body) scan_stmt(*s.body);
      for (const auto& child : s.stmts) scan_stmt(*child);
      for (const auto& entry : s.cases) {
        for (const auto& child : entry.body) scan_stmt(*child);
      }
    };
    scan_stmt(body);
  }

  void visit_expr(const Expr& e) {
    if (e.kind == Expr::Kind::call && e.lhs->kind == Expr::Kind::name) {
      const std::string& callee = e.lhs->text;
      if (callee == "malloc" || callee == "calloc" || callee == "free" ||
          callee == "realloc") {
        report("20.4", e.line, current_fn_,
               "dynamic heap memory allocation ('" + callee + "')");
      }
      if (callee == "setjmp" || callee == "longjmp") {
        report("20.7", e.line, current_fn_, "use of '" + callee + "'");
      }
    }
    if (e.lhs) visit_expr(*e.lhs);
    if (e.rhs) visit_expr(*e.rhs);
    if (e.third) visit_expr(*e.third);
    for (const auto& arg : e.args) visit_expr(*arg);
  }

  // ----------------------------------------------------------- statements
  void visit_stmt(const Stmt& s, bool reachable) {
    (void)reachable;
    if (s.expr) visit_expr(*s.expr);
    if (s.step_expr) visit_expr(*s.step_expr);
    switch (s.kind) {
    case Stmt::Kind::goto_:
      report("14.4", s.line, current_fn_, "use of the goto statement");
      break;
    case Stmt::Kind::continue_:
      report("14.5", s.line, current_fn_, "use of the continue statement");
      break;
    case Stmt::Kind::for_: {
      if (s.expr && expr_has_float(*s.expr)) {
        report("13.4", s.line, current_fn_,
               "controlling expression of for statement contains a float object");
      }
      std::set<const Symbol*> counters;
      if (s.step_expr) collect_counter_vars(*s.step_expr, counters);
      if (!counters.empty() && s.body) check_counter_modification(*s.body, counters);
      break;
    }
    default:
      break;
    }
    if (s.then_body) visit_stmt(*s.then_body, true);
    if (s.else_body) visit_stmt(*s.else_body, true);
    if (s.body) visit_stmt(*s.body, true);
    for (const auto& child : s.stmts) visit_stmt(*child, true);
    for (const auto& entry : s.cases) {
      for (const auto& child : entry.body) visit_stmt(*child, true);
    }
    if (s.kind == Stmt::Kind::block) check_block_reachability(s.stmts);
    for (const auto& entry : s.cases) check_block_reachability(entry.body);
  }

  // Rule 14.1 (syntactic approximation): statements that follow a
  // terminating statement inside the same block are unreachable, unless
  // they carry a label (goto may jump to them).
  static bool terminates(const Stmt& s) {
    switch (s.kind) {
    case Stmt::Kind::return_:
    case Stmt::Kind::break_:
    case Stmt::Kind::continue_:
    case Stmt::Kind::goto_:
      return true;
    case Stmt::Kind::if_:
      return s.else_body && terminates(*s.then_body) && terminates(*s.else_body);
    case Stmt::Kind::block:
      return !s.stmts.empty() && terminates(*s.stmts.back());
    default:
      return false;
    }
  }

  void check_block_reachability(const std::vector<StmtPtr>& stmts) {
    for (std::size_t i = 0; i + 1 < stmts.size(); ++i) {
      if (!terminates(*stmts[i])) continue;
      const Stmt& next = *stmts[i + 1];
      if (next.kind == Stmt::Kind::label) break; // goto target: reachable
      report("14.1", next.line, current_fn_, "statement is unreachable");
      break; // one report per block is enough
    }
  }

  // Rule 16.2: cycles in the call graph.
  void check_recursion() {
    std::map<std::string, std::set<std::string>> calls;
    for (const auto& fn : unit_.functions) {
      if (!fn->defined) continue;
      std::set<std::string>& out = calls[fn->name];
      const std::function<void(const Expr&)> scan_expr = [&](const Expr& e) {
        if (e.kind == Expr::Kind::call && e.lhs->kind == Expr::Kind::name &&
            e.lhs->symbol != nullptr &&
            e.lhs->symbol->kind == Symbol::Kind::function) {
          out.insert(e.lhs->text);
        }
        if (e.lhs) scan_expr(*e.lhs);
        if (e.rhs) scan_expr(*e.rhs);
        if (e.third) scan_expr(*e.third);
        for (const auto& arg : e.args) scan_expr(*arg);
      };
      const std::function<void(const Stmt&)> scan_stmt = [&](const Stmt& s) {
        if (s.expr) scan_expr(*s.expr);
        if (s.step_expr) scan_expr(*s.step_expr);
        if (s.then_body) scan_stmt(*s.then_body);
        if (s.else_body) scan_stmt(*s.else_body);
        if (s.body) scan_stmt(*s.body);
        for (const auto& child : s.stmts) scan_stmt(*child);
        for (const auto& entry : s.cases) {
          for (const auto& child : entry.body) scan_stmt(*child);
        }
      };
      for (const auto& stmt : fn->body) scan_stmt(*stmt);
    }
    // DFS cycle detection from every function.
    for (const auto& fn : unit_.functions) {
      if (!fn->defined) continue;
      std::set<std::string> visited;
      std::vector<std::string> stack{fn->name};
      bool recursive = false;
      while (!stack.empty() && !recursive) {
        const std::string node = stack.back();
        stack.pop_back();
        for (const std::string& callee : calls[node]) {
          if (callee == fn->name) {
            recursive = true;
            break;
          }
          if (visited.insert(callee).second) stack.push_back(callee);
        }
      }
      if (recursive) {
        report("16.2", fn->line, fn->name,
               "function '" + fn->name + "' calls itself directly or indirectly");
      }
    }
  }

  const TranslationUnit& unit_;
  std::string current_fn_;
  std::vector<MisraViolation> violations_;
};

} // namespace

std::vector<MisraViolation> check_misra(const TranslationUnit& unit) {
  return Checker(unit).run();
}

std::string format_misra_report(const std::vector<MisraViolation>& violations) {
  std::ostringstream os;
  if (violations.empty()) {
    os << "MISRA-C:2004 audit: no violations of the checked rules.\n";
    return os.str();
  }
  os << "MISRA-C:2004 audit: " << violations.size() << " violation(s)\n";
  for (const auto& v : violations) {
    os << "  [rule " << v.rule << "] line " << v.line;
    if (!v.function.empty()) os << " in " << v.function << "()";
    os << ": " << v.message << "\n      WCET impact: " << v.wcet_impact << '\n';
  }
  return os.str();
}

} // namespace wcet::mcc
