#include "mcc/lexer.hpp"

#include <cctype>
#include <map>

#include "support/diag.hpp"

namespace wcet::mcc {

namespace {

const std::map<std::string, Tok>& keywords() {
  static const std::map<std::string, Tok> map = {
      {"int", Tok::kw_int},         {"unsigned", Tok::kw_unsigned},
      {"char", Tok::kw_char},       {"float", Tok::kw_float},
      {"void", Tok::kw_void},       {"const", Tok::kw_const},
      {"static", Tok::kw_static},   {"if", Tok::kw_if},
      {"else", Tok::kw_else},       {"while", Tok::kw_while},
      {"do", Tok::kw_do},           {"for", Tok::kw_for},
      {"switch", Tok::kw_switch},   {"case", Tok::kw_case},
      {"default", Tok::kw_default}, {"break", Tok::kw_break},
      {"continue", Tok::kw_continue}, {"goto", Tok::kw_goto},
      {"return", Tok::kw_return},   {"sizeof", Tok::kw_sizeof},
  };
  return map;
}

[[noreturn]] void fail(int line, const std::string& message) {
  throw InputError("mcc line " + std::to_string(line) + ": " + message);
}

char decode_escape(char c, int line) {
  switch (c) {
  case 'n': return '\n';
  case 't': return '\t';
  case 'r': return '\r';
  case '0': return '\0';
  case '\\': return '\\';
  case '\'': return '\'';
  case '"': return '"';
  default: fail(line, std::string("unknown escape '\\") + c + "'");
  }
}

} // namespace

std::vector<Token> lex(std::string_view src) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  int line = 1;
  const auto push = [&](Tok kind) {
    Token t;
    t.kind = kind;
    t.line = line;
    tokens.push_back(std::move(t));
  };

  while (i < src.size()) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < src.size() && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      if (i + 1 >= src.size()) fail(line, "unterminated comment");
      i += 2;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      const std::size_t start = i;
      while (i < src.size() &&
             (std::isalnum(static_cast<unsigned char>(src[i])) || src[i] == '_')) {
        ++i;
      }
      const std::string word(src.substr(start, i - start));
      const auto kw = keywords().find(word);
      Token t;
      t.kind = kw != keywords().end() ? kw->second : Tok::identifier;
      t.text = word;
      t.line = line;
      tokens.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      const std::size_t start = i;
      bool is_float = false;
      if (c == '0' && i + 1 < src.size() && (src[i + 1] == 'x' || src[i + 1] == 'X')) {
        i += 2;
        while (i < src.size() && std::isxdigit(static_cast<unsigned char>(src[i]))) ++i;
      } else {
        while (i < src.size() && std::isdigit(static_cast<unsigned char>(src[i]))) ++i;
        if (i < src.size() && src[i] == '.') {
          is_float = true;
          ++i;
          while (i < src.size() && std::isdigit(static_cast<unsigned char>(src[i]))) ++i;
        }
        if (i < src.size() && (src[i] == 'e' || src[i] == 'E')) {
          is_float = true;
          ++i;
          if (i < src.size() && (src[i] == '+' || src[i] == '-')) ++i;
          while (i < src.size() && std::isdigit(static_cast<unsigned char>(src[i]))) ++i;
        }
      }
      std::string spelling(src.substr(start, i - start));
      bool f_suffix = false;
      bool u_suffix = false;
      if (i < src.size() && (src[i] == 'f' || src[i] == 'F')) {
        f_suffix = true;
        ++i;
      }
      if (i < src.size() && (src[i] == 'u' || src[i] == 'U')) {
        u_suffix = true;
        ++i;
      }
      Token t;
      t.line = line;
      t.text = spelling;
      t.is_unsigned = u_suffix;
      if (is_float || f_suffix) {
        t.kind = Tok::float_literal;
        t.float_value = std::stod(spelling);
      } else {
        t.kind = Tok::int_literal;
        t.int_value = static_cast<std::int64_t>(std::stoll(spelling, nullptr, 0));
      }
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '\'') {
      ++i;
      if (i >= src.size()) fail(line, "unterminated char literal");
      char value = src[i];
      if (value == '\\') {
        ++i;
        if (i >= src.size()) fail(line, "unterminated char literal");
        value = decode_escape(src[i], line);
      }
      ++i;
      if (i >= src.size() || src[i] != '\'') fail(line, "unterminated char literal");
      ++i;
      Token t;
      t.kind = Tok::int_literal;
      t.int_value = static_cast<unsigned char>(value);
      t.line = line;
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '"') {
      ++i;
      std::string bytes;
      while (i < src.size() && src[i] != '"') {
        char value = src[i];
        if (value == '\n') fail(line, "newline in string literal");
        if (value == '\\') {
          ++i;
          if (i >= src.size()) fail(line, "unterminated string literal");
          value = decode_escape(src[i], line);
        }
        bytes.push_back(value);
        ++i;
      }
      if (i >= src.size()) fail(line, "unterminated string literal");
      ++i;
      Token t;
      t.kind = Tok::string_literal;
      t.text = std::move(bytes);
      t.line = line;
      tokens.push_back(std::move(t));
      continue;
    }

    // Operators / punctuation (longest match first).
    const auto two = i + 1 < src.size() ? src.substr(i, 2) : std::string_view{};
    const auto three = i + 2 < src.size() ? src.substr(i, 3) : std::string_view{};
    if (three == "...") { push(Tok::ellipsis); i += 3; continue; }
    if (three == "<<=") { push(Tok::shl_assign); i += 3; continue; }
    if (three == ">>=") { push(Tok::shr_assign); i += 3; continue; }
    if (two == "==") { push(Tok::eq_eq); i += 2; continue; }
    if (two == "!=") { push(Tok::bang_eq); i += 2; continue; }
    if (two == "<=") { push(Tok::le); i += 2; continue; }
    if (two == ">=") { push(Tok::ge); i += 2; continue; }
    if (two == "<<") { push(Tok::shl); i += 2; continue; }
    if (two == ">>") { push(Tok::shr); i += 2; continue; }
    if (two == "&&") { push(Tok::amp_amp); i += 2; continue; }
    if (two == "||") { push(Tok::pipe_pipe); i += 2; continue; }
    if (two == "++") { push(Tok::plus_plus); i += 2; continue; }
    if (two == "--") { push(Tok::minus_minus); i += 2; continue; }
    if (two == "+=") { push(Tok::plus_assign); i += 2; continue; }
    if (two == "-=") { push(Tok::minus_assign); i += 2; continue; }
    if (two == "*=") { push(Tok::star_assign); i += 2; continue; }
    if (two == "/=") { push(Tok::slash_assign); i += 2; continue; }
    if (two == "%=") { push(Tok::percent_assign); i += 2; continue; }
    if (two == "&=") { push(Tok::amp_assign); i += 2; continue; }
    if (two == "|=") { push(Tok::pipe_assign); i += 2; continue; }
    if (two == "^=") { push(Tok::caret_assign); i += 2; continue; }
    switch (c) {
    case '(': push(Tok::lparen); break;
    case ')': push(Tok::rparen); break;
    case '{': push(Tok::lbrace); break;
    case '}': push(Tok::rbrace); break;
    case '[': push(Tok::lbracket); break;
    case ']': push(Tok::rbracket); break;
    case ';': push(Tok::semi); break;
    case ',': push(Tok::comma); break;
    case ':': push(Tok::colon); break;
    case '?': push(Tok::question); break;
    case '=': push(Tok::assign); break;
    case '+': push(Tok::plus); break;
    case '-': push(Tok::minus); break;
    case '*': push(Tok::star); break;
    case '/': push(Tok::slash); break;
    case '%': push(Tok::percent); break;
    case '&': push(Tok::amp); break;
    case '|': push(Tok::pipe); break;
    case '^': push(Tok::caret); break;
    case '~': push(Tok::tilde); break;
    case '!': push(Tok::bang); break;
    case '<': push(Tok::lt); break;
    case '>': push(Tok::gt); break;
    default:
      fail(line, std::string("unexpected character '") + c + "'");
    }
    ++i;
  }
  Token end;
  end.kind = Tok::end;
  end.line = line;
  tokens.push_back(std::move(end));
  return tokens;
}

} // namespace wcet::mcc
