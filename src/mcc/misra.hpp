// MISRA-C:2004 rule checker for the rules the paper analyzes in
// Section 4.2, each annotated with its WCET-predictability impact:
//
//   13.4  no float objects in for-loop controlling expressions
//   13.6  loop counters not modified inside the body
//   14.1  no unreachable code
//   14.4  no goto
//   14.5  no continue
//   16.1  no variadic functions
//   16.2  no direct or indirect recursion
//   20.4  no dynamic heap allocation
//   20.7  no setjmp/longjmp
#pragma once

#include <string>
#include <vector>

#include "mcc/ast.hpp"

namespace wcet::mcc {

struct MisraViolation {
  std::string rule;      // "13.4", ...
  int line = 0;
  std::string function;  // enclosing function, empty for file scope
  std::string message;
  std::string wcet_impact; // the paper's predictability rationale
};

std::vector<MisraViolation> check_misra(const TranslationUnit& unit);

// Render a violation list as an audit report.
std::string format_misra_report(const std::vector<MisraViolation>& violations);

} // namespace wcet::mcc
