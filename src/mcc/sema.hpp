// Semantic analysis for mcc: assigns a type to every expression, applies
// the usual arithmetic conversions (char promotes to int; float wins;
// unsigned wins over int), types pointer arithmetic, checks lvalues and
// call signatures, and marks address-taken symbols (which forces them
// into memory during code generation).
#pragma once

#include "mcc/ast.hpp"

namespace wcet::mcc {

// Analyze in place. Throws InputError on semantic errors.
void analyze(TranslationUnit& unit);

} // namespace wcet::mcc
