#include "mcc/parser.hpp"

#include <map>

#include "mcc/lexer.hpp"
#include "support/diag.hpp"

namespace wcet::mcc {

namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw InputError("mcc line " + std::to_string(line) + ": " + message);
}

// Returns the referenced symbol name for address-valued initializer
// expressions (&var, function or array names), empty otherwise.
std::string symbol_address_of_expr(const Expr& e) {
  if (e.kind == Expr::Kind::unary && e.op == Tok::amp &&
      e.lhs->kind == Expr::Kind::name) {
    return e.lhs->text;
  }
  if (e.kind == Expr::Kind::name && e.symbol != nullptr &&
      (e.symbol->kind == Symbol::Kind::function ||
       (e.symbol->type != nullptr && e.symbol->type->kind == Type::Kind::array))) {
    return e.text;
  }
  if (e.kind == Expr::Kind::cast && e.lhs) return symbol_address_of_expr(*e.lhs);
  return {};
}

class Parser {
public:
  explicit Parser(std::string_view source)
      : tokens_(lex(source)), unit_(std::make_unique<TranslationUnit>()) {}

  std::unique_ptr<TranslationUnit> run() {
    scopes_.emplace_back(); // file scope
    while (!at(Tok::end)) top_level();
    return std::move(unit_);
  }

private:
  // ------------------------------------------------------------ token ops
  const Token& peek(int ahead = 0) const {
    const std::size_t index = std::min(pos_ + static_cast<std::size_t>(ahead),
                                       tokens_.size() - 1);
    return tokens_[index];
  }
  bool at(Tok kind) const { return peek().kind == kind; }
  const Token& advance() { return tokens_[pos_++]; }
  bool accept(Tok kind) {
    if (at(kind)) {
      ++pos_;
      return true;
    }
    return false;
  }
  const Token& expect(Tok kind, const char* what) {
    if (!at(kind)) fail(peek().line, std::string("expected ") + what);
    return advance();
  }
  int line() const { return peek().line; }

  // ------------------------------------------------------------- scoping
  Symbol* lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      const auto found = it->find(name);
      if (found != it->end()) return found->second;
    }
    return nullptr;
  }
  void declare(Symbol* symbol) {
    auto& scope = scopes_.back();
    if (scope.count(symbol->name) != 0) {
      fail(symbol->line, "redefinition of '" + symbol->name + "'");
    }
    scope.emplace(symbol->name, symbol);
  }

  // --------------------------------------------------------------- types
  bool at_type_start() const {
    switch (peek().kind) {
    case Tok::kw_int:
    case Tok::kw_unsigned:
    case Tok::kw_char:
    case Tok::kw_float:
    case Tok::kw_void:
    case Tok::kw_const:
    case Tok::kw_static:
      return true;
    default:
      return false;
    }
  }

  struct DeclSpec {
    const Type* base = nullptr;
    bool is_const = false;
    bool is_static = false;
  };

  DeclSpec decl_specifiers() {
    DeclSpec spec;
    for (;;) {
      if (accept(Tok::kw_const)) {
        spec.is_const = true;
        continue;
      }
      if (accept(Tok::kw_static)) {
        spec.is_static = true;
        continue;
      }
      break;
    }
    TypeTable& types = unit_->types;
    if (accept(Tok::kw_int)) spec.base = types.int_type();
    else if (accept(Tok::kw_unsigned)) {
      accept(Tok::kw_int);
      spec.base = types.uint_type();
    } else if (accept(Tok::kw_char)) spec.base = types.char_type();
    else if (accept(Tok::kw_float)) spec.base = types.float_type();
    else if (accept(Tok::kw_void)) spec.base = types.void_type();
    else fail(line(), "expected type specifier");
    // Trailing const (e.g. `int const`).
    if (accept(Tok::kw_const)) spec.is_const = true;
    return spec;
  }

  const Type* pointer_suffix(const Type* base) {
    while (accept(Tok::star)) {
      base = unit_->types.pointer_to(base);
      accept(Tok::kw_const);
    }
    return base;
  }

  // declarator := '(' '*' name ')' '(' params ')'   (function pointer)
  //             | name ('[' int ']')?
  struct Declarator {
    std::string name;
    const Type* type = nullptr;
    int line = 0;
  };

  Declarator declarator(const Type* base) {
    Declarator d;
    d.line = line();
    if (at(Tok::lparen) && peek(1).kind == Tok::star) {
      // Function pointer: base (*name)(params)
      expect(Tok::lparen, "'('");
      expect(Tok::star, "'*'");
      d.name = expect(Tok::identifier, "identifier").text;
      expect(Tok::rparen, "')'");
      expect(Tok::lparen, "'('");
      FuncSig sig;
      sig.ret = base;
      parse_param_types(sig);
      expect(Tok::rparen, "')'");
      d.type = unit_->types.pointer_to(unit_->types.function(std::move(sig)));
      return d;
    }
    d.name = expect(Tok::identifier, "identifier").text;
    std::vector<int> dims;
    while (accept(Tok::lbracket)) {
      ExprPtr length = expression();
      const std::int64_t n = fold_int(*length);
      expect(Tok::rbracket, "']'");
      if (n <= 0) fail(d.line, "array length must be positive");
      dims.push_back(static_cast<int>(n));
    }
    d.type = base;
    for (auto it = dims.rbegin(); it != dims.rend(); ++it) {
      d.type = unit_->types.array_of(d.type, *it);
    }
    return d;
  }

  void parse_param_types(FuncSig& sig, std::vector<Declarator>* names = nullptr) {
    if (at(Tok::rparen)) return;
    if (at(Tok::kw_void) && peek(1).kind == Tok::rparen) {
      advance();
      return;
    }
    for (;;) {
      if (accept(Tok::ellipsis)) {
        sig.varargs = true;
        break;
      }
      const DeclSpec spec = decl_specifiers();
      const Type* type = pointer_suffix(spec.base);
      Declarator d;
      if (at(Tok::identifier) || (at(Tok::lparen) && peek(1).kind == Tok::star)) {
        d = declarator(type);
        // Array parameters decay to pointers.
        if (d.type->kind == Type::Kind::array) {
          d.type = unit_->types.pointer_to(d.type->pointee);
        }
      } else {
        d.type = type; // unnamed parameter (prototype)
        d.line = line();
      }
      sig.params.push_back(d.type);
      if (names != nullptr) names->push_back(d);
      if (!accept(Tok::comma)) break;
    }
  }

  // ----------------------------------------------------------- top level
  void top_level() {
    const DeclSpec spec = decl_specifiers();
    const Type* type = pointer_suffix(spec.base);

    // Function pointer global or plain declarator.
    if (at(Tok::lparen)) {
      global_variable(spec, declarator(type));
      expect(Tok::semi, "';'");
      return;
    }
    const Token& name_token = expect(Tok::identifier, "identifier");
    if (at(Tok::lparen)) {
      function_definition(spec, type, name_token);
      return;
    }
    // Global variable (possibly array), possibly several declarators.
    pos_ -= 1; // put the identifier back
    for (;;) {
      Declarator d = declarator(type);
      global_variable(spec, std::move(d));
      if (!accept(Tok::comma)) break;
    }
    expect(Tok::semi, "';'");
  }

  void global_variable(const DeclSpec& spec, Declarator d) {
    auto symbol = std::make_unique<Symbol>();
    symbol->kind = Symbol::Kind::global;
    symbol->name = d.name;
    symbol->type = d.type;
    symbol->line = d.line;
    symbol->is_const = spec.is_const;
    symbol->is_static = spec.is_static;
    if (accept(Tok::assign)) {
      symbol->has_init = true;
      parse_global_init(*symbol);
    }
    declare(symbol.get());
    unit_->globals.push_back(std::move(symbol));
  }

  void parse_global_init(Symbol& symbol) {
    // Encoded as raw bytes; integer/float constants, string literals for
    // char arrays, brace lists, and link-time symbol addresses (&var,
    // function or array names) are allowed.
    const auto put_word = [&](std::uint32_t w) {
      for (int i = 0; i < 4; ++i) {
        symbol.init_bytes.push_back(static_cast<std::uint8_t>(w >> (8 * i)));
      }
    };
    const auto symbol_address_of = [](const Expr& e) {
      return symbol_address_of_expr(e);
    };
    const auto put_symbol_word = [&](const std::string& name) {
      symbol.init_symbols.emplace_back(
          static_cast<int>(symbol.init_bytes.size() / 4), name);
      put_word(0);
    };
    if (symbol.type->kind == Type::Kind::array) {
      const Type* elem = symbol.type->pointee;
      if (at(Tok::string_literal) && elem->kind == Type::Kind::char_) {
        const Token& s = advance();
        for (const char c : s.text) {
          symbol.init_bytes.push_back(static_cast<std::uint8_t>(c));
        }
        symbol.init_bytes.push_back(0);
        return;
      }
      expect(Tok::lbrace, "'{'");
      for (;;) {
        ExprPtr e = conditional();
        const std::string ref = symbol_address_of(*e);
        if (!ref.empty() && elem->size_bytes() == 4) {
          put_symbol_word(ref);
        } else {
          const std::int64_t v = fold_int(*e);
          if (elem->size_bytes() == 1) {
            symbol.init_bytes.push_back(static_cast<std::uint8_t>(v));
          } else {
            put_word(static_cast<std::uint32_t>(v));
          }
        }
        if (!accept(Tok::comma)) break;
        if (at(Tok::rbrace)) break; // trailing comma
      }
      expect(Tok::rbrace, "'}'");
      return;
    }
    ExprPtr e = conditional();
    {
      const std::string ref = symbol_address_of(*e);
      if (!ref.empty()) {
        put_symbol_word(ref);
        return;
      }
    }
    if (symbol.type->is_float()) {
      const double v = e->kind == Expr::Kind::float_lit ? e->float_value
                                                        : static_cast<double>(fold_int(*e));
      const float f = static_cast<float>(v);
      std::uint32_t bits;
      static_assert(sizeof bits == sizeof f);
      __builtin_memcpy(&bits, &f, sizeof bits);
      put_word(bits);
    } else {
      put_word(static_cast<std::uint32_t>(fold_int(*e)));
    }
  }

  void function_definition(const DeclSpec& spec, const Type* ret, const Token& name_token) {
    expect(Tok::lparen, "'('");
    FuncSig sig;
    sig.ret = ret;
    std::vector<Declarator> param_names;
    parse_param_types(sig, &param_names);
    expect(Tok::rparen, "')'");

    Function* fn = unit_->find_function(name_token.text);
    if (fn == nullptr) {
      auto owned = std::make_unique<Function>();
      fn = owned.get();
      fn->name = name_token.text;
      fn->line = name_token.line;
      fn->is_varargs = sig.varargs;
      fn->type = unit_->types.function(std::move(sig));
      unit_->functions.push_back(std::move(owned));
      // Function symbol for name resolution.
      auto symbol = std::make_unique<Symbol>();
      symbol->kind = Symbol::Kind::function;
      symbol->name = fn->name;
      symbol->type = fn->type;
      symbol->line = fn->line;
      declare(symbol.get());
      unit_->globals.push_back(std::move(symbol));
    }
    (void)spec;

    if (accept(Tok::semi)) return; // prototype only
    if (fn->defined) fail(name_token.line, "redefinition of '" + fn->name + "'");
    fn->defined = true;

    current_fn_ = fn;
    scopes_.emplace_back(); // parameter scope
    int index = 0;
    for (const Declarator& d : param_names) {
      if (d.name.empty()) fail(d.line, "parameter name required in definition");
      auto param = std::make_unique<Symbol>();
      param->kind = Symbol::Kind::param;
      param->name = d.name;
      param->type = d.type;
      param->line = d.line;
      param->param_index = index++;
      declare(param.get());
      fn->params.push_back(std::move(param));
    }
    expect(Tok::lbrace, "'{'");
    while (!accept(Tok::rbrace)) {
      fn->body.push_back(statement());
    }
    scopes_.pop_back();
    current_fn_ = nullptr;
  }

  // ----------------------------------------------------------- statements
  StmtPtr statement() {
    auto stmt = std::make_unique<Stmt>();
    stmt->line = line();

    // Label: identifier ':' (but not the ?: else branch — statements
    // only start here).
    if (at(Tok::identifier) && peek(1).kind == Tok::colon) {
      stmt->kind = Stmt::Kind::label;
      stmt->label_name = advance().text;
      advance(); // ':'
      return stmt;
    }
    if (at_type_start()) return declaration();

    switch (peek().kind) {
    case Tok::semi:
      advance();
      stmt->kind = Stmt::Kind::empty;
      return stmt;
    case Tok::lbrace: {
      advance();
      stmt->kind = Stmt::Kind::block;
      scopes_.emplace_back();
      while (!accept(Tok::rbrace)) stmt->stmts.push_back(statement());
      scopes_.pop_back();
      return stmt;
    }
    case Tok::kw_if: {
      advance();
      stmt->kind = Stmt::Kind::if_;
      expect(Tok::lparen, "'('");
      stmt->expr = expression();
      expect(Tok::rparen, "')'");
      stmt->then_body = statement();
      if (accept(Tok::kw_else)) stmt->else_body = statement();
      return stmt;
    }
    case Tok::kw_while: {
      advance();
      stmt->kind = Stmt::Kind::while_;
      expect(Tok::lparen, "'('");
      stmt->expr = expression();
      expect(Tok::rparen, "')'");
      stmt->body = statement();
      return stmt;
    }
    case Tok::kw_do: {
      advance();
      stmt->kind = Stmt::Kind::do_;
      stmt->body = statement();
      if (!accept(Tok::kw_while)) fail(stmt->line, "expected 'while' after do body");
      expect(Tok::lparen, "'('");
      stmt->expr = expression();
      expect(Tok::rparen, "')'");
      expect(Tok::semi, "';'");
      return stmt;
    }
    case Tok::kw_for: {
      advance();
      stmt->kind = Stmt::Kind::for_;
      expect(Tok::lparen, "'('");
      // Init clause lives in then_body (decl or expression statement).
      bool pushed_for_scope = false;
      if (!at(Tok::semi)) {
        if (at_type_start()) {
          scopes_.emplace_back(); // for-scope for the declared counter
          pushed_for_scope = true;
          stmt->then_body = declaration();
        } else {
          auto init = std::make_unique<Stmt>();
          init->kind = Stmt::Kind::expr;
          init->line = line();
          init->expr = expression();
          expect(Tok::semi, "';'");
          stmt->then_body = std::move(init);
        }
      } else {
        advance();
      }
      if (!at(Tok::semi)) stmt->expr = expression();
      expect(Tok::semi, "';'");
      if (!at(Tok::rparen)) stmt->step_expr = expression();
      expect(Tok::rparen, "')'");
      stmt->body = statement();
      if (pushed_for_scope) scopes_.pop_back();
      return stmt;
    }
    case Tok::kw_switch: {
      advance();
      stmt->kind = Stmt::Kind::switch_;
      expect(Tok::lparen, "'('");
      stmt->expr = expression();
      expect(Tok::rparen, "')'");
      expect(Tok::lbrace, "'{'");
      scopes_.emplace_back();
      while (!accept(Tok::rbrace)) {
        SwitchCase entry;
        entry.line = line();
        if (accept(Tok::kw_case)) {
          ExprPtr value = conditional();
          entry.value = fold_int(*value);
        } else if (accept(Tok::kw_default)) {
          entry.is_default = true;
        } else {
          fail(line(), "expected 'case' or 'default' inside switch");
        }
        expect(Tok::colon, "':'");
        while (!at(Tok::kw_case) && !at(Tok::kw_default) && !at(Tok::rbrace)) {
          entry.body.push_back(statement());
        }
        stmt->cases.push_back(std::move(entry));
      }
      scopes_.pop_back();
      return stmt;
    }
    case Tok::kw_break:
      advance();
      expect(Tok::semi, "';'");
      stmt->kind = Stmt::Kind::break_;
      return stmt;
    case Tok::kw_continue:
      advance();
      expect(Tok::semi, "';'");
      stmt->kind = Stmt::Kind::continue_;
      return stmt;
    case Tok::kw_goto:
      advance();
      stmt->kind = Stmt::Kind::goto_;
      stmt->label_name = expect(Tok::identifier, "label").text;
      expect(Tok::semi, "';'");
      return stmt;
    case Tok::kw_return:
      advance();
      stmt->kind = Stmt::Kind::return_;
      if (!at(Tok::semi)) stmt->expr = expression();
      expect(Tok::semi, "';'");
      return stmt;
    default: {
      stmt->kind = Stmt::Kind::expr;
      stmt->expr = expression();
      expect(Tok::semi, "';'");
      return stmt;
    }
    }
  }

  StmtPtr declaration() {
    const DeclSpec spec = decl_specifiers();
    const Type* base = pointer_suffix(spec.base);
    auto block = std::make_unique<Stmt>();
    block->kind = Stmt::Kind::block;
    block->line = line();
    for (;;) {
      Declarator d = declarator(base);
      auto symbol = std::make_unique<Symbol>();
      symbol->kind = Symbol::Kind::local;
      symbol->name = d.name;
      symbol->type = d.type;
      symbol->line = d.line;
      symbol->is_const = spec.is_const;
      declare(symbol.get());

      auto decl = std::make_unique<Stmt>();
      decl->kind = Stmt::Kind::decl;
      decl->line = d.line;
      decl->decl_symbol = symbol.get();
      if (accept(Tok::assign)) decl->expr = assignment();
      WCET_CHECK(current_fn_ != nullptr, "declaration outside function");
      current_fn_->locals.push_back(std::move(symbol));
      block->stmts.push_back(std::move(decl));
      if (!accept(Tok::comma)) break;
    }
    expect(Tok::semi, "';'");
    if (block->stmts.size() == 1) return std::move(block->stmts.front());
    return block;
  }

  // ---------------------------------------------------------- expressions
  ExprPtr expression() { return assignment(); }

  ExprPtr assignment() {
    ExprPtr left = conditional();
    switch (peek().kind) {
    case Tok::assign:
    case Tok::plus_assign:
    case Tok::minus_assign:
    case Tok::star_assign:
    case Tok::slash_assign:
    case Tok::percent_assign:
    case Tok::amp_assign:
    case Tok::pipe_assign:
    case Tok::caret_assign:
    case Tok::shl_assign:
    case Tok::shr_assign: {
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::assign;
      node->line = line();
      node->op = advance().kind;
      node->lhs = std::move(left);
      node->rhs = assignment();
      return node;
    }
    default:
      return left;
    }
  }

  ExprPtr conditional() {
    ExprPtr cond = binary(0);
    if (!accept(Tok::question)) return cond;
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::conditional;
    node->line = line();
    node->lhs = std::move(cond);
    node->rhs = expression();
    expect(Tok::colon, "':'");
    node->third = conditional();
    return node;
  }

  static int precedence_of(Tok op) {
    switch (op) {
    case Tok::pipe_pipe: return 1;
    case Tok::amp_amp: return 2;
    case Tok::pipe: return 3;
    case Tok::caret: return 4;
    case Tok::amp: return 5;
    case Tok::eq_eq:
    case Tok::bang_eq: return 6;
    case Tok::lt:
    case Tok::gt:
    case Tok::le:
    case Tok::ge: return 7;
    case Tok::shl:
    case Tok::shr: return 8;
    case Tok::plus:
    case Tok::minus: return 9;
    case Tok::star:
    case Tok::slash:
    case Tok::percent: return 10;
    default: return 0;
    }
  }

  ExprPtr binary(int min_prec) {
    ExprPtr left = unary();
    for (;;) {
      const Tok op = peek().kind;
      const int prec = precedence_of(op);
      if (prec == 0 || prec < min_prec) return left;
      const int op_line = line();
      advance();
      ExprPtr right = binary(prec + 1);
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::binary;
      node->line = op_line;
      node->op = op;
      node->lhs = std::move(left);
      node->rhs = std::move(right);
      left = std::move(node);
    }
  }

  bool at_cast() const {
    if (!at(Tok::lparen)) return false;
    switch (peek(1).kind) {
    case Tok::kw_int:
    case Tok::kw_unsigned:
    case Tok::kw_char:
    case Tok::kw_float:
    case Tok::kw_void:
    case Tok::kw_const:
      return true;
    default:
      return false;
    }
  }

  ExprPtr unary() {
    const int start_line = line();
    switch (peek().kind) {
    case Tok::minus:
    case Tok::tilde:
    case Tok::bang:
    case Tok::star:
    case Tok::amp: {
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::unary;
      node->line = start_line;
      node->op = advance().kind;
      node->lhs = unary();
      return node;
    }
    case Tok::plus:
      advance();
      return unary();
    case Tok::plus_plus:
    case Tok::minus_minus: {
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::unary;
      node->line = start_line;
      node->op = advance().kind;
      node->lhs = unary();
      return node;
    }
    case Tok::kw_sizeof: {
      advance();
      expect(Tok::lparen, "'('");
      const DeclSpec spec = decl_specifiers();
      const Type* type = pointer_suffix(spec.base);
      expect(Tok::rparen, "')'");
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::int_lit;
      node->line = start_line;
      node->int_value = type->size_bytes();
      return node;
    }
    default:
      break;
    }
    if (at_cast()) {
      advance(); // '('
      const DeclSpec spec = decl_specifiers();
      const Type* type = pointer_suffix(spec.base);
      expect(Tok::rparen, "')'");
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::cast;
      node->line = start_line;
      node->cast_type = type;
      node->lhs = unary();
      return node;
    }
    return postfix();
  }

  ExprPtr postfix() {
    ExprPtr node = primary();
    for (;;) {
      if (accept(Tok::lbracket)) {
        auto index = std::make_unique<Expr>();
        index->kind = Expr::Kind::index;
        index->line = line();
        index->lhs = std::move(node);
        index->rhs = expression();
        expect(Tok::rbracket, "']'");
        node = std::move(index);
        continue;
      }
      if (accept(Tok::lparen)) {
        auto call = std::make_unique<Expr>();
        call->kind = Expr::Kind::call;
        call->line = line();
        call->lhs = std::move(node);
        if (!at(Tok::rparen)) {
          for (;;) {
            call->args.push_back(assignment());
            if (!accept(Tok::comma)) break;
          }
        }
        expect(Tok::rparen, "')'");
        node = std::move(call);
        continue;
      }
      if (at(Tok::plus_plus) || at(Tok::minus_minus)) {
        auto post = std::make_unique<Expr>();
        post->kind = Expr::Kind::post_incdec;
        post->line = line();
        post->op = advance().kind;
        post->lhs = std::move(node);
        node = std::move(post);
        continue;
      }
      return node;
    }
  }

  ExprPtr primary() {
    auto node = std::make_unique<Expr>();
    node->line = line();
    switch (peek().kind) {
    case Tok::int_literal: {
      const Token& token = advance();
      node->kind = Expr::Kind::int_lit;
      node->int_value = token.int_value;
      node->is_unsigned_literal = token.is_unsigned;
      return node;
    }
    case Tok::float_literal:
      node->kind = Expr::Kind::float_lit;
      node->float_value = advance().float_value;
      return node;
    case Tok::string_literal:
      node->kind = Expr::Kind::string_lit;
      node->text = advance().text;
      return node;
    case Tok::identifier: {
      const Token& token = advance();
      Symbol* symbol = lookup(token.text);
      if (symbol == nullptr) fail(token.line, "use of undeclared '" + token.text + "'");
      node->kind = Expr::Kind::name;
      node->text = token.text;
      node->symbol = symbol;
      return node;
    }
    case Tok::lparen: {
      advance();
      ExprPtr inner = expression();
      expect(Tok::rparen, "')'");
      return inner;
    }
    default:
      fail(line(), "expected expression");
    }
  }

  // Minimal constant folding for contexts that require compile-time
  // integers (array lengths, case labels, global initializers).
  std::int64_t fold_int(const Expr& e) const {
    switch (e.kind) {
    case Expr::Kind::int_lit:
      return e.int_value;
    case Expr::Kind::unary:
      if (e.op == Tok::minus) return -fold_int(*e.lhs);
      if (e.op == Tok::tilde) return ~fold_int(*e.lhs) & 0xFFFFFFFFll;
      if (e.op == Tok::bang) return fold_int(*e.lhs) == 0 ? 1 : 0;
      break;
    case Expr::Kind::binary: {
      const std::int64_t a = fold_int(*e.lhs);
      const std::int64_t b = fold_int(*e.rhs);
      switch (e.op) {
      case Tok::plus: return a + b;
      case Tok::minus: return a - b;
      case Tok::star: return a * b;
      case Tok::slash: return b != 0 ? a / b : 0;
      case Tok::percent: return b != 0 ? a % b : 0;
      case Tok::shl: return (a << (b & 31)) & 0xFFFFFFFFll;
      case Tok::shr: return (a & 0xFFFFFFFFll) >> (b & 31);
      case Tok::amp: return a & b;
      case Tok::pipe: return a | b;
      case Tok::caret: return a ^ b;
      default: break;
      }
      break;
    }
    case Expr::Kind::cast:
      return fold_int(*e.lhs);
    default:
      break;
    }
    fail(e.line, "expected a compile-time integer constant");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::unique_ptr<TranslationUnit> unit_;
  std::vector<std::map<std::string, Symbol*>> scopes_;
  Function* current_fn_ = nullptr;
};

} // namespace

std::unique_ptr<TranslationUnit> parse(std::string_view source) {
  return Parser(source).run();
}

} // namespace wcet::mcc
