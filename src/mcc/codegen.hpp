// Code generator: mcc AST -> tiny32 assembly text.
//
// Conventions (documented here because the analyses depend on them):
//  - Calling convention: first four arguments in a0..a3, rest on the
//    stack at the callee's fp+0, fp+4, ...; variadic functions take ALL
//    arguments on the stack (so __va_start() is just fp + 4*nparams).
//    Result in a0. a0-a3/t0-t2 caller-saved, s0-s4/fp callee-saved.
//  - Frame: fp = caller's sp; ra at fp-4, saved fp at fp-8, then saved
//    s-registers, then memory-homed locals. Expression temporaries are
//    pushed/popped below sp and always balance within a statement.
//  - Scalar locals and parameters that are never address-taken are
//    promoted to s0..s4 in declaration order; loop counters therefore
//    become the `addi sN, sN, c` pattern that automatic loop-bound
//    detection recognizes (and rule 13.6 violations destroy).
//  - Dense switches (>= 4 cases, span <= 3x count) compile to a
//    bounds-checked jump table in .rodata with a .global'd size — the
//    exact idiom the decoder's jump-table matcher resolves.
//  - Float operations lower to the __f32_* soft-float runtime calls
//    (tiny32 has no FPU), which is why rule 13.4 violations genuinely
//    defeat loop-bound analysis on this target.
#pragma once

#include <string>

#include "mcc/ast.hpp"

namespace wcet::mcc {

struct CodegenOptions {
  CodegenOptions() {}
  // Base addresses of the emitted sections.
  std::uint32_t text_base = 0x1000;
  std::uint32_t rodata_base = 0x8000;
  std::uint32_t data_base = 0x20000;
};

// Generate assembly for the unit (no _start, no runtime — see
// mcc/runtime.hpp for the full-program driver).
std::string generate(const TranslationUnit& unit, const CodegenOptions& options = {});

} // namespace wcet::mcc
