// Parser for the mcc C subset: builds the AST with names resolved
// against lexical scopes (declaration before use, as in C). Semantic
// analysis (mcc/sema.hpp) then assigns types and folds constants.
#pragma once

#include <memory>
#include <string_view>

#include "mcc/ast.hpp"

namespace wcet::mcc {

// Parse a translation unit. Throws InputError on malformed input.
std::unique_ptr<TranslationUnit> parse(std::string_view source);

} // namespace wcet::mcc
