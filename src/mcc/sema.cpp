#include "mcc/sema.hpp"

#include <algorithm>

#include "support/diag.hpp"

namespace wcet::mcc {

// ------------------------------------------------------------- Type impl

int Type::size_bytes() const {
  switch (kind) {
  case Kind::void_: return 1; // void* arithmetic scales by 1
  case Kind::char_: return 1;
  case Kind::int_:
  case Kind::uint_:
  case Kind::float_:
  case Kind::ptr:
  case Kind::func:
    return 4;
  case Kind::array:
    return array_len * pointee->size_bytes();
  }
  return 4;
}

TypeTable::TypeTable() {
  const auto make = [this](Type::Kind kind) {
    Type t;
    t.kind = kind;
    arena_.push_back(std::move(t));
    return &arena_.back();
  };
  void_ = make(Type::Kind::void_);
  int_ = make(Type::Kind::int_);
  uint_ = make(Type::Kind::uint_);
  char_ = make(Type::Kind::char_);
  float_ = make(Type::Kind::float_);
}

const Type* TypeTable::pointer_to(const Type* pointee) {
  for (const Type& t : arena_) {
    if (t.kind == Type::Kind::ptr && t.pointee == pointee) return &t;
  }
  Type t;
  t.kind = Type::Kind::ptr;
  t.pointee = pointee;
  arena_.push_back(std::move(t));
  return &arena_.back();
}

const Type* TypeTable::array_of(const Type* element, int length) {
  for (const Type& t : arena_) {
    if (t.kind == Type::Kind::array && t.pointee == element && t.array_len == length) {
      return &t;
    }
  }
  Type t;
  t.kind = Type::Kind::array;
  t.pointee = element;
  t.array_len = length;
  arena_.push_back(std::move(t));
  return &arena_.back();
}

const Type* TypeTable::function(FuncSig sig) {
  Type t;
  t.kind = Type::Kind::func;
  t.sig = std::make_unique<FuncSig>(std::move(sig));
  arena_.push_back(std::move(t));
  return &arena_.back();
}

Function* TranslationUnit::find_function(const std::string& name) const {
  for (const auto& fn : functions) {
    if (fn->name == name) return fn.get();
  }
  return nullptr;
}

Symbol* TranslationUnit::find_global(const std::string& name) const {
  for (const auto& g : globals) {
    if (g->name == name) return g.get();
  }
  return nullptr;
}

// ------------------------------------------------------------------ sema

namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw InputError("mcc line " + std::to_string(line) + ": " + message);
}

class Sema {
public:
  explicit Sema(TranslationUnit& unit) : unit_(unit), types_(unit.types) {}

  void run() {
    for (auto& fn : unit_.functions) {
      if (!fn->defined) continue;
      current_ = fn.get();
      for (auto& stmt : fn->body) visit(*stmt);
    }
  }

private:
  // Usual arithmetic conversions.
  const Type* common_arith(const Type* a, const Type* b, int line) const {
    if (!a->is_arith() || !b->is_arith()) fail(line, "arithmetic operands required");
    if (a->is_float() || b->is_float()) return types_.float_type();
    if (a->kind == Type::Kind::uint_ || b->kind == Type::Kind::uint_) {
      return types_.uint_type();
    }
    return types_.int_type();
  }

  static const Type* decay(const Type* t, TypeTable& types) {
    if (t->kind == Type::Kind::array) return types.pointer_to(t->pointee);
    return t;
  }

  bool is_lvalue(const Expr& e) const {
    switch (e.kind) {
    case Expr::Kind::name:
      return e.symbol != nullptr && e.symbol->kind != Symbol::Kind::function;
    case Expr::Kind::index:
      return true;
    case Expr::Kind::unary:
      return e.op == Tok::star;
    default:
      return false;
    }
  }

  void visit_expr(Expr& e) {
    switch (e.kind) {
    case Expr::Kind::int_lit:
      // 'u'-suffixed literals and values that do not fit a signed int
      // are unsigned (C's hex-literal rule).
      e.type = (e.is_unsigned_literal || e.int_value > 0x7FFFFFFFll)
                   ? types_.uint_type()
                   : types_.int_type();
      return;
    case Expr::Kind::float_lit:
      e.type = types_.float_type();
      return;
    case Expr::Kind::string_lit:
      e.type = types_.pointer_to(types_.char_type());
      return;
    case Expr::Kind::name:
      e.type = decay(e.symbol->type, types_);
      if (e.symbol->kind == Symbol::Kind::function) {
        e.type = types_.pointer_to(e.symbol->type);
      }
      return;
    case Expr::Kind::unary: {
      visit_expr(*e.lhs);
      const Type* t = e.lhs->type;
      switch (e.op) {
      case Tok::minus:
        if (!t->is_arith()) fail(e.line, "operand of unary - must be arithmetic");
        e.type = t->is_float() ? t : common_arith(t, types_.int_type(), e.line);
        return;
      case Tok::tilde:
        if (!t->is_integer()) fail(e.line, "operand of ~ must be integer");
        e.type = common_arith(t, types_.int_type(), e.line);
        return;
      case Tok::bang:
        e.type = types_.int_type();
        return;
      case Tok::star:
        if (!t->is_pointer_like()) fail(e.line, "cannot dereference non-pointer");
        e.type = decay(t->pointee, types_);
        return;
      case Tok::amp: {
        if (e.lhs->kind == Expr::Kind::name) {
          e.lhs->symbol->address_taken = true;
          if (e.lhs->symbol->kind == Symbol::Kind::function) {
            e.type = types_.pointer_to(e.lhs->symbol->type);
            return;
          }
          e.type = types_.pointer_to(e.lhs->symbol->type->kind == Type::Kind::array
                                         ? e.lhs->symbol->type->pointee
                                         : e.lhs->symbol->type);
          return;
        }
        if (!is_lvalue(*e.lhs)) fail(e.line, "cannot take address of rvalue");
        e.type = types_.pointer_to(e.lhs->type);
        return;
      }
      case Tok::plus_plus:
      case Tok::minus_minus:
        if (!is_lvalue(*e.lhs)) fail(e.line, "++/-- needs an lvalue");
        e.type = e.lhs->type;
        return;
      default:
        fail(e.line, "bad unary operator");
      }
    }
    case Expr::Kind::post_incdec:
      visit_expr(*e.lhs);
      if (!is_lvalue(*e.lhs)) fail(e.line, "++/-- needs an lvalue");
      e.type = e.lhs->type;
      return;
    case Expr::Kind::binary: {
      visit_expr(*e.lhs);
      visit_expr(*e.rhs);
      const Type* a = e.lhs->type;
      const Type* b = e.rhs->type;
      switch (e.op) {
      case Tok::plus:
      case Tok::minus:
        if (a->kind == Type::Kind::ptr && b->is_integer()) {
          e.type = a;
          return;
        }
        if (e.op == Tok::plus && a->is_integer() && b->kind == Type::Kind::ptr) {
          e.type = b;
          return;
        }
        if (e.op == Tok::minus && a->kind == Type::Kind::ptr &&
            b->kind == Type::Kind::ptr) {
          e.type = types_.int_type();
          return;
        }
        e.type = common_arith(a, b, e.line);
        return;
      case Tok::star:
      case Tok::slash:
        e.type = common_arith(a, b, e.line);
        return;
      case Tok::percent:
      case Tok::amp:
      case Tok::pipe:
      case Tok::caret:
      case Tok::shl:
      case Tok::shr:
        if (!a->is_integer() || !b->is_integer()) {
          fail(e.line, "integer operands required");
        }
        e.type = e.op == Tok::shl || e.op == Tok::shr
                     ? common_arith(a, types_.int_type(), e.line)
                     : common_arith(a, b, e.line);
        return;
      case Tok::lt:
      case Tok::gt:
      case Tok::le:
      case Tok::ge:
      case Tok::eq_eq:
      case Tok::bang_eq:
      case Tok::amp_amp:
      case Tok::pipe_pipe:
        e.type = types_.int_type();
        return;
      default:
        fail(e.line, "bad binary operator");
      }
    }
    case Expr::Kind::assign: {
      visit_expr(*e.lhs);
      visit_expr(*e.rhs);
      if (!is_lvalue(*e.lhs)) fail(e.line, "assignment needs an lvalue");
      e.type = e.lhs->type;
      return;
    }
    case Expr::Kind::conditional: {
      visit_expr(*e.lhs);
      visit_expr(*e.rhs);
      visit_expr(*e.third);
      const Type* a = e.rhs->type;
      const Type* b = e.third->type;
      if (a->is_arith() && b->is_arith()) {
        e.type = common_arith(a, b, e.line);
      } else {
        e.type = a; // pointers: take the then-type
      }
      return;
    }
    case Expr::Kind::call: {
      visit_expr(*e.lhs);
      for (auto& arg : e.args) visit_expr(*arg);
      const Type* callee = e.lhs->type;
      if (callee->kind == Type::Kind::ptr && callee->pointee->kind == Type::Kind::func) {
        callee = callee->pointee;
      }
      if (callee->kind != Type::Kind::func) fail(e.line, "call of non-function");
      const FuncSig& sig = *callee->sig;
      if (e.args.size() < sig.params.size() ||
          (!sig.varargs && e.args.size() != sig.params.size())) {
        fail(e.line, "wrong number of arguments");
      }
      e.type = sig.ret;
      return;
    }
    case Expr::Kind::index: {
      visit_expr(*e.lhs);
      visit_expr(*e.rhs);
      if (!e.lhs->type->is_pointer_like()) fail(e.line, "indexing a non-pointer");
      if (!e.rhs->type->is_integer()) fail(e.line, "array index must be integer");
      e.type = decay(e.lhs->type->pointee, types_);
      return;
    }
    case Expr::Kind::cast:
      visit_expr(*e.lhs);
      e.type = e.cast_type;
      return;
    case Expr::Kind::sizeof_:
      e.type = types_.int_type();
      return;
    }
  }

  void visit(Stmt& s) {
    switch (s.kind) {
    case Stmt::Kind::expr:
      visit_expr(*s.expr);
      return;
    case Stmt::Kind::decl:
      if (s.expr) {
        visit_expr(*s.expr);
        if (s.decl_symbol->type->kind == Type::Kind::array) {
          fail(s.line, "local array initializers are not supported");
        }
      }
      return;
    case Stmt::Kind::block:
      for (auto& child : s.stmts) visit(*child);
      return;
    case Stmt::Kind::if_:
      visit_expr(*s.expr);
      visit(*s.then_body);
      if (s.else_body) visit(*s.else_body);
      return;
    case Stmt::Kind::while_:
    case Stmt::Kind::do_:
      visit_expr(*s.expr);
      visit(*s.body);
      return;
    case Stmt::Kind::for_:
      if (s.then_body) visit(*s.then_body);
      if (s.expr) visit_expr(*s.expr);
      if (s.step_expr) visit_expr(*s.step_expr);
      visit(*s.body);
      return;
    case Stmt::Kind::switch_:
      visit_expr(*s.expr);
      if (!s.expr->type->is_integer()) fail(s.line, "switch requires an integer");
      for (auto& entry : s.cases) {
        for (auto& child : entry.body) visit(*child);
      }
      return;
    case Stmt::Kind::return_:
      if (s.expr) visit_expr(*s.expr);
      return;
    case Stmt::Kind::break_:
    case Stmt::Kind::continue_:
    case Stmt::Kind::goto_:
    case Stmt::Kind::label:
    case Stmt::Kind::empty:
      return;
    }
  }

  TranslationUnit& unit_;
  TypeTable& types_;
  Function* current_ = nullptr;
};

} // namespace

void analyze(TranslationUnit& unit) { Sema(unit).run(); }

} // namespace wcet::mcc
