// Shared fixpoint engine for the iterative analysis phases.
//
// ## Engine contract
//
// The engine schedules *nodes* of a directed graph for re-evaluation
// until a fixpoint is reached. It is agnostic of the abstract domain;
// the client supplies a `process(node)` callback which must
//
//   1. apply the phase's *transfer function* to the node's current
//      input state,
//   2. *join* the result into each successor's input state, and
//   3. `push()` exactly those successors whose input state changed.
//
// Soundness/termination requirements on the client (the classic
// abstract-interpretation conditions):
//
//   - the transfer function must be monotone w.r.t. the domain order,
//   - `join` must compute an upper bound and report "changed" exactly
//     when the stored state grew,
//   - ascending chains must be finite (finite domain or widening).
//
// Under these conditions the set of reachable fixpoints is independent
// of the scheduling order, so the engine is free to pick a fast order:
// a *bucketed priority worklist* that always re-evaluates the pending
// node with the smallest priority. Feeding reverse-postorder indices as
// priorities (see cfg::rpo_priorities) yields weak-topological
// iteration: within a round, predecessors are evaluated before
// successors, and loop bodies stabilise innermost-first — the
// Bourdoncle-style ordering used by industrial AI-based WCET tools.
// Phases that use visit-counted widening delays may still observe a
// different (sound) fixpoint under a different order; callers that need
// reproducibility simply keep the priorities fixed, which makes the
// iteration fully deterministic.
//
// The worklist is O(1) push, amortized O(1) pop, and never holds a node
// twice. Re-queueing decisions must come from `join`'s exact change
// reporting — never from fingerprint comparison: a 64-bit hash match
// cannot prove state equality, and a collision-dropped join would
// silently understate the fixpoint (an unsound WCET bound). The
// companion `StateHash` exists for cheap state fingerprinting where
// exactness is not load-bearing: cross-run determinism checks and
// debugging/telemetry summaries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/budget.hpp"

namespace wcet {

// Bucketed priority worklist over dense node ids [0, n). Priorities are
// fixed at construction; lower priority pops first. Duplicate pushes of
// a queued node are no-ops.
class PriorityWorklist {
public:
  // `priority[node]` in [0, n]; several nodes may share a priority
  // (e.g. unreachable nodes bucketed last).
  explicit PriorityWorklist(std::vector<int> priority)
      : priority_(std::move(priority)), queued_(priority_.size(), false) {
    int max_p = 0;
    for (const int p : priority_) max_p = p > max_p ? p : max_p;
    buckets_.resize(static_cast<std::size_t>(max_p) + 1);
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push(int node) {
    const auto u = static_cast<std::size_t>(node);
    if (queued_[u]) return;
    queued_[u] = true;
    const auto p = static_cast<std::size_t>(priority_[u]);
    buckets_[p].push_back(node);
    if (p < cursor_) cursor_ = p;
    ++size_;
  }

  // Pops the queued node with the smallest priority, -1 when empty.
  int pop() {
    if (size_ == 0) return -1;
    while (buckets_[cursor_].empty()) ++cursor_;
    const int node = buckets_[cursor_].back();
    buckets_[cursor_].pop_back();
    queued_[static_cast<std::size_t>(node)] = false;
    --size_;
    return node;
  }

private:
  std::vector<int> priority_;
  std::vector<std::vector<int>> buckets_;
  std::vector<bool> queued_;
  std::size_t cursor_ = 0;
  std::size_t size_ = 0;
};

// Drives `process` until the worklist drains. `process(node)` performs
// transfer + join and pushes changed successors (see contract above).
template <typename ProcessFn>
void run_fixpoint(PriorityWorklist& worklist, ProcessFn&& process) {
  for (int node = worklist.pop(); node >= 0; node = worklist.pop()) {
    process(node);
  }
}

// Governor-aware variant: checks for cooperative cancellation at every
// worklist pop (the finest abort granularity of the fixpoint phases).
// Cancellation throws CancelledError; step budgets are NOT consumed
// here — they are accounted at deterministic round barriers by the
// instance-round engine (see support/instance_rounds.hpp and the
// determinism notes in support/budget.hpp).
template <typename ProcessFn>
void run_fixpoint(PriorityWorklist& worklist, const AnalysisGovernor* governor,
                  ProcessFn&& process) {
  if (governor == nullptr) {
    run_fixpoint(worklist, static_cast<ProcessFn&&>(process));
    return;
  }
  for (int node = worklist.pop(); node >= 0; node = worklist.pop()) {
    governor->check_cancel();
    process(node);
  }
}

// FNV-1a 64-bit accumulator for cheap state fingerprints. Not
// cryptographic, and never a substitute for exact state comparison in
// soundness-critical paths (see the header comment).
class StateHash {
public:
  void mix(std::uint64_t v) {
    h_ ^= v;
    h_ *= 0x100000001b3ull;
  }
  void mix_pair(std::uint64_t a, std::uint64_t b) {
    mix(a);
    mix(b);
  }
  std::uint64_t value() const { return h_; }

private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

} // namespace wcet
