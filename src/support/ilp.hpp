// Exact linear programming (two-phase primal simplex on rationals) with
// branch & bound for integrality. This is the solver behind IPET path
// analysis: maximize the execution-count-weighted sum of basic-block
// times subject to flow conservation and loop/flow-fact constraints.
//
// The solver is exact (all arithmetic on 128-bit rationals) but tuned
// for the large sparse systems IPET produces:
//   - tableau rows are stored sparsely (sorted column/value entries);
//     a pivot merges each touched row with the pivot row in one sorted
//     sweep, so memory and work scale with the nonzero count instead of
//     rows * columns,
//   - pivots touch only the nonzero columns of the pivot row,
//   - column selection uses Dantzig's rule with an automatic fallback
//     to Bland's rule after a degenerate-pivot streak (cycle-free),
//   - branch & bound explores nodes in best-bound order and re-solves
//     children by appending their branch rows to the root-optimal
//     tableau and running the dual simplex (warm start) instead of
//     two-phase-from-scratch.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "support/budget.hpp"
#include "support/rational.hpp"

namespace wcet {

enum class Cmp { le, ge, eq };

struct LinTerm {
  int var = 0;
  Rational coeff;
};

// Per-solve resource caps (see support/budget.hpp). Each LP/ILP solve
// gets the full pivot/node envelope — a decomposed IPET's sub-ILPs
// degrade independently instead of starving one another.
struct SolveLimits {
  int node_limit = 20000;           // branch & bound nodes per solve
  std::uint64_t pivot_limit = 0;    // simplex pivots per solve; 0 = unlimited
  const AnalysisGovernor* governor = nullptr; // cancellation checkpoints
};

struct LpSolution {
  // `degraded`: branch & bound was truncated by a node or pivot limit,
  // and `objective` is the best *proven* bound on the true optimum —
  // max(incumbent, every truncated subtree's relaxation bound) in the
  // maximize sense, so the true optimum is <= objective. No integral
  // witness exists; `values` is empty. `pivot_limit`: the root
  // relaxation itself ran out of pivots — no bound of any kind.
  // `node_limit` is kept for the theoretical corner where a limit fired
  // before any bound existed.
  enum class Status { optimal, infeasible, unbounded, node_limit, degraded, pivot_limit };
  Status status = Status::infeasible;
  Rational objective;
  std::vector<Rational> values; // per structural variable

  // Telemetry: resources actually consumed by this solve.
  std::uint64_t pivots_used = 0;
  // Split of `pivots_used` by simplex phase: `phase1_pivots` counts the
  // feasibility pivots (phase-1 runs of the root solve and of every
  // cold branch-and-bound fallback), `phase2_pivots` the rest (phase-2
  // optimization plus all warm-start dual pivots). A solve that starts
  // from a crash basis (see IlpProblem::set_basis_hint) reports
  // phase1_pivots == 0 on a pure-flow system.
  std::uint64_t phase1_pivots = 0;
  std::uint64_t phase2_pivots = 0;
  // Number of rows whose basic column came from the caller's crash
  // basis instead of an artificial variable (0: no hint was usable).
  std::uint64_t crash_basis_rows = 0;
  int nodes_used = 0;

  // Tableau shape at the final basis: rows store only nonzero entries,
  // so nnz << rows * cols on the sparse systems IPET emits. Exported so
  // tests can pin the memory shape (a dense regression would silently
  // multiply solver memory by the column count).
  std::size_t tableau_rows = 0;
  std::size_t tableau_cols = 0;
  std::size_t tableau_nnz = 0;

  bool ok() const { return status == Status::optimal; }
};

class IlpProblem {
public:
  struct Row {
    std::vector<LinTerm> terms;
    Cmp cmp = Cmp::le;
    Rational rhs;
  };

  // All variables are constrained to be >= 0.
  int add_variable(std::string name);
  int num_variables() const { return static_cast<int>(names_.size()); }
  const std::string& variable_name(int var) const { return names_[static_cast<std::size_t>(var)]; }

  void set_objective(int var, Rational coeff); // maximize sum coeff*var
  void add_constraint(std::vector<LinTerm> terms, Cmp cmp, Rational rhs);
  int num_constraints() const { return static_cast<int>(rows_.size()); }

  // Network-flow crash basis. `hint` is an ordered list of
  // (constraint row, structural variable) pairs naming a starting basis
  // for the equality rows — for IPET regions, the arcs of a spanning
  // tree of the flow network plus a unit source-to-sink path. Hinted
  // rows start basic on their structural column instead of an
  // artificial variable, so a system whose every artificial-needing row
  // is hinted enters phase 2 directly (phase1_pivots == 0).
  //
  // Caller contract (checked, violations are fatal):
  //   - every hinted row is an equality with a nonzero coefficient on
  //     its hinted column (after eliminating earlier hints in order),
  //   - each row and each column is hinted at most once,
  //   - the implied basic solution is feasible: after reducing the
  //     tableau to the hinted basis every right-hand side is >= 0.
  // The hint is consulted by solve_lp / solve_ilp / solve_ilp_pair for
  // the root (no extra branch rows); branch-and-bound re-solves carry
  // branch rows the crash solution may violate and run the ordinary
  // two-phase method.
  void set_basis_hint(std::vector<std::pair<int, int>> hint);

  // Solve the LP relaxation.
  LpSolution solve_lp() const;
  // Solve with integrality on all variables (branch & bound on the LP).
  LpSolution solve_ilp(int node_limit = 20000) const;
  // As above, with a full resource envelope (pivot budget, cancellation
  // checkpoints). Exceeding the pivot/node caps yields a `degraded`
  // frontier bound (see LpSolution::Status), never a silent incumbent.
  LpSolution solve_ilp(const SolveLimits& limits) const;
  // Solve the same constraint system twice — under the stored objective
  // and under `alt_objective` — sharing construction and the phase-1
  // feasibility pivots (phase 1 never reads the objective, so the
  // feasible starting basis is identical for both senses). Each sense
  // then runs its own phase 2 and branch & bound. Optima equal a
  // from-scratch solve's exactly; only the optimal vertex reached may
  // differ. This is how IPET solves the WCET/BCET pair of one region
  // for roughly half the cost of two independent solves.
  std::pair<LpSolution, LpSolution> solve_ilp_pair(const std::vector<Rational>& alt_objective,
                                                   int node_limit = 20000) const;
  std::pair<LpSolution, LpSolution> solve_ilp_pair(const std::vector<Rational>& alt_objective,
                                                   const SolveLimits& limits) const;

  std::string to_string() const; // LP-format dump for debugging/reports

private:
  LpSolution solve_lp_with(const std::vector<Row>& extra,
                           const std::vector<Rational>& objective,
                           const SolveLimits* limits = nullptr,
                           std::uint64_t* pivots = nullptr,
                           std::uint64_t* phase1_pivots = nullptr) const;

  std::vector<std::string> names_;
  std::vector<Rational> objective_;
  std::vector<Row> rows_;
  std::vector<std::pair<int, int>> basis_hint_;
};

} // namespace wcet
