// Exact linear programming (two-phase primal simplex on rationals) with
// branch & bound for integrality. This is the solver behind IPET path
// analysis: maximize the execution-count-weighted sum of basic-block
// times subject to flow conservation and loop/flow-fact constraints.
//
// The solver is exact (all arithmetic on 128-bit rationals) but tuned
// for the large sparse systems IPET produces:
//   - pivots touch only the nonzero columns of the pivot row,
//   - column selection uses Dantzig's rule with an automatic fallback
//     to Bland's rule after a degenerate-pivot streak (cycle-free),
//   - branch & bound explores nodes in best-bound order and re-solves
//     children by appending their branch rows to the root-optimal
//     tableau and running the dual simplex (warm start) instead of
//     two-phase-from-scratch.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "support/rational.hpp"

namespace wcet {

enum class Cmp { le, ge, eq };

struct LinTerm {
  int var = 0;
  Rational coeff;
};

struct LpSolution {
  enum class Status { optimal, infeasible, unbounded, node_limit };
  Status status = Status::infeasible;
  Rational objective;
  std::vector<Rational> values; // per structural variable

  bool ok() const { return status == Status::optimal; }
};

class IlpProblem {
public:
  struct Row {
    std::vector<LinTerm> terms;
    Cmp cmp = Cmp::le;
    Rational rhs;
  };

  // All variables are constrained to be >= 0.
  int add_variable(std::string name);
  int num_variables() const { return static_cast<int>(names_.size()); }
  const std::string& variable_name(int var) const { return names_[static_cast<std::size_t>(var)]; }

  void set_objective(int var, Rational coeff); // maximize sum coeff*var
  void add_constraint(std::vector<LinTerm> terms, Cmp cmp, Rational rhs);
  int num_constraints() const { return static_cast<int>(rows_.size()); }

  // Solve the LP relaxation.
  LpSolution solve_lp() const;
  // Solve with integrality on all variables (branch & bound on the LP).
  LpSolution solve_ilp(int node_limit = 20000) const;

  std::string to_string() const; // LP-format dump for debugging/reports

private:
  LpSolution solve_lp_with(const std::vector<Row>& extra) const;

  std::vector<std::string> names_;
  std::vector<Rational> objective_;
  std::vector<Row> rows_;
};

} // namespace wcet
