// Interval abstract domain over 32-bit machine words.
//
// An Interval denotes a set of 32-bit bit patterns, represented as a
// contiguous range [lo, hi] of their *unsigned* values (0 .. 2^32-1),
// plus an explicit bottom element. Signed operations and comparisons are
// handled by splitting the interval at the signed wrap point 2^31,
// operating on the (at most two) signed sub-ranges, and re-joining.
//
// All transfer functions are sound over-approximations of the concrete
// modulo-2^32 semantics; precision is deliberately lost (to TOP) when a
// result range would straddle a wrap boundary — the standard trade-off
// in binary-level value analysis (cf. Section 3.1 of the paper).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace wcet {

// Comparison predicates as they appear in branch conditions.
enum class Pred {
  eq,
  ne,
  lt_s, // signed <
  ge_s, // signed >=
  lt_u, // unsigned <
  ge_u, // unsigned >=
};

Pred negate(Pred p);
Pred swap_operands(Pred p); // predicate q with (a p b) == (b q a)
const char* to_string(Pred p);

class Interval {
public:
  static constexpr std::int64_t word_min = 0;
  static constexpr std::int64_t word_max = 0xFFFFFFFFll;

  // Default-constructed interval is TOP (unknown word).
  constexpr Interval() : lo_(word_min), hi_(word_max) {}

  static Interval top() { return Interval(); }
  static Interval bottom() {
    Interval i;
    i.bottom_ = true;
    return i;
  }
  static Interval constant(std::uint32_t value) {
    return Interval(static_cast<std::int64_t>(value), static_cast<std::int64_t>(value));
  }
  // Range of unsigned values, clamped to the word range.
  static Interval from_unsigned(std::int64_t lo, std::int64_t hi);
  // Range of signed values in [-2^31, 2^31-1]; wrapped into unsigned space.
  static Interval from_signed(std::int64_t lo, std::int64_t hi);
  static Interval boolean() { return from_unsigned(0, 1); }

  bool is_bottom() const { return bottom_; }
  bool is_top() const { return !bottom_ && lo_ == word_min && hi_ == word_max; }
  bool is_constant() const { return !bottom_ && lo_ == hi_; }
  std::optional<std::uint32_t> as_constant() const;

  // Unsigned bounds (valid only when not bottom).
  std::int64_t umin() const { return lo_; }
  std::int64_t umax() const { return hi_; }
  // Signed bounds of the denoted set (valid only when not bottom).
  std::int64_t smin() const;
  std::int64_t smax() const;

  std::uint64_t size() const; // number of denoted values
  bool contains(std::uint32_t value) const;
  bool includes(const Interval& other) const; // superset-or-equal

  bool operator==(const Interval& other) const;
  bool operator!=(const Interval& other) const { return !(*this == other); }

  Interval join(const Interval& other) const;
  Interval meet(const Interval& other) const;
  // Widening with threshold set (word boundaries and small constants).
  Interval widen(const Interval& newer) const;

  // Arithmetic over 32-bit words (modulo semantics, over-approximated).
  Interval add(const Interval& rhs) const;
  Interval sub(const Interval& rhs) const;
  Interval mul(const Interval& rhs) const;
  Interval div_u(const Interval& rhs) const; // unsigned divide; x/0 -> 0 (tiny32 rule)
  Interval rem_u(const Interval& rhs) const; // unsigned remainder; x%0 -> x
  Interval div_s(const Interval& rhs) const;
  Interval rem_s(const Interval& rhs) const;
  Interval mulh_u(const Interval& rhs) const; // high 32 bits of unsigned product
  Interval shl(const Interval& amount) const;
  Interval shr_u(const Interval& amount) const;
  Interval shr_s(const Interval& amount) const;
  Interval bit_and(const Interval& rhs) const;
  Interval bit_or(const Interval& rhs) const;
  Interval bit_xor(const Interval& rhs) const;

  // Result of (this pred rhs) as a boolean interval: {0}, {1} or {0,1}.
  Interval compare(Pred p, const Interval& rhs) const;

  // Refine *this assuming (this pred rhs) holds. Sound: result is a
  // superset of the exact refinement, subset of *this.
  Interval refine(Pred p, const Interval& rhs) const;

  std::string to_string() const;

private:
  constexpr Interval(std::int64_t lo, std::int64_t hi) : lo_(lo), hi_(hi) {}

  // Split into at most two intervals whose signed readings are contiguous.
  // Each element is a pair (signed_lo, signed_hi).
  std::vector<std::pair<std::int64_t, std::int64_t>> signed_parts() const;
  static Interval from_signed_clamped(std::int64_t lo, std::int64_t hi);

  std::int64_t lo_ = word_min;
  std::int64_t hi_ = word_max;
  bool bottom_ = false;
};

std::ostream& operator<<(std::ostream& os, const Interval& iv);

} // namespace wcet
