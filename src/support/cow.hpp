// Refcounted copy-on-write containers for the analysis abstract states.
//
// The fixpoint engines propagate whole abstract states along edges:
// "out = in; transfer(out); join out into every successor". Before this
// layer, every one of those assignments deep-copied per-set
// `FlatMap` images (32 sets x must/may x i/d per cache visit) even when
// the transfer touched two of them. `CowPtr`/`CowVec` make the copy an
// O(1) refcount bump and defer the real work to the first mutation of
// each leaf — structural sharing, so join/propagation cost becomes
// proportional to *changed* state, the same sparsity bet as the flat
// states themselves (support/flat_map.hpp).
//
//   CowPtr<T>:  one shared immutable value. Copy = snapshot (refcount
//               bump); `mut()` = detach-on-mutate (clones exactly when
//               the value is shared); `same_as` = pointer identity.
//   CowVec<T>:  a vector of CowPtr leaves behind a CowPtr spine. Copy =
//               O(1) snapshot of the whole vector; `mutate(i)` detaches
//               the spine (refcount bumps only) and then leaf i; a null
//               leaf canonically represents a default-constructed T, so
//               e.g. a cold abstract cache allocates no images at all.
//
// ## Join gating by pointer identity
//
// `same_as` enables the key fast path: joining a leaf with *itself* is
// always the identity (join(x, x) = x in any semilattice), so a
// pointer-equal leaf can be skipped with no merge and no change report.
// This is sound precisely because sharing is only ever created by
// snapshot (copy) — two pointer-equal leaves are the same value by
// construction. The reverse is not true (equal values may live in
// different leaves), so pointer identity may only ever *skip* work,
// never substitute for value equality where inequality matters.
//
// ## Thread-safety contract
//
// Snapshots may be shared across ThreadPool workers under the
// instance-rounds model (support/instance_rounds.hpp): each state slot
// is owned by one instance, but slots of different instances may share
// leaves. Safety follows the classic COW protocol:
//
//   - shared blocks are immutable: `mut()` never writes a block whose
//     refcount exceeds one, it clones first;
//   - refcount increments are relaxed (a copy is always made from a
//     live reference), the decrement is acq_rel, and the uniqueness
//     probe in `mut()` is an *acquire* load — pairing with the release
//     half of another worker's final decrement, so the clone/in-place
//     decision happens-after every access that other worker made
//     through its reference. (A `shared_ptr::use_count()` relaxed load
//     would NOT give this edge; that is why the refcount is hand-rolled.)
//
// Under WCET_COW_CHECK (defined by the WCET_SANITIZE builds) the
// protocol is audited at runtime: every detach re-verifies uniqueness
// before handing out a mutable reference, so an in-place mutation
// racing a shared snapshot trips a hard failure instead of silent
// corruption.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "support/diag.hpp"

#if defined(WCET_COW_CHECK)
#define WCET_COW_ASSERT(cond, msg) WCET_CHECK(cond, msg)
#else
#define WCET_COW_ASSERT(cond, msg) \
  do {                             \
  } while (false)
#endif

namespace wcet {

// Allocation telemetry for tracked COW leaves (the abstract cache set
// images): total leaf clones/creations, currently live leaves, and the
// high-water mark. Counters are process-global and monotone within one
// measurement window; `reset_window` zeroes the alloc count and
// restarts the peak from the current live count. Telemetry only — never
// consulted by any analysis decision, so the relaxed ordering is fine.
struct CowLeafStats {
  std::atomic<std::uint64_t> allocs{0};
  std::atomic<std::int64_t> live{0};
  std::atomic<std::int64_t> peak{0};

  void note_alloc() {
    allocs.fetch_add(1, std::memory_order_relaxed);
    const std::int64_t now = live.fetch_add(1, std::memory_order_relaxed) + 1;
    std::int64_t seen = peak.load(std::memory_order_relaxed);
    while (now > seen &&
           !peak.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
    }
  }
  void note_free() { live.fetch_sub(1, std::memory_order_relaxed); }
  void reset_window() {
    allocs.store(0, std::memory_order_relaxed);
    peak.store(live.load(std::memory_order_relaxed), std::memory_order_relaxed);
  }
};

inline CowLeafStats& cow_leaf_stats() {
  static CowLeafStats stats;
  return stats;
}

// Shared immutable value with detach-on-mutate. A default-constructed
// CowPtr holds no block and reads as a default-constructed T (the
// canonical "empty" representation — cold states allocate nothing).
// `TrackStats`: account block lifetimes in cow_leaf_stats() (enabled
// for CowVec leaves only; spines and value-state maps are not "set
// images").
template <typename T, bool TrackStats = false>
class CowPtr {
public:
  CowPtr() = default;
  explicit CowPtr(T value) : block_(new Block(std::move(value))) {}
  CowPtr(const CowPtr& other) : block_(other.block_) { acquire(); }
  CowPtr(CowPtr&& other) noexcept : block_(other.block_) { other.block_ = nullptr; }
  CowPtr& operator=(const CowPtr& other) {
    if (block_ != other.block_) {
      release();
      block_ = other.block_;
      acquire();
    }
    return *this;
  }
  CowPtr& operator=(CowPtr&& other) noexcept {
    if (this != &other) {
      release();
      block_ = other.block_;
      other.block_ = nullptr;
    }
    return *this;
  }
  ~CowPtr() { release(); }

  // Shared read access; null reads as the canonical empty T.
  const T& operator*() const { return block_ != nullptr ? block_->value : empty_value(); }
  const T* operator->() const { return &**this; }

  bool null() const { return block_ == nullptr; }
  // Pointer identity: true implies *this and *other are the same value.
  bool same_as(const CowPtr& other) const { return block_ == other.block_; }
  // Opaque identity token: equal tokens imply equal values (all null
  // pointers share one token — they are all the canonical empty T).
  // Tokens are only meaningful while some CowPtr still holds the block;
  // consumers must not compare tokens across block lifetimes.
  const void* identity() const { return block_; }

  // True when this pointer is the block's only owner (acquire-ordered;
  // see the header comment). A unique block can be mutated in place.
  bool unique() const {
    return block_ != nullptr && block_->refs.load(std::memory_order_acquire) == 1;
  }

  // Detach-on-mutate: returns a uniquely owned mutable value, cloning
  // the block exactly when it is shared.
  T& mut() {
    if (block_ == nullptr) {
      block_ = new Block();
    } else if (!unique()) {
      Block* fresh = new Block(block_->value);
      release();
      block_ = fresh;
    }
    WCET_COW_ASSERT(unique(), "cow: mutable reference to a shared block");
    return block_->value;
  }

  // Drop back to the canonical empty representation.
  void reset() { release(); }

  // Value equality with the pointer-identity fast path.
  bool operator==(const CowPtr& other) const {
    return same_as(other) || **this == *other;
  }
  bool operator!=(const CowPtr& other) const { return !(*this == other); }

private:
  struct Block {
    std::atomic<std::uint32_t> refs{1};
    T value;
    Block() { note_alloc(); }
    explicit Block(T v) : value(std::move(v)) { note_alloc(); }
    ~Block() {
      if constexpr (TrackStats) cow_leaf_stats().note_free();
    }
    static void note_alloc() {
      if constexpr (TrackStats) cow_leaf_stats().note_alloc();
    }
  };

  static const T& empty_value() {
    static const T empty{};
    return empty;
  }

  void acquire() {
    if (block_ != nullptr) block_->refs.fetch_add(1, std::memory_order_relaxed);
  }
  void release() {
    if (block_ != nullptr &&
        block_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      delete block_;
    }
    block_ = nullptr;
  }

  Block* block_ = nullptr;
};

// Fixed-size vector of COW leaves behind a COW spine: the
// representation of per-set abstract cache images.
//
//   copy/assign        O(1) snapshot (spine refcount bump)
//   at(i)              shared read; null leaf reads as the empty T
//   mutate(i)          detach spine (leaf refcount bumps), detach leaf i
//   set_leaf/clear     replace leaf i wholesale (no clone of the old)
//   share_leaf_from    alias another vector's leaf i into this one
//   same_as / leaf_same_as   pointer-identity join gates
template <typename T>
class CowVec {
public:
  using Leaf = CowPtr<T, /*TrackStats=*/true>;

  CowVec() = default;
  explicit CowVec(std::size_t n) {
    if (n > 0) spine_.mut().resize(n);
  }

  std::size_t size() const { return spine_->size(); }

  const T& at(std::size_t i) const { return *(*spine_)[i]; }
  bool leaf_null(std::size_t i) const { return (*spine_)[i].null(); }

  // Whole-vector pointer identity: true implies equal contents.
  bool same_as(const CowVec& other) const { return spine_.same_as(other.spine_); }
  // Per-leaf pointer identity (two nulls are identical — both empty).
  bool leaf_same_as(std::size_t i, const CowVec& other) const {
    return (*spine_)[i].same_as((*other.spine_)[i]);
  }
  // Leaf identity token (see CowPtr::identity).
  const void* leaf_identity(std::size_t i) const { return (*spine_)[i].identity(); }
  // Borrowed view of the contiguous leaf array (no refcount traffic).
  // A CowPtr is a single pointer, so identity scans over this array
  // vectorize — the join fast paths diff two states' leaf arrays in a
  // handful of SIMD compares.
  const Leaf* leaf_data() const { return spine_->data(); }

  // Detach-on-mutate access to leaf i.
  T& mutate(std::size_t i) { return spine_.mut()[i].mut(); }
  // Whether mutate(i) would write in place: both the spine and leaf i
  // are uniquely owned (so no clone happens and no sharer can observe
  // the write).
  bool mutates_in_place(std::size_t i) const {
    return spine_.unique() && (*spine_)[i].unique();
  }
  // Install `value` as a fresh leaf (the previous leaf is released,
  // never cloned).
  void set_leaf(std::size_t i, T value) { spine_.mut()[i] = Leaf(std::move(value)); }
  // Reset leaf i to the canonical empty representation.
  void clear_leaf(std::size_t i) { spine_.mut()[i].reset(); }
  // Alias `other`'s leaf i: afterwards leaf_same_as(i, other) holds.
  void share_leaf_from(std::size_t i, const CowVec& other) {
    spine_.mut()[i] = (*other.spine_)[i];
  }

  bool operator==(const CowVec& other) const {
    if (same_as(other)) return true;
    if (size() != other.size()) return false;
    for (std::size_t i = 0; i < size(); ++i) {
      if (!leaf_same_as(i, other) && !(at(i) == other.at(i))) return false;
    }
    return true;
  }
  bool operator!=(const CowVec& other) const { return !(*this == other); }

private:
  using Spine = std::vector<Leaf>;
  CowPtr<Spine> spine_;
};

} // namespace wcet
