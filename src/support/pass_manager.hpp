// Generic pass-manager scaffolding for the analysis pipeline.
//
// A `Pass<Context>` is one named stage of a pipeline over a shared,
// typed context (the WCET pipeline instantiates Context =
// wcet::AnalysisContext, see wcet/pipeline.hpp). Each pass declares
// the artifact keys it consumes and produces; `PassManager::add`
// validates at registration time that every input is produced by an
// earlier pass (or seeded), so a mis-ordered pipeline fails loudly at
// construction instead of dereferencing a null artifact mid-analysis.
//
// The manager owns per-pass wall-clock timing: every `run_pass`
// accumulates into the pass's named bucket, so phases that execute
// several times (the decode/value feedback loop of Figure 1) report
// their total across rounds — the same convention the PR 1 hand-rolled
// driver used.
//
// ## Thread-safety and determinism invariants
//
// The manager itself is single-threaded: passes run one at a time, in
// registration order, on the caller's thread. Parallelism lives
// *inside* passes — they may fan work out over the context's
// ThreadPool, but every such schedule is deterministic by construction
// (see support/thread_pool.hpp and support/instance_rounds.hpp), so a
// pipeline's computed artifacts are bit-identical for any worker
// count. Only the timing buckets are timing-dependent; nothing
// downstream may feed them back into analysis results.
#pragma once

#include <chrono>
#include <cstddef>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "support/diag.hpp"

namespace wcet {

template <typename Context>
class Pass {
public:
  virtual ~Pass() = default;
  virtual const char* name() const = 0;
  // Artifact keys this pass consumes / produces. Keys are free-form
  // strings; they only need to be consistent within one pipeline.
  virtual std::vector<const char*> inputs() const { return {}; }
  virtual std::vector<const char*> outputs() const { return {}; }
  virtual void run(Context& ctx) = 0;
};

template <typename Context>
class PassManager {
public:
  // Artifacts available before the first pass runs (the pipeline's
  // external inputs).
  void seed(std::initializer_list<const char*> artifacts) {
    for (const char* a : artifacts) available_.insert(a);
  }

  Pass<Context>& add(std::unique_ptr<Pass<Context>> pass) {
    for (const char* need : pass->inputs()) {
      if (available_.count(need) == 0) {
        throw AnalysisError(std::string("pass '") + pass->name() + "' requires artifact '" +
                            need + "' that no earlier pass produces");
      }
    }
    for (const char* out : pass->outputs()) available_.insert(out);
    timings_ms_.emplace(pass->name(), 0.0);
    passes_.push_back(std::move(pass));
    return *passes_.back();
  }

  std::size_t size() const { return passes_.size(); }
  Pass<Context>& pass(std::size_t index) { return *passes_[index]; }

  void run_pass(Context& ctx, std::size_t index) {
    Pass<Context>& p = *passes_[index];
    const auto start = std::chrono::steady_clock::now();
    p.run(ctx);
    const auto end = std::chrono::steady_clock::now();
    timings_ms_[p.name()] += std::chrono::duration<double, std::milli>(end - start).count();
  }

  void run_all(Context& ctx) {
    for (std::size_t i = 0; i < passes_.size(); ++i) run_pass(ctx, i);
  }

  // Accumulated wall-clock time of the named pass across all runs.
  double timing_ms(const std::string& name) const {
    const auto it = timings_ms_.find(name);
    return it == timings_ms_.end() ? 0.0 : it->second;
  }

  const std::map<std::string, double>& timings_ms() const { return timings_ms_; }

private:
  std::vector<std::unique_ptr<Pass<Context>>> passes_;
  std::set<std::string> available_;
  std::map<std::string, double> timings_ms_;
};

} // namespace wcet
