// Exact rational arithmetic on 128-bit integers, used by the simplex
// solver in path analysis. Overflow is detected and reported via
// AnalysisError rather than silently wrapping: an unsound WCET bound is
// worse than no bound.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace wcet {

class Rational {
public:
  constexpr Rational() = default;
  Rational(std::int64_t value) : num_(value), den_(1) {} // NOLINT: implicit by design
  Rational(std::int64_t num, std::int64_t den);

  static Rational from_int128(__int128 num, __int128 den);

  bool is_zero() const { return num_ == 0; }
  bool is_integer() const { return den_ == 1; }
  bool is_negative() const { return num_ < 0; }
  bool is_positive() const { return num_ > 0; }

  // Valid only when the value fits in 64 bits.
  std::int64_t numerator64() const;
  std::int64_t denominator64() const;

  std::int64_t floor64() const;
  std::int64_t ceil64() const;
  double to_double() const;

  Rational operator-() const;
  Rational operator+(const Rational& rhs) const;
  Rational operator-(const Rational& rhs) const;
  Rational operator*(const Rational& rhs) const;
  Rational operator/(const Rational& rhs) const;
  // Fused `*this -= a * b` with a single deferred normalization — the
  // hot operation of the simplex pivot.
  void sub_mul(const Rational& a, const Rational& b);
  Rational& operator+=(const Rational& rhs) { return *this = *this + rhs; }
  Rational& operator-=(const Rational& rhs) { return *this = *this - rhs; }
  Rational& operator*=(const Rational& rhs) { return *this = *this * rhs; }
  Rational& operator/=(const Rational& rhs) { return *this = *this / rhs; }

  bool operator==(const Rational& rhs) const { return num_ == rhs.num_ && den_ == rhs.den_; }
  bool operator!=(const Rational& rhs) const { return !(*this == rhs); }
  bool operator<(const Rational& rhs) const;
  bool operator<=(const Rational& rhs) const;
  bool operator>(const Rational& rhs) const { return rhs < *this; }
  bool operator>=(const Rational& rhs) const { return rhs <= *this; }

  std::string to_string() const;

private:
  void normalize();
  static void check_magnitude(__int128 v);

  __int128 num_ = 0;
  __int128 den_ = 1; // always > 0
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

} // namespace wcet
