// Sorted flat-vector map: the hot-path replacement for std::map in the
// analysis abstract states (tracked memory words, abstract cache sets).
//
// Entries are (key, value) pairs kept sorted by key in one contiguous
// vector. Lookup is binary search, iteration is a linear scan in key
// order (deterministic), and the lattice-join operations the analyses
// need (intersection-style and union-style merges) are O(n + m)
// merge-joins instead of O(n log n) tree walks with pointer chasing.
// Point insertion/erasure is O(n) by memmove, which wins for the small
// working sets these states hold in practice.
//
// In the abstract states these maps are now COW leaves (support/
// cow.hpp: `CowPtr<FlatMap>` value tables, `CowVec<SetImage>` cache
// sets). That puts two extra duties on this type: a default-constructed
// map is the canonical "empty" every null COW leaf reads as, and every
// mutating member doubles as a detach trigger at the call site — so the
// analyses pair each mutation with an exact change predicate (dry-run
// merge scans) and only reach for the mutable reference when the
// predicate fires. Keep mutations and their change reports exact; a
// conservative "maybe changed" here would silently dissolve the
// structural sharing the fixpoints now rely on for performance.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace wcet {

template <typename Key, typename Value>
class FlatMap {
public:
  using Entry = std::pair<Key, Value>;
  using iterator = typename std::vector<Entry>::iterator;
  using const_iterator = typename std::vector<Entry>::const_iterator;

  iterator begin() { return entries_.begin(); }
  iterator end() { return entries_.end(); }
  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }
  void reserve(std::size_t n) { entries_.reserve(n); }

  iterator lower_bound(Key key) {
    return std::lower_bound(entries_.begin(), entries_.end(), key,
                            [](const Entry& e, Key k) { return e.first < k; });
  }
  const_iterator lower_bound(Key key) const {
    return std::lower_bound(entries_.begin(), entries_.end(), key,
                            [](const Entry& e, Key k) { return e.first < k; });
  }

  iterator find(Key key) {
    const iterator it = lower_bound(key);
    return it != entries_.end() && it->first == key ? it : entries_.end();
  }
  const_iterator find(Key key) const {
    const const_iterator it = lower_bound(key);
    return it != entries_.end() && it->first == key ? it : entries_.end();
  }

  bool contains(Key key) const { return find(key) != entries_.end(); }

  Value& operator[](Key key) {
    const iterator it = lower_bound(key);
    if (it != entries_.end() && it->first == key) return it->second;
    return entries_.insert(it, Entry{key, Value{}})->second;
  }

  void insert_or_assign(Key key, Value value) { (*this)[key] = std::move(value); }

  // Erase by key; returns true when an entry was removed.
  bool erase(Key key) {
    const iterator it = find(key);
    if (it == entries_.end()) return false;
    entries_.erase(it);
    return true;
  }
  iterator erase(iterator it) { return entries_.erase(it); }

  bool operator==(const FlatMap& other) const { return entries_ == other.entries_; }
  bool operator!=(const FlatMap& other) const { return !(*this == other); }

  // In-place filtered rewrite: keeps entries for which `keep(key, value)`
  // returns true; `keep` may mutate the value before the verdict.
  template <typename KeepFn>
  bool retain(KeepFn&& keep) {
    bool changed = false;
    std::size_t out = 0;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (keep(entries_[i].first, entries_[i].second)) {
        if (out != i) entries_[out] = std::move(entries_[i]);
        ++out;
      } else {
        changed = true;
      }
    }
    entries_.resize(out);
    return changed;
  }

  // Copy an already-sorted, duplicate-free range into the map, reusing
  // the existing buffer (no allocation once capacity suffices) — how
  // the hot join loops adopt scratch-buffer merge results.
  template <typename It>
  void assign_range(It first, It last) {
    entries_.assign(first, last);
  }

  // Append an entry whose key is strictly greater than every existing
  // key (single-pass emitters building a transformed copy in order).
  void append_sorted(Key key, Value value) {
    entries_.push_back(Entry{key, std::move(value)});
  }

  const std::vector<Entry>& entries() const { return entries_; }

private:
  std::vector<Entry> entries_;
};

} // namespace wcet
