// Bounded-resource governance for the analysis pipeline.
//
// Industrial WCET tooling treats "never crash, always return a sound
// answer or a classified failure" as a core property. This header is
// the contract that makes it hold here:
//
//   AnalysisBudget   — a *specification*: wall-clock deadline plus
//                      per-phase step budgets (fixpoint node visits,
//                      simplex pivots, B&B nodes, tracked-state bytes).
//                      Zero means unlimited; a default-constructed
//                      budget changes nothing anywhere.
//   CancelToken      — lock-free external abort switch, safe to flip
//                      from any thread while an analysis runs.
//   AnalysisGovernor — the per-analysis runtime tracker. Phases consult
//                      it at two distinct granularities:
//
//     * CANCELLATION is checked *finely* (every worklist pop, every
//       pivot batch, every B&B expansion, every ThreadPool chunk item)
//       and aborts the analysis with a classified `CancelledError`.
//       Cancellation is inherently nondeterministic — it races wall
//       clock against progress — so it never produces a bound at all;
//       it exists to bound the *latency* of giving up.
//     * STEP BUDGETS are consumed only at *deterministic* points
//       (instance-round barriers with engine-counted pops, per-ILP-solve
//       pivot/node caps). Exhaustion never aborts: each phase degrades
//       to a sound-but-looser result and records the fact in the
//       degradation ledger, so the same budget yields the same bound on
//       any thread count.
//     * The DEADLINE is wall clock, checked with a throttle; it trips
//       the same sound degradation paths as the step budgets but is —
//       by nature — not reproducible across runs.
//
// The ledger (`Degradation`) travels into `WcetReport::degradations`:
// a degraded bound is still a true upper (resp. lower) bound, but it is
// never silently presented as the exact analysis result.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "support/diag.hpp"

namespace wcet {

// Lock-free cooperative abort switch. `cancel()` may be called from any
// thread (e.g. a daemon's request timeout); the analysis observes it at
// the next checkpoint and unwinds with CancelledError.
class CancelToken {
public:
  void cancel() noexcept {
    request_ns_.store(now_ns(), std::memory_order_relaxed);
    cancelled_.store(true, std::memory_order_release);
  }
  bool cancelled() const noexcept { return cancelled_.load(std::memory_order_relaxed); }
  void reset() noexcept { cancelled_.store(false, std::memory_order_relaxed); }
  // Steady-clock timestamp of the cancel() call; 0 if never cancelled.
  std::int64_t request_ns() const noexcept {
    return request_ns_.load(std::memory_order_relaxed);
  }

  static std::int64_t now_ns() noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

private:
  std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> request_ns_{0};
};

// Classified abort: the analysis was cancelled mid-flight. A subclass
// of AnalysisError so existing catch sites (and the CLI error boundary,
// exit code 3) treat it as an expected analysis-level outcome, never an
// internal bug.
class CancelledError : public AnalysisError {
public:
  CancelledError() : AnalysisError("analysis cancelled") {}
  explicit CancelledError(const std::string& what) : AnalysisError(what) {}
};

// Resource envelope for one analysis run. All limits are optional;
// 0 = unlimited. Step budgets are *cumulative across the run* for the
// fixpoint phases and *per solve* for the ILP limits (each sub-ILP of a
// decomposed IPET gets the full pivot/node cap — degradation of one
// region must not starve its siblings).
struct AnalysisBudget {
  std::uint64_t deadline_ms = 0;       // wall clock from analysis start
  std::uint64_t max_value_visits = 0;  // value-analysis fixpoint node visits
  std::uint64_t max_cache_visits = 0;  // cache-analysis fixpoint node visits
  std::uint64_t max_pivots = 0;        // simplex pivots per LP/ILP solve
  std::uint64_t max_ilp_nodes = 0;     // branch & bound nodes per ILP solve
  std::uint64_t max_state_bytes = 0;   // peak tracked abstract-state bytes
  CancelToken* cancel = nullptr;       // external abort switch (not owned)

  bool unlimited() const {
    return deadline_ms == 0 && max_value_visits == 0 && max_cache_visits == 0 &&
           max_pivots == 0 && max_ilp_nodes == 0 && max_state_bytes == 0 &&
           cancel == nullptr;
  }
};

// One ledger entry: which phase gave up what, why, and the direction of
// the bound impact. `effect` must make clear the result is sound but
// possibly looser (WCET never under-reported, BCET never over-reported).
struct Degradation {
  std::string phase;    // "value", "cache", "path", ...
  std::string trigger;  // "visit budget", "deadline", "node budget", "fault:<site>"
  std::string effect;   // e.g. "un-converged cache instances classified all-miss"
};

// Per-analysis runtime tracker. One instance lives for the duration of
// one `Analyzer::analyze*` call and is shared (via AnalysisContext) by
// every phase and worker thread.
//
// Thread-safety: cancel/deadline checks and the budget_checks counter
// are relaxed atomics (safe from any worker); step-budget consumption
// happens only on the orchestrating thread at round barriers or inside
// a single solve, and the ledger is mutex-protected.
class AnalysisGovernor {
public:
  explicit AnalysisGovernor(const AnalysisBudget& budget)
      : budget_(budget), start_ns_(CancelToken::now_ns()) {}

  const AnalysisBudget& budget() const { return budget_; }

  // ---- cancellation (fine granularity, cheap, any thread) ----

  bool cancel_requested() const noexcept {
    budget_checks_.fetch_add(1, std::memory_order_relaxed);
    return budget_.cancel != nullptr && budget_.cancel->cancelled();
  }

  // Throws CancelledError when the token fired. Also records the
  // observed cancel latency (request -> first checkpoint that saw it).
  void check_cancel() const {
    if (!cancel_requested()) return;
    const std::int64_t req = budget_.cancel->request_ns();
    if (req != 0) {
      const std::int64_t lat_us = (CancelToken::now_ns() - req) / 1000;
      std::int64_t expect = -1;
      cancel_latency_us_.compare_exchange_strong(expect, lat_us < 0 ? 0 : lat_us,
                                                 std::memory_order_relaxed);
    }
    throw CancelledError();
  }

  // Latency from cancel() to the first checkpoint that observed it, in
  // microseconds; -1 when the run was never cancelled.
  std::int64_t cancel_latency_us() const {
    return cancel_latency_us_.load(std::memory_order_relaxed);
  }

  // ---- wall-clock deadline (throttled; inherently nondeterministic) ----

  // True once the deadline has passed. Reads the clock only every
  // `kDeadlineStride` calls; once tripped, stays tripped.
  bool deadline_exceeded() const noexcept {
    if (budget_.deadline_ms == 0) return false;
    if (deadline_hit_.load(std::memory_order_relaxed)) return true;
    if (deadline_probe_.fetch_add(1, std::memory_order_relaxed) % kDeadlineStride != 0) {
      return false;
    }
    const std::int64_t elapsed_ms = (CancelToken::now_ns() - start_ns_) / 1000000;
    if (elapsed_ms >= static_cast<std::int64_t>(budget_.deadline_ms)) {
      deadline_hit_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  // ---- step budgets (deterministic consumption points only) ----

  // Consume `n` units from a cumulative budget; false once exhausted
  // (and forever after). `limit` == 0 means unlimited. Callable only
  // from deterministic single-threaded contexts (round barriers) —
  // const because phases hold a const governor, not because it is
  // concurrency-safe.
  bool consume_value_visits(std::uint64_t n) const {
    return consume(value_visits_spent_, budget_.max_value_visits, n);
  }
  bool consume_cache_visits(std::uint64_t n) const {
    return consume(cache_visits_spent_, budget_.max_cache_visits, n);
  }
  // True when `bytes` of tracked abstract state exceed the budget.
  bool state_bytes_exceeded(std::uint64_t bytes) const {
    return budget_.max_state_bytes != 0 && bytes > budget_.max_state_bytes;
  }

  // Per-solve ILP caps (0 = unlimited). Handed to each LP/ILP solve.
  std::uint64_t pivot_limit() const { return budget_.max_pivots; }
  std::uint64_t ilp_node_limit() const { return budget_.max_ilp_nodes; }

  // ---- ledger & telemetry ----

  void record(const std::string& phase, const std::string& trigger,
              const std::string& effect) const {
    std::lock_guard<std::mutex> lock(mutex_);
    ledger_.push_back({phase, trigger, effect});
  }

  // Snapshot of the ledger, sorted and deduplicated for cross-schedule
  // determinism of the *report text* (entries from parallel sub-solves
  // may be recorded in any order — and several truncated regions record
  // the same entry; their set is deterministic, their arrival is not).
  std::vector<Degradation> degradations() const {
    std::vector<Degradation> out;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      out = ledger_;
    }
    std::sort(out.begin(), out.end(), [](const Degradation& a, const Degradation& b) {
      if (a.phase != b.phase) return a.phase < b.phase;
      if (a.trigger != b.trigger) return a.trigger < b.trigger;
      return a.effect < b.effect;
    });
    out.erase(std::unique(out.begin(), out.end(),
                          [](const Degradation& a, const Degradation& b) {
                            return a.phase == b.phase && a.trigger == b.trigger &&
                                   a.effect == b.effect;
                          }),
              out.end());
    return out;
  }

  std::uint64_t budget_checks() const {
    return budget_checks_.load(std::memory_order_relaxed);
  }

private:
  static bool consume(std::uint64_t& spent, std::uint64_t limit, std::uint64_t n) {
    spent += n;
    return limit == 0 || spent <= limit;
  }

  static constexpr std::uint64_t kDeadlineStride = 64;

  AnalysisBudget budget_;
  std::int64_t start_ns_ = 0;
  mutable std::uint64_t value_visits_spent_ = 0;
  mutable std::uint64_t cache_visits_spent_ = 0;
  mutable std::atomic<std::uint64_t> budget_checks_{0};
  mutable std::atomic<std::uint64_t> deadline_probe_{0};
  mutable std::atomic<bool> deadline_hit_{false};
  mutable std::atomic<std::int64_t> cancel_latency_us_{-1};
  mutable std::mutex mutex_;
  mutable std::vector<Degradation> ledger_;
};

} // namespace wcet
