// Deterministic fault-injection harness for robustness testing.
//
// The pipeline is sprinkled with named injection sites at coarse
// boundaries (pass entry, fixpoint round barriers, ILP solve entry,
// B&B expansion). Each site is a `WCET_FAULT_POINT("name")` macro:
//
//   - With `WCET_FAULT_INJECT` undefined the macro compiles to nothing.
//   - With it defined (the default build; see CMake option) an unarmed
//     site costs one relaxed atomic load — cheap enough to leave in the
//     benchmarked binary (the bench diff guards the overhead).
//   - A test *arms* one (site, action, countdown) triple; the N-th
//     visit of that site fires the action: throw InputError /
//     AnalysisError / std::bad_alloc, or flip a CancelToken.
//
// Determinism: arming is done from a single thread before the analysis
// starts and the countdown is a single atomic decremented at whichever
// thread visits the site; for sites on the orchestrating thread (all
// pass/round/solve boundaries) the firing visit is fully reproducible.
//
// The registry also records which sites were *visited*, so the fault
// matrix test can assert that every site in `known_sites()` is actually
// reached by its workload — a site list that drifts out of sync with
// the code fails loudly instead of silently testing nothing.
#pragma once

#include <atomic>
#include <mutex>
#include <new>
#include <set>
#include <string>
#include <vector>

#include "support/budget.hpp"
#include "support/diag.hpp"

namespace wcet::fault {

enum class Action {
  none,
  throw_input,    // InputError at the site
  throw_analysis, // AnalysisError at the site
  throw_bad_alloc,// allocation failure at the site
  cancel,         // flip the registered CancelToken; analysis keeps
                  // running until the next cancellation checkpoint
};

class Registry {
public:
  static Registry& instance() {
    static Registry r;
    return r;
  }

  // Arms `site` to fire `action` on its (skip+1)-th visit.
  void arm(const std::string& site, Action action, std::uint64_t skip = 0,
           CancelToken* token = nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    site_ = site;
    action_ = action;
    token_ = token;
    remaining_.store(static_cast<std::int64_t>(skip), std::memory_order_relaxed);
    fired_.store(false, std::memory_order_relaxed);
    armed_.store(action != Action::none, std::memory_order_release);
  }

  void disarm() {
    std::lock_guard<std::mutex> lock(mutex_);
    armed_.store(trace_, std::memory_order_release);
    action_ = Action::none;
    token_ = nullptr;
  }

  bool fired() const { return fired_.load(std::memory_order_relaxed); }

  // Visited-site tracing without an armed action: every fault point
  // takes the slow path and records itself in `visited()`, so a test
  // can cross-check `known_sites()` against what the workload reaches.
  void trace(bool on) {
    std::lock_guard<std::mutex> lock(mutex_);
    trace_ = on;
    armed_.store(trace_ || action_ != Action::none, std::memory_order_release);
  }

  void clear_visited() {
    std::lock_guard<std::mutex> lock(mutex_);
    visited_.clear();
  }
  std::set<std::string> visited() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return visited_;
  }

  // Hot path: called by every WCET_FAULT_POINT.
  void maybe_fire(const char* site) {
    if (!armed_.load(std::memory_order_acquire)) return;
    fire_slow(site);
  }

private:
  Registry() = default;

  void fire_slow(const char* site) {
    Action action = Action::none;
    CancelToken* token = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      visited_.insert(site);
      if (action_ == Action::none || site_ != site) return;
      if (remaining_.fetch_sub(1, std::memory_order_relaxed) != 0) return;
      action = action_;
      token = token_;
      fired_.store(true, std::memory_order_relaxed);
      // One-shot: a fired site stays quiet for the rest of the run
      // (tracing, when on, keeps recording visits).
      action_ = Action::none;
      armed_.store(trace_, std::memory_order_release);
    }
    switch (action) {
    case Action::none:
      return;
    case Action::throw_input:
      throw InputError(std::string("fault injected at ") + site);
    case Action::throw_analysis:
      throw AnalysisError(std::string("fault injected at ") + site);
    case Action::throw_bad_alloc:
      throw std::bad_alloc();
    case Action::cancel:
      if (token != nullptr) token->cancel();
      return;
    }
  }

  mutable std::mutex mutex_;
  std::string site_;
  Action action_ = Action::none;
  CancelToken* token_ = nullptr;
  std::atomic<std::int64_t> remaining_{0};
  std::atomic<bool> armed_{false};
  std::atomic<bool> fired_{false};
  bool trace_ = false;
  std::set<std::string> visited_;
};

// Every injection site compiled into the pipeline. Tests sweep this
// list; `Registry::visited()` after an unarmed run cross-checks it.
inline const std::vector<std::string>& known_sites() {
  static const std::vector<std::string> sites = {
      "phase:decode", "phase:value", "phase:loop-bounds", "phase:cache",
      "phase:pipeline", "phase:path", "value:round", "cache:round",
      "ilp:solve", "bnb:node", "serve:admit", "serve:evict",
  };
  return sites;
}

} // namespace wcet::fault

#if defined(WCET_FAULT_INJECT)
#define WCET_FAULT_POINT(site) ::wcet::fault::Registry::instance().maybe_fire(site)
#else
#define WCET_FAULT_POINT(site) ((void)(site))
#endif
