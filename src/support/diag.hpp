// Diagnostics: error types and check helpers shared by all modules.
//
// Errors that indicate a malformed input (bad assembly, bad annotation
// file, bad C source) throw InputError; internal invariant violations
// throw InternalError. Analysis outcomes that are expected in normal
// operation (e.g. "loop bound not found") are *results*, not errors, and
// are modeled as data, never as exceptions.
#pragma once

#include <stdexcept>
#include <string>

namespace wcet {

// Malformed user input (source text, annotation text, binary image).
class InputError : public std::runtime_error {
public:
  explicit InputError(const std::string& what) : std::runtime_error(what) {}
};

// Broken internal invariant; indicates a bug in this library.
class InternalError : public std::logic_error {
public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

// Resource limit exceeded during analysis (ILP overflow, context blowup).
class AnalysisError : public std::runtime_error {
public:
  explicit AnalysisError(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] void internal_fail(const char* file, int line, const std::string& msg);

// Invariant check that stays enabled in release builds: analysis
// soundness must never silently degrade.
#define WCET_CHECK(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) ::wcet::internal_fail(__FILE__, __LINE__, (msg));         \
  } while (false)

} // namespace wcet
