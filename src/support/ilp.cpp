#include "support/ilp.hpp"

#include <algorithm>
#include <sstream>
#include <cstdio>
#include <cstdlib>

#include "support/diag.hpp"

namespace wcet {

int IlpProblem::add_variable(std::string name) {
  names_.push_back(std::move(name));
  objective_.emplace_back(0);
  return static_cast<int>(names_.size()) - 1;
}

void IlpProblem::set_objective(int var, Rational coeff) {
  objective_[static_cast<std::size_t>(var)] = std::move(coeff);
}

void IlpProblem::add_constraint(std::vector<LinTerm> terms, Cmp cmp, Rational rhs) {
  for (const auto& t : terms) {
    WCET_CHECK(t.var >= 0 && t.var < num_variables(), "constraint references unknown variable");
  }
  rows_.push_back(Row{std::move(terms), cmp, std::move(rhs)});
}

namespace {

// Dense simplex tableau with explicit basis bookkeeping.
class Tableau {
public:
  Tableau(std::size_t rows, std::size_t cols) : cols_(cols), cells_(rows * cols) {}

  Rational& at(std::size_t r, std::size_t c) { return cells_[r * cols_ + c]; }
  const Rational& at(std::size_t r, std::size_t c) const { return cells_[r * cols_ + c]; }

  void pivot(std::size_t pr, std::size_t pc, std::size_t num_rows) {
    const Rational inv = Rational(1) / at(pr, pc);
    for (std::size_t c = 0; c < cols_; ++c) at(pr, c) *= inv;
    for (std::size_t r = 0; r < num_rows; ++r) {
      if (r == pr) continue;
      const Rational factor = at(r, pc);
      if (factor.is_zero()) continue;
      for (std::size_t c = 0; c < cols_; ++c) {
        at(r, c) -= factor * at(pr, c);
      }
    }
  }

private:
  std::size_t cols_;
  std::vector<Rational> cells_;
};

} // namespace

LpSolution IlpProblem::solve_lp() const { return solve_lp_with({}); }

LpSolution IlpProblem::solve_lp_with(const std::vector<Row>& extra) const {
  const std::size_t n = static_cast<std::size_t>(num_variables());
  std::vector<Row> rows = rows_;
  rows.insert(rows.end(), extra.begin(), extra.end());
  const std::size_t m = rows.size();

  // Normalize: rhs >= 0.
  for (auto& row : rows) {
    if (row.rhs.is_negative()) {
      row.rhs = -row.rhs;
      for (auto& t : row.terms) t.coeff = -t.coeff;
      if (row.cmp == Cmp::le) row.cmp = Cmp::ge;
      else if (row.cmp == Cmp::ge) row.cmp = Cmp::le;
    }
  }

  // Column layout: [structural n][slack/surplus per row][artificial per
  // row as needed][rhs].
  std::size_t num_slack = 0;
  std::size_t num_art = 0;
  for (const auto& row : rows) {
    if (row.cmp != Cmp::eq) ++num_slack;
    if (row.cmp != Cmp::le) ++num_art;
  }
  const std::size_t total_cols = n + num_slack + num_art + 1;
  const std::size_t rhs_col = total_cols - 1;
  const std::size_t obj_row = m; // one extra row for reduced costs

  Tableau tab(m + 1, total_cols);
  std::vector<std::size_t> basis(m);
  std::vector<bool> is_artificial(total_cols, false);

  std::size_t next_slack = n;
  std::size_t next_art = n + num_slack;
  for (std::size_t r = 0; r < m; ++r) {
    for (const auto& t : rows[r].terms) {
      tab.at(r, static_cast<std::size_t>(t.var)) += t.coeff;
    }
    tab.at(r, rhs_col) = rows[r].rhs;
    switch (rows[r].cmp) {
    case Cmp::le:
      tab.at(r, next_slack) = Rational(1);
      basis[r] = next_slack++;
      break;
    case Cmp::ge:
      tab.at(r, next_slack) = Rational(-1);
      ++next_slack;
      tab.at(r, next_art) = Rational(1);
      is_artificial[next_art] = true;
      basis[r] = next_art++;
      break;
    case Cmp::eq:
      tab.at(r, next_art) = Rational(1);
      is_artificial[next_art] = true;
      basis[r] = next_art++;
      break;
    }
  }

  const auto run_simplex = [&](bool allow_artificials) -> bool {
    // Returns false on unboundedness. Bland's rule: smallest eligible
    // column index enters, row with smallest basic variable leaves.
    for (;;) {
      std::size_t enter = total_cols;
      for (std::size_t c = 0; c + 1 < total_cols; ++c) {
        if (!allow_artificials && is_artificial[c]) continue;
        if (tab.at(obj_row, c).is_positive()) {
          enter = c;
          break;
        }
      }
      if (enter == total_cols) return true; // optimal
      std::size_t leave = m;
      Rational best_ratio;
      for (std::size_t r = 0; r < m; ++r) {
        const Rational& a = tab.at(r, enter);
        if (!a.is_positive()) continue;
        const Rational ratio = tab.at(r, rhs_col) / a;
        if (leave == m || ratio < best_ratio ||
            (ratio == best_ratio && basis[r] < basis[leave])) {
          leave = r;
          best_ratio = ratio;
        }
      }
      if (leave == m) return false; // unbounded
      tab.pivot(leave, enter, m + 1);
      basis[leave] = enter;
    }
  };

  // Phase 1: maximize -(sum of artificials) == drive them to zero.
  if (num_art > 0) {
    for (std::size_t c = 0; c < total_cols; ++c) {
      if (is_artificial[c]) tab.at(obj_row, c) = Rational(-1);
    }
    // Make reduced costs consistent with the initial basis (price out
    // the artificial basic columns).
    for (std::size_t r = 0; r < m; ++r) {
      if (is_artificial[basis[r]]) {
        for (std::size_t c = 0; c < total_cols; ++c) {
          tab.at(obj_row, c) += tab.at(r, c);
        }
      }
    }
    const bool bounded = run_simplex(true);
    WCET_CHECK(bounded, "phase-1 LP cannot be unbounded");
    if (!tab.at(obj_row, rhs_col).is_zero()) {
      LpSolution s;
      s.status = LpSolution::Status::infeasible;
      return s;
    }
    // Pivot any artificial still in the basis (at value zero) out.
    for (std::size_t r = 0; r < m; ++r) {
      if (!is_artificial[basis[r]]) continue;
      std::size_t enter = total_cols;
      for (std::size_t c = 0; c + 1 < total_cols; ++c) {
        if (!is_artificial[c] && !tab.at(r, c).is_zero()) {
          enter = c;
          break;
        }
      }
      if (enter != total_cols) {
        tab.pivot(r, enter, m + 1);
        basis[r] = enter;
      }
      // Otherwise the row is all-zero over real columns: redundant row;
      // the artificial stays basic at value zero, which is harmless.
    }
    // Reset objective row for phase 2.
    for (std::size_t c = 0; c < total_cols; ++c) tab.at(obj_row, c) = Rational(0);
  }

  // Phase 2: maximize the real objective. Objective row holds
  // c_j - z_j; start from c and price out basic columns. Artificial
  // columns are barred from entering the basis (run_simplex(false)):
  // blocking at the pivot rule is the only robust way — any objective-row
  // penalty on them gets rewritten by pricing.
  for (std::size_t j = 0; j < n; ++j) tab.at(obj_row, j) = objective_[j];
  for (std::size_t r = 0; r < m; ++r) {
    const Rational cb = basis[r] < n ? objective_[basis[r]] : Rational(0);
    if (cb.is_zero()) continue;
    for (std::size_t c = 0; c < total_cols; ++c) {
      tab.at(obj_row, c) -= cb * tab.at(r, c);
    }
  }

  if (!run_simplex(false)) {
    LpSolution s;
    s.status = LpSolution::Status::unbounded;
    return s;
  }

  LpSolution s;
  s.status = LpSolution::Status::optimal;
  s.values.assign(n, Rational(0));
  for (std::size_t r = 0; r < m; ++r) {
    if (basis[r] < n) s.values[basis[r]] = tab.at(r, rhs_col);
  }
  s.objective = Rational(0);
  for (std::size_t j = 0; j < n; ++j) s.objective += objective_[j] * s.values[j];
  return s;
}

void IlpProblem::branch_and_bound(std::vector<Row>& extra, LpSolution& best,
                                  int& nodes_left, bool& hit_limit) const {
  if (nodes_left <= 0) {
    hit_limit = true;
    return;
  }
  --nodes_left;
  const LpSolution relax = solve_lp_with(extra);
  if (relax.status == LpSolution::Status::unbounded) {
    best = relax;
    return;
  }
  if (!relax.ok()) return;
  if (best.ok() && relax.objective <= best.objective) return; // bound
  // Find a fractional variable.
  int frac_var = -1;
  for (int j = 0; j < num_variables(); ++j) {
    if (!relax.values[static_cast<std::size_t>(j)].is_integer()) {
      frac_var = j;
      break;
    }
  }
  if (frac_var < 0) {
    if (!best.ok() || relax.objective > best.objective) best = relax;
    return;
  }
  const Rational v = relax.values[static_cast<std::size_t>(frac_var)];
  // Ceil branch first: for maximization it tends to find the incumbent
  // faster on counting problems.
  extra.push_back(Row{{{frac_var, Rational(1)}}, Cmp::ge, Rational(v.ceil64())});
  branch_and_bound(extra, best, nodes_left, hit_limit);
  extra.pop_back();
  if (best.status == LpSolution::Status::unbounded) return;
  extra.push_back(Row{{{frac_var, Rational(1)}}, Cmp::le, Rational(v.floor64())});
  branch_and_bound(extra, best, nodes_left, hit_limit);
  extra.pop_back();
}

LpSolution IlpProblem::solve_ilp(int node_limit) const {
  std::vector<Row> extra;
  LpSolution best;
  best.status = LpSolution::Status::infeasible;
  int nodes_left = node_limit;
  bool hit_limit = false;
  branch_and_bound(extra, best, nodes_left, hit_limit);
  if (!best.ok() && hit_limit) {
    best.status = LpSolution::Status::node_limit;
  }
  return best;
}

std::string IlpProblem::to_string() const {
  std::ostringstream os;
  os << "maximize";
  bool first = true;
  for (int j = 0; j < num_variables(); ++j) {
    const auto& c = objective_[static_cast<std::size_t>(j)];
    if (c.is_zero()) continue;
    os << (first ? " " : " + ") << c.to_string() << ' ' << names_[static_cast<std::size_t>(j)];
    first = false;
  }
  os << "\nsubject to\n";
  for (const auto& row : rows_) {
    bool f = true;
    for (const auto& t : row.terms) {
      os << (f ? "  " : " + ") << t.coeff.to_string() << ' '
         << names_[static_cast<std::size_t>(t.var)];
      f = false;
    }
    switch (row.cmp) {
    case Cmp::le: os << " <= "; break;
    case Cmp::ge: os << " >= "; break;
    case Cmp::eq: os << " == "; break;
    }
    os << row.rhs.to_string() << '\n';
  }
  return os.str();
}

} // namespace wcet
