#include "support/ilp.hpp"

#include <algorithm>
#include <optional>
#include <queue>
#include <sstream>

#include "support/diag.hpp"

namespace wcet {

int IlpProblem::add_variable(std::string name) {
  names_.push_back(std::move(name));
  objective_.emplace_back(0);
  return static_cast<int>(names_.size()) - 1;
}

void IlpProblem::set_objective(int var, Rational coeff) {
  objective_[static_cast<std::size_t>(var)] = std::move(coeff);
}

void IlpProblem::add_constraint(std::vector<LinTerm> terms, Cmp cmp, Rational rhs) {
  for (const auto& t : terms) {
    WCET_CHECK(t.var >= 0 && t.var < num_variables(), "constraint references unknown variable");
  }
  rows_.push_back(Row{std::move(terms), cmp, std::move(rhs)});
}

namespace {

// Consecutive degenerate pivots before the column rule falls back from
// Dantzig to Bland (which cannot cycle).
constexpr int k_bland_switch = 128;

// Row-wise simplex tableau with explicit basis bookkeeping. Rows are
// individual vectors (with the rhs held separately) so that the warm
// start can append branch rows and their slack columns in place.
class Simplex {
public:
  enum class Status { optimal, infeasible, unbounded, stalled };

  Simplex(std::size_t num_vars, const std::vector<IlpProblem::Row>& base,
          const std::vector<IlpProblem::Row>& extra, const std::vector<Rational>& objective)
      : n_(num_vars), objective_(objective) {
    std::vector<IlpProblem::Row> rows = base;
    rows.insert(rows.end(), extra.begin(), extra.end());
    // Normalize: rhs >= 0.
    for (auto& row : rows) {
      if (row.rhs.is_negative()) {
        row.rhs = -row.rhs;
        for (auto& t : row.terms) t.coeff = -t.coeff;
        if (row.cmp == Cmp::le) row.cmp = Cmp::ge;
        else if (row.cmp == Cmp::ge) row.cmp = Cmp::le;
      }
    }
    m_ = rows.size();

    // Column layout: [structural n][slack/surplus per row][artificial
    // per row as needed]; the rhs lives in its own vector.
    std::size_t num_slack = 0;
    num_art_ = 0;
    for (const auto& row : rows) {
      if (row.cmp != Cmp::eq) ++num_slack;
      if (row.cmp != Cmp::le) ++num_art_;
    }
    cols_ = n_ + num_slack + num_art_;
    is_artificial_.assign(cols_, false);
    mat_.assign(m_, std::vector<Rational>(cols_));
    rhs_.resize(m_);
    basis_.resize(m_);
    obj_.assign(cols_, Rational(0));

    std::size_t next_slack = n_;
    std::size_t next_art = n_ + num_slack;
    for (std::size_t r = 0; r < m_; ++r) {
      for (const auto& t : rows[r].terms) {
        mat_[r][static_cast<std::size_t>(t.var)] += t.coeff;
      }
      rhs_[r] = rows[r].rhs;
      switch (rows[r].cmp) {
      case Cmp::le:
        mat_[r][next_slack] = Rational(1);
        basis_[r] = next_slack++;
        break;
      case Cmp::ge:
        mat_[r][next_slack] = Rational(-1);
        ++next_slack;
        mat_[r][next_art] = Rational(1);
        is_artificial_[next_art] = true;
        basis_[r] = next_art++;
        break;
      case Cmp::eq:
        mat_[r][next_art] = Rational(1);
        is_artificial_[next_art] = true;
        basis_[r] = next_art++;
        break;
      }
    }
  }

  // Two-phase primal solve from scratch.
  Status solve() {
    if (num_art_ > 0) {
      // Phase 1: maximize -(sum of artificials) == drive them to zero.
      for (std::size_t c = 0; c < cols_; ++c) {
        obj_[c] = is_artificial_[c] ? Rational(-1) : Rational(0);
      }
      obj_rhs_ = Rational(0);
      // Price out the artificial basic columns.
      for (std::size_t r = 0; r < m_; ++r) {
        if (!is_artificial_[basis_[r]]) continue;
        for (std::size_t c = 0; c < cols_; ++c) {
          if (!mat_[r][c].is_zero()) obj_[c] += mat_[r][c];
        }
        obj_rhs_ += rhs_[r];
      }
      const Status phase1 = primal(true);
      WCET_CHECK(phase1 != Status::unbounded, "phase-1 LP cannot be unbounded");
      if (!obj_rhs_.is_zero()) return Status::infeasible;
      // Pivot any artificial still in the basis (at value zero) out.
      for (std::size_t r = 0; r < m_; ++r) {
        if (!is_artificial_[basis_[r]]) continue;
        std::size_t enter = cols_;
        for (std::size_t c = 0; c < cols_; ++c) {
          if (!is_artificial_[c] && !mat_[r][c].is_zero()) {
            enter = c;
            break;
          }
        }
        if (enter != cols_) pivot(r, enter);
        // Otherwise the row is all-zero over real columns: redundant
        // row; the artificial stays basic at value zero, harmless.
      }
    }

    // Phase 2: maximize the real objective. The objective row holds
    // c_j - z_j; start from c and price out basic columns. Artificial
    // columns are barred from entering the basis: blocking at the pivot
    // rule is the only robust way — any objective-row penalty on them
    // gets rewritten by pricing.
    for (std::size_t c = 0; c < cols_; ++c) {
      obj_[c] = c < n_ ? objective_[c] : Rational(0);
    }
    obj_rhs_ = Rational(0);
    for (std::size_t r = 0; r < m_; ++r) {
      const Rational cb = basis_[r] < n_ ? objective_[basis_[r]] : Rational(0);
      if (cb.is_zero()) continue;
      for (std::size_t c = 0; c < cols_; ++c) {
        if (!mat_[r][c].is_zero()) obj_[c].sub_mul(cb, mat_[r][c]);
      }
      obj_rhs_.sub_mul(cb, rhs_[r]);
    }
    return primal(false);
  }

  // Warm start: append `row` to an optimal tableau and re-optimize with
  // the dual simplex. Only inequality rows are supported (branch & bound
  // emits single-variable bounds). Returns `stalled` if the dual
  // iteration hits its safety limit; the caller then re-solves cold.
  Status reoptimize_with_row(const IlpProblem::Row& row) {
    // Convert to <= form (possibly with negative rhs — that is the
    // primal infeasibility the dual simplex repairs).
    WCET_CHECK(row.cmp != Cmp::eq, "warm start supports inequality rows only");
    const bool flip = row.cmp == Cmp::ge;
    // New slack column for the appended row.
    for (std::size_t r = 0; r < m_; ++r) mat_[r].emplace_back(0);
    obj_.emplace_back(0);
    is_artificial_.push_back(false);
    const std::size_t slack_col = cols_++;

    std::vector<Rational> new_row(cols_);
    for (const auto& t : row.terms) {
      const auto c = static_cast<std::size_t>(t.var);
      if (flip) new_row[c] -= t.coeff;
      else new_row[c] += t.coeff;
    }
    new_row[slack_col] = Rational(1);
    Rational new_rhs = flip ? -row.rhs : row.rhs;

    // Express the row in the current basis: eliminate every basic
    // column (each tableau row is a unit vector in its basic column).
    for (std::size_t r = 0; r < m_; ++r) {
      const Rational factor = new_row[basis_[r]];
      if (factor.is_zero()) continue;
      const std::vector<Rational>& brow = mat_[r];
      for (std::size_t c = 0; c < cols_; ++c) {
        if (!brow[c].is_zero()) new_row[c].sub_mul(factor, brow[c]);
      }
      new_rhs.sub_mul(factor, rhs_[r]);
    }
    mat_.push_back(std::move(new_row));
    rhs_.push_back(std::move(new_rhs));
    basis_.push_back(slack_col);
    ++m_;
    return dual();
  }

  LpSolution extract() const {
    LpSolution s;
    s.status = LpSolution::Status::optimal;
    s.values.assign(n_, Rational(0));
    for (std::size_t r = 0; r < m_; ++r) {
      if (basis_[r] < n_) s.values[basis_[r]] = rhs_[r];
    }
    s.objective = Rational(0);
    for (std::size_t j = 0; j < n_; ++j) {
      if (!objective_[j].is_zero()) s.objective += objective_[j] * s.values[j];
    }
    return s;
  }

private:
  Status primal(bool allow_artificials) {
    int degenerate_streak = 0;
    for (;;) {
      // Entering column: Dantzig's rule (largest reduced cost) while
      // progress is healthy, Bland's rule (first eligible) after a
      // degenerate streak — Bland cannot cycle, so termination holds.
      std::size_t enter = cols_;
      if (degenerate_streak < k_bland_switch) {
        for (std::size_t c = 0; c < cols_; ++c) {
          if (!allow_artificials && is_artificial_[c]) continue;
          if (!obj_[c].is_positive()) continue;
          if (enter == cols_ || obj_[enter] < obj_[c]) enter = c;
        }
      } else {
        for (std::size_t c = 0; c < cols_; ++c) {
          if (!allow_artificials && is_artificial_[c]) continue;
          if (obj_[c].is_positive()) {
            enter = c;
            break;
          }
        }
      }
      if (enter == cols_) return Status::optimal;

      // Ratio test: row with the smallest rhs/coefficient ratio leaves;
      // ties break towards the smallest basic variable (Bland).
      std::size_t leave = m_;
      Rational best_ratio;
      for (std::size_t r = 0; r < m_; ++r) {
        const Rational& a = mat_[r][enter];
        if (!a.is_positive()) continue;
        const Rational ratio = rhs_[r] / a;
        if (leave == m_ || ratio < best_ratio ||
            (ratio == best_ratio && basis_[r] < basis_[leave])) {
          leave = r;
          best_ratio = ratio;
        }
      }
      if (leave == m_) return Status::unbounded;
      degenerate_streak = best_ratio.is_zero() ? degenerate_streak + 1 : 0;
      pivot(leave, enter);
    }
  }

  // Dual simplex: restores primal feasibility (negative rhs entries)
  // while keeping the objective row dual-feasible. Used after warm-start
  // row additions.
  Status dual() {
    const std::size_t iteration_limit = 4 * (m_ + cols_) + 100;
    for (std::size_t iter = 0; iter < iteration_limit; ++iter) {
      // Leaving row: most negative rhs (ties to the smallest row).
      std::size_t leave = m_;
      for (std::size_t r = 0; r < m_; ++r) {
        if (!rhs_[r].is_negative()) continue;
        if (leave == m_ || rhs_[r] < rhs_[leave]) leave = r;
      }
      if (leave == m_) return Status::optimal;

      // Entering column: minimize obj_c / a_c over negative pivot-row
      // entries (both numerator and denominator are <= 0, so the ratio
      // is >= 0); ties break towards the smallest column index.
      std::size_t enter = cols_;
      Rational best_num, best_den; // compare obj_e/a_e < obj_c/a_c cross-multiplied
      for (std::size_t c = 0; c < cols_; ++c) {
        if (is_artificial_[c]) continue;
        const Rational& a = mat_[leave][c];
        if (!a.is_negative()) continue;
        if (enter == cols_) {
          enter = c;
          best_num = obj_[c];
          best_den = a;
          continue;
        }
        // obj_c / a_c < obj_e / a_e  <=>  obj_c * a_e < obj_e * a_c
        // (multiplying by the negative denominators flips twice).
        if (obj_[c] * best_den < best_num * a) {
          enter = c;
          best_num = obj_[c];
          best_den = a;
        }
      }
      if (enter == cols_) return Status::infeasible; // no way to repair the row
      pivot(leave, enter);
    }
    return Status::stalled;
  }

  void pivot(std::size_t pr, std::size_t pc) {
    std::vector<Rational>& prow = mat_[pr];
    const Rational inv = Rational(1) / prow[pc];
    // Collect the nonzero columns of the pivot row once; every other
    // row is then updated only at those columns (the tableau stays
    // sparse for flow-conservation systems, so this skips the vast
    // majority of cells).
    nz_.clear();
    for (std::size_t c = 0; c < cols_; ++c) {
      if (prow[c].is_zero()) continue;
      prow[c] *= inv;
      nz_.push_back(c);
    }
    rhs_[pr] *= inv;

    for (std::size_t r = 0; r < m_; ++r) {
      if (r == pr) continue;
      std::vector<Rational>& row = mat_[r];
      const Rational factor = row[pc];
      if (factor.is_zero()) continue;
      for (const std::size_t c : nz_) row[c].sub_mul(factor, prow[c]);
      rhs_[r].sub_mul(factor, rhs_[pr]);
    }
    {
      const Rational factor = obj_[pc];
      if (!factor.is_zero()) {
        for (const std::size_t c : nz_) obj_[c].sub_mul(factor, prow[c]);
        obj_rhs_.sub_mul(factor, rhs_[pr]);
      }
    }
    basis_[pr] = pc;
  }

  std::size_t n_ = 0;
  std::size_t m_ = 0;
  std::size_t cols_ = 0;
  std::size_t num_art_ = 0;
  std::vector<Rational> objective_; // structural objective coefficients
  std::vector<std::vector<Rational>> mat_;
  std::vector<Rational> rhs_;
  std::vector<Rational> obj_; // reduced-cost row
  Rational obj_rhs_;
  std::vector<std::size_t> basis_;
  std::vector<bool> is_artificial_;
  std::vector<std::size_t> nz_; // scratch: pivot-row nonzeros
};

LpSolution status_only(LpSolution::Status status) {
  LpSolution s;
  s.status = status;
  return s;
}

} // namespace

LpSolution IlpProblem::solve_lp() const { return solve_lp_with({}); }

LpSolution IlpProblem::solve_lp_with(const std::vector<Row>& extra) const {
  Simplex simplex(static_cast<std::size_t>(num_variables()), rows_, extra, objective_);
  switch (simplex.solve()) {
  case Simplex::Status::optimal: return simplex.extract();
  case Simplex::Status::infeasible: return status_only(LpSolution::Status::infeasible);
  case Simplex::Status::unbounded: return status_only(LpSolution::Status::unbounded);
  case Simplex::Status::stalled: break; // unreachable: primal never stalls
  }
  WCET_CHECK(false, "simplex returned an impossible status");
  return status_only(LpSolution::Status::infeasible);
}

LpSolution IlpProblem::solve_ilp(int node_limit) const {
  // Branch & bound, best-bound order with ceil-first diving. The root
  // relaxation is solved cold (two-phase). After branching, the ceil
  // child is *dived* immediately: its single branch row is appended to
  // the live parent tableau and re-optimized with the dual simplex —
  // one row, one warm re-solve per dive step. Floor siblings go onto
  // the best-bound queue; when popped they rebuild warm from a copy of
  // the root-optimal tableau by replaying their branch-row path (still
  // dual re-solves, never two-phase-from-scratch).
  const auto n = static_cast<std::size_t>(num_variables());
  Simplex root(n, rows_, {}, objective_);
  switch (root.solve()) {
  case Simplex::Status::optimal: break;
  case Simplex::Status::infeasible: return status_only(LpSolution::Status::infeasible);
  case Simplex::Status::unbounded: return status_only(LpSolution::Status::unbounded);
  case Simplex::Status::stalled: WCET_CHECK(false, "primal simplex cannot stall");
  }
  const LpSolution root_solution = root.extract();

  struct Node {
    std::vector<Row> extra; // branch rows on the path from the root
    Rational bound;         // parent relaxation objective (upper bound)
    std::uint64_t seq = 0;  // FIFO tie-break
  };
  const auto worse = [](const Node& a, const Node& b) {
    if (a.bound != b.bound) return a.bound < b.bound;
    return a.seq > b.seq;
  };
  std::priority_queue<Node, std::vector<Node>, decltype(worse)> open(worse);
  std::uint64_t seq = 0;
  open.push(Node{{}, root_solution.objective, seq++});

  LpSolution best = status_only(LpSolution::Status::infeasible);
  int nodes_used = 0;
  bool hit_limit = false;

  const auto first_fractional = [&](const LpSolution& s) {
    for (int j = 0; j < num_variables(); ++j) {
      if (!s.values[static_cast<std::size_t>(j)].is_integer()) return j;
    }
    return -1;
  };

  while (!open.empty() && !hit_limit) {
    Node node = open.top();
    open.pop();
    if (best.ok() && node.bound <= best.objective) continue; // bound
    if (nodes_used >= node_limit) {
      hit_limit = true;
      break;
    }
    ++nodes_used;

    // Rebuild this node's relaxation warm from the root tableau. The
    // copy is lazy: the root node itself (empty path — the common
    // no-branching case) reuses the stored root solution and only
    // materializes a tableau copy if it actually has to dive.
    LpSolution relax;
    std::optional<Simplex> warm;
    bool warm_live = true; // false once the live tableau diverged from `relax`
    if (node.extra.empty()) {
      relax = root_solution;
    } else {
      warm = root;
      Simplex::Status status = Simplex::Status::optimal;
      for (const Row& row : node.extra) {
        status = warm->reoptimize_with_row(row);
        if (status != Simplex::Status::optimal) break;
      }
      switch (status) {
      case Simplex::Status::optimal: relax = warm->extract(); break;
      case Simplex::Status::infeasible: continue;
      case Simplex::Status::unbounded: return status_only(LpSolution::Status::unbounded);
      case Simplex::Status::stalled:
        // Dual iteration hit its safety limit: fall back to an exact
        // cold solve; the live tableau is no longer usable for diving.
        relax = solve_lp_with(node.extra);
        warm_live = false;
        break;
      }
    }

    // Dive: follow ceil branches on the live tableau while profitable,
    // queueing each floor sibling for best-bound exploration.
    for (;;) {
      if (relax.status == LpSolution::Status::unbounded) return relax;
      if (!relax.ok()) break;
      if (best.ok() && relax.objective <= best.objective) break; // bound
      const int frac_var = first_fractional(relax);
      if (frac_var < 0) {
        best = std::move(relax); // improved integral incumbent
        break;
      }
      const Rational v = relax.values[static_cast<std::size_t>(frac_var)];
      const Row up{{{frac_var, Rational(1)}}, Cmp::ge, Rational(v.ceil64())};
      const Row down{{{frac_var, Rational(1)}}, Cmp::le, Rational(v.floor64())};
      Node sibling{node.extra, relax.objective, seq++};
      sibling.extra.push_back(down);
      open.push(std::move(sibling));
      node.extra.push_back(up);
      if (!warm_live) {
        // No live tableau to extend: queue the ceil child instead.
        open.push(Node{std::move(node.extra), relax.objective, seq++});
        break;
      }
      if (nodes_used >= node_limit) {
        hit_limit = true;
        break;
      }
      ++nodes_used;
      if (!warm) warm = root; // first dive from the root node's own path
      const Simplex::Status status = warm->reoptimize_with_row(up);
      if (status == Simplex::Status::infeasible) break;
      if (status == Simplex::Status::unbounded) return status_only(LpSolution::Status::unbounded);
      if (status == Simplex::Status::stalled) {
        relax = solve_lp_with(node.extra);
        warm_live = false;
        continue;
      }
      relax = warm->extract();
    }
  }

  if (!best.ok() && hit_limit) best.status = LpSolution::Status::node_limit;
  return best;
}

std::string IlpProblem::to_string() const {
  std::ostringstream os;
  os << "maximize";
  bool first = true;
  for (int j = 0; j < num_variables(); ++j) {
    const auto& c = objective_[static_cast<std::size_t>(j)];
    if (c.is_zero()) continue;
    os << (first ? " " : " + ") << c.to_string() << ' ' << names_[static_cast<std::size_t>(j)];
    first = false;
  }
  os << "\nsubject to\n";
  for (const auto& row : rows_) {
    bool f = true;
    for (const auto& t : row.terms) {
      os << (f ? "  " : " + ") << t.coeff.to_string() << ' '
         << names_[static_cast<std::size_t>(t.var)];
      f = false;
    }
    switch (row.cmp) {
    case Cmp::le: os << " <= "; break;
    case Cmp::ge: os << " >= "; break;
    case Cmp::eq: os << " == "; break;
    }
    os << row.rhs.to_string() << '\n';
  }
  return os.str();
}

} // namespace wcet
