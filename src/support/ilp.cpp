#include "support/ilp.hpp"

#include <algorithm>
#include <optional>
#include <queue>
#include <sstream>

#include "support/diag.hpp"
#include "support/fault_inject.hpp"

namespace wcet {

int IlpProblem::add_variable(std::string name) {
  names_.push_back(std::move(name));
  objective_.emplace_back(0);
  return static_cast<int>(names_.size()) - 1;
}

void IlpProblem::set_objective(int var, Rational coeff) {
  objective_[static_cast<std::size_t>(var)] = std::move(coeff);
}

void IlpProblem::add_constraint(std::vector<LinTerm> terms, Cmp cmp, Rational rhs) {
  for (const auto& t : terms) {
    WCET_CHECK(t.var >= 0 && t.var < num_variables(), "constraint references unknown variable");
  }
  rows_.push_back(Row{std::move(terms), cmp, std::move(rhs)});
}

void IlpProblem::set_basis_hint(std::vector<std::pair<int, int>> hint) {
  std::vector<char> row_used(rows_.size(), 0);
  std::vector<char> col_used(names_.size(), 0);
  for (const auto& [row, var] : hint) {
    WCET_CHECK(row >= 0 && row < num_constraints(), "basis hint names an unknown row");
    WCET_CHECK(var >= 0 && var < num_variables(), "basis hint names an unknown variable");
    WCET_CHECK(rows_[static_cast<std::size_t>(row)].cmp == Cmp::eq,
               "basis hints cover equality rows only");
    WCET_CHECK(!row_used[static_cast<std::size_t>(row)], "basis hint repeats a row");
    WCET_CHECK(!col_used[static_cast<std::size_t>(var)], "basis hint repeats a column");
    row_used[static_cast<std::size_t>(row)] = 1;
    col_used[static_cast<std::size_t>(var)] = 1;
  }
  basis_hint_ = std::move(hint);
}

namespace {

// Consecutive degenerate pivots before the column rule falls back from
// Dantzig to Bland (which cannot cycle).
constexpr int k_bland_switch = 128;

// Row-wise simplex tableau with explicit basis bookkeeping. Rows are
// sparse (sorted column/value entries, no stored zeros; the rhs held
// separately), so tableau memory scales with the nonzero count and the
// warm start can append branch rows and their slack columns in place —
// existing rows never materialize the new columns.
class Simplex {
public:
  // `pivot_limit`: the per-solve pivot budget ran out mid-iteration; no
  // optimal basis exists. `stalled` keeps its warm-start meaning (dual
  // safety limit; the caller re-solves cold).
  enum class Status { optimal, infeasible, unbounded, stalled, pivot_limit };

  // Installs the per-solve resource envelope: a shared pivot counter
  // (copies of this tableau — warm-start clones — keep charging the
  // same counter), an optional cap on it, and a governor checked for
  // cooperative cancellation every 64 pivots.
  void set_limits(const AnalysisGovernor* governor, std::uint64_t* pivot_count,
                  std::uint64_t pivot_limit, std::uint64_t* phase1_pivots = nullptr) {
    governor_ = governor;
    pivot_count_ = pivot_count;
    pivot_limit_ = pivot_limit;
    phase1_pivots_ = phase1_pivots;
  }

  struct Ent {
    std::size_t col = 0;
    Rational val;
  };
  using SparseRow = std::vector<Ent>;

  // `hint`: optional crash basis (see IlpProblem::set_basis_hint) —
  // ordered (row, structural column) pairs. Hinted rows are built
  // without an artificial; after the row pass the tableau is reduced to
  // the hinted basis by one elimination per hint (in hint order, so a
  // children-before-parents tree order keeps each pivot cell at its
  // original +-1 coefficient). Only valid without `extra` rows: branch
  // rows may be violated by the crash solution.
  Simplex(std::size_t num_vars, const std::vector<IlpProblem::Row>& base,
          const std::vector<IlpProblem::Row>& extra, const std::vector<Rational>& objective,
          const std::vector<std::pair<int, int>>* hint = nullptr)
      : n_(num_vars), objective_(objective) {
    m_ = base.size() + extra.size();
    std::vector<int> hint_col;
    if (hint != nullptr && !hint->empty()) {
      WCET_CHECK(extra.empty(), "crash basis requires a branch-row-free system");
      hint_col.assign(m_, -1);
      for (const auto& [row, var] : *hint) {
        hint_col[static_cast<std::size_t>(row)] = var;
      }
    }
    const auto hinted = [&](std::size_t r) {
      return !hint_col.empty() && hint_col[r] >= 0;
    };
    const auto row_at = [&](std::size_t r) -> const IlpProblem::Row& {
      return r < base.size() ? base[r] : extra[r - base.size()];
    };
    // Normalization to rhs >= 0 happens on the fly (a negative-rhs row
    // is built with negated coefficients and a flipped comparison), so
    // the caller's rows are never copied.
    const auto flipped_cmp = [](const IlpProblem::Row& row) {
      if (!row.rhs.is_negative()) return row.cmp;
      if (row.cmp == Cmp::le) return Cmp::ge;
      if (row.cmp == Cmp::ge) return Cmp::le;
      return Cmp::eq;
    };

    // Column layout: [structural n][slack/surplus per row][artificial
    // per row as needed]; the rhs lives in its own vector.
    std::size_t num_slack = 0;
    num_art_ = 0;
    for (std::size_t r = 0; r < m_; ++r) {
      const Cmp cmp = flipped_cmp(row_at(r));
      if (cmp != Cmp::eq) ++num_slack;
      if (cmp != Cmp::le && !hinted(r)) ++num_art_;
    }
    cols_ = n_ + num_slack + num_art_;
    is_artificial_.assign(cols_, false);
    mat_.resize(m_);
    rhs_.resize(m_);
    basis_.resize(m_);
    obj_.assign(cols_, Rational(0));

    std::vector<LinTerm> terms; // sort scratch, reused across rows
    std::size_t next_slack = n_;
    std::size_t next_art = n_ + num_slack;
    for (std::size_t r = 0; r < m_; ++r) {
      const IlpProblem::Row& row = row_at(r);
      const bool flip = row.rhs.is_negative();
      const Cmp cmp = flipped_cmp(row);
      // Sort and combine the structural terms (duplicate variables add up,
      // exactly as the former dense accumulation did; exact addition is
      // order-independent). Slack/artificial columns follow the
      // structural block, so appending them keeps the row sorted.
      terms.assign(row.terms.begin(), row.terms.end());
      std::sort(terms.begin(), terms.end(),
                [](const LinTerm& a, const LinTerm& b) { return a.var < b.var; });
      SparseRow& sr = mat_[r];
      for (const LinTerm& t : terms) {
        const Rational coeff = flip ? -t.coeff : t.coeff;
        if (!sr.empty() && sr.back().col == static_cast<std::size_t>(t.var)) {
          sr.back().val += coeff;
        } else {
          sr.push_back({static_cast<std::size_t>(t.var), coeff});
        }
      }
      sr.erase(std::remove_if(sr.begin(), sr.end(),
                              [](const Ent& e) { return e.val.is_zero(); }),
               sr.end());
      rhs_[r] = flip ? -row.rhs : row.rhs;
      switch (cmp) {
      case Cmp::le:
        sr.push_back({next_slack, Rational(1)});
        basis_[r] = next_slack++;
        break;
      case Cmp::ge:
        sr.push_back({next_slack, Rational(-1)});
        ++next_slack;
        sr.push_back({next_art, Rational(1)});
        is_artificial_[next_art] = true;
        basis_[r] = next_art++;
        break;
      case Cmp::eq:
        if (hinted(r)) {
          // Crash basis: the basic column is installed by the
          // elimination pass below; no artificial is created.
          basis_[r] = static_cast<std::size_t>(hint_col[r]);
          break;
        }
        sr.push_back({next_art, Rational(1)});
        is_artificial_[next_art] = true;
        basis_[r] = next_art++;
        break;
      }
    }

    if (!hint_col.empty()) {
      // Reduce to the hinted basis: one targeted elimination per hint.
      // This is the whole price of the crash start — there is no column
      // selection, no ratio test and no objective pricing, and a tree
      // order keeps fill-in at the network-simplex cut structure.
      for (const auto& [row, var] : *hint) {
        crash_eliminate(static_cast<std::size_t>(row), static_cast<std::size_t>(var));
      }
      crash_rows_ = hint->size();
      for (std::size_t r = 0; r < m_; ++r) {
        // The caller promised a feasible start: slack- and crash-basic
        // rows must come out with a nonnegative right-hand side (rows
        // still owning an artificial are phase 1's business and start
        // at rhs >= 0 by the flip normalization, which the eliminations
        // preserve only for rows they leave untouched — so check them
        // too; a redundant row reduces to exactly zero).
        WCET_CHECK(!rhs_[r].is_negative(), "crash basis start is primal-infeasible");
      }
    }
  }

  std::size_t crash_rows() const { return crash_rows_; }

  // Two-phase primal solve from scratch.
  Status solve() {
    const Status feasible = phase1();
    if (feasible != Status::optimal) return feasible;
    return phase2();
  }

  // Swap in a different objective before phase2(). Valid on a tableau
  // that finished phase 1: phase 1 never reads the objective, so the
  // same feasible basis serves any number of senses.
  void install_objective(std::vector<Rational> objective) { objective_ = std::move(objective); }

  // Phase 1: find a feasible basis (drive the artificials to zero).
  // Returns optimal when a feasible basis is ready for phase 2. The
  // wrapper attributes every pivot spent inside to the phase-1 counter
  // (the remainder of the shared pivot counter is phase-2/warm work).
  Status phase1() {
    const std::uint64_t start = pivot_count_ != nullptr ? *pivot_count_ : 0;
    const Status status = phase1_impl();
    if (phase1_pivots_ != nullptr && pivot_count_ != nullptr) {
      *phase1_pivots_ += *pivot_count_ - start;
    }
    return status;
  }

  Status phase1_impl() {
    if (num_art_ > 0) {
      // Phase 1: maximize -(sum of artificials) == drive them to zero.
      for (std::size_t c = 0; c < cols_; ++c) {
        obj_[c] = is_artificial_[c] ? Rational(-1) : Rational(0);
      }
      obj_rhs_ = Rational(0);
      // Price out the artificial basic columns.
      for (std::size_t r = 0; r < m_; ++r) {
        if (!is_artificial_[basis_[r]]) continue;
        for (const Ent& e : mat_[r]) obj_[e.col] += e.val;
        obj_rhs_ += rhs_[r];
      }
      const Status feasibility = primal(true);
      WCET_CHECK(feasibility != Status::unbounded, "phase-1 LP cannot be unbounded");
      // Pivot exhaustion mid-phase-1 must not be mistaken for
      // infeasibility (a nonzero artificial sum merely means "not done").
      if (feasibility == Status::pivot_limit) return feasibility;
      if (!obj_rhs_.is_zero()) return Status::infeasible;
      // Pivot any artificial still in the basis (at value zero) out.
      for (std::size_t r = 0; r < m_; ++r) {
        if (!is_artificial_[basis_[r]]) continue;
        std::size_t enter = cols_;
        for (const Ent& e : mat_[r]) { // entries ascend: first real column
          if (!is_artificial_[e.col] && !e.val.is_zero()) {
            enter = e.col;
            break;
          }
        }
        if (enter != cols_) pivot(r, enter);
        // Otherwise the row is all-zero over real columns: redundant
        // row; the artificial stays basic at value zero, harmless.
      }
      // Artificial columns are barred from re-entering the basis, and
      // from here on no pivot rule ever reads an artificial cell: they
      // only inflate every subsequent row update. Dropping their stored
      // entries frees that memory and work without touching a single
      // decision the solver makes.
      for (SparseRow& row : mat_) {
        row.erase(std::remove_if(row.begin(), row.end(),
                                 [&](const Ent& e) { return is_artificial_[e.col]; }),
                  row.end());
      }
    }
    return Status::optimal;
  }

  Status phase2() {
    // Phase 2: maximize the real objective. The objective row holds
    // c_j - z_j; start from c and price out basic columns. Artificial
    // columns are barred from entering the basis: blocking at the pivot
    // rule is the only robust way — any objective-row penalty on them
    // gets rewritten by pricing.
    for (std::size_t c = 0; c < cols_; ++c) {
      obj_[c] = c < n_ ? objective_[c] : Rational(0);
    }
    obj_rhs_ = Rational(0);
    for (std::size_t r = 0; r < m_; ++r) {
      const Rational cb = basis_[r] < n_ ? objective_[basis_[r]] : Rational(0);
      if (cb.is_zero()) continue;
      for (const Ent& e : mat_[r]) obj_[e.col].sub_mul(cb, e.val);
      obj_rhs_.sub_mul(cb, rhs_[r]);
    }
    return primal(false);
  }

  // Warm start: append `row` to an optimal tableau and re-optimize with
  // the dual simplex. Only inequality rows are supported (branch & bound
  // emits single-variable bounds). Returns `stalled` if the dual
  // iteration hits its safety limit; the caller then re-solves cold.
  Status reoptimize_with_row(const IlpProblem::Row& row) {
    // Convert to <= form (possibly with negative rhs — that is the
    // primal infeasibility the dual simplex repairs).
    WCET_CHECK(row.cmp != Cmp::eq, "warm start supports inequality rows only");
    const bool flip = row.cmp == Cmp::ge;
    // New slack column for the appended row; existing sparse rows hold a
    // structural zero there, so only the bookkeeping vectors grow.
    obj_.emplace_back(0);
    is_artificial_.push_back(false);
    const std::size_t slack_col = cols_++;

    std::vector<Rational> new_row(cols_); // dense scratch for the one new row
    for (const auto& t : row.terms) {
      const auto c = static_cast<std::size_t>(t.var);
      if (flip) new_row[c] -= t.coeff;
      else new_row[c] += t.coeff;
    }
    new_row[slack_col] = Rational(1);
    Rational new_rhs = flip ? -row.rhs : row.rhs;

    // Express the row in the current basis: eliminate every basic
    // column (each tableau row is a unit vector in its basic column).
    for (std::size_t r = 0; r < m_; ++r) {
      const Rational factor = new_row[basis_[r]];
      if (factor.is_zero()) continue;
      for (const Ent& e : mat_[r]) new_row[e.col].sub_mul(factor, e.val);
      new_rhs.sub_mul(factor, rhs_[r]);
    }
    SparseRow compressed;
    for (std::size_t c = 0; c < cols_; ++c) {
      if (!new_row[c].is_zero()) compressed.push_back({c, std::move(new_row[c])});
    }
    mat_.push_back(std::move(compressed));
    rhs_.push_back(std::move(new_rhs));
    basis_.push_back(slack_col);
    ++m_;
    return dual();
  }

  LpSolution extract() const {
    LpSolution s;
    s.status = LpSolution::Status::optimal;
    s.values.assign(n_, Rational(0));
    for (std::size_t r = 0; r < m_; ++r) {
      if (basis_[r] < n_) s.values[basis_[r]] = rhs_[r];
    }
    s.objective = Rational(0);
    for (std::size_t j = 0; j < n_; ++j) {
      if (!objective_[j].is_zero()) s.objective += objective_[j] * s.values[j];
    }
    s.tableau_rows = m_;
    s.tableau_cols = cols_;
    for (std::size_t r = 0; r < m_; ++r) s.tableau_nnz += mat_[r].size();
    return s;
  }

private:
  Status primal(bool allow_artificials) {
    int degenerate_streak = 0;
    for (;;) {
      if (pivots_exhausted()) return Status::pivot_limit;
      // Entering column: Dantzig's rule (largest reduced cost) while
      // progress is healthy, Bland's rule (first eligible) after a
      // degenerate streak — Bland cannot cycle, so termination holds.
      std::size_t enter = cols_;
      if (degenerate_streak < k_bland_switch) {
        for (std::size_t c = 0; c < cols_; ++c) {
          if (!allow_artificials && is_artificial_[c]) continue;
          if (!obj_[c].is_positive()) continue;
          if (enter == cols_ || obj_[enter] < obj_[c]) enter = c;
        }
      } else {
        for (std::size_t c = 0; c < cols_; ++c) {
          if (!allow_artificials && is_artificial_[c]) continue;
          if (obj_[c].is_positive()) {
            enter = c;
            break;
          }
        }
      }
      if (enter == cols_) return Status::optimal;

      // One sweep serves both the ratio test (row with the smallest
      // rhs/coefficient ratio leaves; ties break towards the smallest
      // basic variable, Bland) and the pivot's candidate-row collection
      // — every row with a nonzero entering-column entry is remembered
      // with its coefficient so the pivot does not search them again.
      std::size_t leave = m_;
      Rational best_ratio;
      cand_.clear();
      for (std::size_t r = 0; r < m_; ++r) {
        const Rational* ap = find_coeff(mat_[r], enter);
        if (ap == nullptr || ap->is_zero()) continue;
        cand_.push_back({r, *ap});
        if (!ap->is_positive()) continue;
        const Rational& a = *ap;
        // 0/a == 0 exactly; degenerate rows dominate flow systems, so
        // skipping the rational division there is a real saving.
        const Rational ratio = rhs_[r].is_zero() ? Rational(0) : rhs_[r] / a;
        if (leave == m_ || ratio < best_ratio ||
            (ratio == best_ratio && basis_[r] < basis_[leave])) {
          leave = r;
          best_ratio = ratio;
        }
      }
      if (leave == m_) return Status::unbounded;
      degenerate_streak = best_ratio.is_zero() ? degenerate_streak + 1 : 0;
      pivot_collected(leave, enter);
    }
  }

  // Dual simplex: restores primal feasibility (negative rhs entries)
  // while keeping the objective row dual-feasible. Used after warm-start
  // row additions.
  Status dual() {
    const std::size_t iteration_limit = 4 * (m_ + cols_) + 100;
    for (std::size_t iter = 0; iter < iteration_limit; ++iter) {
      // Pivot exhaustion reuses the stall path: the caller falls back to
      // a cold solve, which immediately reports pivot_limit itself (the
      // counter is shared), so no pivots are wasted re-discovering it.
      if (pivots_exhausted()) return Status::stalled;
      // Leaving row: most negative rhs (ties to the smallest row).
      std::size_t leave = m_;
      for (std::size_t r = 0; r < m_; ++r) {
        if (!rhs_[r].is_negative()) continue;
        if (leave == m_ || rhs_[r] < rhs_[leave]) leave = r;
      }
      if (leave == m_) return Status::optimal;

      // Entering column: minimize obj_c / a_c over negative pivot-row
      // entries (both numerator and denominator are <= 0, so the ratio
      // is >= 0); ties break towards the smallest column index — the
      // sparse row's entries ascend, matching the former dense scan.
      std::size_t enter = cols_;
      Rational best_num, best_den; // compare obj_e/a_e < obj_c/a_c cross-multiplied
      for (const Ent& e : mat_[leave]) {
        if (is_artificial_[e.col]) continue;
        const Rational& a = e.val;
        if (!a.is_negative()) continue;
        if (enter == cols_) {
          enter = e.col;
          best_num = obj_[e.col];
          best_den = a;
          continue;
        }
        // obj_c / a_c < obj_e / a_e  <=>  obj_c * a_e < obj_e * a_c
        // (multiplying by the negative denominators flips twice).
        if (obj_[e.col] * best_den < best_num * a) {
          enter = e.col;
          best_num = obj_[e.col];
          best_den = a;
        }
      }
      if (enter == cols_) return Status::infeasible; // no way to repair the row
      pivot(leave, enter);
    }
    return Status::stalled;
  }

  // Binary search for a row's entry at `col`; null when the cell is a
  // structural zero.
  static const Rational* find_coeff(const SparseRow& row, std::size_t col) {
    const auto it = std::lower_bound(
        row.begin(), row.end(), col,
        [](const Ent& e, std::size_t c) { return e.col < c; });
    return (it != row.end() && it->col == col) ? &it->val : nullptr;
  }

  // row -= factor * prow. When every pivot-row column is already stored
  // in the row (the common case once fill-in stabilizes), the update is
  // in place: nnz(prow) galloping lookups and sub_muls, no copying —
  // the same work the dense update did. Cells that cancel to exact zero
  // then simply stay stored, like a dense cell holding zero. Only when
  // the pivot row introduces new columns is the row rebuilt by one
  // sorted merge, which also scrubs the stored zeros again — simplex on
  // flow-conservation systems cancels constantly, and that scrub is
  // what keeps the tableau sparse across pivots. A stored zero and an
  // absent entry are indistinguishable to every pivot rule (each tests
  // values, never presence), so the arithmetic and the pivot sequence
  // stay bit-identical with the former dense tableau.
  void row_sub_scaled(std::size_t r, const Rational& factor, const SparseRow& prow) {
    SparseRow& row = mat_[r];
    std::size_t missing = 0;
    {
      auto it = row.begin();
      for (const Ent& pe : prow) {
        it = std::lower_bound(it, row.end(), pe.col,
                              [](const Ent& e, std::size_t c) { return e.col < c; });
        if (it != row.end() && it->col == pe.col) {
          it->val.sub_mul(factor, pe.val);
          ++it;
        } else {
          ++missing;
        }
      }
    }
    if (missing == 0) return;

    // Splice the new columns in; shared columns were updated above.
    scratch_.clear();
    scratch_.reserve(row.size() + missing);
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < row.size() || j < prow.size()) {
      if (j == prow.size() || (i < row.size() && row[i].col < prow[j].col)) {
        if (!row[i].val.is_zero()) scratch_.push_back(std::move(row[i]));
        ++i;
      } else if (i == row.size() || prow[j].col < row[i].col) {
        Rational v(0);
        v.sub_mul(factor, prow[j].val);
        if (!v.is_zero()) scratch_.push_back({prow[j].col, std::move(v)});
        ++j;
      } else {
        if (!row[i].val.is_zero()) scratch_.push_back(std::move(row[i]));
        ++i;
        ++j;
      }
    }
    row.swap(scratch_); // scratch_ keeps the old storage for reuse
  }

  // Constructor-time basis installation: identical row arithmetic to
  // pivot(), but no objective-row update (nothing is priced yet), no
  // pivot counter charge, and no candidate sweep — the pivot cell is
  // named by the crash-basis hint, not searched for.
  void crash_eliminate(std::size_t pr, std::size_t pc) {
    SparseRow& prow = mat_[pr];
    const Rational* pv = find_coeff(prow, pc);
    WCET_CHECK(pv != nullptr && !pv->is_zero(), "crash-basis hint names a zero tableau cell");
    const Rational inv = Rational(1) / *pv;
    for (Ent& e : prow) e.val *= inv;
    rhs_[pr] *= inv;
    for (std::size_t r = 0; r < m_; ++r) {
      if (r == pr) continue;
      const Rational* fp = find_coeff(mat_[r], pc);
      if (fp == nullptr || fp->is_zero()) continue;
      const Rational factor = *fp; // copy: the row update invalidates fp
      row_sub_scaled(r, factor, prow);
      rhs_[r].sub_mul(factor, rhs_[pr]);
    }
    basis_[pr] = pc;
  }

  void pivot(std::size_t pr, std::size_t pc) {
    SparseRow& prow = mat_[pr];
    const Rational inv = Rational(1) / *find_coeff(prow, pc);
    for (Ent& e : prow) e.val *= inv;
    rhs_[pr] *= inv;

    for (std::size_t r = 0; r < m_; ++r) {
      if (r == pr) continue;
      const Rational* fp = find_coeff(mat_[r], pc);
      if (fp == nullptr || fp->is_zero()) continue;
      const Rational factor = *fp; // copy: the row update invalidates fp
      row_sub_scaled(r, factor, prow);
      rhs_[r].sub_mul(factor, rhs_[pr]);
    }
    finish_pivot(pr, pc);
  }

  // Pivot with the candidate rows (and their entering-column
  // coefficients) already collected by the ratio-test sweep: identical
  // arithmetic to pivot(), minus the second search over every row.
  void pivot_collected(std::size_t pr, std::size_t pc) {
    SparseRow& prow = mat_[pr];
    const Rational inv = [&] {
      for (const auto& [r, a] : cand_) {
        if (r == pr) return Rational(1) / a;
      }
      WCET_CHECK(false, "pivot row missing from candidate sweep");
      return Rational(1);
    }();
    for (Ent& e : prow) e.val *= inv;
    rhs_[pr] *= inv;

    for (const auto& [r, factor] : cand_) {
      if (r == pr) continue;
      row_sub_scaled(r, factor, prow);
      rhs_[r].sub_mul(factor, rhs_[pr]);
    }
    finish_pivot(pr, pc);
  }

  bool pivots_exhausted() const {
    return pivot_limit_ != 0 && pivot_count_ != nullptr && *pivot_count_ >= pivot_limit_;
  }

  void finish_pivot(std::size_t pr, std::size_t pc) {
    if (pivot_count_ != nullptr) {
      ++*pivot_count_;
      if (governor_ != nullptr && (*pivot_count_ & 63u) == 0) governor_->check_cancel();
    }
    const SparseRow& prow = mat_[pr];
    const Rational factor = obj_[pc];
    if (!factor.is_zero()) {
      for (const Ent& e : prow) obj_[e.col].sub_mul(factor, e.val);
      obj_rhs_.sub_mul(factor, rhs_[pr]);
    }
    basis_[pr] = pc;
  }

  std::size_t n_ = 0;
  std::size_t m_ = 0;
  std::size_t cols_ = 0;
  std::size_t num_art_ = 0;
  const AnalysisGovernor* governor_ = nullptr;
  std::uint64_t* pivot_count_ = nullptr; // shared across warm-start clones
  std::uint64_t pivot_limit_ = 0;        // 0 = unlimited
  std::uint64_t* phase1_pivots_ = nullptr; // phase-1 share of pivot_count_
  std::size_t crash_rows_ = 0;             // hinted rows installed at construction
  std::vector<Rational> objective_; // structural objective coefficients
  std::vector<SparseRow> mat_;
  std::vector<Rational> rhs_;
  std::vector<Rational> obj_; // reduced-cost row (dense: one row)
  Rational obj_rhs_;
  std::vector<std::size_t> basis_;
  std::vector<bool> is_artificial_;
  SparseRow scratch_; // merge target recycled across pivots
  std::vector<std::pair<std::size_t, Rational>> cand_; // ratio-sweep candidates
};

LpSolution status_only(LpSolution::Status status) {
  LpSolution s;
  s.status = status;
  return s;
}

// Branch & bound from a primal-optimal root tableau, best-bound order
// with ceil-first diving. After branching, the ceil child is *dived*
// immediately: its single branch row is appended to the live parent
// tableau and re-optimized with the dual simplex — one row, one warm
// re-solve per dive step. Floor siblings go onto the best-bound queue;
// when popped they rebuild warm from a copy of the root-optimal tableau
// by replaying their branch-row path (still dual re-solves, never
// two-phase-from-scratch). `cold` re-solves a node's relaxation from
// scratch under the same objective as `root` (stall fallback).
//
// Resource exhaustion (node or pivot limit) never silently returns the
// incumbent as `optimal`: every subtree truncated by a limit donates
// its tightest known relaxation bound to a frontier maximum, and the
// result is a `degraded` solution whose objective is a *proven* upper
// bound on the true optimum — max(incumbent, truncated subtree bounds,
// remaining open-node bounds). Sound for both senses: for the
// alternate (negated, minimizing) objective an upper bound on -cost is
// a lower bound on cost.
template <typename ColdSolve>
LpSolution branch_and_bound(Simplex& root, const LpSolution& root_solution, int num_variables,
                            const SolveLimits& limits, const ColdSolve& cold) {
  using Row = IlpProblem::Row;
  struct Node {
    std::vector<Row> extra; // branch rows on the path from the root
    Rational bound;         // parent relaxation objective (upper bound)
    std::uint64_t seq = 0;  // FIFO tie-break
  };
  const auto worse = [](const Node& a, const Node& b) {
    if (a.bound != b.bound) return a.bound < b.bound;
    return a.seq > b.seq;
  };
  std::priority_queue<Node, std::vector<Node>, decltype(worse)> open(worse);
  std::uint64_t seq = 0;
  open.push(Node{{}, root_solution.objective, seq++});

  LpSolution best = status_only(LpSolution::Status::infeasible);
  const int node_limit = limits.node_limit;
  int nodes_used = 0;
  bool hit_limit = false;
  // Tightest upper bound covering every subtree a limit truncated.
  std::optional<Rational> truncated;
  const auto note_truncated = [&](const Rational& bound) {
    if (!truncated || *truncated < bound) truncated = bound;
  };

  const auto first_fractional = [&](const LpSolution& s) {
    for (int j = 0; j < num_variables; ++j) {
      if (!s.values[static_cast<std::size_t>(j)].is_integer()) return j;
    }
    return -1;
  };

  while (!open.empty() && !hit_limit) {
    Node node = open.top();
    open.pop();
    if (best.ok() && node.bound <= best.objective) continue; // bound
    if (nodes_used >= node_limit) {
      hit_limit = true;
      note_truncated(node.bound);
      break;
    }
    if (limits.governor != nullptr) limits.governor->check_cancel();
    WCET_FAULT_POINT("bnb:node");
    ++nodes_used;
    // Tightest proven bound for the subtree under exploration; refined
    // every time a relaxation solves, charged to the frontier whenever
    // a limit cuts the subtree off.
    Rational subtree_bound = node.bound;

    // Rebuild this node's relaxation warm from the root tableau. The
    // copy is lazy: the root node itself (empty path — the common
    // no-branching case) reuses the stored root solution and only
    // materializes a tableau copy if it actually has to dive.
    LpSolution relax;
    std::optional<Simplex> warm;
    bool warm_live = true; // false once the live tableau diverged from `relax`
    if (node.extra.empty()) {
      relax = root_solution;
    } else {
      warm = root;
      Simplex::Status status = Simplex::Status::optimal;
      for (const Row& row : node.extra) {
        status = warm->reoptimize_with_row(row);
        if (status != Simplex::Status::optimal) break;
      }
      switch (status) {
      case Simplex::Status::optimal: relax = warm->extract(); break;
      case Simplex::Status::infeasible: continue;
      case Simplex::Status::unbounded: return status_only(LpSolution::Status::unbounded);
      case Simplex::Status::stalled:
      case Simplex::Status::pivot_limit:
        // Dual iteration hit its safety limit: fall back to an exact
        // cold solve; the live tableau is no longer usable for diving.
        // (With an exhausted pivot budget the cold solve reports
        // pivot_limit right away; the dive loop charges the frontier.)
        relax = cold(node.extra);
        warm_live = false;
        break;
      }
    }

    // Dive: follow ceil branches on the live tableau while profitable,
    // queueing each floor sibling for best-bound exploration.
    for (;;) {
      if (relax.status == LpSolution::Status::unbounded) return relax;
      if (relax.status == LpSolution::Status::pivot_limit) {
        // Ran out of pivots inside this subtree: its tightest known
        // relaxation bound stands in for everything unexplored below.
        hit_limit = true;
        note_truncated(subtree_bound);
        break;
      }
      if (!relax.ok()) break;
      subtree_bound = relax.objective;
      if (best.ok() && relax.objective <= best.objective) break; // bound
      const int frac_var = first_fractional(relax);
      if (frac_var < 0) {
        best = std::move(relax); // improved integral incumbent
        break;
      }
      const Rational v = relax.values[static_cast<std::size_t>(frac_var)];
      const Row up{{{frac_var, Rational(1)}}, Cmp::ge, Rational(v.ceil64())};
      const Row down{{{frac_var, Rational(1)}}, Cmp::le, Rational(v.floor64())};
      Node sibling{node.extra, relax.objective, seq++};
      sibling.extra.push_back(down);
      open.push(std::move(sibling));
      node.extra.push_back(up);
      if (!warm_live) {
        // No live tableau to extend: queue the ceil child instead.
        open.push(Node{std::move(node.extra), relax.objective, seq++});
        break;
      }
      if (nodes_used >= node_limit) {
        hit_limit = true;
        // The ceil child is unexplored; its parent relaxation bounds it
        // (the floor sibling is already on the open queue).
        note_truncated(subtree_bound);
        break;
      }
      if (limits.governor != nullptr) limits.governor->check_cancel();
      WCET_FAULT_POINT("bnb:node");
      ++nodes_used;
      if (!warm) warm = root; // first dive from the root node's own path
      const Simplex::Status status = warm->reoptimize_with_row(up);
      if (status == Simplex::Status::infeasible) break;
      if (status == Simplex::Status::unbounded) return status_only(LpSolution::Status::unbounded);
      if (status == Simplex::Status::stalled || status == Simplex::Status::pivot_limit) {
        relax = cold(node.extra);
        warm_live = false;
        continue;
      }
      relax = warm->extract();
    }
  }

  best.nodes_used = nodes_used;
  if (!hit_limit) return best;

  // A limit fired. Fold the remaining open frontier into the truncation
  // bound; if nothing unexplored can beat the incumbent, the incumbent
  // is in fact proven optimal and the limit was harmless.
  while (!open.empty()) {
    note_truncated(open.top().bound);
    open.pop();
  }
  if (best.ok() && (!truncated || *truncated <= best.objective)) return best;
  if (!best.ok() && !truncated) {
    // No incumbent and no truncated subtree bound: nothing provable.
    return status_only(LpSolution::Status::node_limit);
  }
  LpSolution out = status_only(LpSolution::Status::degraded);
  out.nodes_used = nodes_used;
  out.objective = best.ok() && *truncated < best.objective ? best.objective : *truncated;
  return out;
}

} // namespace

LpSolution IlpProblem::solve_lp() const { return solve_lp_with({}, objective_); }

LpSolution IlpProblem::solve_lp_with(const std::vector<Row>& extra,
                                     const std::vector<Rational>& objective,
                                     const SolveLimits* limits, std::uint64_t* pivots,
                                     std::uint64_t* phase1_pivots) const {
  // The crash basis only seeds branch-row-free systems: an appended
  // branch bound may be violated by the crash solution, so cold
  // re-solves inside branch & bound run the ordinary two-phase method.
  const bool crash = !basis_hint_.empty() && extra.empty();
  // Count pivots even when the caller brought no shared counter, so
  // every solve reports its phase split.
  std::uint64_t local_pivots = 0;
  std::uint64_t local_phase1 = 0;
  if (pivots == nullptr) pivots = &local_pivots;
  if (phase1_pivots == nullptr) phase1_pivots = &local_phase1;
  Simplex simplex(static_cast<std::size_t>(num_variables()), rows_, extra, objective,
                  crash ? &basis_hint_ : nullptr);
  simplex.set_limits(limits != nullptr ? limits->governor : nullptr, pivots,
                     limits != nullptr ? limits->pivot_limit : 0, phase1_pivots);
  const auto finish = [&](LpSolution s) {
    s.pivots_used = *pivots;
    s.phase1_pivots = *phase1_pivots;
    s.phase2_pivots = *pivots - *phase1_pivots;
    s.crash_basis_rows = simplex.crash_rows();
    return s;
  };
  switch (simplex.solve()) {
  case Simplex::Status::optimal: return finish(simplex.extract());
  case Simplex::Status::infeasible: return finish(status_only(LpSolution::Status::infeasible));
  case Simplex::Status::unbounded: return finish(status_only(LpSolution::Status::unbounded));
  case Simplex::Status::pivot_limit:
    return finish(status_only(LpSolution::Status::pivot_limit));
  case Simplex::Status::stalled: break; // unreachable: primal never stalls
  }
  WCET_CHECK(false, "simplex returned an impossible status");
  return status_only(LpSolution::Status::infeasible);
}

LpSolution IlpProblem::solve_ilp(int node_limit) const {
  SolveLimits limits;
  limits.node_limit = node_limit;
  return solve_ilp(limits);
}

LpSolution IlpProblem::solve_ilp(const SolveLimits& limits) const {
  WCET_FAULT_POINT("ilp:solve");
  // Root relaxation solved cold (two-phase, or straight into phase 2
  // off a crash basis), then branch & bound. The pivot budget is
  // charged to one counter shared by the root tableau, every
  // warm-start clone, and every cold fallback of this solve; the
  // phase-1 accumulator collects the feasibility share across all of
  // them.
  std::uint64_t pivots = 0;
  std::uint64_t phase1_pivots = 0;
  const auto n = static_cast<std::size_t>(num_variables());
  Simplex root(n, rows_, {}, objective_, basis_hint_.empty() ? nullptr : &basis_hint_);
  root.set_limits(limits.governor, &pivots, limits.pivot_limit, &phase1_pivots);
  const auto finish = [&](LpSolution s) {
    s.pivots_used = pivots;
    s.phase1_pivots = phase1_pivots;
    s.phase2_pivots = pivots - phase1_pivots;
    s.crash_basis_rows = root.crash_rows();
    return s;
  };
  switch (root.solve()) {
  case Simplex::Status::optimal: break;
  case Simplex::Status::infeasible: return finish(status_only(LpSolution::Status::infeasible));
  case Simplex::Status::unbounded: return finish(status_only(LpSolution::Status::unbounded));
  case Simplex::Status::pivot_limit:
    // The root relaxation never finished: no bound of any kind exists.
    return finish(status_only(LpSolution::Status::pivot_limit));
  case Simplex::Status::stalled: WCET_CHECK(false, "primal simplex cannot stall");
  }
  const LpSolution root_solution = root.extract();
  return finish(branch_and_bound(root, root_solution, num_variables(), limits,
                                 [&](const std::vector<Row>& extra) {
                                   return solve_lp_with(extra, objective_, &limits, &pivots,
                                                        &phase1_pivots);
                                 }));
}

std::pair<LpSolution, LpSolution>
IlpProblem::solve_ilp_pair(const std::vector<Rational>& alt_objective, int node_limit) const {
  SolveLimits limits;
  limits.node_limit = node_limit;
  return solve_ilp_pair(alt_objective, limits);
}

std::pair<LpSolution, LpSolution>
IlpProblem::solve_ilp_pair(const std::vector<Rational>& alt_objective,
                           const SolveLimits& limits) const {
  WCET_CHECK(alt_objective.size() == objective_.size(),
             "alternate objective must cover every variable");
  WCET_FAULT_POINT("ilp:solve");
  // One pivot budget covers the whole pair (shared phase 1 plus both
  // senses): the pair is one solve from the caller's point of view.
  std::uint64_t pivots = 0;
  std::uint64_t phase1_pivots = 0;
  const auto n = static_cast<std::size_t>(num_variables());
  Simplex base(n, rows_, {}, objective_, basis_hint_.empty() ? nullptr : &basis_hint_);
  base.set_limits(limits.governor, &pivots, limits.pivot_limit, &phase1_pivots);
  const Simplex::Status feasible = base.phase1();
  if (feasible == Simplex::Status::infeasible) {
    return {status_only(LpSolution::Status::infeasible),
            status_only(LpSolution::Status::infeasible)};
  }
  if (feasible == Simplex::Status::pivot_limit) {
    return {status_only(LpSolution::Status::pivot_limit),
            status_only(LpSolution::Status::pivot_limit)};
  }
  // Snapshot the feasible basis before either phase 2 reshapes it; the
  // alternate sense restarts from here instead of repeating phase 1.
  Simplex alt = base;
  alt.install_objective(alt_objective);

  const auto run = [&](Simplex& root, const std::vector<Rational>& objective) -> LpSolution {
    switch (root.phase2()) {
    case Simplex::Status::optimal: break;
    case Simplex::Status::infeasible: return status_only(LpSolution::Status::infeasible);
    case Simplex::Status::unbounded: return status_only(LpSolution::Status::unbounded);
    case Simplex::Status::pivot_limit: return status_only(LpSolution::Status::pivot_limit);
    case Simplex::Status::stalled: WCET_CHECK(false, "primal simplex cannot stall");
    }
    const LpSolution root_solution = root.extract();
    return branch_and_bound(root, root_solution, num_variables(), limits,
                            [&](const std::vector<Row>& extra) {
                              return solve_lp_with(extra, objective, &limits, &pivots,
                                                   &phase1_pivots);
                            });
  };
  LpSolution primary = run(base, objective_);
  LpSolution alternate = run(alt, alt_objective);
  primary.pivots_used = pivots;
  alternate.pivots_used = pivots;
  primary.phase1_pivots = phase1_pivots;
  alternate.phase1_pivots = phase1_pivots;
  primary.phase2_pivots = pivots - phase1_pivots;
  alternate.phase2_pivots = pivots - phase1_pivots;
  primary.crash_basis_rows = base.crash_rows();
  alternate.crash_basis_rows = base.crash_rows();
  return {primary, alternate};
}

std::string IlpProblem::to_string() const {
  std::ostringstream os;
  os << "maximize";
  bool first = true;
  for (int j = 0; j < num_variables(); ++j) {
    const auto& c = objective_[static_cast<std::size_t>(j)];
    if (c.is_zero()) continue;
    os << (first ? " " : " + ") << c.to_string() << ' ' << names_[static_cast<std::size_t>(j)];
    first = false;
  }
  os << "\nsubject to\n";
  for (const auto& row : rows_) {
    bool f = true;
    for (const auto& t : row.terms) {
      os << (f ? "  " : " + ") << t.coeff.to_string() << ' '
         << names_[static_cast<std::size_t>(t.var)];
      f = false;
    }
    switch (row.cmp) {
    case Cmp::le: os << " <= "; break;
    case Cmp::ge: os << " >= "; break;
    case Cmp::eq: os << " == "; break;
    }
    os << row.rhs.to_string() << '\n';
  }
  return os.str();
}

} // namespace wcet
