#include "support/diag.hpp"

#include <sstream>

namespace wcet {

void internal_fail(const char* file, int line, const std::string& msg) {
  std::ostringstream os;
  os << "internal error at " << file << ':' << line << ": " << msg;
  throw InternalError(os.str());
}

} // namespace wcet
