#include "support/interval.hpp"

#include <algorithm>
#include <array>
#include <ostream>
#include <sstream>

#include "support/diag.hpp"

namespace wcet {

namespace {

constexpr std::int64_t k_two32 = 0x100000000ll;
constexpr std::int64_t k_smin = -0x80000000ll;
constexpr std::int64_t k_smax = 0x7FFFFFFFll;

std::int64_t to_signed64(std::int64_t unsigned_value) {
  return unsigned_value >= 0x80000000ll ? unsigned_value - k_two32 : unsigned_value;
}

} // namespace

Pred negate(Pred p) {
  switch (p) {
  case Pred::eq: return Pred::ne;
  case Pred::ne: return Pred::eq;
  case Pred::lt_s: return Pred::ge_s;
  case Pred::ge_s: return Pred::lt_s;
  case Pred::lt_u: return Pred::ge_u;
  case Pred::ge_u: return Pred::lt_u;
  }
  internal_fail(__FILE__, __LINE__, "bad Pred");
}

Pred swap_operands(Pred p) {
  switch (p) {
  case Pred::eq: return Pred::eq;
  case Pred::ne: return Pred::ne;
  // (a < b) == (b > a) == !(b <= a); we only have lt/ge, so express
  // swapped forms with the complement trick at the call site. Here we
  // return the predicate q such that a p b == b q a for the symmetric
  // ones and document the asymmetric mapping:
  //   a <s b  ==  b >s a  — not directly representable; callers use
  //   refine on both sides instead.
  case Pred::lt_s: return Pred::ge_s; // b >=s a+1 — callers adjust
  case Pred::ge_s: return Pred::lt_s;
  case Pred::lt_u: return Pred::ge_u;
  case Pred::ge_u: return Pred::lt_u;
  }
  internal_fail(__FILE__, __LINE__, "bad Pred");
}

const char* to_string(Pred p) {
  switch (p) {
  case Pred::eq: return "==";
  case Pred::ne: return "!=";
  case Pred::lt_s: return "<s";
  case Pred::ge_s: return ">=s";
  case Pred::lt_u: return "<u";
  case Pred::ge_u: return ">=u";
  }
  return "?";
}

Interval Interval::from_unsigned(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) return bottom();
  lo = std::max(lo, word_min);
  hi = std::min(hi, word_max);
  if (lo > hi) return bottom();
  return Interval(lo, hi);
}

Interval Interval::from_signed(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) return bottom();
  lo = std::max(lo, k_smin);
  hi = std::min(hi, k_smax);
  if (lo > hi) return bottom();
  if (lo >= 0) return Interval(lo, hi);
  if (hi < 0) return Interval(lo + k_two32, hi + k_two32);
  // Crosses zero: negative part wraps to the top of unsigned space, so
  // the union is not contiguous; over-approximate by the full hull that
  // covers both parts. [0, hi] ∪ [lo+2^32, 2^32-1] — hull is TOP unless
  // one side touches; keep precision by choosing the smaller hull:
  // contiguous-through-wrap is not representable, so return TOP.
  // Exception: the common case lo.. -1 .. hi with small magnitudes is
  // frequent for loop counters; the hull [0, 2^32-1] is the only sound
  // contiguous cover.
  return top();
}

Interval Interval::from_signed_clamped(std::int64_t lo, std::int64_t hi) {
  return from_signed(std::max(lo, k_smin), std::min(hi, k_smax));
}

std::optional<std::uint32_t> Interval::as_constant() const {
  if (!bottom_ && lo_ == hi_) return static_cast<std::uint32_t>(lo_);
  return std::nullopt;
}

std::int64_t Interval::smin() const {
  WCET_CHECK(!bottom_, "smin of bottom");
  // If the interval crosses the signed wrap (contains 2^31), the signed
  // minimum is -2^31; otherwise map endpoints.
  if (lo_ < 0x80000000ll && hi_ >= 0x80000000ll) return k_smin;
  return to_signed64(lo_);
}

std::int64_t Interval::smax() const {
  WCET_CHECK(!bottom_, "smax of bottom");
  if (lo_ < 0x80000000ll && hi_ >= 0x80000000ll) return k_smax;
  return to_signed64(hi_);
}

std::uint64_t Interval::size() const {
  if (bottom_) return 0;
  return static_cast<std::uint64_t>(hi_ - lo_ + 1);
}

bool Interval::contains(std::uint32_t value) const {
  if (bottom_) return false;
  const auto v = static_cast<std::int64_t>(value);
  return lo_ <= v && v <= hi_;
}

bool Interval::includes(const Interval& other) const {
  if (other.bottom_) return true;
  if (bottom_) return false;
  return lo_ <= other.lo_ && other.hi_ <= hi_;
}

bool Interval::operator==(const Interval& other) const {
  if (bottom_ || other.bottom_) return bottom_ == other.bottom_;
  return lo_ == other.lo_ && hi_ == other.hi_;
}

Interval Interval::join(const Interval& other) const {
  if (bottom_) return other;
  if (other.bottom_) return *this;
  return Interval(std::min(lo_, other.lo_), std::max(hi_, other.hi_));
}

Interval Interval::meet(const Interval& other) const {
  if (bottom_ || other.bottom_) return bottom();
  const std::int64_t lo = std::max(lo_, other.lo_);
  const std::int64_t hi = std::min(hi_, other.hi_);
  if (lo > hi) return bottom();
  return Interval(lo, hi);
}

Interval Interval::widen(const Interval& newer) const {
  if (bottom_) return newer;
  if (newer.bottom_) return *this;
  // Threshold widening: when a bound is unstable, jump to the next
  // threshold instead of straight to the word boundary. Thresholds are
  // chosen to preserve the distinctions the analyses care about (zero,
  // small loop bounds, the signed wrap point).
  static constexpr std::array<std::int64_t, 10> thresholds = {
      0ll, 1ll, 16ll, 256ll, 4096ll, 65536ll, 0x1000000ll,
      0x7FFFFFFFll, 0x80000000ll, 0xFFFFFFFFll};
  std::int64_t lo = lo_;
  std::int64_t hi = hi_;
  if (newer.lo_ < lo_) {
    lo = word_min;
    for (auto it = thresholds.rbegin(); it != thresholds.rend(); ++it) {
      if (*it <= newer.lo_) {
        lo = *it;
        break;
      }
    }
  }
  if (newer.hi_ > hi_) {
    hi = word_max;
    for (const auto t : thresholds) {
      if (t >= newer.hi_) {
        hi = t;
        break;
      }
    }
  }
  return Interval(lo, hi);
}

namespace {

// Wrap a 64-bit result range into the unsigned word window, going to TOP
// when the range straddles a wrap boundary.
Interval wrap_range(std::int64_t lo, std::int64_t hi) {
  if (hi - lo >= k_two32) return Interval::top();
  // Shift both ends by the same multiple of 2^32.
  std::int64_t shift = 0;
  if (lo < 0) {
    shift = ((-lo + k_two32 - 1) / k_two32) * k_two32;
  } else if (lo >= k_two32) {
    shift = -(lo / k_two32) * k_two32;
  }
  lo += shift;
  hi += shift;
  if (hi > Interval::word_max) return Interval::top(); // straddles wrap
  return Interval::from_unsigned(lo, hi);
}

} // namespace

Interval Interval::add(const Interval& rhs) const {
  if (bottom_ || rhs.bottom_) return bottom();
  return wrap_range(lo_ + rhs.lo_, hi_ + rhs.hi_);
}

Interval Interval::sub(const Interval& rhs) const {
  if (bottom_ || rhs.bottom_) return bottom();
  return wrap_range(lo_ - rhs.hi_, hi_ - rhs.lo_);
}

std::vector<std::pair<std::int64_t, std::int64_t>> Interval::signed_parts() const {
  std::vector<std::pair<std::int64_t, std::int64_t>> parts;
  if (bottom_) return parts;
  if (hi_ < 0x80000000ll) {
    parts.emplace_back(lo_, hi_);
  } else if (lo_ >= 0x80000000ll) {
    parts.emplace_back(lo_ - k_two32, hi_ - k_two32);
  } else {
    parts.emplace_back(lo_, k_smax);
    parts.emplace_back(k_smin, hi_ - k_two32);
  }
  return parts;
}

Interval Interval::mul(const Interval& rhs) const {
  if (bottom_ || rhs.bottom_) return bottom();
  // Multiply signed readings; the low 32 bits of the product are
  // identical for signed and unsigned interpretation, so any consistent
  // reading gives a sound range as long as no wrap occurs.
  Interval result = bottom();
  for (const auto& [alo, ahi] : signed_parts()) {
    for (const auto& [blo, bhi] : rhs.signed_parts()) {
      const __int128 c1 = static_cast<__int128>(alo) * blo;
      const __int128 c2 = static_cast<__int128>(alo) * bhi;
      const __int128 c3 = static_cast<__int128>(ahi) * blo;
      const __int128 c4 = static_cast<__int128>(ahi) * bhi;
      const __int128 lo = std::min(std::min(c1, c2), std::min(c3, c4));
      const __int128 hi = std::max(std::max(c1, c2), std::max(c3, c4));
      if (hi - lo >= k_two32) return top();
      // wrap_range on 64-bit values; product ranges fit in 128 bits and
      // the width check above guarantees a single window after shifting.
      const __int128 width = hi - lo;
      __int128 shifted_lo = lo % k_two32;
      if (shifted_lo < 0) shifted_lo += k_two32;
      const __int128 shifted_hi = shifted_lo + width;
      if (shifted_hi > word_max) return top();
      result = result.join(from_unsigned(static_cast<std::int64_t>(shifted_lo),
                                         static_cast<std::int64_t>(shifted_hi)));
    }
  }
  return result;
}

Interval Interval::div_u(const Interval& rhs) const {
  if (bottom_ || rhs.bottom_) return bottom();
  // tiny32 defines x / 0 == 0 (no trap), so a divisor range containing
  // zero contributes the value 0.
  Interval result = bottom();
  if (rhs.contains(0)) result = result.join(constant(0));
  const std::int64_t dlo = std::max<std::int64_t>(rhs.lo_, 1);
  const std::int64_t dhi = rhs.hi_;
  if (dlo <= dhi) {
    result = result.join(from_unsigned(lo_ / dhi, hi_ / dlo));
  }
  return result;
}

Interval Interval::rem_u(const Interval& rhs) const {
  if (bottom_ || rhs.bottom_) return bottom();
  // tiny32: x % 0 == x.
  Interval result = bottom();
  if (rhs.contains(0)) result = result.join(*this);
  const std::int64_t dlo = std::max<std::int64_t>(rhs.lo_, 1);
  const std::int64_t dhi = rhs.hi_;
  if (dlo <= dhi) {
    if (auto dc = rhs.as_constant(); dc && *dc != 0 && is_constant()) {
      result = result.join(constant(static_cast<std::uint32_t>(lo_) % *dc));
    } else {
      result = result.join(from_unsigned(0, std::min(hi_, dhi - 1)));
    }
  }
  return result;
}

Interval Interval::div_s(const Interval& rhs) const {
  if (bottom_ || rhs.bottom_) return bottom();
  Interval result = bottom();
  if (rhs.contains(0)) result = result.join(constant(0)); // tiny32: x /s 0 == 0
  for (const auto& [alo, ahi] : signed_parts()) {
    for (auto [blo, bhi] : rhs.signed_parts()) {
      // Remove zero from the divisor part (handled above).
      if (blo == 0 && bhi == 0) continue;
      if (blo == 0) blo = 1;
      if (bhi == 0) bhi = -1;
      if (blo > bhi) continue;
      std::int64_t lo = INT64_MAX;
      std::int64_t hi = INT64_MIN;
      for (const std::int64_t a : {alo, ahi}) {
        for (const std::int64_t b : {blo, bhi}) {
          const std::int64_t q = a / b; // C++ truncating division == tiny32 DIV
          lo = std::min(lo, q);
          hi = std::max(hi, q);
        }
      }
      // Division range over intervals is attained at corners only when
      // signs are uniform within each part — which signed_parts ensures
      // for the dividend; divisor parts may still cross zero after the
      // zero-removal above only if blo<0<bhi, handle by splitting.
      if (blo < 0 && bhi > 0) {
        for (const std::int64_t a : {alo, ahi}) {
          for (const std::int64_t b : {-1ll, 1ll}) {
            const std::int64_t q = a / b;
            lo = std::min(lo, q);
            hi = std::max(hi, q);
          }
        }
      }
      result = result.join(from_signed_clamped(lo, hi));
    }
  }
  return result;
}

Interval Interval::rem_s(const Interval& rhs) const {
  if (bottom_ || rhs.bottom_) return bottom();
  Interval result = bottom();
  if (rhs.contains(0)) result = result.join(*this); // tiny32: x %s 0 == x
  // |a %s b| < |b| and sign(a %s b) == sign(a) (or zero).
  std::int64_t max_abs_b = 0;
  for (const auto& [blo, bhi] : rhs.signed_parts()) {
    max_abs_b = std::max({max_abs_b, std::abs(blo), std::abs(bhi)});
  }
  if (max_abs_b > 0) {
    const std::int64_t bound = max_abs_b - 1;
    const std::int64_t lo = smin() < 0 ? -bound : 0;
    const std::int64_t hi = smax() > 0 ? bound : 0;
    result = result.join(from_signed_clamped(lo, hi));
  }
  return result;
}

Interval Interval::mulh_u(const Interval& rhs) const {
  if (bottom_ || rhs.bottom_) return bottom();
  const std::uint64_t lo =
      (static_cast<std::uint64_t>(lo_) * static_cast<std::uint64_t>(rhs.lo_)) >> 32;
  const std::uint64_t hi =
      (static_cast<std::uint64_t>(hi_) * static_cast<std::uint64_t>(rhs.hi_)) >> 32;
  return from_unsigned(static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi));
}

Interval Interval::shl(const Interval& amount) const {
  if (bottom_ || amount.bottom_) return bottom();
  Interval result = bottom();
  // tiny32 masks shift amounts to 5 bits.
  if (amount.size() > 32) return top();
  for (std::int64_t s = amount.lo_; s <= amount.hi_; ++s) {
    const std::int64_t k = s & 31;
    const std::int64_t lo = lo_ << k;
    const std::int64_t hi = hi_ << k;
    result = result.join(wrap_range(lo, hi));
    if (result.is_top()) return result;
  }
  return result;
}

Interval Interval::shr_u(const Interval& amount) const {
  if (bottom_ || amount.bottom_) return bottom();
  if (amount.size() > 32) return from_unsigned(0, hi_);
  Interval result = bottom();
  for (std::int64_t s = amount.lo_; s <= amount.hi_; ++s) {
    const std::int64_t k = s & 31;
    result = result.join(from_unsigned(lo_ >> k, hi_ >> k));
  }
  return result;
}

Interval Interval::shr_s(const Interval& amount) const {
  if (bottom_ || amount.bottom_) return bottom();
  if (amount.size() > 32) return top();
  Interval result = bottom();
  for (std::int64_t s = amount.lo_; s <= amount.hi_; ++s) {
    const std::int64_t k = s & 31;
    for (const auto& [plo, phi] : signed_parts()) {
      result = result.join(from_signed_clamped(plo >> k, phi >> k));
    }
  }
  return result;
}

Interval Interval::bit_and(const Interval& rhs) const {
  if (bottom_ || rhs.bottom_) return bottom();
  if (auto a = as_constant(); a && rhs.is_constant()) {
    return constant(*a & *rhs.as_constant());
  }
  // x & y <= min(x, y) for unsigned values.
  return from_unsigned(0, std::min(hi_, rhs.hi_));
}

namespace {
std::int64_t ceil_pow2_minus1(std::int64_t v) {
  std::int64_t r = 1;
  while (r - 1 < v) r <<= 1;
  return r - 1;
}
} // namespace

Interval Interval::bit_or(const Interval& rhs) const {
  if (bottom_ || rhs.bottom_) return bottom();
  if (auto a = as_constant(); a && rhs.is_constant()) {
    return constant(*a | *rhs.as_constant());
  }
  // x | y >= max(x, y); x | y < 2^ceil(log2(max+1)+...) — bound by the
  // smallest all-ones mask covering both maxima.
  const std::int64_t hi =
      std::min<std::int64_t>(word_max, ceil_pow2_minus1(std::max(hi_, rhs.hi_)));
  return from_unsigned(std::max(lo_, rhs.lo_), hi);
}

Interval Interval::bit_xor(const Interval& rhs) const {
  if (bottom_ || rhs.bottom_) return bottom();
  if (auto a = as_constant(); a && rhs.is_constant()) {
    return constant(*a ^ *rhs.as_constant());
  }
  const std::int64_t hi =
      std::min<std::int64_t>(word_max, ceil_pow2_minus1(std::max(hi_, rhs.hi_)));
  return from_unsigned(0, hi);
}

Interval Interval::compare(Pred p, const Interval& rhs) const {
  if (bottom_ || rhs.bottom_) return bottom();
  const Interval can_be_true = refine(p, rhs);
  const Interval can_be_false = refine(negate(p), rhs);
  if (can_be_false.is_bottom()) return constant(1);
  if (can_be_true.is_bottom()) return constant(0);
  return boolean();
}

Interval Interval::refine(Pred p, const Interval& rhs) const {
  if (bottom_ || rhs.bottom_) return bottom();
  switch (p) {
  case Pred::eq:
    return meet(rhs);
  case Pred::ne:
    if (auto c = rhs.as_constant()) {
      // Trim a constant from either end.
      if (lo_ == hi_ && lo_ == static_cast<std::int64_t>(*c)) return bottom();
      if (lo_ == static_cast<std::int64_t>(*c)) return Interval(lo_ + 1, hi_);
      if (hi_ == static_cast<std::int64_t>(*c)) return Interval(lo_, hi_ - 1);
    }
    return *this;
  case Pred::lt_u:
    if (rhs.hi_ == 0) return bottom(); // nothing is <u 0
    return meet(from_unsigned(word_min, rhs.hi_ - 1));
  case Pred::ge_u:
    return meet(from_unsigned(rhs.lo_, word_max));
  case Pred::lt_s: {
    // Signed refinement: this <s rhs, so signed(this) <= smax(rhs)-1.
    const std::int64_t bound = rhs.smax();
    if (bound == k_smin) return bottom();
    Interval result = bottom();
    for (const auto& [plo, phi] : signed_parts()) {
      const std::int64_t new_hi = std::min(phi, bound - 1);
      if (plo <= new_hi) result = result.join(from_signed_clamped(plo, new_hi));
    }
    return meet(result.is_bottom() ? bottom() : result);
  }
  case Pred::ge_s: {
    const std::int64_t bound = rhs.smin();
    Interval result = bottom();
    for (const auto& [plo, phi] : signed_parts()) {
      const std::int64_t new_lo = std::max(plo, bound);
      if (new_lo <= phi) result = result.join(from_signed_clamped(new_lo, phi));
    }
    return meet(result.is_bottom() ? bottom() : result);
  }
  }
  internal_fail(__FILE__, __LINE__, "bad Pred");
}

std::string Interval::to_string() const {
  if (bottom_) return "⊥";
  if (is_top()) return "⊤";
  std::ostringstream os;
  if (auto c = as_constant()) {
    os << *c;
    if (*c >= 0x80000000u) os << " (" << to_signed64(lo_) << ')';
    return os.str();
  }
  os << '[' << lo_ << ", " << hi_ << ']';
  if (hi_ >= 0x80000000ll) {
    os << " (s:[" << smin() << ", " << smax() << "])";
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Interval& iv) {
  return os << iv.to_string();
}

} // namespace wcet
