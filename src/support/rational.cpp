#include "support/rational.hpp"

#include <ostream>

#include "support/diag.hpp"

namespace wcet {

namespace {

__int128 abs128(__int128 v) { return v < 0 ? -v : v; }

int ctz128(unsigned __int128 v) {
  const auto lo = static_cast<std::uint64_t>(v);
  if (lo != 0) return __builtin_ctzll(lo);
  return 64 + __builtin_ctzll(static_cast<std::uint64_t>(v >> 64));
}

// Binary (Stein) gcd: avoids the libgcc 128-bit division in the hot
// simplex pivot path.
__int128 gcd128(__int128 a, __int128 b) {
  auto ua = static_cast<unsigned __int128>(abs128(a));
  auto ub = static_cast<unsigned __int128>(abs128(b));
  if (ua == 0) return static_cast<__int128>(ub);
  if (ub == 0) return static_cast<__int128>(ua);
  const int za = ctz128(ua);
  const int zb = ctz128(ub);
  const int shift = za < zb ? za : zb;
  ua >>= za;
  for (;;) {
    ub >>= ctz128(ub);
    if (ua > ub) {
      const unsigned __int128 t = ua;
      ua = ub;
      ub = t;
    }
    ub -= ua;
    if (ub == 0) return static_cast<__int128>(ua << shift);
  }
}

// Guard band: keep magnitudes well below the 128-bit limit so that a
// single multiply in the next operation cannot wrap.
constexpr __int128 k_magnitude_limit = static_cast<__int128>(1) << 62;

std::string int128_to_string(__int128 v) {
  if (v == 0) return "0";
  const bool neg = v < 0;
  __int128 a = neg ? -v : v;
  std::string digits;
  while (a > 0) {
    digits.push_back(static_cast<char>('0' + static_cast<int>(a % 10)));
    a /= 10;
  }
  if (neg) digits.push_back('-');
  return {digits.rbegin(), digits.rend()};
}

} // namespace

void Rational::check_magnitude(__int128 v) {
  if (abs128(v) >= k_magnitude_limit) {
    throw AnalysisError("rational arithmetic overflow in path analysis");
  }
}

Rational::Rational(std::int64_t num, std::int64_t den) : num_(num), den_(den) {
  WCET_CHECK(den != 0, "rational with zero denominator");
  normalize();
}

Rational Rational::from_int128(__int128 num, __int128 den) {
  WCET_CHECK(den != 0, "rational with zero denominator");
  Rational r;
  r.num_ = num;
  r.den_ = den;
  r.normalize();
  return r;
}

void Rational::normalize() {
  if (den_ < 0) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_ == 0) {
    den_ = 1;
    return;
  }
  if (den_ == 1) { // integer fast path: no gcd needed
    check_magnitude(num_);
    return;
  }
  const __int128 g = gcd128(num_, den_);
  if (g != 1) {
    num_ /= g;
    den_ /= g;
  }
  check_magnitude(num_);
  check_magnitude(den_);
}

std::int64_t Rational::numerator64() const {
  WCET_CHECK(abs128(num_) <= INT64_MAX, "rational numerator out of int64 range");
  return static_cast<std::int64_t>(num_);
}

std::int64_t Rational::denominator64() const {
  WCET_CHECK(den_ <= INT64_MAX, "rational denominator out of int64 range");
  return static_cast<std::int64_t>(den_);
}

std::int64_t Rational::floor64() const {
  __int128 q = num_ / den_;
  if (num_ % den_ != 0 && num_ < 0) --q;
  WCET_CHECK(abs128(q) <= INT64_MAX, "rational floor out of int64 range");
  return static_cast<std::int64_t>(q);
}

std::int64_t Rational::ceil64() const {
  __int128 q = num_ / den_;
  if (num_ % den_ != 0 && num_ > 0) ++q;
  WCET_CHECK(abs128(q) <= INT64_MAX, "rational ceil out of int64 range");
  return static_cast<std::int64_t>(q);
}

double Rational::to_double() const {
  return static_cast<double>(num_) / static_cast<double>(den_);
}

Rational Rational::operator-() const { return from_int128(-num_, den_); }

Rational Rational::operator+(const Rational& rhs) const {
  if (den_ == 1 && rhs.den_ == 1) { // integer fast path
    Rational r;
    r.num_ = num_ + rhs.num_;
    check_magnitude(r.num_);
    return r;
  }
  return from_int128(num_ * rhs.den_ + rhs.num_ * den_, den_ * rhs.den_);
}

Rational Rational::operator-(const Rational& rhs) const {
  if (den_ == 1 && rhs.den_ == 1) { // integer fast path
    Rational r;
    r.num_ = num_ - rhs.num_;
    check_magnitude(r.num_);
    return r;
  }
  return from_int128(num_ * rhs.den_ - rhs.num_ * den_, den_ * rhs.den_);
}

// Fused `*this -= a * b`: the simplex pivot's row update. Normalization
// is deferred to a single pass at the end (the lazy-normalization fast
// path), with an all-integer shortcut that needs no gcd at all.
void Rational::sub_mul(const Rational& a, const Rational& b) {
  if (a.num_ == 0 || b.num_ == 0) return;
  if (den_ == 1 && a.den_ == 1 && b.den_ == 1) {
    num_ -= a.num_ * b.num_;
    check_magnitude(num_);
    return;
  }
  // Cross-reduce the product before combining, as operator* does. The
  // reduced product must re-enter the guard band before the combining
  // multiplies below, or they could wrap __int128 silently.
  const __int128 g1 = gcd128(a.num_, b.den_);
  const __int128 g2 = gcd128(b.num_, a.den_);
  const __int128 pn = (a.num_ / g1) * (b.num_ / g2);
  const __int128 pd = (a.den_ / g2) * (b.den_ / g1);
  check_magnitude(pn);
  check_magnitude(pd);
  if (den_ == pd) {
    num_ -= pn;
    normalize();
    return;
  }
  num_ = num_ * pd - pn * den_;
  den_ *= pd;
  normalize();
}

Rational Rational::operator*(const Rational& rhs) const {
  if (den_ == 1 && rhs.den_ == 1) { // integer fast path
    Rational r;
    r.num_ = num_ * rhs.num_;
    check_magnitude(r.num_);
    return r;
  }
  // Cross-reduce before multiplying to keep magnitudes small.
  const __int128 g1 = gcd128(num_, rhs.den_);
  const __int128 g2 = gcd128(rhs.num_, den_);
  const __int128 n1 = g1 == 0 ? num_ : num_ / g1;
  const __int128 d2 = g1 == 0 ? rhs.den_ : rhs.den_ / g1;
  const __int128 n2 = g2 == 0 ? rhs.num_ : rhs.num_ / g2;
  const __int128 d1 = g2 == 0 ? den_ : den_ / g2;
  return from_int128(n1 * n2, d1 * d2);
}

Rational Rational::operator/(const Rational& rhs) const {
  WCET_CHECK(rhs.num_ != 0, "rational division by zero");
  return *this * from_int128(rhs.den_, rhs.num_);
}

bool Rational::operator<(const Rational& rhs) const {
  return num_ * rhs.den_ < rhs.num_ * den_;
}

bool Rational::operator<=(const Rational& rhs) const {
  return num_ * rhs.den_ <= rhs.num_ * den_;
}

std::string Rational::to_string() const {
  if (den_ == 1) return int128_to_string(num_);
  return int128_to_string(num_) + "/" + int128_to_string(den_);
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  return os << r.to_string();
}

} // namespace wcet
