#include "support/rational.hpp"

#include <ostream>

#include "support/diag.hpp"

namespace wcet {

namespace {

__int128 abs128(__int128 v) { return v < 0 ? -v : v; }

__int128 gcd128(__int128 a, __int128 b) {
  a = abs128(a);
  b = abs128(b);
  while (b != 0) {
    const __int128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

// Guard band: keep magnitudes well below the 128-bit limit so that a
// single multiply in the next operation cannot wrap.
constexpr __int128 k_magnitude_limit = static_cast<__int128>(1) << 62;

std::string int128_to_string(__int128 v) {
  if (v == 0) return "0";
  const bool neg = v < 0;
  __int128 a = neg ? -v : v;
  std::string digits;
  while (a > 0) {
    digits.push_back(static_cast<char>('0' + static_cast<int>(a % 10)));
    a /= 10;
  }
  if (neg) digits.push_back('-');
  return {digits.rbegin(), digits.rend()};
}

} // namespace

void Rational::check_magnitude(__int128 v) {
  if (abs128(v) >= k_magnitude_limit) {
    throw AnalysisError("rational arithmetic overflow in path analysis");
  }
}

Rational::Rational(std::int64_t num, std::int64_t den) : num_(num), den_(den) {
  WCET_CHECK(den != 0, "rational with zero denominator");
  normalize();
}

Rational Rational::from_int128(__int128 num, __int128 den) {
  WCET_CHECK(den != 0, "rational with zero denominator");
  Rational r;
  r.num_ = num;
  r.den_ = den;
  r.normalize();
  return r;
}

void Rational::normalize() {
  if (den_ < 0) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_ == 0) {
    den_ = 1;
    return;
  }
  const __int128 g = gcd128(num_, den_);
  num_ /= g;
  den_ /= g;
  check_magnitude(num_);
  check_magnitude(den_);
}

std::int64_t Rational::numerator64() const {
  WCET_CHECK(abs128(num_) <= INT64_MAX, "rational numerator out of int64 range");
  return static_cast<std::int64_t>(num_);
}

std::int64_t Rational::denominator64() const {
  WCET_CHECK(den_ <= INT64_MAX, "rational denominator out of int64 range");
  return static_cast<std::int64_t>(den_);
}

std::int64_t Rational::floor64() const {
  __int128 q = num_ / den_;
  if (num_ % den_ != 0 && num_ < 0) --q;
  WCET_CHECK(abs128(q) <= INT64_MAX, "rational floor out of int64 range");
  return static_cast<std::int64_t>(q);
}

std::int64_t Rational::ceil64() const {
  __int128 q = num_ / den_;
  if (num_ % den_ != 0 && num_ > 0) ++q;
  WCET_CHECK(abs128(q) <= INT64_MAX, "rational ceil out of int64 range");
  return static_cast<std::int64_t>(q);
}

double Rational::to_double() const {
  return static_cast<double>(num_) / static_cast<double>(den_);
}

Rational Rational::operator-() const { return from_int128(-num_, den_); }

Rational Rational::operator+(const Rational& rhs) const {
  return from_int128(num_ * rhs.den_ + rhs.num_ * den_, den_ * rhs.den_);
}

Rational Rational::operator-(const Rational& rhs) const {
  return from_int128(num_ * rhs.den_ - rhs.num_ * den_, den_ * rhs.den_);
}

Rational Rational::operator*(const Rational& rhs) const {
  // Cross-reduce before multiplying to keep magnitudes small.
  const __int128 g1 = gcd128(num_, rhs.den_);
  const __int128 g2 = gcd128(rhs.num_, den_);
  const __int128 n1 = g1 == 0 ? num_ : num_ / g1;
  const __int128 d2 = g1 == 0 ? rhs.den_ : rhs.den_ / g1;
  const __int128 n2 = g2 == 0 ? rhs.num_ : rhs.num_ / g2;
  const __int128 d1 = g2 == 0 ? den_ : den_ / g2;
  return from_int128(n1 * n2, d1 * d2);
}

Rational Rational::operator/(const Rational& rhs) const {
  WCET_CHECK(rhs.num_ != 0, "rational division by zero");
  return *this * from_int128(rhs.den_, rhs.num_);
}

bool Rational::operator<(const Rational& rhs) const {
  return num_ * rhs.den_ < rhs.num_ * den_;
}

bool Rational::operator<=(const Rational& rhs) const {
  return num_ * rhs.den_ <= rhs.num_ * den_;
}

std::string Rational::to_string() const {
  if (den_ == 1) return int128_to_string(num_);
  return int128_to_string(num_) + "/" + int128_to_string(den_);
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  return os << r.to_string();
}

} // namespace wcet
