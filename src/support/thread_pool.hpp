// A small, work-stealing-free thread pool for the analysis phases.
//
// Design goals, in order:
//   1. *Determinism*: the item -> worker assignment of `parallel_for`
//      depends only on (item count, worker count) — contiguous static
//      chunks, no stealing, no atomic claiming. Together with tasks
//      that write disjoint state and a sequential merge step on the
//      caller, results are bit-identical for ANY worker count
//      (including 1, which runs inline on the caller thread).
//   2. Simplicity: persistent workers parked on one condition
//      variable; a generation counter publishes jobs. No queues.
//
// ## Thread-safety and determinism invariants
//
//   - `parallel_for` may only be called from one thread at a time (the
//     analyses share one pool and call it phase by phase); the pool is
//     NOT reentrant — a task must not call parallel_for on the pool
//     that is running it.
//   - Worker w executes exactly the index range [n*w/W, n*(w+1)/W), in
//     ascending order — a pure function of (n, W). There is no work
//     stealing and no atomic claiming, so which thread computes which
//     item never depends on timing.
//   - Determinism of *results* additionally requires the caller's
//     discipline: items must write disjoint state (beware
//     vector<bool>'s shared words — use byte-sized flags), and any
//     cross-item reduction must happen after the barrier in a fixed
//     order on the caller. Under those rules results are bit-identical
//     for ANY worker count, including 1 (which runs inline on the
//     caller thread and spawns nothing).
//   - Exceptions: the first exception thrown by any item is rethrown
//     on the caller after the barrier; the pool remains usable.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "support/budget.hpp"

namespace wcet {

class ThreadPool {
public:
  // `workers` counts the caller thread: a pool of N spawns N-1 threads.
  // workers <= 1 spawns nothing and parallel_for degrades to a loop.
  explicit ThreadPool(unsigned workers) {
    const unsigned extra = workers > 1 ? workers - 1 : 0;
    threads_.reserve(extra);
    for (unsigned w = 1; w <= extra; ++w) {
      threads_.emplace_back([this, w] { worker_loop(w); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  unsigned workers() const { return static_cast<unsigned>(threads_.size()) + 1; }

  // Optional resource governor: when set, every chunk item checks for
  // cooperative cancellation before running. A fired CancelToken turns
  // into a CancelledError rethrown on the caller after the barrier —
  // the same path any task exception takes, so the pool stays usable.
  void set_governor(const AnalysisGovernor* governor) { governor_ = governor; }

  // Runs fn(i) for every i in [0, n), blocking until all items are
  // done. Worker w handles exactly the indices in
  // [n*w/W, n*(w+1)/W) — a pure function of (n, W). The first
  // exception thrown by any item is rethrown on the caller after the
  // barrier (remaining items of that worker's chunk are skipped;
  // other workers finish their chunks).
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn) {
    if (n == 0) return;
    if (threads_.empty() || n == 1) {
      for (std::size_t i = 0; i < n; ++i) {
        if (governor_ != nullptr) governor_->check_cancel();
        fn(i);
      }
      return;
    }
    std::function<void(std::size_t)> body = [&fn](std::size_t i) { fn(i); };
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_ = &body;
      job_n_ = n;
      pending_ = static_cast<unsigned>(threads_.size());
      ++generation_;
    }
    wake_cv_.notify_all();
    run_chunk(0);
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    job_ = nullptr;
    if (error_) {
      std::exception_ptr e = error_;
      error_ = nullptr;
      std::rethrow_exception(e);
    }
  }

private:
  void run_chunk(unsigned worker) {
    // job_/job_n_ are stable while a generation is in flight: they are
    // written under the mutex before the generation bump and cleared
    // only after every worker reported done.
    const unsigned w = workers();
    const std::size_t begin = job_n_ * worker / w;
    const std::size_t end = job_n_ * (worker + 1) / w;
    try {
      for (std::size_t i = begin; i < end; ++i) {
        if (governor_ != nullptr) governor_->check_cancel();
        (*job_)(i);
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
  }

  void worker_loop(unsigned worker) {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
      }
      run_chunk(worker);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        --pending_;
      }
      done_cv_.notify_one();
    }
  }

  std::vector<std::thread> threads_;
  const AnalysisGovernor* governor_ = nullptr;
  std::mutex mutex_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t job_n_ = 0;
  unsigned pending_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
};

} // namespace wcet
