// A small, work-stealing-free thread pool for the analysis phases.
//
// Design goals, in order:
//   1. *Determinism*: the item -> worker assignment of `parallel_for`
//      depends only on (item count, worker count) — contiguous static
//      chunks, no stealing, no atomic claiming. Together with tasks
//      that write disjoint state and a sequential merge step on the
//      caller, results are bit-identical for ANY worker count
//      (including 1, which runs inline on the caller thread).
//   2. Simplicity: persistent workers parked on one condition
//      variable; a generation counter publishes jobs. No queues.
//
// ## Thread-safety and determinism invariants
//
//   - `parallel_for` may only be called from one thread at a time (the
//     analyses share one pool and call it phase by phase); the pool is
//     NOT reentrant — a task must not call parallel_for on the pool
//     that is running it.
//   - Worker w executes exactly the index range [n*w/W, n*(w+1)/W), in
//     ascending order — a pure function of (n, W). There is no work
//     stealing and no atomic claiming, so which thread computes which
//     item never depends on timing.
//   - Determinism of *results* additionally requires the caller's
//     discipline: items must write disjoint state (beware
//     vector<bool>'s shared words — use byte-sized flags), and any
//     cross-item reduction must happen after the barrier in a fixed
//     order on the caller. Under those rules results are bit-identical
//     for ANY worker count, including 1 (which runs inline on the
//     caller thread and spawns nothing).
//   - Exceptions: the first exception thrown by any item is rethrown
//     on the caller after the barrier; the pool remains usable.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "support/budget.hpp"
#include "support/diag.hpp"

namespace wcet {

class ThreadPool {
public:
  // `workers` counts the caller thread: a pool of N spawns N-1 threads.
  // workers <= 1 spawns nothing and parallel_for degrades to a loop.
  explicit ThreadPool(unsigned workers) {
    const unsigned extra = workers > 1 ? workers - 1 : 0;
    threads_.reserve(extra);
    for (unsigned w = 1; w <= extra; ++w) {
      threads_.emplace_back([this, w] { worker_loop(w); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  unsigned workers() const { return static_cast<unsigned>(threads_.size()) + 1; }

  // Optional resource governor: when set, every chunk item checks for
  // cooperative cancellation before running. A fired CancelToken turns
  // into a CancelledError rethrown on the caller after the barrier —
  // the same path any task exception takes, so the pool stays usable.
  void set_governor(const AnalysisGovernor* governor) { governor_ = governor; }

  // Runs fn(i) for every i in [0, n), blocking until all items are
  // done. Worker w handles exactly the indices in
  // [n*w/W, n*(w+1)/W) — a pure function of (n, W). The first
  // exception thrown by any item is rethrown on the caller after the
  // barrier (remaining items of that worker's chunk are skipped;
  // other workers finish their chunks).
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn) {
    if (n == 0) return;
    if (threads_.empty() || n == 1) {
      for (std::size_t i = 0; i < n; ++i) {
        if (governor_ != nullptr) governor_->check_cancel();
        fn(i);
      }
      return;
    }
    std::function<void(std::size_t)> body = [&fn](std::size_t i) { fn(i); };
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_ = &body;
      job_n_ = n;
      pending_ = static_cast<unsigned>(threads_.size());
      ++generation_;
    }
    wake_cv_.notify_all();
    run_chunk(0);
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    job_ = nullptr;
    if (error_) {
      std::exception_ptr e = error_;
      error_ = nullptr;
      std::rethrow_exception(e);
    }
  }

  // Runs fn(i) once for every task i in [0, n) of a dependency graph:
  // parent[i] names the task consuming i's result (-1 for roots) and
  // pending[i] counts the children task i still waits for (`pending`
  // is consumed — it holds live countdowns during the run). A task is
  // dispatched the moment its countdown hits zero, so independent
  // subtrees overlap freely instead of meeting at level barriers.
  //
  // Scheduling is dynamic (a shared ready queue), so *which worker*
  // runs a task depends on timing — determinism therefore demands a
  // stronger caller discipline than parallel_for's: each task must be
  // a pure function of its own index and its children's published
  // results, writing only its own slot. The queue order then never
  // matters: leaves seed the queue in ascending index order, a parent
  // fires only after its last child published (the pool's mutex
  // sequences child writes before the parent's dispatch), and any
  // cross-task merge happens on the caller after the call returns.
  // Under those rules results are bit-identical for ANY worker count,
  // including 1 (which runs inline on the caller thread).
  //
  // Like parallel_for, this is not reentrant, the governor is polled
  // before every task, and the first exception wins: dispatch stops,
  // in-flight tasks finish, and the exception is rethrown here.
  template <typename Fn>
  void run_graph(std::size_t n, Fn&& fn, const std::vector<int>& parent,
                 std::vector<int>& pending) {
    WCET_CHECK(parent.size() >= n && pending.size() >= n,
               "run_graph: parent/pending arrays shorter than task count");
    if (n == 0) return;
    if (threads_.empty()) {
      std::vector<std::size_t> ready;
      ready.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        if (pending[i] == 0) ready.push_back(i);
      }
      for (std::size_t qi = 0; qi < ready.size(); ++qi) {
        const std::size_t task = ready[qi];
        if (governor_ != nullptr) governor_->check_cancel();
        fn(task);
        const int p = parent[task];
        if (p >= 0 && --pending[static_cast<std::size_t>(p)] == 0) {
          ready.push_back(static_cast<std::size_t>(p));
        }
      }
      WCET_CHECK(ready.size() == n, "run_graph: dependency graph has a cycle");
      return;
    }
    std::function<void(std::size_t)> body = [&fn](std::size_t i) { fn(i); };
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_ = &body;
      graph_ = true;
      graph_queue_.clear();
      graph_head_ = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (pending[i] == 0) graph_queue_.push_back(i);
      }
      graph_parent_ = &parent;
      graph_pending_ = &pending;
      graph_done_ = 0;
      graph_total_ = n;
      pending_ = static_cast<unsigned>(threads_.size());
      ++generation_;
    }
    wake_cv_.notify_all();
    graph_drain();
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    job_ = nullptr;
    graph_ = false;
    const std::size_t done = graph_done_;
    if (error_) {
      std::exception_ptr e = error_;
      error_ = nullptr;
      std::rethrow_exception(e);
    }
    WCET_CHECK(done == n, "run_graph: dependency graph has a cycle");
  }

private:
  // Pops and runs ready graph tasks until the run completes or fails.
  // Each finished task decrements its parent's countdown under the
  // pool mutex; the release/acquire pair this implies is what
  // publishes every child's writes to the worker that runs the parent.
  void graph_drain() {
    for (;;) {
      std::size_t task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        graph_cv_.wait(lock, [this] {
          return graph_head_ < graph_queue_.size() || graph_done_ == graph_total_ ||
                 error_ != nullptr;
        });
        if (error_ != nullptr || graph_head_ == graph_queue_.size()) {
          return; // finished or poisoned: stop dispatching
        }
        task = graph_queue_[graph_head_++];
      }
      try {
        if (governor_ != nullptr) governor_->check_cancel();
        (*job_)(task);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!error_) error_ = std::current_exception();
        ++graph_done_;
        graph_cv_.notify_all(); // wake everyone: dispatch is over
        continue;
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++graph_done_;
        const int p = (*graph_parent_)[task];
        if (p >= 0 && error_ == nullptr &&
            --(*graph_pending_)[static_cast<std::size_t>(p)] == 0) {
          graph_queue_.push_back(static_cast<std::size_t>(p));
          graph_cv_.notify_one();
        }
        if (graph_done_ == graph_total_ || error_ != nullptr) graph_cv_.notify_all();
      }
    }
  }

  void run_chunk(unsigned worker) {
    // job_/job_n_ are stable while a generation is in flight: they are
    // written under the mutex before the generation bump and cleared
    // only after every worker reported done.
    const unsigned w = workers();
    const std::size_t begin = job_n_ * worker / w;
    const std::size_t end = job_n_ * (worker + 1) / w;
    try {
      for (std::size_t i = begin; i < end; ++i) {
        if (governor_ != nullptr) governor_->check_cancel();
        (*job_)(i);
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
  }

  void worker_loop(unsigned worker) {
    std::uint64_t seen = 0;
    for (;;) {
      bool graph = false;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        graph = graph_;
      }
      if (graph) {
        graph_drain();
      } else {
        run_chunk(worker);
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        --pending_;
      }
      done_cv_.notify_one();
    }
  }

  std::vector<std::thread> threads_;
  const AnalysisGovernor* governor_ = nullptr;
  std::mutex mutex_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t job_n_ = 0;
  unsigned pending_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
  // Dependency-graph mode (run_graph): a shared FIFO of ready task
  // indices, drained by every worker plus the caller.
  std::condition_variable graph_cv_;
  std::vector<std::size_t> graph_queue_;
  std::size_t graph_head_ = 0;
  const std::vector<int>* graph_parent_ = nullptr;
  std::vector<int>* graph_pending_ = nullptr;
  std::size_t graph_done_ = 0;
  std::size_t graph_total_ = 0;
  bool graph_ = false;
};

} // namespace wcet
