// Deterministic, seedable PRNG (xoshiro256**) for reproducible
// experiments. std::mt19937 is avoided so that the Table-1 experiment is
// bit-reproducible across standard library implementations.
#pragma once

#include <cstdint>

namespace wcet {

class Rng {
public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  // Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint32_t below(std::uint32_t bound) {
    std::uint64_t m = static_cast<std::uint64_t>(next_u32()) * bound;
    auto lo = static_cast<std::uint32_t>(m);
    if (lo < bound) {
      const std::uint32_t threshold = (0u - bound) % bound;
      while (lo < threshold) {
        m = static_cast<std::uint64_t>(next_u32()) * bound;
        lo = static_cast<std::uint32_t>(m);
      }
    }
    return static_cast<std::uint32_t>(m >> 32);
  }

  // Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_u64() % static_cast<std::uint64_t>(hi - lo + 1));
  }

  bool chance(double p) {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53 < p;
  }

private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

} // namespace wcet
