// Deterministic per-instance round scheduling for supergraph fixpoints.
//
// ## What this engine is
//
// The supergraph's function instances form a tree (each instance has
// exactly one caller), and every analysis edge either stays inside one
// instance or is a call/ret edge between two instances. That structure
// admits a two-level fixpoint schedule shared by the value and cache
// analyses:
//
//   round:  every *dirty* instance converges a local priority worklist
//           over its own nodes (reverse-postorder priorities restricted
//           to the instance);
//   merge:  out-states buffered on cross-instance edges during the
//           round are joined into their targets in a fixed sequential
//           order — ascending instance id, then ascending edge id;
//   repeat: instances whose worklists received work become the next
//           round's dirty set, until no worklist holds a node.
//
// The engine owns the scheduling half of that loop: instance-local node
// orders, the per-instance worklists, the dirty set and the round/merge
// alternation. The *domain* half — transfer functions, join operators
// and the cross-edge buffers themselves — stays with the client, which
// keeps the engine agnostic of the abstract state (the value analysis
// buffers `AbsState`s, the cache analysis buffers must/may cache
// pairs).
//
// ## Determinism contract
//
// Results are bit-identical for ANY worker count (including no pool at
// all) provided the client honours two rules:
//
//   1. `process(instance, node)` only reads/writes state owned by
//      `instance` (its nodes' in-states, its intra-instance edges, its
//      own cross-edge buffer) and only calls `push()` for nodes of that
//      same instance. Instances dirty in the same round then touch
//      disjoint state, so the ThreadPool's static chunking cannot
//      affect the outcome — only the wall-clock time.
//   2. `flush(instance)` applies the instance's buffered cross-edge
//      joins in ascending edge id order. The engine already calls
//      `flush` sequentially in ascending instance id order, so the
//      total merge order is a pure function of the graph.
//
// Rule 1's "owned state" is refined, not weakened, by the copy-on-write
// states (support/cow.hpp): slots of *different* instances may share
// immutable COW leaves — sharing is created by the sequential flush
// joins and by snapshot propagation — because a client mutates leaves
// only through the detach-on-mutate interface, which never writes a
// block another slot can still reach. What stays per-instance is the
// *slot* (the CowPtr/CowVec object itself): only the owning instance
// may reassign or detach it. Propagation should copy-assign states
// (O(1) snapshot-share) rather than rebuild them, so unchanged leaves
// keep their identity and downstream joins skip them by pointer
// equality.
//
// Under the usual abstract-interpretation conditions (monotone
// transfer, exact change reporting from the join) the reached fixpoint
// is schedule-independent; the fixed round/merge order above
// additionally pins every intermediate state, which is what makes
// visit-counted policies such as widening delays reproducible too (see
// support/fixpoint.hpp for the single-worklist contract this builds
// on).
#pragma once

#include <algorithm>
#include <vector>

#include "cfg/supergraph.hpp"
#include "support/fixpoint.hpp"
#include "support/thread_pool.hpp"

namespace wcet {

class InstanceRoundEngine {
public:
  // `priorities[node]` is the global fixpoint priority of each
  // supergraph node (cfg::rpo_priorities). Each instance iterates its
  // nodes by ascending global priority (ties by node id), i.e. the
  // same weak-topological order the global worklist engine would use,
  // restricted to the instance.
  InstanceRoundEngine(const cfg::Supergraph& sg, const std::vector<int>& priorities)
      : sg_(sg) {
    const std::size_t num_nodes = sg.nodes().size();
    const std::size_t num_instances = sg.instances().size();
    inst_nodes_.resize(num_instances);
    local_index_.assign(num_nodes, -1);
    worklists_.reserve(num_instances);
    for (std::size_t i = 0; i < num_instances; ++i) {
      inst_nodes_[i] = sg.instance_nodes(static_cast<int>(i));
      std::sort(inst_nodes_[i].begin(), inst_nodes_[i].end(), [&](int a, int b) {
        const int pa = priorities[static_cast<std::size_t>(a)];
        const int pb = priorities[static_cast<std::size_t>(b)];
        return pa != pb ? pa < pb : a < b;
      });
      for (std::size_t k = 0; k < inst_nodes_[i].size(); ++k) {
        local_index_[static_cast<std::size_t>(inst_nodes_[i][k])] = static_cast<int>(k);
      }
      std::vector<int> identity(inst_nodes_[i].size());
      for (std::size_t k = 0; k < identity.size(); ++k) identity[k] = static_cast<int>(k);
      worklists_.emplace_back(std::move(identity));
    }
    round_pops_.assign(num_instances, 0);
  }

  // Optional resource governor: when set, every worklist pop checks for
  // cooperative cancellation (throws CancelledError). Budget accounting
  // stays at the deterministic round barrier (see `run` with round_end).
  void set_governor(const AnalysisGovernor* governor) { governor_ = governor; }

  std::size_t num_instances() const { return inst_nodes_.size(); }
  // An instance's nodes in local iteration order.
  const std::vector<int>& nodes_of(int instance) const {
    return inst_nodes_[static_cast<std::size_t>(instance)];
  }

  // Schedule `node` for (re-)evaluation. Callable from `process` only
  // for nodes of the instance being processed (rule 1 above); callable
  // from `flush` and from seeding code for any node.
  void push(int node) {
    const int instance = sg_.node(node).instance;
    worklists_[static_cast<std::size_t>(instance)].push(
        local_index_[static_cast<std::size_t>(node)]);
  }

  // Runs rounds until every worklist drains. `process(instance, node)`
  // applies the client's transfer + intra-instance joins (pushing
  // changed same-instance successors) and buffers cross-instance
  // out-states; `flush(instance)` applies that instance's buffered
  // cross joins in ascending edge order, pushing grown targets.
  template <typename ProcessFn, typename FlushFn>
  void run(ThreadPool* pool, ProcessFn&& process, FlushFn&& flush) {
    run(pool, static_cast<ProcessFn&&>(process), static_cast<FlushFn&&>(flush),
        [](std::uint64_t) { return true; });
  }

  // Variant with a budget hook: after each round's sequential merge,
  // `round_end(round_pops)` receives the total number of node visits
  // (worklist pops) of that round — a pure function of the graph and
  // the abstract domain, identical for any worker count, because the
  // per-instance counts are summed after the barrier in instance order.
  // Returning false stops the engine *at the round barrier*: all
  // worklists are drained and iteration ends. The client is then
  // responsible for a sound interpretation of the un-converged states
  // (see the degradation ladder in support/budget.hpp).
  template <typename ProcessFn, typename FlushFn, typename RoundEndFn>
  void run(ThreadPool* pool, ProcessFn&& process, FlushFn&& flush, RoundEndFn&& round_end) {
    std::vector<int> dirty;
    collect_dirty(dirty);
    while (!dirty.empty()) {
      const auto run_instance = [&](std::size_t di) {
        const int instance = dirty[di];
        auto& worklist = worklists_[static_cast<std::size_t>(instance)];
        const auto& nodes = inst_nodes_[static_cast<std::size_t>(instance)];
        std::uint64_t pops = 0;
        run_fixpoint(worklist, governor_, [&](const int lid) {
          ++pops;
          process(instance, nodes[static_cast<std::size_t>(lid)]);
        });
        round_pops_[static_cast<std::size_t>(instance)] = pops;
      };
      if (pool != nullptr) {
        pool->parallel_for(dirty.size(), run_instance);
      } else {
        for (std::size_t di = 0; di < dirty.size(); ++di) run_instance(di);
      }
      // Sequential deterministic merge: ascending instance id (the
      // dirty list is built in ascending order below; the seed round
      // may be unsorted only when seeding pushed a single instance).
      for (const int instance : dirty) flush(instance);
      std::uint64_t total_pops = 0;
      for (const int instance : dirty) {
        total_pops += round_pops_[static_cast<std::size_t>(instance)];
      }
      if (!round_end(total_pops)) {
        drain_all();
        return;
      }
      collect_dirty(dirty);
    }
  }

private:
  void collect_dirty(std::vector<int>& dirty) const {
    dirty.clear();
    for (std::size_t i = 0; i < worklists_.size(); ++i) {
      if (!worklists_[i].empty()) dirty.push_back(static_cast<int>(i));
    }
  }

  void drain_all() {
    for (auto& worklist : worklists_) {
      while (worklist.pop() >= 0) {
      }
    }
  }

  const cfg::Supergraph& sg_;
  const AnalysisGovernor* governor_ = nullptr;
  std::vector<std::vector<int>> inst_nodes_;
  std::vector<int> local_index_;
  std::vector<PriorityWorklist> worklists_;
  std::vector<std::uint64_t> round_pops_;
};

} // namespace wcet
