#include "analysis/cache_analysis.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/transfer_cache.hpp"
#include "support/diag.hpp"
#include "support/instance_rounds.hpp"
#include "support/thread_pool.hpp"

namespace wcet::analysis {

const char* to_string(AccessClass cls) {
  switch (cls) {
  case AccessClass::always_hit: return "AH";
  case AccessClass::always_miss: return "AM";
  case AccessClass::not_classified: return "NC";
  case AccessClass::uncached: return "UC";
  }
  return "?";
}

AbsCache::AbsCache(const mem::CacheConfig& config, bool must)
    : config_(config), must_(must), sets_(config.sets) {}

bool AbsCache::contains(std::uint32_t line) const {
  if (!config_.enabled) return false;
  const auto& set = sets_[config_.set_index(line * config_.line_bytes)];
  return set.contains(line);
}

void AbsCache::age_set(unsigned set_index, unsigned below_age) {
  sets_[set_index].retain([&](std::uint32_t, unsigned& age) {
    if (age < below_age) ++age;
    return age < config_.ways;
  });
}

void AbsCache::access_set(SetImage& set, std::uint32_t line) const {
  const auto it = set.find(line);
  const unsigned old_age = it != set.end() ? it->second : config_.ways;
  if (must_) {
    // Lines younger than the accessed line's (upper-bound) age grow
    // older; on a potential miss everything ages.
    set.retain([&](std::uint32_t, unsigned& age) {
      if (age < old_age) ++age;
      return age < config_.ways;
    });
  } else {
    // May analysis: lines whose lower-bound age is <= the accessed
    // line's lower-bound age grow older; absent line == certain miss.
    set.retain([&](std::uint32_t other_line, unsigned& age) {
      if (other_line != line && age <= old_age) ++age;
      return age < config_.ways;
    });
  }
  set[line] = 0;
}

void AbsCache::access(std::uint32_t line) {
  if (!config_.enabled) return;
  access_set(sets_[config_.set_index(line * config_.line_bytes)], line);
}

void AbsCache::access_one_of(std::span<const std::uint32_t> lines) {
  if (!config_.enabled || lines.empty()) return;
  if (lines.size() == 1) {
    access(lines[0]);
    return;
  }
  // Join over the alternatives, computed per affected set: an
  // alternative only rewrites the set image of its own line, so for
  // every other set it contributes the unmodified original image, and
  // the join is pointwise per set. The join is a semilattice operation
  // (must: intersection/max age; may: union/min age), so the
  // accumulation order is irrelevant and the result is the same
  // canonical sorted image the whole-cache formulation produced —
  // without copying the untouched sets at all.
  std::vector<unsigned> affected;
  affected.reserve(lines.size());
  for (const std::uint32_t line : lines) {
    const unsigned s = config_.set_index(line * config_.line_bytes);
    if (std::find(affected.begin(), affected.end(), s) == affected.end()) {
      affected.push_back(s);
    }
  }
  SetImage scratch;
  for (const unsigned s : affected) {
    const SetImage original = sets_[s];
    SetImage result;
    bool first = true;
    bool untouched_alternative = false;
    for (const std::uint32_t line : lines) {
      if (config_.set_index(line * config_.line_bytes) != s) {
        untouched_alternative = true;
        continue;
      }
      scratch = original;
      access_set(scratch, line);
      if (first) {
        result = std::move(scratch);
        first = false;
      } else {
        join_set(result, scratch);
      }
    }
    if (untouched_alternative) join_set(result, original);
    sets_[s] = std::move(result);
  }
}

void AbsCache::access_unknown() {
  if (!config_.enabled) return;
  if (must_) {
    // The access may target any set: age everything (the paper's
    // whole-cache invalidation effect under low associativity).
    for (unsigned s = 0; s < config_.sets; ++s) age_set(s, config_.ways);
  }
  // May: every line may still be cached (the access may have gone
  // elsewhere); ages are lower bounds and stay valid.
}

bool AbsCache::join_set(SetImage& mine, const SetImage& theirs) const {
  if (must_) {
    // Intersection, maximal age: linear merge-join over the two
    // sorted sets.
    auto ot = theirs.begin();
    bool aged = false;
    const bool dropped = mine.retain([&](std::uint32_t line, unsigned& age) {
      while (ot != theirs.end() && ot->first < line) ++ot;
      if (ot == theirs.end() || ot->first != line) return false;
      if (ot->second > age) {
        age = ot->second;
        aged = true;
      }
      return true;
    });
    return aged || dropped;
  }
  // Union, minimal age: merge the sorted sets into a fresh vector
  // only when something actually changes.
  if (theirs.empty()) return false;
  std::vector<std::pair<std::uint32_t, unsigned>> merged;
  merged.reserve(mine.size() + theirs.size());
  auto a = mine.begin();
  auto b = theirs.begin();
  bool set_changed = false;
  while (a != mine.end() || b != theirs.end()) {
    if (b == theirs.end() || (a != mine.end() && a->first < b->first)) {
      merged.push_back(*a++);
    } else if (a == mine.end() || b->first < a->first) {
      merged.push_back(*b++);
      set_changed = true;
    } else {
      const unsigned age = std::min(a->second, b->second);
      if (age < a->second) set_changed = true;
      merged.push_back({a->first, age});
      ++a;
      ++b;
    }
  }
  if (set_changed) {
    mine.assign_sorted(std::move(merged));
    return true;
  }
  return false;
}

bool AbsCache::join_with(const AbsCache& other) {
  WCET_CHECK(must_ == other.must_, "joining must with may cache");
  bool changed = false;
  for (unsigned s = 0; s < config_.sets; ++s) {
    changed |= join_set(sets_[s], other.sets_[s]);
  }
  return changed;
}

bool AbsCache::operator==(const AbsCache& other) const {
  return must_ == other.must_ && sets_ == other.sets_;
}

CacheAnalysis::CacheAnalysis(const cfg::Supergraph& sg, const cfg::LoopForest& loops,
                             const ValueAnalysis& values, const mem::MemoryMap& memmap,
                             const mem::CacheConfig& icache, const mem::CacheConfig& dcache,
                             Schedule schedule, std::vector<int> schedule_priorities,
                             TransferCache* transfers, ThreadPool* pool)
    : sg_(sg), loops_(loops), values_(values), memmap_(memmap), iconfig_(icache),
      dconfig_(dcache), schedule_(schedule),
      schedule_priorities_(std::move(schedule_priorities)), transfers_(transfers),
      pool_(pool) {
  if (schedule_ == Schedule::priority && schedule_priorities_.empty()) {
    schedule_priorities_ = cfg::rpo_priorities(sg);
  }
  const std::size_t n = sg.nodes().size();
  in_i_.assign(n, CachePair{AbsCache::cold(iconfig_, true), AbsCache::cold(iconfig_, false)});
  in_d_.assign(n, CachePair{AbsCache::cold(dconfig_, true), AbsCache::cold(dconfig_, false)});
  has_state_.assign(n, 0);
  fetch_.resize(n);
  data_.resize(n);
}

CacheAnalysis::~CacheAnalysis() = default;

void CacheAnalysis::build_line_tables() {
  if (transfers_ == nullptr) {
    // No shared cache attached (standalone construction, e.g. tests):
    // build a private one so there is exactly one table-building path.
    own_transfers_ = std::make_unique<TransferCache>(sg_);
    own_transfers_->attach(values_);
    transfers_ = own_transfers_.get();
  }
  // Builds both the candidate-line tables and the per-node transfer
  // recipes the fixpoint replays (once per decode round, fanned out
  // over the pool into dense per-node slots).
  transfers_->build_cache_recipes(memmap_, iconfig_, dconfig_, pool_);
}

const std::vector<std::uint32_t>& CacheAnalysis::lines_for(int node, std::size_t index) const {
  return transfers_->data_lines(node)[index];
}

AccessClass CacheAnalysis::classify(const CachePair& state,
                                    std::span<const std::uint32_t> lines) const {
  if (lines.empty()) return AccessClass::not_classified;
  bool all_must = true;
  bool none_may = true;
  for (const std::uint32_t line : lines) {
    if (!state.must.contains(line)) all_must = false;
    if (state.may.contains(line)) none_may = false;
  }
  if (all_must) return AccessClass::always_hit;
  if (none_may) return AccessClass::always_miss;
  return AccessClass::not_classified;
}

void CacheAnalysis::apply_access(CachePair& state, std::span<const std::uint32_t> lines) {
  if (lines.empty()) {
    state.must.access_unknown();
    state.may.access_unknown();
  } else {
    state.must.access_one_of(lines);
    state.may.access_one_of(lines);
  }
}

void CacheAnalysis::transfer(int node, CachePair& icache, CachePair& dcache, bool record) {
  // The node's accesses were decoded into a recipe once (memory
  // regions, line numbers, cacheability, candidate-line tables); every
  // visit replays that recipe against the abstract states. Fetches
  // touch only the i-cache and data accesses only the d-cache, so the
  // two replay loops need not interleave per instruction: the resulting
  // states and classifications are identical to the interleaved walk.
  using Recipe = TransferCache::CacheRecipe;
  const Recipe& recipe = transfers_->cache_recipe(node);

  if (!record) {
    // Fixpoint mode: state evolution only, no classification rows.
    for (const std::uint32_t line : recipe.fetch_apply) {
      icache.must.access(line);
      icache.may.access(line);
    }
    for (const Recipe::Data& d : recipe.data) {
      switch (d.kind) {
      case Recipe::DataKind::bypass: break;
      case Recipe::DataKind::disturb:
        dcache.must.access_unknown();
        dcache.may.access_unknown();
        break;
      case Recipe::DataKind::cached:
        apply_access(dcache, lines_for(node, d.access_index));
        break;
      }
    }
    return;
  }

  auto& fetch_out = fetch_[static_cast<std::size_t>(node)];
  auto& data_out = data_[static_cast<std::size_t>(node)];
  fetch_out.assign(recipe.fetch.size(), FetchClass{});
  data_out.clear();
  for (std::size_t i = 0; i < recipe.fetch.size(); ++i) {
    switch (recipe.fetch[i].kind) {
    case Recipe::FetchKind::uncached:
      fetch_out[i].cls = AccessClass::uncached;
      break;
    case Recipe::FetchKind::same_line:
      // Same line as the immediately preceding fetch: guaranteed hit.
      fetch_out[i].cls = AccessClass::always_hit;
      break;
    case Recipe::FetchKind::line: {
      const std::uint32_t lines[1] = {recipe.fetch[i].line};
      fetch_out[i].cls = classify(icache, lines);
      apply_access(icache, lines);
      break;
    }
    }
  }
  for (const Recipe::Data& d : recipe.data) {
    DataClass dc;
    dc.pc = d.pc;
    dc.is_store = d.is_store;
    switch (d.kind) {
    case Recipe::DataKind::bypass:
      // Write-through store, unreachable access, or uncacheable range.
      dc.cls = AccessClass::uncached;
      break;
    case Recipe::DataKind::disturb:
      // Partially cacheable imprecise range: uncached for timing, but
      // may still disturb the cache.
      dc.cls = AccessClass::uncached;
      dcache.must.access_unknown();
      dcache.may.access_unknown();
      break;
    case Recipe::DataKind::cached: {
      const std::vector<std::uint32_t>& lines = lines_for(node, d.access_index);
      dc.cls = classify(dcache, lines);
      dc.candidate_count = std::max<unsigned>(1, static_cast<unsigned>(lines.size()));
      apply_access(dcache, lines);
      break;
    }
    }
    data_out.push_back(dc);
  }
}

bool CacheAnalysis::join_target(int target, const CachePair& icache,
                                const CachePair& dcache) {
  const auto t = static_cast<std::size_t>(target);
  if (!has_state_[t]) {
    in_i_[t] = icache;
    in_d_[t] = dcache;
    has_state_[t] = 1;
    return true;
  }
  bool changed = in_i_[t].join_with(icache);
  changed |= in_d_[t].join_with(dcache);
  return changed;
}

template <typename PushFn>
void CacheAnalysis::join_successors(int node, const CachePair& icache,
                                    const CachePair& dcache, PushFn&& push_changed) {
  for (const int eid : sg_.node(node).succ_edges) {
    if (!values_.edge_feasible(eid)) continue;
    const int target = sg_.edge(eid).to;
    if (join_target(target, icache, dcache)) push_changed(target);
  }
}

void CacheAnalysis::fixpoint_instance_rounds() {
  // Deterministic per-instance rounds (support/instance_rounds.hpp),
  // mirroring the value-analysis engine: each dirty function instance
  // converges a local RPO priority worklist over its own nodes — in
  // parallel when a pool is given, touching disjoint in-state slots —
  // and cross-instance call/ret out-states are buffered and merged
  // sequentially in ascending (instance, edge) order. Re-queueing is
  // gated on join_with's exact change reporting. The must/may domain
  // has no widening, so this reaches the same least fixpoint as any
  // other schedule; the fixed round/merge order additionally makes
  // every intermediate state a pure function of the graph.
  InstanceRoundEngine engine(sg_, schedule_priorities_);
  const std::size_t num_instances = sg_.instances().size();

  struct OutState {
    CachePair i;
    CachePair d;
  };
  std::vector<std::map<int, OutState>> cross(num_instances);
  // Per-instance scratch out-states: assignment reuses each set
  // image's heap buffer across visits instead of reallocating the
  // whole pair per node. Instances only touch their own slot, so the
  // parallel rounds stay race-free.
  std::vector<OutState> scratch(
      num_instances,
      OutState{CachePair{AbsCache::cold(iconfig_, true), AbsCache::cold(iconfig_, false)},
               CachePair{AbsCache::cold(dconfig_, true), AbsCache::cold(dconfig_, false)}});

  const int entry = sg_.entry_node();
  has_state_[static_cast<std::size_t>(entry)] = 1;
  engine.push(entry);

  engine.run(
      pool_,
      [&](const int instance, const int node) {
        OutState& out = scratch[static_cast<std::size_t>(instance)];
        out.i = in_i_[static_cast<std::size_t>(node)];
        out.d = in_d_[static_cast<std::size_t>(node)];
        transfer(node, out.i, out.d, false);
        for (const int eid : sg_.node(node).succ_edges) {
          if (!values_.edge_feasible(eid)) continue;
          const int target = sg_.edge(eid).to;
          if (sg_.node(target).instance != instance) {
            // Call/ret edge: defer to the sequential merge step.
            auto& buffered = cross[static_cast<std::size_t>(instance)];
            const auto [it, fresh] = buffered.try_emplace(eid, out);
            if (!fresh) {
              it->second.i.join_with(out.i);
              it->second.d.join_with(out.d);
            }
            continue;
          }
          if (join_target(target, out.i, out.d)) engine.push(target);
        }
      },
      [&](const int instance) {
        auto& buffered = cross[static_cast<std::size_t>(instance)];
        for (auto& [eid, state] : buffered) {
          const int target = sg_.edge(eid).to;
          if (join_target(target, state.i, state.d)) engine.push(target);
        }
        buffered.clear();
      });
}

void CacheAnalysis::fixpoint_round_robin() {
  // Reference iteration: sweep every node in id order, joining
  // out-states into successors, until one full sweep changes nothing.
  // No worklist, no change summaries — the simplest sound schedule the
  // instance-rounds engine is validated against.
  has_state_[static_cast<std::size_t>(sg_.entry_node())] = 1;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const cfg::SgNode& node : sg_.nodes()) {
      if (!has_state_[static_cast<std::size_t>(node.id)]) continue;
      CachePair icache = in_i_[static_cast<std::size_t>(node.id)];
      CachePair dcache = in_d_[static_cast<std::size_t>(node.id)];
      transfer(node.id, icache, dcache, false);
      join_successors(node.id, icache, dcache, [&](int) { changed = true; });
    }
  }
}

void CacheAnalysis::persistence() {
  // Loops are processed per top-level loop tree: sibling trees have
  // disjoint node sets (the forest is an SCC decomposition), so trees
  // fan out across the pool while the depth-based "outermost qualifying
  // loop wins" resolution — which is order-independent across sibling
  // trees — stays exact.
  std::vector<std::vector<int>> trees;
  for (const cfg::Loop& loop : loops_.loops()) {
    if (loop.parent >= 0) continue;
    std::vector<int> ids;
    std::vector<int> stack{loop.id};
    while (!stack.empty()) {
      const int id = stack.back();
      stack.pop_back();
      ids.push_back(id);
      for (const int child : loops_.loop(id).children) stack.push_back(child);
    }
    std::sort(ids.begin(), ids.end());
    trees.push_back(std::move(ids));
  }
  const auto run_tree = [&](std::size_t t) { persistence_tree(trees[t]); };
  if (pool_ != nullptr) {
    pool_->parallel_for(trees.size(), run_tree);
  } else {
    for (std::size_t t = 0; t < trees.size(); ++t) run_tree(t);
  }
}

void CacheAnalysis::persistence_tree(const std::vector<int>& loop_ids) {
  // For every reducible loop: if all cacheable accesses within the loop
  // are line-precise, count distinct lines per cache set; accesses whose
  // candidate lines fit the associativity alongside their conflicts are
  // persistent (at most one miss per loop entry).
  for (const int loop_id : loop_ids) {
    const cfg::Loop& loop = loops_.loop(loop_id);
    if (loop.irreducible) continue; // rule 14.4: no virtual unrolling

    bool i_precise = true;
    bool d_precise = true;
    std::map<unsigned, std::set<std::uint32_t>> i_lines_per_set;
    std::map<unsigned, std::set<std::uint32_t>> d_lines_per_set;

    // Conflict sets come straight from the memoized recipes: a recipe
    // fetch entry is cacheable exactly when its kind isn't `uncached`,
    // and a data entry participates exactly when its kind is `cached`
    // (stores, unreachable and uncacheable accesses were already
    // filtered at recipe-build time).
    using Recipe = TransferCache::CacheRecipe;
    for (const int node_id : loop.nodes) {
      const Recipe& recipe = transfers_->cache_recipe(node_id);
      for (const Recipe::Fetch& fetch : recipe.fetch) {
        if (fetch.kind == Recipe::FetchKind::uncached) continue;
        i_lines_per_set[iconfig_.set_index(fetch.line * iconfig_.line_bytes)].insert(
            fetch.line);
      }
      for (const Recipe::Data& d : recipe.data) {
        if (d.kind != Recipe::DataKind::cached) continue;
        const std::vector<std::uint32_t>& lines = lines_for(node_id, d.access_index);
        if (lines.empty()) {
          d_precise = false;
          continue;
        }
        for (const std::uint32_t line : lines) {
          d_lines_per_set[dconfig_.set_index(line * dconfig_.line_bytes)].insert(line);
        }
      }
    }

    const auto line_persists = [](const std::map<unsigned, std::set<std::uint32_t>>& per_set,
                                  const mem::CacheConfig& config, std::uint32_t line) {
      const auto it = per_set.find(config.set_index(line * config.line_bytes));
      return it != per_set.end() && it->second.size() <= config.ways;
    };

    // Assign: outermost qualifying loop wins (fewer entries = tighter).
    for (const int node_id : loop.nodes) {
      const Recipe& recipe = transfers_->cache_recipe(node_id);
      auto& fetch_out = fetch_[static_cast<std::size_t>(node_id)];
      for (std::size_t i = 0; i < fetch_out.size(); ++i) {
        if (!i_precise) break;
        if (fetch_out[i].cls != AccessClass::not_classified &&
            fetch_out[i].cls != AccessClass::always_miss) {
          continue;
        }
        if (line_persists(i_lines_per_set, iconfig_, recipe.fetch[i].line)) {
          const int current = fetch_out[i].persistent_loop;
          if (current < 0 || loops_.loop(current).depth > loop.depth) {
            fetch_out[i].persistent_loop = loop.id;
          }
        }
      }
      auto& data_out = data_[static_cast<std::size_t>(node_id)];
      const auto& accesses = values_.accesses(node_id);
      for (std::size_t i = 0; i < data_out.size() && i < accesses.size(); ++i) {
        if (!d_precise) break;
        DataClass& dc = data_out[i];
        if (dc.is_store || dc.cls == AccessClass::always_hit ||
            dc.cls == AccessClass::uncached) {
          continue;
        }
        const std::vector<std::uint32_t>& lines = lines_for(node_id, i);
        if (lines.empty()) continue;
        const bool all_persist = std::all_of(lines.begin(), lines.end(), [&](std::uint32_t l) {
          return line_persists(d_lines_per_set, dconfig_, l);
        });
        if (all_persist) {
          const int current = dc.persistent_loop;
          if (current < 0 || loops_.loop(current).depth > loop.depth) {
            dc.persistent_loop = loop.id;
          }
        }
      }
    }
  }
}

void CacheAnalysis::run() {
  build_line_tables();
  if (schedule_ == Schedule::priority) {
    fixpoint_instance_rounds();
  } else {
    fixpoint_round_robin();
  }
  // Record classifications with the final states. Per-node work is
  // independent (reads the converged in-states, writes only this
  // node's classification rows), so it fans out across the pool.
  const auto record_node = [&](std::size_t id) {
    const cfg::SgNode& node = sg_.nodes()[id];
    if (!has_state_[id]) {
      fetch_[id].assign(node.block->insts.size(), FetchClass{});
      data_[id].clear();
      return;
    }
    CachePair icache = in_i_[id];
    CachePair dcache = in_d_[id];
    transfer(node.id, icache, dcache, true);
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(sg_.nodes().size(), record_node);
  } else {
    for (std::size_t id = 0; id < sg_.nodes().size(); ++id) record_node(id);
  }
  persistence();
}

CacheAnalysis::Stats CacheAnalysis::stats() const {
  Stats s;
  for (std::size_t n = 0; n < fetch_.size(); ++n) {
    if (!values_.node_reachable(static_cast<int>(n))) continue;
    for (const FetchClass& fc : fetch_[n]) {
      switch (fc.cls) {
      case AccessClass::always_hit: ++s.fetch_hit; break;
      case AccessClass::always_miss: ++s.fetch_miss; break;
      case AccessClass::not_classified: ++s.fetch_nc; break;
      case AccessClass::uncached: ++s.fetch_uncached; break;
      }
      if (fc.persistent_loop >= 0) ++s.persistent;
    }
    for (const DataClass& dc : data_[n]) {
      switch (dc.cls) {
      case AccessClass::always_hit: ++s.data_hit; break;
      case AccessClass::always_miss: ++s.data_miss; break;
      case AccessClass::not_classified: ++s.data_nc; break;
      case AccessClass::uncached: ++s.data_uncached; break;
      }
      if (dc.persistent_loop >= 0) ++s.persistent;
    }
  }
  return s;
}

} // namespace wcet::analysis
