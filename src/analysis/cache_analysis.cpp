#include "analysis/cache_analysis.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/transfer_cache.hpp"
#include "support/diag.hpp"
#include "support/fixpoint.hpp"
#include "support/thread_pool.hpp"

namespace wcet::analysis {

const char* to_string(AccessClass cls) {
  switch (cls) {
  case AccessClass::always_hit: return "AH";
  case AccessClass::always_miss: return "AM";
  case AccessClass::not_classified: return "NC";
  case AccessClass::uncached: return "UC";
  }
  return "?";
}

AbsCache::AbsCache(const mem::CacheConfig& config, bool must)
    : config_(config), must_(must), sets_(config.sets) {}

bool AbsCache::contains(std::uint32_t line) const {
  if (!config_.enabled) return false;
  const auto& set = sets_[config_.set_index(line * config_.line_bytes)];
  return set.contains(line);
}

void AbsCache::age_set(unsigned set_index, unsigned below_age) {
  sets_[set_index].retain([&](std::uint32_t, unsigned& age) {
    if (age < below_age) ++age;
    return age < config_.ways;
  });
}

void AbsCache::access(std::uint32_t line) {
  if (!config_.enabled) return;
  const unsigned s = config_.set_index(line * config_.line_bytes);
  auto& set = sets_[s];
  const auto it = set.find(line);
  const unsigned old_age = it != set.end() ? it->second : config_.ways;
  if (must_) {
    // Lines younger than the accessed line's (upper-bound) age grow
    // older; on a potential miss everything ages.
    age_set(s, old_age);
  } else {
    // May analysis: lines whose lower-bound age is <= the accessed
    // line's lower-bound age grow older; absent line == certain miss.
    set.retain([&](std::uint32_t other_line, unsigned& age) {
      if (other_line != line && age <= old_age) ++age;
      return age < config_.ways;
    });
  }
  sets_[s][line] = 0;
}

void AbsCache::access_one_of(std::span<const std::uint32_t> lines) {
  if (!config_.enabled || lines.empty()) return;
  if (lines.size() == 1) {
    access(lines[0]);
    return;
  }
  // Join over the alternatives.
  AbsCache result = *this;
  result.access(lines[0]);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    AbsCache alt = *this;
    alt.access(lines[i]);
    result.join_with(alt);
  }
  *this = std::move(result);
}

void AbsCache::access_unknown() {
  if (!config_.enabled) return;
  if (must_) {
    // The access may target any set: age everything (the paper's
    // whole-cache invalidation effect under low associativity).
    for (unsigned s = 0; s < config_.sets; ++s) age_set(s, config_.ways);
  }
  // May: every line may still be cached (the access may have gone
  // elsewhere); ages are lower bounds and stay valid.
}

bool AbsCache::join_with(const AbsCache& other) {
  WCET_CHECK(must_ == other.must_, "joining must with may cache");
  bool changed = false;
  for (unsigned s = 0; s < config_.sets; ++s) {
    auto& mine = sets_[s];
    const auto& theirs = other.sets_[s];
    if (must_) {
      // Intersection, maximal age: linear merge-join over the two
      // sorted sets.
      auto ot = theirs.begin();
      bool aged = false;
      const bool dropped = mine.retain([&](std::uint32_t line, unsigned& age) {
        while (ot != theirs.end() && ot->first < line) ++ot;
        if (ot == theirs.end() || ot->first != line) return false;
        if (ot->second > age) {
          age = ot->second;
          aged = true;
        }
        return true;
      });
      changed = changed || aged || dropped;
    } else {
      // Union, minimal age: merge the sorted sets into a fresh vector
      // only when something actually changes.
      if (theirs.empty()) continue;
      std::vector<std::pair<std::uint32_t, unsigned>> merged;
      merged.reserve(mine.size() + theirs.size());
      auto a = mine.begin();
      auto b = theirs.begin();
      bool set_changed = false;
      while (a != mine.end() || b != theirs.end()) {
        if (b == theirs.end() || (a != mine.end() && a->first < b->first)) {
          merged.push_back(*a++);
        } else if (a == mine.end() || b->first < a->first) {
          merged.push_back(*b++);
          set_changed = true;
        } else {
          const unsigned age = std::min(a->second, b->second);
          if (age < a->second) set_changed = true;
          merged.push_back({a->first, age});
          ++a;
          ++b;
        }
      }
      if (set_changed) {
        mine.assign_sorted(std::move(merged));
        changed = true;
      }
    }
  }
  return changed;
}

bool AbsCache::operator==(const AbsCache& other) const {
  return must_ == other.must_ && sets_ == other.sets_;
}

CacheAnalysis::CacheAnalysis(const cfg::Supergraph& sg, const cfg::LoopForest& loops,
                             const ValueAnalysis& values, const mem::MemoryMap& memmap,
                             const mem::CacheConfig& icache, const mem::CacheConfig& dcache,
                             Schedule schedule, std::vector<int> schedule_priorities,
                             TransferCache* transfers, ThreadPool* pool)
    : sg_(sg), loops_(loops), values_(values), memmap_(memmap), iconfig_(icache),
      dconfig_(dcache), schedule_(schedule),
      schedule_priorities_(std::move(schedule_priorities)), transfers_(transfers),
      pool_(pool) {
  if (schedule_ == Schedule::priority && schedule_priorities_.empty()) {
    schedule_priorities_ = cfg::rpo_priorities(sg);
  }
  const std::size_t n = sg.nodes().size();
  in_i_.assign(n, CachePair{AbsCache::cold(iconfig_, true), AbsCache::cold(iconfig_, false)});
  in_d_.assign(n, CachePair{AbsCache::cold(dconfig_, true), AbsCache::cold(dconfig_, false)});
  has_state_.assign(n, false);
  fetch_.resize(n);
  data_.resize(n);
}

CacheAnalysis::~CacheAnalysis() = default;

void CacheAnalysis::build_line_tables() {
  if (transfers_ == nullptr) {
    // No shared cache attached (standalone construction, e.g. tests):
    // build a private one so there is exactly one table-building path.
    own_transfers_ = std::make_unique<TransferCache>(sg_);
    own_transfers_->attach(values_);
    transfers_ = own_transfers_.get();
  }
  transfers_->build_data_lines(dconfig_, pool_);
}

const std::vector<std::uint32_t>& CacheAnalysis::lines_for(int node, std::size_t index) const {
  return transfers_->data_lines(node)[index];
}

AccessClass CacheAnalysis::classify(const CachePair& state,
                                    std::span<const std::uint32_t> lines) const {
  if (lines.empty()) return AccessClass::not_classified;
  bool all_must = true;
  bool none_may = true;
  for (const std::uint32_t line : lines) {
    if (!state.must.contains(line)) all_must = false;
    if (state.may.contains(line)) none_may = false;
  }
  if (all_must) return AccessClass::always_hit;
  if (none_may) return AccessClass::always_miss;
  return AccessClass::not_classified;
}

void CacheAnalysis::apply_access(CachePair& state, std::span<const std::uint32_t> lines) {
  if (lines.empty()) {
    state.must.access_unknown();
    state.may.access_unknown();
  } else {
    state.must.access_one_of(lines);
    state.may.access_one_of(lines);
  }
}

void CacheAnalysis::transfer(int node, CachePair& icache, CachePair& dcache, bool record) {
  const cfg::SgNode& n = sg_.node(node);
  auto& fetch_out = fetch_[static_cast<std::size_t>(node)];
  auto& data_out = data_[static_cast<std::size_t>(node)];
  if (record) {
    fetch_out.assign(n.block->insts.size(), FetchClass{});
    data_out.clear();
  }

  const auto& accesses = values_.accesses(node);
  std::size_t access_index = 0;

  std::uint32_t pc = n.block->begin;
  std::uint32_t prev_line = ~0u;
  bool have_prev = false;
  for (std::size_t i = 0; i < n.block->insts.size(); ++i, pc += 4) {
    const isa::Inst& inst = n.block->insts[i];
    // --- Instruction fetch.
    const mem::Region& fregion = memmap_.region_for(pc);
    if (!fregion.cacheable || !iconfig_.enabled) {
      if (record) fetch_out[i].cls = AccessClass::uncached;
    } else {
      const std::uint32_t line = iconfig_.line_of(pc);
      if (have_prev && line == prev_line) {
        // Same line as the immediately preceding fetch: guaranteed hit.
        if (record) fetch_out[i].cls = AccessClass::always_hit;
      } else {
        const std::uint32_t lines[1] = {line};
        if (record) fetch_out[i].cls = classify(icache, lines);
        apply_access(icache, lines);
      }
      prev_line = line;
      have_prev = true;
    }

    // --- Data access.
    if (!inst.is_mem_access()) continue;
    WCET_CHECK(access_index < accesses.size() || values_.state_in(node).bottom,
               "access list out of sync with instructions");
    if (access_index >= accesses.size()) continue;
    const AccessInfo& access = accesses[access_index];
    const std::vector<std::uint32_t>& lines = lines_for(node, access_index);
    ++access_index;
    DataClass dc;
    dc.pc = access.pc;
    dc.is_store = access.is_store;
    if (access.is_store) {
      // Write-through, no-write-allocate: bypasses the cache entirely.
      dc.cls = AccessClass::uncached;
    } else if (access.addr.is_bottom()) {
      dc.cls = AccessClass::uncached; // unreachable
    } else if (!memmap_.all_cacheable(access.addr) || !dconfig_.enabled) {
      dc.cls = AccessClass::uncached;
      // If part of the range is cacheable, the access may still disturb
      // the cache.
      if (dconfig_.enabled) {
        if (lines.empty()) apply_access(dcache, lines);
      }
    } else {
      dc.cls = classify(dcache, lines);
      dc.candidate_count = std::max<unsigned>(1, static_cast<unsigned>(lines.size()));
      apply_access(dcache, lines);
    }
    if (record) data_out.push_back(dc);
  }
}

template <typename PushFn>
void CacheAnalysis::join_successors(int node, const CachePair& icache,
                                    const CachePair& dcache, PushFn&& push_changed) {
  for (const int eid : sg_.node(node).succ_edges) {
    if (!values_.edge_feasible(eid)) continue;
    const int target = sg_.edge(eid).to;
    const auto t = static_cast<std::size_t>(target);
    bool changed = false;
    if (!has_state_[t]) {
      in_i_[t] = icache;
      in_d_[t] = dcache;
      has_state_[t] = true;
      changed = true;
    } else {
      changed |= in_i_[t].join_with(icache);
      changed |= in_d_[t].join_with(dcache);
    }
    if (changed) push_changed(target);
  }
}

void CacheAnalysis::fixpoint() {
  // Priority worklist in reverse-postorder (see support/fixpoint.hpp).
  // Re-queueing is gated on join_with's exact change reporting: an
  // unchanged successor is never pushed, and a successor that already
  // absorbed this out-state joins as a no-op merge pass.
  PriorityWorklist worklist(schedule_priorities_);

  const int entry = sg_.entry_node();
  has_state_[static_cast<std::size_t>(entry)] = true;
  worklist.push(entry);

  run_fixpoint(worklist, [&](const int node) {
    CachePair icache = in_i_[static_cast<std::size_t>(node)];
    CachePair dcache = in_d_[static_cast<std::size_t>(node)];
    transfer(node, icache, dcache, false);
    join_successors(node, icache, dcache, [&](const int target) { worklist.push(target); });
  });
}

void CacheAnalysis::fixpoint_round_robin() {
  // Reference iteration: sweep every node in id order, joining
  // out-states into successors, until one full sweep changes nothing.
  // No worklist, no change summaries — the simplest sound schedule the
  // priority engine is validated against.
  has_state_[static_cast<std::size_t>(sg_.entry_node())] = true;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const cfg::SgNode& node : sg_.nodes()) {
      if (!has_state_[static_cast<std::size_t>(node.id)]) continue;
      CachePair icache = in_i_[static_cast<std::size_t>(node.id)];
      CachePair dcache = in_d_[static_cast<std::size_t>(node.id)];
      transfer(node.id, icache, dcache, false);
      join_successors(node.id, icache, dcache, [&](int) { changed = true; });
    }
  }
}

void CacheAnalysis::persistence() {
  // Loops are processed per top-level loop tree: sibling trees have
  // disjoint node sets (the forest is an SCC decomposition), so trees
  // fan out across the pool while the depth-based "outermost qualifying
  // loop wins" resolution — which is order-independent across sibling
  // trees — stays exact.
  std::vector<std::vector<int>> trees;
  for (const cfg::Loop& loop : loops_.loops()) {
    if (loop.parent >= 0) continue;
    std::vector<int> ids;
    std::vector<int> stack{loop.id};
    while (!stack.empty()) {
      const int id = stack.back();
      stack.pop_back();
      ids.push_back(id);
      for (const int child : loops_.loop(id).children) stack.push_back(child);
    }
    std::sort(ids.begin(), ids.end());
    trees.push_back(std::move(ids));
  }
  const auto run_tree = [&](std::size_t t) { persistence_tree(trees[t]); };
  if (pool_ != nullptr) {
    pool_->parallel_for(trees.size(), run_tree);
  } else {
    for (std::size_t t = 0; t < trees.size(); ++t) run_tree(t);
  }
}

void CacheAnalysis::persistence_tree(const std::vector<int>& loop_ids) {
  // For every reducible loop: if all cacheable accesses within the loop
  // are line-precise, count distinct lines per cache set; accesses whose
  // candidate lines fit the associativity alongside their conflicts are
  // persistent (at most one miss per loop entry).
  for (const int loop_id : loop_ids) {
    const cfg::Loop& loop = loops_.loop(loop_id);
    if (loop.irreducible) continue; // rule 14.4: no virtual unrolling

    bool i_precise = true;
    bool d_precise = true;
    std::map<unsigned, std::set<std::uint32_t>> i_lines_per_set;
    std::map<unsigned, std::set<std::uint32_t>> d_lines_per_set;

    for (const int node_id : loop.nodes) {
      const cfg::SgNode& node = sg_.node(node_id);
      std::uint32_t pc = node.block->begin;
      for (std::size_t i = 0; i < node.block->insts.size(); ++i, pc += 4) {
        if (iconfig_.enabled && memmap_.region_for(pc).cacheable) {
          const std::uint32_t line = iconfig_.line_of(pc);
          i_lines_per_set[iconfig_.set_index(pc)].insert(line);
        }
      }
      const auto& node_accesses = values_.accesses(node_id);
      for (std::size_t ai = 0; ai < node_accesses.size(); ++ai) {
        const AccessInfo& access = node_accesses[ai];
        if (access.is_store || access.addr.is_bottom()) continue;
        if (!dconfig_.enabled) continue;
        if (!memmap_.all_cacheable(access.addr)) continue;
        const std::vector<std::uint32_t>& lines = lines_for(node_id, ai);
        if (lines.empty()) {
          d_precise = false;
          continue;
        }
        for (const std::uint32_t line : lines) {
          d_lines_per_set[dconfig_.set_index(line * dconfig_.line_bytes)].insert(line);
        }
      }
    }

    const auto line_persists = [](const std::map<unsigned, std::set<std::uint32_t>>& per_set,
                                  const mem::CacheConfig& config, std::uint32_t line) {
      const auto it = per_set.find(config.set_index(line * config.line_bytes));
      return it != per_set.end() && it->second.size() <= config.ways;
    };

    // Assign: outermost qualifying loop wins (fewer entries = tighter).
    for (const int node_id : loop.nodes) {
      const cfg::SgNode& node = sg_.node(node_id);
      auto& fetch_out = fetch_[static_cast<std::size_t>(node_id)];
      std::uint32_t pc = node.block->begin;
      for (std::size_t i = 0; i < fetch_out.size(); ++i, pc += 4) {
        if (!i_precise) break;
        if (fetch_out[i].cls != AccessClass::not_classified &&
            fetch_out[i].cls != AccessClass::always_miss) {
          continue;
        }
        if (line_persists(i_lines_per_set, iconfig_, iconfig_.line_of(pc))) {
          const int current = fetch_out[i].persistent_loop;
          if (current < 0 || loops_.loop(current).depth > loop.depth) {
            fetch_out[i].persistent_loop = loop.id;
          }
        }
      }
      auto& data_out = data_[static_cast<std::size_t>(node_id)];
      const auto& accesses = values_.accesses(node_id);
      for (std::size_t i = 0; i < data_out.size() && i < accesses.size(); ++i) {
        if (!d_precise) break;
        DataClass& dc = data_out[i];
        if (dc.is_store || dc.cls == AccessClass::always_hit ||
            dc.cls == AccessClass::uncached) {
          continue;
        }
        const std::vector<std::uint32_t>& lines = lines_for(node_id, i);
        if (lines.empty()) continue;
        const bool all_persist = std::all_of(lines.begin(), lines.end(), [&](std::uint32_t l) {
          return line_persists(d_lines_per_set, dconfig_, l);
        });
        if (all_persist) {
          const int current = dc.persistent_loop;
          if (current < 0 || loops_.loop(current).depth > loop.depth) {
            dc.persistent_loop = loop.id;
          }
        }
      }
    }
  }
}

void CacheAnalysis::run() {
  build_line_tables();
  if (schedule_ == Schedule::priority) {
    fixpoint();
  } else {
    fixpoint_round_robin();
  }
  // Record classifications with the final states. Per-node work is
  // independent (reads the converged in-states, writes only this
  // node's classification rows), so it fans out across the pool.
  const auto record_node = [&](std::size_t id) {
    const cfg::SgNode& node = sg_.nodes()[id];
    if (!has_state_[id]) {
      fetch_[id].assign(node.block->insts.size(), FetchClass{});
      data_[id].clear();
      return;
    }
    CachePair icache = in_i_[id];
    CachePair dcache = in_d_[id];
    transfer(node.id, icache, dcache, true);
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(sg_.nodes().size(), record_node);
  } else {
    for (std::size_t id = 0; id < sg_.nodes().size(); ++id) record_node(id);
  }
  persistence();
}

CacheAnalysis::Stats CacheAnalysis::stats() const {
  Stats s;
  for (std::size_t n = 0; n < fetch_.size(); ++n) {
    if (!values_.node_reachable(static_cast<int>(n))) continue;
    for (const FetchClass& fc : fetch_[n]) {
      switch (fc.cls) {
      case AccessClass::always_hit: ++s.fetch_hit; break;
      case AccessClass::always_miss: ++s.fetch_miss; break;
      case AccessClass::not_classified: ++s.fetch_nc; break;
      case AccessClass::uncached: ++s.fetch_uncached; break;
      }
      if (fc.persistent_loop >= 0) ++s.persistent;
    }
    for (const DataClass& dc : data_[n]) {
      switch (dc.cls) {
      case AccessClass::always_hit: ++s.data_hit; break;
      case AccessClass::always_miss: ++s.data_miss; break;
      case AccessClass::not_classified: ++s.data_nc; break;
      case AccessClass::uncached: ++s.data_uncached; break;
      }
      if (dc.persistent_loop >= 0) ++s.persistent;
    }
  }
  return s;
}

} // namespace wcet::analysis
