#include "analysis/cache_analysis.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <map>
#include <optional>
#include <set>

#include "analysis/transfer_cache.hpp"
#include "support/budget.hpp"
#include "support/diag.hpp"
#include "support/fault_inject.hpp"
#include "support/instance_rounds.hpp"
#include "support/thread_pool.hpp"

namespace wcet::analysis {

namespace {

// Telemetry only (see CacheJoinStats): batched per join_with call, so
// the hot loop pays two relaxed atomic adds, not one per set.
std::atomic<std::uint64_t> g_cache_joins{0};
std::atomic<std::uint64_t> g_cache_join_skips{0};

} // namespace

CacheJoinStats cache_join_stats() {
  return {g_cache_joins.load(std::memory_order_relaxed),
          g_cache_join_skips.load(std::memory_order_relaxed)};
}

void reset_cache_join_stats() {
  g_cache_joins.store(0, std::memory_order_relaxed);
  g_cache_join_skips.store(0, std::memory_order_relaxed);
}

const char* to_string(AccessClass cls) {
  switch (cls) {
  case AccessClass::always_hit: return "AH";
  case AccessClass::always_miss: return "AM";
  case AccessClass::not_classified: return "NC";
  case AccessClass::uncached: return "UC";
  }
  return "?";
}

AbsCache::AbsCache(const mem::CacheConfig& config, bool must)
    : config_(config), must_(must), sets_(config.sets) {}

bool AbsCache::contains(std::uint32_t line) const {
  if (!config_.enabled) return false;
  return sets_.at(config_.set_index(line * config_.line_bytes)).contains(line);
}

void AbsCache::age_set(unsigned set_index, unsigned below_age) {
  if (sets_.at(set_index).empty()) return; // nothing to age, keep the leaf shared
  SetImage& image = sets_.mutate(set_index);
  image.retain([&](std::uint32_t, unsigned& age) {
    if (age < below_age) ++age;
    return age < config_.ways;
  });
  if (image.empty()) sets_.clear_leaf(set_index);
}

void AbsCache::access_set(SetImage& set, std::uint32_t line) const {
  const auto it = set.find(line);
  const unsigned old_age = it != set.end() ? it->second : config_.ways;
  if (it != set.end() && (must_ || old_age + 1 < config_.ways)) {
    // In-place fast path for a present line: no entry can age out
    // (must: aged entries stay at or below old_age <= ways-1; may:
    // at or below old_age+1 < ways), and the accessed entry rewrites
    // to age 0 where it sits — one pass, no shifting, no reinsertion.
    for (auto& [l, age] : set) {
      if (l == line) {
        age = 0;
      } else if (must_ ? age < old_age : age <= old_age) {
        ++age;
      }
    }
    return;
  }
  if (must_) {
    // Lines younger than the accessed line's (upper-bound) age grow
    // older; on a potential miss everything ages.
    set.retain([&](std::uint32_t, unsigned& age) {
      if (age < old_age) ++age;
      return age < config_.ways;
    });
  } else {
    // May analysis: lines whose lower-bound age is <= the accessed
    // line's lower-bound age grow older; absent line == certain miss.
    set.retain([&](std::uint32_t other_line, unsigned& age) {
      if (other_line != line && age <= old_age) ++age;
      return age < config_.ways;
    });
  }
  set[line] = 0;
}

bool AbsCache::access_into(const SetImage& base, std::uint32_t line, SetImage& out) const {
  // Mirrors access_set exactly, emitting into `out` instead of
  // rewriting in place, and reporting out != base on the fly.
  const auto it = base.find(line);
  const unsigned old_age = it != base.end() ? it->second : config_.ways;
  out.clear();
  bool changed = false;
  bool inserted = false;
  for (const auto& [l, age] : base) {
    if (l == line) {
      out.append_sorted(line, 0u);
      inserted = true;
      changed |= age != 0;
      continue;
    }
    unsigned aged = age;
    if (must_ ? age < old_age : age <= old_age) ++aged;
    if (aged >= config_.ways) {
      changed = true; // dropped
      continue;
    }
    if (!inserted && l > line) {
      out.append_sorted(line, 0u); // line absent in base: insert in order
      inserted = true;
      changed = true;
    }
    out.append_sorted(l, aged);
    changed |= aged != age;
  }
  if (!inserted) {
    out.append_sorted(line, 0u);
    changed = true;
  }
  return changed;
}

bool AbsCache::access_changes(const SetImage& set, std::uint32_t line) const {
  // Mirrors access_set exactly. The accessed line lands at age 0, so
  // the image changes unless the line is already youngest — and, in the
  // may variant, no *other* line shares age 0 (those would age).
  const auto it = set.find(line);
  if (it == set.end() || it->second != 0) return true;
  if (must_) return false; // only ages strictly younger than 0: none
  for (const auto& [other_line, age] : set) {
    if (other_line != line && age == 0) return true;
  }
  return false;
}

void AbsCache::access(std::uint32_t line) {
  if (!config_.enabled) return;
  const unsigned s = config_.set_index(line * config_.line_bytes);
  // At convergence most accesses re-touch an already-youngest line;
  // skipping the detach keeps the leaf shared for the join fast path.
  if (!access_changes(sets_.at(s), line)) return;
  access_set(sets_.mutate(s), line);
}

void AbsCache::access_one_of(std::span<const std::uint32_t> lines) {
  if (!config_.enabled || lines.empty()) return;
  if (lines.size() == 1) {
    access(lines[0]);
    return;
  }
  // Join over the alternatives, computed per affected set: an
  // alternative only rewrites the set image of its own line, so for
  // every other set it contributes the unmodified original image, and
  // the join is pointwise per set. The join is a semilattice operation
  // (must: intersection/max age; may: union/min age), so the
  // accumulation order is irrelevant and the result is the same
  // canonical sorted image the whole-cache formulation produced —
  // without copying the untouched sets at all.
  std::vector<unsigned> affected;
  affected.reserve(lines.size());
  SetImage scratch;
  for_each_candidate_set(config_, lines, affected, [&](unsigned s, bool outside) {
    const SetImage& original = sets_.at(s);
    SetImage result;
    bool first = true;
    for (const std::uint32_t line : lines) {
      if (config_.set_index(line * config_.line_bytes) != s) continue;
      scratch = original;
      access_set(scratch, line);
      if (first) {
        result = std::move(scratch);
        first = false;
      } else {
        join_set(result, scratch);
      }
    }
    if (outside) join_set(result, original);
    // Install only a real change: an identical result would trade the
    // shared leaf for a fresh allocation and defeat join gating.
    if (result == original) return;
    if (result.empty()) {
      sets_.clear_leaf(s);
    } else {
      sets_.set_leaf(s, std::move(result));
    }
  });
}

void AbsCache::access_unknown() {
  if (!config_.enabled) return;
  if (must_) {
    // The access may target any set: age everything (the paper's
    // whole-cache invalidation effect under low associativity).
    for (unsigned s = 0; s < config_.sets; ++s) age_set(s, config_.ways);
  }
  // May: every line may still be cached (the access may have gone
  // elsewhere); ages are lower bounds and stay valid.
}

bool AbsCache::join_set(SetImage& mine, const SetImage& theirs) const {
  if (must_) {
    // Intersection, maximal age: linear merge-join over the two
    // sorted sets.
    auto ot = theirs.begin();
    bool aged = false;
    const bool dropped = mine.retain([&](std::uint32_t line, unsigned& age) {
      while (ot != theirs.end() && ot->first < line) ++ot;
      if (ot == theirs.end() || ot->first != line) return false;
      if (ot->second > age) {
        age = ot->second;
        aged = true;
      }
      return true;
    });
    return aged || dropped;
  }
  // Union, minimal age: merge the sorted sets into a reused scratch
  // buffer and copy back only when something actually changes (the
  // thread_local keeps the hot join loops allocation-free; the merge is
  // a pure value computation, so worker identity cannot affect results).
  if (theirs.empty()) return false;
  static thread_local std::vector<std::pair<std::uint32_t, unsigned>> merged;
  merged.clear();
  auto a = mine.begin();
  auto b = theirs.begin();
  bool set_changed = false;
  while (a != mine.end() || b != theirs.end()) {
    if (b == theirs.end() || (a != mine.end() && a->first < b->first)) {
      merged.push_back(*a++);
    } else if (a == mine.end() || b->first < a->first) {
      merged.push_back(*b++);
      set_changed = true;
    } else {
      const unsigned age = std::min(a->second, b->second);
      if (age < a->second) set_changed = true;
      merged.push_back({a->first, age});
      ++a;
      ++b;
    }
  }
  if (set_changed) {
    mine.assign_range(merged.begin(), merged.end());
    return true;
  }
  return false;
}

bool AbsCache::must_join_changes(const SetImage& mine, const SetImage& theirs) const {
  // Mirrors the must branch of join_set: change iff any of my lines is
  // absent from theirs (dropped) or carries a larger age there (aged).
  auto ot = theirs.begin();
  for (const auto& [line, age] : mine) {
    while (ot != theirs.end() && ot->first < line) ++ot;
    if (ot == theirs.end() || ot->first != line) return true;
    if (ot->second > age) return true;
  }
  return false;
}

bool AbsCache::may_join_changes(const SetImage& mine, const SetImage& theirs) const {
  // Mirrors the may branch of join_set: change iff theirs holds a line
  // I lack, or a smaller age for a shared line.
  auto it = mine.begin();
  for (const auto& [line, age] : theirs) {
    while (it != mine.end() && it->first < line) ++it;
    if (it == mine.end() || it->first != line) return true;
    if (age < it->second) return true;
  }
  return false;
}

bool AbsCache::join_core(unsigned s, const SetImage& theirs,
                         const CowVec<SetImage>* alias_source) {
  // One join-gating implementation for both flavors: `alias_source`
  // non-null means `theirs` is that vector's leaf for `s`, so a result
  // that lands exactly on their value can alias the leaf (keeping the
  // pointer-equality skip alive for the next propagation) instead of
  // allocating a copy.
  const SetImage& mine = sets_.at(s);
  if (must_) {
    if (mine.empty()) return false; // intersection with empty stays empty
    if (!must_join_changes(mine, theirs)) return false;
  } else {
    if (theirs.empty()) return false; // union adds nothing
    if (mine.empty()) {
      // Wholesale replacement.
      if (alias_source != nullptr) {
        sets_.share_leaf_from(s, *alias_source);
      } else {
        sets_.set_leaf(s, theirs);
      }
      return true;
    }
    if (!may_join_changes(mine, theirs)) return false;
  }
  // Uniquely owned leaf: merge straight into it — no clone, no fresh
  // block (the common case once a target has stopped being shared).
  if (sets_.mutates_in_place(s)) {
    SetImage& image = sets_.mutate(s);
    join_set(image, theirs);
    if (image.empty()) sets_.clear_leaf(s);
    return true;
  }
  SetImage merged = mine;
  join_set(merged, theirs);
  if (merged.empty()) {
    sets_.clear_leaf(s); // canonical empty: null leaf
  } else if (alias_source != nullptr && merged == theirs) {
    sets_.share_leaf_from(s, *alias_source);
  } else {
    sets_.set_leaf(s, std::move(merged));
  }
  return true;
}

bool AbsCache::join_image(unsigned s, const SetImage& theirs) {
  return join_core(s, theirs, nullptr);
}

bool AbsCache::join_leaf(unsigned s, const AbsCache& other) {
  return join_core(s, other.sets_.at(s), &other.sets_);
}

bool AbsCache::join_with(const AbsCache& other) {
  WCET_CHECK(must_ == other.must_, "joining must with may cache");
  // Pointer-equality gating: a shared leaf is the same value on both
  // sides, and join(x, x) = x, so it needs no merge and no change
  // report. Dry-run predicates keep unchanged targets shared too, so a
  // no-op join never detaches anything.
  if (sets_.same_as(other.sets_)) {
    g_cache_join_skips.fetch_add(config_.sets, std::memory_order_relaxed);
    return false;
  }
  bool changed = false;
  std::uint64_t joins = 0;
  std::uint64_t skips = 0;
  for (unsigned s = 0; s < config_.sets; ++s) {
    if (sets_.leaf_same_as(s, other.sets_)) {
      ++skips;
      continue;
    }
    ++joins;
    changed |= join_leaf(s, other);
  }
  g_cache_joins.fetch_add(joins, std::memory_order_relaxed);
  g_cache_join_skips.fetch_add(skips, std::memory_order_relaxed);
  return changed;
}

void AbsCache::apply_one_of_image(SetImage& image, std::span<const std::uint32_t> lines,
                                  bool outside, SetImage& scratch_alt,
                                  SetImage& scratch_result) const {
  // The per-set block of access_one_of, on a detached value image. The
  // two scratches are caller-owned and only ever swapped, so their heap
  // buffers survive across calls.
  scratch_result.clear();
  bool first = true;
  for (const std::uint32_t line : lines) {
    scratch_alt = image;
    access_set(scratch_alt, line);
    if (first) {
      std::swap(scratch_result, scratch_alt);
      first = false;
    } else {
      join_set(scratch_result, scratch_alt);
    }
  }
  if (outside) join_set(scratch_result, image);
  std::swap(image, scratch_result);
}

void AbsCache::age_image(SetImage& image) const {
  // The must half of access_unknown on one set (may is the identity).
  image.retain([&](std::uint32_t, unsigned& age) {
    ++age;
    return age < config_.ways;
  });
}

bool AbsCache::join_with_overlay(const AbsCache& source, std::span<const unsigned> sets,
                                 std::span<const unsigned char> changed,
                                 const SetImage* images) {
  WCET_CHECK(must_ == source.must_, "joining must with may cache");
  bool any_changed_image = false;
  for (const unsigned char c : changed) any_changed_image |= c != 0;
  if (!any_changed_image && sets_.same_as(source.sets_)) {
    // Identity transfer into a pointer-identical state: join(x, x) = x.
    g_cache_join_skips.fetch_add(config_.sets, std::memory_order_relaxed);
    return false;
  }
  // A set needs work exactly when its overlay image changed or the two
  // leaves differ. Build that selection as a bitmask per 64-set chunk:
  // the identity diff over the contiguous leaf arrays is a tight
  // vectorizable loop, so the (common) mostly-shared edge costs a few
  // SIMD compares instead of a per-set scan with branches.
  bool result = false;
  std::uint64_t joins = 0;
  std::size_t cursor = 0;
  for (unsigned base = 0; base < config_.sets; base += 64) {
    // Re-fetch the leaf arrays per chunk: a join in an earlier chunk
    // may have detached this state's spine (releasing its reference to
    // the old array, whose last co-owner could drop it concurrently),
    // and a self-loop join detaches the source's. Within one chunk the
    // mask is built before any mutation, so the pointers stay valid.
    const auto* mine_leaves = sets_.leaf_data();
    const auto* source_leaves = source.sets_.leaf_data();
    const unsigned chunk = std::min(64u, config_.sets - base);
    std::uint64_t pending = 0;
    for (unsigned i = 0; i < chunk; ++i) {
      pending |= static_cast<std::uint64_t>(mine_leaves[base + i].identity() !=
                                            source_leaves[base + i].identity())
                 << i;
    }
    for (; cursor < sets.size() && sets[cursor] < base + chunk; ++cursor) {
      if (changed[cursor] != 0) pending |= std::uint64_t{1} << (sets[cursor] - base);
    }
    while (pending != 0) {
      const unsigned s = base + static_cast<unsigned>(std::countr_zero(pending));
      pending &= pending - 1;
      ++joins;
      // Re-locate the overlay entry for s (if any) — the cursor has
      // already advanced past this chunk.
      const auto it = std::lower_bound(sets.begin(), sets.end(), s);
      if (it != sets.end() && *it == s &&
          changed[static_cast<std::size_t>(it - sets.begin())] != 0) {
        result |= join_image(s, images[it - sets.begin()]);
      } else {
        result |= join_leaf(s, source);
      }
    }
  }
  g_cache_joins.fetch_add(joins, std::memory_order_relaxed);
  g_cache_join_skips.fetch_add(config_.sets - joins, std::memory_order_relaxed);
  return result;
}

void AbsCache::install_image(unsigned s, const SetImage& image) {
  if (image.empty()) {
    sets_.clear_leaf(s);
  } else {
    sets_.set_leaf(s, image);
  }
}

bool AbsCache::operator==(const AbsCache& other) const {
  return must_ == other.must_ && sets_ == other.sets_;
}

CacheAnalysis::CacheAnalysis(const cfg::Supergraph& sg, const cfg::LoopForest& loops,
                             const ValueAnalysis& values, const mem::MemoryMap& memmap,
                             const mem::CacheConfig& icache, const mem::CacheConfig& dcache,
                             Schedule schedule, std::vector<int> schedule_priorities,
                             TransferCache* transfers, ThreadPool* pool)
    : sg_(sg), loops_(loops), values_(values), memmap_(memmap), iconfig_(icache),
      dconfig_(dcache), schedule_(schedule),
      schedule_priorities_(std::move(schedule_priorities)), transfers_(transfers),
      pool_(pool) {
  if (schedule_ == Schedule::priority && schedule_priorities_.empty()) {
    schedule_priorities_ = cfg::rpo_priorities(sg);
  }
  const std::size_t n = sg.nodes().size();
  in_i_.assign(n, CachePair{AbsCache::cold(iconfig_, true), AbsCache::cold(iconfig_, false)});
  in_d_.assign(n, CachePair{AbsCache::cold(dconfig_, true), AbsCache::cold(dconfig_, false)});
  has_state_.assign(n, 0);
  fetch_.resize(n);
  data_.resize(n);
}

CacheAnalysis::~CacheAnalysis() = default;

void CacheAnalysis::build_line_tables() {
  if (transfers_ == nullptr) {
    // No shared cache attached (standalone construction, e.g. tests):
    // build a private one so there is exactly one table-building path.
    own_transfers_ = std::make_unique<TransferCache>(sg_);
    own_transfers_->attach(values_);
    transfers_ = own_transfers_.get();
  }
  // Builds both the candidate-line tables and the per-node transfer
  // recipes the fixpoint replays (once per decode round, fanned out
  // over the pool into dense per-node slots).
  transfers_->build_cache_recipes(memmap_, iconfig_, dconfig_, pool_);
}

const std::vector<std::uint32_t>& CacheAnalysis::lines_for(int node, std::size_t index) const {
  return transfers_->data_lines(node)[index];
}

AccessClass CacheAnalysis::classify(const CachePair& state,
                                    std::span<const std::uint32_t> lines) const {
  if (lines.empty()) return AccessClass::not_classified;
  bool all_must = true;
  bool none_may = true;
  for (const std::uint32_t line : lines) {
    if (!state.must.contains(line)) all_must = false;
    if (state.may.contains(line)) none_may = false;
  }
  if (all_must) return AccessClass::always_hit;
  if (none_may) return AccessClass::always_miss;
  return AccessClass::not_classified;
}

void CacheAnalysis::apply_access(CachePair& state, std::span<const std::uint32_t> lines) {
  if (lines.empty()) {
    state.must.access_unknown();
    state.may.access_unknown();
  } else {
    state.must.access_one_of(lines);
    state.may.access_one_of(lines);
  }
}

void CacheAnalysis::transfer(int node, CachePair& icache, CachePair& dcache, bool record) {
  // The node's accesses were decoded into a recipe once (memory
  // regions, line numbers, cacheability, candidate-line tables); every
  // visit replays that recipe against the abstract states. Fetches
  // touch only the i-cache and data accesses only the d-cache, so the
  // two replay loops need not interleave per instruction: the resulting
  // states and classifications are identical to the interleaved walk.
  using Recipe = TransferCache::CacheRecipe;
  const Recipe& recipe = transfers_->cache_recipe(node);

  if (!record) {
    // Fixpoint mode: state evolution only, no classification rows.
    for (const std::uint32_t line : recipe.fetch_apply) {
      icache.must.access(line);
      icache.may.access(line);
    }
    for (const Recipe::Data& d : recipe.data) {
      switch (d.kind) {
      case Recipe::DataKind::bypass: break;
      case Recipe::DataKind::disturb:
        dcache.must.access_unknown();
        dcache.may.access_unknown();
        break;
      case Recipe::DataKind::cached:
        apply_access(dcache, lines_for(node, d.access_index));
        break;
      }
    }
    return;
  }

  auto& fetch_out = fetch_[static_cast<std::size_t>(node)];
  auto& data_out = data_[static_cast<std::size_t>(node)];
  fetch_out.assign(recipe.fetch.size(), FetchClass{});
  data_out.clear();
  for (std::size_t i = 0; i < recipe.fetch.size(); ++i) {
    switch (recipe.fetch[i].kind) {
    case Recipe::FetchKind::uncached:
      fetch_out[i].cls = AccessClass::uncached;
      break;
    case Recipe::FetchKind::same_line:
      // Same line as the immediately preceding fetch: guaranteed hit.
      fetch_out[i].cls = AccessClass::always_hit;
      break;
    case Recipe::FetchKind::line: {
      const std::uint32_t lines[1] = {recipe.fetch[i].line};
      fetch_out[i].cls = classify(icache, lines);
      apply_access(icache, lines);
      break;
    }
    }
  }
  for (const Recipe::Data& d : recipe.data) {
    DataClass dc;
    dc.pc = d.pc;
    dc.is_store = d.is_store;
    switch (d.kind) {
    case Recipe::DataKind::bypass:
      // Write-through store, unreachable access, or uncacheable range.
      dc.cls = AccessClass::uncached;
      break;
    case Recipe::DataKind::disturb:
      // Partially cacheable imprecise range: the concrete access may be
      // anything from a cache hit to an uncached device read, so it is
      // not-classified for timing (hit in the BCET sense, full miss in
      // the WCET sense — `uncached` here would under-charge nothing but
      // over-claim the best case) and disturbs the abstract cache.
      dc.cls = AccessClass::not_classified;
      dcache.must.access_unknown();
      dcache.may.access_unknown();
      break;
    case Recipe::DataKind::cached: {
      const std::vector<std::uint32_t>& lines = lines_for(node, d.access_index);
      dc.cls = classify(dcache, lines);
      dc.candidate_count = std::max<unsigned>(1, static_cast<unsigned>(lines.size()));
      apply_access(dcache, lines);
      break;
    }
    }
    data_out.push_back(dc);
  }
}

bool CacheAnalysis::join_target(int target, const CachePair& icache,
                                const CachePair& dcache) {
  const auto t = static_cast<std::size_t>(target);
  if (!has_state_[t]) {
    in_i_[t] = icache;
    in_d_[t] = dcache;
    has_state_[t] = 1;
    return true;
  }
  bool changed = in_i_[t].join_with(icache);
  changed |= in_d_[t].join_with(dcache);
  return changed;
}

template <typename PushFn>
void CacheAnalysis::join_successors(int node, const CachePair& icache,
                                    const CachePair& dcache, PushFn&& push_changed) {
  for (const int eid : sg_.node(node).succ_edges) {
    if (!values_.edge_feasible(eid)) continue;
    const int target = sg_.edge(eid).to;
    if (join_target(target, icache, dcache)) push_changed(target);
  }
}

bool CacheAnalysis::warm_guard_ok(const std::vector<char>& instance_clean) const {
  for (const cfg::Loop& loop : loops_.loops()) {
    bool has_clean = false;
    bool has_dirty = false;
    for (const int nid : loop.nodes) {
      const int instance = sg_.node(nid).instance;
      if (instance_clean[static_cast<std::size_t>(instance)] != 0) {
        has_clean = true;
      } else {
        has_dirty = true;
      }
      if (has_clean && has_dirty) return false;
    }
  }
  return true;
}

bool CacheAnalysis::warm_boundary_ok(const CacheAnalysis& prev,
                                     const std::vector<char>& instance_clean) {
  // A frozen clean region is the new least fixpoint only if its inputs
  // are *exactly* the previous run's. The no-change check during the
  // run proves deliveries never exceeded the frozen states; this audit
  // closes the other direction — a dirty instance that now delivers
  // strictly *less* (or stopped delivering) would make the true least
  // fixpoint smaller than the frozen states.
  for (const cfg::SgEdge& edge : sg_.edges()) {
    const int from_inst = sg_.node(edge.from).instance;
    const int to_inst = sg_.node(edge.to).instance;
    if (from_inst == to_inst) continue;
    if (instance_clean[static_cast<std::size_t>(from_inst)] != 0) continue;
    if (instance_clean[static_cast<std::size_t>(to_inst)] == 0) continue;
    const bool prev_feasible = prev.values_.edge_feasible(edge.id) &&
                               prev.has_state_[static_cast<std::size_t>(edge.from)] != 0;
    if (!prev_feasible) continue; // newly feasible edges were absorb-checked live
    if (!values_.edge_feasible(edge.id) ||
        has_state_[static_cast<std::size_t>(edge.from)] == 0) {
      return false;
    }
    // Compare the materialized out-states of the dirty boundary source
    // under both runs (the classic whole-state replay; `record` off so
    // classification rows stay untouched).
    CachePair new_i = in_i_[static_cast<std::size_t>(edge.from)];
    CachePair new_d = in_d_[static_cast<std::size_t>(edge.from)];
    transfer(edge.from, new_i, new_d, false);
    CachePair old_i = prev.in_i_[static_cast<std::size_t>(edge.from)];
    CachePair old_d = prev.in_d_[static_cast<std::size_t>(edge.from)];
    // prev is logically const here: transfer with record=false only
    // reads converged state and replays the (immutable) recipe.
    const_cast<CacheAnalysis&>(prev).transfer(edge.from, old_i, old_d, false);
    if (!(new_i == old_i) || !(new_d == old_d)) return false;
  }
  return true;
}

bool CacheAnalysis::fixpoint_instance_rounds(const CacheAnalysis* prev,
                                             const std::vector<char>* instance_clean) {
  // Deterministic per-instance rounds (support/instance_rounds.hpp),
  // mirroring the value-analysis engine: each dirty function instance
  // converges a local RPO priority worklist over its own nodes — in
  // parallel when a pool is given, touching disjoint in-state slots —
  // and cross-instance call/ret out-states are buffered and merged
  // sequentially in ascending (instance, edge) order. Re-queueing is
  // gated on exact change reporting. The must/may domain has no
  // widening, so this reaches the same least fixpoint as any other
  // schedule; the fixed round/merge order additionally makes every
  // intermediate state a pure function of the graph.
  //
  // A visit never materializes its out-state. The node's per-set access
  // programs (CacheRecipe::fetch_groups / data_groups) are replayed
  // into per-instance scratch images — the overlay — and successors
  // join against (in-state, overlay): untouched sets keep their shared
  // COW leaves and join by pointer identity, touched sets whose program
  // turned out to be the identity do too, and only the genuinely
  // transformed sets take a value join. In the converged steady state a
  // visit therefore allocates nothing at all. The out-state is
  // materialized only where a CachePair must outlive the visit: the
  // cross-instance merge buffers and first-touch installs of fresh
  // targets. The record sweep and the round-robin reference still run
  // the classic whole-state transfer; the differential tests pin the
  // two paths to identical classifications.
  using Recipe = TransferCache::CacheRecipe;
  InstanceRoundEngine engine(sg_, schedule_priorities_);
  engine.set_governor(governor_);
  const std::size_t num_instances = sg_.instances().size();

  struct OutState {
    CachePair i;
    CachePair d;
  };
  std::vector<std::map<int, OutState>> cross(num_instances);

  // Overlay scratch, per instance (never per worker: instances touch
  // only their own slot, so parallel rounds stay race-free and the
  // replay is deterministic). Image buffers are reused across visits.
  struct Overlay {
    std::vector<unsigned> sets; // touched set indices, ascending
    std::vector<unsigned char> must_changed, may_changed;
    std::vector<AbsCache::SetImage> must_img, may_img;
    std::size_t count = 0;

    void begin() { count = 0; }
    std::size_t append(unsigned s) {
      const std::size_t k = count++;
      if (sets.size() < count) {
        sets.push_back(s);
        must_changed.push_back(0);
        may_changed.push_back(0);
        must_img.emplace_back();
        may_img.emplace_back();
      } else {
        sets[k] = s;
        must_changed[k] = 0;
        may_changed[k] = 0;
      }
      return k;
    }
    std::span<const unsigned> set_span() const { return {sets.data(), count}; }
  };
  struct Scratch {
    Overlay i, d;
    AbsCache::SetImage alt, acc; // apply_one_of_image buffers
  };
  std::vector<Scratch> scratch(num_instances);

  // Warm mode: clean instances are frozen at `prev`'s converged states;
  // any delivery that would change (or first-touch) a frozen in-state
  // diverges the run — workers set the flag, the round barrier stops
  // the engine, and the caller discards every state and reruns cold.
  const bool warm = prev != nullptr && instance_clean != nullptr;
  std::atomic<bool> diverged{false};
  const auto clean_instance = [&](int instance) {
    return warm && (*instance_clean)[static_cast<std::size_t>(instance)] != 0;
  };

  const auto build_fetch_overlay = [&](const Recipe& recipe, const CachePair& in,
                                       Scratch& sc) {
    Overlay& ov = sc.i;
    ov.begin();
    for (const Recipe::FetchGroup& group : recipe.fetch_groups) {
      const std::size_t k = ov.append(group.set);
      const AbsCache::SetImage& base_must = in.must.set_image(group.set);
      const AbsCache::SetImage& base_may = in.may.set_image(group.set);
      if (group.lines.size() == 1) {
        // One access on this set (the norm — consecutive fetch lines
        // map to consecutive sets): fused single-pass emit + diff.
        ov.must_changed[k] = in.must.access_into(base_must, group.lines[0], ov.must_img[k]);
        ov.may_changed[k] = in.may.access_into(base_may, group.lines[0], ov.may_img[k]);
        continue;
      }
      ov.must_img[k] = base_must;
      ov.may_img[k] = base_may;
      for (const std::uint32_t line : group.lines) {
        in.must.apply_access_image(ov.must_img[k], line);
        in.may.apply_access_image(ov.may_img[k], line);
      }
      ov.must_changed[k] = ov.must_img[k] == base_must ? 0 : 1;
      ov.may_changed[k] = ov.may_img[k] == base_may ? 0 : 1;
    }
  };

  const auto build_data_overlay = [&](const Recipe& recipe, const CachePair& in,
                                      Scratch& sc) {
    Overlay& ov = sc.d;
    ov.begin();
    for (const Recipe::DataGroup& group : recipe.data_groups) {
      const AbsCache::SetImage& base_must = in.must.set_image(group.set);
      const AbsCache::SetImage& base_may = in.may.set_image(group.set);
      // Pure-aging program on an empty must image: the identity on both
      // sides — skip without copying anything (the common case for
      // unknown-access nodes once repeated aging has drained the must
      // cache).
      if (!group.any_one_of && base_must.empty()) continue;
      const std::size_t k = ov.append(group.set);
      if (group.ops.size() == 1 && !group.ops[0].age_all &&
          group.ops[0].lines.size() == 1 && !group.ops[0].outside) {
        // Single precise access (e.g. a stack-slot load): fused
        // single-pass emit + diff, same as the fetch fast path.
        const std::uint32_t line = group.ops[0].lines[0];
        ov.must_changed[k] = in.must.access_into(base_must, line, ov.must_img[k]);
        ov.may_changed[k] = in.may.access_into(base_may, line, ov.may_img[k]);
        continue;
      }
      ov.must_img[k] = base_must;
      // age_all ops leave the may side untouched; load it only when a
      // one_of op shows up.
      bool may_loaded = false;
      for (const Recipe::DataSetOp& op : group.ops) {
        if (op.age_all) {
          in.must.age_image(ov.must_img[k]);
          continue;
        }
        if (!may_loaded) {
          ov.may_img[k] = base_may;
          may_loaded = true;
        }
        if (op.lines.size() == 1 && !op.outside) {
          // Degenerate one_of: a plain access on the working images.
          in.must.apply_access_image(ov.must_img[k], op.lines[0]);
          in.may.apply_access_image(ov.may_img[k], op.lines[0]);
          continue;
        }
        in.must.apply_one_of_image(ov.must_img[k], op.lines, op.outside, sc.alt, sc.acc);
        in.may.apply_one_of_image(ov.may_img[k], op.lines, op.outside, sc.alt, sc.acc);
      }
      ov.must_changed[k] = ov.must_img[k] == base_must ? 0 : 1;
      ov.may_changed[k] = may_loaded && !(ov.may_img[k] == base_may) ? 1 : 0;
    }
  };

  // Install the overlay on a snapshot of the in-state: the out-state,
  // materialized. Only needed for state that outlives the visit.
  const auto materialize = [](const CachePair& in, const Overlay& ov) {
    CachePair out = in; // O(1) COW snapshot
    for (std::size_t k = 0; k < ov.count; ++k) {
      if (ov.must_changed[k] != 0) out.must.install_image(ov.sets[k], ov.must_img[k]);
      if (ov.may_changed[k] != 0) out.may.install_image(ov.sets[k], ov.may_img[k]);
    }
    return out;
  };

  const auto join_pair_overlay = [](CachePair& target, const CachePair& source,
                                    const Overlay& ov) {
    const bool a = target.must.join_with_overlay(
        source.must, ov.set_span(), {ov.must_changed.data(), ov.count}, ov.must_img.data());
    const bool b = target.may.join_with_overlay(
        source.may, ov.set_span(), {ov.may_changed.data(), ov.count}, ov.may_img.data());
    return a || b;
  };

  const int entry = sg_.entry_node();
  if (!warm) {
    has_state_[static_cast<std::size_t>(entry)] = 1;
    engine.push(entry);
  } else {
    // Freeze clean instances at the previous converged in-states (O(1)
    // COW snapshots), then schedule the dirty entry plus every clean
    // boundary source with a feasible edge into a dirty instance:
    // processing such a node re-delivers its frozen out-state into the
    // dirty region and — being at fixpoint — changes nothing else.
    for (const cfg::SgNode& n : sg_.nodes()) {
      if (!clean_instance(n.instance)) continue;
      const auto id = static_cast<std::size_t>(n.id);
      in_i_[id] = prev->in_i_[id];
      in_d_[id] = prev->in_d_[id];
      has_state_[id] = prev->has_state_[id];
    }
    if (!clean_instance(sg_.node(entry).instance)) {
      has_state_[static_cast<std::size_t>(entry)] = 1;
      engine.push(entry);
    }
    for (const cfg::SgEdge& e : sg_.edges()) {
      const int fi = sg_.node(e.from).instance;
      const int ti = sg_.node(e.to).instance;
      if (fi == ti || !clean_instance(fi) || clean_instance(ti)) continue;
      if (!values_.edge_feasible(e.id)) continue;
      if (has_state_[static_cast<std::size_t>(e.from)] == 0) continue;
      engine.push(e.from);
    }
  }

  engine.run(
      pool_,
      [&](const int instance, const int node) {
        if (diverged.load(std::memory_order_relaxed)) return;
        Scratch& sc = scratch[static_cast<std::size_t>(instance)];
        const Recipe& recipe = transfers_->cache_recipe(node);
        const CachePair& in_i = in_i_[static_cast<std::size_t>(node)];
        const CachePair& in_d = in_d_[static_cast<std::size_t>(node)];
        build_fetch_overlay(recipe, in_i, sc);
        build_data_overlay(recipe, in_d, sc);
        // Lazily materialized out-state for cross-edge buffers and
        // first-touch installs. Safe to build after a self-loop join:
        // such a join can only grow overlaid-changed sets (which the
        // materialization overrides with the recorded images) — every
        // other set joins with itself, which is a no-op.
        std::optional<OutState> out;
        const auto ensure_out = [&]() {
          if (!out) out.emplace(OutState{materialize(in_i, sc.i), materialize(in_d, sc.d)});
        };
        for (const int eid : sg_.node(node).succ_edges) {
          if (!values_.edge_feasible(eid)) continue;
          const int target = sg_.edge(eid).to;
          if (sg_.node(target).instance != instance) {
            // Call/ret edge: defer to the sequential merge step.
            ensure_out();
            auto& buffered = cross[static_cast<std::size_t>(instance)];
            const auto [it, fresh] = buffered.try_emplace(eid, *out);
            if (!fresh) {
              it->second.i.join_with(out->i);
              it->second.d.join_with(out->d);
            }
            continue;
          }
          const auto t = static_cast<std::size_t>(target);
          if (!has_state_[t]) {
            if (clean_instance(instance)) {
              // A frozen node reaching a previously state-less sibling
              // means feasibility grew inside a "clean" instance.
              diverged.store(true, std::memory_order_relaxed);
              continue;
            }
            ensure_out();
            in_i_[t] = out->i;
            in_d_[t] = out->d;
            has_state_[t] = 1;
            engine.push(target);
            continue;
          }
          bool changed = join_pair_overlay(in_i_[t], in_i, sc.i);
          changed |= join_pair_overlay(in_d_[t], in_d, sc.d);
          if (changed) {
            if (clean_instance(instance)) {
              diverged.store(true, std::memory_order_relaxed);
              continue;
            }
            engine.push(target);
          }
        }
      },
      [&](const int instance) {
        auto& buffered = cross[static_cast<std::size_t>(instance)];
        for (auto& [eid, state] : buffered) {
          const int target = sg_.edge(eid).to;
          const bool frozen = clean_instance(sg_.node(target).instance);
          if (frozen && has_state_[static_cast<std::size_t>(target)] == 0) {
            diverged.store(true, std::memory_order_relaxed);
            continue;
          }
          if (join_target(target, state.i, state.d)) {
            if (frozen) {
              // The delivery grew a frozen clean in-state: the freeze
              // premise is broken, discard the warm run.
              diverged.store(true, std::memory_order_relaxed);
              continue;
            }
            engine.push(target);
          }
        }
        buffered.clear();
      },
      [&](const std::uint64_t round_pops) -> bool {
        WCET_FAULT_POINT("cache:round");
        if (diverged.load(std::memory_order_relaxed)) return false;
        if (governor_ == nullptr) return true;
        // Stopping at a round barrier is sound here — unlike the value
        // analysis — because the record sweep then ignores the
        // un-converged states entirely (record_node_conservative) and
        // classifies every state-dependent access as not-classified.
        const char* trigger = nullptr;
        if (!governor_->consume_cache_visits(round_pops)) trigger = "visit budget";
        else if (governor_->deadline_exceeded()) trigger = "deadline";
        if (trigger == nullptr) return true;
        if (warm) {
          // Budget pressure mid-warm reads as divergence, not
          // degradation: the cold rerun charges the budget honestly
          // (the warm rounds already consumed count against it, which
          // only degrades *earlier* — the sound direction).
          diverged.store(true, std::memory_order_relaxed);
          return false;
        }
        degraded_ = true;
        governor_->record("cache", trigger,
                          "fixpoint stopped at a round barrier; all state-dependent accesses "
                          "classified not-classified (charged as misses), structural verdicts "
                          "kept (bound stays a true upper bound)");
        return false;
      });
  if (diverged.load(std::memory_order_relaxed)) return false;
  if (warm) return warm_boundary_ok(*prev, *instance_clean);
  return true;
}

void CacheAnalysis::fixpoint_round_robin() {
  // Reference iteration: sweep every node in id order, joining
  // out-states into successors, until one full sweep changes nothing.
  // No worklist, no change summaries — the simplest sound schedule the
  // instance-rounds engine is validated against.
  has_state_[static_cast<std::size_t>(sg_.entry_node())] = 1;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const cfg::SgNode& node : sg_.nodes()) {
      if (!has_state_[static_cast<std::size_t>(node.id)]) continue;
      CachePair icache = in_i_[static_cast<std::size_t>(node.id)];
      CachePair dcache = in_d_[static_cast<std::size_t>(node.id)];
      transfer(node.id, icache, dcache, false);
      join_successors(node.id, icache, dcache, [&](int) { changed = true; });
    }
  }
}

namespace {

// Lazily materialized value view of one abstract cache during the
// record replay: set images are copied out of the shared COW leaves
// only when an access actually evolves them, and a must-side
// access_unknown (which ages *every* set) is deferred as a pending age
// delta applied on materialization — so recording a node costs the sets
// it touches, not a whole-cache clone. Pure value computation on
// reusable buffers; results are a function of (in-state, recipe) only.
struct LazyCacheView {
  const AbsCache* base = nullptr;
  const mem::CacheConfig* config = nullptr;
  std::vector<int> slot; // set -> image index, -1 = unmaterialized
  std::vector<AbsCache::SetImage> images;
  std::vector<unsigned> touched;
  std::size_t used = 0;
  unsigned pending_age = 0;

  void attach(const AbsCache& cache) {
    base = &cache;
    config = &cache.config();
    if (slot.size() != config->sets) {
      slot.assign(config->sets, -1);
    } else {
      for (const unsigned s : touched) slot[s] = -1;
    }
    touched.clear();
    used = 0;
    pending_age = 0;
  }

  AbsCache::SetImage& image_for(unsigned s) {
    int& k = slot[s];
    if (k < 0) {
      k = static_cast<int>(used++);
      touched.push_back(s);
      if (images.size() < used) images.emplace_back();
      AbsCache::SetImage& image = images[static_cast<std::size_t>(k)];
      image = base->set_image(s);
      if (pending_age > 0) {
        image.retain([&](std::uint32_t, unsigned& age) {
          age += pending_age;
          return age < config->ways;
        });
      }
      return image;
    }
    return images[static_cast<std::size_t>(k)];
  }

  bool contains(std::uint32_t line) const {
    if (!config->enabled) return false;
    const unsigned s = config->set_index(line * config->line_bytes);
    if (slot[s] >= 0) return images[static_cast<std::size_t>(slot[s])].contains(line);
    if (pending_age == 0) return base->set_image(s).contains(line);
    // Unmaterialized set under pending aging: a line survives k age_all
    // rounds exactly when age + k stays below the associativity.
    const AbsCache::SetImage& image = base->set_image(s);
    const auto it = image.find(line);
    return it != image.end() && it->second + pending_age < config->ways;
  }

  // The must half of access_unknown: everything ages one step.
  void age_all() {
    ++pending_age;
    for (const unsigned s : touched) {
      images[static_cast<std::size_t>(slot[s])].retain([&](std::uint32_t, unsigned& age) {
        ++age;
        return age < config->ways;
      });
    }
  }
};

} // namespace

void CacheAnalysis::record_node_lazy(int node) {
  using Recipe = TransferCache::CacheRecipe;
  const Recipe& recipe = transfers_->cache_recipe(node);
  const auto id = static_cast<std::size_t>(node);
  // Per-worker scratch: the replay is a pure value computation from the
  // node's (immutable) in-state, so worker identity cannot affect it.
  struct Scratch {
    LazyCacheView i_must, i_may, d_must, d_may;
    AbsCache::SetImage alt, acc;
    std::vector<unsigned> affected;
    std::vector<std::uint32_t> in_set;
  };
  static thread_local Scratch sc;
  const CachePair& in_i = in_i_[id];
  const CachePair& in_d = in_d_[id];
  sc.i_must.attach(in_i.must);
  sc.i_may.attach(in_i.may);
  sc.d_must.attach(in_d.must);
  sc.d_may.attach(in_d.may);

  auto& fetch_out = fetch_[id];
  auto& data_out = data_[id];
  fetch_out.assign(recipe.fetch.size(), FetchClass{});
  data_out.clear();

  for (std::size_t i = 0; i < recipe.fetch.size(); ++i) {
    switch (recipe.fetch[i].kind) {
    case Recipe::FetchKind::uncached:
      fetch_out[i].cls = AccessClass::uncached;
      break;
    case Recipe::FetchKind::same_line:
      fetch_out[i].cls = AccessClass::always_hit;
      break;
    case Recipe::FetchKind::line: {
      const std::uint32_t line = recipe.fetch[i].line;
      const bool all_must = sc.i_must.contains(line);
      const bool none_may = !sc.i_may.contains(line);
      fetch_out[i].cls = all_must  ? AccessClass::always_hit
                         : none_may ? AccessClass::always_miss
                                    : AccessClass::not_classified;
      const unsigned s = iconfig_.set_index(line * iconfig_.line_bytes);
      in_i.must.apply_access_image(sc.i_must.image_for(s), line);
      in_i.may.apply_access_image(sc.i_may.image_for(s), line);
      break;
    }
    }
  }

  for (const Recipe::Data& d : recipe.data) {
    DataClass dc;
    dc.pc = d.pc;
    dc.is_store = d.is_store;
    switch (d.kind) {
    case Recipe::DataKind::bypass:
      dc.cls = AccessClass::uncached;
      break;
    case Recipe::DataKind::disturb:
      dc.cls = AccessClass::not_classified;
      sc.d_must.age_all(); // may side: access_unknown is the identity
      break;
    case Recipe::DataKind::cached: {
      const std::vector<std::uint32_t>& lines = lines_for(node, d.access_index);
      if (lines.empty()) {
        dc.cls = AccessClass::not_classified;
        sc.d_must.age_all();
        break;
      }
      bool all_must = true;
      bool none_may = true;
      for (const std::uint32_t line : lines) {
        if (!sc.d_must.contains(line)) all_must = false;
        if (sc.d_may.contains(line)) none_may = false;
      }
      dc.cls = all_must  ? AccessClass::always_hit
               : none_may ? AccessClass::always_miss
                          : AccessClass::not_classified;
      dc.candidate_count = std::max<unsigned>(1, static_cast<unsigned>(lines.size()));
      if (lines.size() == 1) {
        const unsigned s = dconfig_.set_index(lines[0] * dconfig_.line_bytes);
        in_d.must.apply_access_image(sc.d_must.image_for(s), lines[0]);
        in_d.may.apply_access_image(sc.d_may.image_for(s), lines[0]);
        break;
      }
      // access_one_of, applied per affected set (first-appearance
      // order; the per-set joins are order-independent).
      for_each_candidate_set(dconfig_, lines, sc.affected, [&](unsigned s, bool outside) {
        sc.in_set.clear();
        for (const std::uint32_t line : lines) {
          if (dconfig_.set_index(line * dconfig_.line_bytes) == s) {
            sc.in_set.push_back(line);
          }
        }
        in_d.must.apply_one_of_image(sc.d_must.image_for(s), sc.in_set, outside, sc.alt,
                                     sc.acc);
        in_d.may.apply_one_of_image(sc.d_may.image_for(s), sc.in_set, outside, sc.alt,
                                    sc.acc);
      });
      break;
    }
    }
    data_out.push_back(dc);
  }
}

void CacheAnalysis::record_node_conservative(int node) {
  using Recipe = TransferCache::CacheRecipe;
  const Recipe& recipe = transfers_->cache_recipe(node);
  const auto id = static_cast<std::size_t>(node);
  auto& fetch_out = fetch_[id];
  auto& data_out = data_[id];
  fetch_out.assign(recipe.fetch.size(), FetchClass{});
  data_out.clear();
  for (std::size_t i = 0; i < recipe.fetch.size(); ++i) {
    switch (recipe.fetch[i].kind) {
    case Recipe::FetchKind::uncached:
      fetch_out[i].cls = AccessClass::uncached;
      break;
    case Recipe::FetchKind::same_line:
      // Guaranteed by intra-block adjacency (the previous fetch loaded
      // the same line), independent of the incoming cache state.
      fetch_out[i].cls = AccessClass::always_hit;
      break;
    case Recipe::FetchKind::line:
      fetch_out[i].cls = AccessClass::not_classified;
      break;
    }
  }
  for (const Recipe::Data& d : recipe.data) {
    DataClass dc;
    dc.pc = d.pc;
    dc.is_store = d.is_store;
    switch (d.kind) {
    case Recipe::DataKind::bypass:
      dc.cls = AccessClass::uncached;
      break;
    case Recipe::DataKind::disturb:
      dc.cls = AccessClass::not_classified;
      break;
    case Recipe::DataKind::cached: {
      dc.cls = AccessClass::not_classified;
      const std::vector<std::uint32_t>& lines = lines_for(node, d.access_index);
      dc.candidate_count = std::max<unsigned>(1, static_cast<unsigned>(lines.size()));
      break;
    }
    }
    data_out.push_back(dc);
  }
}

void CacheAnalysis::persistence() {
  // Loops are processed per top-level loop tree: sibling trees have
  // disjoint node sets (the forest is an SCC decomposition), so trees
  // fan out across the pool while the depth-based "outermost qualifying
  // loop wins" resolution — which is order-independent across sibling
  // trees — stays exact.
  std::vector<std::vector<int>> trees;
  for (const cfg::Loop& loop : loops_.loops()) {
    if (loop.parent >= 0) continue;
    std::vector<int> ids;
    std::vector<int> stack{loop.id};
    while (!stack.empty()) {
      const int id = stack.back();
      stack.pop_back();
      ids.push_back(id);
      for (const int child : loops_.loop(id).children) stack.push_back(child);
    }
    std::sort(ids.begin(), ids.end());
    trees.push_back(std::move(ids));
  }
  const auto run_tree = [&](std::size_t t) { persistence_tree(trees[t]); };
  if (pool_ != nullptr) {
    pool_->parallel_for(trees.size(), run_tree);
  } else {
    for (std::size_t t = 0; t < trees.size(); ++t) run_tree(t);
  }
}

void CacheAnalysis::persistence_tree(const std::vector<int>& loop_ids) {
  // For every reducible loop: if all cacheable accesses within the loop
  // are line-precise, count distinct lines per cache set; accesses whose
  // candidate lines fit the associativity alongside their conflicts are
  // persistent (at most one miss per loop entry).
  // Per-set distinct-line counts as sorted flat vectors: collect
  // (set, line) pairs, sort + unique, then collapse runs — no node-pull
  // tree maps on this (pool-fanned) path. Buffers are reused across the
  // tree's loops.
  std::vector<std::pair<unsigned, std::uint32_t>> i_pairs, d_pairs;
  std::vector<std::pair<unsigned, unsigned>> i_counts, d_counts; // set -> distinct lines
  const auto collapse = [](std::vector<std::pair<unsigned, std::uint32_t>>& pairs,
                           std::vector<std::pair<unsigned, unsigned>>& counts) {
    std::sort(pairs.begin(), pairs.end());
    pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
    counts.clear();
    for (const auto& [set, line] : pairs) {
      (void)line;
      if (counts.empty() || counts.back().first != set) {
        counts.push_back({set, 1});
      } else {
        ++counts.back().second;
      }
    }
  };

  for (const int loop_id : loop_ids) {
    const cfg::Loop& loop = loops_.loop(loop_id);
    if (loop.irreducible) continue; // rule 14.4: no virtual unrolling

    bool i_precise = true;
    bool d_precise = true;
    i_pairs.clear();
    d_pairs.clear();

    // Conflict sets come straight from the memoized recipes: a recipe
    // fetch entry is cacheable exactly when its kind isn't `uncached`,
    // and a data entry participates exactly when its kind is `cached`
    // (stores, unreachable and uncacheable accesses were already
    // filtered at recipe-build time).
    using Recipe = TransferCache::CacheRecipe;
    for (const int node_id : loop.nodes) {
      const Recipe& recipe = transfers_->cache_recipe(node_id);
      for (const Recipe::Fetch& fetch : recipe.fetch) {
        if (fetch.kind == Recipe::FetchKind::uncached) continue;
        i_pairs.push_back(
            {iconfig_.set_index(fetch.line * iconfig_.line_bytes), fetch.line});
      }
      for (const Recipe::Data& d : recipe.data) {
        if (d.kind != Recipe::DataKind::cached) continue;
        const std::vector<std::uint32_t>& lines = lines_for(node_id, d.access_index);
        if (lines.empty()) {
          d_precise = false;
          continue;
        }
        for (const std::uint32_t line : lines) {
          d_pairs.push_back({dconfig_.set_index(line * dconfig_.line_bytes), line});
        }
      }
    }
    collapse(i_pairs, i_counts);
    collapse(d_pairs, d_counts);

    const auto line_persists = [](const std::vector<std::pair<unsigned, unsigned>>& counts,
                                  const mem::CacheConfig& config, std::uint32_t line) {
      const unsigned set = config.set_index(line * config.line_bytes);
      const auto it = std::lower_bound(
          counts.begin(), counts.end(), set,
          [](const std::pair<unsigned, unsigned>& c, unsigned s) { return c.first < s; });
      return it != counts.end() && it->first == set && it->second <= config.ways;
    };

    // Assign: outermost qualifying loop wins (fewer entries = tighter).
    for (const int node_id : loop.nodes) {
      const Recipe& recipe = transfers_->cache_recipe(node_id);
      auto& fetch_out = fetch_[static_cast<std::size_t>(node_id)];
      for (std::size_t i = 0; i < fetch_out.size(); ++i) {
        if (!i_precise) break;
        if (fetch_out[i].cls != AccessClass::not_classified &&
            fetch_out[i].cls != AccessClass::always_miss) {
          continue;
        }
        if (line_persists(i_counts, iconfig_, recipe.fetch[i].line)) {
          const int current = fetch_out[i].persistent_loop;
          if (current < 0 || loops_.loop(current).depth > loop.depth) {
            fetch_out[i].persistent_loop = loop.id;
          }
        }
      }
      auto& data_out = data_[static_cast<std::size_t>(node_id)];
      const auto& accesses = values_.accesses(node_id);
      for (std::size_t i = 0; i < data_out.size() && i < accesses.size(); ++i) {
        if (!d_precise) break;
        DataClass& dc = data_out[i];
        if (dc.is_store || dc.cls == AccessClass::always_hit ||
            dc.cls == AccessClass::uncached) {
          continue;
        }
        const std::vector<std::uint32_t>& lines = lines_for(node_id, i);
        if (lines.empty()) continue;
        const bool all_persist = std::all_of(lines.begin(), lines.end(), [&](std::uint32_t l) {
          return line_persists(d_counts, dconfig_, l);
        });
        if (all_persist) {
          const int current = dc.persistent_loop;
          if (current < 0 || loops_.loop(current).depth > loop.depth) {
            dc.persistent_loop = loop.id;
          }
        }
      }
    }
  }
}

void CacheAnalysis::run() { (void)run(nullptr, nullptr); }

bool CacheAnalysis::run(const CacheAnalysis* prev, const std::vector<char>* instance_clean) {
  build_line_tables();
  bool warm_used = false;
  warm_fallback_ = false;
  if (schedule_ == Schedule::priority) {
    const bool try_warm =
        prev != nullptr && instance_clean != nullptr && !prev->degraded_ &&
        prev->schedule_ == Schedule::priority &&
        instance_clean->size() == sg_.instances().size() &&
        prev->in_i_.size() == in_i_.size() && warm_guard_ok(*instance_clean);
    if (try_warm) {
      warm_used = fixpoint_instance_rounds(prev, instance_clean);
      if (!warm_used) {
        // Divergence: every state (frozen or partially iterated) is
        // suspect — discard wholesale and rerun the cold fixpoint, so
        // the published classifications are exactly the cold result.
        warm_fallback_ = true;
        const std::size_t n = sg_.nodes().size();
        in_i_.assign(n, CachePair{AbsCache::cold(iconfig_, true),
                                  AbsCache::cold(iconfig_, false)});
        in_d_.assign(n, CachePair{AbsCache::cold(dconfig_, true),
                                  AbsCache::cold(dconfig_, false)});
        has_state_.assign(n, 0);
        degraded_ = false;
        fixpoint_instance_rounds(nullptr, nullptr);
      }
    } else {
      fixpoint_instance_rounds(nullptr, nullptr);
    }
  } else {
    fixpoint_round_robin();
  }
  // Record classifications with the final states. Per-node work is
  // independent (reads the converged in-states, writes only this
  // node's classification rows), so it fans out across the pool. The
  // production schedule records through the lazy per-set replay (no
  // whole-cache clone per node); the round-robin reference keeps the
  // classic transfer, so the rounds-vs-reference differential test
  // cross-checks the two recording implementations too.
  const auto record_node = [&](std::size_t id) {
    const cfg::SgNode& node = sg_.nodes()[id];
    if (degraded_) {
      // A truncated fixpoint can leave a *reachable* node without a
      // propagated state (has_state_ == 0), so the sweep must not trust
      // has_state_ at all: every node gets recipe-only conservative
      // rows, keeping the classification tables index-aligned for the
      // pipeline phase.
      record_node_conservative(node.id);
      return;
    }
    if (!has_state_[id]) {
      fetch_[id].assign(node.block->insts.size(), FetchClass{});
      data_[id].clear();
      return;
    }
    if (schedule_ == Schedule::priority) {
      record_node_lazy(node.id);
      return;
    }
    CachePair icache = in_i_[id];
    CachePair dcache = in_d_[id];
    transfer(node.id, icache, dcache, true);
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(sg_.nodes().size(), record_node);
  } else {
    for (std::size_t id = 0; id < sg_.nodes().size(); ++id) record_node(id);
  }
  persistence();
  return warm_used;
}

CacheAnalysis::Stats CacheAnalysis::stats() const {
  Stats s;
  for (std::size_t n = 0; n < fetch_.size(); ++n) {
    if (!values_.node_reachable(static_cast<int>(n))) continue;
    for (const FetchClass& fc : fetch_[n]) {
      switch (fc.cls) {
      case AccessClass::always_hit: ++s.fetch_hit; break;
      case AccessClass::always_miss: ++s.fetch_miss; break;
      case AccessClass::not_classified: ++s.fetch_nc; break;
      case AccessClass::uncached: ++s.fetch_uncached; break;
      }
      if (fc.persistent_loop >= 0) ++s.persistent;
    }
    for (const DataClass& dc : data_[n]) {
      switch (dc.cls) {
      case AccessClass::always_hit: ++s.data_hit; break;
      case AccessClass::always_miss: ++s.data_miss; break;
      case AccessClass::not_classified: ++s.data_nc; break;
      case AccessClass::uncached: ++s.data_uncached; break;
      }
      if (dc.persistent_loop >= 0) ++s.persistent;
    }
  }
  return s;
}

} // namespace wcet::analysis
