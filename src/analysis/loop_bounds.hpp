// Loop-bound analysis: data-flow based detection of counter loops on top
// of the value analysis (cf. Cullmann & Martin, "Data-Flow Based
// Detection of Loop Bounds", cited as [4] in the paper).
//
// A loop is automatically bounded when it has the shape the MISRA rules
// of Section 4.2 push developers towards:
//   - reducible (single entry — rules 14.4/16.2/20.7),
//   - a single conditional branch decides exit,
//   - the branch compares a register `i` against a loop-invariant
//     operand (rule 13.6: the counter is not modified elsewhere),
//   - `i` is updated by exactly one `addi i, i, c` on every path through
//     the body (integer counter — rule 13.4 excludes float conditions,
//     which on tiny32 become opaque soft-float calls anyway).
// Anything else — input-data dependent loops, irreducible loops,
// argument-list loops from varargs — yields "no bound found" and must be
// covered by an annotation, mirroring aiT's behaviour described in the
// paper.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/value_analysis.hpp"
#include "cfg/domloop.hpp"

namespace wcet::analysis {

class TransferCache;

struct LoopBoundResult {
  int loop_id = -1;
  std::optional<std::uint64_t> bound; // max back-edge executions per entry
  bool irreducible = false;
  std::string detail; // human-readable reason / derivation
};

class LoopBoundAnalysis {
public:
  // `transfers` (optional): memoized value-analysis transfers; counter
  // initial values are then read from cached edge states instead of
  // re-running one full node transfer per probed loop-entry edge.
  LoopBoundAnalysis(const cfg::Supergraph& sg, const cfg::LoopForest& loops,
                    const cfg::Dominators& doms, const ValueAnalysis& values,
                    const TransferCache* transfers = nullptr);

  // Analyze every loop; results indexed by loop id.
  std::vector<LoopBoundResult> run() const;

  // Exposed for tests: maximum number of iterations of an affine counter
  // i starting in `init`, stepping by `stride`, staying while
  // `i pred limit` holds. nullopt: cannot bound (e.g. stride 0).
  static std::optional<std::uint64_t> affine_trip_count(const Interval& init,
                                                        std::int32_t stride, Pred stay,
                                                        const Interval& limit);

private:
  std::optional<std::uint64_t> analyze_loop(const cfg::Loop& loop, std::string& detail) const;

  const cfg::Supergraph& sg_;
  const cfg::LoopForest& loops_;
  const cfg::Dominators& doms_;
  const ValueAnalysis& values_;
  const TransferCache* transfers_ = nullptr;
};

} // namespace wcet::analysis
