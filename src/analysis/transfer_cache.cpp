#include "analysis/transfer_cache.hpp"

#include <algorithm>

#include "analysis/cache_analysis.hpp" // for_each_candidate_set
#include "support/diag.hpp"
#include "support/thread_pool.hpp"

namespace wcet::analysis {

TransferCache::TransferCache(const cfg::Supergraph& sg) : sg_(sg) {
  out_.resize(sg.nodes().size());
  edge_out_.resize(sg.edges().size());
}

void TransferCache::attach(const ValueAnalysis& values) {
  if (values_ == &values) return;
  // New producer: every memo derived from the previous analysis'
  // results is stale. (The out_ slots are overwritten by the new run's
  // recording sweep; the lazy and once-built memos must be dropped
  // explicitly.)
  values_ = &values;
  for (auto& slot : edge_out_) slot.reset();
  lines_ready_ = false;
  recipes_ready_ = false;
}

const AbsState& TransferCache::edge_state(int edge) const {
  WCET_CHECK(values_ != nullptr, "TransferCache queried before attach()");
  auto& slot = edge_out_[static_cast<std::size_t>(edge)];
  if (!slot) {
    const cfg::SgEdge& e = sg_.edge(edge);
    AbsState along = values_->edge_feasible(edge)
                         ? values_->refine_along_edge(edge, out_state(e.from))
                         : AbsState{};
    slot = std::make_unique<AbsState>(std::move(along));
  }
  return *slot;
}

Interval TransferCache::mem_word_along_edge(int edge, std::uint32_t addr) const {
  const AbsState& out = edge_state(edge);
  if (out.bottom) return Interval::bottom();
  const auto it = out.mem->find(addr);
  if (it != out.mem->end()) return it->second;
  return values_->implicit_mem_word(out, addr);
}

std::vector<std::uint32_t> TransferCache::candidate_lines(const Interval& addr, int size,
                                                          const mem::CacheConfig& config) {
  std::vector<std::uint32_t> lines;
  if (addr.is_bottom()) return lines;
  // Clamp the end to the word range: a wrap here once made a TOP address
  // interval look like a single-line access (unsound).
  const std::int64_t end =
      std::min<std::int64_t>(addr.umax() + size - 1, Interval::word_max);
  const std::uint32_t first = config.line_of(static_cast<std::uint32_t>(addr.umin()));
  const std::uint32_t last = config.line_of(static_cast<std::uint32_t>(end));
  if (last - first + 1 > 8) return {}; // unknown: too many candidates
  for (std::uint32_t l = first; l <= last; ++l) lines.push_back(l);
  return lines;
}

void TransferCache::build_data_lines(const mem::CacheConfig& config, ThreadPool* pool) {
  WCET_CHECK(values_ != nullptr, "TransferCache::build_data_lines before attach()");
  if (lines_ready_) {
    // The memo is only valid for one geometry: silently serving lines
    // computed under a different line size would misclassify accesses.
    WCET_CHECK(lines_config_.enabled == config.enabled &&
                   lines_config_.sets == config.sets && lines_config_.ways == config.ways &&
                   lines_config_.line_bytes == config.line_bytes,
               "TransferCache line tables rebuilt under a different cache geometry");
    return;
  }
  lines_config_ = config;
  lines_.resize(sg_.nodes().size());
  const auto build_node = [&](std::size_t n) {
    const auto& accesses = values_->accesses(static_cast<int>(n));
    auto& row = lines_[n];
    row.clear();
    row.reserve(accesses.size());
    for (const AccessInfo& access : accesses) {
      row.push_back(candidate_lines(access.addr, access.size, config));
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(lines_.size(), build_node);
  } else {
    for (std::size_t n = 0; n < lines_.size(); ++n) build_node(n);
  }
  lines_ready_ = true;
}

void TransferCache::build_cache_recipes(const mem::MemoryMap& memmap,
                                        const mem::CacheConfig& icache,
                                        const mem::CacheConfig& dcache, ThreadPool* pool,
                                        const TransferCache* reuse_from,
                                        const std::vector<char>* node_clean) {
  WCET_CHECK(values_ != nullptr, "TransferCache::build_cache_recipes before attach()");
  build_data_lines(dcache, pool);
  if (recipes_ready_) {
    // Recipes bake in region cacheability verdicts too, so the memory
    // map is part of the geometry the memo is keyed on.
    WCET_CHECK(recipes_iconfig_.enabled == icache.enabled &&
                   recipes_iconfig_.line_bytes == icache.line_bytes &&
                   recipes_memmap_ == &memmap,
               "TransferCache recipes rebuilt under a different i-cache geometry "
               "or memory map");
    return;
  }
  recipes_iconfig_ = icache;
  recipes_memmap_ = &memmap;
  recipes_.resize(sg_.nodes().size());
  const bool can_reuse = reuse_from != nullptr && node_clean != nullptr &&
                         reuse_from->recipes_ready_ &&
                         reuse_from->recipes_.size() == recipes_.size() &&
                         node_clean->size() == recipes_.size();
  const auto build_node = [&](std::size_t ni) {
    if (can_reuse && (*node_clean)[ni] != 0) {
      recipes_[ni] = reuse_from->recipes_[ni];
      return;
    }
    const int node = static_cast<int>(ni);
    const cfg::SgNode& n = sg_.node(node);
    const auto& accesses = values_->accesses(node);
    CacheRecipe& recipe = recipes_[ni];
    recipe.fetch.assign(n.block->insts.size(), CacheRecipe::Fetch{});
    recipe.data.clear();
    recipe.fetch_apply.clear();

    std::size_t access_index = 0;
    std::uint32_t pc = n.block->begin;
    std::uint32_t prev_line = ~0u;
    bool have_prev = false;
    for (std::size_t i = 0; i < n.block->insts.size(); ++i, pc += 4) {
      const isa::Inst& inst = n.block->insts[i];
      // --- Instruction fetch.
      CacheRecipe::Fetch& fetch = recipe.fetch[i];
      fetch.line = icache.line_of(pc); // stored for every kind: the
                                       // persistence pass probes lines
                                       // of uncached entries too
      if (!memmap.region_for(pc).cacheable || !icache.enabled) {
        fetch.kind = CacheRecipe::FetchKind::uncached;
      } else {
        if (have_prev && fetch.line == prev_line) {
          fetch.kind = CacheRecipe::FetchKind::same_line;
        } else {
          fetch.kind = CacheRecipe::FetchKind::line;
          recipe.fetch_apply.push_back(fetch.line);
        }
        prev_line = fetch.line;
        have_prev = true;
      }

      // --- Data access.
      if (!inst.is_mem_access()) continue;
      WCET_CHECK(access_index < accesses.size() || values_->state_in(node).bottom,
                 "access list out of sync with instructions");
      if (access_index >= accesses.size()) continue;
      const AccessInfo& access = accesses[access_index];
      const std::vector<std::uint32_t>& lines = lines_[ni][access_index];
      CacheRecipe::Data data;
      data.is_store = access.is_store;
      data.pc = access.pc;
      data.access_index = static_cast<std::uint32_t>(access_index);
      ++access_index;
      if (access.is_store || access.addr.is_bottom()) {
        // Write-through no-write-allocate store, or unreachable.
        data.kind = CacheRecipe::DataKind::bypass;
      } else if (!memmap.all_cacheable(access.addr) || !dcache.enabled) {
        // If part of an imprecise range is cacheable, the access may
        // still disturb the cache.
        data.kind = dcache.enabled && lines.empty() ? CacheRecipe::DataKind::disturb
                                                    : CacheRecipe::DataKind::bypass;
      } else {
        data.kind = CacheRecipe::DataKind::cached;
      }
      recipe.data.push_back(data);
    }

    // --- Per-set access programs (overlay replay; see the header).
    recipe.fetch_groups.clear();
    recipe.data_groups.clear();
    // Reused across nodes (one slot table per worker; the builder is a
    // pure function of the node's recipe, so sharing buffers is safe).
    static thread_local std::vector<int> slot;
    {
      slot.assign(icache.sets, -1); // set -> fetch_groups index
      for (const std::uint32_t line : recipe.fetch_apply) {
        const unsigned s = icache.set_index(line * icache.line_bytes);
        if (slot[s] < 0) {
          slot[s] = static_cast<int>(recipe.fetch_groups.size());
          recipe.fetch_groups.push_back({s, {}});
        }
        recipe.fetch_groups[static_cast<std::size_t>(slot[s])].lines.push_back(line);
      }
      std::sort(recipe.fetch_groups.begin(), recipe.fetch_groups.end(),
                [](const auto& a, const auto& b) { return a.set < b.set; });
    }
    {
      slot.assign(dcache.sets, -1); // set -> data_groups index
      const auto group_of = [&](unsigned s) -> CacheRecipe::DataGroup& {
        if (slot[s] < 0) {
          slot[s] = static_cast<int>(recipe.data_groups.size());
          recipe.data_groups.push_back({s, false, {}});
        }
        return recipe.data_groups[static_cast<std::size_t>(slot[s])];
      };
      for (const CacheRecipe::Data& d : recipe.data) {
        if (d.kind == CacheRecipe::DataKind::bypass) continue;
        const std::vector<std::uint32_t>& lines =
            lines_[ni][static_cast<std::size_t>(d.access_index)];
        if (d.kind == CacheRecipe::DataKind::disturb || lines.empty()) {
          // Unknown line: the must side ages every set, so every set's
          // program gets an age_all op at this position.
          for (unsigned s = 0; s < dcache.sets; ++s) {
            CacheRecipe::DataSetOp op;
            op.age_all = true;
            group_of(s).ops.push_back(std::move(op));
          }
          continue;
        }
        // access_one_of, pre-split per affected set (the shared
        // splitting rule — see for_each_candidate_set).
        static thread_local std::vector<unsigned> affected;
        for_each_candidate_set(dcache, lines, affected, [&](unsigned s, bool outside) {
          CacheRecipe::DataSetOp op;
          op.outside = outside;
          for (const std::uint32_t line : lines) {
            if (dcache.set_index(line * dcache.line_bytes) == s) {
              op.lines.push_back(line);
            }
          }
          CacheRecipe::DataGroup& group = group_of(s);
          group.any_one_of = true;
          group.ops.push_back(std::move(op));
        });
      }
      std::sort(recipe.data_groups.begin(), recipe.data_groups.end(),
                [](const auto& a, const auto& b) { return a.set < b.set; });
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(recipes_.size(), build_node);
  } else {
    for (std::size_t n = 0; n < recipes_.size(); ++n) build_node(n);
  }
  recipes_ready_ = true;
}

} // namespace wcet::analysis
