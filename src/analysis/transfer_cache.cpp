#include "analysis/transfer_cache.hpp"

#include <algorithm>

#include "support/diag.hpp"
#include "support/thread_pool.hpp"

namespace wcet::analysis {

TransferCache::TransferCache(const cfg::Supergraph& sg) : sg_(sg) {
  out_.resize(sg.nodes().size());
  edge_out_.resize(sg.edges().size());
}

const AbsState& TransferCache::edge_state(int edge) const {
  WCET_CHECK(values_ != nullptr, "TransferCache queried before attach()");
  auto& slot = edge_out_[static_cast<std::size_t>(edge)];
  if (!slot) {
    const cfg::SgEdge& e = sg_.edge(edge);
    AbsState along = values_->edge_feasible(edge)
                         ? values_->refine_along_edge(edge, out_state(e.from))
                         : AbsState{};
    slot = std::make_unique<AbsState>(std::move(along));
  }
  return *slot;
}

Interval TransferCache::mem_word_along_edge(int edge, std::uint32_t addr) const {
  const AbsState& out = edge_state(edge);
  if (out.bottom) return Interval::bottom();
  const auto it = out.mem.find(addr);
  if (it != out.mem.end()) return it->second;
  return values_->implicit_mem_word(out, addr);
}

std::vector<std::uint32_t> TransferCache::candidate_lines(const Interval& addr, int size,
                                                          const mem::CacheConfig& config) {
  std::vector<std::uint32_t> lines;
  if (addr.is_bottom()) return lines;
  // Clamp the end to the word range: a wrap here once made a TOP address
  // interval look like a single-line access (unsound).
  const std::int64_t end =
      std::min<std::int64_t>(addr.umax() + size - 1, Interval::word_max);
  const std::uint32_t first = config.line_of(static_cast<std::uint32_t>(addr.umin()));
  const std::uint32_t last = config.line_of(static_cast<std::uint32_t>(end));
  if (last - first + 1 > 8) return {}; // unknown: too many candidates
  for (std::uint32_t l = first; l <= last; ++l) lines.push_back(l);
  return lines;
}

void TransferCache::build_data_lines(const mem::CacheConfig& config, ThreadPool* pool) {
  WCET_CHECK(values_ != nullptr, "TransferCache::build_data_lines before attach()");
  if (lines_ready_) {
    // The memo is only valid for one geometry: silently serving lines
    // computed under a different line size would misclassify accesses.
    WCET_CHECK(lines_config_.enabled == config.enabled &&
                   lines_config_.sets == config.sets && lines_config_.ways == config.ways &&
                   lines_config_.line_bytes == config.line_bytes,
               "TransferCache line tables rebuilt under a different cache geometry");
    return;
  }
  lines_config_ = config;
  lines_.resize(sg_.nodes().size());
  const auto build_node = [&](std::size_t n) {
    const auto& accesses = values_->accesses(static_cast<int>(n));
    auto& row = lines_[n];
    row.clear();
    row.reserve(accesses.size());
    for (const AccessInfo& access : accesses) {
      row.push_back(candidate_lines(access.addr, access.size, config));
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(lines_.size(), build_node);
  } else {
    for (std::size_t n = 0; n < lines_.size(); ++n) build_node(n);
  }
  lines_ready_ = true;
}

} // namespace wcet::analysis
