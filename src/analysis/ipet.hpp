// Path analysis (Figure 1, "Path Analysis") via Implicit Path
// Enumeration (IPET): maximize cycle-weighted execution counts subject
// to flow conservation, loop bounds, and the design-level flow facts of
// Section 4.3 (absolute/relative caps, infeasible pairs from mutually
// exclusive operating cycles, operating-mode exclusions).
//
// The ILP is solved exactly (rational simplex + branch & bound); the
// WCET bound is the ceiling of the optimum. Minimizing the same system
// with lower block bounds yields a BCET bound.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/pipeline_analysis.hpp"
#include "annot/annotations.hpp"
#include "cfg/domloop.hpp"
#include "support/ilp.hpp"

namespace wcet {
class ThreadPool;
}

namespace wcet::analysis {

// How the IPET ILP is split (see Ipet::solve). The optimum is provably
// identical in every mode; the modes differ only in how many
// independent sub-ILPs the solve fans out.
enum class IpetDecomposition {
  monolithic, // whole supergraph as one ILP (reference path)
  flat,       // top-level instance subtrees collapse, solved monolithically
  recursive,  // collapsed subtrees re-enter planning: nested sub-ILPs
};

struct IpetOptions {
  IpetOptions() {}
  std::map<int, std::uint64_t> loop_bounds; // loop id -> max back edges per entry
  std::vector<annot::FlowCapFact> flow_caps;
  std::vector<annot::FlowRatioFact> flow_ratios;
  std::vector<annot::InfeasiblePairFact> infeasible_pairs;
  std::set<std::uint32_t> excluded_addrs; // mode excludes + nevers
  bool maximize = true;                   // false: BCET lower bound
  std::uint64_t infeasible_pair_big_m = 1u << 20;
  std::string* lp_dump = nullptr;         // debug: receives the LP text (forces monolithic)
  IpetDecomposition decomposition = IpetDecomposition::recursive;
  // Optional resource governor (support/budget.hpp): every region solve
  // runs under its per-solve pivot/node caps and cancellation
  // checkpoints. A truncated solve yields a *degraded* result (status
  // ok, `degraded` set, bound = best proven bound, no path witness);
  // a failed sub-solve walks the fallback ladder recursive -> flat ->
  // monolithic, each step recorded in the governor's ledger.
  const AnalysisGovernor* governor = nullptr;
};

struct IpetResult {
  // `node_limit`: branch & bound hit its cap before proving any bound.
  // `pivot_limit`: the root LP relaxation ran out of pivot budget — no
  // bound of any kind exists (reported as an obstruction upstream).
  enum class Status { ok, infeasible, unbounded, missing_loop_bounds, node_limit, pivot_limit };
  Status status = Status::infeasible;
  // True when any region solve was truncated by a pivot/node budget:
  // `bound` is then the best *proven* bound (still a true WCET upper /
  // BCET lower bound), but no integral path witness exists — the
  // witness-bearing `node_counts` of truncated regions stay empty, and
  // witness_available() below is the explicit signal callers must
  // branch on instead of probing the map for emptiness.
  bool degraded = false;
  std::uint64_t bound = 0;
  int variables = 0;
  int constraints = 0;
  int decomposed_regions = 0;  // top-level collapsed subtrees (0: monolithic)
  int sub_ilps = 0;            // sub-ILPs solved across all nesting levels
  int decomposition_depth = 0; // nesting depth of the deepest sub-ILP
  int sese_regions = 0;        // collapsed single-entry/single-exit body regions
  // Simplex pivot split summed over every region solve (see LpSolution):
  // a pure-flow workload solved off network-flow crash bases reports
  // phase1_pivots == 0.
  std::uint64_t phase1_pivots = 0;
  std::uint64_t phase2_pivots = 0;
  std::uint64_t crash_basis_rows = 0;
  std::map<int, std::uint64_t> node_counts; // extremal path witness
  std::vector<int> loops_missing_bounds;

  bool ok() const { return status == Status::ok; }
  // The extremal-path witness contract made explicit: a usable
  // `node_counts` witness exists only for an exact (non-degraded) ok
  // solve. Degraded solves prove a bound without an integral incumbent,
  // so downstream consumers (witness replay, reporting) must classify
  // them as "no witness" rather than silently reading an empty map.
  bool witness_available() const { return ok() && !degraded && !node_counts.empty(); }
};

class Ipet {
public:
  Ipet(const cfg::Supergraph& sg, const cfg::LoopForest& loops,
       const ValueAnalysis& values, const PipelineAnalysis& pipeline);

  // Optional pool: independent per-instance subproblems of a
  // decomposed solve fan out across it, one nesting level at a time in
  // ascending instance order. The decomposition plan and the merge
  // order are pure functions of the graph, so results are bit-identical
  // for any worker count.
  void set_pool(ThreadPool* pool) { pool_ = pool; }

  IpetResult solve(const IpetOptions& options) const;

  // Solve the WCET (maximize) and BCET (minimize) bounds of one
  // configuration together — {wcet, bcet} — sharing the decomposition
  // plan, every region's constraint system, and the phase-1 simplex
  // work between the two senses (the constraint systems are identical;
  // only the objective differs). `options.maximize` is ignored. The
  // WCET result is bit-identical to solve(maximize); the BCET bound is
  // the same exact optimum solve(minimize) computes. When the WCET
  // solve fails, the BCET half is returned as-is and should be ignored
  // (matching the driver's "no BCET without a WCET" convention).
  std::pair<IpetResult, IpetResult> solve_both(const IpetOptions& options) const;

private:
  // One collapsed function-instance subtree: a single-entry
  // (call edge), single-return-site region whose ILP block is
  // independent of the rest of the system (see plan_decomposition).
  // `children` are eligible subtrees nested inside this one — planning
  // re-enters each collapsed subtree, so deep call trees become a tree
  // of sub-ILPs instead of one monolithic sub-solve.
  // A collapsed subtree, or (sese == true) a collapsed single-entry/
  // single-exit region *inside* one function body: entry_node is the
  // region head (sole successor of the loop-free call_site via
  // call_edge), return_site its immediate post-dominator, and ret_edges
  // every edge leaving the region onto it. Both kinds satisfy the same
  // exactness contract, so everything downstream of planning treats
  // them identically.
  struct Sub {
    int instance = -1;
    int call_site = -1;   // node holding the call, outside the subtree
    int call_edge = -1;   // only edge entering the subtree
    int entry_node = -1;  // callee entry (virtual source of the sub-ILP)
    int return_site = -1; // every boundary exit targets this node
    bool sese = false;    // intra-body SESE region (not an instance subtree)
    std::vector<int> ret_edges;
    std::vector<char> member; // per-node membership bitmap (incl. children)
    std::vector<Sub> children;
    // Per-solve state: subtree optima in internal maximize sense (the
    // WCET/maximize optimum, and the BCET/minimize one filled by
    // single-sense minimize solves and by solve_both), plus the region
    // solve results.
    Rational objective;
    Rational objective_bcet;
    IpetResult result;
    IpetResult result_bcet;
  };
  struct RegionSpec {
    const std::vector<char>* member = nullptr; // null: whole supergraph
    int source_node = -1;                      // virtual source, flow 1
    bool top_level = true; // sinks at task exits (else at sink_ret_edges)
    const std::vector<int>* sink_ret_edges = nullptr;
    const std::vector<Sub>* children = nullptr; // collapsed subtrees of this region
  };
  // One emitted region problem: the sense-independent constraint system
  // plus both objective vectors (internal maximize sense) and the
  // virtual-source objective constants.
  struct RegionBuild;

  IpetResult solve_monolithic(const IpetOptions& options) const;
  std::pair<IpetResult, IpetResult> solve_monolithic_both(const IpetOptions& options) const;
  IpetResult solve_region(const RegionSpec& spec, const IpetOptions& options,
                          Rational* objective_out = nullptr,
                          std::map<int, std::uint64_t>* edge_counts_out = nullptr) const;
  std::pair<IpetResult, IpetResult> solve_region_both(
      const RegionSpec& spec, const IpetOptions& options, Rational* objective_max_out,
      Rational* objective_min_out, std::map<int, std::uint64_t>* edge_counts_max_out,
      std::map<int, std::uint64_t>* edge_counts_min_out) const;
  // Emit the region's constraint system and both objectives. Returns
  // false when the solve is already decided (no reachable exit, or a
  // maximize-fatal missing loop bound) with the verdict in build.early.
  bool build_region(const RegionSpec& spec, const IpetOptions& options,
                    RegionBuild& build) const;
  IpetResult extract_region(const RegionBuild& build, const RegionSpec& spec, bool maximize,
                            const LpSolution& solution, Rational* objective_out,
                            std::map<int, std::uint64_t>* edge_counts_out) const;
  // Append the inbound-flow terms of a node (in-edges plus the
  // super-edges of children returning here), scaled; returns the
  // virtual-source constant (1 at the region source).
  int append_in_flow(const RegionSpec& spec, const std::vector<int>& edge_var, int node_id,
                     const Rational& scale, std::vector<LinTerm>& terms) const;
  // Solve one collapsed subtree's region (children already solved);
  // fills the sense-matching objective and result, merging child
  // witnesses. solve_sub_both fills both senses off one shared build.
  void solve_sub(Sub& sub, const IpetOptions& options) const;
  void solve_sub_both(Sub& sub, const IpetOptions& options) const;
  // Region spec of a collapsed subtree (its nodes minus its collapsed
  // children, virtual source at the callee entry, sinks at the ret
  // edges); `member` receives the membership bitmap the spec points at.
  static RegionSpec sub_region_spec(Sub& sub, std::vector<char>& member);
  // Nesting depth and total count of a sub-ILP plan (for telemetry).
  static int plan_stats(const std::vector<Sub>& subs, int* total_subs);
  // Shared plumbing of solve()/solve_both(): the per-solve plan copy
  // (flat stripping + fact pruning), the missing-loop-bound pre-check
  // replicating the monolithic scan, the dependency-counted task-graph
  // fan-out over the pool (false: some sub failed -> monolithic
  // fallback), and the merge of sub results into the outer result.
  std::vector<Sub> planned_subs(const IpetOptions& options) const;
  std::vector<int> missing_loop_bounds_in(const IpetOptions& options) const;
  bool solve_graph(std::vector<Sub>& subs, const IpetOptions& options, bool both) const;
  static void merge_sub_results(IpetResult& outer, const std::vector<Sub>& subs,
                                const std::map<int, std::uint64_t>& edge_counts,
                                bool bcet_sense);
  // Memoized: the plan is a pure function of the (immutable) graph and
  // value-analysis results; the WCET + BCET solves and every
  // decomposition mode share it (flat drops the nested children).
  const std::vector<Sub>& decomposition_plan() const;
  std::vector<Sub> plan_decomposition() const;
  // Plan the eligible subtrees of one region (the whole graph, or the
  // inside of a collapsed subtree), recursing into each collapsed sub,
  // then plan SESE regions over the function bodies left in the region
  // (`region_member` null: the whole graph).
  std::vector<Sub> plan_region(int root_instance, std::size_t region_size,
                               const std::vector<char>* region_member,
                               const std::vector<std::vector<int>>& children,
                               const std::vector<std::size_t>& subtree_nodes,
                               const std::set<int>& exit_set, const cfg::Dominators& dom,
                               const cfg::PostDominators& pdom) const;
  // Single-entry/single-exit regions inside function bodies: for every
  // loop-free candidate site in `site_mask`, the nodes between one of
  // its successors and that successor's immediate post-dominator
  // collapse exactly like an instance subtree. Selected regions adopt
  // the already-collapsed instance subs they contain and recurse for
  // nested SESE regions; new subs are appended to `subs`.
  void plan_sese(const std::vector<char>& site_mask, std::size_t region_size,
                 const std::set<int>& exit_set, const cfg::Dominators& dom,
                 const cfg::PostDominators& pdom, std::vector<Sub>& subs) const;
  // Compute + validate one SESE candidate entered by `call_edge`;
  // mirrors subtree_eligible's boundary scan with "targets the
  // post-dominator" in place of "is a ret edge onto the return site".
  bool sese_region(int call_site, int call_edge, std::size_t max_size,
                   const std::set<int>& exit_set, const cfg::Dominators& dom,
                   const cfg::PostDominators& pdom, Sub& sub) const;
  // Seed the region's ILP with a network-flow crash basis (see
  // IlpProblem::set_basis_hint): a spanning forest of the balance-row
  // flow network carrying one unit of source-to-sink flow. Emitted only
  // for pure-flow systems (no design-level fact rows) whose every
  // equality-row variable is a well-formed arc; otherwise a no-op and
  // the solver runs its ordinary phase 1.
  void emit_crash_basis(const RegionSpec& spec, const IpetOptions& options, RegionBuild& build,
                        const std::vector<int>& balance_row,
                        const std::vector<std::pair<int, int>>& sink_var_node,
                        int sum_row) const;
  bool subtree_eligible(int instance, const std::vector<std::vector<int>>& children,
                        const std::set<int>& exit_set, Sub& sub) const;
  std::size_t reachable_in(const std::vector<char>& member) const;
  // Per-subtree flow-fact eligibility: the reachable nodes constrained
  // by any flow cap / ratio / infeasible pair / exclusion in `options`
  // (empty when no facts are present).
  std::vector<char> constrained_nodes(const IpetOptions& options) const;
  // Drop every subtree a constrained node pins, promoting unpinned
  // nested children into the parent region.
  static std::vector<Sub> prune_pinned(std::vector<Sub> subs, const std::vector<char>& pinned);

  const cfg::Supergraph& sg_;
  const cfg::LoopForest& loops_;
  const ValueAnalysis& values_;
  const PipelineAnalysis& pipeline_;
  ThreadPool* pool_ = nullptr;
  mutable bool plan_ready_ = false;
  mutable std::vector<Sub> plan_;
};

} // namespace wcet::analysis
