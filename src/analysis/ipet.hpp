// Path analysis (Figure 1, "Path Analysis") via Implicit Path
// Enumeration (IPET): maximize cycle-weighted execution counts subject
// to flow conservation, loop bounds, and the design-level flow facts of
// Section 4.3 (absolute/relative caps, infeasible pairs from mutually
// exclusive operating cycles, operating-mode exclusions).
//
// The ILP is solved exactly (rational simplex + branch & bound); the
// WCET bound is the ceiling of the optimum. Minimizing the same system
// with lower block bounds yields a BCET bound.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/pipeline_analysis.hpp"
#include "annot/annotations.hpp"
#include "cfg/domloop.hpp"
#include "support/ilp.hpp"

namespace wcet {
class ThreadPool;
}

namespace wcet::analysis {

struct IpetOptions {
  IpetOptions() {}
  std::map<int, std::uint64_t> loop_bounds; // loop id -> max back edges per entry
  std::vector<annot::FlowCapFact> flow_caps;
  std::vector<annot::FlowRatioFact> flow_ratios;
  std::vector<annot::InfeasiblePairFact> infeasible_pairs;
  std::set<std::uint32_t> excluded_addrs; // mode excludes + nevers
  bool maximize = true;                   // false: BCET lower bound
  std::uint64_t infeasible_pair_big_m = 1u << 20;
  std::string* lp_dump = nullptr;         // debug: receives the LP text
  // Per-instance block decomposition of the ILP (see Ipet::solve). The
  // optimum is provably identical either way; `false` forces the
  // monolithic whole-supergraph solve (reference path, used by tests).
  bool allow_decomposition = true;
};

struct IpetResult {
  enum class Status { ok, infeasible, unbounded, missing_loop_bounds, node_limit };
  Status status = Status::infeasible;
  std::uint64_t bound = 0;
  int variables = 0;
  int constraints = 0;
  int decomposed_regions = 0; // collapsed instance subtrees (0: monolithic)
  std::map<int, std::uint64_t> node_counts; // extremal path witness
  std::vector<int> loops_missing_bounds;

  bool ok() const { return status == Status::ok; }
};

class Ipet {
public:
  Ipet(const cfg::Supergraph& sg, const cfg::LoopForest& loops,
       const ValueAnalysis& values, const PipelineAnalysis& pipeline);

  // Optional pool: independent per-instance subproblems of a
  // decomposed solve fan out across it. The decomposition plan and the
  // merge order are pure functions of the graph, so results are
  // bit-identical for any worker count.
  void set_pool(ThreadPool* pool) { pool_ = pool; }

  IpetResult solve(const IpetOptions& options) const;

private:
  // One collapsed function-instance subtree: a single-entry
  // (call edge), single-return-site region whose ILP block is
  // independent of the rest of the system (see plan_decomposition).
  struct Sub {
    int instance = -1;
    int call_site = -1;   // node holding the call, outside the subtree
    int call_edge = -1;   // only edge entering the subtree
    int entry_node = -1;  // callee entry (virtual source of the sub-ILP)
    int return_site = -1; // every boundary exit targets this node
    std::vector<int> ret_edges;
    std::vector<char> member; // per-node membership bitmap
    Rational objective;       // sub-ILP optimum, internal maximize sense
  };
  struct RegionSpec {
    const std::vector<char>* member = nullptr; // null: whole supergraph
    int source_node = -1;                      // virtual source, flow 1
    bool top_level = true; // sinks at task exits (else at sink_ret_edges)
    const std::vector<int>* sink_ret_edges = nullptr;
    const std::vector<Sub>* children = nullptr; // collapsed subtrees (outer region)
    Rational* objective_out = nullptr;          // internal maximize sense
    std::map<int, std::uint64_t>* edge_counts_out = nullptr;
  };

  IpetResult solve_monolithic(const IpetOptions& options) const;
  IpetResult solve_region(const RegionSpec& spec, const IpetOptions& options) const;
  // Memoized: the plan is a pure function of the (immutable) graph and
  // value-analysis results, and the WCET + BCET solves share it.
  const std::vector<Sub>& decomposition_plan() const;
  std::vector<Sub> plan_decomposition() const;
  bool subtree_eligible(int instance, const std::vector<std::vector<int>>& children,
                        const std::set<int>& exit_set, Sub& sub) const;
  bool node_excluded(int node, const std::set<std::uint32_t>& excluded) const;

  const cfg::Supergraph& sg_;
  const cfg::LoopForest& loops_;
  const ValueAnalysis& values_;
  const PipelineAnalysis& pipeline_;
  ThreadPool* pool_ = nullptr;
  mutable bool plan_ready_ = false;
  mutable std::vector<Sub> plan_;
};

} // namespace wcet::analysis
