// Path analysis (Figure 1, "Path Analysis") via Implicit Path
// Enumeration (IPET): maximize cycle-weighted execution counts subject
// to flow conservation, loop bounds, and the design-level flow facts of
// Section 4.3 (absolute/relative caps, infeasible pairs from mutually
// exclusive operating cycles, operating-mode exclusions).
//
// The ILP is solved exactly (rational simplex + branch & bound); the
// WCET bound is the ceiling of the optimum. Minimizing the same system
// with lower block bounds yields a BCET bound.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/pipeline_analysis.hpp"
#include "annot/annotations.hpp"
#include "cfg/domloop.hpp"
#include "support/ilp.hpp"

namespace wcet::analysis {

struct IpetOptions {
  IpetOptions() {}
  std::map<int, std::uint64_t> loop_bounds; // loop id -> max back edges per entry
  std::vector<annot::FlowCapFact> flow_caps;
  std::vector<annot::FlowRatioFact> flow_ratios;
  std::vector<annot::InfeasiblePairFact> infeasible_pairs;
  std::set<std::uint32_t> excluded_addrs; // mode excludes + nevers
  bool maximize = true;                   // false: BCET lower bound
  std::uint64_t infeasible_pair_big_m = 1u << 20;
  std::string* lp_dump = nullptr;         // debug: receives the LP text
};

struct IpetResult {
  enum class Status { ok, infeasible, unbounded, missing_loop_bounds, node_limit };
  Status status = Status::infeasible;
  std::uint64_t bound = 0;
  int variables = 0;
  int constraints = 0;
  std::map<int, std::uint64_t> node_counts; // extremal path witness
  std::vector<int> loops_missing_bounds;

  bool ok() const { return status == Status::ok; }
};

class Ipet {
public:
  Ipet(const cfg::Supergraph& sg, const cfg::LoopForest& loops,
       const ValueAnalysis& values, const PipelineAnalysis& pipeline);

  IpetResult solve(const IpetOptions& options) const;

private:
  bool node_excluded(int node, const std::set<std::uint32_t>& excluded) const;

  const cfg::Supergraph& sg_;
  const cfg::LoopForest& loops_;
  const ValueAnalysis& values_;
  const PipelineAnalysis& pipeline_;
};

} // namespace wcet::analysis
