#include "analysis/pipeline_analysis.hpp"

#include "support/diag.hpp"

namespace wcet::analysis {

using isa::Inst;
using isa::Opcode;

PipelineAnalysis::PipelineAnalysis(const cfg::Supergraph& sg, const ValueAnalysis& values,
                                   const CacheAnalysis& caches, const mem::HwConfig& hw)
    : sg_(sg), values_(values), caches_(caches), hw_(hw) {
  timings_.resize(sg.nodes().size());
  edge_extra_.assign(sg.edges().size(), 0);
}

void PipelineAnalysis::run() {
  // Unlike the value/cache phases, block timing is a single pass with
  // no inter-node state (tiny32 is in-order with additive costs), so it
  // does not ride the fixpoint engine: per-node results are
  // order-independent and a plain id-order sweep is the fastest
  // deterministic traversal.
  for (const cfg::SgNode& node : sg_.nodes()) compute_node_timing(node.id);

  for (const cfg::SgEdge& edge : sg_.edges()) {
    const cfg::SgNode& from = sg_.node(edge.from);
    if (from.block->term == cfg::Term::branch && edge.kind == cfg::EdgeKind::taken) {
      edge_extra_[static_cast<std::size_t>(edge.id)] = hw_.pipeline.branch_taken_penalty;
    }
  }
}

void PipelineAnalysis::compute_node_timing(int node_id) {
  const cfg::SgNode& node = sg_.node(node_id);
  NodeTiming& timing = timings_[static_cast<std::size_t>(node.id)];
  timing = NodeTiming{};
  if (!values_.node_reachable(node.id)) return;

  const auto& fetches = caches_.fetch_classes(node.id);
  const auto& data = caches_.data_classes(node.id);
  const auto& accesses = values_.accesses(node.id);
  std::size_t data_index = 0;

  std::uint32_t pc = node.block->begin;
  for (std::size_t i = 0; i < node.block->insts.size(); ++i, pc += 4) {
    const Inst& inst = node.block->insts[i];

    // Execute-stage cost.
    const unsigned base = mem::base_cycles(inst.op, hw_.pipeline);
    timing.lb += base;
    timing.ub += base;

    // Fetch cost.
    const mem::Region& fregion = hw_.memory.region_for(pc);
    const unsigned flat = fregion.read_latency;
    const FetchClass fc = i < fetches.size() ? fetches[i] : FetchClass{};
    switch (fc.cls) {
    case AccessClass::always_hit:
      timing.lb += 1;
      timing.ub += 1;
      break;
    case AccessClass::always_miss:
      if (fc.persistent_loop >= 0) {
        timing.lb += 1;
        timing.ub += 1;
        timing.ps_terms.push_back({fc.persistent_loop, flat, 1});
      } else {
        timing.lb += 1 + flat;
        timing.ub += 1 + flat;
      }
      break;
    case AccessClass::not_classified:
      timing.lb += 1;
      if (fc.persistent_loop >= 0) {
        timing.ub += 1;
        timing.ps_terms.push_back({fc.persistent_loop, flat, 1});
      } else {
        timing.ub += 1 + flat;
      }
      break;
    case AccessClass::uncached:
      timing.lb += 1 + flat;
      timing.ub += 1 + flat;
      break;
    }

    // Memory cost.
    if (inst.is_mem_access() && data_index < data.size() && data_index < accesses.size()) {
      const DataClass& dc = data[data_index];
      const AccessInfo& access = accesses[data_index];
      ++data_index;
      if (access.is_store) {
        const auto [wlo, whi] = hw_.memory.write_latency_bounds(access.addr);
        timing.lb += wlo;
        timing.ub += whi;
      } else {
        const auto [rlo, rhi] = hw_.memory.read_latency_bounds(access.addr);
        switch (dc.cls) {
        case AccessClass::always_hit:
          timing.lb += 1;
          timing.ub += 1;
          break;
        case AccessClass::always_miss:
          if (dc.persistent_loop >= 0) {
            timing.lb += 1;
            timing.ub += 1;
            timing.ps_terms.push_back({dc.persistent_loop, rhi, dc.candidate_count});
          } else {
            timing.lb += 1 + rlo;
            timing.ub += 1 + rhi;
          }
          break;
        case AccessClass::not_classified:
          timing.lb += 1;
          if (dc.persistent_loop >= 0) {
            timing.ub += 1;
            timing.ps_terms.push_back({dc.persistent_loop, rhi, dc.candidate_count});
          } else {
            timing.ub += 1 + rhi;
          }
          break;
        case AccessClass::uncached:
          timing.lb += 1 + rlo;
          timing.ub += 1 + rhi;
          break;
        }
      }
    }
  }

  // Control penalties: unconditional transfers charge the node; the
  // taken direction of a conditional branch charges its edge.
  const Inst& last = node.block->insts.back();
  if (last.op == Opcode::jal || last.op == Opcode::jalr) {
    timing.lb += hw_.pipeline.jump_penalty;
    timing.ub += hw_.pipeline.jump_penalty;
  }
}

} // namespace wcet::analysis
