#include "analysis/loop_bounds.hpp"

#include <algorithm>
#include <sstream>

#include "analysis/transfer_cache.hpp"
#include "support/diag.hpp"

namespace wcet::analysis {

using isa::Inst;
using isa::Opcode;

LoopBoundAnalysis::LoopBoundAnalysis(const cfg::Supergraph& sg, const cfg::LoopForest& loops,
                                     const cfg::Dominators& doms, const ValueAnalysis& values,
                                     const TransferCache* transfers)
    : sg_(sg), loops_(loops), doms_(doms), values_(values), transfers_(transfers) {}

namespace {
// Bounds beyond this are treated as "not found": they arise from
// unconstrained (input-data dependent) limits and would only disguise an
// effectively unbounded loop as a bounded one (cf. Section 3.2).
constexpr std::uint64_t plausible_trip_limit = 1u << 24;

std::optional<std::uint64_t> plausible(std::uint64_t trips) {
  if (trips > plausible_trip_limit) return std::nullopt;
  return trips;
}
} // namespace

std::optional<std::uint64_t> LoopBoundAnalysis::affine_trip_count(const Interval& init,
                                                                  std::int32_t stride,
                                                                  Pred stay,
                                                                  const Interval& limit) {
  if (init.is_bottom() || limit.is_bottom()) return 0;
  if (stride == 0) return std::nullopt;
  const std::int64_t c = stride;

  switch (stay) {
  case Pred::eq:
    // stay while i == L: one step changes i (stride != 0), so at most one
    // re-test can still see equality only if L also equals the new value —
    // impossible for a loop-invariant L. Bound: 1.
    return 1;
  case Pred::ne: {
    // stay while i != L: bounded only for unit strides that cannot step
    // over L, approaching from the correct side.
    if (c != 1 && c != -1) return std::nullopt;
    const std::int64_t i_lo = init.smin();
    const std::int64_t i_hi = init.smax();
    const std::int64_t l_lo = limit.smin();
    const std::int64_t l_hi = limit.smax();
    if (c == 1) {
      if (i_lo > l_lo) return std::nullopt; // may start beyond L and wrap
      return plausible(static_cast<std::uint64_t>(l_hi - i_lo));
    }
    if (i_hi < l_hi) return std::nullopt;
    return plausible(static_cast<std::uint64_t>(i_hi - l_lo));
  }
  case Pred::lt_s: {
    if (c <= 0) return std::nullopt; // moving away from an upper limit
    const std::int64_t i0 = init.smin();
    const std::int64_t limit_max = limit.smax();
    // Wrap guard: the final increment must not overflow back below L.
    if (limit_max - 1 + c > INT32_MAX) return std::nullopt;
    if (i0 >= limit_max) return 0;
    const std::int64_t distance = limit_max - i0;
    return plausible(static_cast<std::uint64_t>((distance + c - 1) / c));
  }
  case Pred::lt_u: {
    if (c <= 0) return std::nullopt;
    const std::int64_t i0 = init.umin();
    const std::int64_t limit_max = limit.umax();
    if (limit_max - 1 + c > static_cast<std::int64_t>(UINT32_MAX)) return std::nullopt;
    if (i0 >= limit_max) return 0;
    const std::int64_t distance = limit_max - i0;
    return plausible(static_cast<std::uint64_t>((distance + c - 1) / c));
  }
  case Pred::ge_s: {
    if (c >= 0) return std::nullopt; // must move down towards the limit
    const std::int64_t i0 = init.smax();
    const std::int64_t limit_min = limit.smin();
    if (limit_min + c < INT32_MIN) return std::nullopt; // wrap below
    if (i0 < limit_min) return 0;
    return plausible(static_cast<std::uint64_t>((i0 - limit_min) / (-c)) + 1);
  }
  case Pred::ge_u: {
    if (c >= 0) return std::nullopt;
    const std::int64_t i0 = init.umax();
    const std::int64_t limit_min = limit.umin();
    if (limit_min + c < 0) return std::nullopt;
    if (i0 < limit_min) return 0;
    return plausible(static_cast<std::uint64_t>((i0 - limit_min) / (-c)) + 1);
  }
  }
  return std::nullopt;
}

namespace {

struct CounterUpdate {
  int node = -1;
  std::int32_t stride = 0;
};

} // namespace

std::optional<std::uint64_t> LoopBoundAnalysis::analyze_loop(const cfg::Loop& loop,
                                                             std::string& detail) const {
  if (loop.irreducible) {
    detail = "irreducible loop (multiple entries): no automatic bound; "
             "annotation required";
    return std::nullopt;
  }

  // Callee-saved registers are written inside called functions (save /
  // home / restore); those writes do not change the register's value
  // across the call when the callee "sandwiches" it: the instance's
  // entry block saves the register to a constant stack slot, every
  // return block restores it from the same slot as the last write, and
  // no other store in the loop can alias the slot. Writes inside such an
  // instance (or below one on the call chain) are ignored for counter
  // detection — the value provably survives the call.
  const auto instance_sandwiches = [&](int instance_id, std::uint8_t reg) -> bool {
    const cfg::Instance& instance = sg_.instances()[static_cast<std::size_t>(instance_id)];
    // Locate the instance's entry node and its save slot for `reg`.
    std::optional<std::uint32_t> slot;
    std::uint32_t save_pc = 0;
    for (const int node_id : loop.nodes) {
      const cfg::SgNode& node = sg_.node(node_id);
      if (node.instance != instance_id || node.block->begin != instance.fn_entry) continue;
      std::uint32_t pc = node.block->begin;
      for (const Inst& inst : node.block->insts) {
        if (inst.is_store() && inst.access_size() == 4 && inst.rd == reg) {
          for (const AccessInfo& access : values_.accesses(node_id)) {
            if (access.pc == pc && access.is_store) {
              slot = access.addr.as_constant();
              save_pc = pc;
            }
          }
        }
        pc += 4;
      }
      break;
    }
    if (!slot) return false;
    // Every return block of the instance must end with a restoring load
    // (no later write to reg before the terminator).
    bool found_ret = false;
    for (const int node_id : loop.nodes) {
      const cfg::SgNode& node = sg_.node(node_id);
      if (node.instance != instance_id || node.block->term != cfg::Term::ret) continue;
      found_ret = true;
      bool restored = false;
      for (int i = static_cast<int>(node.block->insts.size()) - 1; i >= 0; --i) {
        const Inst& inst = node.block->insts[static_cast<std::size_t>(i)];
        if (!inst.writes_rd() || inst.rd != reg) continue;
        if (inst.is_load() && inst.access_size() == 4) {
          const std::uint32_t load_pc =
              node.block->begin + static_cast<std::uint32_t>(i) * 4;
          for (const AccessInfo& access : values_.accesses(node_id)) {
            if (access.pc == load_pc && !access.is_store &&
                access.addr.as_constant() == slot) {
              restored = true;
            }
          }
        }
        break; // last write decides
      }
      if (!restored) return false;
    }
    if (!found_ret) return false;
    // The slot must not be clobbered between save and restore. Control
    // stays inside the instance's call subtree during that window, so
    // only stores from subtree nodes matter (caller code may reuse the
    // same stack addresses, but never while this frame is live).
    const auto in_subtree = [&](int other_instance) {
      for (int walk = other_instance; walk >= 0;
           walk = sg_.instances()[static_cast<std::size_t>(walk)].caller_instance) {
        if (walk == instance_id) return true;
      }
      return false;
    };
    for (const int node_id : loop.nodes) {
      const cfg::SgNode& node = sg_.node(node_id);
      if (!in_subtree(node.instance)) continue;
      for (const AccessInfo& access : values_.accesses(node_id)) {
        if (access.is_store && access.pc != save_pc && access.addr.contains(*slot)) {
          return false;
        }
      }
    }
    return true;
  };

  // Cache: (instance, reg) -> sandwich verdict.
  std::map<std::pair<int, std::uint8_t>, bool> sandwich_cache;
  const auto sandwiched = [&](int instance_id, std::uint8_t reg) {
    const auto key = std::make_pair(instance_id, reg);
    const auto it = sandwich_cache.find(key);
    if (it != sandwich_cache.end()) return it->second;
    const bool result = instance_sandwiches(instance_id, reg);
    sandwich_cache.emplace(key, result);
    return result;
  };
  // True when a write in `instance_id` is shielded from `base_instance`
  // by a sandwiching instance on the call chain.
  const auto write_shielded = [&](int instance_id, int base_instance, std::uint8_t reg) {
    for (int walk = instance_id; walk >= 0 && walk != base_instance;
         walk = sg_.instances()[static_cast<std::size_t>(walk)].caller_instance) {
      if (sandwiched(walk, reg)) return true;
    }
    return false;
  };

  // Collect register writes across the loop body.
  struct RegWrite {
    int node = -1;
    int instance = -1;
    bool is_update = false;
    std::int32_t stride = 0;
  };
  std::vector<RegWrite> writes[isa::num_registers];
  for (const int node_id : loop.nodes) {
    const cfg::SgNode& node = sg_.node(node_id);
    for (const Inst& inst : node.block->insts) {
      if (!inst.writes_rd()) continue;
      RegWrite w;
      w.node = node_id;
      w.instance = node.instance;
      if (inst.op == Opcode::addi && inst.rs1 == inst.rd && inst.imm != 0) {
        w.is_update = true;
        w.stride = static_cast<std::int32_t>(inst.imm);
      }
      writes[inst.rd].push_back(w);
    }
  }

  CounterUpdate update[isa::num_registers];
  // `base_instance`: the instance the exit branch lives in. Writes in
  // called instances are ignored when a save/restore sandwich shields
  // them; among the remaining writes exactly one addi-update may remain.
  const auto is_counter = [&](std::uint8_t reg, int base_instance) {
    if (reg == isa::reg_zero) return false;
    const RegWrite* the_update = nullptr;
    for (const RegWrite& w : writes[reg]) {
      if (w.instance != base_instance && write_shielded(w.instance, base_instance, reg)) {
        continue; // value provably survives the call
      }
      if (w.is_update && the_update == nullptr) {
        the_update = &w;
      } else {
        return false; // second unshielded write (update-shaped or not)
      }
    }
    if (the_update == nullptr) return false;
    update[reg] = {the_update->node, the_update->stride};
    // The update must run exactly once per circuit: it has to dominate
    // every back-edge source.
    for (const int eid : loop.back_edges) {
      if (!doms_.dominates(update[reg].node, sg_.edge(eid).from)) return false;
    }
    return true;
  };
  // The limit operand need not be loop-invariant: the value-analysis
  // interval at the branch point joins over all iterations, so using its
  // extremal bound in the trip-count formula stays sound even when the
  // register is rematerialized inside the loop (as compiled code does).
  // It only must not be the counter itself.
  const auto usable_limit = [&](std::uint8_t reg, std::uint8_t counter) {
    return reg != counter;
  };

  // Initial counter value: join over the loop entry edges (memoized
  // edge states when the shared transfer cache is attached).
  const auto init_of = [&](std::uint8_t reg) {
    Interval init = Interval::bottom();
    for (const int eid : loop.entry_edges) {
      const cfg::SgEdge& e = sg_.edge(eid);
      if (!values_.edge_feasible(e.id)) continue;
      if (transfers_ != nullptr) {
        const AbsState& out = transfers_->edge_state(e.id);
        if (!out.bottom) init = init.join(out.regs[reg]);
        continue;
      }
      AbsState out = values_.transfer_node(e.from, values_.state_in(e.from));
      out = values_.refine_along_edge(e.id, std::move(out));
      if (!out.bottom) init = init.join(out.regs[reg]);
    }
    return init;
  };

  // ---- memory-homed ("slot") counters: compiled code often spills the
  // counter to the stack frame or a global. A slot qualifies when the
  // loop contains exactly one store to its (constant) address, that
  // store closes a load/addi/store triple on the same slot, and no other
  // store in the loop can alias the address.
  struct SlotUpdate {
    int node = -1;
    std::uint32_t store_pc = 0;
    std::int32_t stride = 0;
  };
  std::map<std::uint32_t, std::vector<std::pair<int, std::uint32_t>>> slot_stores;
  std::vector<Interval> wild_stores;
  for (const int node_id : loop.nodes) {
    for (const AccessInfo& access : values_.accesses(node_id)) {
      if (!access.is_store) continue;
      if (const auto addr = access.addr.as_constant(); addr && access.size == 4) {
        slot_stores[*addr].emplace_back(node_id, access.pc);
      } else if (!access.addr.is_bottom()) {
        wild_stores.push_back(access.addr);
      }
    }
  }
  std::map<std::uint32_t, SlotUpdate> slot_updates;
  for (const auto& [addr, stores] : slot_stores) {
    if (stores.size() != 1) continue;
    const bool aliased = std::any_of(wild_stores.begin(), wild_stores.end(),
                                     [&](const Interval& iv) { return iv.contains(addr); });
    if (aliased) continue;
    const auto [node_id, store_pc] = stores.front();
    const cfg::SgNode& node = sg_.node(node_id);
    // Locate the store and walk back: addi rX, rX, c then lw rX from addr.
    const auto& insts = node.block->insts;
    const auto& accesses = values_.accesses(node_id);
    const int store_index = static_cast<int>((store_pc - node.block->begin) / 4);
    if (store_index < 0 || store_index >= static_cast<int>(insts.size())) continue;
    const Inst& store = insts[static_cast<std::size_t>(store_index)];
    if (!store.is_store() || store.access_size() != 4) continue;
    const std::uint8_t reg = store.rd; // stored value register
    std::int32_t stride = 0;
    bool ok = false;
    for (int i = store_index - 1; i >= 0; --i) {
      const Inst& inst = insts[static_cast<std::size_t>(i)];
      if (!inst.writes_rd() || inst.rd != reg) continue;
      if (stride == 0) {
        if (inst.op == Opcode::addi && inst.rs1 == reg && inst.imm != 0) {
          stride = static_cast<std::int32_t>(inst.imm);
          continue; // now find the defining load
        }
        break;
      }
      // Defining instruction below the addi: must be a load of the slot.
      if (inst.is_load() && inst.access_size() == 4) {
        const std::uint32_t load_pc = node.block->begin + static_cast<std::uint32_t>(i) * 4;
        const auto access = std::find_if(accesses.begin(), accesses.end(),
                                         [&](const AccessInfo& a) { return a.pc == load_pc; });
        if (access != accesses.end() && access->addr.as_constant() == addr) ok = true;
      }
      break;
    }
    if (!ok || stride == 0) continue;
    // Exactly once per circuit.
    bool dominates_backedges = true;
    for (const int eid : loop.back_edges) {
      if (!doms_.dominates(node_id, sg_.edge(eid).from)) dominates_backedges = false;
    }
    if (!dominates_backedges) continue;
    slot_updates[addr] = SlotUpdate{node_id, store_pc, stride};
  }

  // Initial slot value: join over the loop entry edges.
  const auto slot_init_of = [&](std::uint32_t addr) {
    Interval init = Interval::bottom();
    for (const int eid : loop.entry_edges) {
      if (!values_.edge_feasible(eid)) continue;
      init = init.join(transfers_ != nullptr ? transfers_->mem_word_along_edge(eid, addr)
                                             : values_.mem_word_along_edge(eid, addr));
    }
    return init;
  };
  // If the branch operand `reg` holds the value of a qualifying slot at
  // the terminator (defined by a load of that slot, unclobbered since),
  // return the slot address.
  const auto slot_behind_reg = [&](int node_id, std::uint8_t reg)
      -> std::optional<std::uint32_t> {
    const cfg::SgNode& node = sg_.node(node_id);
    const auto& insts = node.block->insts;
    const auto& accesses = values_.accesses(node_id);
    for (int i = static_cast<int>(insts.size()) - 2; i >= 0; --i) {
      const Inst& inst = insts[static_cast<std::size_t>(i)];
      if (!inst.writes_rd() || inst.rd != reg) continue;
      if (!inst.is_load() || inst.access_size() != 4) return std::nullopt;
      const std::uint32_t load_pc = node.block->begin + static_cast<std::uint32_t>(i) * 4;
      const auto access = std::find_if(accesses.begin(), accesses.end(),
                                       [&](const AccessInfo& a) { return a.pc == load_pc; });
      if (access == accesses.end()) return std::nullopt;
      const auto addr = access->addr.as_constant();
      if (!addr || slot_updates.count(*addr) == 0) return std::nullopt;
      // No store to the slot between the load and the branch.
      for (const AccessInfo& a : accesses) {
        if (a.is_store && a.pc > load_pc && a.addr.contains(*addr)) return std::nullopt;
      }
      return addr;
    }
    return std::nullopt;
  };

  std::optional<std::uint64_t> best;
  std::ostringstream why;
  bool found_exit_branch = false;

  for (const int node_id : loop.nodes) {
    const cfg::SgNode& node = sg_.node(node_id);
    if (node.block->term != cfg::Term::branch) continue;
    // One successor edge must leave the loop, the other stay.
    int stay_edge = -1;
    int exit_edge = -1;
    for (const int eid : node.succ_edges) {
      const cfg::SgEdge& e = sg_.edge(eid);
      if (loops_.loop_contains(loop.id, e.to)) {
        stay_edge = eid;
      } else {
        exit_edge = eid;
      }
    }
    if (stay_edge < 0 || exit_edge < 0) continue;
    found_exit_branch = true;

    const Inst& term = node.block->terminator();
    const bool taken_stays = sg_.edge(stay_edge).kind == cfg::EdgeKind::taken;
    const Pred stay_raw = taken_stays ? term.branch_pred() : negate(term.branch_pred());

    // Normalize so the counter is on the left of the predicate.
    // (L p i) mirrors to: L <s i == i >=s L+1; L >=s i == i <s L+1.
    const auto mirror = [](Pred p, bool& add_one) {
      switch (p) {
      case Pred::eq: return Pred::eq;
      case Pred::ne: return Pred::ne;
      case Pred::lt_s: add_one = true; return Pred::ge_s;
      case Pred::ge_s: add_one = true; return Pred::lt_s;
      case Pred::lt_u: add_one = true; return Pred::ge_u;
      case Pred::ge_u: add_one = true; return Pred::lt_u;
      }
      return p;
    };

    std::uint8_t limit_reg = 0;
    Pred stay = stay_raw;
    bool add_one_to_limit = false; // for mirrored strict predicates
    std::int32_t stride = 0;
    int update_node = -1;
    Interval init = Interval::bottom();
    std::string counter_desc;
    const int branch_instance = node.instance;
    if (is_counter(term.rs1, branch_instance) && usable_limit(term.rs2, term.rs1)) {
      limit_reg = term.rs2;
      stride = update[term.rs1].stride;
      update_node = update[term.rs1].node;
      init = init_of(term.rs1);
      counter_desc = isa::reg_name(term.rs1);
    } else if (is_counter(term.rs2, branch_instance) && usable_limit(term.rs1, term.rs2)) {
      limit_reg = term.rs1;
      stride = update[term.rs2].stride;
      update_node = update[term.rs2].node;
      init = init_of(term.rs2);
      counter_desc = isa::reg_name(term.rs2);
      stay = mirror(stay_raw, add_one_to_limit);
    } else if (const auto slot = slot_behind_reg(node_id, term.rs1)) {
      limit_reg = term.rs2;
      stride = slot_updates[*slot].stride;
      update_node = slot_updates[*slot].node;
      init = slot_init_of(*slot);
      std::ostringstream desc;
      desc << "mem[0x" << std::hex << *slot << ']';
      counter_desc = desc.str();
    } else if (const auto slot = slot_behind_reg(node_id, term.rs2)) {
      limit_reg = term.rs1;
      stride = slot_updates[*slot].stride;
      update_node = slot_updates[*slot].node;
      init = slot_init_of(*slot);
      stay = mirror(stay_raw, add_one_to_limit);
      std::ostringstream desc;
      desc << "mem[0x" << std::hex << *slot << ']';
      counter_desc = desc.str();
    } else {
      continue; // branch not over a recognizable counter
    }

    // If the update dominates the exit branch, every compare sees the
    // already-incremented counter: shift the initial value by one stride
    // (makes the bound exact for do-style and for-step-at-latch loops).
    if (update_node == node_id || doms_.dominates(update_node, node_id)) {
      init = init.add(Interval::constant(static_cast<std::uint32_t>(stride)));
    }

    Interval limit = values_.reg_before(node.id, node.block->term_pc(), limit_reg);
    if (limit.is_bottom()) continue; // branch unreachable
    if (add_one_to_limit) {
      // Guard against wrap at the domain boundary.
      if ((stay == Pred::ge_s || stay == Pred::lt_s) && limit.smax() == INT32_MAX) continue;
      if ((stay == Pred::ge_u || stay == Pred::lt_u) &&
          limit.umax() == static_cast<std::int64_t>(UINT32_MAX)) {
        continue;
      }
      limit = limit.add(Interval::constant(1));
    }

    const auto trips = affine_trip_count(init, stride, stay, limit);
    if (!trips) continue;
    if (!best || *trips < *best) {
      best = trips;
      why.str("");
      why << "counter " << counter_desc << " += " << stride << ", stays while "
          << counter_desc << ' ' << to_string(stay) << ' ' << limit.to_string()
          << ", init " << init.to_string() << " -> bound " << *trips;
    }
  }

  if (best) {
    detail = why.str();
  } else if (!found_exit_branch) {
    detail = "no conditional exit branch found (endless or data-driven loop)";
  } else {
    detail = "exit condition is not an affine integer counter "
             "(input-data dependent loop): annotation required";
  }
  return best;
}

std::vector<LoopBoundResult> LoopBoundAnalysis::run() const {
  std::vector<LoopBoundResult> results;
  results.reserve(loops_.loops().size());
  for (const cfg::Loop& loop : loops_.loops()) {
    LoopBoundResult result;
    result.loop_id = loop.id;
    result.irreducible = loop.irreducible;
    result.bound = analyze_loop(loop, result.detail);
    results.push_back(std::move(result));
  }
  return results;
}

} // namespace wcet::analysis
