// Shared memoized transfer results of the value analysis.
//
// Contract: `ValueAnalysis::run(pool, &cache)` populates the per-node
// *out*-states as part of its final access-recording sweep — the sweep
// computes them anyway, so memoizing is free. Downstream passes then
// read transfers instead of re-walking blocks:
//
//   - loop-bound analysis queries `edge_state` / `mem_word_along_edge`
//     for counter initial values (previously one full node transfer per
//     loop-entry edge per probed counter),
//   - cache analysis' classification and persistence passes consume the
//     per-access candidate cache-line tables (previously re-enumerated
//     from the address interval once per fixpoint visit and once per
//     enclosing loop),
//   - the cache fixpoint replays per-node *transfer recipes*
//     (`build_cache_recipes` / `cache_recipe`): the resolved
//     instruction-fetch line sequence plus the per-data-access
//     region/candidate-line verdicts, decoded once per decode round
//     instead of once per fixpoint visit of every node.
//
// ## Thread-safety and determinism invariants
//
// All dense node-indexed slots (`set_out_state`, `build_data_lines`,
// `build_cache_recipes`) are built exactly once and may be filled from
// a ThreadPool::parallel_for over disjoint node indices; after the
// build they are immutable and safe for concurrent reads from any
// number of workers. Slot contents are a pure function of the attached
// ValueAnalysis results and the cache geometry — never of thread
// timing — so every consumer sees bit-identical tables for any worker
// count. The lazy `edge_state` memo is the one exception: it is NOT
// thread-safe and must be used from one thread (loop-bound analysis is
// sequential).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/value_analysis.hpp"
#include "cfg/supergraph.hpp"
#include "mem/cache.hpp"
#include "mem/memmap.hpp"
#include "support/interval.hpp"

namespace wcet {
class ThreadPool;
}

namespace wcet::analysis {

class TransferCache {
public:
  explicit TransferCache(const cfg::Supergraph& sg);

  // Binds the producing analysis (required before any edge query).
  // Re-attaching a *different* analysis invalidates every memo derived
  // from the old one (edge states, candidate-line tables, recipes) —
  // serving them against new value results would be silently unsound.
  void attach(const ValueAnalysis& values);
  const ValueAnalysis* values() const { return values_; }

  // ---- value-analysis node transfers --------------------------------
  // Producer side: value analysis stores the state after `node`'s full
  // block transfer. Safe per disjoint node index.
  void set_out_state(int node, AbsState state) {
    out_[static_cast<std::size_t>(node)] = std::move(state);
  }
  // State after the node's block; bottom for unreachable nodes.
  const AbsState& out_state(int node) const { return out_[static_cast<std::size_t>(node)]; }

  // Refined out-state along `edge` (bottom when the edge is
  // infeasible). Lazily memoized; single-threaded consumers only.
  const AbsState& edge_state(int edge) const;

  // Value of the tracked/implicit word at `addr` after traversing
  // `edge` — the memoized equivalent of
  // ValueAnalysis::mem_word_along_edge.
  Interval mem_word_along_edge(int edge, std::uint32_t addr) const;

  // ---- candidate cache-line tables ----------------------------------
  // Candidate lines of an access; empty means "unknown line". (Shared
  // helper so cache analysis and the table builder agree bit-for-bit.)
  static std::vector<std::uint32_t> candidate_lines(const Interval& addr, int size,
                                                    const mem::CacheConfig& config);

  // Builds lines for every data access of every node under the data
  // cache geometry (parallel over nodes when a pool is given).
  // Idempotent for one config; rebuilding under a *different* geometry
  // is a contract violation and is checked.
  void build_data_lines(const mem::CacheConfig& config, ThreadPool* pool);
  // Candidate lines per data access of `node`, index-aligned with
  // ValueAnalysis::accesses(node).
  const std::vector<std::vector<std::uint32_t>>& data_lines(int node) const {
    return lines_[static_cast<std::size_t>(node)];
  }

  // ---- cache transfer recipes ---------------------------------------
  // A recipe is the decode-invariant part of one node's cache transfer:
  // which abstract i-cache lines its instruction fetches touch (in
  // order, same-line repeats collapsed) and what each data access does
  // to the abstract d-cache. The cache fixpoint replays recipes against
  // the abstract must/may states instead of re-deriving memory regions,
  // line numbers and cacheability per visit.
  struct CacheRecipe {
    // Per instruction, aligned with the block's instruction list.
    enum class FetchKind : std::uint8_t {
      uncached,  // uncacheable region or i-cache disabled: no state change
      same_line, // same line as the previous fetch: guaranteed hit
      line,      // classify + access `line`
    };
    struct Fetch {
      FetchKind kind = FetchKind::uncached;
      std::uint32_t line = 0; // line_of(pc), stored for every kind
    };
    enum class DataKind : std::uint8_t {
      bypass,  // store / unreachable / uncacheable with known lines:
               // recorded as uncached, no state change
      disturb, // uncacheable range with unknown lines: recorded as
               // uncached but may touch any set (access_unknown)
      cached,  // classify + access the candidate-line table entry
    };
    struct Data {
      DataKind kind = DataKind::bypass;
      bool is_store = false;
      std::uint32_t pc = 0;
      // Index into ValueAnalysis::accesses(node) / data_lines(node).
      std::uint32_t access_index = 0;
    };
    std::vector<Fetch> fetch;
    std::vector<Data> data;
    // Fixpoint replay list: the `line` fields of the FetchKind::line
    // entries, in order (the only fetches that mutate the i-cache).
    std::vector<std::uint32_t> fetch_apply;

    // ---- per-set access programs (the overlay replay) ----------------
    // The node's whole transfer restricted to one cache set, in program
    // order. Distinct sets evolve independently under the must/may
    // transfer, so the fixpoint can apply each touched set's program to
    // a scratch image and join per set — sets not listed are invariant
    // and keep their shared COW leaves (see
    // CacheAnalysis::fixpoint_instance_rounds). Derived mechanically
    // from fetch_apply / data at recipe-build time; both orderings
    // replay the identical access_set sequence per set.
    struct FetchGroup {
      unsigned set = 0;
      std::vector<std::uint32_t> lines; // FetchKind::line fetches of `set`
    };
    std::vector<FetchGroup> fetch_groups; // ascending set index

    struct DataSetOp {
      // age_all: an unknown-line access (DataKind::disturb, or a cached
      // access with an empty candidate table) — the must side ages the
      // whole set, the may side is invariant. Otherwise the restriction
      // of access_one_of to this set: `lines` holds the candidates
      // mapping here, `outside` whether some candidate maps elsewhere
      // (the untouched-alternative join).
      bool age_all = false;
      bool outside = false;
      std::vector<std::uint32_t> lines;
    };
    struct DataGroup {
      unsigned set = 0;
      bool any_one_of = false;    // false: ops are pure must-side aging
      std::vector<DataSetOp> ops; // program order
    };
    std::vector<DataGroup> data_groups; // ascending set index
  };

  // Builds the recipe of every node for the given memory map and cache
  // geometries (parallel over nodes when a pool is given; implies
  // build_data_lines for `dcache`). Built once per decode round;
  // rebuilding under different geometry is a contract violation and is
  // checked.
  //
  // Incremental reuse (src/serve): when `reuse_from`/`node_clean` are
  // given, nodes flagged clean copy their recipe and candidate-line
  // rows from the previous round's cache instead of re-deriving them.
  // A recipe is a pure function of the node's code bytes, its value
  // states, the memory map, and the cache geometries — the caller
  // guarantees all four are unchanged for flagged nodes (verified
  // fingerprints + state equality + identical map/geometry), so the
  // copy is exact, not approximate.
  void build_cache_recipes(const mem::MemoryMap& memmap, const mem::CacheConfig& icache,
                           const mem::CacheConfig& dcache, ThreadPool* pool,
                           const TransferCache* reuse_from = nullptr,
                           const std::vector<char>* node_clean = nullptr);
  bool cache_recipes_ready() const { return recipes_ready_; }
  const CacheRecipe& cache_recipe(int node) const {
    return recipes_[static_cast<std::size_t>(node)];
  }

private:
  const cfg::Supergraph& sg_;
  const ValueAnalysis* values_ = nullptr;
  std::vector<AbsState> out_;
  mutable std::vector<std::unique_ptr<AbsState>> edge_out_;
  std::vector<std::vector<std::vector<std::uint32_t>>> lines_;
  bool lines_ready_ = false;
  mem::CacheConfig lines_config_;
  std::vector<CacheRecipe> recipes_;
  bool recipes_ready_ = false;
  mem::CacheConfig recipes_iconfig_;
  const mem::MemoryMap* recipes_memmap_ = nullptr; // identity of the map baked in
};

} // namespace wcet::analysis
