// Shared memoized transfer results of the value analysis.
//
// Contract: `ValueAnalysis::run(pool, &cache)` populates the per-node
// *out*-states as part of its final access-recording sweep — the sweep
// computes them anyway, so memoizing is free. Downstream passes then
// read transfers instead of re-walking blocks:
//
//   - loop-bound analysis queries `edge_state` / `mem_word_along_edge`
//     for counter initial values (previously one full node transfer per
//     loop-entry edge per probed counter),
//   - cache analysis' classification and persistence passes consume the
//     per-access candidate cache-line tables (previously re-enumerated
//     from the address interval once per fixpoint visit and once per
//     enclosing loop).
//
// Thread story: `set_out_state` / `build_data_lines` fill dense
// node-indexed slots and are safe from a ThreadPool::parallel_for over
// disjoint node indices. The lazy `edge_state` memo is NOT thread-safe
// and must be used from one thread (loop-bound analysis is
// sequential).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/value_analysis.hpp"
#include "cfg/supergraph.hpp"
#include "mem/cache.hpp"
#include "support/interval.hpp"

namespace wcet {
class ThreadPool;
}

namespace wcet::analysis {

class TransferCache {
public:
  explicit TransferCache(const cfg::Supergraph& sg);

  // Binds the producing analysis (required before any edge query).
  void attach(const ValueAnalysis& values) { values_ = &values; }
  const ValueAnalysis* values() const { return values_; }

  // ---- value-analysis node transfers --------------------------------
  // Producer side: value analysis stores the state after `node`'s full
  // block transfer. Safe per disjoint node index.
  void set_out_state(int node, AbsState state) {
    out_[static_cast<std::size_t>(node)] = std::move(state);
  }
  // State after the node's block; bottom for unreachable nodes.
  const AbsState& out_state(int node) const { return out_[static_cast<std::size_t>(node)]; }

  // Refined out-state along `edge` (bottom when the edge is
  // infeasible). Lazily memoized; single-threaded consumers only.
  const AbsState& edge_state(int edge) const;

  // Value of the tracked/implicit word at `addr` after traversing
  // `edge` — the memoized equivalent of
  // ValueAnalysis::mem_word_along_edge.
  Interval mem_word_along_edge(int edge, std::uint32_t addr) const;

  // ---- candidate cache-line tables ----------------------------------
  // Candidate lines of an access; empty means "unknown line". (Shared
  // helper so cache analysis and the table builder agree bit-for-bit.)
  static std::vector<std::uint32_t> candidate_lines(const Interval& addr, int size,
                                                    const mem::CacheConfig& config);

  // Builds lines for every data access of every node under the data
  // cache geometry (parallel over nodes when a pool is given).
  // Idempotent for one config; rebuilding under a *different* geometry
  // is a contract violation and is checked.
  void build_data_lines(const mem::CacheConfig& config, ThreadPool* pool);
  // Candidate lines per data access of `node`, index-aligned with
  // ValueAnalysis::accesses(node).
  const std::vector<std::vector<std::uint32_t>>& data_lines(int node) const {
    return lines_[static_cast<std::size_t>(node)];
  }

private:
  const cfg::Supergraph& sg_;
  const ValueAnalysis* values_ = nullptr;
  std::vector<AbsState> out_;
  mutable std::vector<std::unique_ptr<AbsState>> edge_out_;
  std::vector<std::vector<std::vector<std::uint32_t>>> lines_;
  bool lines_ready_ = false;
  mem::CacheConfig lines_config_;
};

} // namespace wcet::analysis
