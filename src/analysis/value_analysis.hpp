// Value analysis (Figure 1, "Loop/Value Analysis"): interval abstract
// interpretation of registers and memory over the supergraph.
//
// Memory model: words stored through statically known addresses are
// tracked exactly (globals, stack slots — the stack pointer is constant
// from _start, so frames resolve). A store through an imprecise address
// joins its value into every tracked word it may alias and poisons the
// "written hull"; reads of untracked addresses fall back to the image's
// initial contents only while provably un-written. This reproduces the
// paper's Section 4.3 observation: one unknown write "destroys all known
// information about memory" — unless a per-function access fact confines
// it, which is exactly what the `accesses` annotation does.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "annot/annotations.hpp"
#include "cfg/domloop.hpp"
#include "cfg/supergraph.hpp"
#include "mem/memmap.hpp"
#include "support/cow.hpp"
#include "support/flat_map.hpp"
#include "support/interval.hpp"

namespace wcet {
class ThreadPool;
class AnalysisGovernor;
}

namespace wcet::analysis {

class TransferCache;

// Abstract machine state: register file + tracked memory words. The
// tracked-word table is a sorted flat vector (support/flat_map.hpp):
// joins and widenings run as linear merge-joins and iteration order is
// deterministic by address. The table sits behind a COW pointer
// (support/cow.hpp): copying a state — per-edge refinement, call/ret
// merge buffers, transfer-cache out-state snapshots — shares the table,
// and only a real mutation (`mem.mut()`) detaches it. Reads go through
// `mem->` / `*mem`; a null pointer canonically reads as the empty table.
struct AbsState {
  using MemTable = FlatMap<std::uint32_t, Interval>;
  bool bottom = true; // default: unreachable
  Interval regs[isa::num_registers];
  CowPtr<MemTable> mem; // word-aligned tracked addresses
  // Address regions possibly stored to since task entry, kept as a small
  // list of disjoint intervals (a single hull would let one confined
  // store poison unrelated globals across the address space).
  std::vector<Interval> written;
  static constexpr std::size_t max_written_regions = 6;
  void add_written(const Interval& range);
  bool possibly_written(const Interval& range) const;

  static AbsState entry_state();
  bool join_with(const AbsState& other, const isa::Image& image,
                 const mem::MemoryMap& memmap); // returns true if changed
  void widen_from(const AbsState& older);
  bool operator==(const AbsState& other) const;
  // Fingerprint over the full state (FNV-1a), for cross-run determinism
  // checks and debugging summaries. Never used to gate joins: a hash
  // match cannot prove state equality (see support/fixpoint.hpp).
  std::uint64_t summary_hash() const;
};

struct AccessInfo {
  std::uint32_t pc = 0;
  bool is_store = false;
  int size = 0;
  Interval addr = Interval::bottom(); // bottom: instruction unreachable
};

class ValueAnalysis {
public:
  struct Options {
    Options() {}
    // Confinement of imprecise accesses per function entry (annotation).
    std::map<std::uint32_t, std::vector<annot::AccessRange>> access_facts;
    std::size_t max_tracked_words = 8192;
    unsigned widen_delay = 3;
    std::size_t max_node_visits = 64; // per node before forced widening stop
    // Width cap on per-address enumeration of imprecise memory accesses:
    // an access whose address interval spans more than this many words
    // widens to the region hull (TOP) instead of being enumerated.
    std::size_t max_enum_words = 64;
  };

  // `schedule_priorities` is the per-node fixpoint scheduling priority
  // (cfg::rpo_priorities); pass it to share one computation across all
  // phases, or leave empty to have the analysis derive it itself.
  ValueAnalysis(const cfg::Supergraph& sg, const cfg::LoopForest& loops,
                const mem::MemoryMap& memmap, const Options& options = {},
                std::vector<int> schedule_priorities = {});

  // Runs the fixpoint with the per-instance round engine: each round,
  // every dirty function instance converges its *local* priority
  // worklist (cross-instance call/ret joins are buffered), then the
  // buffered joins are applied in a fixed sequential order. Instances
  // dirty in the same round are independent, so a ThreadPool may fan
  // them out — the round/merge order is fixed, which makes the result
  // bit-identical for ANY worker count (including pool == nullptr).
  // When `transfers` is given, the final access-recording sweep also
  // publishes per-node out-states into it.
  //
  // `governor` (optional) makes the fixpoint budget-aware: node visits
  // are charged at each round barrier, and once the visit/state-byte
  // budget (or the wall-clock deadline) is exhausted the analysis flips
  // into forced-coarsening mode — every subsequent changing join jumps
  // its target to the coarse near-top state, so the fixpoint still
  // converges (each node coarsens at most once) and the result remains
  // an over-approximation of the collecting semantics, just a looser
  // one. The engine is never stopped mid-fixpoint: un-iterated states
  // would undercut the least fixpoint, which is unsound. Cancellation
  // is checked at every worklist pop and aborts with CancelledError.
  void run(ThreadPool* pool, TransferCache* transfers,
           const AnalysisGovernor* governor = nullptr);
  void run() { run(nullptr, nullptr); }

  // True when a budget/deadline trip forced coarse convergence.
  bool degraded() const { return degraded_; }

  // State at node entry (join over incoming edges). Bottom: unreachable.
  const AbsState& state_in(int node) const { return in_[static_cast<std::size_t>(node)]; }
  // Edge infeasibility discovered by branch refinement.
  bool edge_feasible(int edge) const {
    return edge_feasible_[static_cast<std::size_t>(edge)] != 0;
  }
  bool node_reachable(int node) const { return !in_[static_cast<std::size_t>(node)].bottom; }

  // Address intervals of every memory access in a node, in instruction
  // order (empty interval entries for non-memory instructions are
  // omitted; `pc` identifies the instruction).
  const std::vector<AccessInfo>& accesses(int node) const {
    return accesses_[static_cast<std::size_t>(node)];
  }

  // Register interval immediately before the instruction at `pc` within
  // `node` (recomputed by walking the block from state_in).
  Interval reg_before(int node, std::uint32_t pc, std::uint8_t reg) const;

  // Indirect-branch feedback for the decode loop: jalr sites whose
  // target interval collapsed to a single constant.
  std::map<std::uint32_t, std::vector<std::uint32_t>> resolved_indirect_targets() const;

  // Transfer a state through a full node (exposed for loop-bound
  // analysis and tests).
  AbsState transfer_node(int node, AbsState state) const;
  // Apply branch refinement along an edge to the source's out state.
  AbsState refine_along_edge(int edge, AbsState state) const;
  // Value of the word at `addr` after traversing `edge` (loop-bound
  // analysis uses this for memory-homed counters).
  Interval mem_word_along_edge(int edge, std::uint32_t addr) const;
  // Value of an untracked word under `state` (image contents while
  // provably unwritten; exposed for TransferCache::mem_word_along_edge).
  Interval implicit_mem_word(const AbsState& state, std::uint32_t addr) const {
    return implicit_word(state, addr);
  }

private:
  AbsState transfer_inst(const isa::Inst& inst, std::uint32_t pc, AbsState state,
                         std::uint32_t fn_entry, std::vector<AccessInfo>* accesses) const;
  Interval read_mem(const AbsState& state, const Interval& addr, int size,
                    bool sign_extend) const;
  void write_mem(AbsState& state, const Interval& addr, int size, Interval value,
                 std::uint32_t fn_entry) const;
  Interval implicit_word(const AbsState& state, std::uint32_t addr) const;
  Interval confine(const Interval& addr, std::uint32_t fn_entry) const;
  // Logical size of all tracked per-node states, for the state-byte
  // budget. Counts table entries per state (COW sharing ignored), so
  // the figure is a pure function of the abstract states — identical
  // for any worker count.
  std::uint64_t tracked_state_bytes() const;

  const cfg::Supergraph& sg_;
  const cfg::LoopForest& loops_;
  const mem::MemoryMap& memmap_;
  Options options_;
  std::vector<int> schedule_priorities_;
  std::vector<AbsState> in_;
  // unsigned char, not vector<bool>: parallel instance rounds set
  // feasibility of disjoint intra-instance edges concurrently, and
  // vector<bool> packs bits into shared words.
  std::vector<unsigned char> edge_feasible_;
  std::vector<std::vector<AccessInfo>> accesses_;
  std::vector<bool> is_widen_point_;
  bool degraded_ = false;
};

} // namespace wcet::analysis
