#include "analysis/value_analysis.hpp"

#include <algorithm>
#include <map>

#include "analysis/transfer_cache.hpp"
#include "support/budget.hpp"
#include "support/diag.hpp"
#include "support/fault_inject.hpp"
#include "support/fixpoint.hpp"
#include "support/instance_rounds.hpp"
#include "support/thread_pool.hpp"

namespace wcet::analysis {

using isa::Inst;
using isa::Opcode;

namespace {

// Mix an interval as two words (bottom tag + packed bounds): an
// in-band sentinel for bottom could collide with a real interval and
// make two distinct states hash identically.
void mix_interval(StateHash& h, const Interval& iv) {
  if (iv.is_bottom()) {
    h.mix_pair(0, 0);
    return;
  }
  h.mix_pair(1, (static_cast<std::uint64_t>(iv.umin()) << 32) |
                    static_cast<std::uint64_t>(iv.umax()));
}

Interval sized_top(int size, bool sign_extend) {
  switch (size) {
  case 1:
    return sign_extend ? Interval::from_signed(-128, 127) : Interval::from_unsigned(0, 255);
  case 2:
    return sign_extend ? Interval::from_signed(-32768, 32767)
                       : Interval::from_unsigned(0, 65535);
  default:
    return Interval::top();
  }
}

} // namespace

AbsState AbsState::entry_state() {
  AbsState s;
  s.bottom = false;
  for (auto& r : s.regs) r = Interval::top();
  s.regs[isa::reg_zero] = Interval::constant(0);
  return s;
}

void AbsState::add_written(const Interval& range) {
  if (range.is_bottom()) return;
  for (Interval& region : written) {
    // Merge when overlapping or nearly adjacent (64-byte slack keeps the
    // list short for consecutive stack slots).
    const Interval slack = Interval::from_unsigned(
        std::max<std::int64_t>(0, range.umin() - 64), std::min<std::int64_t>(
            Interval::word_max, range.umax() + 64));
    if (!region.meet(slack).is_bottom()) {
      region = region.join(range);
      return;
    }
  }
  written.push_back(range);
  if (written.size() > max_written_regions) {
    // Collapse everything into one hull (sound, coarse).
    Interval hull = Interval::bottom();
    for (const Interval& region : written) hull = hull.join(region);
    written.clear();
    written.push_back(hull);
  }
}

bool AbsState::possibly_written(const Interval& range) const {
  for (const Interval& region : written) {
    if (!region.meet(range).is_bottom()) return true;
  }
  return false;
}

bool AbsState::operator==(const AbsState& other) const {
  if (bottom || other.bottom) return bottom == other.bottom;
  for (int r = 0; r < isa::num_registers; ++r) {
    if (regs[r] != other.regs[r]) return false;
  }
  return mem == other.mem && written == other.written;
}

bool AbsState::join_with(const AbsState& other, const isa::Image& image,
                         const mem::MemoryMap& memmap) {
  (void)image;
  (void)memmap;
  if (other.bottom) return false;
  if (bottom) {
    *this = other;
    return true;
  }
  bool changed = false;
  for (int r = 0; r < isa::num_registers; ++r) {
    const Interval joined = regs[r].join(other.regs[r]);
    if (joined != regs[r]) {
      regs[r] = joined;
      changed = true;
    }
  }
  for (const Interval& region : other.written) {
    std::vector<Interval> before = written;
    add_written(region);
    if (written != before) changed = true;
  }
  // Tracked words: a key absent on one side means "possibly any value
  // consistent with the written hull" there; since every tracked key is
  // inside the hull by construction, the sound join for a one-sided key
  // is TOP — represented by dropping the key. Both sides are sorted, so
  // this is a single merge-join pass. A pointer-identical table needs
  // no pass at all (join(x, x) = x), and a dry run precedes the mutating
  // merge so an unchanged table is never detached from its sharers.
  if (mem.same_as(other.mem)) return changed;
  bool mem_changes = false;
  {
    auto ot = other.mem->begin();
    for (const auto& [key, value] : *mem) {
      while (ot != other.mem->end() && ot->first < key) ++ot;
      if (ot == other.mem->end() || ot->first != key) {
        mem_changes = true; // one-sided -> TOP (dropped)
        break;
      }
      const Interval joined = value.join(ot->second);
      if (joined != value || joined.is_top()) {
        mem_changes = true;
        break;
      }
    }
  }
  if (!mem_changes) return changed;
  auto ot = other.mem->begin();
  mem.mut().retain([&](std::uint32_t key, Interval& value) {
    while (ot != other.mem->end() && ot->first < key) ++ot;
    if (ot == other.mem->end() || ot->first != key) return false; // one-sided -> TOP
    const Interval joined = value.join(ot->second);
    if (joined != value) value = joined;
    return !value.is_top();
  });
  return true;
}

void AbsState::widen_from(const AbsState& older) {
  if (bottom || older.bottom) return;
  for (int r = 0; r < isa::num_registers; ++r) {
    regs[r] = older.regs[r].widen(regs[r]);
  }
  // Written regions only grow through add_written; the region-count cap
  // bounds the chain, so no dedicated widening is needed here.
  // A table shared with `older` widens to itself (widen(x, x) = x):
  // skip without detaching. Otherwise dry-run first — an unchanged
  // table must not be detached from its sharers (same discipline as
  // join_with).
  if (mem.same_as(older.mem)) return;
  bool mem_changes = false;
  {
    auto probe = older.mem->begin();
    for (const auto& [key, value] : *mem) {
      while (probe != older.mem->end() && probe->first < key) ++probe;
      Interval widened = value;
      if (probe != older.mem->end() && probe->first == key) {
        widened = probe->second.widen(value);
      }
      if (widened != value || widened.is_top()) {
        mem_changes = true;
        break;
      }
    }
  }
  if (!mem_changes) return;
  auto old_it = older.mem->begin();
  mem.mut().retain([&](std::uint32_t key, Interval& value) {
    while (old_it != older.mem->end() && old_it->first < key) ++old_it;
    if (old_it != older.mem->end() && old_it->first == key) {
      value = old_it->second.widen(value);
    }
    return !value.is_top();
  });
}

std::uint64_t AbsState::summary_hash() const {
  StateHash h;
  if (bottom) return h.value();
  h.mix(1);
  for (int r = 0; r < isa::num_registers; ++r) mix_interval(h, regs[r]);
  h.mix(mem->size());
  for (const auto& [addr, value] : *mem) {
    h.mix(addr);
    mix_interval(h, value);
  }
  for (const Interval& region : written) mix_interval(h, region);
  return h.value();
}

ValueAnalysis::ValueAnalysis(const cfg::Supergraph& sg, const cfg::LoopForest& loops,
                             const mem::MemoryMap& memmap, const Options& options,
                             std::vector<int> schedule_priorities)
    : sg_(sg), loops_(loops), memmap_(memmap), options_(options),
      schedule_priorities_(std::move(schedule_priorities)) {
  if (schedule_priorities_.empty()) schedule_priorities_ = cfg::rpo_priorities(sg);
  in_.resize(sg.nodes().size());
  edge_feasible_.assign(sg.edges().size(), false);
  accesses_.resize(sg.nodes().size());
  is_widen_point_.assign(sg.nodes().size(), false);
  for (const cfg::Loop& loop : loops.loops()) {
    for (const int entry : loop.entries) {
      is_widen_point_[static_cast<std::size_t>(entry)] = true;
    }
  }
}

Interval ValueAnalysis::confine(const Interval& addr, std::uint32_t fn_entry) const {
  if (addr.is_bottom() || addr.is_constant()) return addr;
  const auto it = options_.access_facts.find(fn_entry);
  if (it == options_.access_facts.end()) return addr;
  Interval hull = Interval::bottom();
  for (const annot::AccessRange& range : it->second) {
    hull = hull.join(Interval::from_unsigned(
        range.base, static_cast<std::int64_t>(range.base) + range.size - 1));
  }
  if (hull.is_bottom()) return addr;
  const Interval met = addr.meet(hull);
  return met.is_bottom() ? hull : met;
}

Interval ValueAnalysis::implicit_word(const AbsState& state, std::uint32_t addr) const {
  const mem::Region& region = memmap_.region_for(addr);
  if (region.io) return Interval::top();
  const isa::Section* section = sg_.program().image().section_at(addr);
  const bool immutable = section != nullptr && !section->writable;
  if (!immutable) {
    // A store may have clobbered it.
    const Interval cell = Interval::from_unsigned(addr, static_cast<std::int64_t>(addr) + 3);
    if (state.possibly_written(cell)) return Interval::top();
  }
  // Initial contents: image bytes where mapped, zero elsewhere (the
  // simulator's fresh-memory default).
  std::uint32_t value = 0;
  for (int i = 3; i >= 0; --i) {
    const auto byte = sg_.program().image().read_byte(addr + static_cast<std::uint32_t>(i));
    value = (value << 8) | (byte ? *byte : 0);
  }
  return Interval::constant(value);
}

Interval ValueAnalysis::read_mem(const AbsState& state, const Interval& addr, int size,
                                 bool sign_extend) const {
  if (addr.is_bottom()) return Interval::bottom();
  // io regions: volatile, unknown value.
  {
    bool touches_io = false;
    for (const auto& region : memmap_.regions()) {
      if (!region.io) continue;
      const Interval span = Interval::from_unsigned(
          region.base, static_cast<std::int64_t>(region.base) + region.size - 1);
      if (!addr.meet(span).is_bottom()) touches_io = true;
    }
    if (touches_io) return sized_top(size, sign_extend);
  }

  const auto read_word_at = [&](std::uint32_t a) -> Interval {
    const auto it = state.mem->find(a);
    return it != state.mem->end() ? it->second : implicit_word(state, a);
  };

  if (size == 4) {
    // Width cap on the enumeration: only walk word-aligned candidate
    // addresses, and only when the interval spans at most
    // `max_enum_words` words. Anything wider (e.g. a near-TOP address)
    // widens straight to the region hull — enumerating it would make
    // analysis time explode for zero precision (every word joins to TOP
    // anyway).
    if (addr.size() <= options_.max_enum_words * 4) {
      Interval result = Interval::bottom();
      const std::int64_t first = (addr.umin() + 3) & ~std::int64_t{3};
      for (std::int64_t a = first; a <= addr.umax(); a += 4) {
        result = result.join(read_word_at(static_cast<std::uint32_t>(a)));
        if (result.is_top()) break;
      }
      return result.is_bottom() ? Interval::top() : result;
    }
    return Interval::top();
  }

  // Sub-word loads: exact only for a constant address within a constant
  // containing word.
  if (const auto ca = addr.as_constant()) {
    const std::uint32_t word_addr = *ca & ~3u;
    const Interval word = read_word_at(word_addr);
    if (const auto wc = word.as_constant()) {
      const unsigned shift = (*ca & 3u) * 8;
      std::uint32_t raw = (*wc >> shift);
      if (size == 1) {
        raw &= 0xFF;
        if (sign_extend) return Interval::constant(static_cast<std::uint32_t>(
            static_cast<std::int32_t>(static_cast<std::int8_t>(raw))));
        return Interval::constant(raw);
      }
      raw &= 0xFFFF;
      if (sign_extend) return Interval::constant(static_cast<std::uint32_t>(
          static_cast<std::int32_t>(static_cast<std::int16_t>(raw))));
      return Interval::constant(raw);
    }
  }
  return sized_top(size, sign_extend);
}

void ValueAnalysis::write_mem(AbsState& state, const Interval& addr, int size,
                              Interval value, std::uint32_t fn_entry) const {
  if (addr.is_bottom()) return;
  const Interval confined = confine(addr, fn_entry);
  const Interval touched = Interval::from_unsigned(
      confined.umin(), std::min<std::int64_t>(confined.umax() + size - 1, Interval::word_max));
  state.add_written(touched);

  if (const auto ca = confined.as_constant()) {
    const std::uint32_t a = *ca;
    if (size == 4 && (a & 3u) == 0) {
      if (value.is_top()) {
        if (state.mem->contains(a)) state.mem.mut().erase(a);
      } else {
        state.mem.mut()[a] = value; // strong update
      }
    } else {
      // Sub-word store: compose exactly when everything is constant.
      const std::uint32_t word_addr = a & ~3u;
      const auto it = state.mem->find(word_addr);
      const Interval word = it != state.mem->end() ? it->second : implicit_word(state, word_addr);
      const auto wc = word.as_constant();
      const auto vc = value.as_constant();
      if (wc && vc && (size != 2 || (a & 1u) == 0)) {
        const unsigned shift = (a & 3u) * 8;
        const std::uint32_t mask = (size == 1 ? 0xFFu : 0xFFFFu) << shift;
        const std::uint32_t composed = (*wc & ~mask) | ((*vc << shift) & mask);
        state.mem.mut()[word_addr] = Interval::constant(composed);
      } else if (state.mem->contains(word_addr)) {
        state.mem.mut().erase(word_addr);
      }
    }
  } else if (confined.size() <= options_.max_enum_words * 4) {
    // Weak update on every word the store may touch (width-capped, see
    // read_mem; wider stores take the hull path below). Detach the COW
    // table only when some tracked word is actually hit.
    const std::uint32_t first = static_cast<std::uint32_t>(confined.umin()) & ~3u;
    for (std::int64_t a = first; a <= confined.umax() + size - 1; a += 4) {
      const auto word_addr = static_cast<std::uint32_t>(a);
      if (!state.mem->contains(word_addr)) continue; // untracked: hull already poisons it
      auto& table = state.mem.mut();
      const auto it = table.find(word_addr);
      if (size == 4 && !value.is_top()) {
        it->second = it->second.join(value);
        if (it->second.is_top()) table.erase(it);
      } else {
        table.erase(it);
      }
    }
  } else {
    // Wide store: every tracked word inside the range is lost. One
    // linear compaction pass instead of per-key erasure (dry-scanned so
    // a miss never detaches the shared table).
    const auto doomed = [&](std::uint32_t key) {
      return static_cast<std::int64_t>(key) + 3 >= confined.umin() &&
             static_cast<std::int64_t>(key) <= confined.umax() + size - 1;
    };
    bool any_doomed = false;
    for (const auto& [key, tracked] : *state.mem) {
      (void)tracked;
      if (doomed(key)) {
        any_doomed = true;
        break;
      }
    }
    if (any_doomed) {
      state.mem.mut().retain(
          [&](std::uint32_t key, Interval&) { return !doomed(key); });
    }
  }
  if (state.mem->size() > options_.max_tracked_words) {
    state.mem.reset(); // sound: hull covers every tracked key
  }
}

AbsState ValueAnalysis::transfer_inst(const Inst& inst, std::uint32_t pc, AbsState state,
                                      std::uint32_t fn_entry,
                                      std::vector<AccessInfo>* accesses) const {
  if (state.bottom) return state;
  const Interval rs1 = state.regs[inst.rs1];
  const Interval rs2 = state.regs[inst.rs2];
  const auto set_rd = [&](const Interval& value) {
    if (inst.rd != isa::reg_zero) state.regs[inst.rd] = value;
  };
  const auto imm_u = [&] {
    return Interval::constant(static_cast<std::uint32_t>(inst.imm));
  };

  switch (inst.op) {
  case Opcode::add: set_rd(rs1.add(rs2)); break;
  case Opcode::sub: set_rd(rs1.sub(rs2)); break;
  case Opcode::and_: set_rd(rs1.bit_and(rs2)); break;
  case Opcode::or_: set_rd(rs1.bit_or(rs2)); break;
  case Opcode::xor_: set_rd(rs1.bit_xor(rs2)); break;
  case Opcode::sll: set_rd(rs1.shl(rs2)); break;
  case Opcode::srl: set_rd(rs1.shr_u(rs2)); break;
  case Opcode::sra: set_rd(rs1.shr_s(rs2)); break;
  case Opcode::slt: set_rd(rs1.compare(Pred::lt_s, rs2)); break;
  case Opcode::sltu: set_rd(rs1.compare(Pred::lt_u, rs2)); break;
  case Opcode::mul: set_rd(rs1.mul(rs2)); break;
  case Opcode::mulhu: set_rd(rs1.mulh_u(rs2)); break;
  case Opcode::divu: set_rd(rs1.div_u(rs2)); break;
  case Opcode::remu: set_rd(rs1.rem_u(rs2)); break;
  case Opcode::div_: set_rd(rs1.div_s(rs2)); break;
  case Opcode::rem_: set_rd(rs1.rem_s(rs2)); break;
  case Opcode::cmovz:
    if (rs2.is_constant() && *rs2.as_constant() == 0) set_rd(rs1);
    else if (!rs2.contains(0)) { /* rd unchanged */ }
    else set_rd(state.regs[inst.rd].join(rs1));
    break;
  case Opcode::cmovnz:
    if (!rs2.contains(0)) set_rd(rs1);
    else if (rs2.is_constant()) { /* rs2 == 0: rd unchanged */ }
    else set_rd(state.regs[inst.rd].join(rs1));
    break;
  case Opcode::addi: set_rd(rs1.add(imm_u())); break;
  case Opcode::andi: set_rd(rs1.bit_and(imm_u())); break;
  case Opcode::ori: set_rd(rs1.bit_or(imm_u())); break;
  case Opcode::xori: set_rd(rs1.bit_xor(imm_u())); break;
  case Opcode::slli: set_rd(rs1.shl(Interval::constant(static_cast<std::uint32_t>(inst.imm & 31)))); break;
  case Opcode::srli: set_rd(rs1.shr_u(Interval::constant(static_cast<std::uint32_t>(inst.imm & 31)))); break;
  case Opcode::srai: set_rd(rs1.shr_s(Interval::constant(static_cast<std::uint32_t>(inst.imm & 31)))); break;
  case Opcode::slti: set_rd(rs1.compare(Pred::lt_s, imm_u())); break;
  case Opcode::sltiu: set_rd(rs1.compare(Pred::lt_u, imm_u())); break;
  case Opcode::lui:
    set_rd(Interval::constant(static_cast<std::uint32_t>(inst.imm) << 16));
    break;
  case Opcode::lw:
  case Opcode::lh:
  case Opcode::lhu:
  case Opcode::lb:
  case Opcode::lbu: {
    Interval addr = rs1.add(imm_u());
    addr = confine(addr, fn_entry);
    if (accesses != nullptr) {
      accesses->push_back({pc, false, inst.access_size(), addr});
    }
    const bool sign = inst.op == Opcode::lh || inst.op == Opcode::lb;
    set_rd(read_mem(state, addr, inst.access_size(), sign));
    break;
  }
  case Opcode::sw:
  case Opcode::sh:
  case Opcode::sb: {
    Interval addr = rs1.add(imm_u());
    addr = confine(addr, fn_entry);
    if (accesses != nullptr) {
      accesses->push_back({pc, true, inst.access_size(), addr});
    }
    write_mem(state, addr, inst.access_size(), state.regs[inst.rd], fn_entry);
    break;
  }
  case Opcode::beq:
  case Opcode::bne:
  case Opcode::blt:
  case Opcode::bge:
  case Opcode::bltu:
  case Opcode::bgeu:
    break; // refinement happens on the edges
  case Opcode::jal:
  case Opcode::jalr:
    set_rd(Interval::constant(pc + 4));
    break;
  case Opcode::ecall:
    // Environment call clobbers the caller-saved registers.
    for (const std::uint8_t r : {isa::reg_a0, isa::reg_a1, isa::reg_a2, isa::reg_a3,
                                 isa::reg_t0, isa::reg_t1, isa::reg_t2}) {
      state.regs[r] = Interval::top();
    }
    break;
  case Opcode::halt:
    break;
  }
  return state;
}

AbsState ValueAnalysis::transfer_node(int node, AbsState state) const {
  const cfg::SgNode& n = sg_.node(node);
  std::uint32_t pc = n.block->begin;
  for (const Inst& inst : n.block->insts) {
    state = transfer_inst(inst, pc, std::move(state), n.fn_entry, nullptr);
    pc += 4;
  }
  return state;
}

AbsState ValueAnalysis::refine_along_edge(int edge, AbsState state) const {
  if (state.bottom) return state;
  const cfg::SgEdge& e = sg_.edge(edge);
  const cfg::SgNode& from = sg_.node(e.from);
  const cfg::CfgBlock& block = *from.block;
  if (block.insts.empty()) return state;
  const Inst& term = block.terminator();

  if (term.is_conditional_branch() &&
      (e.kind == cfg::EdgeKind::taken || e.kind == cfg::EdgeKind::fall)) {
    const Pred p = e.kind == cfg::EdgeKind::taken ? term.branch_pred()
                                                  : negate(term.branch_pred());
    const Interval a = state.regs[term.rs1];
    const Interval b = state.regs[term.rs2];
    const Interval a_refined = a.refine(p, b);
    // Mirror refinement for the right-hand side, using the weaker (but
    // sound) non-strict forms where needed.
    Interval b_refined = b;
    switch (p) {
    case Pred::eq: b_refined = b.meet(a); break;
    case Pred::ne:
      if (a.is_constant()) b_refined = b.refine(Pred::ne, a);
      break;
    case Pred::lt_s: b_refined = b.refine(Pred::ge_s, a); break;
    case Pred::ge_s:
      b_refined = b.meet(Interval::from_signed(INT32_MIN, a.smax()).is_bottom()
                             ? b
                             : Interval::from_signed(INT32_MIN, a.smax()));
      break;
    case Pred::lt_u: b_refined = b.refine(Pred::ge_u, a); break;
    case Pred::ge_u:
      b_refined = b.meet(Interval::from_unsigned(0, a.umax()));
      break;
    }
    if (a_refined.is_bottom() || b_refined.is_bottom()) {
      state.bottom = true;
      return state;
    }
    state.regs[term.rs1] = a_refined;
    if (term.rs2 != term.rs1) state.regs[term.rs2] = b_refined;
    // r0 must stay the constant zero (refinement can only have shrunk
    // it to exactly {0} or bottom, handled above).
    state.regs[isa::reg_zero] = Interval::constant(0);
    return state;
  }

  if (block.term == cfg::Term::indirect_jump && e.kind == cfg::EdgeKind::taken) {
    // Landing on a specific target pins the jalr operand.
    const cfg::SgNode& to = sg_.node(e.to);
    const std::uint32_t target = to.block->begin;
    const Interval pinned = Interval::constant(target - static_cast<std::uint32_t>(term.imm));
    const Interval refined = state.regs[term.rs1].meet(pinned);
    if (refined.is_bottom()) {
      state.bottom = true;
      return state;
    }
    state.regs[term.rs1] = refined;
  }
  return state;
}

std::uint64_t ValueAnalysis::tracked_state_bytes() const {
  std::uint64_t bytes = 0;
  const std::uint64_t per_entry = sizeof(std::uint32_t) + sizeof(Interval);
  for (const AbsState& state : in_) {
    if (state.bottom) continue;
    bytes += sizeof(AbsState);
    bytes += per_entry * state.mem->size(); // null COW table reads as empty
  }
  return bytes;
}

void ValueAnalysis::run(ThreadPool* pool, TransferCache* transfers,
                        const AnalysisGovernor* governor) {
  const isa::Image& image = sg_.program().image();
  const std::size_t num_nodes = sg_.nodes().size();
  const std::size_t num_instances = sg_.instances().size();
  std::vector<unsigned> visits(num_nodes, 0);

  // Per-instance round scheduling (support/instance_rounds.hpp): within
  // an instance, nodes iterate in reverse-postorder — the same
  // weak-topological order the PR 1 global worklist used — restricted
  // to the instance.
  InstanceRoundEngine engine(sg_, schedule_priorities_);
  engine.set_governor(governor);

  // Flipped at a round barrier once the visit/state budget (or the
  // deadline) runs out; read by the next round's workers — the round
  // barrier orders the write before every subsequent read. Reuses the
  // existing coarse-convergence safeguard below, which is why an early
  // trip is still sound AND monotone: the coarse state dominates every
  // state the remaining iterations could have produced.
  bool force_coarse = degraded_;

  // Join `along` into `target`'s in-state with the same widen/coarsen
  // policy as the PR 1 engine; returns true when the state grew.
  const auto join_into = [&](const int target, const AbsState& along) -> bool {
    AbsState& tin = in_[static_cast<std::size_t>(target)];
    const bool widen_now = is_widen_point_[static_cast<std::size_t>(target)] &&
                           visits[static_cast<std::size_t>(target)] >= options_.widen_delay;
    const bool coarse_now =
        force_coarse || visits[static_cast<std::size_t>(target)] >= options_.max_node_visits;
    if (!widen_now && !coarse_now) {
      // Hot path: join in place; join_with reports changes exactly, so
      // no state copy or deep equality check is needed.
      return tin.join_with(along, image, memmap_);
    }
    AbsState updated = tin;
    if (!updated.join_with(along, image, memmap_)) return false;
    if (widen_now) updated.widen_from(tin);
    if (coarse_now) {
      // Safeguard: force convergence by jumping to a coarse state.
      AbsState coarse = AbsState::entry_state();
      coarse.add_written(Interval::top());
      coarse.regs[isa::reg_zero] = Interval::constant(0);
      updated = coarse;
    }
    if (updated == tin) return false;
    tin = std::move(updated);
    return true;
  };

  in_[static_cast<std::size_t>(sg_.entry_node())] = AbsState::entry_state();
  engine.push(sg_.entry_node());

  // Instance rounds: dirty instances converge their local fixpoints (in
  // parallel when a pool is given — they touch disjoint
  // nodes/edges/visit slots); cross-instance call/ret joins are
  // buffered per instance and applied afterwards in ascending
  // (instance, edge) order (std::map order). The round/merge order is a
  // pure function of the graph, never of thread timing.
  std::vector<std::map<int, AbsState>> cross_out(num_instances);
  engine.run(
      pool,
      [&](const int instance, const int node) {
        auto& buffered = cross_out[static_cast<std::size_t>(instance)];
        ++visits[static_cast<std::size_t>(node)];
        const AbsState out = transfer_node(node, in_[static_cast<std::size_t>(node)]);
        for (const int eid : sg_.node(node).succ_edges) {
          AbsState along = refine_along_edge(eid, out);
          if (along.bottom) {
            // Note: feasibility is monotone — once feasible, stays
            // feasible.
            continue;
          }
          const int target = sg_.edge(eid).to;
          if (sg_.node(target).instance != instance) {
            // Call/ret edge: defer to the sequential merge step.
            const auto [it, fresh] = buffered.try_emplace(eid, std::move(along));
            if (!fresh) it->second.join_with(along, image, memmap_);
            continue;
          }
          edge_feasible_[static_cast<std::size_t>(eid)] = 1;
          if (join_into(target, along)) engine.push(target);
        }
      },
      [&](const int instance) {
        auto& buffered = cross_out[static_cast<std::size_t>(instance)];
        for (auto& [eid, state] : buffered) {
          edge_feasible_[static_cast<std::size_t>(eid)] = 1;
          const int target = sg_.edge(eid).to;
          if (join_into(target, state)) engine.push(target);
        }
        buffered.clear();
      },
      [&](const std::uint64_t round_pops) -> bool {
        WCET_FAULT_POINT("value:round");
        if (governor == nullptr || force_coarse) return true;
        // Budget accounting at the deterministic round barrier only:
        // the pop total is a pure function of the graph and domain.
        const char* trigger = nullptr;
        if (!governor->consume_value_visits(round_pops)) {
          trigger = "visit budget";
        } else if (governor->budget().max_state_bytes != 0 &&
                   governor->state_bytes_exceeded(tracked_state_bytes())) {
          trigger = "state-byte budget";
        } else if (governor->deadline_exceeded()) {
          trigger = "deadline";
        }
        if (trigger != nullptr) {
          force_coarse = true;
          degraded_ = true;
          governor->record("value", trigger,
                           "forced coarse convergence: remaining joins jump to the "
                           "near-top state, loosening loop/cache/path precision "
                           "(bound stays a true upper bound)");
        }
        // Never stop the engine: an un-iterated fixpoint would undercut
        // the least fixpoint, which is unsound. Coarsening converges in
        // at most one extra visit per node.
        return true;
      });

  // Final pass: record access address intervals per node (and publish
  // node out-states to the shared transfer cache — computed here
  // anyway). Nodes are independent: fan out when a pool is given.
  if (transfers != nullptr) transfers->attach(*this);
  const auto record_node = [&](std::size_t idx) {
    const cfg::SgNode& n = sg_.nodes()[idx];
    auto& recorded = accesses_[idx];
    recorded.clear();
    AbsState state = in_[idx];
    if (state.bottom) return;
    std::uint32_t pc = n.block->begin;
    for (const Inst& inst : n.block->insts) {
      state = transfer_inst(inst, pc, std::move(state), n.fn_entry, &recorded);
      pc += 4;
    }
    if (transfers != nullptr) transfers->set_out_state(n.id, std::move(state));
  };
  if (pool != nullptr) {
    pool->parallel_for(num_nodes, record_node);
  } else {
    for (std::size_t idx = 0; idx < num_nodes; ++idx) record_node(idx);
  }
}

Interval ValueAnalysis::mem_word_along_edge(int edge, std::uint32_t addr) const {
  const cfg::SgEdge& e = sg_.edge(edge);
  AbsState out = transfer_node(e.from, state_in(e.from));
  out = refine_along_edge(edge, std::move(out));
  if (out.bottom) return Interval::bottom();
  const auto it = out.mem->find(addr);
  if (it != out.mem->end()) return it->second;
  return implicit_word(out, addr);
}

Interval ValueAnalysis::reg_before(int node, std::uint32_t pc, std::uint8_t reg) const {
  const cfg::SgNode& n = sg_.node(node);
  AbsState state = in_[static_cast<std::size_t>(node)];
  if (state.bottom) return Interval::bottom();
  std::uint32_t walk = n.block->begin;
  for (const Inst& inst : n.block->insts) {
    if (walk == pc) break;
    state = transfer_inst(inst, walk, std::move(state), n.fn_entry, nullptr);
    walk += 4;
  }
  return state.bottom ? Interval::bottom() : state.regs[reg];
}

std::map<std::uint32_t, std::vector<std::uint32_t>>
ValueAnalysis::resolved_indirect_targets() const {
  std::map<std::uint32_t, std::vector<std::uint32_t>> result;
  for (const cfg::SgNode& n : sg_.nodes()) {
    const cfg::CfgBlock& block = *n.block;
    if (!block.indirect_unresolved) continue;
    if (in_[static_cast<std::size_t>(n.id)].bottom) continue;
    const Inst& term = block.terminator();
    const Interval base = reg_before(n.id, block.term_pc(), term.rs1);
    const Interval target = base.add(Interval::constant(static_cast<std::uint32_t>(term.imm)));
    if (const auto c = target.as_constant()) {
      result[block.term_pc()].push_back(*c & ~3u);
    }
  }
  return result;
}

} // namespace wcet::analysis
