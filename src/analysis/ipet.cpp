#include "analysis/ipet.hpp"

#include <algorithm>
#include <string>

#include "support/diag.hpp"
#include "support/thread_pool.hpp"

namespace wcet::analysis {

namespace {

// Per-region resource envelope. The governor's node cap can only
// tighten the built-in 20000-node safety limit, never raise it.
SolveLimits region_limits(const IpetOptions& options) {
  SolveLimits limits;
  if (options.governor != nullptr) {
    const std::uint64_t nodes = options.governor->ilp_node_limit();
    if (nodes != 0) {
      limits.node_limit = static_cast<int>(
          std::min<std::uint64_t>(nodes, static_cast<std::uint64_t>(limits.node_limit)));
    }
    limits.pivot_limit = options.governor->pivot_limit();
    limits.governor = options.governor;
  }
  return limits;
}

} // namespace

Ipet::Ipet(const cfg::Supergraph& sg, const cfg::LoopForest& loops,
           const ValueAnalysis& values, const PipelineAnalysis& pipeline)
    : sg_(sg), loops_(loops), values_(values), pipeline_(pipeline) {}

// ---------------------------------------------------------------------------
// Decomposed solve.
//
// The supergraph is a tree of function instances; a subtree entered by a
// single call edge whose call site lies outside every loop, leaving only
// through ret edges onto one return site, with no task exit and no dead
// end inside, forms an *independent block* of the IPET ILP: its entry
// count is 0 or 1 in every feasible flow (DAG-condensation argument — a
// node outside all SCCs carries at most the unit source flow), no loop
// or persistence constraint crosses its boundary, and when no flow fact
// touches its nodes nothing else couples it to the rest of the system.
// The global optimum therefore decomposes exactly:
//
//   opt(whole) = opt(outer with subtree collapsed to one variable y,
//                    objective coefficient = opt(subtree | entry = 1))
//
// Planning re-enters each collapsed subtree (recursive mode), so a deep
// call tree becomes a tree of small sub-ILPs instead of one monolithic
// sub-solve. The sub-ILPs fan out across the thread pool one nesting
// level at a time — deepest level first, ascending instance order
// within a level — so every child objective is ready before its parent
// region solves and the schedule is deterministic for any worker count.
//
// Annotation-driven flow facts (caps / ratios / infeasible pairs /
// exclusions) no longer disable decomposition wholesale: each fact pins
// exactly the subtrees whose member nodes it constrains (the coupling a
// collapsed block cannot express), those subtrees stay in the outer
// region, and the facts are emitted as outer-region constraints. Any
// other condition that would break exactness (call site inside a loop,
// exit/dead-end nodes inside, irregular boundary) disqualifies the
// subtree during planning; if a sub-ILP ends non-optimal the solver
// falls back to the monolithic path wholesale.
// ---------------------------------------------------------------------------

std::vector<std::vector<Ipet::Sub*>> Ipet::schedule_levels(std::vector<Sub>& subs) {
  std::vector<std::vector<Sub*>> levels;
  const auto collect = [&](auto&& self, std::vector<Sub>& list, std::size_t depth) -> void {
    if (list.empty()) return;
    if (levels.size() <= depth) levels.resize(depth + 1);
    for (Sub& sub : list) {
      levels[depth].push_back(&sub);
      self(self, sub.children, depth + 1);
    }
  };
  collect(collect, subs, 0);
  for (std::vector<Sub*>& level : levels) {
    std::sort(level.begin(), level.end(),
              [](const Sub* a, const Sub* b) { return a->instance < b->instance; });
  }
  return levels;
}

std::vector<Ipet::Sub> Ipet::planned_subs(const IpetOptions& options) const {
  // Copy the memoized plan: each solve fills the subs' objectives.
  std::vector<Sub> subs = decomposition_plan();
  if (options.decomposition == IpetDecomposition::flat) {
    for (Sub& sub : subs) sub.children.clear();
  }
  const std::vector<char> pinned = constrained_nodes(options);
  if (!pinned.empty()) subs = prune_pinned(std::move(subs), pinned);
  return subs;
}

std::vector<int> Ipet::missing_loop_bounds_in(const IpetOptions& options) const {
  // Replicates the monolithic scan order (ascending loop id) and
  // predicates so obstruction lists match the reference path.
  std::vector<int> missing;
  for (const cfg::Loop& loop : loops_.loops()) {
    const auto any_feasible = [&](const std::vector<int>& edges) {
      return std::any_of(edges.begin(), edges.end(),
                         [&](int eid) { return values_.edge_feasible(eid); });
    };
    if (!any_feasible(loop.back_edges)) continue;
    if (!any_feasible(loop.entry_edges)) continue;
    if (options.loop_bounds.count(loop.id) != 0) continue;
    missing.push_back(loop.id);
  }
  return missing;
}

bool Ipet::solve_levels(const std::vector<std::vector<Sub*>>& levels,
                        const IpetOptions& options, bool both) const {
  for (auto level = levels.rbegin(); level != levels.rend(); ++level) {
    const auto solve_one = [&](std::size_t i) {
      if (both) {
        solve_sub_both(*(*level)[i], options);
      } else {
        solve_sub(*(*level)[i], options);
      }
    };
    if (pool_ != nullptr) {
      pool_->parallel_for(level->size(), solve_one);
    } else {
      for (std::size_t i = 0; i < level->size(); ++i) solve_one(i);
    }
    for (const Sub* sub : *level) {
      if (!sub->result.ok()) return false;
      if (both && !sub->result_bcet.ok()) return false;
    }
  }
  return true;
}

void Ipet::merge_sub_results(IpetResult& outer, const std::vector<Sub>& subs,
                             const std::map<int, std::uint64_t>& edge_counts,
                             bool bcet_sense) {
  if (!outer.ok()) return;
  for (const Sub& sub : subs) {
    const IpetResult& sub_result = bcet_sense ? sub.result_bcet : sub.result;
    outer.variables += sub_result.variables;
    outer.constraints += sub_result.constraints;
    outer.degraded = outer.degraded || sub_result.degraded;
    const auto y = edge_counts.find(sub.call_edge);
    if (y != edge_counts.end() && y->second > 0) {
      // Entry counts are 0/1, so the subtree witness merges unscaled.
      for (const auto& [node, count] : sub_result.node_counts) {
        outer.node_counts[node] = count;
      }
    }
  }
}

IpetResult Ipet::solve(const IpetOptions& options) const {
  // lp_dump wants the one whole-system ILP; monolithic is the reference
  // path every decomposition mode must reproduce bit-identically.
  if (options.decomposition == IpetDecomposition::monolithic || options.lp_dump != nullptr) {
    return solve_monolithic(options);
  }
  std::vector<Sub> subs = planned_subs(options);
  if (subs.empty()) return solve_monolithic(options);

  if (options.maximize) {
    IpetResult missing;
    missing.loops_missing_bounds = missing_loop_bounds_in(options);
    if (!missing.loops_missing_bounds.empty()) {
      missing.status = IpetResult::Status::missing_loop_bounds;
      return missing;
    }
  }

  std::vector<std::vector<Sub*>> levels = schedule_levels(subs);
  int total_subs = 0;
  for (const std::vector<Sub*>& level : levels) total_subs += static_cast<int>(level.size());
  if (!solve_levels(levels, options, /*both=*/false)) {
    // Safety/fallback ladder: a failed sub-solve (structurally, or out
    // of pivot budget) first retries with the shallower flat plan, then
    // gives up on decomposition entirely.
    if (options.decomposition == IpetDecomposition::recursive) {
      if (options.governor != nullptr) {
        options.governor->record("path", "sub-solve failure",
                                 "recursive decomposition fell back to flat");
      }
      IpetOptions flat = options;
      flat.decomposition = IpetDecomposition::flat;
      return solve(flat);
    }
    if (options.governor != nullptr) {
      options.governor->record("path", "sub-solve failure",
                               "decomposition fell back to monolithic");
    }
    return solve_monolithic(options);
  }

  // Outer problem over the remaining nodes with one variable per
  // collapsed top-level subtree.
  std::vector<char> outer_member(sg_.nodes().size(), 1);
  for (const Sub& sub : subs) {
    for (std::size_t n = 0; n < sub.member.size(); ++n) {
      if (sub.member[n]) outer_member[n] = 0;
    }
  }
  RegionSpec spec;
  spec.member = &outer_member;
  spec.source_node = sg_.entry_node();
  spec.top_level = true;
  spec.children = &subs;
  std::map<int, std::uint64_t> edge_counts;
  IpetResult outer = solve_region(spec, options, nullptr, &edge_counts);
  outer.decomposed_regions = static_cast<int>(subs.size());
  outer.sub_ilps = total_subs;
  outer.decomposition_depth = static_cast<int>(levels.size());
  // Single-sense sub solves always store into sub.result (the sense
  // lives in the objective they filled), so merge from that slot.
  merge_sub_results(outer, subs, edge_counts, /*bcet_sense=*/false);
  return outer;
}

std::pair<IpetResult, IpetResult> Ipet::solve_both(const IpetOptions& options) const {
  if (options.lp_dump != nullptr) {
    // Dump semantics belong to the single-sense reference path.
    IpetOptions single = options;
    single.maximize = true;
    IpetResult wcet = solve(single);
    single.maximize = false;
    return {std::move(wcet), solve(single)};
  }
  if (options.decomposition == IpetDecomposition::monolithic) {
    return solve_monolithic_both(options);
  }
  std::vector<Sub> subs = planned_subs(options);
  if (subs.empty()) return solve_monolithic_both(options);

  // Missing-loop-bound pre-check for the WCET half; the BCET half is
  // skipped then, matching the driver's convention.
  {
    IpetResult missing;
    missing.loops_missing_bounds = missing_loop_bounds_in(options);
    if (!missing.loops_missing_bounds.empty()) {
      missing.status = IpetResult::Status::missing_loop_bounds;
      return {std::move(missing), IpetResult{}};
    }
  }

  std::vector<std::vector<Sub*>> levels = schedule_levels(subs);
  int total_subs = 0;
  for (const std::vector<Sub*>& level : levels) total_subs += static_cast<int>(level.size());
  if (!solve_levels(levels, options, /*both=*/true)) {
    // Same fallback ladder as solve(): recursive -> flat -> monolithic.
    if (options.decomposition == IpetDecomposition::recursive) {
      if (options.governor != nullptr) {
        options.governor->record("path", "sub-solve failure",
                                 "recursive decomposition fell back to flat");
      }
      IpetOptions flat = options;
      flat.decomposition = IpetDecomposition::flat;
      return solve_both(flat);
    }
    if (options.governor != nullptr) {
      options.governor->record("path", "sub-solve failure",
                               "decomposition fell back to monolithic");
    }
    return solve_monolithic_both(options);
  }

  std::vector<char> outer_member(sg_.nodes().size(), 1);
  for (const Sub& sub : subs) {
    for (std::size_t n = 0; n < sub.member.size(); ++n) {
      if (sub.member[n]) outer_member[n] = 0;
    }
  }
  RegionSpec spec;
  spec.member = &outer_member;
  spec.source_node = sg_.entry_node();
  spec.top_level = true;
  spec.children = &subs;
  std::map<int, std::uint64_t> edge_counts_max;
  std::map<int, std::uint64_t> edge_counts_min;
  auto [wcet, bcet] =
      solve_region_both(spec, options, nullptr, nullptr, &edge_counts_max, &edge_counts_min);
  for (IpetResult* outer : {&wcet, &bcet}) {
    outer->decomposed_regions = static_cast<int>(subs.size());
    outer->sub_ilps = total_subs;
    outer->decomposition_depth = static_cast<int>(levels.size());
  }
  merge_sub_results(wcet, subs, edge_counts_max, /*bcet_sense=*/false);
  merge_sub_results(bcet, subs, edge_counts_min, /*bcet_sense=*/true);
  return {std::move(wcet), std::move(bcet)};
}

// The region of a collapsed subtree is the subtree minus its own
// collapsed children; fills `member` and returns the region spec.
Ipet::RegionSpec Ipet::sub_region_spec(Sub& sub, std::vector<char>& member) {
  member = sub.member;
  for (const Sub& child : sub.children) {
    for (std::size_t n = 0; n < child.member.size(); ++n) {
      if (child.member[n]) member[n] = 0;
    }
  }
  RegionSpec spec;
  spec.member = &member;
  spec.source_node = sub.entry_node;
  spec.top_level = false;
  spec.sink_ret_edges = &sub.ret_edges;
  if (!sub.children.empty()) spec.children = &sub.children;
  return spec;
}

void Ipet::solve_sub(Sub& sub, const IpetOptions& options) const {
  std::vector<char> member;
  const RegionSpec spec = sub_region_spec(sub, member);
  std::map<int, std::uint64_t> edge_counts;
  Rational* objective_out = options.maximize ? &sub.objective : &sub.objective_bcet;
  sub.result = solve_region(spec, options, objective_out,
                            sub.children.empty() ? nullptr : &edge_counts);
  merge_sub_results(sub.result, sub.children, edge_counts, /*bcet_sense=*/false);
}

void Ipet::solve_sub_both(Sub& sub, const IpetOptions& options) const {
  std::vector<char> member;
  const RegionSpec spec = sub_region_spec(sub, member);
  const bool has_children = !sub.children.empty();
  std::map<int, std::uint64_t> edge_counts_max;
  std::map<int, std::uint64_t> edge_counts_min;
  auto [wcet, bcet] = solve_region_both(spec, options, &sub.objective, &sub.objective_bcet,
                                        has_children ? &edge_counts_max : nullptr,
                                        has_children ? &edge_counts_min : nullptr);
  sub.result = std::move(wcet);
  sub.result_bcet = std::move(bcet);
  if (!sub.result.ok() || !sub.result_bcet.ok()) return;
  merge_sub_results(sub.result, sub.children, edge_counts_max, /*bcet_sense=*/false);
  merge_sub_results(sub.result_bcet, sub.children, edge_counts_min, /*bcet_sense=*/true);
}

const std::vector<Ipet::Sub>& Ipet::decomposition_plan() const {
  if (!plan_ready_) {
    plan_ = plan_decomposition();
    plan_ready_ = true;
  }
  return plan_;
}

std::size_t Ipet::reachable_in(const std::vector<char>& member) const {
  std::size_t count = 0;
  for (std::size_t n = 0; n < member.size(); ++n) {
    if (member[n] && values_.node_reachable(static_cast<int>(n))) ++count;
  }
  return count;
}

std::vector<Ipet::Sub> Ipet::plan_decomposition() const {
  const std::size_t num_nodes = sg_.nodes().size();
  std::size_t total_reachable = 0;
  for (std::size_t n = 0; n < num_nodes; ++n) {
    if (values_.node_reachable(static_cast<int>(n))) ++total_reachable;
  }
  // Below this the monolithic simplex is already fast; skipping keeps
  // small programs (and most unit tests) on the reference path.
  if (total_reachable < 48) return {};

  const auto& instances = sg_.instances();
  // Callers-before-callees order (verified by the export): accumulating
  // subtree sizes in reverse visits every callee before its caller.
  const std::vector<int> topo = sg_.instance_topo_order();
  std::vector<std::vector<int>> children(instances.size());
  std::vector<std::size_t> subtree_nodes(instances.size(), 0);
  for (const int i : topo) {
    subtree_nodes[static_cast<std::size_t>(i)] = sg_.instance_nodes(i).size();
    const int caller = instances[static_cast<std::size_t>(i)].caller_instance;
    if (caller >= 0) children[static_cast<std::size_t>(caller)].push_back(i);
  }
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const int caller = instances[static_cast<std::size_t>(*it)].caller_instance;
    if (caller >= 0) {
      subtree_nodes[static_cast<std::size_t>(caller)] +=
          subtree_nodes[static_cast<std::size_t>(*it)];
    }
  }

  const std::set<int> exit_set(sg_.exit_nodes().begin(), sg_.exit_nodes().end());
  return plan_region(0, total_reachable, children, subtree_nodes, exit_set);
}

std::vector<Ipet::Sub> Ipet::plan_region(int root_instance, std::size_t region_size,
                                         const std::vector<std::vector<int>>& children,
                                         const std::vector<std::size_t>& subtree_nodes,
                                         const std::set<int>& exit_set) const {
  std::vector<Sub> subs;
  // Top-down over the instance tree, ascending ids: collapse the
  // largest eligible subtrees that still leave a meaningful region
  // around them; recurse past oversized or ineligible ones — and
  // re-enter planning *inside* every collapsed subtree, so nesting
  // continues until regions bottom out.
  std::vector<int> stack;
  const auto push_children = [&](int instance) {
    const auto& cs = children[static_cast<std::size_t>(instance)];
    for (auto it = cs.rbegin(); it != cs.rend(); ++it) stack.push_back(*it);
  };
  push_children(root_instance);
  while (!stack.empty()) {
    const int instance = stack.back();
    stack.pop_back();
    const std::size_t size = subtree_nodes[static_cast<std::size_t>(instance)];
    if (size < 8) continue; // sub-ILP overhead beats the saving
    if (size * 5 > region_size * 3) {
      push_children(instance);
      continue;
    }
    Sub sub;
    if (subtree_eligible(instance, children, exit_set, sub)) {
      sub.children =
          plan_region(instance, reachable_in(sub.member), children, subtree_nodes, exit_set);
      subs.push_back(std::move(sub));
    } else {
      push_children(instance);
    }
  }
  return subs;
}

bool Ipet::subtree_eligible(int instance, const std::vector<std::vector<int>>& children,
                            const std::set<int>& exit_set, Sub& sub) const {
  const cfg::Instance& inst = sg_.instances()[static_cast<std::size_t>(instance)];
  sub.instance = instance;
  sub.call_site = inst.call_site_node;
  if (sub.call_site < 0) return false;
  // Inside a loop the call edge count may exceed 1 and the collapse
  // stops being exact (the sub-ILP optimum is computed per single
  // entry).
  if (loops_.innermost_loop_of(sub.call_site) >= 0) return false;
  if (!values_.node_reachable(sub.call_site)) return false;
  sub.entry_node = sg_.instance_entry_node(instance);
  if (sub.entry_node < 0) return false;
  for (const int eid : sg_.node(sub.call_site).succ_edges) {
    const cfg::SgEdge& e = sg_.edge(eid);
    if (e.kind == cfg::EdgeKind::call && e.to == sub.entry_node) {
      sub.call_edge = eid;
      break;
    }
  }
  if (sub.call_edge < 0 || !values_.edge_feasible(sub.call_edge)) return false;

  sub.member.assign(sg_.nodes().size(), 0);
  std::vector<int> inst_stack{instance};
  while (!inst_stack.empty()) {
    const int i = inst_stack.back();
    inst_stack.pop_back();
    for (const int n : sg_.instance_nodes(i)) sub.member[static_cast<std::size_t>(n)] = 1;
    for (const int c : children[static_cast<std::size_t>(i)]) inst_stack.push_back(c);
  }

  // Boundary and interior scan: the only inbound edge is the call edge;
  // every outbound edge is a ret edge of THIS instance onto one return
  // site; no task exit and no reachable dead end inside (either would
  // let flow end within the subtree, which the collapsed model cannot
  // express).
  for (std::size_t n = 0; n < sub.member.size(); ++n) {
    if (!sub.member[n]) continue;
    const int node_id = static_cast<int>(n);
    if (exit_set.count(node_id) != 0) return false;
    const cfg::SgNode& node = sg_.node(node_id);
    bool any_feasible_out = false;
    for (const int eid : node.succ_edges) {
      const cfg::SgEdge& e = sg_.edge(eid);
      if (sub.member[static_cast<std::size_t>(e.to)]) {
        any_feasible_out = any_feasible_out || values_.edge_feasible(eid);
        continue;
      }
      if (e.kind != cfg::EdgeKind::ret || node.instance != instance) return false;
      if (sub.return_site < 0) {
        sub.return_site = e.to;
      } else if (sub.return_site != e.to) {
        return false;
      }
      sub.ret_edges.push_back(eid);
      any_feasible_out = any_feasible_out || values_.edge_feasible(eid);
    }
    for (const int eid : node.pred_edges) {
      if (!sub.member[static_cast<std::size_t>(sg_.edge(eid).from)] && eid != sub.call_edge) {
        return false;
      }
    }
    if (values_.node_reachable(node_id) && !any_feasible_out) return false;
  }
  return sub.return_site >= 0 && !sub.ret_edges.empty();
}

std::vector<char> Ipet::constrained_nodes(const IpetOptions& options) const {
  if (options.flow_caps.empty() && options.flow_ratios.empty() &&
      options.infeasible_pairs.empty() && options.excluded_addrs.empty()) {
    return {};
  }
  std::vector<char> pinned(sg_.nodes().size(), 0);
  const auto pin_addr = [&](std::uint32_t addr) {
    for (const int node_id : sg_.nodes_covering(addr)) {
      if (values_.node_reachable(node_id)) pinned[static_cast<std::size_t>(node_id)] = 1;
    }
  };
  for (const annot::FlowCapFact& cap : options.flow_caps) pin_addr(cap.addr);
  for (const annot::FlowRatioFact& ratio : options.flow_ratios) {
    pin_addr(ratio.addr);
    pin_addr(ratio.relative_to);
  }
  for (const annot::InfeasiblePairFact& pair : options.infeasible_pairs) {
    pin_addr(pair.a);
    pin_addr(pair.b);
  }
  for (const std::uint32_t addr : options.excluded_addrs) pin_addr(addr);
  return pinned;
}

std::vector<Ipet::Sub> Ipet::prune_pinned(std::vector<Sub> subs,
                                          const std::vector<char>& pinned) {
  std::vector<Sub> kept;
  for (Sub& sub : subs) {
    bool touched = false;
    for (std::size_t n = 0; n < sub.member.size() && !touched; ++n) {
      touched = sub.member[n] != 0 && pinned[n] != 0;
    }
    // A fact inside a nested child pins the whole ancestor chain (the
    // child's member nodes are the ancestors' member nodes too), so the
    // recursion drops exactly the chain while unpinned siblings — and
    // unpinned children of a pinned parent — stay collapsed, promoted
    // into the surrounding region.
    std::vector<Sub> children = prune_pinned(std::move(sub.children), pinned);
    if (touched) {
      for (Sub& child : children) kept.push_back(std::move(child));
    } else {
      sub.children = std::move(children);
      kept.push_back(std::move(sub));
    }
  }
  return kept;
}

// ---------------------------------------------------------------------------
// Region ILP emission. One routine builds every problem: the monolithic
// whole-supergraph system (member == nullptr, top level), the outer
// problem of a decomposed solve (children collapsed to super-edge
// variables), and the sub-ILP of a collapsed subtree (virtual source at
// the callee entry, sinks at the ret edges).
//
// Node execution counts are NOT variables: flow conservation makes
//   x_n == sum of inbound flow (+1 at the virtual source),
// so each node contributes a single balance row
//   sum(in) [+ 1 if source] == sum(out) + sum(sinks)
// and every use of x_n (objective weights, persistence-miss caps, flow
// facts) substitutes the inbound sum. Compared to the classic
// two-rows-and-a-variable-per-node form this halves both the row count
// and the artificial-variable count — phase 1 of the exact simplex
// performs one pivot per artificial, so the substitution roughly halves
// path-analysis solve time while describing the *same* polytope
// projected onto the edge variables: every bound is bit-identical.
//
// The constraint system is sense-independent (persistence-miss rows are
// emitted for both senses: a miss variable is only bounded above, so
// the BCET/minimize optimum pins it to zero and the bound is unchanged)
// and both objective vectors are accumulated in one pass — that is what
// lets solve_ilp_pair share construction and phase-1 work between the
// WCET and BCET solves of a region.
// ---------------------------------------------------------------------------

struct Ipet::RegionBuild {
  IlpProblem ilp;
  std::vector<int> edge_var;     // supergraph edge -> ilp variable (or -1)
  std::vector<char> region_node; // reachable nodes of this region
  std::vector<Rational> obj_max; // internal maximize sense (WCET)
  std::vector<Rational> obj_min; // internal maximize sense (BCET: negated costs)
  Rational offset_max;           // virtual-source objective constants
  Rational offset_min;
  IpetResult early; // early-exit verdict carrier + missing-bound list
};

int Ipet::append_in_flow(const RegionSpec& spec, const std::vector<int>& edge_var,
                         int node_id, const Rational& scale,
                         std::vector<LinTerm>& terms) const {
  const cfg::SgNode& node = sg_.node(node_id);
  for (const int eid : node.pred_edges) {
    const int ev = edge_var[static_cast<std::size_t>(eid)];
    if (ev >= 0) terms.push_back({ev, scale});
  }
  if (spec.children != nullptr) {
    // A collapsed child's flow re-emerges at its return site.
    for (const Sub& sub : *spec.children) {
      if (sub.return_site != node_id) continue;
      const int yv = edge_var[static_cast<std::size_t>(sub.call_edge)];
      if (yv >= 0) terms.push_back({yv, scale});
    }
  }
  return node_id == spec.source_node ? 1 : 0;
}

bool Ipet::build_region(const RegionSpec& spec, const IpetOptions& options,
                        RegionBuild& build) const {
  const auto in_region = [&](int node) {
    return spec.member == nullptr || (*spec.member)[static_cast<std::size_t>(node)] != 0;
  };
  IlpProblem& ilp = build.ilp;

  // Collapsed-child lookups.
  std::vector<int> child_of_call_edge(sg_.edges().size(), -1);
  std::vector<int> child_of_ret_edge(sg_.edges().size(), -1);
  if (spec.children != nullptr) {
    for (std::size_t c = 0; c < spec.children->size(); ++c) {
      const Sub& sub = (*spec.children)[c];
      child_of_call_edge[static_cast<std::size_t>(sub.call_edge)] = static_cast<int>(c);
      for (const int eid : sub.ret_edges) {
        child_of_ret_edge[static_cast<std::size_t>(eid)] = static_cast<int>(c);
      }
    }
  }
  std::vector<char> is_sink_edge(sg_.edges().size(), 0);
  if (spec.sink_ret_edges != nullptr) {
    for (const int eid : *spec.sink_ret_edges) is_sink_edge[static_cast<std::size_t>(eid)] = 1;
  }

  // Variables: one per feasible internal edge and one super-edge
  // variable per collapsed child (its call edge: the subtree's 0/1
  // entry count). Sink and persistence-miss variables follow.
  build.region_node.assign(sg_.nodes().size(), 0);
  for (const cfg::SgNode& node : sg_.nodes()) {
    if (in_region(node.id) && values_.node_reachable(node.id)) {
      build.region_node[static_cast<std::size_t>(node.id)] = 1;
    }
  }
  build.edge_var.assign(sg_.edges().size(), -1);
  std::vector<int>& edge_var = build.edge_var;
  for (const cfg::SgEdge& edge : sg_.edges()) {
    const int child = child_of_call_edge[static_cast<std::size_t>(edge.id)];
    if (child >= 0) {
      edge_var[static_cast<std::size_t>(edge.id)] = ilp.add_variable(
          "y" + std::to_string((*spec.children)[static_cast<std::size_t>(child)].instance));
      continue;
    }
    if (!values_.edge_feasible(edge.id)) continue;
    if (!build.region_node[static_cast<std::size_t>(edge.from)] ||
        !build.region_node[static_cast<std::size_t>(edge.to)]) {
      continue;
    }
    edge_var[static_cast<std::size_t>(edge.id)] =
        ilp.add_variable("e" + std::to_string(edge.id));
  }

  const auto add_obj = [](std::vector<Rational>& obj, int var, const Rational& coeff) {
    if (obj.size() <= static_cast<std::size_t>(var)) {
      obj.resize(static_cast<std::size_t>(var) + 1);
    }
    obj[static_cast<std::size_t>(var)] += coeff;
  };

  // Balance rows with sinks at the task exits (top level) or the
  // subtree's ret edges, and the node weights folded onto the inbound
  // flow.
  std::vector<int> exit_vars;
  {
    std::set<int> exit_set;
    if (spec.top_level) exit_set.insert(sg_.exit_nodes().begin(), sg_.exit_nodes().end());
    for (const cfg::SgNode& node : sg_.nodes()) {
      if (!build.region_node[static_cast<std::size_t>(node.id)]) continue;
      std::vector<LinTerm> terms;
      const int src = append_in_flow(spec, edge_var, node.id, Rational(1), terms);
      const std::size_t in_count = terms.size();

      const NodeTiming& timing = pipeline_.timing(node.id);
      if (timing.ub != 0) {
        const Rational w(static_cast<std::int64_t>(timing.ub));
        for (std::size_t i = 0; i < in_count; ++i) add_obj(build.obj_max, terms[i].var, w);
        if (src != 0) build.offset_max += w;
      }
      if (timing.lb != 0) {
        const Rational w(-static_cast<std::int64_t>(timing.lb));
        for (std::size_t i = 0; i < in_count; ++i) add_obj(build.obj_min, terms[i].var, w);
        if (src != 0) build.offset_min += w;
      }

      bool made_sink = false;
      for (const int eid : node.succ_edges) {
        const int ev = edge_var[static_cast<std::size_t>(eid)];
        if (ev >= 0) {
          terms.push_back({ev, Rational(-1)});
          continue;
        }
        if (is_sink_edge[static_cast<std::size_t>(eid)] != 0 && values_.edge_feasible(eid)) {
          // Subtree ret edge: flow leaves the region here; the sink
          // variable carries the edge's extra cost (taken-branch
          // penalty convention) in the objective.
          const int sv = ilp.add_variable("ret" + std::to_string(eid));
          exit_vars.push_back(sv);
          terms.push_back({sv, Rational(-1)});
          const unsigned extra = pipeline_.edge_extra(eid);
          if (extra != 0) {
            add_obj(build.obj_max, sv, Rational(static_cast<std::int64_t>(extra)));
            add_obj(build.obj_min, sv, Rational(-static_cast<std::int64_t>(extra)));
          }
          made_sink = true;
        }
      }
      if (spec.top_level && exit_set.count(node.id) != 0) {
        const int sv = ilp.add_variable("sink" + std::to_string(node.id));
        exit_vars.push_back(sv);
        terms.push_back({sv, Rational(-1)});
      } else if (!made_sink &&
                 (node.succ_edges.empty() ||
                  std::all_of(node.succ_edges.begin(), node.succ_edges.end(), [&](int eid) {
                    return edge_var[static_cast<std::size_t>(eid)] < 0;
                  }))) {
        // Dead end that is not an exit (e.g. unresolved indirect): treat
        // as a sink so the system stays feasible; the driver reports the
        // obstruction separately.
        const int sv = ilp.add_variable("dead" + std::to_string(node.id));
        exit_vars.push_back(sv);
        terms.push_back({sv, Rational(-1)});
      }
      ilp.add_constraint(std::move(terms), Cmp::eq, Rational(-src));
    }
    std::vector<LinTerm> sink_sum;
    sink_sum.reserve(exit_vars.size());
    for (const int sv : exit_vars) sink_sum.push_back({sv, Rational(1)});
    if (sink_sum.empty()) {
      // No reachable exit: no finite execution to bound.
      build.early.status = IpetResult::Status::infeasible;
      return false;
    }
    ilp.add_constraint(std::move(sink_sum), Cmp::eq, Rational(1));
  }

  // Loop entry terms of a region loop, substituting a collapsed child's
  // super-edge variable for its ret edges (their counts sum to y: every
  // ret edge targets the return site, so when that site lies in the
  // loop they all enter it) and detecting entries through the virtual
  // source of a sub-region.
  const auto loop_entry_terms = [&](const cfg::Loop& loop, bool& has_virtual_entry) {
    std::vector<LinTerm> terms;
    std::set<int> seen_children;
    has_virtual_entry = false;
    for (const int eid : loop.entry_edges) {
      const int ev = edge_var[static_cast<std::size_t>(eid)];
      if (ev >= 0) {
        terms.push_back({ev, Rational(1)});
        continue;
      }
      const cfg::SgEdge& e = sg_.edge(eid);
      if (in_region(e.from)) continue; // infeasible or unreachable: no flow
      const int child = child_of_ret_edge[static_cast<std::size_t>(eid)];
      if (child >= 0) {
        if (seen_children.insert(child).second) {
          const int yv = edge_var[static_cast<std::size_t>(
              (*spec.children)[static_cast<std::size_t>(child)].call_edge)];
          if (yv >= 0) terms.push_back({yv, Rational(1)});
        }
        continue;
      }
      if (!spec.top_level && e.to == spec.source_node) has_virtual_entry = true;
    }
    return terms;
  };

  // Loop bounds for loops that live in this region (loops never span a
  // collapsed boundary: a cycle through the subtree would have to pass
  // the call site, which eligibility requires to be loop-free).
  for (const cfg::Loop& loop : loops_.loops()) {
    if (!in_region(loop.header)) continue;
    std::vector<LinTerm> back_terms;
    for (const int eid : loop.back_edges) {
      const int ev = edge_var[static_cast<std::size_t>(eid)];
      if (ev >= 0) back_terms.push_back({ev, Rational(1)});
    }
    if (back_terms.empty()) continue; // cycle already broken by infeasibility
    bool has_virtual_entry = false;
    std::vector<LinTerm> entry_terms = loop_entry_terms(loop, has_virtual_entry);
    if (entry_terms.empty() && !has_virtual_entry) {
      // Unreachable loop: force its back edges to zero.
      ilp.add_constraint(std::move(back_terms), Cmp::le, Rational(0));
      continue;
    }
    const auto bound_it = options.loop_bounds.find(loop.id);
    if (bound_it == options.loop_bounds.end()) {
      build.early.loops_missing_bounds.push_back(loop.id);
      continue;
    }
    // sum(back) - B * sum(entry) <= B * virtual_entries
    const auto bound = static_cast<std::int64_t>(bound_it->second);
    std::vector<LinTerm> terms = std::move(back_terms);
    for (const LinTerm& t : entry_terms) terms.push_back({t.var, Rational(-bound)});
    ilp.add_constraint(std::move(terms), Cmp::le,
                       Rational(has_virtual_entry ? bound : 0));
  }

  // Design-level flow facts (Section 4.3), top level only: the
  // decomposition pins every subtree a fact touches into the outer
  // region, so the constrained counts are all expressible here.
  if (spec.top_level) {
    // Execution-count expression of every region node whose block
    // covers `addr`, scaled; flags whether any node was covered and
    // accumulates the virtual-source constant.
    const auto append_counts_at = [&](std::uint32_t addr, const Rational& scale,
                                      std::vector<LinTerm>& terms, Rational& constant) {
      bool covered = false;
      for (const int node_id : sg_.nodes_covering(addr)) {
        if (!build.region_node[static_cast<std::size_t>(node_id)]) continue;
        covered = true;
        if (append_in_flow(spec, edge_var, node_id, scale, terms) != 0) constant += scale;
      }
      return covered;
    };

    // Operating-mode / never-executed exclusions.
    for (const std::uint32_t addr : options.excluded_addrs) {
      std::vector<LinTerm> terms;
      Rational constant;
      if (append_counts_at(addr, Rational(1), terms, constant)) {
        ilp.add_constraint(std::move(terms), Cmp::le, -constant);
      }
    }

    // Absolute flow caps.
    for (const annot::FlowCapFact& cap : options.flow_caps) {
      std::vector<LinTerm> terms;
      Rational constant;
      if (append_counts_at(cap.addr, Rational(1), terms, constant)) {
        ilp.add_constraint(std::move(terms), Cmp::le,
                           Rational(static_cast<std::int64_t>(cap.max_count)) - constant);
      }
    }

    // Relative flow facts: count(a) <= f * count(b).
    for (const annot::FlowRatioFact& ratio : options.flow_ratios) {
      std::vector<LinTerm> terms;
      Rational constant;
      bool covered = append_counts_at(ratio.addr, Rational(1), terms, constant);
      covered |= append_counts_at(ratio.relative_to,
                                  Rational(-static_cast<std::int64_t>(ratio.factor)), terms,
                                  constant);
      if (covered) ilp.add_constraint(std::move(terms), Cmp::le, -constant);
    }

    // Infeasible pairs: big-M disjunction with a binary selector.
    const auto big_m = Rational(static_cast<std::int64_t>(options.infeasible_pair_big_m));
    int pair_index = 0;
    for (const annot::InfeasiblePairFact& pair : options.infeasible_pairs) {
      const int sel = ilp.add_variable("excl" + std::to_string(pair_index++));
      ilp.add_constraint({{sel, Rational(1)}}, Cmp::le, Rational(1));
      std::vector<LinTerm> a_terms;
      Rational a_const;
      std::vector<LinTerm> b_terms;
      Rational b_const;
      const bool a_covered = append_counts_at(pair.a, Rational(1), a_terms, a_const);
      const bool b_covered = append_counts_at(pair.b, Rational(1), b_terms, b_const);
      if (!a_covered || !b_covered) continue;
      // sum(a) <= M * sel
      a_terms.push_back({sel, -big_m});
      ilp.add_constraint(std::move(a_terms), Cmp::le, -a_const);
      // sum(b) <= M * (1 - sel)
      b_terms.push_back({sel, big_m});
      ilp.add_constraint(std::move(b_terms), Cmp::le, big_m - b_const);
    }
  }

  // Persistence-miss terms: misses are bounded by the node's executions
  // and by line_count per loop entry. Emitted for both senses (see the
  // header comment: the minimize optimum pins every miss to zero).
  for (const cfg::SgNode& node : sg_.nodes()) {
    if (!build.region_node[static_cast<std::size_t>(node.id)]) continue;
    const NodeTiming& timing = pipeline_.timing(node.id);
    int term_index = 0;
    for (const PsTerm& ps : timing.ps_terms) {
      const cfg::Loop& loop = loops_.loop(ps.loop_id);
      const int mv = ilp.add_variable("ps_n" + std::to_string(node.id) + '_' +
                                      std::to_string(term_index++));
      // misses <= executions of the node
      std::vector<LinTerm> exec_terms{{mv, Rational(1)}};
      const int src = append_in_flow(spec, edge_var, node.id, Rational(-1), exec_terms);
      ilp.add_constraint(std::move(exec_terms), Cmp::le, Rational(src));
      // misses <= line_count * loop entries
      bool has_virtual_entry = false;
      const std::vector<LinTerm> entries = loop_entry_terms(loop, has_virtual_entry);
      const auto lc = static_cast<std::int64_t>(ps.line_count);
      std::vector<LinTerm> entry_terms{{mv, Rational(1)}};
      for (const LinTerm& t : entries) entry_terms.push_back({t.var, Rational(-lc)});
      ilp.add_constraint(std::move(entry_terms), Cmp::le,
                         Rational(has_virtual_entry ? lc : 0));
      add_obj(build.obj_max, mv, Rational(static_cast<std::int64_t>(ps.penalty)));
      add_obj(build.obj_min, mv, Rational(-static_cast<std::int64_t>(ps.penalty)));
    }
  }

  // Edge extra costs and collapsed-child objectives.
  for (const cfg::SgEdge& edge : sg_.edges()) {
    const int ev = edge_var[static_cast<std::size_t>(edge.id)];
    if (ev < 0) continue;
    const unsigned extra = pipeline_.edge_extra(edge.id);
    if (extra != 0) {
      add_obj(build.obj_max, ev, Rational(static_cast<std::int64_t>(extra)));
      add_obj(build.obj_min, ev, Rational(-static_cast<std::int64_t>(extra)));
    }
    const int child = child_of_call_edge[static_cast<std::size_t>(edge.id)];
    if (child >= 0) {
      // Super edge: one unit of flow buys the subtree's optimal cost.
      const Sub& sub = (*spec.children)[static_cast<std::size_t>(child)];
      add_obj(build.obj_max, ev, sub.objective);
      add_obj(build.obj_min, ev, sub.objective_bcet);
    }
  }
  build.obj_max.resize(static_cast<std::size_t>(ilp.num_variables()));
  build.obj_min.resize(static_cast<std::size_t>(ilp.num_variables()));
  return true;
}

IpetResult Ipet::extract_region(const RegionBuild& build, const RegionSpec& spec,
                                bool maximize, const LpSolution& solution,
                                Rational* objective_out,
                                std::map<int, std::uint64_t>* edge_counts_out) const {
  IpetResult result;
  result.loops_missing_bounds = build.early.loops_missing_bounds;
  result.variables = build.ilp.num_variables();
  result.constraints = build.ilp.num_constraints();
  switch (solution.status) {
  case LpSolution::Status::optimal:
  case LpSolution::Status::degraded:
    break;
  case LpSolution::Status::infeasible:
    result.status = IpetResult::Status::infeasible;
    return result;
  case LpSolution::Status::unbounded:
    result.status = IpetResult::Status::unbounded;
    return result;
  case LpSolution::Status::node_limit:
    result.status = IpetResult::Status::node_limit;
    return result;
  case LpSolution::Status::pivot_limit:
    result.status = IpetResult::Status::pivot_limit;
    return result;
  }

  result.status = IpetResult::Status::ok;
  result.degraded = solution.status == LpSolution::Status::degraded;
  const Rational total = solution.objective + (maximize ? build.offset_max : build.offset_min);
  if (objective_out != nullptr) *objective_out = total;
  const Rational objective = maximize ? total : -total;
  result.bound = static_cast<std::uint64_t>(maximize ? objective.ceil64()
                                                     : objective.floor64());
  // A degraded solve proves only the bound: solution.values is empty,
  // so there is no flow to recover a witness from. The objective still
  // feeds the parent region soundly — an upper bound on the subtree's
  // internal-maximize optimum can only loosen the outer bound upward.
  if (result.degraded) return result;
  // Witness: recover the node counts from the inbound flow.
  for (const cfg::SgNode& node : sg_.nodes()) {
    if (!build.region_node[static_cast<std::size_t>(node.id)]) continue;
    std::vector<LinTerm> terms;
    Rational count(append_in_flow(spec, build.edge_var, node.id, Rational(1), terms));
    for (const LinTerm& t : terms) count += solution.values[static_cast<std::size_t>(t.var)];
    if (!count.is_zero()) {
      result.node_counts[node.id] = static_cast<std::uint64_t>(count.floor64());
    }
  }
  if (edge_counts_out != nullptr) {
    for (const cfg::SgEdge& edge : sg_.edges()) {
      const int ev = build.edge_var[static_cast<std::size_t>(edge.id)];
      if (ev < 0) continue;
      const Rational& count = solution.values[static_cast<std::size_t>(ev)];
      if (!count.is_zero()) {
        (*edge_counts_out)[edge.id] = static_cast<std::uint64_t>(count.floor64());
      }
    }
  }
  return result;
}

IpetResult Ipet::solve_region(const RegionSpec& spec, const IpetOptions& options,
                              Rational* objective_out,
                              std::map<int, std::uint64_t>* edge_counts_out) const {
  RegionBuild build;
  if (!build_region(spec, options, build)) return build.early;
  if (options.maximize && !build.early.loops_missing_bounds.empty()) {
    IpetResult result = std::move(build.early);
    result.status = IpetResult::Status::missing_loop_bounds;
    return result;
  }
  const std::vector<Rational>& objective = options.maximize ? build.obj_max : build.obj_min;
  for (int var = 0; var < build.ilp.num_variables(); ++var) {
    if (!objective[static_cast<std::size_t>(var)].is_zero()) {
      build.ilp.set_objective(var, objective[static_cast<std::size_t>(var)]);
    }
  }
  if (options.lp_dump != nullptr && spec.top_level) *options.lp_dump = build.ilp.to_string();
  const LpSolution solution = build.ilp.solve_ilp(region_limits(options));
  IpetResult result = extract_region(build, spec, options.maximize, solution, objective_out,
                                     edge_counts_out);
  if (result.degraded && options.governor != nullptr) {
    options.governor->record("path", "ilp budget",
                             "region solve truncated by pivot/node cap; bound is the best "
                             "proven frontier bound, no path witness (bound stays sound)");
  }
  return result;
}

std::pair<IpetResult, IpetResult> Ipet::solve_region_both(
    const RegionSpec& spec, const IpetOptions& options, Rational* objective_max_out,
    Rational* objective_min_out, std::map<int, std::uint64_t>* edge_counts_max_out,
    std::map<int, std::uint64_t>* edge_counts_min_out) const {
  RegionBuild build;
  if (!build_region(spec, options, build)) return {build.early, build.early};
  if (!build.early.loops_missing_bounds.empty()) {
    IpetResult result = std::move(build.early);
    result.status = IpetResult::Status::missing_loop_bounds;
    return {std::move(result), IpetResult{}};
  }
  for (int var = 0; var < build.ilp.num_variables(); ++var) {
    if (!build.obj_max[static_cast<std::size_t>(var)].is_zero()) {
      build.ilp.set_objective(var, build.obj_max[static_cast<std::size_t>(var)]);
    }
  }
  const auto [max_solution, min_solution] =
      build.ilp.solve_ilp_pair(build.obj_min, region_limits(options));
  std::pair<IpetResult, IpetResult> out = {
      extract_region(build, spec, true, max_solution, objective_max_out, edge_counts_max_out),
      extract_region(build, spec, false, min_solution, objective_min_out,
                     edge_counts_min_out)};
  if ((out.first.degraded || out.second.degraded) && options.governor != nullptr) {
    options.governor->record("path", "ilp budget",
                             "region solve truncated by pivot/node cap; bound is the best "
                             "proven frontier bound, no path witness (bound stays sound)");
  }
  return out;
}

// ---------------------------------------------------------------------------
// Monolithic solve: the whole supergraph as one region, including every
// annotation-driven coupling constraint. Reference path for the
// decomposed modes and the fallback when no subtree is eligible.
// ---------------------------------------------------------------------------

IpetResult Ipet::solve_monolithic(const IpetOptions& options) const {
  RegionSpec spec;
  spec.source_node = sg_.entry_node();
  spec.top_level = true;
  return solve_region(spec, options);
}

std::pair<IpetResult, IpetResult> Ipet::solve_monolithic_both(const IpetOptions& options) const {
  RegionSpec spec;
  spec.source_node = sg_.entry_node();
  spec.top_level = true;
  return solve_region_both(spec, options, nullptr, nullptr, nullptr, nullptr);
}

} // namespace wcet::analysis
