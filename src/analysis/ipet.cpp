#include "analysis/ipet.hpp"

#include <algorithm>
#include <sstream>

#include "support/diag.hpp"
#include "support/thread_pool.hpp"

namespace wcet::analysis {

Ipet::Ipet(const cfg::Supergraph& sg, const cfg::LoopForest& loops,
           const ValueAnalysis& values, const PipelineAnalysis& pipeline)
    : sg_(sg), loops_(loops), values_(values), pipeline_(pipeline) {}

bool Ipet::node_excluded(int node, const std::set<std::uint32_t>& excluded) const {
  if (excluded.empty()) return false;
  const cfg::CfgBlock& block = *sg_.node(node).block;
  auto it = excluded.lower_bound(block.begin);
  return it != excluded.end() && *it < block.end;
}

// ---------------------------------------------------------------------------
// Decomposed solve.
//
// The supergraph is a tree of function instances; a subtree entered by a
// single call edge whose call site lies outside every loop, leaving only
// through ret edges onto one return site, with no task exit and no dead
// end inside, forms an *independent block* of the IPET ILP: its entry
// count is 0 or 1 in every feasible flow (DAG-condensation argument — a
// node outside all SCCs carries at most the unit source flow), no loop
// or persistence constraint crosses its boundary, and with annotations
// absent nothing else couples it to the rest of the system. The global
// optimum therefore decomposes exactly:
//
//   opt(whole) = opt(outer with subtree collapsed to one variable y,
//                    objective coefficient = opt(subtree | entry = 1))
//
// Each collapsed subtree becomes a small sub-ILP (solved independently,
// fanned out across the thread pool), and the outer problem shrinks by
// the subtree's nodes — the rational simplex scales superlinearly, so
// the split is a large net win on call-tree-shaped workloads. Any
// condition that would break exactness (annotation-driven coupling
// constraints, call site inside a loop, exit/dead-end nodes inside,
// irregular boundary) disqualifies the subtree and it stays in the
// outer region; if a sub-ILP ends non-optimal the solver falls back to
// the monolithic path wholesale.
// ---------------------------------------------------------------------------

IpetResult Ipet::solve(const IpetOptions& options) const {
  const bool plain = options.allow_decomposition && options.flow_caps.empty() &&
                     options.flow_ratios.empty() && options.infeasible_pairs.empty() &&
                     options.excluded_addrs.empty() && options.lp_dump == nullptr;
  if (!plain) return solve_monolithic(options);

  // Copy the memoized plan: each solve fills the subs' objectives.
  std::vector<Sub> subs = decomposition_plan();
  if (subs.empty()) return solve_monolithic(options);

  // Missing-loop-bound pre-check, replicating the monolithic scan order
  // (ascending loop id) and predicates so obstruction lists match.
  if (options.maximize) {
    IpetResult missing;
    for (const cfg::Loop& loop : loops_.loops()) {
      const auto any_feasible = [&](const std::vector<int>& edges) {
        return std::any_of(edges.begin(), edges.end(),
                           [&](int eid) { return values_.edge_feasible(eid); });
      };
      if (!any_feasible(loop.back_edges)) continue;
      if (!any_feasible(loop.entry_edges)) continue;
      if (options.loop_bounds.count(loop.id) != 0) continue;
      missing.loops_missing_bounds.push_back(loop.id);
    }
    if (!missing.loops_missing_bounds.empty()) {
      missing.status = IpetResult::Status::missing_loop_bounds;
      return missing;
    }
  }

  // Solve the independent subtree blocks (entry flow fixed to 1).
  std::vector<IpetResult> sub_results(subs.size());
  const auto solve_sub = [&](std::size_t i) {
    RegionSpec spec;
    spec.member = &subs[i].member;
    spec.source_node = subs[i].entry_node;
    spec.top_level = false;
    spec.sink_ret_edges = &subs[i].ret_edges;
    spec.objective_out = &subs[i].objective;
    sub_results[i] = solve_region(spec, options);
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(subs.size(), solve_sub);
  } else {
    for (std::size_t i = 0; i < subs.size(); ++i) solve_sub(i);
  }
  for (const IpetResult& sub : sub_results) {
    if (!sub.ok()) return solve_monolithic(options); // safety fallback
  }

  // Outer problem over the remaining nodes with one variable per
  // collapsed subtree.
  std::vector<char> outer_member(sg_.nodes().size(), 1);
  for (const Sub& sub : subs) {
    for (std::size_t n = 0; n < sub.member.size(); ++n) {
      if (sub.member[n]) outer_member[n] = 0;
    }
  }
  RegionSpec spec;
  spec.member = &outer_member;
  spec.source_node = sg_.entry_node();
  spec.top_level = true;
  spec.children = &subs;
  std::map<int, std::uint64_t> edge_counts;
  spec.edge_counts_out = &edge_counts;
  IpetResult outer = solve_region(spec, options);
  outer.decomposed_regions = static_cast<int>(subs.size());
  if (!outer.ok()) return outer;

  for (std::size_t i = 0; i < subs.size(); ++i) {
    outer.variables += sub_results[i].variables;
    outer.constraints += sub_results[i].constraints;
    const auto y = edge_counts.find(subs[i].call_edge);
    if (y != edge_counts.end() && y->second > 0) {
      // Entry counts are 0/1, so the subtree witness merges unscaled.
      for (const auto& [node, count] : sub_results[i].node_counts) {
        outer.node_counts[node] = count;
      }
    }
  }
  return outer;
}

const std::vector<Ipet::Sub>& Ipet::decomposition_plan() const {
  if (!plan_ready_) {
    plan_ = plan_decomposition();
    plan_ready_ = true;
  }
  return plan_;
}

std::vector<Ipet::Sub> Ipet::plan_decomposition() const {
  const std::size_t num_nodes = sg_.nodes().size();
  std::size_t total_reachable = 0;
  for (std::size_t n = 0; n < num_nodes; ++n) {
    if (values_.node_reachable(static_cast<int>(n))) ++total_reachable;
  }
  // Below this the monolithic simplex is already fast; skipping keeps
  // small programs (and most unit tests) on the reference path.
  if (total_reachable < 48) return {};

  const auto& instances = sg_.instances();
  // Callers-before-callees order (verified by the export): accumulating
  // subtree sizes in reverse visits every callee before its caller.
  const std::vector<int> topo = sg_.instance_topo_order();
  std::vector<std::vector<int>> children(instances.size());
  std::vector<std::size_t> subtree_nodes(instances.size(), 0);
  for (const int i : topo) {
    subtree_nodes[static_cast<std::size_t>(i)] = sg_.instance_nodes(i).size();
    const int caller = instances[static_cast<std::size_t>(i)].caller_instance;
    if (caller >= 0) children[static_cast<std::size_t>(caller)].push_back(i);
  }
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const int caller = instances[static_cast<std::size_t>(*it)].caller_instance;
    if (caller >= 0) {
      subtree_nodes[static_cast<std::size_t>(caller)] +=
          subtree_nodes[static_cast<std::size_t>(*it)];
    }
  }

  const std::set<int> exit_set(sg_.exit_nodes().begin(), sg_.exit_nodes().end());
  std::vector<Sub> subs;
  // Top-down over the instance tree, ascending ids: collapse the
  // largest eligible subtrees that still leave a meaningful outer
  // problem; recurse past oversized or ineligible ones.
  std::vector<int> stack;
  const auto push_children = [&](int instance) {
    const auto& cs = children[static_cast<std::size_t>(instance)];
    for (auto it = cs.rbegin(); it != cs.rend(); ++it) stack.push_back(*it);
  };
  push_children(0);
  while (!stack.empty()) {
    const int instance = stack.back();
    stack.pop_back();
    const std::size_t size = subtree_nodes[static_cast<std::size_t>(instance)];
    if (size < 8) continue; // sub-ILP overhead beats the saving
    if (size * 5 > total_reachable * 3) {
      push_children(instance);
      continue;
    }
    Sub sub;
    if (subtree_eligible(instance, children, exit_set, sub)) {
      subs.push_back(std::move(sub));
    } else {
      push_children(instance);
    }
  }
  return subs;
}

bool Ipet::subtree_eligible(int instance, const std::vector<std::vector<int>>& children,
                            const std::set<int>& exit_set, Sub& sub) const {
  const cfg::Instance& inst = sg_.instances()[static_cast<std::size_t>(instance)];
  sub.instance = instance;
  sub.call_site = inst.call_site_node;
  if (sub.call_site < 0) return false;
  // Inside a loop the call edge count may exceed 1 and the collapse
  // stops being exact (the sub-ILP optimum is computed per single
  // entry).
  if (loops_.innermost_loop_of(sub.call_site) >= 0) return false;
  if (!values_.node_reachable(sub.call_site)) return false;
  sub.entry_node = sg_.instance_entry_node(instance);
  if (sub.entry_node < 0) return false;
  for (const int eid : sg_.node(sub.call_site).succ_edges) {
    const cfg::SgEdge& e = sg_.edge(eid);
    if (e.kind == cfg::EdgeKind::call && e.to == sub.entry_node) {
      sub.call_edge = eid;
      break;
    }
  }
  if (sub.call_edge < 0 || !values_.edge_feasible(sub.call_edge)) return false;

  sub.member.assign(sg_.nodes().size(), 0);
  std::vector<int> inst_stack{instance};
  while (!inst_stack.empty()) {
    const int i = inst_stack.back();
    inst_stack.pop_back();
    for (const int n : sg_.instance_nodes(i)) sub.member[static_cast<std::size_t>(n)] = 1;
    for (const int c : children[static_cast<std::size_t>(i)]) inst_stack.push_back(c);
  }

  // Boundary and interior scan: the only inbound edge is the call edge;
  // every outbound edge is a ret edge of THIS instance onto one return
  // site; no task exit and no reachable dead end inside (either would
  // let flow end within the subtree, which the collapsed model cannot
  // express).
  for (std::size_t n = 0; n < sub.member.size(); ++n) {
    if (!sub.member[n]) continue;
    const int node_id = static_cast<int>(n);
    if (exit_set.count(node_id) != 0) return false;
    const cfg::SgNode& node = sg_.node(node_id);
    bool any_feasible_out = false;
    for (const int eid : node.succ_edges) {
      const cfg::SgEdge& e = sg_.edge(eid);
      if (sub.member[static_cast<std::size_t>(e.to)]) {
        any_feasible_out = any_feasible_out || values_.edge_feasible(eid);
        continue;
      }
      if (e.kind != cfg::EdgeKind::ret || node.instance != instance) return false;
      if (sub.return_site < 0) {
        sub.return_site = e.to;
      } else if (sub.return_site != e.to) {
        return false;
      }
      sub.ret_edges.push_back(eid);
      any_feasible_out = any_feasible_out || values_.edge_feasible(eid);
    }
    for (const int eid : node.pred_edges) {
      if (!sub.member[static_cast<std::size_t>(sg_.edge(eid).from)] && eid != sub.call_edge) {
        return false;
      }
    }
    if (values_.node_reachable(node_id) && !any_feasible_out) return false;
  }
  return sub.return_site >= 0 && !sub.ret_edges.empty();
}

IpetResult Ipet::solve_region(const RegionSpec& spec, const IpetOptions& options) const {
  IpetResult result;
  IlpProblem ilp;
  const auto in_region = [&](int node) {
    return spec.member == nullptr || (*spec.member)[static_cast<std::size_t>(node)] != 0;
  };

  // Collapsed-child lookups (outer region only).
  std::vector<int> child_of_call_edge(sg_.edges().size(), -1);
  std::vector<int> child_of_ret_edge(sg_.edges().size(), -1);
  if (spec.children != nullptr) {
    for (std::size_t c = 0; c < spec.children->size(); ++c) {
      const Sub& sub = (*spec.children)[c];
      child_of_call_edge[static_cast<std::size_t>(sub.call_edge)] = static_cast<int>(c);
      for (const int eid : sub.ret_edges) {
        child_of_ret_edge[static_cast<std::size_t>(eid)] = static_cast<int>(c);
      }
    }
  }
  std::vector<char> is_sink_edge(sg_.edges().size(), 0);
  if (spec.sink_ret_edges != nullptr) {
    for (const int eid : *spec.sink_ret_edges) is_sink_edge[static_cast<std::size_t>(eid)] = 1;
  }

  // Variables for reachable region nodes, feasible internal edges, and
  // one super-edge variable per collapsed child (its call edge: the
  // subtree's 0/1 entry count).
  std::vector<int> node_var(sg_.nodes().size(), -1);
  std::vector<int> edge_var(sg_.edges().size(), -1);
  for (const cfg::SgNode& node : sg_.nodes()) {
    if (!in_region(node.id) || !values_.node_reachable(node.id)) continue;
    std::ostringstream name;
    name << "n" << node.id;
    node_var[static_cast<std::size_t>(node.id)] = ilp.add_variable(name.str());
  }
  for (const cfg::SgEdge& edge : sg_.edges()) {
    if (child_of_call_edge[static_cast<std::size_t>(edge.id)] >= 0) {
      std::ostringstream name;
      name << "y" << (*spec.children)[static_cast<std::size_t>(
                         child_of_call_edge[static_cast<std::size_t>(edge.id)])]
                        .instance;
      edge_var[static_cast<std::size_t>(edge.id)] = ilp.add_variable(name.str());
      continue;
    }
    if (!values_.edge_feasible(edge.id)) continue;
    if (node_var[static_cast<std::size_t>(edge.from)] < 0 ||
        node_var[static_cast<std::size_t>(edge.to)] < 0) {
      continue;
    }
    std::ostringstream name;
    name << "e" << edge.id;
    edge_var[static_cast<std::size_t>(edge.id)] = ilp.add_variable(name.str());
  }

  // Flow conservation with a virtual source (flow 1 into source_node)
  // and sinks at the task exits (top level) or the subtree's ret edges.
  std::vector<int> exit_vars;
  {
    std::set<int> exit_set;
    if (spec.top_level) exit_set.insert(sg_.exit_nodes().begin(), sg_.exit_nodes().end());
    for (const cfg::SgNode& node : sg_.nodes()) {
      const int nv = node_var[static_cast<std::size_t>(node.id)];
      if (nv < 0) continue;
      // Sum of in-edges (+ virtual entry) == x_node.
      std::vector<LinTerm> in_terms{{nv, Rational(-1)}};
      for (const int eid : node.pred_edges) {
        const int ev = edge_var[static_cast<std::size_t>(eid)];
        if (ev >= 0) in_terms.push_back({ev, Rational(1)});
      }
      if (spec.children != nullptr) {
        // A collapsed child's flow re-emerges at its return site.
        for (const Sub& sub : *spec.children) {
          if (sub.return_site != node.id) continue;
          const int yv = edge_var[static_cast<std::size_t>(sub.call_edge)];
          if (yv >= 0) in_terms.push_back({yv, Rational(1)});
        }
      }
      ilp.add_constraint(std::move(in_terms), Cmp::eq,
                         Rational(node.id == spec.source_node ? -1 : 0));
      // Sum of out-edges (+ sink flow) == x_node.
      std::vector<LinTerm> out_terms{{nv, Rational(-1)}};
      bool made_sink = false;
      for (const int eid : node.succ_edges) {
        const int ev = edge_var[static_cast<std::size_t>(eid)];
        if (ev >= 0) {
          out_terms.push_back({ev, Rational(1)});
          continue;
        }
        if (is_sink_edge[static_cast<std::size_t>(eid)] != 0 && values_.edge_feasible(eid)) {
          // Subtree ret edge: flow leaves the region here; the sink
          // variable carries the edge's extra cost (taken-branch
          // penalty convention) in the objective.
          std::ostringstream name;
          name << "ret" << eid;
          const int sv = ilp.add_variable(name.str());
          exit_vars.push_back(sv);
          out_terms.push_back({sv, Rational(1)});
          const unsigned extra = pipeline_.edge_extra(eid);
          if (extra != 0) {
            ilp.set_objective(sv, Rational(options.maximize
                                               ? static_cast<std::int64_t>(extra)
                                               : -static_cast<std::int64_t>(extra)));
          }
          made_sink = true;
        }
      }
      if (spec.top_level && exit_set.count(node.id) != 0) {
        std::ostringstream name;
        name << "sink" << node.id;
        const int sv = ilp.add_variable(name.str());
        exit_vars.push_back(sv);
        out_terms.push_back({sv, Rational(1)});
      } else if (!made_sink &&
                 (node.succ_edges.empty() ||
                  std::all_of(node.succ_edges.begin(), node.succ_edges.end(), [&](int eid) {
                    return edge_var[static_cast<std::size_t>(eid)] < 0;
                  }))) {
        // Dead end that is not an exit (e.g. unresolved indirect): treat
        // as a sink so the system stays feasible; the driver reports the
        // obstruction separately.
        std::ostringstream name;
        name << "dead" << node.id;
        const int sv = ilp.add_variable(name.str());
        exit_vars.push_back(sv);
        out_terms.push_back({sv, Rational(1)});
      }
      ilp.add_constraint(std::move(out_terms), Cmp::eq, Rational(0));
    }
    std::vector<LinTerm> sink_sum;
    sink_sum.reserve(exit_vars.size());
    for (const int sv : exit_vars) sink_sum.push_back({sv, Rational(1)});
    if (sink_sum.empty()) {
      // No reachable exit: no finite execution to bound.
      result.status = IpetResult::Status::infeasible;
      return result;
    }
    ilp.add_constraint(std::move(sink_sum), Cmp::eq, Rational(1));
  }

  // Loop entry terms of a region loop, substituting a collapsed child's
  // super-edge variable for its ret edges (their counts sum to y: every
  // ret edge targets the return site, so when that site lies in the
  // loop they all enter it) and detecting entries through the virtual
  // source of a sub-region.
  const auto loop_entry_terms = [&](const cfg::Loop& loop, bool& has_virtual_entry) {
    std::vector<LinTerm> terms;
    std::set<int> seen_children;
    has_virtual_entry = false;
    for (const int eid : loop.entry_edges) {
      const int ev = edge_var[static_cast<std::size_t>(eid)];
      if (ev >= 0) {
        terms.push_back({ev, Rational(1)});
        continue;
      }
      const cfg::SgEdge& e = sg_.edge(eid);
      if (in_region(e.from)) continue; // infeasible or unreachable: no flow
      const int child = child_of_ret_edge[static_cast<std::size_t>(eid)];
      if (child >= 0) {
        if (seen_children.insert(child).second) {
          const int yv = edge_var[static_cast<std::size_t>(
              (*spec.children)[static_cast<std::size_t>(child)].call_edge)];
          if (yv >= 0) terms.push_back({yv, Rational(1)});
        }
        continue;
      }
      if (!spec.top_level && e.to == spec.source_node) has_virtual_entry = true;
    }
    return terms;
  };

  // Loop bounds for loops that live in this region (loops never span a
  // collapsed boundary: a cycle through the subtree would have to pass
  // the call site, which eligibility requires to be loop-free).
  for (const cfg::Loop& loop : loops_.loops()) {
    if (!in_region(loop.header)) continue;
    std::vector<LinTerm> back_terms;
    for (const int eid : loop.back_edges) {
      const int ev = edge_var[static_cast<std::size_t>(eid)];
      if (ev >= 0) back_terms.push_back({ev, Rational(1)});
    }
    if (back_terms.empty()) continue; // cycle already broken by infeasibility
    bool has_virtual_entry = false;
    std::vector<LinTerm> entry_terms = loop_entry_terms(loop, has_virtual_entry);
    if (entry_terms.empty() && !has_virtual_entry) {
      // Unreachable loop: force its back edges to zero.
      ilp.add_constraint(std::move(back_terms), Cmp::le, Rational(0));
      continue;
    }
    const auto bound_it = options.loop_bounds.find(loop.id);
    if (bound_it == options.loop_bounds.end()) {
      result.loops_missing_bounds.push_back(loop.id);
      continue;
    }
    // sum(back) - B * sum(entry) <= B * virtual_entries
    const auto bound = static_cast<std::int64_t>(bound_it->second);
    std::vector<LinTerm> terms = std::move(back_terms);
    for (const LinTerm& t : entry_terms) terms.push_back({t.var, Rational(-bound)});
    ilp.add_constraint(std::move(terms), Cmp::le,
                       Rational(has_virtual_entry ? bound : 0));
  }
  if (!result.loops_missing_bounds.empty() && options.maximize) {
    result.status = IpetResult::Status::missing_loop_bounds;
    return result;
  }

  // Objective: cycle-weighted counts (+ persistence miss terms when
  // maximizing).
  for (const cfg::SgNode& node : sg_.nodes()) {
    const int nv = node_var[static_cast<std::size_t>(node.id)];
    if (nv < 0) continue;
    const NodeTiming& timing = pipeline_.timing(node.id);
    const std::uint64_t weight = options.maximize ? timing.ub : timing.lb;
    ilp.set_objective(nv, Rational(options.maximize
                                       ? static_cast<std::int64_t>(weight)
                                       : -static_cast<std::int64_t>(weight)));
    if (options.maximize) {
      int term_index = 0;
      for (const PsTerm& ps : timing.ps_terms) {
        const cfg::Loop& loop = loops_.loop(ps.loop_id);
        std::ostringstream name;
        name << "ps_n" << node.id << '_' << term_index++;
        const int mv = ilp.add_variable(name.str());
        // misses <= executions of the node
        ilp.add_constraint({{mv, Rational(1)}, {nv, Rational(-1)}}, Cmp::le, Rational(0));
        // misses <= line_count * loop entries
        bool has_virtual_entry = false;
        const std::vector<LinTerm> entries = loop_entry_terms(loop, has_virtual_entry);
        const auto lc = static_cast<std::int64_t>(ps.line_count);
        std::vector<LinTerm> entry_terms{{mv, Rational(1)}};
        for (const LinTerm& t : entries) entry_terms.push_back({t.var, Rational(-lc)});
        ilp.add_constraint(std::move(entry_terms), Cmp::le,
                           Rational(has_virtual_entry ? lc : 0));
        ilp.set_objective(mv, Rational(static_cast<std::int64_t>(ps.penalty)));
      }
    }
  }
  for (const cfg::SgEdge& edge : sg_.edges()) {
    const int ev = edge_var[static_cast<std::size_t>(edge.id)];
    if (ev < 0) continue;
    const unsigned extra = pipeline_.edge_extra(edge.id);
    Rational coeff(options.maximize ? static_cast<std::int64_t>(extra)
                                    : -static_cast<std::int64_t>(extra));
    const int child = child_of_call_edge[static_cast<std::size_t>(edge.id)];
    if (child >= 0) {
      // Super edge: one unit of flow buys the subtree's optimal cost.
      coeff += (*spec.children)[static_cast<std::size_t>(child)].objective;
    }
    if (!coeff.is_zero()) ilp.set_objective(ev, coeff);
  }

  result.variables = ilp.num_variables();
  result.constraints = ilp.num_constraints();

  const LpSolution solution = ilp.solve_ilp();
  switch (solution.status) {
  case LpSolution::Status::optimal:
    break;
  case LpSolution::Status::infeasible:
    result.status = IpetResult::Status::infeasible;
    return result;
  case LpSolution::Status::unbounded:
    result.status = IpetResult::Status::unbounded;
    return result;
  case LpSolution::Status::node_limit:
    result.status = IpetResult::Status::node_limit;
    return result;
  }

  result.status = IpetResult::Status::ok;
  if (spec.objective_out != nullptr) *spec.objective_out = solution.objective;
  const Rational objective =
      options.maximize ? solution.objective : -solution.objective;
  result.bound = static_cast<std::uint64_t>(options.maximize ? objective.ceil64()
                                                             : objective.floor64());
  for (const cfg::SgNode& node : sg_.nodes()) {
    const int nv = node_var[static_cast<std::size_t>(node.id)];
    if (nv < 0) continue;
    const Rational& count = solution.values[static_cast<std::size_t>(nv)];
    if (!count.is_zero()) {
      result.node_counts[node.id] = static_cast<std::uint64_t>(count.floor64());
    }
  }
  if (spec.edge_counts_out != nullptr) {
    for (const cfg::SgEdge& edge : sg_.edges()) {
      const int ev = edge_var[static_cast<std::size_t>(edge.id)];
      if (ev < 0) continue;
      const Rational& count = solution.values[static_cast<std::size_t>(ev)];
      if (!count.is_zero()) {
        (*spec.edge_counts_out)[edge.id] =
            static_cast<std::uint64_t>(count.floor64());
      }
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Monolithic solve: the whole supergraph as one ILP, including the
// annotation-driven coupling constraints (flow caps / ratios /
// infeasible pairs / exclusions) that the decomposition cannot split.
// ---------------------------------------------------------------------------

IpetResult Ipet::solve_monolithic(const IpetOptions& options) const {
  IpetResult result;
  IlpProblem ilp;

  // Variables for reachable nodes and feasible edges.
  std::vector<int> node_var(sg_.nodes().size(), -1);
  std::vector<int> edge_var(sg_.edges().size(), -1);
  for (const cfg::SgNode& node : sg_.nodes()) {
    if (!values_.node_reachable(node.id)) continue;
    std::ostringstream name;
    name << "n" << node.id;
    node_var[static_cast<std::size_t>(node.id)] = ilp.add_variable(name.str());
  }
  for (const cfg::SgEdge& edge : sg_.edges()) {
    if (!values_.edge_feasible(edge.id)) continue;
    if (node_var[static_cast<std::size_t>(edge.from)] < 0 ||
        node_var[static_cast<std::size_t>(edge.to)] < 0) {
      continue;
    }
    std::ostringstream name;
    name << "e" << edge.id;
    edge_var[static_cast<std::size_t>(edge.id)] = ilp.add_variable(name.str());
  }

  // Flow conservation with a virtual source (entry, flow 1) and sink.
  std::vector<int> exit_vars;
  {
    std::set<int> exit_set(sg_.exit_nodes().begin(), sg_.exit_nodes().end());
    for (const cfg::SgNode& node : sg_.nodes()) {
      const int nv = node_var[static_cast<std::size_t>(node.id)];
      if (nv < 0) continue;
      // Sum of in-edges (+ virtual entry) == x_node.
      std::vector<LinTerm> in_terms{{nv, Rational(-1)}};
      for (const int eid : node.pred_edges) {
        const int ev = edge_var[static_cast<std::size_t>(eid)];
        if (ev >= 0) in_terms.push_back({ev, Rational(1)});
      }
      ilp.add_constraint(std::move(in_terms), Cmp::eq,
                         Rational(node.id == sg_.entry_node() ? -1 : 0));
      // Sum of out-edges (+ sink flow for exits) == x_node.
      std::vector<LinTerm> out_terms{{nv, Rational(-1)}};
      for (const int eid : node.succ_edges) {
        const int ev = edge_var[static_cast<std::size_t>(eid)];
        if (ev >= 0) out_terms.push_back({ev, Rational(1)});
      }
      if (exit_set.count(node.id) != 0) {
        std::ostringstream name;
        name << "sink" << node.id;
        const int sv = ilp.add_variable(name.str());
        exit_vars.push_back(sv);
        out_terms.push_back({sv, Rational(1)});
      } else if (node.succ_edges.empty() ||
                 std::all_of(node.succ_edges.begin(), node.succ_edges.end(),
                             [&](int eid) {
                               return edge_var[static_cast<std::size_t>(eid)] < 0;
                             })) {
        // Dead end that is not an exit (e.g. unresolved indirect): treat
        // as a sink so the system stays feasible; the driver reports the
        // obstruction separately.
        std::ostringstream name;
        name << "dead" << node.id;
        const int sv = ilp.add_variable(name.str());
        exit_vars.push_back(sv);
        out_terms.push_back({sv, Rational(1)});
      }
      ilp.add_constraint(std::move(out_terms), Cmp::eq, Rational(0));
    }
    std::vector<LinTerm> sink_sum;
    sink_sum.reserve(exit_vars.size());
    for (const int sv : exit_vars) sink_sum.push_back({sv, Rational(1)});
    if (sink_sum.empty()) {
      // No reachable task exit (e.g. a non-terminating loop that only
      // leaves via longjmp): no finite execution to bound.
      result.status = IpetResult::Status::infeasible;
      return result;
    }
    ilp.add_constraint(std::move(sink_sum), Cmp::eq, Rational(1));
  }

  // Loop bounds.
  for (const cfg::Loop& loop : loops_.loops()) {
    // Relevance: the loop participates if any entry edge is feasible.
    std::vector<LinTerm> entry_terms;
    for (const int eid : loop.entry_edges) {
      const int ev = edge_var[static_cast<std::size_t>(eid)];
      if (ev >= 0) entry_terms.push_back({ev, Rational(1)});
    }
    std::vector<LinTerm> back_terms;
    for (const int eid : loop.back_edges) {
      const int ev = edge_var[static_cast<std::size_t>(eid)];
      if (ev >= 0) back_terms.push_back({ev, Rational(1)});
    }
    if (back_terms.empty()) continue; // cycle already broken by infeasibility
    if (entry_terms.empty()) {
      // Unreachable loop: force its back edges to zero.
      ilp.add_constraint(std::move(back_terms), Cmp::le, Rational(0));
      continue;
    }
    const auto bound_it = options.loop_bounds.find(loop.id);
    if (bound_it == options.loop_bounds.end()) {
      result.loops_missing_bounds.push_back(loop.id);
      continue;
    }
    // sum(back) - B * sum(entry) <= 0
    std::vector<LinTerm> terms = std::move(back_terms);
    for (LinTerm& t : entry_terms) {
      terms.push_back({t.var, Rational(-static_cast<std::int64_t>(bound_it->second))});
    }
    ilp.add_constraint(std::move(terms), Cmp::le, Rational(0));
  }
  if (!result.loops_missing_bounds.empty() && options.maximize) {
    result.status = IpetResult::Status::missing_loop_bounds;
    return result;
  }

  // Helper: all node variables whose block covers `addr`.
  const auto nodes_at = [&](std::uint32_t addr) {
    std::vector<int> vars;
    for (const cfg::SgNode& node : sg_.nodes()) {
      const int nv = node_var[static_cast<std::size_t>(node.id)];
      if (nv < 0) continue;
      if (addr >= node.block->begin && addr < node.block->end) vars.push_back(nv);
    }
    return vars;
  };

  // Operating-mode / never-executed exclusions.
  for (const std::uint32_t addr : options.excluded_addrs) {
    std::vector<LinTerm> terms;
    for (const int nv : nodes_at(addr)) terms.push_back({nv, Rational(1)});
    if (!terms.empty()) ilp.add_constraint(std::move(terms), Cmp::le, Rational(0));
  }

  // Absolute flow caps.
  for (const auto& cap : options.flow_caps) {
    std::vector<LinTerm> terms;
    for (const int nv : nodes_at(cap.addr)) terms.push_back({nv, Rational(1)});
    if (!terms.empty()) {
      ilp.add_constraint(std::move(terms), Cmp::le,
                         Rational(static_cast<std::int64_t>(cap.max_count)));
    }
  }

  // Relative flow facts: count(a) <= f * count(b).
  for (const auto& ratio : options.flow_ratios) {
    std::vector<LinTerm> terms;
    for (const int nv : nodes_at(ratio.addr)) terms.push_back({nv, Rational(1)});
    for (const int nv : nodes_at(ratio.relative_to)) {
      terms.push_back({nv, Rational(-static_cast<std::int64_t>(ratio.factor))});
    }
    if (!terms.empty()) ilp.add_constraint(std::move(terms), Cmp::le, Rational(0));
  }

  // Infeasible pairs: big-M disjunction with a binary selector.
  const auto big_m = Rational(static_cast<std::int64_t>(options.infeasible_pair_big_m));
  int pair_index = 0;
  for (const auto& pair : options.infeasible_pairs) {
    std::ostringstream name;
    name << "excl" << pair_index++;
    const int sel = ilp.add_variable(name.str());
    ilp.add_constraint({{sel, Rational(1)}}, Cmp::le, Rational(1));
    std::vector<LinTerm> a_terms;
    for (const int nv : nodes_at(pair.a)) a_terms.push_back({nv, Rational(1)});
    std::vector<LinTerm> b_terms;
    for (const int nv : nodes_at(pair.b)) b_terms.push_back({nv, Rational(1)});
    if (a_terms.empty() || b_terms.empty()) continue;
    // sum(a) <= M * sel
    a_terms.push_back({sel, -big_m});
    ilp.add_constraint(std::move(a_terms), Cmp::le, Rational(0));
    // sum(b) <= M * (1 - sel)
    b_terms.push_back({sel, big_m});
    ilp.add_constraint(std::move(b_terms), Cmp::le, big_m);
  }

  // Objective: cycle-weighted counts (+ persistence miss terms when
  // maximizing).
  for (const cfg::SgNode& node : sg_.nodes()) {
    const int nv = node_var[static_cast<std::size_t>(node.id)];
    if (nv < 0) continue;
    const NodeTiming& timing = pipeline_.timing(node.id);
    const std::uint64_t weight = options.maximize ? timing.ub : timing.lb;
    ilp.set_objective(nv, Rational(options.maximize
                                       ? static_cast<std::int64_t>(weight)
                                       : -static_cast<std::int64_t>(weight)));
    if (options.maximize) {
      int term_index = 0;
      for (const PsTerm& ps : timing.ps_terms) {
        const cfg::Loop& loop = loops_.loop(ps.loop_id);
        std::ostringstream name;
        name << "ps_n" << node.id << '_' << term_index++;
        const int mv = ilp.add_variable(name.str());
        // misses <= executions of the node
        ilp.add_constraint({{mv, Rational(1)}, {nv, Rational(-1)}}, Cmp::le, Rational(0));
        // misses <= line_count * loop entries
        std::vector<LinTerm> entry_terms{{mv, Rational(1)}};
        for (const int eid : loop.entry_edges) {
          const int ev = edge_var[static_cast<std::size_t>(eid)];
          if (ev >= 0) {
            entry_terms.push_back(
                {ev, Rational(-static_cast<std::int64_t>(ps.line_count))});
          }
        }
        ilp.add_constraint(std::move(entry_terms), Cmp::le, Rational(0));
        ilp.set_objective(mv, Rational(static_cast<std::int64_t>(ps.penalty)));
      }
    }
  }
  for (const cfg::SgEdge& edge : sg_.edges()) {
    const int ev = edge_var[static_cast<std::size_t>(edge.id)];
    if (ev < 0) continue;
    const unsigned extra = pipeline_.edge_extra(edge.id);
    if (extra == 0) continue;
    ilp.set_objective(ev, Rational(options.maximize ? static_cast<std::int64_t>(extra)
                                                    : -static_cast<std::int64_t>(extra)));
  }

  result.variables = ilp.num_variables();
  result.constraints = ilp.num_constraints();
  if (options.lp_dump != nullptr) *options.lp_dump = ilp.to_string();

  const LpSolution solution = ilp.solve_ilp();
  switch (solution.status) {
  case LpSolution::Status::optimal:
    break;
  case LpSolution::Status::infeasible:
    result.status = IpetResult::Status::infeasible;
    return result;
  case LpSolution::Status::unbounded:
    result.status = IpetResult::Status::unbounded;
    return result;
  case LpSolution::Status::node_limit:
    result.status = IpetResult::Status::node_limit;
    return result;
  }

  result.status = IpetResult::Status::ok;
  const Rational objective =
      options.maximize ? solution.objective : -solution.objective;
  result.bound = static_cast<std::uint64_t>(options.maximize ? objective.ceil64()
                                                             : objective.floor64());
  for (const cfg::SgNode& node : sg_.nodes()) {
    const int nv = node_var[static_cast<std::size_t>(node.id)];
    if (nv < 0) continue;
    const Rational& count = solution.values[static_cast<std::size_t>(nv)];
    if (!count.is_zero()) {
      result.node_counts[node.id] = static_cast<std::uint64_t>(count.floor64());
    }
  }
  return result;
}

} // namespace wcet::analysis
