#include "analysis/ipet.hpp"

#include <algorithm>
#include <sstream>

#include "support/diag.hpp"

namespace wcet::analysis {

Ipet::Ipet(const cfg::Supergraph& sg, const cfg::LoopForest& loops,
           const ValueAnalysis& values, const PipelineAnalysis& pipeline)
    : sg_(sg), loops_(loops), values_(values), pipeline_(pipeline) {}

bool Ipet::node_excluded(int node, const std::set<std::uint32_t>& excluded) const {
  if (excluded.empty()) return false;
  const cfg::CfgBlock& block = *sg_.node(node).block;
  auto it = excluded.lower_bound(block.begin);
  return it != excluded.end() && *it < block.end;
}

IpetResult Ipet::solve(const IpetOptions& options) const {
  IpetResult result;
  IlpProblem ilp;

  // Variables for reachable nodes and feasible edges.
  std::vector<int> node_var(sg_.nodes().size(), -1);
  std::vector<int> edge_var(sg_.edges().size(), -1);
  for (const cfg::SgNode& node : sg_.nodes()) {
    if (!values_.node_reachable(node.id)) continue;
    std::ostringstream name;
    name << "n" << node.id;
    node_var[static_cast<std::size_t>(node.id)] = ilp.add_variable(name.str());
  }
  for (const cfg::SgEdge& edge : sg_.edges()) {
    if (!values_.edge_feasible(edge.id)) continue;
    if (node_var[static_cast<std::size_t>(edge.from)] < 0 ||
        node_var[static_cast<std::size_t>(edge.to)] < 0) {
      continue;
    }
    std::ostringstream name;
    name << "e" << edge.id;
    edge_var[static_cast<std::size_t>(edge.id)] = ilp.add_variable(name.str());
  }

  // Flow conservation with a virtual source (entry, flow 1) and sink.
  std::vector<int> exit_vars;
  {
    std::set<int> exit_set(sg_.exit_nodes().begin(), sg_.exit_nodes().end());
    for (const cfg::SgNode& node : sg_.nodes()) {
      const int nv = node_var[static_cast<std::size_t>(node.id)];
      if (nv < 0) continue;
      // Sum of in-edges (+ virtual entry) == x_node.
      std::vector<LinTerm> in_terms{{nv, Rational(-1)}};
      for (const int eid : node.pred_edges) {
        const int ev = edge_var[static_cast<std::size_t>(eid)];
        if (ev >= 0) in_terms.push_back({ev, Rational(1)});
      }
      ilp.add_constraint(std::move(in_terms), Cmp::eq,
                         Rational(node.id == sg_.entry_node() ? -1 : 0));
      // Sum of out-edges (+ sink flow for exits) == x_node.
      std::vector<LinTerm> out_terms{{nv, Rational(-1)}};
      for (const int eid : node.succ_edges) {
        const int ev = edge_var[static_cast<std::size_t>(eid)];
        if (ev >= 0) out_terms.push_back({ev, Rational(1)});
      }
      if (exit_set.count(node.id) != 0) {
        std::ostringstream name;
        name << "sink" << node.id;
        const int sv = ilp.add_variable(name.str());
        exit_vars.push_back(sv);
        out_terms.push_back({sv, Rational(1)});
      } else if (node.succ_edges.empty() ||
                 std::all_of(node.succ_edges.begin(), node.succ_edges.end(),
                             [&](int eid) {
                               return edge_var[static_cast<std::size_t>(eid)] < 0;
                             })) {
        // Dead end that is not an exit (e.g. unresolved indirect): treat
        // as a sink so the system stays feasible; the driver reports the
        // obstruction separately.
        std::ostringstream name;
        name << "dead" << node.id;
        const int sv = ilp.add_variable(name.str());
        exit_vars.push_back(sv);
        out_terms.push_back({sv, Rational(1)});
      }
      ilp.add_constraint(std::move(out_terms), Cmp::eq, Rational(0));
    }
    std::vector<LinTerm> sink_sum;
    sink_sum.reserve(exit_vars.size());
    for (const int sv : exit_vars) sink_sum.push_back({sv, Rational(1)});
    if (sink_sum.empty()) {
      // No reachable task exit (e.g. a non-terminating loop that only
      // leaves via longjmp): no finite execution to bound.
      result.status = IpetResult::Status::infeasible;
      return result;
    }
    ilp.add_constraint(std::move(sink_sum), Cmp::eq, Rational(1));
  }

  // Loop bounds.
  for (const cfg::Loop& loop : loops_.loops()) {
    // Relevance: the loop participates if any entry edge is feasible.
    std::vector<LinTerm> entry_terms;
    for (const int eid : loop.entry_edges) {
      const int ev = edge_var[static_cast<std::size_t>(eid)];
      if (ev >= 0) entry_terms.push_back({ev, Rational(1)});
    }
    std::vector<LinTerm> back_terms;
    for (const int eid : loop.back_edges) {
      const int ev = edge_var[static_cast<std::size_t>(eid)];
      if (ev >= 0) back_terms.push_back({ev, Rational(1)});
    }
    if (back_terms.empty()) continue; // cycle already broken by infeasibility
    if (entry_terms.empty()) {
      // Unreachable loop: force its back edges to zero.
      ilp.add_constraint(std::move(back_terms), Cmp::le, Rational(0));
      continue;
    }
    const auto bound_it = options.loop_bounds.find(loop.id);
    if (bound_it == options.loop_bounds.end()) {
      result.loops_missing_bounds.push_back(loop.id);
      continue;
    }
    // sum(back) - B * sum(entry) <= 0
    std::vector<LinTerm> terms = std::move(back_terms);
    for (LinTerm& t : entry_terms) {
      terms.push_back({t.var, Rational(-static_cast<std::int64_t>(bound_it->second))});
    }
    ilp.add_constraint(std::move(terms), Cmp::le, Rational(0));
  }
  if (!result.loops_missing_bounds.empty() && options.maximize) {
    result.status = IpetResult::Status::missing_loop_bounds;
    return result;
  }

  // Helper: all node variables whose block covers `addr`.
  const auto nodes_at = [&](std::uint32_t addr) {
    std::vector<int> vars;
    for (const cfg::SgNode& node : sg_.nodes()) {
      const int nv = node_var[static_cast<std::size_t>(node.id)];
      if (nv < 0) continue;
      if (addr >= node.block->begin && addr < node.block->end) vars.push_back(nv);
    }
    return vars;
  };

  // Operating-mode / never-executed exclusions.
  for (const std::uint32_t addr : options.excluded_addrs) {
    std::vector<LinTerm> terms;
    for (const int nv : nodes_at(addr)) terms.push_back({nv, Rational(1)});
    if (!terms.empty()) ilp.add_constraint(std::move(terms), Cmp::le, Rational(0));
  }

  // Absolute flow caps.
  for (const auto& cap : options.flow_caps) {
    std::vector<LinTerm> terms;
    for (const int nv : nodes_at(cap.addr)) terms.push_back({nv, Rational(1)});
    if (!terms.empty()) {
      ilp.add_constraint(std::move(terms), Cmp::le,
                         Rational(static_cast<std::int64_t>(cap.max_count)));
    }
  }

  // Relative flow facts: count(a) <= f * count(b).
  for (const auto& ratio : options.flow_ratios) {
    std::vector<LinTerm> terms;
    for (const int nv : nodes_at(ratio.addr)) terms.push_back({nv, Rational(1)});
    for (const int nv : nodes_at(ratio.relative_to)) {
      terms.push_back({nv, Rational(-static_cast<std::int64_t>(ratio.factor))});
    }
    if (!terms.empty()) ilp.add_constraint(std::move(terms), Cmp::le, Rational(0));
  }

  // Infeasible pairs: big-M disjunction with a binary selector.
  const auto big_m = Rational(static_cast<std::int64_t>(options.infeasible_pair_big_m));
  int pair_index = 0;
  for (const auto& pair : options.infeasible_pairs) {
    std::ostringstream name;
    name << "excl" << pair_index++;
    const int sel = ilp.add_variable(name.str());
    ilp.add_constraint({{sel, Rational(1)}}, Cmp::le, Rational(1));
    std::vector<LinTerm> a_terms;
    for (const int nv : nodes_at(pair.a)) a_terms.push_back({nv, Rational(1)});
    std::vector<LinTerm> b_terms;
    for (const int nv : nodes_at(pair.b)) b_terms.push_back({nv, Rational(1)});
    if (a_terms.empty() || b_terms.empty()) continue;
    // sum(a) <= M * sel
    a_terms.push_back({sel, -big_m});
    ilp.add_constraint(std::move(a_terms), Cmp::le, Rational(0));
    // sum(b) <= M * (1 - sel)
    b_terms.push_back({sel, big_m});
    ilp.add_constraint(std::move(b_terms), Cmp::le, big_m);
  }

  // Objective: cycle-weighted counts (+ persistence miss terms when
  // maximizing).
  for (const cfg::SgNode& node : sg_.nodes()) {
    const int nv = node_var[static_cast<std::size_t>(node.id)];
    if (nv < 0) continue;
    const NodeTiming& timing = pipeline_.timing(node.id);
    const std::uint64_t weight = options.maximize ? timing.ub : timing.lb;
    ilp.set_objective(nv, Rational(options.maximize
                                       ? static_cast<std::int64_t>(weight)
                                       : -static_cast<std::int64_t>(weight)));
    if (options.maximize) {
      int term_index = 0;
      for (const PsTerm& ps : timing.ps_terms) {
        const cfg::Loop& loop = loops_.loop(ps.loop_id);
        std::ostringstream name;
        name << "ps_n" << node.id << '_' << term_index++;
        const int mv = ilp.add_variable(name.str());
        // misses <= executions of the node
        ilp.add_constraint({{mv, Rational(1)}, {nv, Rational(-1)}}, Cmp::le, Rational(0));
        // misses <= line_count * loop entries
        std::vector<LinTerm> entry_terms{{mv, Rational(1)}};
        for (const int eid : loop.entry_edges) {
          const int ev = edge_var[static_cast<std::size_t>(eid)];
          if (ev >= 0) {
            entry_terms.push_back(
                {ev, Rational(-static_cast<std::int64_t>(ps.line_count))});
          }
        }
        ilp.add_constraint(std::move(entry_terms), Cmp::le, Rational(0));
        ilp.set_objective(mv, Rational(static_cast<std::int64_t>(ps.penalty)));
      }
    }
  }
  for (const cfg::SgEdge& edge : sg_.edges()) {
    const int ev = edge_var[static_cast<std::size_t>(edge.id)];
    if (ev < 0) continue;
    const unsigned extra = pipeline_.edge_extra(edge.id);
    if (extra == 0) continue;
    ilp.set_objective(ev, Rational(options.maximize ? static_cast<std::int64_t>(extra)
                                                    : -static_cast<std::int64_t>(extra)));
  }

  result.variables = ilp.num_variables();
  result.constraints = ilp.num_constraints();
  if (options.lp_dump != nullptr) *options.lp_dump = ilp.to_string();

  const LpSolution solution = ilp.solve_ilp();
  switch (solution.status) {
  case LpSolution::Status::optimal:
    break;
  case LpSolution::Status::infeasible:
    result.status = IpetResult::Status::infeasible;
    return result;
  case LpSolution::Status::unbounded:
    result.status = IpetResult::Status::unbounded;
    return result;
  case LpSolution::Status::node_limit:
    result.status = IpetResult::Status::node_limit;
    return result;
  }

  result.status = IpetResult::Status::ok;
  const Rational objective =
      options.maximize ? solution.objective : -solution.objective;
  result.bound = static_cast<std::uint64_t>(options.maximize ? objective.ceil64()
                                                             : objective.floor64());
  for (const cfg::SgNode& node : sg_.nodes()) {
    const int nv = node_var[static_cast<std::size_t>(node.id)];
    if (nv < 0) continue;
    const Rational& count = solution.values[static_cast<std::size_t>(nv)];
    if (!count.is_zero()) {
      result.node_counts[node.id] = static_cast<std::uint64_t>(count.floor64());
    }
  }
  return result;
}

} // namespace wcet::analysis
