#include "analysis/ipet.hpp"

#include <algorithm>
#include <string>

#include "support/diag.hpp"
#include "support/thread_pool.hpp"

namespace wcet::analysis {

namespace {

// Per-region resource envelope. The governor's node cap can only
// tighten the built-in 20000-node safety limit, never raise it.
SolveLimits region_limits(const IpetOptions& options) {
  SolveLimits limits;
  if (options.governor != nullptr) {
    const std::uint64_t nodes = options.governor->ilp_node_limit();
    if (nodes != 0) {
      limits.node_limit = static_cast<int>(
          std::min<std::uint64_t>(nodes, static_cast<std::uint64_t>(limits.node_limit)));
    }
    limits.pivot_limit = options.governor->pivot_limit();
    limits.governor = options.governor;
  }
  return limits;
}

} // namespace

Ipet::Ipet(const cfg::Supergraph& sg, const cfg::LoopForest& loops,
           const ValueAnalysis& values, const PipelineAnalysis& pipeline)
    : sg_(sg), loops_(loops), values_(values), pipeline_(pipeline) {}

// ---------------------------------------------------------------------------
// Decomposed solve.
//
// The supergraph is a tree of function instances; a subtree entered by a
// single call edge whose call site lies outside every loop, leaving only
// through ret edges onto one return site, with no task exit and no dead
// end inside, forms an *independent block* of the IPET ILP: its entry
// count is 0 or 1 in every feasible flow (DAG-condensation argument — a
// node outside all SCCs carries at most the unit source flow), no loop
// or persistence constraint crosses its boundary, and when no flow fact
// touches its nodes nothing else couples it to the rest of the system.
// The global optimum therefore decomposes exactly:
//
//   opt(whole) = opt(outer with subtree collapsed to one variable y,
//                    objective coefficient = opt(subtree | entry = 1))
//
// Planning re-enters each collapsed subtree (recursive mode), so a deep
// call tree becomes a tree of small sub-ILPs instead of one monolithic
// sub-solve. The sub-ILPs fan out across the thread pool one nesting
// level at a time — deepest level first, ascending instance order
// within a level — so every child objective is ready before its parent
// region solves and the schedule is deterministic for any worker count.
//
// Annotation-driven flow facts (caps / ratios / infeasible pairs /
// exclusions) no longer disable decomposition wholesale: each fact pins
// exactly the subtrees whose member nodes it constrains (the coupling a
// collapsed block cannot express), those subtrees stay in the outer
// region, and the facts are emitted as outer-region constraints. Any
// other condition that would break exactness (call site inside a loop,
// exit/dead-end nodes inside, irregular boundary) disqualifies the
// subtree during planning; if a sub-ILP ends non-optimal the solver
// falls back to the monolithic path wholesale.
// ---------------------------------------------------------------------------

int Ipet::plan_stats(const std::vector<Sub>& subs, int* total_subs) {
  int depth = 0;
  for (const Sub& sub : subs) {
    if (total_subs != nullptr) ++*total_subs;
    depth = std::max(depth, 1 + plan_stats(sub.children, total_subs));
  }
  return depth;
}

std::vector<Ipet::Sub> Ipet::planned_subs(const IpetOptions& options) const {
  // Copy the memoized plan: each solve fills the subs' objectives.
  std::vector<Sub> subs = decomposition_plan();
  if (options.decomposition == IpetDecomposition::flat) {
    for (Sub& sub : subs) sub.children.clear();
  }
  const std::vector<char> pinned = constrained_nodes(options);
  if (!pinned.empty()) subs = prune_pinned(std::move(subs), pinned);
  return subs;
}

std::vector<int> Ipet::missing_loop_bounds_in(const IpetOptions& options) const {
  // Replicates the monolithic scan order (ascending loop id) and
  // predicates so obstruction lists match the reference path.
  std::vector<int> missing;
  for (const cfg::Loop& loop : loops_.loops()) {
    const auto any_feasible = [&](const std::vector<int>& edges) {
      return std::any_of(edges.begin(), edges.end(),
                         [&](int eid) { return values_.edge_feasible(eid); });
    };
    if (!any_feasible(loop.back_edges)) continue;
    if (!any_feasible(loop.entry_edges)) continue;
    if (options.loop_bounds.count(loop.id) != 0) continue;
    missing.push_back(loop.id);
  }
  return missing;
}

bool Ipet::solve_graph(std::vector<Sub>& subs, const IpetOptions& options, bool both) const {
  // Flatten the sub-ILP forest in plan (preorder) order and hand it to
  // the pool as a dependency-counted task graph: a region is
  // dispatched the instant its last child publishes, instead of every
  // region at depth d waiting behind a barrier for the slowest region
  // at depth d+1. Results stay bit-identical for any worker count
  // because each solve_sub is a pure function of its own region and
  // its children's stored results, written to its own Sub slot; no
  // cross-task order is observable.
  std::vector<Sub*> tasks;
  std::vector<int> parent;
  std::vector<int> pending;
  const auto flatten = [&](auto&& self, std::vector<Sub>& list, int parent_index) -> void {
    for (Sub& sub : list) {
      const int index = static_cast<int>(tasks.size());
      tasks.push_back(&sub);
      parent.push_back(parent_index);
      pending.push_back(static_cast<int>(sub.children.size()));
      self(self, sub.children, index);
    }
  };
  flatten(flatten, subs, -1);
  const auto solve_one = [&](std::size_t i) {
    Sub& sub = *tasks[i];
    for (const Sub& child : sub.children) {
      // A failed child poisons the plan; skipping the parent leaves
      // its default (infeasible) result to report the failure below.
      if (!child.result.ok() || (both && !child.result_bcet.ok())) return;
    }
    if (both) {
      solve_sub_both(sub, options);
    } else {
      solve_sub(sub, options);
    }
  };
  if (pool_ != nullptr) {
    pool_->run_graph(tasks.size(), solve_one, parent, pending);
  } else {
    // Same graph drained sequentially: leaves in flatten order, then
    // each parent as its countdown clears.
    std::vector<std::size_t> ready;
    ready.reserve(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (pending[i] == 0) ready.push_back(i);
    }
    for (std::size_t qi = 0; qi < ready.size(); ++qi) {
      const std::size_t task = ready[qi];
      solve_one(task);
      const int p = parent[task];
      if (p >= 0 && --pending[static_cast<std::size_t>(p)] == 0) {
        ready.push_back(static_cast<std::size_t>(p));
      }
    }
  }
  for (const Sub* sub : tasks) {
    if (!sub->result.ok()) return false;
    if (both && !sub->result_bcet.ok()) return false;
  }
  return true;
}

void Ipet::merge_sub_results(IpetResult& outer, const std::vector<Sub>& subs,
                             const std::map<int, std::uint64_t>& edge_counts,
                             bool bcet_sense) {
  if (!outer.ok()) return;
  for (const Sub& sub : subs) {
    const IpetResult& sub_result = bcet_sense ? sub.result_bcet : sub.result;
    outer.variables += sub_result.variables;
    outer.constraints += sub_result.constraints;
    outer.degraded = outer.degraded || sub_result.degraded;
    // Solver telemetry aggregates bottom-up: each sub's result already
    // carries its own children's share (solve_sub merged them).
    outer.phase1_pivots += sub_result.phase1_pivots;
    outer.phase2_pivots += sub_result.phase2_pivots;
    outer.crash_basis_rows += sub_result.crash_basis_rows;
    outer.sese_regions += sub_result.sese_regions + (sub.sese ? 1 : 0);
    const auto y = edge_counts.find(sub.call_edge);
    if (y != edge_counts.end() && y->second > 0) {
      // Entry counts are 0/1, so the subtree witness merges unscaled.
      for (const auto& [node, count] : sub_result.node_counts) {
        outer.node_counts[node] = count;
      }
    }
  }
}

IpetResult Ipet::solve(const IpetOptions& options) const {
  // lp_dump wants the one whole-system ILP; monolithic is the reference
  // path every decomposition mode must reproduce bit-identically.
  if (options.decomposition == IpetDecomposition::monolithic || options.lp_dump != nullptr) {
    return solve_monolithic(options);
  }
  std::vector<Sub> subs = planned_subs(options);
  if (subs.empty()) return solve_monolithic(options);

  if (options.maximize) {
    IpetResult missing;
    missing.loops_missing_bounds = missing_loop_bounds_in(options);
    if (!missing.loops_missing_bounds.empty()) {
      missing.status = IpetResult::Status::missing_loop_bounds;
      return missing;
    }
  }

  int total_subs = 0;
  const int plan_depth = plan_stats(subs, &total_subs);
  if (!solve_graph(subs, options, /*both=*/false)) {
    // Safety/fallback ladder: a failed sub-solve (structurally, or out
    // of pivot budget) first retries with the shallower flat plan, then
    // gives up on decomposition entirely.
    if (options.decomposition == IpetDecomposition::recursive) {
      if (options.governor != nullptr) {
        options.governor->record("path", "sub-solve failure",
                                 "recursive decomposition fell back to flat");
      }
      IpetOptions flat = options;
      flat.decomposition = IpetDecomposition::flat;
      return solve(flat);
    }
    if (options.governor != nullptr) {
      options.governor->record("path", "sub-solve failure",
                               "decomposition fell back to monolithic");
    }
    return solve_monolithic(options);
  }

  // Outer problem over the remaining nodes with one variable per
  // collapsed top-level subtree.
  std::vector<char> outer_member(sg_.nodes().size(), 1);
  for (const Sub& sub : subs) {
    for (std::size_t n = 0; n < sub.member.size(); ++n) {
      if (sub.member[n]) outer_member[n] = 0;
    }
  }
  RegionSpec spec;
  spec.member = &outer_member;
  spec.source_node = sg_.entry_node();
  spec.top_level = true;
  spec.children = &subs;
  std::map<int, std::uint64_t> edge_counts;
  IpetResult outer = solve_region(spec, options, nullptr, &edge_counts);
  outer.decomposed_regions = static_cast<int>(subs.size());
  outer.sub_ilps = total_subs;
  outer.decomposition_depth = plan_depth;
  // Single-sense sub solves always store into sub.result (the sense
  // lives in the objective they filled), so merge from that slot.
  merge_sub_results(outer, subs, edge_counts, /*bcet_sense=*/false);
  return outer;
}

std::pair<IpetResult, IpetResult> Ipet::solve_both(const IpetOptions& options) const {
  if (options.lp_dump != nullptr) {
    // Dump semantics belong to the single-sense reference path.
    IpetOptions single = options;
    single.maximize = true;
    IpetResult wcet = solve(single);
    single.maximize = false;
    return {std::move(wcet), solve(single)};
  }
  if (options.decomposition == IpetDecomposition::monolithic) {
    return solve_monolithic_both(options);
  }
  std::vector<Sub> subs = planned_subs(options);
  if (subs.empty()) return solve_monolithic_both(options);

  // Missing-loop-bound pre-check for the WCET half; the BCET half is
  // skipped then, matching the driver's convention.
  {
    IpetResult missing;
    missing.loops_missing_bounds = missing_loop_bounds_in(options);
    if (!missing.loops_missing_bounds.empty()) {
      missing.status = IpetResult::Status::missing_loop_bounds;
      return {std::move(missing), IpetResult{}};
    }
  }

  int total_subs = 0;
  const int plan_depth = plan_stats(subs, &total_subs);
  if (!solve_graph(subs, options, /*both=*/true)) {
    // Same fallback ladder as solve(): recursive -> flat -> monolithic.
    if (options.decomposition == IpetDecomposition::recursive) {
      if (options.governor != nullptr) {
        options.governor->record("path", "sub-solve failure",
                                 "recursive decomposition fell back to flat");
      }
      IpetOptions flat = options;
      flat.decomposition = IpetDecomposition::flat;
      return solve_both(flat);
    }
    if (options.governor != nullptr) {
      options.governor->record("path", "sub-solve failure",
                               "decomposition fell back to monolithic");
    }
    return solve_monolithic_both(options);
  }

  std::vector<char> outer_member(sg_.nodes().size(), 1);
  for (const Sub& sub : subs) {
    for (std::size_t n = 0; n < sub.member.size(); ++n) {
      if (sub.member[n]) outer_member[n] = 0;
    }
  }
  RegionSpec spec;
  spec.member = &outer_member;
  spec.source_node = sg_.entry_node();
  spec.top_level = true;
  spec.children = &subs;
  std::map<int, std::uint64_t> edge_counts_max;
  std::map<int, std::uint64_t> edge_counts_min;
  auto [wcet, bcet] =
      solve_region_both(spec, options, nullptr, nullptr, &edge_counts_max, &edge_counts_min);
  for (IpetResult* outer : {&wcet, &bcet}) {
    outer->decomposed_regions = static_cast<int>(subs.size());
    outer->sub_ilps = total_subs;
    outer->decomposition_depth = plan_depth;
  }
  merge_sub_results(wcet, subs, edge_counts_max, /*bcet_sense=*/false);
  merge_sub_results(bcet, subs, edge_counts_min, /*bcet_sense=*/true);
  return {std::move(wcet), std::move(bcet)};
}

// The region of a collapsed subtree is the subtree minus its own
// collapsed children; fills `member` and returns the region spec.
Ipet::RegionSpec Ipet::sub_region_spec(Sub& sub, std::vector<char>& member) {
  member = sub.member;
  for (const Sub& child : sub.children) {
    for (std::size_t n = 0; n < child.member.size(); ++n) {
      if (child.member[n]) member[n] = 0;
    }
  }
  RegionSpec spec;
  spec.member = &member;
  spec.source_node = sub.entry_node;
  spec.top_level = false;
  spec.sink_ret_edges = &sub.ret_edges;
  if (!sub.children.empty()) spec.children = &sub.children;
  return spec;
}

void Ipet::solve_sub(Sub& sub, const IpetOptions& options) const {
  std::vector<char> member;
  const RegionSpec spec = sub_region_spec(sub, member);
  std::map<int, std::uint64_t> edge_counts;
  Rational* objective_out = options.maximize ? &sub.objective : &sub.objective_bcet;
  sub.result = solve_region(spec, options, objective_out,
                            sub.children.empty() ? nullptr : &edge_counts);
  merge_sub_results(sub.result, sub.children, edge_counts, /*bcet_sense=*/false);
}

void Ipet::solve_sub_both(Sub& sub, const IpetOptions& options) const {
  std::vector<char> member;
  const RegionSpec spec = sub_region_spec(sub, member);
  const bool has_children = !sub.children.empty();
  std::map<int, std::uint64_t> edge_counts_max;
  std::map<int, std::uint64_t> edge_counts_min;
  auto [wcet, bcet] = solve_region_both(spec, options, &sub.objective, &sub.objective_bcet,
                                        has_children ? &edge_counts_max : nullptr,
                                        has_children ? &edge_counts_min : nullptr);
  sub.result = std::move(wcet);
  sub.result_bcet = std::move(bcet);
  if (!sub.result.ok() || !sub.result_bcet.ok()) return;
  merge_sub_results(sub.result, sub.children, edge_counts_max, /*bcet_sense=*/false);
  merge_sub_results(sub.result_bcet, sub.children, edge_counts_min, /*bcet_sense=*/true);
}

const std::vector<Ipet::Sub>& Ipet::decomposition_plan() const {
  if (!plan_ready_) {
    plan_ = plan_decomposition();
    plan_ready_ = true;
  }
  return plan_;
}

std::size_t Ipet::reachable_in(const std::vector<char>& member) const {
  std::size_t count = 0;
  for (std::size_t n = 0; n < member.size(); ++n) {
    if (member[n] && values_.node_reachable(static_cast<int>(n))) ++count;
  }
  return count;
}

std::vector<Ipet::Sub> Ipet::plan_decomposition() const {
  const std::size_t num_nodes = sg_.nodes().size();
  std::size_t total_reachable = 0;
  for (std::size_t n = 0; n < num_nodes; ++n) {
    if (values_.node_reachable(static_cast<int>(n))) ++total_reachable;
  }
  // Below this the monolithic simplex is already fast; skipping keeps
  // small programs (and most unit tests) on the reference path.
  if (total_reachable < 48) return {};

  const auto& instances = sg_.instances();
  // Callers-before-callees order (verified by the export): accumulating
  // subtree sizes in reverse visits every callee before its caller.
  const std::vector<int> topo = sg_.instance_topo_order();
  std::vector<std::vector<int>> children(instances.size());
  std::vector<std::size_t> subtree_nodes(instances.size(), 0);
  for (const int i : topo) {
    subtree_nodes[static_cast<std::size_t>(i)] = sg_.instance_nodes(i).size();
    const int caller = instances[static_cast<std::size_t>(i)].caller_instance;
    if (caller >= 0) children[static_cast<std::size_t>(caller)].push_back(i);
  }
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const int caller = instances[static_cast<std::size_t>(*it)].caller_instance;
    if (caller >= 0) {
      subtree_nodes[static_cast<std::size_t>(caller)] +=
          subtree_nodes[static_cast<std::size_t>(*it)];
    }
  }

  const std::set<int> exit_set(sg_.exit_nodes().begin(), sg_.exit_nodes().end());
  // Dominators + post-dominators drive the sub-function SESE planning;
  // computed once here, the whole (memoized) plan shares them.
  const cfg::Dominators dom(sg_);
  const cfg::PostDominators pdom(sg_);
  return plan_region(0, total_reachable, nullptr, children, subtree_nodes, exit_set, dom, pdom);
}

std::vector<Ipet::Sub> Ipet::plan_region(int root_instance, std::size_t region_size,
                                         const std::vector<char>* region_member,
                                         const std::vector<std::vector<int>>& children,
                                         const std::vector<std::size_t>& subtree_nodes,
                                         const std::set<int>& exit_set,
                                         const cfg::Dominators& dom,
                                         const cfg::PostDominators& pdom) const {
  std::vector<Sub> subs;
  // Top-down over the instance tree, ascending ids: collapse the
  // largest eligible subtrees that still leave a meaningful region
  // around them; recurse past oversized or ineligible ones — and
  // re-enter planning *inside* every collapsed subtree, so nesting
  // continues until regions bottom out.
  std::vector<int> stack;
  const auto push_children = [&](int instance) {
    const auto& cs = children[static_cast<std::size_t>(instance)];
    for (auto it = cs.rbegin(); it != cs.rend(); ++it) stack.push_back(*it);
  };
  push_children(root_instance);
  while (!stack.empty()) {
    const int instance = stack.back();
    stack.pop_back();
    const std::size_t size = subtree_nodes[static_cast<std::size_t>(instance)];
    if (size < 8) continue; // sub-ILP overhead beats the saving
    if (size * 5 > region_size * 3) {
      push_children(instance);
      continue;
    }
    Sub sub;
    if (subtree_eligible(instance, children, exit_set, sub)) {
      sub.children = plan_region(instance, reachable_in(sub.member), &sub.member, children,
                                 subtree_nodes, exit_set, dom, pdom);
      subs.push_back(std::move(sub));
    } else {
      push_children(instance);
    }
  }
  // Decomposition below function granularity: the region nodes left
  // after collapsing instance subtrees (the root body plus every
  // instance planning walked past) are candidate call sites for SESE
  // regions.
  std::vector<char> site_mask(sg_.nodes().size(), 0);
  for (std::size_t n = 0; n < site_mask.size(); ++n) {
    site_mask[n] = region_member == nullptr || (*region_member)[n] != 0;
  }
  for (const Sub& sub : subs) {
    for (std::size_t n = 0; n < sub.member.size(); ++n) {
      if (sub.member[n]) site_mask[n] = 0;
    }
  }
  plan_sese(site_mask, region_size, exit_set, dom, pdom, subs);
  return subs;
}

void Ipet::plan_sese(const std::vector<char>& site_mask, std::size_t region_size,
                     const std::set<int>& exit_set, const cfg::Dominators& dom,
                     const cfg::PostDominators& pdom, std::vector<Sub>& subs) const {
  if (region_size < 16) return; // a split of <8 + <8 is never worth it
  const std::size_t max_size = region_size * 3 / 5;
  // Candidates: a loop-free site u with an intra-instance successor
  // edge e onto a head h whose only predecessor is e. h's immediate
  // post-dominator t closes the region; everything between collapses.
  // u outside every loop is what caps the region's entry count at 1 —
  // supergraph loops are interprocedural SCCs, so "loop-free" really
  // means "executes at most once per task run".
  std::vector<Sub> candidates;
  for (const cfg::SgNode& node : sg_.nodes()) {
    if (!site_mask[static_cast<std::size_t>(node.id)]) continue;
    if (!values_.node_reachable(node.id)) continue;
    if (loops_.innermost_loop_of(node.id) >= 0) continue;
    for (const int eid : node.succ_edges) {
      const cfg::SgEdge& e = sg_.edge(eid);
      if (e.kind == cfg::EdgeKind::call || e.kind == cfg::EdgeKind::ret) continue;
      if (!values_.edge_feasible(eid)) continue;
      const cfg::SgNode& head = sg_.node(e.to);
      if (head.pred_edges.size() != 1) continue;
      Sub sub;
      if (!sese_region(node.id, eid, max_size, exit_set, dom, pdom, sub)) continue;
      // The collapsed region's y variable runs call site -> return
      // site in the ENCLOSING region's flow rows, so the return site
      // must be an available node of this planning frame. A nested
      // region sharing its exit with the enclosing region (e.g. every
      // rung of an if-ladder post-dominated by the same join) fails
      // this: its join lies outside the parent region, the y head
      // would have no balance row, and flow would leak unsoundly.
      if (!site_mask[static_cast<std::size_t>(sub.return_site)]) continue;
      if (reachable_in(sub.member) < 8) continue;
      candidates.push_back(std::move(sub));
    }
  }
  // Largest regions first (ties by head id), greedily keeping disjoint
  // ones — a deterministic pure function of the graph.
  std::sort(candidates.begin(), candidates.end(), [this](const Sub& a, const Sub& b) {
    const std::size_t sa = reachable_in(a.member);
    const std::size_t sb = reachable_in(b.member);
    return sa != sb ? sa > sb : a.entry_node < b.entry_node;
  });
  std::vector<char> claimed(sg_.nodes().size(), 0);
  for (Sub& cand : candidates) {
    // The call site and return site must stay region nodes of this
    // frame (they carry the collapsed y variable's balance rows), so a
    // sibling selected earlier may not have absorbed either of them.
    if (claimed[static_cast<std::size_t>(cand.call_site)] != 0) continue;
    if (claimed[static_cast<std::size_t>(cand.return_site)] != 0) continue;
    bool overlaps = false;
    for (std::size_t n = 0; n < cand.member.size() && !overlaps; ++n) {
      overlaps = cand.member[n] != 0 && claimed[n] != 0;
    }
    if (overlaps) continue;
    for (std::size_t n = 0; n < cand.member.size(); ++n) {
      if (cand.member[n]) claimed[n] = 1;
    }
    // Adopt the already-collapsed instance subtrees the region contains
    // (a call site inside the region pulls its whole callee subtree in).
    std::vector<Sub> kept;
    for (Sub& sub : subs) {
      if (cand.member[static_cast<std::size_t>(sub.call_site)] != 0) {
        cand.children.push_back(std::move(sub));
      } else {
        kept.push_back(std::move(sub));
      }
    }
    subs = std::move(kept);
    // Nested SESE planning inside the region body (the members not
    // owned by an adopted child).
    std::vector<char> nested_mask = cand.member;
    for (const Sub& child : cand.children) {
      for (std::size_t n = 0; n < child.member.size(); ++n) {
        if (child.member[n]) nested_mask[n] = 0;
      }
    }
    plan_sese(nested_mask, reachable_in(cand.member), exit_set, dom, pdom, cand.children);
    subs.push_back(std::move(cand));
  }
}

bool Ipet::sese_region(int call_site, int call_edge, std::size_t max_size,
                       const std::set<int>& exit_set, const cfg::Dominators& dom,
                       const cfg::PostDominators& pdom, Sub& sub) const {
  const cfg::SgEdge& entry_edge = sg_.edge(call_edge);
  sub.instance = sg_.node(call_site).instance;
  sub.sese = true;
  sub.call_site = call_site;
  sub.call_edge = call_edge;
  sub.entry_node = entry_edge.to;
  sub.return_site = pdom.ipdom(sub.entry_node);
  if (sub.return_site < 0) return false; // head reaches no exit
  // Membership: everything forward-reachable from the head before the
  // post-dominator. Every such node must be dominated by the head
  // (otherwise a second entry exists and the region is not
  // single-entry); the boundary scan below re-checks this edge by edge.
  sub.member.assign(sg_.nodes().size(), 0);
  std::size_t member_count = 0;
  std::vector<int> work{sub.entry_node};
  sub.member[static_cast<std::size_t>(sub.entry_node)] = 1;
  while (!work.empty()) {
    const int n = work.back();
    work.pop_back();
    if (++member_count > max_size) return false;
    if (exit_set.count(n) != 0) return false; // task exit inside
    if (!dom.dominates(sub.entry_node, n)) return false;
    for (const int eid : sg_.node(n).succ_edges) {
      const int to = sg_.edge(eid).to;
      if (to == sub.return_site || sub.member[static_cast<std::size_t>(to)] != 0) continue;
      sub.member[static_cast<std::size_t>(to)] = 1;
      work.push_back(to);
    }
  }
  // Boundary and interior scan, mirroring subtree_eligible: sole
  // inbound edge is the entry edge, every outbound edge lands on the
  // post-dominator (the single exit), and no reachable dead end hides
  // inside. Loops cannot cross the boundary: a loop containing a
  // member and an outside node would give some member an outside
  // predecessor (rejected here), and the head itself is loop-free
  // because its only predecessor is the loop-free call site.
  for (std::size_t n = 0; n < sub.member.size(); ++n) {
    if (!sub.member[n]) continue;
    const int node_id = static_cast<int>(n);
    const cfg::SgNode& node = sg_.node(node_id);
    bool any_feasible_out = false;
    for (const int eid : node.succ_edges) {
      const cfg::SgEdge& e = sg_.edge(eid);
      if (sub.member[static_cast<std::size_t>(e.to)]) {
        any_feasible_out = any_feasible_out || values_.edge_feasible(eid);
        continue;
      }
      if (e.to != sub.return_site) return false;
      sub.ret_edges.push_back(eid);
      any_feasible_out = any_feasible_out || values_.edge_feasible(eid);
    }
    for (const int eid : node.pred_edges) {
      if (!sub.member[static_cast<std::size_t>(sg_.edge(eid).from)] && eid != sub.call_edge) {
        return false;
      }
    }
    if (values_.node_reachable(node_id) && !any_feasible_out) return false;
  }
  return !sub.ret_edges.empty();
}

bool Ipet::subtree_eligible(int instance, const std::vector<std::vector<int>>& children,
                            const std::set<int>& exit_set, Sub& sub) const {
  const cfg::Instance& inst = sg_.instances()[static_cast<std::size_t>(instance)];
  sub.instance = instance;
  sub.call_site = inst.call_site_node;
  if (sub.call_site < 0) return false;
  // Inside a loop the call edge count may exceed 1 and the collapse
  // stops being exact (the sub-ILP optimum is computed per single
  // entry).
  if (loops_.innermost_loop_of(sub.call_site) >= 0) return false;
  if (!values_.node_reachable(sub.call_site)) return false;
  sub.entry_node = sg_.instance_entry_node(instance);
  if (sub.entry_node < 0) return false;
  for (const int eid : sg_.node(sub.call_site).succ_edges) {
    const cfg::SgEdge& e = sg_.edge(eid);
    if (e.kind == cfg::EdgeKind::call && e.to == sub.entry_node) {
      sub.call_edge = eid;
      break;
    }
  }
  if (sub.call_edge < 0 || !values_.edge_feasible(sub.call_edge)) return false;

  sub.member.assign(sg_.nodes().size(), 0);
  std::vector<int> inst_stack{instance};
  while (!inst_stack.empty()) {
    const int i = inst_stack.back();
    inst_stack.pop_back();
    for (const int n : sg_.instance_nodes(i)) sub.member[static_cast<std::size_t>(n)] = 1;
    for (const int c : children[static_cast<std::size_t>(i)]) inst_stack.push_back(c);
  }

  // Boundary and interior scan: the only inbound edge is the call edge;
  // every outbound edge is a ret edge of THIS instance onto one return
  // site; no task exit and no reachable dead end inside (either would
  // let flow end within the subtree, which the collapsed model cannot
  // express).
  for (std::size_t n = 0; n < sub.member.size(); ++n) {
    if (!sub.member[n]) continue;
    const int node_id = static_cast<int>(n);
    if (exit_set.count(node_id) != 0) return false;
    const cfg::SgNode& node = sg_.node(node_id);
    bool any_feasible_out = false;
    for (const int eid : node.succ_edges) {
      const cfg::SgEdge& e = sg_.edge(eid);
      if (sub.member[static_cast<std::size_t>(e.to)]) {
        any_feasible_out = any_feasible_out || values_.edge_feasible(eid);
        continue;
      }
      if (e.kind != cfg::EdgeKind::ret || node.instance != instance) return false;
      if (sub.return_site < 0) {
        sub.return_site = e.to;
      } else if (sub.return_site != e.to) {
        return false;
      }
      sub.ret_edges.push_back(eid);
      any_feasible_out = any_feasible_out || values_.edge_feasible(eid);
    }
    for (const int eid : node.pred_edges) {
      if (!sub.member[static_cast<std::size_t>(sg_.edge(eid).from)] && eid != sub.call_edge) {
        return false;
      }
    }
    if (values_.node_reachable(node_id) && !any_feasible_out) return false;
  }
  return sub.return_site >= 0 && !sub.ret_edges.empty();
}

std::vector<char> Ipet::constrained_nodes(const IpetOptions& options) const {
  if (options.flow_caps.empty() && options.flow_ratios.empty() &&
      options.infeasible_pairs.empty() && options.excluded_addrs.empty()) {
    return {};
  }
  std::vector<char> pinned(sg_.nodes().size(), 0);
  const auto pin_addr = [&](std::uint32_t addr) {
    for (const int node_id : sg_.nodes_covering(addr)) {
      if (values_.node_reachable(node_id)) pinned[static_cast<std::size_t>(node_id)] = 1;
    }
  };
  for (const annot::FlowCapFact& cap : options.flow_caps) pin_addr(cap.addr);
  for (const annot::FlowRatioFact& ratio : options.flow_ratios) {
    pin_addr(ratio.addr);
    pin_addr(ratio.relative_to);
  }
  for (const annot::InfeasiblePairFact& pair : options.infeasible_pairs) {
    pin_addr(pair.a);
    pin_addr(pair.b);
  }
  for (const std::uint32_t addr : options.excluded_addrs) pin_addr(addr);
  return pinned;
}

std::vector<Ipet::Sub> Ipet::prune_pinned(std::vector<Sub> subs,
                                          const std::vector<char>& pinned) {
  std::vector<Sub> kept;
  for (Sub& sub : subs) {
    bool touched = false;
    for (std::size_t n = 0; n < sub.member.size() && !touched; ++n) {
      touched = sub.member[n] != 0 && pinned[n] != 0;
    }
    // A fact inside a nested child pins the whole ancestor chain (the
    // child's member nodes are the ancestors' member nodes too), so the
    // recursion drops exactly the chain while unpinned siblings — and
    // unpinned children of a pinned parent — stay collapsed, promoted
    // into the surrounding region.
    std::vector<Sub> children = prune_pinned(std::move(sub.children), pinned);
    if (touched) {
      for (Sub& child : children) kept.push_back(std::move(child));
    } else {
      sub.children = std::move(children);
      kept.push_back(std::move(sub));
    }
  }
  return kept;
}

// ---------------------------------------------------------------------------
// Region ILP emission. One routine builds every problem: the monolithic
// whole-supergraph system (member == nullptr, top level), the outer
// problem of a decomposed solve (children collapsed to super-edge
// variables), and the sub-ILP of a collapsed subtree (virtual source at
// the callee entry, sinks at the ret edges).
//
// Node execution counts are NOT variables: flow conservation makes
//   x_n == sum of inbound flow (+1 at the virtual source),
// so each node contributes a single balance row
//   sum(in) [+ 1 if source] == sum(out) + sum(sinks)
// and every use of x_n (objective weights, persistence-miss caps, flow
// facts) substitutes the inbound sum. Compared to the classic
// two-rows-and-a-variable-per-node form this halves both the row count
// and the artificial-variable count — phase 1 of the exact simplex
// performs one pivot per artificial, so the substitution roughly halves
// path-analysis solve time while describing the *same* polytope
// projected onto the edge variables: every bound is bit-identical.
//
// The constraint system is sense-independent (persistence-miss rows are
// emitted for both senses: a miss variable is only bounded above, so
// the BCET/minimize optimum pins it to zero and the bound is unchanged)
// and both objective vectors are accumulated in one pass — that is what
// lets solve_ilp_pair share construction and phase-1 work between the
// WCET and BCET solves of a region.
// ---------------------------------------------------------------------------

struct Ipet::RegionBuild {
  IlpProblem ilp;
  std::vector<int> edge_var;     // supergraph edge -> ilp variable (or -1)
  std::vector<char> region_node; // reachable nodes of this region
  std::vector<Rational> obj_max; // internal maximize sense (WCET)
  std::vector<Rational> obj_min; // internal maximize sense (BCET: negated costs)
  Rational offset_max;           // virtual-source objective constants
  Rational offset_min;
  IpetResult early; // early-exit verdict carrier + missing-bound list
};

int Ipet::append_in_flow(const RegionSpec& spec, const std::vector<int>& edge_var,
                         int node_id, const Rational& scale,
                         std::vector<LinTerm>& terms) const {
  const cfg::SgNode& node = sg_.node(node_id);
  for (const int eid : node.pred_edges) {
    const int ev = edge_var[static_cast<std::size_t>(eid)];
    if (ev >= 0) terms.push_back({ev, scale});
  }
  if (spec.children != nullptr) {
    // A collapsed child's flow re-emerges at its return site.
    for (const Sub& sub : *spec.children) {
      if (sub.return_site != node_id) continue;
      const int yv = edge_var[static_cast<std::size_t>(sub.call_edge)];
      if (yv >= 0) terms.push_back({yv, scale});
    }
  }
  return node_id == spec.source_node ? 1 : 0;
}

bool Ipet::build_region(const RegionSpec& spec, const IpetOptions& options,
                        RegionBuild& build) const {
  const auto in_region = [&](int node) {
    return spec.member == nullptr || (*spec.member)[static_cast<std::size_t>(node)] != 0;
  };
  IlpProblem& ilp = build.ilp;

  // Collapsed-child lookups.
  std::vector<int> child_of_call_edge(sg_.edges().size(), -1);
  std::vector<int> child_of_ret_edge(sg_.edges().size(), -1);
  if (spec.children != nullptr) {
    for (std::size_t c = 0; c < spec.children->size(); ++c) {
      const Sub& sub = (*spec.children)[c];
      child_of_call_edge[static_cast<std::size_t>(sub.call_edge)] = static_cast<int>(c);
      for (const int eid : sub.ret_edges) {
        child_of_ret_edge[static_cast<std::size_t>(eid)] = static_cast<int>(c);
      }
    }
  }
  std::vector<char> is_sink_edge(sg_.edges().size(), 0);
  if (spec.sink_ret_edges != nullptr) {
    for (const int eid : *spec.sink_ret_edges) is_sink_edge[static_cast<std::size_t>(eid)] = 1;
  }

  // Variables: one per feasible internal edge and one super-edge
  // variable per collapsed child (its call edge: the subtree's 0/1
  // entry count). Sink and persistence-miss variables follow.
  build.region_node.assign(sg_.nodes().size(), 0);
  for (const cfg::SgNode& node : sg_.nodes()) {
    if (in_region(node.id) && values_.node_reachable(node.id)) {
      build.region_node[static_cast<std::size_t>(node.id)] = 1;
    }
  }
  build.edge_var.assign(sg_.edges().size(), -1);
  std::vector<int>& edge_var = build.edge_var;
  for (const cfg::SgEdge& edge : sg_.edges()) {
    const int child = child_of_call_edge[static_cast<std::size_t>(edge.id)];
    if (child >= 0) {
      edge_var[static_cast<std::size_t>(edge.id)] = ilp.add_variable(
          "y" + std::to_string((*spec.children)[static_cast<std::size_t>(child)].instance));
      continue;
    }
    if (!values_.edge_feasible(edge.id)) continue;
    if (!build.region_node[static_cast<std::size_t>(edge.from)] ||
        !build.region_node[static_cast<std::size_t>(edge.to)]) {
      continue;
    }
    edge_var[static_cast<std::size_t>(edge.id)] =
        ilp.add_variable("e" + std::to_string(edge.id));
  }

  const auto add_obj = [](std::vector<Rational>& obj, int var, const Rational& coeff) {
    if (obj.size() <= static_cast<std::size_t>(var)) {
      obj.resize(static_cast<std::size_t>(var) + 1);
    }
    obj[static_cast<std::size_t>(var)] += coeff;
  };

  // Balance rows with sinks at the task exits (top level) or the
  // subtree's ret edges, and the node weights folded onto the inbound
  // flow.
  std::vector<int> exit_vars;
  // Balance-row index per region node plus the owning node of every
  // sink variable: the flow-network shape the crash basis is built on.
  std::vector<int> balance_row(sg_.nodes().size(), -1);
  std::vector<std::pair<int, int>> sink_var_node; // (variable, node)
  {
    std::set<int> exit_set;
    if (spec.top_level) exit_set.insert(sg_.exit_nodes().begin(), sg_.exit_nodes().end());
    for (const cfg::SgNode& node : sg_.nodes()) {
      if (!build.region_node[static_cast<std::size_t>(node.id)]) continue;
      balance_row[static_cast<std::size_t>(node.id)] = ilp.num_constraints();
      std::vector<LinTerm> terms;
      const int src = append_in_flow(spec, edge_var, node.id, Rational(1), terms);
      const std::size_t in_count = terms.size();

      const NodeTiming& timing = pipeline_.timing(node.id);
      if (timing.ub != 0) {
        const Rational w(static_cast<std::int64_t>(timing.ub));
        for (std::size_t i = 0; i < in_count; ++i) add_obj(build.obj_max, terms[i].var, w);
        if (src != 0) build.offset_max += w;
      }
      if (timing.lb != 0) {
        const Rational w(-static_cast<std::int64_t>(timing.lb));
        for (std::size_t i = 0; i < in_count; ++i) add_obj(build.obj_min, terms[i].var, w);
        if (src != 0) build.offset_min += w;
      }

      bool made_sink = false;
      for (const int eid : node.succ_edges) {
        const int ev = edge_var[static_cast<std::size_t>(eid)];
        if (ev >= 0) {
          terms.push_back({ev, Rational(-1)});
          continue;
        }
        if (is_sink_edge[static_cast<std::size_t>(eid)] != 0 && values_.edge_feasible(eid)) {
          // Subtree ret edge: flow leaves the region here; the sink
          // variable carries the edge's extra cost (taken-branch
          // penalty convention) in the objective.
          const int sv = ilp.add_variable("ret" + std::to_string(eid));
          exit_vars.push_back(sv);
          sink_var_node.push_back({sv, node.id});
          terms.push_back({sv, Rational(-1)});
          const unsigned extra = pipeline_.edge_extra(eid);
          if (extra != 0) {
            add_obj(build.obj_max, sv, Rational(static_cast<std::int64_t>(extra)));
            add_obj(build.obj_min, sv, Rational(-static_cast<std::int64_t>(extra)));
          }
          made_sink = true;
        }
      }
      if (spec.top_level && exit_set.count(node.id) != 0) {
        const int sv = ilp.add_variable("sink" + std::to_string(node.id));
        exit_vars.push_back(sv);
        sink_var_node.push_back({sv, node.id});
        terms.push_back({sv, Rational(-1)});
      } else if (!made_sink &&
                 (node.succ_edges.empty() ||
                  std::all_of(node.succ_edges.begin(), node.succ_edges.end(), [&](int eid) {
                    return edge_var[static_cast<std::size_t>(eid)] < 0;
                  }))) {
        // Dead end that is not an exit (e.g. unresolved indirect): treat
        // as a sink so the system stays feasible; the driver reports the
        // obstruction separately.
        const int sv = ilp.add_variable("dead" + std::to_string(node.id));
        exit_vars.push_back(sv);
        sink_var_node.push_back({sv, node.id});
        terms.push_back({sv, Rational(-1)});
      }
      ilp.add_constraint(std::move(terms), Cmp::eq, Rational(-src));
    }
    std::vector<LinTerm> sink_sum;
    sink_sum.reserve(exit_vars.size());
    for (const int sv : exit_vars) sink_sum.push_back({sv, Rational(1)});
    if (sink_sum.empty()) {
      // No reachable exit: no finite execution to bound.
      build.early.status = IpetResult::Status::infeasible;
      return false;
    }
    ilp.add_constraint(std::move(sink_sum), Cmp::eq, Rational(1));
    emit_crash_basis(spec, options, build, balance_row, sink_var_node,
                     ilp.num_constraints() - 1);
  }

  // Loop entry terms of a region loop, substituting a collapsed child's
  // super-edge variable for its ret edges (their counts sum to y: every
  // ret edge targets the return site, so when that site lies in the
  // loop they all enter it) and detecting entries through the virtual
  // source of a sub-region.
  const auto loop_entry_terms = [&](const cfg::Loop& loop, bool& has_virtual_entry) {
    std::vector<LinTerm> terms;
    std::set<int> seen_children;
    has_virtual_entry = false;
    for (const int eid : loop.entry_edges) {
      const int ev = edge_var[static_cast<std::size_t>(eid)];
      if (ev >= 0) {
        terms.push_back({ev, Rational(1)});
        continue;
      }
      const cfg::SgEdge& e = sg_.edge(eid);
      if (in_region(e.from)) continue; // infeasible or unreachable: no flow
      const int child = child_of_ret_edge[static_cast<std::size_t>(eid)];
      if (child >= 0) {
        if (seen_children.insert(child).second) {
          const int yv = edge_var[static_cast<std::size_t>(
              (*spec.children)[static_cast<std::size_t>(child)].call_edge)];
          if (yv >= 0) terms.push_back({yv, Rational(1)});
        }
        continue;
      }
      if (!spec.top_level && e.to == spec.source_node) has_virtual_entry = true;
    }
    return terms;
  };

  // Loop bounds for loops that live in this region (loops never span a
  // collapsed boundary: a cycle through the subtree would have to pass
  // the call site, which eligibility requires to be loop-free).
  for (const cfg::Loop& loop : loops_.loops()) {
    if (!in_region(loop.header)) continue;
    std::vector<LinTerm> back_terms;
    for (const int eid : loop.back_edges) {
      const int ev = edge_var[static_cast<std::size_t>(eid)];
      if (ev >= 0) back_terms.push_back({ev, Rational(1)});
    }
    if (back_terms.empty()) continue; // cycle already broken by infeasibility
    bool has_virtual_entry = false;
    std::vector<LinTerm> entry_terms = loop_entry_terms(loop, has_virtual_entry);
    if (entry_terms.empty() && !has_virtual_entry) {
      // Unreachable loop: force its back edges to zero.
      ilp.add_constraint(std::move(back_terms), Cmp::le, Rational(0));
      continue;
    }
    const auto bound_it = options.loop_bounds.find(loop.id);
    if (bound_it == options.loop_bounds.end()) {
      build.early.loops_missing_bounds.push_back(loop.id);
      continue;
    }
    // sum(back) - B * sum(entry) <= B * virtual_entries
    const auto bound = static_cast<std::int64_t>(bound_it->second);
    std::vector<LinTerm> terms = std::move(back_terms);
    for (const LinTerm& t : entry_terms) terms.push_back({t.var, Rational(-bound)});
    ilp.add_constraint(std::move(terms), Cmp::le,
                       Rational(has_virtual_entry ? bound : 0));
  }

  // Design-level flow facts (Section 4.3), top level only: the
  // decomposition pins every subtree a fact touches into the outer
  // region, so the constrained counts are all expressible here.
  if (spec.top_level) {
    // Execution-count expression of every region node whose block
    // covers `addr`, scaled; flags whether any node was covered and
    // accumulates the virtual-source constant.
    const auto append_counts_at = [&](std::uint32_t addr, const Rational& scale,
                                      std::vector<LinTerm>& terms, Rational& constant) {
      bool covered = false;
      for (const int node_id : sg_.nodes_covering(addr)) {
        if (!build.region_node[static_cast<std::size_t>(node_id)]) continue;
        covered = true;
        if (append_in_flow(spec, edge_var, node_id, scale, terms) != 0) constant += scale;
      }
      return covered;
    };

    // Operating-mode / never-executed exclusions.
    for (const std::uint32_t addr : options.excluded_addrs) {
      std::vector<LinTerm> terms;
      Rational constant;
      if (append_counts_at(addr, Rational(1), terms, constant)) {
        ilp.add_constraint(std::move(terms), Cmp::le, -constant);
      }
    }

    // Absolute flow caps.
    for (const annot::FlowCapFact& cap : options.flow_caps) {
      std::vector<LinTerm> terms;
      Rational constant;
      if (append_counts_at(cap.addr, Rational(1), terms, constant)) {
        ilp.add_constraint(std::move(terms), Cmp::le,
                           Rational(static_cast<std::int64_t>(cap.max_count)) - constant);
      }
    }

    // Relative flow facts: count(a) <= f * count(b).
    for (const annot::FlowRatioFact& ratio : options.flow_ratios) {
      std::vector<LinTerm> terms;
      Rational constant;
      bool covered = append_counts_at(ratio.addr, Rational(1), terms, constant);
      covered |= append_counts_at(ratio.relative_to,
                                  Rational(-static_cast<std::int64_t>(ratio.factor)), terms,
                                  constant);
      if (covered) ilp.add_constraint(std::move(terms), Cmp::le, -constant);
    }

    // Infeasible pairs: big-M disjunction with a binary selector.
    const auto big_m = Rational(static_cast<std::int64_t>(options.infeasible_pair_big_m));
    int pair_index = 0;
    for (const annot::InfeasiblePairFact& pair : options.infeasible_pairs) {
      const int sel = ilp.add_variable("excl" + std::to_string(pair_index++));
      ilp.add_constraint({{sel, Rational(1)}}, Cmp::le, Rational(1));
      std::vector<LinTerm> a_terms;
      Rational a_const;
      std::vector<LinTerm> b_terms;
      Rational b_const;
      const bool a_covered = append_counts_at(pair.a, Rational(1), a_terms, a_const);
      const bool b_covered = append_counts_at(pair.b, Rational(1), b_terms, b_const);
      if (!a_covered || !b_covered) continue;
      // sum(a) <= M * sel
      a_terms.push_back({sel, -big_m});
      ilp.add_constraint(std::move(a_terms), Cmp::le, -a_const);
      // sum(b) <= M * (1 - sel)
      b_terms.push_back({sel, big_m});
      ilp.add_constraint(std::move(b_terms), Cmp::le, big_m - b_const);
    }
  }

  // Persistence-miss terms: misses are bounded by the node's executions
  // and by line_count per loop entry. Emitted for both senses (see the
  // header comment: the minimize optimum pins every miss to zero).
  for (const cfg::SgNode& node : sg_.nodes()) {
    if (!build.region_node[static_cast<std::size_t>(node.id)]) continue;
    const NodeTiming& timing = pipeline_.timing(node.id);
    int term_index = 0;
    for (const PsTerm& ps : timing.ps_terms) {
      const cfg::Loop& loop = loops_.loop(ps.loop_id);
      const int mv = ilp.add_variable("ps_n" + std::to_string(node.id) + '_' +
                                      std::to_string(term_index++));
      // misses <= executions of the node
      std::vector<LinTerm> exec_terms{{mv, Rational(1)}};
      const int src = append_in_flow(spec, edge_var, node.id, Rational(-1), exec_terms);
      ilp.add_constraint(std::move(exec_terms), Cmp::le, Rational(src));
      // misses <= line_count * loop entries
      bool has_virtual_entry = false;
      const std::vector<LinTerm> entries = loop_entry_terms(loop, has_virtual_entry);
      const auto lc = static_cast<std::int64_t>(ps.line_count);
      std::vector<LinTerm> entry_terms{{mv, Rational(1)}};
      for (const LinTerm& t : entries) entry_terms.push_back({t.var, Rational(-lc)});
      ilp.add_constraint(std::move(entry_terms), Cmp::le,
                         Rational(has_virtual_entry ? lc : 0));
      add_obj(build.obj_max, mv, Rational(static_cast<std::int64_t>(ps.penalty)));
      add_obj(build.obj_min, mv, Rational(-static_cast<std::int64_t>(ps.penalty)));
    }
  }

  // Edge extra costs and collapsed-child objectives.
  for (const cfg::SgEdge& edge : sg_.edges()) {
    const int ev = edge_var[static_cast<std::size_t>(edge.id)];
    if (ev < 0) continue;
    const unsigned extra = pipeline_.edge_extra(edge.id);
    if (extra != 0) {
      add_obj(build.obj_max, ev, Rational(static_cast<std::int64_t>(extra)));
      add_obj(build.obj_min, ev, Rational(-static_cast<std::int64_t>(extra)));
    }
    const int child = child_of_call_edge[static_cast<std::size_t>(edge.id)];
    if (child >= 0) {
      // Super edge: one unit of flow buys the subtree's optimal cost.
      const Sub& sub = (*spec.children)[static_cast<std::size_t>(child)];
      add_obj(build.obj_max, ev, sub.objective);
      add_obj(build.obj_min, ev, sub.objective_bcet);
    }
  }
  build.obj_max.resize(static_cast<std::size_t>(ilp.num_variables()));
  build.obj_min.resize(static_cast<std::size_t>(ilp.num_variables()));
  return true;
}

void Ipet::emit_crash_basis(const RegionSpec& spec, const IpetOptions& options,
                            RegionBuild& build, const std::vector<int>& balance_row,
                            const std::vector<std::pair<int, int>>& sink_var_node,
                            int sum_row) const {
  // Design-level fact rows (emitted after the flow rows, top level
  // only) may cut the crash solution off; such regions keep the
  // ordinary shared phase 1 — exactly the fallback the decomposition
  // already uses for fact-pinned subtrees.
  if (spec.top_level &&
      !(options.excluded_addrs.empty() && options.flow_caps.empty() &&
        options.flow_ratios.empty() && options.infeasible_pairs.empty())) {
    return;
  }
  if (spec.source_node < 0 || balance_row[static_cast<std::size_t>(spec.source_node)] < 0) {
    return;
  }

  // The equality rows are a flow network: one vertex per balance row
  // plus one for the sink-sum row, and every variable is an arc — an
  // edge variable runs from -> to, a collapsed child's super edge runs
  // call site -> return site, a sink variable runs node -> sink-sum. A
  // spanning forest of the network is a basis of the row space
  // (uncovered rows are each component's redundant row), and routing
  // the unit source flow down a back-edge-free tree path makes the
  // implied basic solution feasible: flow rows hold exactly, and every
  // loop-bound slack stays nonnegative because no back edge carries
  // flow. The solver then starts phase 2 immediately.
  struct Arc {
    int var = -1;
    int tail = -1;
    int head = -1;
    bool back = false; // loop back edge (or self arc): barred from the unit path
  };
  const int rows = sum_row + 1;
  std::vector<int> child_of_call_edge(sg_.edges().size(), -1);
  if (spec.children != nullptr) {
    for (std::size_t c = 0; c < spec.children->size(); ++c) {
      child_of_call_edge[static_cast<std::size_t>((*spec.children)[c].call_edge)] =
          static_cast<int>(c);
    }
  }
  std::vector<char> edge_is_back(sg_.edges().size(), 0);
  for (const cfg::Loop& loop : loops_.loops()) {
    for (const int eid : loop.back_edges) edge_is_back[static_cast<std::size_t>(eid)] = 1;
  }
  std::vector<Arc> arcs;
  arcs.reserve(static_cast<std::size_t>(build.ilp.num_variables()));
  for (const cfg::SgEdge& edge : sg_.edges()) {
    const int ev = build.edge_var[static_cast<std::size_t>(edge.id)];
    if (ev < 0) continue;
    Arc arc;
    arc.var = ev;
    const int child = child_of_call_edge[static_cast<std::size_t>(edge.id)];
    if (child >= 0) {
      const Sub& sub = (*spec.children)[static_cast<std::size_t>(child)];
      arc.tail = balance_row[static_cast<std::size_t>(sub.call_site)];
      arc.head = balance_row[static_cast<std::size_t>(sub.return_site)];
    } else {
      arc.tail = balance_row[static_cast<std::size_t>(edge.from)];
      arc.head = balance_row[static_cast<std::size_t>(edge.to)];
    }
    if (arc.tail < 0 || arc.head < 0) return; // half-attached arc: no usable basis
    arc.back = edge_is_back[static_cast<std::size_t>(edge.id)] != 0 || arc.tail == arc.head;
    arcs.push_back(arc);
  }
  for (const auto& [sv, node] : sink_var_node) {
    const int tail = balance_row[static_cast<std::size_t>(node)];
    if (tail < 0) return;
    arcs.push_back({sv, tail, sum_row, false});
  }

  // Unit path: BFS from the source row to the sink-sum row along
  // forward arcs, skipping back edges (deterministic: arcs are visited
  // in emission order).
  std::vector<std::vector<int>> out(static_cast<std::size_t>(rows));
  for (std::size_t a = 0; a < arcs.size(); ++a) {
    out[static_cast<std::size_t>(arcs[a].tail)].push_back(static_cast<int>(a));
  }
  const int src_row = balance_row[static_cast<std::size_t>(spec.source_node)];
  std::vector<int> via_arc(static_cast<std::size_t>(rows), -1);
  std::vector<char> seen(static_cast<std::size_t>(rows), 0);
  std::vector<int> queue{src_row};
  seen[static_cast<std::size_t>(src_row)] = 1;
  for (std::size_t qi = 0; qi < queue.size() && seen[static_cast<std::size_t>(sum_row)] == 0;
       ++qi) {
    for (const int a : out[static_cast<std::size_t>(queue[qi])]) {
      if (arcs[static_cast<std::size_t>(a)].back) continue;
      const int to = arcs[static_cast<std::size_t>(a)].head;
      if (seen[static_cast<std::size_t>(to)] != 0) continue;
      seen[static_cast<std::size_t>(to)] = 1;
      via_arc[static_cast<std::size_t>(to)] = a;
      queue.push_back(to);
      if (to == sum_row) break;
    }
  }
  // No back-edge-free route to an exit (e.g. flow trapped behind an
  // unstructured cycle): the crash solution would be infeasible, so
  // leave phase 1 in charge.
  if (seen[static_cast<std::size_t>(sum_row)] == 0) return;

  // Spanning forest: the path arcs first (they must be basic — they
  // carry the unit flow), then every other arc in emission order.
  std::vector<int> uf(static_cast<std::size_t>(rows));
  for (int r = 0; r < rows; ++r) uf[static_cast<std::size_t>(r)] = r;
  const auto find = [&](int r) {
    while (uf[static_cast<std::size_t>(r)] != r) {
      uf[static_cast<std::size_t>(r)] = uf[static_cast<std::size_t>(uf[static_cast<std::size_t>(r)])];
      r = uf[static_cast<std::size_t>(r)];
    }
    return r;
  };
  std::vector<std::vector<std::pair<int, int>>> adj(static_cast<std::size_t>(rows));
  const auto add_tree_arc = [&](const Arc& arc) {
    const int ra = find(arc.tail);
    const int rb = find(arc.head);
    if (ra == rb) return;
    uf[static_cast<std::size_t>(ra)] = rb;
    adj[static_cast<std::size_t>(arc.tail)].push_back({arc.var, arc.head});
    adj[static_cast<std::size_t>(arc.head)].push_back({arc.var, arc.tail});
  };
  for (int r = sum_row; via_arc[static_cast<std::size_t>(r)] >= 0;
       r = arcs[static_cast<std::size_t>(via_arc[static_cast<std::size_t>(r)])].tail) {
    add_tree_arc(arcs[static_cast<std::size_t>(via_arc[static_cast<std::size_t>(r)])]);
  }
  for (const Arc& arc : arcs) add_tree_arc(arc);

  // Root the sink-sum component at the sink-sum row and every other
  // component at its smallest row; each covered row's basic column is
  // the arc toward its parent. Emitting the hint children-before-
  // parents keeps every elimination's pivot cell at its original +/-1
  // (an arc column lives in exactly its two endpoint rows, and deeper
  // eliminations never touch it).
  std::vector<char> visited(static_cast<std::size_t>(rows), 0);
  std::vector<int> parent_arc(static_cast<std::size_t>(rows), -1);
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(rows));
  const auto root_bfs = [&](int root) {
    visited[static_cast<std::size_t>(root)] = 1;
    const std::size_t start = order.size();
    order.push_back(root);
    for (std::size_t i = start; i < order.size(); ++i) {
      for (const auto& [var, other] : adj[static_cast<std::size_t>(order[i])]) {
        if (visited[static_cast<std::size_t>(other)] != 0) continue;
        visited[static_cast<std::size_t>(other)] = 1;
        parent_arc[static_cast<std::size_t>(other)] = var;
        order.push_back(other);
      }
    }
  };
  root_bfs(sum_row);
  for (int r = 0; r < rows; ++r) {
    if (visited[static_cast<std::size_t>(r)] == 0) root_bfs(r);
  }
  std::vector<std::pair<int, int>> hint;
  hint.reserve(order.size());
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (parent_arc[static_cast<std::size_t>(*it)] >= 0) {
      hint.push_back({*it, parent_arc[static_cast<std::size_t>(*it)]});
    }
  }
  if (!hint.empty()) build.ilp.set_basis_hint(std::move(hint));
}

IpetResult Ipet::extract_region(const RegionBuild& build, const RegionSpec& spec,
                                bool maximize, const LpSolution& solution,
                                Rational* objective_out,
                                std::map<int, std::uint64_t>* edge_counts_out) const {
  IpetResult result;
  result.loops_missing_bounds = build.early.loops_missing_bounds;
  result.variables = build.ilp.num_variables();
  result.constraints = build.ilp.num_constraints();
  result.phase1_pivots = solution.phase1_pivots;
  result.phase2_pivots = solution.phase2_pivots;
  result.crash_basis_rows = solution.crash_basis_rows;
  switch (solution.status) {
  case LpSolution::Status::optimal:
  case LpSolution::Status::degraded:
    break;
  case LpSolution::Status::infeasible:
    result.status = IpetResult::Status::infeasible;
    return result;
  case LpSolution::Status::unbounded:
    result.status = IpetResult::Status::unbounded;
    return result;
  case LpSolution::Status::node_limit:
    result.status = IpetResult::Status::node_limit;
    return result;
  case LpSolution::Status::pivot_limit:
    result.status = IpetResult::Status::pivot_limit;
    return result;
  }

  result.status = IpetResult::Status::ok;
  result.degraded = solution.status == LpSolution::Status::degraded;
  const Rational total = solution.objective + (maximize ? build.offset_max : build.offset_min);
  if (objective_out != nullptr) *objective_out = total;
  const Rational objective = maximize ? total : -total;
  result.bound = static_cast<std::uint64_t>(maximize ? objective.ceil64()
                                                     : objective.floor64());
  // A degraded solve proves only the bound: solution.values is empty,
  // so there is no flow to recover a witness from. The objective still
  // feeds the parent region soundly — an upper bound on the subtree's
  // internal-maximize optimum can only loosen the outer bound upward.
  if (result.degraded) return result;
  // Witness: recover the node counts from the inbound flow.
  for (const cfg::SgNode& node : sg_.nodes()) {
    if (!build.region_node[static_cast<std::size_t>(node.id)]) continue;
    std::vector<LinTerm> terms;
    Rational count(append_in_flow(spec, build.edge_var, node.id, Rational(1), terms));
    for (const LinTerm& t : terms) count += solution.values[static_cast<std::size_t>(t.var)];
    if (!count.is_zero()) {
      result.node_counts[node.id] = static_cast<std::uint64_t>(count.floor64());
    }
  }
  if (edge_counts_out != nullptr) {
    for (const cfg::SgEdge& edge : sg_.edges()) {
      const int ev = build.edge_var[static_cast<std::size_t>(edge.id)];
      if (ev < 0) continue;
      const Rational& count = solution.values[static_cast<std::size_t>(ev)];
      if (!count.is_zero()) {
        (*edge_counts_out)[edge.id] = static_cast<std::uint64_t>(count.floor64());
      }
    }
  }
  return result;
}

IpetResult Ipet::solve_region(const RegionSpec& spec, const IpetOptions& options,
                              Rational* objective_out,
                              std::map<int, std::uint64_t>* edge_counts_out) const {
  RegionBuild build;
  if (!build_region(spec, options, build)) return build.early;
  if (options.maximize && !build.early.loops_missing_bounds.empty()) {
    IpetResult result = std::move(build.early);
    result.status = IpetResult::Status::missing_loop_bounds;
    return result;
  }
  const std::vector<Rational>& objective = options.maximize ? build.obj_max : build.obj_min;
  for (int var = 0; var < build.ilp.num_variables(); ++var) {
    if (!objective[static_cast<std::size_t>(var)].is_zero()) {
      build.ilp.set_objective(var, objective[static_cast<std::size_t>(var)]);
    }
  }
  if (options.lp_dump != nullptr && spec.top_level) *options.lp_dump = build.ilp.to_string();
  const LpSolution solution = build.ilp.solve_ilp(region_limits(options));
  IpetResult result = extract_region(build, spec, options.maximize, solution, objective_out,
                                     edge_counts_out);
  if (result.degraded && options.governor != nullptr) {
    options.governor->record("path", "ilp budget",
                             "region solve truncated by pivot/node cap; bound is the best "
                             "proven frontier bound, no path witness (bound stays sound)");
  }
  return result;
}

std::pair<IpetResult, IpetResult> Ipet::solve_region_both(
    const RegionSpec& spec, const IpetOptions& options, Rational* objective_max_out,
    Rational* objective_min_out, std::map<int, std::uint64_t>* edge_counts_max_out,
    std::map<int, std::uint64_t>* edge_counts_min_out) const {
  RegionBuild build;
  if (!build_region(spec, options, build)) return {build.early, build.early};
  if (!build.early.loops_missing_bounds.empty()) {
    IpetResult result = std::move(build.early);
    result.status = IpetResult::Status::missing_loop_bounds;
    return {std::move(result), IpetResult{}};
  }
  for (int var = 0; var < build.ilp.num_variables(); ++var) {
    if (!build.obj_max[static_cast<std::size_t>(var)].is_zero()) {
      build.ilp.set_objective(var, build.obj_max[static_cast<std::size_t>(var)]);
    }
  }
  const auto [max_solution, min_solution] =
      build.ilp.solve_ilp_pair(build.obj_min, region_limits(options));
  std::pair<IpetResult, IpetResult> out = {
      extract_region(build, spec, true, max_solution, objective_max_out, edge_counts_max_out),
      extract_region(build, spec, false, min_solution, objective_min_out,
                     edge_counts_min_out)};
  if ((out.first.degraded || out.second.degraded) && options.governor != nullptr) {
    options.governor->record("path", "ilp budget",
                             "region solve truncated by pivot/node cap; bound is the best "
                             "proven frontier bound, no path witness (bound stays sound)");
  }
  return out;
}

// ---------------------------------------------------------------------------
// Monolithic solve: the whole supergraph as one region, including every
// annotation-driven coupling constraint. Reference path for the
// decomposed modes and the fallback when no subtree is eligible.
// ---------------------------------------------------------------------------

IpetResult Ipet::solve_monolithic(const IpetOptions& options) const {
  RegionSpec spec;
  spec.source_node = sg_.entry_node();
  spec.top_level = true;
  return solve_region(spec, options);
}

std::pair<IpetResult, IpetResult> Ipet::solve_monolithic_both(const IpetOptions& options) const {
  RegionSpec spec;
  spec.source_node = sg_.entry_node();
  spec.top_level = true;
  return solve_region_both(spec, options, nullptr, nullptr, nullptr, nullptr);
}

} // namespace wcet::analysis
