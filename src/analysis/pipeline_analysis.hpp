// Pipeline analysis (Figure 1, "Pipeline Analysis"): per-basic-block
// execution time bounds [BCET, WCET] in cycles, derived from
//   - the shared hardware cost model (mem/hwmodel.hpp),
//   - cache classifications (AH/AM/NC/persistent),
//   - memory-region latency bounds over value-analysis address
//     intervals: an unknown address is charged the slowest reachable
//     memory module — the paper's Section 4.3 effect, and the lever the
//     `accesses` annotation moves.
//
// tiny32's pipeline is in-order with additive, independent costs, so
// block bounds compose from instruction bounds without timing anomalies.
// Persistent accesses contribute their hit cost here plus a separate
// once-per-loop-entry miss term consumed by the IPET.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/cache_analysis.hpp"
#include "analysis/value_analysis.hpp"
#include "cfg/supergraph.hpp"
#include "mem/hwmodel.hpp"

namespace wcet::analysis {

struct PsTerm {
  int loop_id = -1;      // loop whose entry count bounds the misses
  unsigned penalty = 0;  // extra cycles of one miss over a hit
  unsigned line_count = 1; // misses <= line_count * loop entries
};

struct NodeTiming {
  std::uint64_t lb = 0; // best-case cycles of one execution
  std::uint64_t ub = 0; // worst-case cycles (persistent misses excluded)
  std::vector<PsTerm> ps_terms;
};

class PipelineAnalysis {
public:
  PipelineAnalysis(const cfg::Supergraph& sg, const ValueAnalysis& values,
                   const CacheAnalysis& caches, const mem::HwConfig& hw);

  void run();

  const NodeTiming& timing(int node) const {
    return timings_[static_cast<std::size_t>(node)];
  }
  // Extra cycles charged when traversing `edge` (taken-branch penalty).
  unsigned edge_extra(int edge) const { return edge_extra_[static_cast<std::size_t>(edge)]; }

private:
  void compute_node_timing(int node);

  const cfg::Supergraph& sg_;
  const ValueAnalysis& values_;
  const CacheAnalysis& caches_;
  const mem::HwConfig& hw_;
  std::vector<NodeTiming> timings_;
  std::vector<unsigned> edge_extra_;
};

} // namespace wcet::analysis
