// Abstract cache analysis: LRU must/may analysis (Ferdinand-style) with
// a loop-scoped persistence pass.
//
//   must-cache: lines guaranteed present (age = upper bound) -> always-hit
//   may-cache:  lines possibly present (age = lower bound)   -> always-miss
//   persistence: a line whose conflict set within a reducible loop fits
//     the associativity can miss at most once per loop entry -> the IPET
//     charges its miss penalty on the loop-entry count, reproducing the
//     precision effect of virtual loop unrolling (the paper's rule-14.4
//     discussion: irreducible loops forfeit this, so no persistence is
//     computed for them).
//
// Imprecise accesses (unknown address) age the entire must-cache — the
// paper's "an imprecise memory access invalidates large parts of the
// abstract cache (or even the whole cache)" made executable.
//
// Engine: the fixpoint runs on the deterministic per-instance round
// scheduler (support/instance_rounds.hpp) shared with the value
// analysis, and each node's transfer replays a memoized recipe from
// the shared TransferCache (resolved fetch-line sequence + per-access
// cacheability/candidate-line verdicts) instead of re-decoding the
// block per visit. Classifications are bit-identical for any
// ThreadPool worker count and any schedule — the must/may domain has
// no widening, so the least fixpoint is schedule-independent.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "analysis/value_analysis.hpp"
#include "cfg/domloop.hpp"
#include "mem/cache.hpp"
#include "mem/memmap.hpp"
#include "support/cow.hpp"
#include "support/flat_map.hpp"

namespace wcet {
class ThreadPool;
class AnalysisGovernor;
}

namespace wcet::analysis {

class TransferCache;

enum class AccessClass {
  always_hit,
  always_miss,
  not_classified,
  uncached, // io / uncacheable region or store (write-through bypasses)
};

const char* to_string(AccessClass cls);

// Visit the distinct cache sets of a candidate-line list in
// first-appearance order — the one splitting rule shared by
// AbsCache::access_one_of, the lazy classification recorder and the
// recipe builder (TransferCache::build_cache_recipes), which must agree
// bit-for-bit. `fn(set, outside)`: `outside` is true when some
// candidate maps to a different set (equivalently, when more than one
// set is affected — every line maps to some affected set).
// `affected_scratch` is a caller-owned buffer reused across calls.
template <typename Fn>
void for_each_candidate_set(const mem::CacheConfig& config,
                            std::span<const std::uint32_t> lines,
                            std::vector<unsigned>& affected_scratch, Fn&& fn) {
  affected_scratch.clear();
  for (const std::uint32_t line : lines) {
    const unsigned s = config.set_index(line * config.line_bytes);
    if (std::find(affected_scratch.begin(), affected_scratch.end(), s) ==
        affected_scratch.end()) {
      affected_scratch.push_back(s);
    }
  }
  const bool outside = affected_scratch.size() > 1;
  for (const unsigned s : affected_scratch) fn(s, outside);
}

// Join-gating telemetry for the abstract cache states: set-level joins
// actually examined vs. skipped outright because both leaves were the
// same shared COW object (join(x, x) = x). Process-global, reset per
// cache pass; never consulted by any analysis decision.
struct CacheJoinStats {
  std::uint64_t joins = 0;      // per-set joins examined (leaves differed)
  std::uint64_t join_skips = 0; // pointer-equality fast-path skips
};
CacheJoinStats cache_join_stats();
void reset_cache_join_stats();

// One abstract set-associative LRU cache (must or may variant).
//
// Set images live in a copy-on-write vector (support/cow.hpp):
// copy-assigning an AbsCache is an O(1) snapshot, the transfer detaches
// only the sets an access actually touches, and joins skip
// pointer-identical leaves without merging (see join_with). A null leaf
// canonically represents the empty set image, so a cold cache allocates
// no images at all. All mutation goes through the COW detach, so shared
// snapshots across ThreadPool workers are never written in place.
class AbsCache {
public:
  using SetImage = FlatMap<std::uint32_t, unsigned>;

  AbsCache(const mem::CacheConfig& config, bool must);

  static AbsCache cold(const mem::CacheConfig& config, bool must) {
    return AbsCache(config, must); // cold start: nothing cached (exact)
  }

  bool contains(std::uint32_t line) const;
  // Precise access to one line.
  void access(std::uint32_t line);
  // Access to exactly one of several candidate lines: the join over the
  // alternatives. Only the sets holding a candidate line are touched —
  // every other set image is invariant under each alternative, so the
  // whole-cache join degenerates to per-affected-set joins.
  void access_one_of(std::span<const std::uint32_t> lines);
  // Access to a completely unknown line.
  void access_unknown();

  bool join_with(const AbsCache& other); // true if changed
  bool operator==(const AbsCache& other) const;

  // Pointer identity of the full set-image vector: true implies equal
  // states (the reverse does not hold). Exposed for tests.
  bool same_state_as(const AbsCache& other) const { return sets_.same_as(other.sets_); }

  // ---- overlay interface ----------------------------------------------
  // The fixpoint replays each node's per-set access programs
  // (TransferCache::CacheRecipe::fetch_groups / data_groups) against
  // value-level scratch images instead of materializing a full
  // out-state cache: untouched sets never detach, and a touched set
  // whose program turns out to be the identity keeps its shared leaf
  // too. These helpers expose the exact per-set transfer/join semantics
  // the whole-cache operations above are built from.

  // The current image of set `s` (empty for a null leaf).
  const SetImage& set_image(unsigned s) const { return sets_.at(s); }
  // The transfer of access(line) on a detached value image.
  void apply_access_image(SetImage& image, std::uint32_t line) const {
    access_set(image, line);
  }
  // Single-pass fused variant: emits the transfer of access(line)
  // applied to `base` into `out` (buffer reused, no allocation at
  // steady capacity) and reports whether out differs from base —
  // replacing the copy + transform + compare triple of the overlay
  // build for the dominant one-line groups.
  bool access_into(const SetImage& base, std::uint32_t line, SetImage& out) const;
  // The restriction of access_one_of to one set: join over the in-set
  // alternatives (`lines`, program order) plus the unmodified image
  // when some alternative maps elsewhere (`outside`). The scratches are
  // caller-owned buffers reused across calls.
  void apply_one_of_image(SetImage& image, std::span<const std::uint32_t> lines,
                          bool outside, SetImage& scratch_alt,
                          SetImage& scratch_result) const;
  // The must half of access_unknown restricted to one set (the may
  // half is the identity).
  void age_image(SetImage& image) const;
  // Value-level join of `image` into set `s` (dry-run gated like
  // join_with). Returns true when the leaf changed.
  bool join_image(unsigned s, const SetImage& image);
  // Whole-state join from `source` with the touched sets overridden by
  // value images: `sets`/`changed`/`images` describe the overlay
  // (ascending set index; only entries with changed != 0 differ from
  // source's leaf). Exact same result as materializing the out-state
  // and calling join_with, without the materialization. Sets are
  // selected by a vectorized identity diff of the two leaf arrays, so
  // an edge whose states mostly share leaves costs a few SIMD compares
  // rather than a per-set walk.
  bool join_with_overlay(const AbsCache& source, std::span<const unsigned> sets,
                         std::span<const unsigned char> changed, const SetImage* images);
  // Install a value image as set `s`'s leaf (used when an out-state
  // must be materialized after all, e.g. for cross-instance buffers).
  void install_image(unsigned s, const SetImage& image);

  const mem::CacheConfig& config() const { return config_; }

private:
  void age_set(unsigned set, unsigned below_age);
  // The transfer of `access(line)` restricted to line's set image.
  void access_set(SetImage& set, std::uint32_t line) const;
  // Exact no-op predicate for `access(line)` on `set`: true when the
  // access would change the image (and the leaf must detach).
  bool access_changes(const SetImage& set, std::uint32_t line) const;
  // Join `theirs` into `mine` (must: intersection with maximal age;
  // may: union with minimal age). Returns true when `mine` changed.
  bool join_set(SetImage& mine, const SetImage& theirs) const;
  // Dry-run change predicates mirroring join_set's exact change report,
  // so an unchanged target leaf is never detached.
  bool must_join_changes(const SetImage& mine, const SetImage& theirs) const;
  bool may_join_changes(const SetImage& mine, const SetImage& theirs) const;
  // The one join-gating core behind join_image/join_leaf: dry-run
  // gated, in-place on uniquely owned leaves, aliasing `alias_source`'s
  // leaf (when given) whenever the result equals `theirs`. Returns true
  // when the leaf changed.
  bool join_core(unsigned s, const SetImage& theirs,
                 const CowVec<SetImage>* alias_source);
  // Leaf-level join of set `s` with COW sharing: skips detaching when
  // nothing changes, aliases `other`'s leaf when the join lands on
  // their value. Returns true when the leaf changed.
  bool join_leaf(unsigned s, const AbsCache& other);

  mem::CacheConfig config_;
  bool must_;
  // Per set: line -> abstract age in [0, ways), as a sorted flat vector
  // (sets hold at most a handful of lines; merge-joins beat tree maps)
  // behind a COW leaf — empty images are canonically null.
  CowVec<SetImage> sets_;
};

struct FetchClass {
  AccessClass cls = AccessClass::not_classified;
  int persistent_loop = -1; // outermost loop in which the line persists
};

struct DataClass {
  std::uint32_t pc = 0;
  bool is_store = false;
  AccessClass cls = AccessClass::not_classified;
  int persistent_loop = -1;
  // Distinct cache lines the access may touch: a persistent access can
  // still miss once per line per loop entry.
  unsigned candidate_count = 1;
};

class CacheAnalysis {
public:
  // Fixpoint scheduling strategy. `priority` is the production engine:
  // deterministic per-instance rounds (support/instance_rounds.hpp) —
  // each dirty function instance converges a local RPO worklist,
  // cross-instance call/ret joins merge in fixed (instance, edge)
  // order, and dirty instances fan out across the pool.
  // `round_robin` sweeps all nodes in id order until stable — the
  // reference iteration the engine is validated against in tests. The
  // must/may domain is a finite join-semilattice with no widening, so
  // the least fixpoint is provably schedule-independent: both
  // schedules, at any worker count, reach the identical classification.
  enum class Schedule { priority, round_robin };

  // `transfers` (optional): the shared transfer cache; when given, the
  // per-access candidate-line tables and per-node transfer recipes are
  // read from it instead of being re-derived per fixpoint visit / per
  // enclosing loop, and `pool` (optional) fans out the per-instance
  // fixpoint rounds, the per-node classification recording sweep and
  // the per-loop-tree persistence pass. Results are identical with or
  // without either.
  CacheAnalysis(const cfg::Supergraph& sg, const cfg::LoopForest& loops,
                const ValueAnalysis& values, const mem::MemoryMap& memmap,
                const mem::CacheConfig& icache, const mem::CacheConfig& dcache,
                Schedule schedule = Schedule::priority,
                std::vector<int> schedule_priorities = {},
                TransferCache* transfers = nullptr, ThreadPool* pool = nullptr);
  ~CacheAnalysis(); // out-of-line: owns a forward-declared TransferCache

  // Optional resource governor. Cache visits are charged at each round
  // barrier; once the budget (or the wall-clock deadline) is exhausted
  // the fixpoint stops at that barrier and the record sweep falls back
  // to conservative classifications — every state-dependent access
  // becomes not-classified (all-miss for timing purposes), which is
  // sound regardless of how far the fixpoint got. Cancellation is
  // checked at every worklist pop and aborts with CancelledError.
  void set_governor(const AnalysisGovernor* governor) { governor_ = governor; }
  // True when a budget/deadline trip truncated the fixpoint.
  bool degraded() const { return degraded_; }

  void run();

  // Incremental warm-start (src/serve): `prev` is the previous
  // converged analysis of a structurally identical supergraph and
  // `instance_clean` flags instances whose code fingerprints AND value
  // states are verified unchanged. Clean instances start frozen at
  // `prev`'s converged in-states; only dirty instances iterate from
  // cold. The must/may domain has no widening — its least fixpoint is
  // schedule-independent — so warm exactness reduces to three checks,
  // all performed here: (1) no loop of the forest spans a clean and a
  // dirty instance (the clean/dirty boundary is then acyclic and the
  // global least fixpoint decomposes componentwise); (2) no delivery
  // ever *changes* a frozen clean in-state; (3) every previously
  // feasible dirty->clean boundary edge stays feasible and delivers a
  // bit-identical out-state. Any violation discards the warm states
  // and reruns the cold fixpoint, so the published classifications are
  // always exactly the cold result. Returns true when the warm
  // fixpoint was committed (false: cold path ran, possibly after a
  // divergence fallback — see warm_fallback()).
  bool run(const CacheAnalysis* prev, const std::vector<char>* instance_clean);
  // True when the last run() attempted a warm start that diverged.
  bool warm_fallback() const { return warm_fallback_; }

  // Per node: classification of each instruction fetch (index-aligned
  // with the block's instruction list).
  const std::vector<FetchClass>& fetch_classes(int node) const {
    return fetch_[static_cast<std::size_t>(node)];
  }
  // Per node: classification of each data access (index-aligned with
  // ValueAnalysis::accesses(node)).
  const std::vector<DataClass>& data_classes(int node) const {
    return data_[static_cast<std::size_t>(node)];
  }

  struct Stats {
    unsigned fetch_hit = 0, fetch_miss = 0, fetch_nc = 0, fetch_uncached = 0;
    unsigned data_hit = 0, data_miss = 0, data_nc = 0, data_uncached = 0;
    unsigned persistent = 0;
  };
  Stats stats() const;

private:
  struct CachePair {
    AbsCache must;
    AbsCache may;
    bool join_with(const CachePair& other) {
      const bool a = must.join_with(other.must);
      const bool b = may.join_with(other.may);
      return a || b;
    }
    bool operator==(const CachePair& other) const {
      return must == other.must && may == other.may;
    }
  };

  // Memoized candidate cache lines of data access `index` in `node`
  // (index-aligned with ValueAnalysis::accesses); empty = unknown line.
  const std::vector<std::uint32_t>& lines_for(int node, std::size_t index) const;
  void build_line_tables();
  AccessClass classify(const CachePair& state, std::span<const std::uint32_t> lines) const;
  static void apply_access(CachePair& state, std::span<const std::uint32_t> lines);
  // Replays `node`'s memoized transfer recipe against the abstract
  // states. `record` additionally writes the classification rows
  // (fetch_/data_) from the pre-access states.
  void transfer(int node, CachePair& icache, CachePair& dcache, bool record);
  // Join an out-state pair into `target`'s in-state; returns true when
  // the in-state grew. The single join policy both schedules share —
  // the rounds engine and the round-robin reference must never diverge
  // here.
  bool join_target(int target, const CachePair& icache, const CachePair& dcache);
  // Join a node's out-state into every feasible successor, calling
  // `push_changed(target)` for each successor whose in-state grew.
  template <typename PushFn>
  void join_successors(int node, const CachePair& icache, const CachePair& dcache,
                       PushFn&& push_changed);
  // `prev`/`instance_clean` non-null: warm mode (see the public run
  // overload). Returns false when a warm attempt diverged and the
  // states must be discarded; cold mode always returns true.
  bool fixpoint_instance_rounds(const CacheAnalysis* prev,
                                const std::vector<char>* instance_clean);
  void fixpoint_round_robin();
  // Warm-start admission: no loop of the forest may span a clean and a
  // dirty instance (interprocedural feedback through the boundary
  // would break the componentwise least-fixpoint argument).
  bool warm_guard_ok(const std::vector<char>& instance_clean) const;
  // Post-fixpoint boundary audit for warm runs: previously feasible
  // dirty->clean edges must stay feasible and deliver out-states
  // bit-identical to the previous run's.
  bool warm_boundary_ok(const CacheAnalysis& prev,
                        const std::vector<char>& instance_clean);
  // Classification recording against the converged in-states without
  // cloning them: per-set value images are materialized lazily as the
  // node's recipe replays (production path; the round-robin schedule
  // keeps the classic whole-state transfer, which pins both
  // implementations to identical classifications in the differential
  // tests).
  void record_node_lazy(int node);
  // Degraded-mode recording: classification rows derived from the
  // recipe alone, never from the (possibly un-converged) abstract
  // states. Structural verdicts survive — uncached stays uncached,
  // same-line fetches stay always-hit — and every state-dependent
  // access is not-classified.
  void record_node_conservative(int node);
  void persistence();
  void persistence_tree(const std::vector<int>& loop_ids);

  const cfg::Supergraph& sg_;
  const cfg::LoopForest& loops_;
  const ValueAnalysis& values_;
  const mem::MemoryMap& memmap_;
  mem::CacheConfig iconfig_;
  mem::CacheConfig dconfig_;
  Schedule schedule_ = Schedule::priority;
  std::vector<int> schedule_priorities_;
  TransferCache* transfers_ = nullptr;
  ThreadPool* pool_ = nullptr;
  const AnalysisGovernor* governor_ = nullptr;
  bool degraded_ = false;
  bool warm_fallback_ = false;
  // Private cache when no shared one is attached (line tables only).
  std::unique_ptr<TransferCache> own_transfers_;
  std::vector<CachePair> in_i_;
  std::vector<CachePair> in_d_;
  // unsigned char, not vector<bool>: parallel instance rounds mark
  // disjoint intra-instance targets concurrently, and vector<bool>
  // packs bits into shared words.
  std::vector<unsigned char> has_state_;
  std::vector<std::vector<FetchClass>> fetch_;
  std::vector<std::vector<DataClass>> data_;
};

} // namespace wcet::analysis
