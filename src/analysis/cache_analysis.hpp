// Abstract cache analysis: LRU must/may analysis (Ferdinand-style) with
// a loop-scoped persistence pass.
//
//   must-cache: lines guaranteed present (age = upper bound) -> always-hit
//   may-cache:  lines possibly present (age = lower bound)   -> always-miss
//   persistence: a line whose conflict set within a reducible loop fits
//     the associativity can miss at most once per loop entry -> the IPET
//     charges its miss penalty on the loop-entry count, reproducing the
//     precision effect of virtual loop unrolling (the paper's rule-14.4
//     discussion: irreducible loops forfeit this, so no persistence is
//     computed for them).
//
// Imprecise accesses (unknown address) age the entire must-cache — the
// paper's "an imprecise memory access invalidates large parts of the
// abstract cache (or even the whole cache)" made executable.
//
// Engine: the fixpoint runs on the deterministic per-instance round
// scheduler (support/instance_rounds.hpp) shared with the value
// analysis, and each node's transfer replays a memoized recipe from
// the shared TransferCache (resolved fetch-line sequence + per-access
// cacheability/candidate-line verdicts) instead of re-decoding the
// block per visit. Classifications are bit-identical for any
// ThreadPool worker count and any schedule — the must/may domain has
// no widening, so the least fixpoint is schedule-independent.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "analysis/value_analysis.hpp"
#include "cfg/domloop.hpp"
#include "mem/cache.hpp"
#include "mem/memmap.hpp"
#include "support/flat_map.hpp"

namespace wcet {
class ThreadPool;
}

namespace wcet::analysis {

class TransferCache;

enum class AccessClass {
  always_hit,
  always_miss,
  not_classified,
  uncached, // io / uncacheable region or store (write-through bypasses)
};

const char* to_string(AccessClass cls);

// One abstract set-associative LRU cache (must or may variant).
class AbsCache {
public:
  using SetImage = FlatMap<std::uint32_t, unsigned>;

  AbsCache(const mem::CacheConfig& config, bool must);

  static AbsCache cold(const mem::CacheConfig& config, bool must) {
    return AbsCache(config, must); // cold start: nothing cached (exact)
  }

  bool contains(std::uint32_t line) const;
  // Precise access to one line.
  void access(std::uint32_t line);
  // Access to exactly one of several candidate lines: the join over the
  // alternatives. Only the sets holding a candidate line are touched —
  // every other set image is invariant under each alternative, so the
  // whole-cache join degenerates to per-affected-set joins.
  void access_one_of(std::span<const std::uint32_t> lines);
  // Access to a completely unknown line.
  void access_unknown();

  bool join_with(const AbsCache& other); // true if changed
  bool operator==(const AbsCache& other) const;

  const mem::CacheConfig& config() const { return config_; }

private:
  void age_set(unsigned set, unsigned below_age);
  // The transfer of `access(line)` restricted to line's set image.
  void access_set(SetImage& set, std::uint32_t line) const;
  // Join `theirs` into `mine` (must: intersection with maximal age;
  // may: union with minimal age). Returns true when `mine` changed.
  bool join_set(SetImage& mine, const SetImage& theirs) const;

  mem::CacheConfig config_;
  bool must_;
  // Per set: line -> abstract age in [0, ways), as a sorted flat vector
  // (sets hold at most a handful of lines; merge-joins beat tree maps).
  std::vector<SetImage> sets_;
};

struct FetchClass {
  AccessClass cls = AccessClass::not_classified;
  int persistent_loop = -1; // outermost loop in which the line persists
};

struct DataClass {
  std::uint32_t pc = 0;
  bool is_store = false;
  AccessClass cls = AccessClass::not_classified;
  int persistent_loop = -1;
  // Distinct cache lines the access may touch: a persistent access can
  // still miss once per line per loop entry.
  unsigned candidate_count = 1;
};

class CacheAnalysis {
public:
  // Fixpoint scheduling strategy. `priority` is the production engine:
  // deterministic per-instance rounds (support/instance_rounds.hpp) —
  // each dirty function instance converges a local RPO worklist,
  // cross-instance call/ret joins merge in fixed (instance, edge)
  // order, and dirty instances fan out across the pool.
  // `round_robin` sweeps all nodes in id order until stable — the
  // reference iteration the engine is validated against in tests. The
  // must/may domain is a finite join-semilattice with no widening, so
  // the least fixpoint is provably schedule-independent: both
  // schedules, at any worker count, reach the identical classification.
  enum class Schedule { priority, round_robin };

  // `transfers` (optional): the shared transfer cache; when given, the
  // per-access candidate-line tables and per-node transfer recipes are
  // read from it instead of being re-derived per fixpoint visit / per
  // enclosing loop, and `pool` (optional) fans out the per-instance
  // fixpoint rounds, the per-node classification recording sweep and
  // the per-loop-tree persistence pass. Results are identical with or
  // without either.
  CacheAnalysis(const cfg::Supergraph& sg, const cfg::LoopForest& loops,
                const ValueAnalysis& values, const mem::MemoryMap& memmap,
                const mem::CacheConfig& icache, const mem::CacheConfig& dcache,
                Schedule schedule = Schedule::priority,
                std::vector<int> schedule_priorities = {},
                TransferCache* transfers = nullptr, ThreadPool* pool = nullptr);
  ~CacheAnalysis(); // out-of-line: owns a forward-declared TransferCache

  void run();

  // Per node: classification of each instruction fetch (index-aligned
  // with the block's instruction list).
  const std::vector<FetchClass>& fetch_classes(int node) const {
    return fetch_[static_cast<std::size_t>(node)];
  }
  // Per node: classification of each data access (index-aligned with
  // ValueAnalysis::accesses(node)).
  const std::vector<DataClass>& data_classes(int node) const {
    return data_[static_cast<std::size_t>(node)];
  }

  struct Stats {
    unsigned fetch_hit = 0, fetch_miss = 0, fetch_nc = 0, fetch_uncached = 0;
    unsigned data_hit = 0, data_miss = 0, data_nc = 0, data_uncached = 0;
    unsigned persistent = 0;
  };
  Stats stats() const;

private:
  struct CachePair {
    AbsCache must;
    AbsCache may;
    bool join_with(const CachePair& other) {
      const bool a = must.join_with(other.must);
      const bool b = may.join_with(other.may);
      return a || b;
    }
    bool operator==(const CachePair& other) const {
      return must == other.must && may == other.may;
    }
  };

  // Memoized candidate cache lines of data access `index` in `node`
  // (index-aligned with ValueAnalysis::accesses); empty = unknown line.
  const std::vector<std::uint32_t>& lines_for(int node, std::size_t index) const;
  void build_line_tables();
  AccessClass classify(const CachePair& state, std::span<const std::uint32_t> lines) const;
  static void apply_access(CachePair& state, std::span<const std::uint32_t> lines);
  // Replays `node`'s memoized transfer recipe against the abstract
  // states. `record` additionally writes the classification rows
  // (fetch_/data_) from the pre-access states.
  void transfer(int node, CachePair& icache, CachePair& dcache, bool record);
  // Join an out-state pair into `target`'s in-state; returns true when
  // the in-state grew. The single join policy both schedules share —
  // the rounds engine and the round-robin reference must never diverge
  // here.
  bool join_target(int target, const CachePair& icache, const CachePair& dcache);
  // Join a node's out-state into every feasible successor, calling
  // `push_changed(target)` for each successor whose in-state grew.
  template <typename PushFn>
  void join_successors(int node, const CachePair& icache, const CachePair& dcache,
                       PushFn&& push_changed);
  void fixpoint_instance_rounds();
  void fixpoint_round_robin();
  void persistence();
  void persistence_tree(const std::vector<int>& loop_ids);

  const cfg::Supergraph& sg_;
  const cfg::LoopForest& loops_;
  const ValueAnalysis& values_;
  const mem::MemoryMap& memmap_;
  mem::CacheConfig iconfig_;
  mem::CacheConfig dconfig_;
  Schedule schedule_ = Schedule::priority;
  std::vector<int> schedule_priorities_;
  TransferCache* transfers_ = nullptr;
  ThreadPool* pool_ = nullptr;
  // Private cache when no shared one is attached (line tables only).
  std::unique_ptr<TransferCache> own_transfers_;
  std::vector<CachePair> in_i_;
  std::vector<CachePair> in_d_;
  // unsigned char, not vector<bool>: parallel instance rounds mark
  // disjoint intra-instance targets concurrently, and vector<bool>
  // packs bits into shared words.
  std::vector<unsigned char> has_state_;
  std::vector<std::vector<FetchClass>> fetch_;
  std::vector<std::vector<DataClass>> data_;
};

} // namespace wcet::analysis
