#include "validate/witness_replay.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "sim/simulator.hpp"

namespace wcet::validate {

namespace {

// Loop-event tables of the witness walk — same construction as the path
// oracle's (see path_oracle.cpp), kept local because the walk needs
// nothing else from it.
struct LoopTables {
  std::vector<std::vector<int>> entry_of; // edge -> loops it enters
  std::vector<std::vector<int>> back_of;  // edge -> loops it closes
  std::vector<std::int64_t> bound;        // per loop, -1 = absent
};

LoopTables build_loop_tables(const cfg::Supergraph& sg, const cfg::LoopForest& loops,
                             const std::map<int, std::uint64_t>& loop_bounds) {
  LoopTables tables;
  tables.entry_of.resize(sg.edges().size());
  tables.back_of.resize(sg.edges().size());
  tables.bound.assign(loops.loops().size(), -1);
  for (const cfg::Loop& loop : loops.loops()) {
    for (const int eid : loop.entry_edges) {
      tables.entry_of[static_cast<std::size_t>(eid)].push_back(loop.id);
    }
    for (const int eid : loop.back_edges) {
      tables.back_of[static_cast<std::size_t>(eid)].push_back(loop.id);
    }
    const auto it = loop_bounds.find(loop.id);
    if (it != loop_bounds.end()) {
      tables.bound[static_cast<std::size_t>(loop.id)] = static_cast<std::int64_t>(it->second);
    }
  }
  return tables;
}

} // namespace

WitnessCheck check_witness(const cfg::Supergraph& sg, const cfg::LoopForest& loops,
                           const std::map<int, std::uint64_t>& loop_bounds,
                           const std::map<int, std::uint64_t>& node_counts,
                           const std::function<bool(int)>& edge_feasible,
                           std::uint64_t max_steps) {
  WitnessCheck check;

  const std::size_t n = sg.nodes().size();
  std::vector<std::uint64_t> remaining(n, 0);
  std::uint64_t total = 0;
  for (const auto& [node, count] : node_counts) {
    if (node < 0 || static_cast<std::size_t>(node) >= n) {
      check.status = WitnessCheck::Status::invalid;
      check.detail = "witness names a node outside the supergraph";
      return check;
    }
    remaining[static_cast<std::size_t>(node)] = count;
    total += count;
  }
  if (total == 0) {
    check.status = WitnessCheck::Status::no_witness;
    check.detail = "empty witness";
    return check;
  }

  std::vector<char> is_exit(n, 0);
  for (const int node : sg.exit_nodes()) is_exit[static_cast<std::size_t>(node)] = 1;

  const int entry = sg.entry_node();
  if (remaining[static_cast<std::size_t>(entry)] == 0) {
    check.status = WitnessCheck::Status::invalid;
    check.detail = "witness does not execute the task entry node";
    return check;
  }

  const LoopTables tables = build_loop_tables(sg, loops, loop_bounds);
  std::vector<std::uint64_t> entries(tables.bound.size(), 0);
  std::vector<std::uint64_t> backs(tables.bound.size(), 0);

  const auto feasible = [&](int eid) { return !edge_feasible || edge_feasible(eid); };

  // Prefix-wise loop-bound admission, identical to the path oracle's.
  const auto try_edge = [&](int eid) {
    const auto id = static_cast<std::size_t>(eid);
    for (const int l : tables.entry_of[id]) ++entries[static_cast<std::size_t>(l)];
    for (const int l : tables.back_of[id]) {
      const auto loop = static_cast<std::size_t>(l);
      if (tables.bound[loop] < 0 ||
          backs[loop] + 1 >
              static_cast<std::uint64_t>(tables.bound[loop]) * entries[loop]) {
        for (const int undo : tables.entry_of[id]) --entries[static_cast<std::size_t>(undo)];
        return false;
      }
    }
    for (const int l : tables.back_of[id]) ++backs[static_cast<std::size_t>(l)];
    return true;
  };
  const auto undo_edge = [&](int eid) {
    const auto id = static_cast<std::size_t>(eid);
    for (const int l : tables.back_of[id]) --backs[static_cast<std::size_t>(l)];
    for (const int l : tables.entry_of[id]) --entries[static_cast<std::size_t>(l)];
  };

  struct Frame {
    int node = -1;
    int edge_in = -1;
    std::vector<int> candidates;
    std::size_t next = 0;
  };
  // Candidate order: largest remaining multiplicity first — on
  // structured flow this walks loops before their exits, which is where
  // the remaining iterations are, and keeps backtracking rare.
  const auto push_frame = [&](std::vector<Frame>& stack, int node, int edge_in) {
    --remaining[static_cast<std::size_t>(node)];
    --total;
    Frame frame;
    frame.node = node;
    frame.edge_in = edge_in;
    for (const int eid : sg.node(node).succ_edges) {
      if (feasible(eid)) frame.candidates.push_back(eid);
    }
    std::sort(frame.candidates.begin(), frame.candidates.end(), [&](int a, int b) {
      const std::uint64_t ra = remaining[static_cast<std::size_t>(sg.edge(a).to)];
      const std::uint64_t rb = remaining[static_cast<std::size_t>(sg.edge(b).to)];
      if (ra != rb) return ra > rb;
      return a < b;
    });
    stack.push_back(std::move(frame));
  };

  std::vector<Frame> stack;
  push_frame(stack, entry, -1);
  if (total == 0 && is_exit[static_cast<std::size_t>(entry)]) {
    check.status = WitnessCheck::Status::valid;
    return check;
  }

  while (!stack.empty()) {
    Frame& frame = stack.back();
    bool descended = false;
    while (frame.next < frame.candidates.size()) {
      if (check.steps >= max_steps) {
        check.status = WitnessCheck::Status::budget_exhausted;
        check.detail = "witness walk budget exhausted before a verdict";
        return check;
      }
      const int eid = frame.candidates[frame.next++];
      ++check.steps;
      const int to = sg.edge(eid).to;
      if (remaining[static_cast<std::size_t>(to)] == 0) continue;
      if (!try_edge(eid)) continue;
      push_frame(stack, to, eid);
      if (total == 0 && is_exit[static_cast<std::size_t>(to)]) {
        check.status = WitnessCheck::Status::valid;
        return check;
      }
      descended = true;
      break;
    }
    if (descended) continue;
    ++remaining[static_cast<std::size_t>(frame.node)];
    ++total;
    if (frame.edge_in >= 0) undo_edge(frame.edge_in);
    stack.pop_back();
  }

  check.status = WitnessCheck::Status::invalid;
  check.detail = "witness counts admit no feasible entry->exit path under the loop bounds";
  return check;
}

ReplayResult replay_measured(const isa::Image& image, const mem::HwConfig& hw,
                             const ReplayOptions& options) {
  sim::Simulator simulator(image, hw);
  sim::SimOptions sim_options;
  sim_options.max_steps = options.max_steps;
  sim_options.max_cycles = options.max_cycles;
  const sim::SimResult run = simulator.run(sim_options);

  ReplayResult result;
  result.measured_cycles = run.cycles;
  result.instructions = run.instructions;
  switch (run.stop) {
  case sim::SimResult::Stop::halted:
  case sim::SimResult::Stop::exited:
    result.status = ReplayResult::Status::replayed;
    break;
  case sim::SimResult::Stop::trapped:
    result.status = ReplayResult::Status::trapped;
    result.reason = "replay trapped: " + run.trap_reason;
    break;
  case sim::SimResult::Stop::step_limit: {
    result.status = ReplayResult::Status::budget_exhausted;
    std::ostringstream os;
    os << "replay hit the step cap (" << options.max_steps << " instructions)";
    result.reason = os.str();
    break;
  }
  case sim::SimResult::Stop::cycle_limit: {
    result.status = ReplayResult::Status::budget_exhausted;
    std::ostringstream os;
    os << "replay hit the cycle cap (" << options.max_cycles << " cycles)";
    result.reason = os.str();
    break;
  }
  }
  return result;
}

} // namespace wcet::validate
