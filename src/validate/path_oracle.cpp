#include "validate/path_oracle.hpp"

#include <algorithm>
#include <limits>

// Soundness of the bracket under truncation
// -----------------------------------------
// The sweep enumerates entry->exit walks over *feasible* edges only and
// admits a back-edge traversal of loop L only while
//
//   backs(L) + 1 <= bound(L) * entries(L)        (prefix-wise)
//
// where backs/entries count traversals on the current path prefix, with
// this edge's own loop-entry events applied first. Two containments
// follow:
//
//  * Every walk the sweep completes induces a node/edge count vector
//    satisfying the ILP's constraints — flow conservation holds for any
//    walk, the final prefix totals are the ILP's totals, so the
//    prefix-wise loop rule implies `sum(back) <= B * sum(entry)`, and
//    the flow-fact filters below reject exactly the count vectors the
//    ILP's fact rows cut off. Hence cost(path) is bounded by the ILP
//    optima in both senses: max explored <= WCET, BCET <= min explored.
//  * Every *real* execution keeps each loop sojourn under its bound, so
//    its prefix totals satisfy the same rule — the enumeration space
//    contains all real paths, which is what makes a `complete` sweep an
//    exact reference (on fact-free systems the ILP integral optimum is
//    walk-realizable, so `complete` implies equality, not just <=).
//
// Both properties hold for every prefix-closed subset of the search
// tree, so a budget-truncated sweep still yields a valid (just weaker)
// bracket.
namespace wcet::validate {

namespace {

constexpr std::uint64_t k_no_cost = std::numeric_limits<std::uint64_t>::max();

// Immutable per-explore() tables shared by both sweeps.
struct OracleContext {
  const cfg::Supergraph& sg;
  const analysis::PipelineAnalysis& pipeline;
  const PathOracleOptions& options;

  std::vector<char> feasible;              // per edge
  std::vector<std::vector<int>> entry_of;  // edge -> loops it enters
  std::vector<std::vector<int>> back_of;   // edge -> loops it closes
  std::vector<std::int64_t> bound;         // per loop, -1 = absent
  std::vector<char> is_exit;               // per node
  std::vector<char> excluded;              // per node (mode excludes + nevers)
  std::vector<std::vector<int>> caps_of;   // node -> flow-cap indices
  std::vector<std::uint64_t> cap_max;      // per cap
  std::vector<std::vector<int>> ratio_a_of; // node -> ratio indices (capped side)
  std::vector<std::vector<int>> ratio_b_of; // node -> ratio indices (relative side)
  std::vector<std::uint64_t> ratio_factor;  // per ratio
  std::vector<std::vector<int>> pair_a_of;  // node -> infeasible-pair indices
  std::vector<std::vector<int>> pair_b_of;
  // Nodes carrying persistence-miss terms (the sparse minority).
  std::vector<int> ps_nodes;
};

OracleContext build_context(const cfg::Supergraph& sg, const cfg::LoopForest& loops,
                            const analysis::PipelineAnalysis& pipeline,
                            const PathOracle::EdgeFeasible& edge_feasible,
                            const PathOracleOptions& options) {
  OracleContext ctx{sg, pipeline, options};
  const std::size_t n = sg.nodes().size();
  const std::size_t m = sg.edges().size();
  const std::size_t loop_count = loops.loops().size();

  ctx.feasible.assign(m, 1);
  if (edge_feasible) {
    for (std::size_t e = 0; e < m; ++e) {
      ctx.feasible[e] = edge_feasible(static_cast<int>(e)) ? 1 : 0;
    }
  }

  ctx.entry_of.resize(m);
  ctx.back_of.resize(m);
  ctx.bound.assign(loop_count, -1);
  for (const cfg::Loop& loop : loops.loops()) {
    for (const int eid : loop.entry_edges) {
      ctx.entry_of[static_cast<std::size_t>(eid)].push_back(loop.id);
    }
    for (const int eid : loop.back_edges) {
      ctx.back_of[static_cast<std::size_t>(eid)].push_back(loop.id);
    }
    const auto it = options.loop_bounds.find(loop.id);
    if (it != options.loop_bounds.end()) {
      ctx.bound[static_cast<std::size_t>(loop.id)] = static_cast<std::int64_t>(it->second);
    }
  }

  ctx.is_exit.assign(n, 0);
  for (const int node : sg.exit_nodes()) ctx.is_exit[static_cast<std::size_t>(node)] = 1;

  // Flow facts, keyed per node through the same address->node mapping
  // the ILP fact rows use (Supergraph::nodes_covering). A fact whose
  // address covers only unreachable nodes is inert here exactly as in
  // the ILP: those nodes are never visited, so their counts stay 0.
  ctx.excluded.assign(n, 0);
  for (const std::uint32_t addr : options.excluded_addrs) {
    for (const int node : sg.nodes_covering(addr)) {
      ctx.excluded[static_cast<std::size_t>(node)] = 1;
    }
  }
  ctx.caps_of.resize(n);
  for (const annot::FlowCapFact& cap : options.flow_caps) {
    const int index = static_cast<int>(ctx.cap_max.size());
    ctx.cap_max.push_back(cap.max_count);
    for (const int node : sg.nodes_covering(cap.addr)) {
      ctx.caps_of[static_cast<std::size_t>(node)].push_back(index);
    }
  }
  ctx.ratio_a_of.resize(n);
  ctx.ratio_b_of.resize(n);
  for (const annot::FlowRatioFact& ratio : options.flow_ratios) {
    const int index = static_cast<int>(ctx.ratio_factor.size());
    ctx.ratio_factor.push_back(ratio.factor);
    for (const int node : sg.nodes_covering(ratio.addr)) {
      ctx.ratio_a_of[static_cast<std::size_t>(node)].push_back(index);
    }
    for (const int node : sg.nodes_covering(ratio.relative_to)) {
      ctx.ratio_b_of[static_cast<std::size_t>(node)].push_back(index);
    }
  }
  ctx.pair_a_of.resize(n);
  ctx.pair_b_of.resize(n);
  int pair_count = 0;
  for (const annot::InfeasiblePairFact& pair : options.infeasible_pairs) {
    const int index = pair_count++;
    for (const int node : sg.nodes_covering(pair.a)) {
      ctx.pair_a_of[static_cast<std::size_t>(node)].push_back(index);
    }
    for (const int node : sg.nodes_covering(pair.b)) {
      ctx.pair_b_of[static_cast<std::size_t>(node)].push_back(index);
    }
  }

  for (std::size_t node = 0; node < n; ++node) {
    if (!pipeline.timing(static_cast<int>(node)).ps_terms.empty()) {
      ctx.ps_nodes.push_back(static_cast<int>(node));
    }
  }
  return ctx;
}

// One budgeted DFS over the feasible supergraph. `maximize` picks the
// successor bias: expensive-first with back edges up front (sharpens the
// max), or cheap-first with back edges last (sharpens the min).
class Sweep {
public:
  Sweep(const OracleContext& ctx, std::size_t loop_count, bool maximize)
      : ctx_(ctx), maximize_(maximize) {
    const std::size_t n = ctx.sg.nodes().size();
    exec_.assign(n, 0);
    entries_.assign(loop_count, 0);
    backs_.assign(loop_count, 0);
    cap_used_.assign(ctx.cap_max.size(), 0);
    ratio_a_.assign(ctx.ratio_factor.size(), 0);
    ratio_b_.assign(ctx.ratio_factor.size(), 0);
    std::size_t pairs = 0;
    for (const auto& list : ctx.pair_a_of) {
      for (const int p : list) pairs = std::max(pairs, static_cast<std::size_t>(p) + 1);
    }
    for (const auto& list : ctx.pair_b_of) {
      for (const int p : list) pairs = std::max(pairs, static_cast<std::size_t>(p) + 1);
    }
    pair_a_.assign(pairs, 0);
    pair_b_.assign(pairs, 0);
    build_order();
  }

  void run(int entry) {
    if (!try_arrive(entry)) return; // excluded entry: nothing reachable
    stack_.push_back({entry, -1, 0, false});
    maybe_record(stack_.back());
    while (!stack_.empty() && !truncated_) {
      Frame& frame = stack_.back();
      const std::vector<int>& order = succ_order_[static_cast<std::size_t>(frame.node)];
      if (frame.next >= order.size()) {
        if (!frame.progressed) ++dead_ends_;
        undo_arrive(frame.node);
        if (frame.edge_in >= 0) undo_edge(frame.edge_in);
        stack_.pop_back();
        continue;
      }
      if (steps_ >= ctx_.options.max_steps) {
        truncated_ = true;
        break;
      }
      const int eid = order[frame.next++];
      ++steps_;
      if ((steps_ & 0xfffu) == 0 && ctx_.options.checkpoint) ctx_.options.checkpoint();
      if (!try_edge(eid)) continue;
      const int to = ctx_.sg.edge(eid).to;
      if (!try_arrive(to)) {
        undo_edge(eid);
        continue;
      }
      frame.progressed = true;
      stack_.push_back({to, eid, 0, false});
      maybe_record(stack_.back());
      if (paths_ >= ctx_.options.max_paths) truncated_ = true;
    }
  }

  bool truncated() const { return truncated_; }
  std::uint64_t paths() const { return paths_; }
  std::uint64_t steps() const { return steps_; }
  std::uint64_t dead_ends() const { return dead_ends_; }
  std::uint64_t max_cost() const { return max_cost_; }
  std::uint64_t min_cost() const { return min_cost_; }

private:
  struct Frame {
    int node = -1;
    int edge_in = -1;       // edge taken to arrive here (-1 at the entry)
    std::size_t next = 0;   // next successor-order index to try
    bool progressed = false; // descended, or a path was recorded here
  };

  void build_order() {
    const cfg::Supergraph& sg = ctx_.sg;
    succ_order_.resize(sg.nodes().size());
    for (const cfg::SgNode& node : sg.nodes()) {
      std::vector<int>& list = succ_order_[static_cast<std::size_t>(node.id)];
      for (const int eid : node.succ_edges) {
        if (ctx_.feasible[static_cast<std::size_t>(eid)]) list.push_back(eid);
      }
      const auto key = [&](int eid) -> std::uint64_t {
        const analysis::NodeTiming& t = ctx_.pipeline.timing(sg.edge(eid).to);
        return (maximize_ ? t.ub : t.lb) + ctx_.pipeline.edge_extra(eid);
      };
      const auto is_back = [&](int eid) {
        return !ctx_.back_of[static_cast<std::size_t>(eid)].empty();
      };
      std::sort(list.begin(), list.end(), [&](int a, int b) {
        const bool back_a = is_back(a);
        const bool back_b = is_back(b);
        if (back_a != back_b) return maximize_ ? back_a : back_b;
        const std::uint64_t key_a = key(a);
        const std::uint64_t key_b = key(b);
        if (key_a != key_b) return maximize_ ? key_a > key_b : key_a < key_b;
        return a < b; // deterministic tie-break
      });
    }
  }

  // Arrival at `node`: reject if an exclusion, an exhausted cap, or an
  // infeasible pair (other side already executed) prohibits it — all
  // three are prefix-prunable because counts only grow along a path.
  bool try_arrive(int node) {
    const auto id = static_cast<std::size_t>(node);
    if (ctx_.excluded[id]) return false;
    for (const int c : ctx_.caps_of[id]) {
      if (cap_used_[static_cast<std::size_t>(c)] + 1 >
          ctx_.cap_max[static_cast<std::size_t>(c)]) {
        return false;
      }
    }
    for (const int p : ctx_.pair_a_of[id]) {
      if (pair_b_[static_cast<std::size_t>(p)] > 0) return false;
    }
    for (const int p : ctx_.pair_b_of[id]) {
      if (pair_a_[static_cast<std::size_t>(p)] > 0) return false;
    }
    ++exec_[id];
    for (const int c : ctx_.caps_of[id]) ++cap_used_[static_cast<std::size_t>(c)];
    for (const int p : ctx_.pair_a_of[id]) ++pair_a_[static_cast<std::size_t>(p)];
    for (const int p : ctx_.pair_b_of[id]) ++pair_b_[static_cast<std::size_t>(p)];
    for (const int r : ctx_.ratio_a_of[id]) ++ratio_a_[static_cast<std::size_t>(r)];
    for (const int r : ctx_.ratio_b_of[id]) ++ratio_b_[static_cast<std::size_t>(r)];
    const analysis::NodeTiming& t = ctx_.pipeline.timing(node);
    cost_ub_ += t.ub;
    cost_lb_ += t.lb;
    return true;
  }

  void undo_arrive(int node) {
    const auto id = static_cast<std::size_t>(node);
    --exec_[id];
    for (const int c : ctx_.caps_of[id]) --cap_used_[static_cast<std::size_t>(c)];
    for (const int p : ctx_.pair_a_of[id]) --pair_a_[static_cast<std::size_t>(p)];
    for (const int p : ctx_.pair_b_of[id]) --pair_b_[static_cast<std::size_t>(p)];
    for (const int r : ctx_.ratio_a_of[id]) --ratio_a_[static_cast<std::size_t>(r)];
    for (const int r : ctx_.ratio_b_of[id]) --ratio_b_[static_cast<std::size_t>(r)];
    const analysis::NodeTiming& t = ctx_.pipeline.timing(node);
    cost_ub_ -= t.ub;
    cost_lb_ -= t.lb;
  }

  // Traversal of `eid`: apply its loop-entry events, then admit each
  // back-edge event only under the prefix-wise bound rule. A loop whose
  // bound is absent never passed the missing-bound pre-check with a
  // feasible entry, so its back edges are simply untakeable — mirroring
  // the ILP, which forces back-edge flow of entry-less loops to zero.
  bool try_edge(int eid) {
    const auto id = static_cast<std::size_t>(eid);
    for (const int l : ctx_.entry_of[id]) ++entries_[static_cast<std::size_t>(l)];
    for (const int l : ctx_.back_of[id]) {
      const auto loop = static_cast<std::size_t>(l);
      if (ctx_.bound[loop] < 0 ||
          backs_[loop] + 1 >
              static_cast<std::uint64_t>(ctx_.bound[loop]) * entries_[loop]) {
        for (const int undo : ctx_.entry_of[id]) --entries_[static_cast<std::size_t>(undo)];
        return false;
      }
    }
    for (const int l : ctx_.back_of[id]) ++backs_[static_cast<std::size_t>(l)];
    const unsigned extra = ctx_.pipeline.edge_extra(eid);
    cost_ub_ += extra;
    cost_lb_ += extra;
    return true;
  }

  void undo_edge(int eid) {
    const auto id = static_cast<std::size_t>(eid);
    for (const int l : ctx_.back_of[id]) --backs_[static_cast<std::size_t>(l)];
    for (const int l : ctx_.entry_of[id]) --entries_[static_cast<std::size_t>(l)];
    const unsigned extra = ctx_.pipeline.edge_extra(eid);
    cost_ub_ -= extra;
    cost_lb_ -= extra;
  }

  // The ILP lets flow pass *through* an exit node, so a path is
  // recorded at every exit arrival and the DFS still descends into the
  // exit's successors afterwards.
  void maybe_record(Frame& frame) {
    if (!ctx_.is_exit[static_cast<std::size_t>(frame.node)]) return;
    // Relative flow facts bound a count by another count that may still
    // grow, so they are checked at completion time only.
    for (std::size_t r = 0; r < ratio_a_.size(); ++r) {
      if (ratio_a_[r] > ctx_.ratio_factor[r] * ratio_b_[r]) return;
    }
    // Persistence-miss charge, mirroring the ILP's maximize optimum:
    // misses = min(executions, line_count * loop entries) per term. The
    // minimize optimum pins every miss to zero, so min_cost takes none.
    std::uint64_t ps = 0;
    for (const int node : ctx_.ps_nodes) {
      const std::uint64_t exec = exec_[static_cast<std::size_t>(node)];
      if (exec == 0) continue;
      for (const analysis::PsTerm& term : ctx_.pipeline.timing(node).ps_terms) {
        const std::uint64_t entries =
            term.loop_id >= 0 ? entries_[static_cast<std::size_t>(term.loop_id)] : 0;
        ps += term.penalty * std::min<std::uint64_t>(exec, term.line_count * entries);
      }
    }
    frame.progressed = true;
    ++paths_;
    max_cost_ = std::max(max_cost_, cost_ub_ + ps);
    min_cost_ = std::min(min_cost_, cost_lb_);
  }

  const OracleContext& ctx_;
  const bool maximize_;
  std::vector<std::vector<int>> succ_order_;
  std::vector<Frame> stack_;
  std::vector<std::uint64_t> exec_;
  std::vector<std::uint64_t> entries_;
  std::vector<std::uint64_t> backs_;
  std::vector<std::uint64_t> cap_used_;
  std::vector<std::uint64_t> ratio_a_;
  std::vector<std::uint64_t> ratio_b_;
  std::vector<std::uint64_t> pair_a_;
  std::vector<std::uint64_t> pair_b_;
  std::uint64_t cost_ub_ = 0;
  std::uint64_t cost_lb_ = 0;
  std::uint64_t paths_ = 0;
  std::uint64_t steps_ = 0;
  std::uint64_t dead_ends_ = 0;
  std::uint64_t max_cost_ = 0;
  std::uint64_t min_cost_ = k_no_cost;
  bool truncated_ = false;
};

void merge_sweep(PathOracleResult& result, const Sweep& sweep) {
  result.paths_explored += sweep.paths();
  result.steps += sweep.steps();
  result.dead_ends += sweep.dead_ends();
  result.max_path_cost = std::max(result.max_path_cost, sweep.max_cost());
  result.min_path_cost = std::min(result.min_path_cost, sweep.min_cost());
}

} // namespace

PathOracle::PathOracle(const cfg::Supergraph& sg, const cfg::LoopForest& loops,
                       const analysis::PipelineAnalysis& pipeline,
                       EdgeFeasible edge_feasible)
    : sg_(sg), loops_(loops), pipeline_(pipeline), edge_feasible_(std::move(edge_feasible)) {}

PathOracleResult PathOracle::explore(const PathOracleOptions& options) const {
  PathOracleResult result;
  result.min_path_cost = k_no_cost;

  const OracleContext ctx = build_context(sg_, loops_, pipeline_, edge_feasible_, options);

  // Mirror Ipet::missing_loop_bounds_in: a loop with a feasible back
  // edge, a feasible entry edge, and no bound makes the enumeration
  // space infinite — the same configurations the ILP refuses to solve.
  for (const cfg::Loop& loop : loops_.loops()) {
    const auto any_feasible = [&](const std::vector<int>& edges) {
      return std::any_of(edges.begin(), edges.end(), [&](int eid) {
        return ctx.feasible[static_cast<std::size_t>(eid)] != 0;
      });
    };
    if (!any_feasible(loop.back_edges)) continue;
    if (!any_feasible(loop.entry_edges)) continue;
    if (options.loop_bounds.count(loop.id) != 0) continue;
    result.loops_missing_bounds.push_back(loop.id);
  }
  if (!result.loops_missing_bounds.empty()) {
    result.status = PathOracleResult::Status::missing_loop_bounds;
    result.min_path_cost = 0;
    return result;
  }

  const std::size_t loop_count = loops_.loops().size();
  Sweep max_sweep(ctx, loop_count, /*maximize=*/true);
  max_sweep.run(sg_.entry_node());
  merge_sweep(result, max_sweep);

  // A complete max-biased sweep visited the whole search space; its min
  // is already exact and the second sweep would retrace it.
  if (max_sweep.truncated()) {
    Sweep min_sweep(ctx, loop_count, /*maximize=*/false);
    min_sweep.run(sg_.entry_node());
    merge_sweep(result, min_sweep);
    result.status = PathOracleResult::Status::truncated;
  } else {
    result.status = PathOracleResult::Status::complete;
  }
  if (result.paths_explored == 0) {
    result.status = PathOracleResult::Status::no_paths;
    result.min_path_cost = 0;
  }
  return result;
}

} // namespace wcet::validate
