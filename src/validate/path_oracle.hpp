// Bounded exhaustive path-exploration oracle: an *independent* check of
// the IPET bounds. It never touches the ILP — it enumerates structurally
// feasible supergraph paths directly (loop bounds cap iteration counts,
// flow facts prune infeasible count vectors) and costs each path with
// the same per-node [lb, ub] timing recipes and per-edge extras the
// path analysis folds into its objectives. For any subset of the
// enumerable paths
//
//   max explored path cost <= WCET bound
//   BCET bound <= min explored path cost
//
// must hold, because every enumerated path induces a count vector that
// is feasible for the ILP (see the soundness note in path_oracle.cpp).
// So the bracket assertion stays sound even when the path/step budget
// truncates the enumeration — truncation only weakens how *tight* the
// bracket is, never its validity.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "analysis/pipeline_analysis.hpp"
#include "annot/annotations.hpp"
#include "cfg/domloop.hpp"
#include "cfg/supergraph.hpp"

namespace wcet::validate {

struct PathOracleOptions {
  PathOracleOptions() {}
  // The same inputs the IPET solve constrained paths with
  // (analysis::IpetOptions): loop bounds and the Section-4.3 flow facts.
  std::map<int, std::uint64_t> loop_bounds; // loop id -> max back edges per entry
  std::vector<annot::FlowCapFact> flow_caps;
  std::vector<annot::FlowRatioFact> flow_ratios;
  std::vector<annot::InfeasiblePairFact> infeasible_pairs;
  std::set<std::uint32_t> excluded_addrs;
  // Enumeration budgets, per sweep. Path enumeration is worst-case
  // exponential; the budgets keep the oracle usable on any input, and
  // truncation is sound (see file comment).
  std::uint64_t max_paths = 50'000;
  std::uint64_t max_steps = 2'000'000; // edge traversals (incl. backtracked)
  // Called every few thousand steps; hook for the analysis governor's
  // cancellation checkpoint (may throw CancelledError).
  std::function<void()> checkpoint;
};

struct PathOracleResult {
  enum class Status {
    complete,            // every feasible path enumerated within budget
    truncated,           // budget hit: max/min cover a sound subset only
    missing_loop_bounds, // a reachable feasible loop carries no bound
    no_paths,            // no complete entry->exit path found
  };
  Status status = Status::no_paths;
  std::uint64_t paths_explored = 0; // complete entry->exit paths costed
  std::uint64_t steps = 0;          // edge traversals across both sweeps
  std::uint64_t dead_ends = 0;      // abandoned prefixes (pruned or stuck)
  std::uint64_t max_path_cost = 0;  // over explored paths, ub-costed
  std::uint64_t min_path_cost = 0;  // over explored paths, lb-costed
  std::vector<int> loops_missing_bounds;

  bool complete() const { return status == Status::complete; }
  // True when the bracket assertion is meaningful (>= 1 path costed).
  bool usable() const { return paths_explored > 0; }
};

class PathOracle {
public:
  // `edge_feasible` mirrors the value-analysis feasibility filter the
  // ILP builds its edge variables from (ValueAnalysis::edge_feasible);
  // an empty function treats every edge as feasible.
  using EdgeFeasible = std::function<bool(int)>;

  PathOracle(const cfg::Supergraph& sg, const cfg::LoopForest& loops,
             const analysis::PipelineAnalysis& pipeline, EdgeFeasible edge_feasible = {});

  // Two budgeted depth-first sweeps from the task entry: one biased
  // toward expensive successors (sharpens max_path_cost), one toward
  // cheap ones (sharpens min_path_cost). If the first sweep completes,
  // the enumeration was exhaustive and the second is skipped.
  PathOracleResult explore(const PathOracleOptions& options) const;

private:
  const cfg::Supergraph& sg_;
  const cfg::LoopForest& loops_;
  const analysis::PipelineAnalysis& pipeline_;
  EdgeFeasible edge_feasible_;
};

} // namespace wcet::validate
