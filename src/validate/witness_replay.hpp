// Witness extraction + replay: the second independent oracle.
//
// The ILP exports an extremal path witness as per-node execution counts
// (IpetResult::node_counts). `check_witness` lifts those counts into a
// concrete path — a backtracking walk over feasible CFG edges that
// consumes exactly the witnessed multiplicities and ends at a task exit
// while respecting every loop bound prefix-wise — proving the witness
// is structurally realizable, not just an LP-feasible count vector.
//
// `replay_measured` then runs the analyzed binary on the cycle-accurate
// simulator (sim/simulator.hpp) with default device inputs. Any
// completed concrete execution is a true lower bound on the WCET, so
//
//   BCET bound <= measured cycles <= WCET bound
//
// must hold, and `tightness = wcet_bound / measured` quantifies how
// much of the bound is over-approximation on this input.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "cfg/domloop.hpp"
#include "cfg/supergraph.hpp"
#include "isa/image.hpp"
#include "mem/hwmodel.hpp"

namespace wcet::validate {

struct WitnessCheck {
  enum class Status {
    valid,            // a concrete path realizes the witnessed counts
    invalid,          // no CFG path can realize them (analyzer bug)
    budget_exhausted, // walk budget ran out before a verdict: unverified
    no_witness,       // empty count map (degraded or failed solve)
  };
  Status status = Status::no_witness;
  std::string detail;
  std::uint64_t steps = 0;

  bool ok() const { return status == Status::valid; }
  // True when the walk reached a verdict either way (valid / invalid) —
  // budget exhaustion is a classified skip, not a verdict.
  bool decided() const { return status == Status::valid || status == Status::invalid; }
};

// Search for an entry->exit walk over feasible edges visiting each node
// exactly `node_counts[node]` times, honoring `loop_bounds` prefix-wise
// (see path_oracle.cpp). `edge_feasible` empty = every edge feasible.
WitnessCheck check_witness(const cfg::Supergraph& sg, const cfg::LoopForest& loops,
                           const std::map<int, std::uint64_t>& loop_bounds,
                           const std::map<int, std::uint64_t>& node_counts,
                           const std::function<bool(int)>& edge_feasible = {},
                           std::uint64_t max_steps = 1u << 22);

struct ReplayOptions {
  ReplayOptions() {}
  std::uint64_t max_steps = 50'000'000;
  // 0 = unlimited. Callers cap well *above* the WCET bound (e.g. 2x) so
  // a genuinely unsound bound shows up as measured > wcet instead of
  // being masked by the cap.
  std::uint64_t max_cycles = 0;
};

struct ReplayResult {
  enum class Status {
    replayed,         // run completed (halt/exit): measured_cycles valid
    trapped,          // simulator trap: reason classified
    budget_exhausted, // step or cycle cap hit before completion
  };
  Status status = Status::budget_exhausted;
  std::string reason; // classification when not replayed
  std::uint64_t measured_cycles = 0;
  std::uint64_t instructions = 0;

  bool ok() const { return status == Status::replayed; }
};

// One concrete execution of the image from its entry under `hw`, with
// the default MMIO model (device reads return 0) — deterministic, so
// bench tightness counters are stable across runs.
ReplayResult replay_measured(const isa::Image& image, const mem::HwConfig& hw,
                             const ReplayOptions& options = {});

} // namespace wcet::validate
