#include "annot/annotations.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "support/diag.hpp"

namespace wcet::annot {

std::optional<std::uint64_t> AnnotationDb::loop_bound_for(std::uint32_t addr,
                                                          const std::string& mode) const {
  std::optional<std::uint64_t> global;
  std::optional<std::uint64_t> specific;
  for (const auto& fact : loop_bounds) {
    if (fact.addr != addr) continue;
    if (fact.mode.empty()) {
      global = global ? std::min(*global, fact.max_iterations) : fact.max_iterations;
    } else if (fact.mode == mode) {
      specific = specific ? std::min(*specific, fact.max_iterations) : fact.max_iterations;
    }
  }
  if (specific && global) return std::min(*specific, *global);
  return specific ? specific : global;
}

std::set<std::uint32_t> AnnotationDb::excluded_addrs(const std::string& mode) const {
  std::set<std::uint32_t> result(never_addrs.begin(), never_addrs.end());
  if (const auto it = mode_excludes.find(mode); it != mode_excludes.end()) {
    result.insert(it->second.begin(), it->second.end());
  }
  return result;
}

std::set<std::uint32_t> AnnotationDb::flow_constrained_addrs(const std::string& mode) const {
  std::set<std::uint32_t> result = excluded_addrs(mode);
  for (const auto& cap : flow_caps) {
    if (cap.mode.empty() || cap.mode == mode) result.insert(cap.addr);
  }
  for (const auto& ratio : flow_ratios) {
    result.insert(ratio.addr);
    result.insert(ratio.relative_to);
  }
  for (const auto& pair : infeasible_pairs) {
    result.insert(pair.a);
    result.insert(pair.b);
  }
  return result;
}

std::vector<std::string> AnnotationDb::mode_names() const {
  std::vector<std::string> names;
  names.reserve(mode_excludes.size());
  for (const auto& [name, addrs] : mode_excludes) names.push_back(name);
  return names;
}

namespace {

class Parser {
public:
  Parser(std::string_view text, const isa::Image& image) : text_(text), image_(image) {}

  AnnotationDb run() {
    AnnotationDb db;
    while (!at_end()) {
      skip_separators();
      if (at_end()) break;
      statement(db);
    }
    return db;
  }

private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw InputError("annotation line " + std::to_string(line_) + ": " + msg);
  }

  bool at_end() const { return pos_ >= text_.size(); }

  void skip_ws() {
    while (!at_end()) {
      const char c = text_[pos_];
      if (c == '#') {
        while (!at_end() && text_[pos_] != '\n') ++pos_;
      } else if (c == ' ' || c == '\t' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  void skip_separators() {
    for (;;) {
      skip_ws();
      if (!at_end() && (text_[pos_] == '\n' || text_[pos_] == ';')) {
        if (text_[pos_] == '\n') ++line_;
        ++pos_;
        continue;
      }
      break;
    }
  }

  bool statement_done() {
    skip_ws();
    return at_end() || text_[pos_] == '\n' || text_[pos_] == ';';
  }

  std::string word() {
    skip_ws();
    if (at_end() || !(std::isalpha(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_')) {
      fail("expected keyword");
    }
    const std::size_t start = pos_;
    while (!at_end() && (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                         text_[pos_] == '_')) {
      ++pos_;
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  void expect_word(const std::string& expected) {
    const std::string got = word();
    if (got != expected) fail("expected '" + expected + "', got '" + got + "'");
  }

  bool try_punct(char c) {
    skip_ws();
    if (!at_end() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::uint64_t number() {
    skip_ws();
    if (at_end() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      fail("expected number");
    }
    std::uint64_t value = 0;
    if (pos_ + 1 < text_.size() && text_[pos_] == '0' &&
        (text_[pos_ + 1] == 'x' || text_[pos_ + 1] == 'X')) {
      pos_ += 2;
      if (at_end() || !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) fail("bad hex");
      while (!at_end() && std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
        const char c = text_[pos_++];
        const int d = std::isdigit(static_cast<unsigned char>(c))
                          ? c - '0'
                          : std::tolower(c) - 'a' + 10;
        value = value * 16 + static_cast<std::uint64_t>(d);
      }
    } else {
      while (!at_end() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        value = value * 10 + static_cast<std::uint64_t>(text_[pos_++] - '0');
      }
    }
    return value;
  }

  static std::string hex(std::uint32_t addr) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "0x%x", addr);
    return buf;
  }

  std::string quoted() {
    skip_ws();
    if (at_end() || text_[pos_] != '"') fail("expected quoted name");
    ++pos_;
    const std::size_t start = pos_;
    while (!at_end() && text_[pos_] != '"') ++pos_;
    if (at_end()) fail("unterminated string");
    const std::string s(text_.substr(start, pos_ - start));
    ++pos_;
    return s;
  }

  // place := number | quoted-symbol [('+'|'-') number]
  std::uint32_t place() {
    skip_ws();
    if (!at_end() && text_[pos_] == '"') {
      const std::string name = quoted();
      const isa::Symbol* sym = image_.find_symbol(name);
      if (sym == nullptr) fail("unknown symbol '" + name + "'");
      std::int64_t addr = sym->addr;
      skip_ws();
      if (!at_end() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        const char sign = text_[pos_++];
        const std::uint64_t off = number();
        addr += sign == '+' ? static_cast<std::int64_t>(off) : -static_cast<std::int64_t>(off);
      }
      return static_cast<std::uint32_t>(addr);
    }
    return static_cast<std::uint32_t>(number());
  }

  void statement(AnnotationDb& db) {
    const std::string kw = word();
    if (kw == "loop") {
      expect_word("at");
      LoopBoundFact fact;
      fact.addr = place();
      expect_word("max");
      fact.max_iterations = number();
      if (!statement_done()) {
        expect_word("in");
        expect_word("mode");
        fact.mode = word();
      }
      db.loop_bounds.push_back(fact);
    } else if (kw == "recursion") {
      const std::uint32_t fn = place();
      expect_word("max");
      const auto depth = static_cast<unsigned>(number());
      // Two different depths for the same function are contradictory:
      // unlike loop bounds (where the tighter of two claims is still a
      // claim the user made), recursion depth feeds call-string
      // expansion and a silent pick would hide the conflict.
      if (const auto it = db.recursion_depths.find(fn);
          it != db.recursion_depths.end() && it->second != depth) {
        fail("contradictory recursion depth for function at " + hex(fn) + ": previously " +
             std::to_string(it->second) + ", now " + std::to_string(depth));
      }
      db.recursion_depths[fn] = depth;
    } else if (kw == "targets") {
      expect_word("at");
      const std::uint32_t site = place();
      expect_word("are");
      // A second targets statement would widen the first one's closed
      // world; merging silently is exactly the kind of contradiction
      // this parser must surface, so reject the duplicate outright.
      if (db.indirect_targets.count(site) != 0) {
        fail("duplicate targets statement for call site at " + hex(site));
      }
      std::vector<std::uint32_t>& targets = db.indirect_targets[site];
      do {
        targets.push_back(place());
      } while (try_punct(','));
    } else if (kw == "flow") {
      expect_word("at");
      const std::uint32_t addr = place();
      if (!try_punct('<') || !try_punct('=')) fail("expected '<='");
      const std::uint64_t n = number();
      if (statement_done()) {
        db.flow_caps.push_back({addr, n, {}});
      } else if (try_punct('*')) {
        expect_word("at");
        db.flow_ratios.push_back({addr, n, place()});
      } else {
        expect_word("in");
        expect_word("mode");
        db.flow_caps.push_back({addr, n, word()});
      }
    } else if (kw == "infeasible") {
      expect_word("at");
      const std::uint32_t a = place();
      expect_word("with");
      const std::uint32_t b = place();
      db.infeasible_pairs.push_back({a, b});
    } else if (kw == "mode") {
      const std::string name = word();
      expect_word("excludes");
      std::vector<std::uint32_t>& excl = db.mode_excludes[name];
      do {
        excl.push_back(place());
      } while (try_punct(','));
    } else if (kw == "never") {
      expect_word("at");
      do {
        db.never_addrs.push_back(place());
      } while (try_punct(','));
    } else if (kw == "region") {
      mem::Region region;
      region.name = quoted();
      // 'accesses ... region "<name>"' resolves by name, so a second
      // region with the same name would make those references ambiguous.
      for (const auto& existing : db.regions) {
        if (existing.name == region.name) fail("duplicate region '" + region.name + "'");
      }
      expect_word("at");
      region.base = static_cast<std::uint32_t>(number());
      expect_word("size");
      region.size = static_cast<std::uint32_t>(number());
      expect_word("read");
      region.read_latency = static_cast<unsigned>(number());
      expect_word("write");
      region.write_latency = static_cast<unsigned>(number());
      while (!statement_done()) {
        const std::string flag = word();
        if (flag == "uncached") region.cacheable = false;
        else if (flag == "io") { region.io = true; region.cacheable = false; }
        else fail("unknown region flag '" + flag + "'");
      }
      db.regions.push_back(std::move(region));
    } else if (kw == "accesses") {
      const std::uint32_t fn = place();
      skip_ws();
      const std::string what = word();
      if (what == "region") {
        const std::string name = quoted();
        // Region by name: resolve from previously declared annotation
        // regions; driver also consults the hardware map.
        for (const auto& region : db.regions) {
          if (region.name == name) {
            db.access_facts[fn].push_back({region.base, region.size});
            return;
          }
        }
        // Defer: store a marker range with size 0 keyed by name is not
        // possible here; require region declared first.
        fail("accesses statement refers to unknown region '" + name +
             "' (declare the region first, or use 'at <addr> size <n>')");
      } else if (what == "at") {
        AccessRange range;
        range.base = static_cast<std::uint32_t>(number());
        expect_word("size");
        range.size = static_cast<std::uint32_t>(number());
        db.access_facts[fn].push_back(range);
      } else {
        fail("expected 'region' or 'at' in accesses statement");
      }
    } else {
      fail("unknown statement '" + kw + "'");
    }
    if (!statement_done()) fail("trailing tokens after statement");
  }

  std::string_view text_;
  const isa::Image& image_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

} // namespace

AnnotationDb parse_annotations(std::string_view text, const isa::Image& image) {
  return Parser(text, image).run();
}

} // namespace wcet::annot
