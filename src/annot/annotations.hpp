// Annotation language: the channel for design-level information the
// paper proposes in Section 4.3. Every fact class discussed there has a
// statement form:
//
//   loop at <place> max <n> [in mode <name>]    loop bounds, per mode
//   recursion <place> max <n>                   recursion depth (rule 16.2)
//   targets at <place> are <place>, ...         function pointers (§3.2)
//   flow at <place> <= <n>                      absolute count cap
//   flow at <place> <= <n> * at <place>         relative flow fact
//   infeasible at <place> with <place>          mutually exclusive paths
//                                               (read vs write cycles)
//   mode <name> excludes <place>                operating modes
//   never at <place>                            error-handling exclusion
//   region "<name>" at <addr> size <n> read <r> write <w> [uncached] [io]
//                                               memory map refinement
//   accesses <place> region "<name>"            per-function confinement
//   accesses <place> at <addr> size <n>         of imprecise accesses
//
// <place> is a hex/decimal address or a quoted symbol name with an
// optional +offset ("handler"+0x10). Symbols resolve against the image
// at parse time. '#' starts a comment; statements end at ';' or EOL.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "isa/image.hpp"
#include "mem/memmap.hpp"

namespace wcet::annot {

struct LoopBoundFact {
  std::uint32_t addr = 0; // any address inside the loop (typically header)
  std::uint64_t max_iterations = 0;
  std::string mode; // empty: applies in every mode
};

struct FlowCapFact {
  std::uint32_t addr = 0;
  std::uint64_t max_count = 0;
  std::string mode;
};

struct FlowRatioFact {
  std::uint32_t addr = 0;
  std::uint64_t factor = 0;
  std::uint32_t relative_to = 0;
};

struct InfeasiblePairFact {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

struct AccessRange {
  std::uint32_t base = 0;
  std::uint32_t size = 0;
};

class AnnotationDb {
public:
  std::vector<LoopBoundFact> loop_bounds;
  std::map<std::uint32_t, unsigned> recursion_depths; // function entry -> depth
  std::map<std::uint32_t, std::vector<std::uint32_t>> indirect_targets;
  std::vector<FlowCapFact> flow_caps;
  std::vector<FlowRatioFact> flow_ratios;
  std::vector<InfeasiblePairFact> infeasible_pairs;
  std::map<std::string, std::vector<std::uint32_t>> mode_excludes;
  std::vector<std::uint32_t> never_addrs;
  std::vector<mem::Region> regions;
  std::map<std::uint32_t, std::vector<AccessRange>> access_facts; // fn entry -> ranges

  // Strongest loop bound applicable to an address in `mode` (specific
  // mode beats the global fact).
  std::optional<std::uint64_t> loop_bound_for(std::uint32_t addr,
                                              const std::string& mode) const;
  // Addresses excluded in `mode` (mode excludes + global nevers).
  std::set<std::uint32_t> excluded_addrs(const std::string& mode) const;
  // Every address a path-coupling flow fact constrains in `mode`: flow
  // caps, both sides of each ratio fact, both members of each
  // infeasible pair, plus the exclusions. This is the database-level
  // query mirror of what the IPET solver derives from its own options
  // (Ipet::constrained_nodes maps the facts it was handed through
  // Supergraph::nodes_covering and pins exactly the subtrees holding a
  // constrained node); use it to inspect or report which addresses
  // will couple path analysis before running it.
  std::set<std::uint32_t> flow_constrained_addrs(const std::string& mode) const;
  std::vector<std::string> mode_names() const;
};

// Parse annotation text; symbol places resolve against `image`. Throws
// InputError with a line-numbered message on malformed input.
AnnotationDb parse_annotations(std::string_view text, const isa::Image& image);

} // namespace wcet::annot
