// tiny32 simulator: functional semantics plus cycle accounting under the
// shared hardware timing model (mem/hwmodel.hpp). The simulator is the
// experiment ground truth: observed cycle counts from here are compared
// against statically computed WCET/BCET bounds.
//
// Caches start cold (empty) at run(); the abstract cache analysis makes
// the same assumption.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>

#include "isa/image.hpp"
#include "isa/tiny32.hpp"
#include "mem/cache.hpp"
#include "mem/hwmodel.hpp"

namespace wcet::sim {

struct SimOptions {
  std::uint64_t max_steps = 50'000'000;
  // 0 = unlimited. A nonzero cap stops the run (Stop::cycle_limit) once
  // the accumulated cycle count reaches it — the witness-replay oracle
  // (src/validate) caps runaway replays at a multiple of the WCET bound.
  std::uint64_t max_cycles = 0;
  bool collect_exec_counts = false; // per-pc instruction execution counts
};

struct SimResult {
  enum class Stop { halted, exited, trapped, step_limit, cycle_limit };
  Stop stop = Stop::halted;
  std::uint32_t exit_code = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  std::string trap_reason;
  std::string output; // bytes written via the putchar ecall
  std::unordered_map<std::uint32_t, std::uint64_t> exec_counts;

  bool completed() const { return stop == Stop::halted || stop == Stop::exited; }
};

class Simulator {
public:
  Simulator(const isa::Image& image, const mem::HwConfig& hw);
  ~Simulator(); // out of line: Page is an incomplete type here

  // Pre-run state injection (task inputs).
  void set_register(std::uint8_t reg, std::uint32_t value);
  std::uint32_t register_value(std::uint8_t reg) const;
  void write_word(std::uint32_t addr, std::uint32_t value);
  void write_bytes(std::uint32_t addr, std::span<const std::uint8_t> bytes);
  std::uint32_t read_word(std::uint32_t addr);

  // Reads from io regions are routed here (device simulation); the
  // default handler returns 0.
  using MmioRead = std::function<std::uint32_t(std::uint32_t addr, int size)>;
  void set_mmio_read(MmioRead handler) { mmio_read_ = std::move(handler); }

  // Run from the image entry (or an explicit pc) until halt/exit/trap.
  // Registers keep their injected values; caches and cycle counters are
  // reset at the start of each run.
  SimResult run(const SimOptions& options = {});
  SimResult run_from(std::uint32_t pc, const SimOptions& options = {});

private:
  struct Page;
  std::uint8_t load_byte(std::uint32_t addr);
  void store_byte(std::uint32_t addr, std::uint8_t value);
  std::uint32_t load(std::uint32_t addr, int size, bool sign_extend, bool& io);
  void store(std::uint32_t addr, int size, std::uint32_t value);
  Page& page_for(std::uint32_t addr);

  const isa::Image& image_;
  mem::HwConfig hw_;
  mem::Cache icache_;
  mem::Cache dcache_;
  std::uint32_t regs_[isa::num_registers] = {};
  std::unordered_map<std::uint32_t, std::unique_ptr<Page>> pages_;
  MmioRead mmio_read_;
};

} // namespace wcet::sim
