#include "sim/simulator.hpp"

#include <array>
#include <sstream>

#include "support/diag.hpp"

namespace wcet::sim {

using isa::Inst;
using isa::Opcode;

namespace {
constexpr std::uint32_t page_bits = 12;
constexpr std::uint32_t page_size = 1u << page_bits;
} // namespace

struct Simulator::Page {
  std::array<std::uint8_t, page_size> bytes{};
};

Simulator::Simulator(const isa::Image& image, const mem::HwConfig& hw)
    : image_(image), hw_(hw), icache_(hw.icache), dcache_(hw.dcache) {
  for (const auto& section : image.sections()) {
    write_bytes(section.vaddr, section.bytes);
  }
}

Simulator::~Simulator() = default;

Simulator::Page& Simulator::page_for(std::uint32_t addr) {
  auto& slot = pages_[addr >> page_bits];
  if (!slot) slot = std::make_unique<Page>();
  return *slot;
}

std::uint8_t Simulator::load_byte(std::uint32_t addr) {
  const auto it = pages_.find(addr >> page_bits);
  if (it == pages_.end()) return 0;
  return it->second->bytes[addr & (page_size - 1)];
}

void Simulator::store_byte(std::uint32_t addr, std::uint8_t value) {
  page_for(addr).bytes[addr & (page_size - 1)] = value;
}

void Simulator::set_register(std::uint8_t reg, std::uint32_t value) {
  WCET_CHECK(reg < isa::num_registers, "bad register");
  if (reg != isa::reg_zero) regs_[reg] = value;
}

std::uint32_t Simulator::register_value(std::uint8_t reg) const {
  WCET_CHECK(reg < isa::num_registers, "bad register");
  return regs_[reg];
}

void Simulator::write_word(std::uint32_t addr, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) store_byte(addr + static_cast<std::uint32_t>(i),
                                         static_cast<std::uint8_t>(value >> (8 * i)));
}

void Simulator::write_bytes(std::uint32_t addr, std::span<const std::uint8_t> bytes) {
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    store_byte(addr + static_cast<std::uint32_t>(i), bytes[i]);
  }
}

std::uint32_t Simulator::read_word(std::uint32_t addr) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | load_byte(addr + static_cast<std::uint32_t>(i));
  return v;
}

std::uint32_t Simulator::load(std::uint32_t addr, int size, bool sign_extend, bool& io) {
  const mem::Region& region = hw_.memory.region_for(addr);
  io = region.io;
  std::uint32_t raw;
  if (region.io && mmio_read_) {
    raw = mmio_read_(addr, size);
  } else {
    raw = 0;
    for (int i = size - 1; i >= 0; --i) {
      raw = (raw << 8) | load_byte(addr + static_cast<std::uint32_t>(i));
    }
  }
  if (sign_extend) {
    if (size == 1) return static_cast<std::uint32_t>(static_cast<std::int8_t>(raw));
    if (size == 2) return static_cast<std::uint32_t>(static_cast<std::int16_t>(raw));
  }
  return raw;
}

void Simulator::store(std::uint32_t addr, int size, std::uint32_t value) {
  for (int i = 0; i < size; ++i) {
    store_byte(addr + static_cast<std::uint32_t>(i), static_cast<std::uint8_t>(value >> (8 * i)));
  }
}

SimResult Simulator::run(const SimOptions& options) { return run_from(image_.entry(), options); }

SimResult Simulator::run_from(std::uint32_t pc, const SimOptions& options) {
  SimResult result;
  icache_.flush();
  dcache_.flush();

  const auto trap = [&](const std::string& reason) {
    result.stop = SimResult::Stop::trapped;
    std::ostringstream os;
    os << reason << " at pc=" << image_.describe(pc);
    result.trap_reason = os.str();
    return result;
  };

  while (result.instructions < options.max_steps) {
    if ((pc & 3) != 0) return trap("misaligned pc");
    const auto word = image_.read_word(pc);
    if (!word) return trap("fetch from unmapped address");
    const auto inst_opt = isa::decode(*word);
    if (!inst_opt) return trap("invalid opcode");
    const Inst inst = *inst_opt;

    // --- Timing: fetch.
    const mem::Region& fetch_region = hw_.memory.region_for(pc);
    bool fetch_hit = false;
    if (fetch_region.cacheable && hw_.icache.enabled) {
      fetch_hit = icache_.access(pc);
    }
    result.cycles += mem::fetch_cycles(fetch_hit, fetch_region.read_latency);
    result.cycles += mem::base_cycles(inst.op, hw_.pipeline);

    ++result.instructions;
    if (options.collect_exec_counts) ++result.exec_counts[pc];

    const auto rs1 = regs_[inst.rs1];
    const auto rs2 = regs_[inst.rs2];
    const auto set_rd = [&](std::uint32_t value) {
      if (inst.rd != isa::reg_zero) regs_[inst.rd] = value;
    };
    std::uint32_t next_pc = pc + 4;
    bool taken = false;

    switch (inst.op) {
    case Opcode::add: set_rd(rs1 + rs2); break;
    case Opcode::sub: set_rd(rs1 - rs2); break;
    case Opcode::and_: set_rd(rs1 & rs2); break;
    case Opcode::or_: set_rd(rs1 | rs2); break;
    case Opcode::xor_: set_rd(rs1 ^ rs2); break;
    case Opcode::sll: set_rd(rs1 << (rs2 & 31)); break;
    case Opcode::srl: set_rd(rs1 >> (rs2 & 31)); break;
    case Opcode::sra:
      set_rd(static_cast<std::uint32_t>(static_cast<std::int32_t>(rs1) >> (rs2 & 31)));
      break;
    case Opcode::slt:
      set_rd(static_cast<std::int32_t>(rs1) < static_cast<std::int32_t>(rs2) ? 1 : 0);
      break;
    case Opcode::sltu: set_rd(rs1 < rs2 ? 1 : 0); break;
    case Opcode::mul: set_rd(rs1 * rs2); break;
    case Opcode::mulhu:
      set_rd(static_cast<std::uint32_t>(
          (static_cast<std::uint64_t>(rs1) * static_cast<std::uint64_t>(rs2)) >> 32));
      break;
    case Opcode::divu: set_rd(rs2 == 0 ? 0 : rs1 / rs2); break;
    case Opcode::remu: set_rd(rs2 == 0 ? rs1 : rs1 % rs2); break;
    case Opcode::div_: {
      const auto a = static_cast<std::int32_t>(rs1);
      const auto b = static_cast<std::int32_t>(rs2);
      std::int32_t q = 0;
      if (b == 0) q = 0;
      else if (a == INT32_MIN && b == -1) q = INT32_MIN;
      else q = a / b;
      set_rd(static_cast<std::uint32_t>(q));
      break;
    }
    case Opcode::rem_: {
      const auto a = static_cast<std::int32_t>(rs1);
      const auto b = static_cast<std::int32_t>(rs2);
      std::int32_t r = 0;
      if (b == 0) r = a;
      else if (a == INT32_MIN && b == -1) r = 0;
      else r = a % b;
      set_rd(static_cast<std::uint32_t>(r));
      break;
    }
    case Opcode::cmovz:
      if (rs2 == 0) set_rd(rs1);
      break;
    case Opcode::cmovnz:
      if (rs2 != 0) set_rd(rs1);
      break;
    case Opcode::addi: set_rd(rs1 + static_cast<std::uint32_t>(inst.imm)); break;
    case Opcode::andi: set_rd(rs1 & static_cast<std::uint32_t>(inst.imm)); break;
    case Opcode::ori: set_rd(rs1 | static_cast<std::uint32_t>(inst.imm)); break;
    case Opcode::xori: set_rd(rs1 ^ static_cast<std::uint32_t>(inst.imm)); break;
    case Opcode::slli: set_rd(rs1 << (inst.imm & 31)); break;
    case Opcode::srli: set_rd(rs1 >> (inst.imm & 31)); break;
    case Opcode::srai:
      set_rd(static_cast<std::uint32_t>(static_cast<std::int32_t>(rs1) >> (inst.imm & 31)));
      break;
    case Opcode::slti:
      set_rd(static_cast<std::int32_t>(rs1) < static_cast<std::int32_t>(inst.imm) ? 1 : 0);
      break;
    case Opcode::sltiu:
      set_rd(rs1 < static_cast<std::uint32_t>(inst.imm) ? 1 : 0);
      break;
    case Opcode::lui: set_rd(static_cast<std::uint32_t>(inst.imm) << 16); break;
    case Opcode::lw:
    case Opcode::lh:
    case Opcode::lhu:
    case Opcode::lb:
    case Opcode::lbu: {
      const std::uint32_t addr = rs1 + static_cast<std::uint32_t>(inst.imm);
      const int size = inst.access_size();
      if (addr % static_cast<std::uint32_t>(size) != 0) return trap("misaligned load");
      const bool sign = inst.op == Opcode::lh || inst.op == Opcode::lb;
      bool io = false;
      const std::uint32_t value = load(addr, size, sign, io);
      const mem::Region& region = hw_.memory.region_for(addr);
      bool hit = false;
      if (!io && region.cacheable && hw_.dcache.enabled) hit = dcache_.access(addr);
      result.cycles += mem::load_cycles(hit, region.read_latency);
      set_rd(value);
      break;
    }
    case Opcode::sw:
    case Opcode::sh:
    case Opcode::sb: {
      const std::uint32_t addr = rs1 + static_cast<std::uint32_t>(inst.imm);
      const int size = inst.access_size();
      if (addr % static_cast<std::uint32_t>(size) != 0) return trap("misaligned store");
      const mem::Region& region = hw_.memory.region_for(addr);
      if (!region.io) store(addr, size, regs_[inst.rd]);
      result.cycles += mem::store_cycles(region.write_latency);
      break;
    }
    case Opcode::beq: taken = rs1 == rs2; break;
    case Opcode::bne: taken = rs1 != rs2; break;
    case Opcode::blt:
      taken = static_cast<std::int32_t>(rs1) < static_cast<std::int32_t>(rs2);
      break;
    case Opcode::bge:
      taken = static_cast<std::int32_t>(rs1) >= static_cast<std::int32_t>(rs2);
      break;
    case Opcode::bltu: taken = rs1 < rs2; break;
    case Opcode::bgeu: taken = rs1 >= rs2; break;
    case Opcode::jal:
      set_rd(pc + 4);
      next_pc = inst.target(pc);
      break;
    case Opcode::jalr: {
      const std::uint32_t target = (rs1 + static_cast<std::uint32_t>(inst.imm)) & ~3u;
      set_rd(pc + 4);
      next_pc = target;
      break;
    }
    case Opcode::ecall: {
      const auto fn = static_cast<isa::EcallFn>(regs_[isa::reg_a0]);
      if (fn == isa::EcallFn::exit) {
        result.stop = SimResult::Stop::exited;
        result.exit_code = regs_[isa::reg_a1];
        result.cycles += mem::control_penalty(inst, true, hw_.pipeline);
        return result;
      }
      if (fn == isa::EcallFn::putchar) {
        result.output.push_back(static_cast<char>(regs_[isa::reg_a1]));
      }
      break;
    }
    case Opcode::halt:
      result.stop = SimResult::Stop::halted;
      return result;
    }

    if (inst.is_conditional_branch() && taken) next_pc = inst.target(pc);
    result.cycles += mem::control_penalty(inst, taken, hw_.pipeline);
    pc = next_pc;

    if (options.max_cycles != 0 && result.cycles >= options.max_cycles) {
      result.stop = SimResult::Stop::cycle_limit;
      result.trap_reason = "cycle limit reached";
      return result;
    }
  }
  result.stop = SimResult::Stop::step_limit;
  result.trap_reason = "step limit reached";
  return result;
}

} // namespace wcet::sim
