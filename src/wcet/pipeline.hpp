// The Figure-1 pipeline as explicit passes over a shared context.
//
// `AnalysisContext` owns every per-decode-round artifact (Program,
// Supergraph, LoopForest, Dominators, RPO schedule, value states,
// transfer cache) plus the later-phase results, and collects
// obstructions into the report under construction. The six passes —
// decode, value, loop-bounds, cache, pipeline, path — declare their
// inputs/outputs for registration-time validation and are driven by the
// generic PassManager (support/pass_manager.hpp), which also owns the
// per-phase timing that `WcetReport::timings` reports.
//
// `Analyzer::analyze_entry` (wcet/analyzer.cpp) is now just pass
// registration plus the decode-feedback loop of Figure 1: the decode
// and value passes re-run while value analysis keeps resolving new
// indirect-branch targets.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "analysis/cache_analysis.hpp"
#include "analysis/ipet.hpp"
#include "analysis/loop_bounds.hpp"
#include "analysis/pipeline_analysis.hpp"
#include "analysis/transfer_cache.hpp"
#include "analysis/value_analysis.hpp"
#include "cfg/domloop.hpp"
#include "cfg/program.hpp"
#include "cfg/supergraph.hpp"
#include "support/pass_manager.hpp"
#include "wcet/analyzer.hpp"

namespace wcet {

class ThreadPool;

struct AnalysisContext {
  AnalysisContext(const isa::Image& image, const mem::HwConfig& hw,
                  const annot::AnnotationDb& annotations, const AnalysisOptions& options,
                  std::uint32_t entry)
      : image(image), hw(hw), annotations(annotations), options(options), entry(entry) {}

  // Immutable inputs.
  const isa::Image& image;
  const mem::HwConfig& hw;
  const annot::AnnotationDb& annotations;
  const AnalysisOptions& options;
  std::uint32_t entry = 0;
  // Optional worker pool shared by every pass (null: sequential). All
  // parallel schedules are deterministic, so results do not depend on
  // it.
  ThreadPool* pool = nullptr;
  // Per-analysis resource governor (owned by Analyzer::analyze_entry);
  // passes consult it for cancellation and step budgets.
  const AnalysisGovernor* governor = nullptr;

  // Decode-round artifacts (rebuilt each round of the feedback loop).
  cfg::ResolutionHints hints;
  cfg::Supergraph::Options sg_options;
  std::unique_ptr<cfg::Program> program;
  std::unique_ptr<cfg::Supergraph> supergraph;
  std::unique_ptr<cfg::LoopForest> forest;
  std::unique_ptr<cfg::Dominators> dominators;
  std::vector<int> schedule; // shared RPO fixpoint priorities
  std::unique_ptr<analysis::ValueAnalysis> values;
  std::unique_ptr<analysis::TransferCache> transfers;

  // Later-phase artifacts.
  std::vector<analysis::LoopBoundResult> loop_results;
  std::map<int, std::uint64_t> merged_bounds;
  std::unique_ptr<analysis::CacheAnalysis> caches;
  std::unique_ptr<analysis::PipelineAnalysis> pipeline;
  analysis::IpetResult wcet_result;

  // Incremental re-analysis handoff (src/serve): installed by the
  // analysis server when a re-submitted image is structurally identical
  // to the previous converged run, carrying per-instance fingerprint
  // verdicts. Every reuse below is verified, never trusted: the value
  // pass always re-runs cold and demotes any fingerprint-clean instance
  // whose states differ; the cache pass warm-starts only under those
  // verified verdicts and falls back to a cold fixpoint on any boundary
  // divergence; the path pass reuses the previous ILP result only when
  // every timing input compares equal. A warm run is therefore
  // bit-identical to a cold run by construction.
  struct WarmHandoff {
    const AnalysisContext* prev = nullptr; // previous converged context
    std::vector<char> instance_clean;      // per-instance: code fingerprint unchanged
    std::vector<char> node_clean;          // per-node: instance verified value-clean
    int dirty_instances = 0;               // fingerprint-dirty instance count
    bool value_verified = false;           // value pass confirmed instance_clean
    bool cache_warm = false;               // cache fixpoint warm-start committed
    bool cache_fallback = false;           // warm attempt diverged -> cold rerun
    bool path_reused = false;              // previous ILP result reused wholesale
  };
  std::unique_ptr<WarmHandoff> warm; // null: cold request

  // Report under construction; passes append obstructions here.
  WcetReport report;

  // Feedback edge of Figure 1: merge value-analysis-resolved indirect
  // targets into the decode hints; true when a new target appeared.
  bool absorb_resolved_indirect_targets();
};

// Artifact keys used by the pass declarations.
namespace artifact {
inline constexpr const char* image = "image";
inline constexpr const char* program = "program";
inline constexpr const char* supergraph = "supergraph";
inline constexpr const char* value_states = "value-states";
inline constexpr const char* transfer_cache = "transfer-cache";
inline constexpr const char* loop_bounds = "loop-bounds";
inline constexpr const char* cache_classes = "cache-classes";
inline constexpr const char* block_timings = "block-timings";
inline constexpr const char* path_bounds = "path-bounds";
inline constexpr const char* validation = "validation";
} // namespace artifact

using AnalysisPass = Pass<AnalysisContext>;
using AnalysisPassManager = PassManager<AnalysisContext>;

// Registers the six Figure-1 passes in order, plus the validation pass
// (a no-op unless AnalysisOptions::validate is set). Returns the index
// of the first pass that runs *after* the decode-feedback loop
// (loop-bounds).
std::size_t register_figure1_passes(AnalysisPassManager& manager);

} // namespace wcet
