#include "wcet/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <sstream>

#include "support/cow.hpp"
#include "support/fault_inject.hpp"
#include "support/thread_pool.hpp"
#include "validate/path_oracle.hpp"
#include "validate/witness_replay.hpp"

namespace wcet {

bool AnalysisContext::absorb_resolved_indirect_targets() {
  const auto resolved = values->resolved_indirect_targets();
  bool grew = false;
  for (const auto& [pc, targets] : resolved) {
    auto& known = hints.indirect_targets[pc];
    for (const std::uint32_t target : targets) {
      if (std::find(known.begin(), known.end(), target) == known.end()) {
        known.push_back(target);
        grew = true;
      }
    }
  }
  return grew;
}

namespace {

// Shared pass prologue: a named fault-injection site (no-op unless
// WCET_FAULT_INJECT is compiled in and the site is armed) plus a
// cancellation checkpoint, so even a pass whose phase never reaches an
// inner checkpoint observes a pending cancel at the phase boundary.
void phase_boundary(const AnalysisContext& ctx, const char* site) {
  WCET_FAULT_POINT(site);
  if (ctx.governor != nullptr) ctx.governor->check_cancel();
}

// ---------------------------------------------------------------- decode
class DecodePass : public AnalysisPass {
public:
  const char* name() const override { return "decode"; }
  std::vector<const char*> inputs() const override { return {artifact::image}; }
  std::vector<const char*> outputs() const override {
    return {artifact::program, artifact::supergraph};
  }

  void run(AnalysisContext& ctx) override {
    phase_boundary(ctx, "phase:decode");
    ctx.program = std::make_unique<cfg::Program>(
        cfg::Program::reconstruct(ctx.image, ctx.entry, ctx.hints));
    ctx.supergraph = std::make_unique<cfg::Supergraph>(
        cfg::Supergraph::expand(*ctx.program, ctx.sg_options));
    ctx.forest = std::make_unique<cfg::LoopForest>(*ctx.supergraph);
    ctx.dominators = std::make_unique<cfg::Dominators>(*ctx.supergraph);
    ctx.schedule = cfg::rpo_priorities(*ctx.supergraph, ctx.dominators->rpo());

    // Report stats and decode obstructions are rebuilt from scratch each
    // round so the feedback loop stays idempotent (only the final round
    // survives into the report).
    WcetReport& report = ctx.report;
    report.functions = static_cast<int>(ctx.program->functions().size());
    report.blocks = 0;
    for (const auto& [addr, fn] : ctx.program->functions()) {
      report.blocks += static_cast<int>(fn.blocks.size());
    }
    report.sg_nodes = static_cast<int>(ctx.supergraph->nodes().size());
    report.sg_edges = static_cast<int>(ctx.supergraph->edges().size());
    report.obstructions.clear();
    for (const cfg::DecodeIssue& issue : ctx.program->issues()) {
      std::ostringstream os;
      os << "decode: " << issue.message << " at " << ctx.image.describe(issue.pc);
      report.obstructions.push_back(os.str());
    }
    for (const cfg::SupergraphIssue& issue : ctx.supergraph->issues()) {
      std::ostringstream os;
      os << "expansion: " << issue.message << " at " << ctx.image.describe(issue.pc);
      report.obstructions.push_back(os.str());
    }
  }
};

// ----------------------------------------------------------------- value
// Incremental verification (src/serve): demote fingerprint-clean
// instances whose fresh value-analysis results differ from the previous
// run's — per-node in-states must compare equal and every edge whose
// source lies in the instance must keep its feasibility verdict.
// Downstream reuse (cache recipes, warm cache fixpoint, whole-ILP
// reuse) keys on these *verified* verdicts, never on fingerprints
// alone: value analysis itself always re-runs cold because its
// widening/coarsening policy is trajectory-dependent and cannot be
// warm-started exactly.
void verify_warm_value(AnalysisContext& ctx) {
  AnalysisContext::WarmHandoff& warm = *ctx.warm;
  const AnalysisContext& prev = *warm.prev;
  const cfg::Supergraph& sg = *ctx.supergraph;
  for (const cfg::SgNode& n : sg.nodes()) {
    auto& flag = warm.instance_clean[static_cast<std::size_t>(n.instance)];
    if (flag == 0) continue;
    if (!(ctx.values->state_in(n.id) == prev.values->state_in(n.id))) flag = 0;
  }
  for (const cfg::SgEdge& e : sg.edges()) {
    auto& flag = warm.instance_clean[static_cast<std::size_t>(sg.node(e.from).instance)];
    if (flag == 0) continue;
    if (ctx.values->edge_feasible(e.id) != prev.values->edge_feasible(e.id)) flag = 0;
  }
  warm.node_clean.assign(sg.nodes().size(), 0);
  for (const cfg::SgNode& n : sg.nodes()) {
    warm.node_clean[static_cast<std::size_t>(n.id)] =
        warm.instance_clean[static_cast<std::size_t>(n.instance)];
  }
  warm.value_verified = true;
}

class ValuePass : public AnalysisPass {
public:
  const char* name() const override { return "value"; }
  std::vector<const char*> inputs() const override { return {artifact::supergraph}; }
  std::vector<const char*> outputs() const override {
    return {artifact::value_states, artifact::transfer_cache};
  }

  void run(AnalysisContext& ctx) override {
    phase_boundary(ctx, "phase:value");
    analysis::ValueAnalysis::Options va_options;
    if (ctx.options.use_annotations) va_options.access_facts = ctx.annotations.access_facts;
    ctx.transfers = std::make_unique<analysis::TransferCache>(*ctx.supergraph);
    ctx.values = std::make_unique<analysis::ValueAnalysis>(
        *ctx.supergraph, *ctx.forest, ctx.hw.memory, va_options, ctx.schedule);
    ctx.values->run(ctx.pool, ctx.transfers.get(), ctx.governor);
    if (ctx.warm != nullptr && ctx.warm->prev != nullptr &&
        ctx.warm->prev->values != nullptr) {
      verify_warm_value(ctx);
    }
  }
};

// ------------------------------------------------------------ loop bounds
class LoopBoundsPass : public AnalysisPass {
public:
  const char* name() const override { return "loop"; }
  std::vector<const char*> inputs() const override {
    return {artifact::supergraph, artifact::value_states, artifact::transfer_cache};
  }
  std::vector<const char*> outputs() const override { return {artifact::loop_bounds}; }

  void run(AnalysisContext& ctx) override {
    phase_boundary(ctx, "phase:loop-bounds");
    const cfg::Supergraph& supergraph = *ctx.supergraph;
    const cfg::LoopForest& forest = *ctx.forest;
    analysis::LoopBoundAnalysis loop_analysis(supergraph, forest, *ctx.dominators,
                                              *ctx.values, ctx.transfers.get());
    ctx.loop_results = loop_analysis.run();

    WcetReport& report = ctx.report;
    report.loop_count = static_cast<int>(forest.loops().size());
    for (const cfg::Loop& loop : forest.loops()) {
      const analysis::LoopBoundResult& lr =
          ctx.loop_results[static_cast<std::size_t>(loop.id)];
      LoopInfo info;
      const cfg::SgNode& header = supergraph.node(loop.header);
      info.header_addr = header.block->begin;
      info.context = supergraph.context_of(loop.header);
      info.irreducible = loop.irreducible;
      info.analyzed_bound = lr.bound;
      info.detail = lr.detail;
      if (lr.irreducible) ++report.irreducible_loops;

      if (ctx.options.use_annotations) {
        // An annotation "loop at X" applies to the innermost loop whose
        // body covers X.
        std::optional<std::uint64_t> annotated;
        for (const annot::LoopBoundFact& fact : ctx.annotations.loop_bounds) {
          if (!fact.mode.empty() && fact.mode != ctx.options.mode) continue;
          bool covers = false;
          for (const int node_id : loop.nodes) {
            const cfg::CfgBlock& block = *supergraph.node(node_id).block;
            if (fact.addr >= block.begin && fact.addr < block.end) {
              covers = true;
              break;
            }
          }
          if (!covers) continue;
          // Innermost: no child loop also covers the address.
          bool child_covers = false;
          for (const int child : loop.children) {
            for (const int node_id : forest.loop(child).nodes) {
              const cfg::CfgBlock& block = *supergraph.node(node_id).block;
              if (fact.addr >= block.begin && fact.addr < block.end) {
                child_covers = true;
                break;
              }
            }
            if (child_covers) break;
          }
          if (child_covers) continue;
          annotated = annotated ? std::min(*annotated, fact.max_iterations)
                                : fact.max_iterations;
        }
        info.annotated_bound = annotated;
      }

      if (info.analyzed_bound && info.annotated_bound) {
        info.used_bound = std::min(*info.analyzed_bound, *info.annotated_bound);
      } else if (info.analyzed_bound) {
        info.used_bound = info.analyzed_bound;
      } else {
        info.used_bound = info.annotated_bound;
      }
      if (info.used_bound) {
        ctx.merged_bounds[loop.id] = *info.used_bound;
        ++report.bounded_loops;
      }
      report.loops.push_back(std::move(info));
    }
  }
};

// ----------------------------------------------------------------- cache
// Runs the must/may fixpoint on the per-instance round engine with the
// shared transfer cache: recipe slots are built once per decode round
// (fanned out over the pool) and replayed by every fixpoint visit; the
// pass manager's "cache" timing bucket covers both.
class CachePass : public AnalysisPass {
public:
  const char* name() const override { return "cache"; }
  std::vector<const char*> inputs() const override {
    return {artifact::supergraph, artifact::value_states, artifact::transfer_cache};
  }
  std::vector<const char*> outputs() const override { return {artifact::cache_classes}; }

  void run(AnalysisContext& ctx) override {
    phase_boundary(ctx, "phase:cache");
    // Open a fresh COW telemetry window so the report counters describe
    // this pass alone (telemetry only — results never read them).
    analysis::reset_cache_join_stats();
    cow_leaf_stats().reset_window();
    const bool warm_ready = ctx.warm != nullptr && ctx.warm->prev != nullptr &&
                            ctx.warm->value_verified && ctx.warm->prev->caches != nullptr &&
                            ctx.warm->prev->transfers != nullptr;
    if (warm_ready) {
      // Copy recipes of verified-clean nodes from the previous run
      // before the analysis builds them itself (the memoized build then
      // short-circuits). Exact, not approximate: a recipe is a pure
      // function of inputs the verification proved unchanged.
      ctx.transfers->build_cache_recipes(ctx.hw.memory, ctx.hw.icache, ctx.hw.dcache,
                                         ctx.pool, ctx.warm->prev->transfers.get(),
                                         &ctx.warm->node_clean);
    }
    ctx.caches = std::make_unique<analysis::CacheAnalysis>(
        *ctx.supergraph, *ctx.forest, *ctx.values, ctx.hw.memory, ctx.hw.icache,
        ctx.hw.dcache, analysis::CacheAnalysis::Schedule::priority, ctx.schedule,
        ctx.transfers.get(), ctx.pool);
    ctx.caches->set_governor(ctx.governor);
    if (warm_ready) {
      ctx.warm->cache_warm =
          ctx.caches->run(ctx.warm->prev->caches.get(), &ctx.warm->instance_clean);
      ctx.warm->cache_fallback = ctx.caches->warm_fallback();
    } else {
      ctx.caches->run();
    }
    ctx.report.cache_stats = ctx.caches->stats();
    const analysis::CacheJoinStats joins = analysis::cache_join_stats();
    ctx.report.cache_joins = joins.joins;
    ctx.report.cache_join_skips = joins.join_skips;
    const CowLeafStats& leaves = cow_leaf_stats();
    ctx.report.set_image_allocs = leaves.allocs.load(std::memory_order_relaxed);
    ctx.report.live_set_images_peak = static_cast<std::uint64_t>(
        std::max<std::int64_t>(0, leaves.peak.load(std::memory_order_relaxed)));
  }
};

// -------------------------------------------------------------- pipeline
class PipelinePass : public AnalysisPass {
public:
  const char* name() const override { return "pipeline"; }
  std::vector<const char*> inputs() const override {
    return {artifact::value_states, artifact::cache_classes};
  }
  std::vector<const char*> outputs() const override { return {artifact::block_timings}; }

  void run(AnalysisContext& ctx) override {
    phase_boundary(ctx, "phase:pipeline");
    ctx.pipeline = std::make_unique<analysis::PipelineAnalysis>(*ctx.supergraph, *ctx.values,
                                                                *ctx.caches, ctx.hw);
    ctx.pipeline->run();
  }
};

// The exact option set path analysis solves with — shared with the
// validation pass so both oracles constrain paths with precisely the
// loop bounds and flow facts the ILP saw, never a re-derivation.
analysis::IpetOptions ipet_options_for(const AnalysisContext& ctx) {
  analysis::IpetOptions ipet_options;
  ipet_options.loop_bounds = ctx.merged_bounds;
  ipet_options.decomposition = ctx.options.decomposition;
  ipet_options.governor = ctx.governor;
  if (ctx.options.use_annotations) {
    for (const annot::FlowCapFact& cap : ctx.annotations.flow_caps) {
      if (cap.mode.empty() || cap.mode == ctx.options.mode) {
        ipet_options.flow_caps.push_back(cap);
      }
    }
    ipet_options.flow_ratios = ctx.annotations.flow_ratios;
    ipet_options.infeasible_pairs = ctx.annotations.infeasible_pairs;
    ipet_options.excluded_addrs = ctx.annotations.excluded_addrs(ctx.options.mode);
  }
  return ipet_options;
}

// Whole-solve reuse (src/serve): when the warm cache fixpoint committed
// and every path-analysis input — loop bounds, per-node timings,
// per-edge extras, edge feasibility — compares equal to the previous
// run's, the previous ILP result (bound, witness, telemetry) is the
// result of an identical constraint system and is adopted wholesale.
// Flow facts and options are identical by the server's admission gate
// (same annotation text, same AnalysisOptions).
bool try_reuse_path(AnalysisContext& ctx) {
  if (ctx.warm == nullptr || ctx.warm->prev == nullptr || !ctx.warm->cache_warm) {
    return false;
  }
  const AnalysisContext& prev = *ctx.warm->prev;
  if (prev.pipeline == nullptr || !prev.report.ok) return false;
  if (ctx.merged_bounds != prev.merged_bounds) return false;
  const cfg::Supergraph& sg = *ctx.supergraph;
  for (const cfg::SgEdge& e : sg.edges()) {
    if (ctx.values->edge_feasible(e.id) != prev.values->edge_feasible(e.id)) return false;
    if (ctx.pipeline->edge_extra(e.id) != prev.pipeline->edge_extra(e.id)) return false;
  }
  for (const cfg::SgNode& n : sg.nodes()) {
    const analysis::NodeTiming& now = ctx.pipeline->timing(n.id);
    const analysis::NodeTiming& then = prev.pipeline->timing(n.id);
    if (now.lb != then.lb || now.ub != then.ub ||
        now.ps_terms.size() != then.ps_terms.size()) {
      return false;
    }
    for (std::size_t i = 0; i < now.ps_terms.size(); ++i) {
      const analysis::PsTerm& a = now.ps_terms[i];
      const analysis::PsTerm& b = then.ps_terms[i];
      if (a.loop_id != b.loop_id || a.penalty != b.penalty ||
          a.line_count != b.line_count) {
        return false;
      }
    }
  }

  ctx.wcet_result = prev.wcet_result;
  WcetReport& report = ctx.report;
  const WcetReport& prev_report = prev.report;
  report.ilp_variables = prev_report.ilp_variables;
  report.ilp_constraints = prev_report.ilp_constraints;
  report.ipet_regions = prev_report.ipet_regions;
  report.ipet_sub_ilps = prev_report.ipet_sub_ilps;
  report.ipet_depth = prev_report.ipet_depth;
  report.sese_regions = prev_report.sese_regions;
  report.phase1_pivots = prev_report.phase1_pivots;
  report.phase2_pivots = prev_report.phase2_pivots;
  report.crash_basis_rows = prev_report.crash_basis_rows;
  report.wcet_cycles = prev_report.wcet_cycles;
  report.bcet_cycles = prev_report.bcet_cycles;
  for (const auto& [node, count] : ctx.wcet_result.node_counts) {
    report.wcet_block_counts[sg.node(node).block->begin] += count;
  }
  report.witness_available = ctx.wcet_result.witness_available();
  report.ok = ctx.wcet_result.ok() && report.obstructions.empty();
  ctx.warm->path_reused = true;
  return true;
}

// ------------------------------------------------------------------ path
class PathPass : public AnalysisPass {
public:
  const char* name() const override { return "path"; }
  std::vector<const char*> inputs() const override {
    return {artifact::loop_bounds, artifact::block_timings};
  }
  std::vector<const char*> outputs() const override { return {artifact::path_bounds}; }

  void run(AnalysisContext& ctx) override {
    phase_boundary(ctx, "phase:path");
    if (try_reuse_path(ctx)) return;
    const cfg::Supergraph& supergraph = *ctx.supergraph;
    WcetReport& report = ctx.report;
    analysis::Ipet ipet(supergraph, *ctx.forest, *ctx.values, *ctx.pipeline);
    ipet.set_pool(ctx.pool);
    const analysis::IpetOptions ipet_options = ipet_options_for(ctx);

    // One combined WCET+BCET solve: the two senses share the
    // decomposition plan, every region's constraint system, and the
    // phase-1 simplex work (see Ipet::solve_both).
    const auto t_ilp = std::chrono::steady_clock::now();
    auto [wcet_solved, bcet_solved] = ipet.solve_both(ipet_options);
    report.timings.ilp_ms +=
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t_ilp)
            .count();
    ctx.wcet_result = std::move(wcet_solved);
    const analysis::IpetResult& wcet_result = ctx.wcet_result;
    report.ilp_variables = wcet_result.variables;
    report.ilp_constraints = wcet_result.constraints;
    report.ipet_regions = wcet_result.decomposed_regions;
    report.ipet_sub_ilps = wcet_result.sub_ilps;
    report.ipet_depth = wcet_result.decomposition_depth;
    report.sese_regions = wcet_result.sese_regions;
    report.phase1_pivots = wcet_result.phase1_pivots;
    report.phase2_pivots = wcet_result.phase2_pivots;
    report.crash_basis_rows = wcet_result.crash_basis_rows;

    switch (wcet_result.status) {
    case analysis::IpetResult::Status::ok:
      report.wcet_cycles = wcet_result.bound;
      for (const auto& [node, count] : wcet_result.node_counts) {
        report.wcet_block_counts[supergraph.node(node).block->begin] += count;
      }
      break;
    case analysis::IpetResult::Status::missing_loop_bounds:
      for (const int loop_id : wcet_result.loops_missing_bounds) {
        const cfg::Loop& loop = ctx.forest->loop(loop_id);
        std::ostringstream os;
        os << "loop bound missing for loop at "
           << ctx.image.describe(supergraph.node(loop.header).block->begin) << " ("
           << supergraph.context_of(loop.header) << "): "
           << report.loops[static_cast<std::size_t>(loop_id)].detail;
        report.obstructions.push_back(os.str());
      }
      break;
    case analysis::IpetResult::Status::infeasible:
      report.obstructions.push_back(
          "path analysis: ILP infeasible (contradictory flow facts?)");
      break;
    case analysis::IpetResult::Status::unbounded:
      report.obstructions.push_back("path analysis: ILP unbounded (missing loop bound?)");
      break;
    case analysis::IpetResult::Status::node_limit:
      report.obstructions.push_back("path analysis: branch & bound node limit reached");
      break;
    case analysis::IpetResult::Status::pivot_limit:
      report.obstructions.push_back(
          "path analysis: pivot budget exhausted before the root relaxation proved any "
          "bound");
      break;
    }

    if (wcet_result.ok() && bcet_solved.ok()) report.bcet_cycles = bcet_solved.bound;

    report.witness_available = wcet_result.witness_available();
    report.ok = wcet_result.ok() && report.obstructions.empty();
  }
};

// ------------------------------------------------------------- validation
// Two independent oracles against the bounds the path pass just stated:
// bounded exhaustive path exploration (bracket from both sides) and a
// concrete simulator replay (measured lower bound + tightness). Runs
// only when AnalysisOptions::validate is set; every leg that cannot run
// records a classified reason in report.validation_skipped — a skipped
// check must never read as a passed one.
class ValidatePass : public AnalysisPass {
public:
  const char* name() const override { return "validate"; }
  std::vector<const char*> inputs() const override { return {artifact::path_bounds}; }
  std::vector<const char*> outputs() const override { return {artifact::validation}; }

  void run(AnalysisContext& ctx) override {
    if (!ctx.options.validate) return;
    phase_boundary(ctx, "phase:validate");
    WcetReport& report = ctx.report;
    report.validated = true;
    const auto skip = [&](const std::string& why) {
      if (!report.validation_skipped.empty()) report.validation_skipped += "; ";
      report.validation_skipped += why;
    };
    if (!report.ok) {
      skip("no bound stated (obstructions present)");
      return;
    }

    const analysis::IpetOptions ipet_options = ipet_options_for(ctx);
    const auto edge_feasible = [&ctx](int eid) { return ctx.values->edge_feasible(eid); };

    // Leg 1: exhaustive path exploration under the same loop bounds and
    // flow facts, costed with the same per-node timing recipes.
    validate::PathOracle oracle(*ctx.supergraph, *ctx.forest, *ctx.pipeline, edge_feasible);
    validate::PathOracleOptions oracle_options;
    oracle_options.loop_bounds = ipet_options.loop_bounds;
    oracle_options.flow_caps = ipet_options.flow_caps;
    oracle_options.flow_ratios = ipet_options.flow_ratios;
    oracle_options.infeasible_pairs = ipet_options.infeasible_pairs;
    oracle_options.excluded_addrs = ipet_options.excluded_addrs;
    oracle_options.max_paths = ctx.options.validate_max_paths;
    oracle_options.max_steps = ctx.options.validate_max_steps;
    if (ctx.governor != nullptr) {
      const AnalysisGovernor* governor = ctx.governor;
      oracle_options.checkpoint = [governor] { governor->check_cancel(); };
    }
    const validate::PathOracleResult paths = oracle.explore(oracle_options);
    report.paths_explored = paths.paths_explored;
    report.oracle_complete = paths.complete();
    if (paths.usable()) {
      report.oracle_max_path_cost = paths.max_path_cost;
      report.oracle_min_path_cost = paths.min_path_cost;
      report.oracle_bracket_ok = paths.max_path_cost <= report.wcet_cycles &&
                                 report.bcet_cycles <= paths.min_path_cost;
    } else {
      skip("path oracle found no complete path within its budget");
    }

    // Leg 2: witness realization + simulator replay. Degraded solves
    // carry no witness by contract (IpetResult::witness_available).
    if (!report.witness_available) {
      skip(ctx.wcet_result.degraded
               ? "budget-degraded solve carries no path witness; replay skipped"
               : "no path witness; replay skipped");
      return;
    }
    const validate::WitnessCheck witness = validate::check_witness(
        *ctx.supergraph, *ctx.forest, ipet_options.loop_bounds,
        ctx.wcet_result.node_counts, edge_feasible, ctx.options.validate_witness_max_steps);
    report.witness_checked = witness.decided();
    report.witness_valid = witness.ok();
    if (witness.status == validate::WitnessCheck::Status::budget_exhausted) {
      // Deliberately no `return`: the simulator replay below is
      // witness-independent, so an exhausted walk budget skips only the
      // realization verdict. Skip reasons accumulate ("; "-joined, see
      // `skip` above) — an earlier reason is never overwritten.
      skip("witness walk budget exhausted before a verdict");
    }
    if (ctx.entry != ctx.image.entry()) {
      skip("function-scoped analysis (entry is not the image entry); replay skipped");
      return;
    }
    // Flow facts are *trusted*: the computed bound is conditional on
    // them, and a concrete run under the simulator's default inputs may
    // legitimately violate a fact (and thus the bound). Only a
    // fact-free bound is an unconditional promise a replay can check.
    if (!ipet_options.flow_caps.empty() || !ipet_options.flow_ratios.empty() ||
        !ipet_options.infeasible_pairs.empty() || !ipet_options.excluded_addrs.empty()) {
      skip("trusted flow facts condition the bound; unconstrained replay skipped");
      return;
    }
    validate::ReplayOptions replay_options;
    // Cap far above the bound: a genuinely unsound bound must surface
    // as measured > wcet, not vanish under the cap. Saturated — for
    // bounds past UINT64_MAX/2 the doubled cap would wrap to a *small*
    // cap and truncate exactly the replays that matter most.
    constexpr std::uint64_t u64_max = std::numeric_limits<std::uint64_t>::max();
    replay_options.max_cycles = report.wcet_cycles > (u64_max - 1024) / 2
                                    ? u64_max
                                    : report.wcet_cycles * 2 + 1024;
    const validate::ReplayResult replay =
        validate::replay_measured(ctx.image, ctx.hw, replay_options);
    if (!replay.ok()) {
      skip(replay.reason);
      return;
    }
    report.witness_replayed = true;
    report.measured_cycles = replay.measured_cycles;
    if (replay.measured_cycles == 0) {
      // tightness 0 is the "no replay" sentinel; a measured zero must
      // not masquerade as it silently.
      skip("replay measured zero cycles; tightness undefined");
      return;
    }
    // 128-bit widening: wcet * 1000 wraps uint64 for bounds past
    // ~1.8e16 cycles, which would report a nonsensically *tight* ratio.
    const unsigned __int128 scaled =
        static_cast<unsigned __int128>(report.wcet_cycles) * 1000u / replay.measured_cycles;
    report.tightness_x1000 =
        scaled > u64_max ? u64_max : static_cast<std::uint64_t>(scaled);
  }
};

} // namespace

std::size_t register_figure1_passes(AnalysisPassManager& manager) {
  manager.seed({artifact::image});
  manager.add(std::make_unique<DecodePass>());
  manager.add(std::make_unique<ValuePass>());
  const std::size_t back_half = manager.size();
  manager.add(std::make_unique<LoopBoundsPass>());
  manager.add(std::make_unique<CachePass>());
  manager.add(std::make_unique<PipelinePass>());
  manager.add(std::make_unique<PathPass>());
  manager.add(std::make_unique<ValidatePass>());
  return back_half;
}

} // namespace wcet
