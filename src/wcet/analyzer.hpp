// The static WCET analyzer: Figure 1 of the paper as a driver.
//
//   binary image
//     -> decoding phase            (cfg::Program::reconstruct)
//     -> loop/value analysis       (ValueAnalysis + LoopBoundAnalysis,
//        with a feedback edge: value-analysis results resolve indirect
//        branches and trigger a re-decode, bounded by max_decode_rounds)
//     -> cache/pipeline analysis   (CacheAnalysis + PipelineAnalysis)
//     -> path analysis             (Ipet)
//     -> WCET bound + report
//
// Tier-one obstructions (unresolved indirect control flow, unannotated
// recursion, unbounded reachable loops) are collected and make the
// analysis refuse to state a bound — a silent unsound bound would
// violate the paper's first requirement, soundness (Section 3).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/cache_analysis.hpp"
#include "analysis/ipet.hpp"
#include "annot/annotations.hpp"
#include "isa/image.hpp"
#include "mem/hwmodel.hpp"
#include "support/budget.hpp"

namespace wcet {

struct AnalysisOptions {
  AnalysisOptions() {}
  std::string mode;            // operating mode; empty = all behaviours
  bool use_annotations = true; // off: measure the un-annotated baseline
  int max_decode_rounds = 3;   // value-analysis -> decode feedback trips
  // Worker threads for the per-instance parallel schedules (value
  // analysis rounds, IPET sub-ILPs, classification sweeps). Every
  // parallel schedule is deterministic by construction, so computed
  // bounds, obstructions and states are bit-identical for any value;
  // <= 1 runs fully sequential on the calling thread.
  int threads = 1;
  // How path analysis splits the IPET ILP (see analysis::Ipet::solve).
  // Every mode computes identical bounds; monolithic is the reference
  // path, flat collapses top-level call subtrees, recursive nests
  // sub-ILPs inside collapsed subtrees as well.
  analysis::IpetDecomposition decomposition = analysis::IpetDecomposition::recursive;
  // Resource envelope (support/budget.hpp): wall-clock deadline,
  // per-phase step budgets, and an optional external cancel token. A
  // default-constructed budget changes nothing; exhausting a step
  // budget degrades the affected phase soundly and records it in
  // WcetReport::degradations; a fired cancel token aborts the analysis
  // with CancelledError.
  AnalysisBudget budget;
  // Independent-oracle validation (src/validate): run a bounded
  // exhaustive path-exploration oracle against the computed bounds and
  // replay the task on the cycle-accurate simulator for a measured
  // lower bound. Fills the validation block of WcetReport; never
  // changes the computed bounds. The budgets are per oracle sweep;
  // truncated sweeps keep the bracket sound (see validate/path_oracle).
  bool validate = false;
  std::uint64_t validate_max_paths = 50'000;
  std::uint64_t validate_max_steps = 2'000'000;
  // Step budget of the witness-realization walk (validate/witness_replay).
  // Exhausting it records a classified skip but never blocks the
  // simulator replay leg — the replay is witness-independent.
  std::uint64_t validate_witness_max_steps = 1u << 22;
};

struct LoopInfo {
  std::uint32_t header_addr = 0;
  std::string context;
  bool irreducible = false;
  std::optional<std::uint64_t> analyzed_bound;
  std::optional<std::uint64_t> annotated_bound;
  std::optional<std::uint64_t> used_bound;
  std::string detail;
};

struct PhaseTimings {
  double decode_ms = 0;
  double value_ms = 0;
  double loop_ms = 0;
  double cache_ms = 0;
  double pipeline_ms = 0;
  double path_ms = 0;
  double ilp_ms = 0; // inside path_ms: wall time of the WCET+BCET ILP solves
  double validate_ms = 0; // oracle validation (only with AnalysisOptions::validate)
  double total_ms = 0;
};

struct WcetReport {
  bool ok = false;
  std::uint64_t wcet_cycles = 0;
  std::uint64_t bcet_cycles = 0;
  std::vector<std::string> obstructions;

  // Budget/degradation ledger: every sound fallback a resource budget
  // forced (see support/budget.hpp). A non-empty ledger means the
  // bounds are true but possibly looser than an unlimited run's.
  bool degraded = false;
  std::vector<Degradation> degradations;
  std::uint64_t budget_checks = 0;     // governor checkpoints consulted
  std::int64_t cancel_latency_us = -1; // -1: never cancelled

  // Phase artifacts (the Figure-1 data stations).
  int functions = 0;
  int blocks = 0;
  int sg_nodes = 0;
  int sg_edges = 0;
  int loop_count = 0;
  int bounded_loops = 0;
  int irreducible_loops = 0;
  analysis::CacheAnalysis::Stats cache_stats;
  // COW state telemetry of the cache pass (see CacheJoinStats /
  // CowLeafStats): set-level joins examined vs. skipped by pointer
  // equality, set-image allocations, and the peak live image count.
  std::uint64_t cache_joins = 0;
  std::uint64_t cache_join_skips = 0;
  std::uint64_t set_image_allocs = 0;
  std::uint64_t live_set_images_peak = 0;
  int ilp_variables = 0;
  int ilp_constraints = 0;
  int ipet_regions = 0;  // top-level collapsed subtrees of the WCET solve
  int ipet_sub_ilps = 0; // sub-ILPs solved across all nesting levels
  int ipet_depth = 0;    // decomposition nesting depth
  int sese_regions = 0;  // sub-function single-entry/single-exit sub-ILPs
  // Simplex phase split across every region of the WCET solve: crash
  // bases (network-flow spanning trees seeding the tableau) drive
  // phase1_pivots to zero on pure-flow regions; crash_basis_rows counts
  // eliminations that replaced artificial variables.
  std::uint64_t phase1_pivots = 0;
  std::uint64_t phase2_pivots = 0;
  std::uint64_t crash_basis_rows = 0;
  std::vector<LoopInfo> loops;
  PhaseTimings timings;

  // Path-analysis witness contract (analysis/ipet.hpp): true when the
  // ILP produced an integral extremal-path witness. Degraded solves
  // prove a bound without one — consumers branch on this flag instead
  // of inferring availability from an empty wcet_block_counts map.
  bool witness_available = false;

  // Independent-oracle validation block (src/validate), populated only
  // when AnalysisOptions::validate is set.
  bool validated = false;             // the validation pass ran
  std::string validation_skipped;     // classified reasons for skipped legs
  std::uint64_t paths_explored = 0;   // complete paths costed by the oracle
  bool oracle_complete = false;       // enumeration finished within budget
  bool oracle_bracket_ok = false;     // max<=wcet and bcet<=min held
  std::uint64_t oracle_max_path_cost = 0;
  std::uint64_t oracle_min_path_cost = 0;
  bool witness_checked = false;       // witness walk reached a verdict
  bool witness_valid = false;         // ... and the witness is realizable
  bool witness_replayed = false;      // simulator replay completed
  std::uint64_t measured_cycles = 0;  // replayed cycles (true lower bound)
  std::uint64_t tightness_x1000 = 0;  // wcet_cycles * 1000 / measured_cycles

  // Analysis-server telemetry (src/serve), zero outside a server run.
  std::uint64_t serve_requests = 0;         // requests the server has handled so far
  std::uint64_t serve_fingerprint_hits = 0; // request-level cache hits so far
  std::uint64_t serve_dirty_instances = 0;  // fingerprint-dirty instances, this request

  // Execution counts on the worst-case path, summed per block address.
  std::map<std::uint32_t, std::uint64_t> wcet_block_counts;

  std::string to_string() const;
};

class Analyzer {
public:
  // Annotation regions are merged into a copy of `hw`'s memory map
  // (same-name regions are replaced).
  Analyzer(const isa::Image& image, const mem::HwConfig& hw,
           const std::string& annotation_text = "");

  const annot::AnnotationDb& annotations() const { return annotations_; }
  const mem::HwConfig& hw() const { return hw_; }

  WcetReport analyze(const AnalysisOptions& options = {}) const;
  WcetReport analyze_entry(std::uint32_t entry, const AnalysisOptions& options = {}) const;
  WcetReport analyze_function(const std::string& name,
                              const AnalysisOptions& options = {}) const;

private:
  const isa::Image& image_;
  mem::HwConfig hw_;
  annot::AnnotationDb annotations_;
};

} // namespace wcet
