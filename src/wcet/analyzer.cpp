#include "wcet/analyzer.hpp"

#include <algorithm>
#include <chrono>
#include <new>
#include <sstream>

#include "support/diag.hpp"
#include "support/thread_pool.hpp"
#include "wcet/pipeline.hpp"

namespace wcet {

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

} // namespace

Analyzer::Analyzer(const isa::Image& image, const mem::HwConfig& hw,
                   const std::string& annotation_text)
    : image_(image), hw_(hw) {
  annotations_ = annot::parse_annotations(annotation_text, image);
  // Merge annotation regions into the memory map: annotation regions
  // take precedence, splitting whatever base-map coverage they overlap.
  for (const mem::Region& region : annotations_.regions) {
    hw_.memory.add_region_override(region);
  }
}

WcetReport Analyzer::analyze(const AnalysisOptions& options) const {
  return analyze_entry(image_.entry(), options);
}

WcetReport Analyzer::analyze_function(const std::string& name,
                                      const AnalysisOptions& options) const {
  const isa::Symbol* sym = image_.find_symbol(name);
  if (sym == nullptr) throw InputError("no such function symbol: " + name);
  return analyze_entry(sym->addr, options);
}

WcetReport Analyzer::analyze_entry(std::uint32_t entry,
                                   const AnalysisOptions& options) const {
  const auto t_total = std::chrono::steady_clock::now();

  // Reject a malformed entry up front: an entry point outside every
  // section (or past a truncated section's end) is an input defect,
  // not an analysis obstruction.
  if (!image_.read_word(entry)) {
    std::ostringstream os;
    os << "entry point 0x" << std::hex << entry
       << " has no complete instruction word (outside every section, or the image is "
          "truncated)";
    throw InputError(os.str());
  }

  AnalysisContext ctx(image_, hw_, annotations_, options, entry);
  if (options.use_annotations) {
    ctx.hints.indirect_targets = annotations_.indirect_targets;
    ctx.sg_options.recursion_depths = annotations_.recursion_depths;
  }

  // One pool per analysis; every parallel schedule in the passes is
  // deterministic, so the worker count never changes computed bounds.
  ThreadPool pool(options.threads > 1 ? static_cast<unsigned>(options.threads) : 1);
  ctx.pool = pool.workers() > 1 ? &pool : nullptr;

  // One governor per analysis: the budget tracker / cancellation hub
  // every phase and pool worker consults (support/budget.hpp).
  AnalysisGovernor governor(options.budget);
  ctx.governor = &governor;
  pool.set_governor(&governor);

  AnalysisPassManager manager;
  const std::size_t back_half = register_figure1_passes(manager);

  try {
    // Front half (decode + value) with the Figure-1 feedback edge: value
    // analysis resolves indirect branches and triggers a re-decode,
    // bounded by max_decode_rounds.
    for (int round = 0; round < std::max(1, options.max_decode_rounds); ++round) {
      for (std::size_t i = 0; i < back_half; ++i) manager.run_pass(ctx, i);
      if (ctx.program->fully_resolved()) break;
      if (!ctx.absorb_resolved_indirect_targets()) break;
    }
    for (std::size_t i = back_half; i < manager.size(); ++i) manager.run_pass(ctx, i);
  } catch (const std::bad_alloc&) {
    // Classify allocation failure as an analysis-level outcome: the
    // caller (and the CLI error boundary) must never see a raw
    // bad_alloc escape the analyzer.
    throw AnalysisError("analysis ran out of memory");
  }

  WcetReport report = std::move(ctx.report);
  report.degradations = governor.degradations();
  report.degraded = !report.degradations.empty();
  report.budget_checks = governor.budget_checks();
  report.cancel_latency_us = governor.cancel_latency_us();
  report.timings.decode_ms = manager.timing_ms("decode");
  report.timings.value_ms = manager.timing_ms("value");
  report.timings.loop_ms = manager.timing_ms("loop");
  report.timings.cache_ms = manager.timing_ms("cache");
  report.timings.pipeline_ms = manager.timing_ms("pipeline");
  report.timings.path_ms = manager.timing_ms("path");
  report.timings.validate_ms = manager.timing_ms("validate");
  report.timings.total_ms = ms_since(t_total);
  return report;
}

std::string WcetReport::to_string() const {
  std::ostringstream os;
  os << "=== WCET analysis report ===\n";
  if (ok) {
    os << (degraded ? "status: OK (DEGRADED: budget-limited; bounds sound but possibly loose)"
                    : "status: OK")
       << '\n';
    os << "WCET bound: " << wcet_cycles << " cycles\n";
    os << "BCET bound: " << bcet_cycles << " cycles\n";
  } else {
    os << "status: NO BOUND (obstructions present)" << '\n';
  }
  for (const std::string& issue : obstructions) {
    os << "obstruction: " << issue << '\n';
  }
  for (const Degradation& d : degradations) {
    os << "degraded: [" << d.phase << "] " << d.trigger << ": " << d.effect << '\n';
  }
  os << "decoding: " << functions << " functions, " << blocks << " blocks; supergraph "
     << sg_nodes << " nodes / " << sg_edges << " edges\n";
  os << "loops: " << loop_count << " total, " << bounded_loops << " bounded, "
     << irreducible_loops << " irreducible\n";
  for (const LoopInfo& loop : loops) {
    os << "  loop @0x" << std::hex << loop.header_addr << std::dec << " [" << loop.context
       << "]";
    if (loop.irreducible) os << " IRREDUCIBLE";
    if (loop.used_bound) {
      os << " bound=" << *loop.used_bound
         << (loop.analyzed_bound ? " (analysis" : " (annotation");
      if (loop.analyzed_bound && loop.annotated_bound) os << "+annotation";
      os << ")";
    } else {
      os << " UNBOUNDED";
    }
    os << " -- " << loop.detail << '\n';
  }
  os << "cache: ifetch AH/AM/NC/UC = " << cache_stats.fetch_hit << '/'
     << cache_stats.fetch_miss << '/' << cache_stats.fetch_nc << '/'
     << cache_stats.fetch_uncached << "; data AH/AM/NC/UC = " << cache_stats.data_hit
     << '/' << cache_stats.data_miss << '/' << cache_stats.data_nc << '/'
     << cache_stats.data_uncached << "; persistent = " << cache_stats.persistent << '\n';
  os << "cache state sharing: " << cache_joins << " set joins, " << cache_join_skips
     << " pointer-equality skips; " << set_image_allocs << " set-image allocs, peak live "
     << live_set_images_peak << '\n';
  os << "ILP: " << ilp_variables << " variables, " << ilp_constraints << " constraints; "
     << "decomposition: " << ipet_regions << " regions, " << ipet_sub_ilps
     << " sub-ILPs, depth " << ipet_depth << ", " << sese_regions << " SESE regions\n";
  os << "simplex: " << phase1_pivots << " phase-1 + " << phase2_pivots
     << " phase-2 pivots, " << crash_basis_rows << " crash-basis rows\n";
  if (validated) {
    if (paths_explored > 0) {
      os << "validation: oracle " << paths_explored << " paths ("
         << (oracle_complete ? "complete" : "truncated") << "), cost in ["
         << oracle_min_path_cost << ", " << oracle_max_path_cost << "] vs bounds ["
         << bcet_cycles << ", " << wcet_cycles << "] => "
         << (oracle_bracket_ok ? "bracket OK" : "BRACKET VIOLATED") << '\n';
    }
    if (ok) {
      os << "validation: witness "
         << (witness_checked ? (witness_valid ? "valid" : "INVALID")
                             : (witness_available ? "unverified" : "unavailable"));
      if (witness_replayed) {
        os << ", replayed " << measured_cycles << " cycles, tightness (wcet/measured) = "
           << tightness_x1000 / 1000 << '.';
        const std::uint64_t frac = tightness_x1000 % 1000;
        os << (frac < 100 ? "0" : "") << (frac < 10 ? "0" : "") << frac;
      }
      os << '\n';
    }
    if (!validation_skipped.empty()) {
      os << "validation skipped: " << validation_skipped << '\n';
    }
  }
  os << "timings (ms): decode " << timings.decode_ms << ", value " << timings.value_ms
     << ", loop " << timings.loop_ms << ", cache " << timings.cache_ms << ", pipeline "
     << timings.pipeline_ms << ", path " << timings.path_ms << " (ilp "
     << timings.ilp_ms << ")";
  if (validated) os << ", validate " << timings.validate_ms;
  os << ", total " << timings.total_ms << '\n';
  return os.str();
}

} // namespace wcet
