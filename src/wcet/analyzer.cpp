#include "wcet/analyzer.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <sstream>

#include "analysis/loop_bounds.hpp"
#include "analysis/pipeline_analysis.hpp"
#include "analysis/value_analysis.hpp"
#include "cfg/domloop.hpp"
#include "cfg/program.hpp"
#include "cfg/supergraph.hpp"
#include "support/diag.hpp"

namespace wcet {

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

} // namespace

Analyzer::Analyzer(const isa::Image& image, const mem::HwConfig& hw,
                   const std::string& annotation_text)
    : image_(image), hw_(hw) {
  annotations_ = annot::parse_annotations(annotation_text, image);
  // Merge annotation regions into the memory map: annotation regions
  // take precedence, splitting whatever base-map coverage they overlap.
  for (const mem::Region& region : annotations_.regions) {
    hw_.memory.add_region_override(region);
  }
}

WcetReport Analyzer::analyze(const AnalysisOptions& options) const {
  return analyze_entry(image_.entry(), options);
}

WcetReport Analyzer::analyze_function(const std::string& name,
                                      const AnalysisOptions& options) const {
  const isa::Symbol* sym = image_.find_symbol(name);
  if (sym == nullptr) throw InputError("no such function symbol: " + name);
  return analyze_entry(sym->addr, options);
}

WcetReport Analyzer::analyze_entry(std::uint32_t entry,
                                   const AnalysisOptions& options) const {
  WcetReport report;
  const auto t_total = std::chrono::steady_clock::now();

  // ---------------------------------------------------------- decoding
  cfg::ResolutionHints hints;
  if (options.use_annotations) hints.indirect_targets = annotations_.indirect_targets;

  cfg::Supergraph::Options sg_options;
  if (options.use_annotations) {
    sg_options.recursion_depths = annotations_.recursion_depths;
  }

  std::unique_ptr<cfg::Program> program;
  std::unique_ptr<cfg::Supergraph> supergraph;
  std::unique_ptr<cfg::LoopForest> forest;
  std::unique_ptr<cfg::Dominators> dominators;
  std::unique_ptr<analysis::ValueAnalysis> values;

  analysis::ValueAnalysis::Options va_options;
  if (options.use_annotations) va_options.access_facts = annotations_.access_facts;

  // Fixpoint scheduling priorities (reverse-postorder indices), derived
  // once per decode round from the dominator computation's RPO and
  // shared by every iterative phase.
  std::vector<int> schedule;

  double decode_ms = 0;
  double value_ms = 0;
  for (int round = 0; round < std::max(1, options.max_decode_rounds); ++round) {
    auto t = std::chrono::steady_clock::now();
    program = std::make_unique<cfg::Program>(
        cfg::Program::reconstruct(image_, entry, hints));
    supergraph = std::make_unique<cfg::Supergraph>(
        cfg::Supergraph::expand(*program, sg_options));
    forest = std::make_unique<cfg::LoopForest>(*supergraph);
    dominators = std::make_unique<cfg::Dominators>(*supergraph);
    schedule = cfg::rpo_priorities(*supergraph, dominators->rpo());
    decode_ms += ms_since(t);

    t = std::chrono::steady_clock::now();
    values = std::make_unique<analysis::ValueAnalysis>(*supergraph, *forest, hw_.memory,
                                                       va_options, schedule);
    values->run();
    value_ms += ms_since(t);

    if (program->fully_resolved()) break;
    // Feedback edge of Figure 1: value analysis results feed the
    // decoder.
    const auto resolved = values->resolved_indirect_targets();
    bool grew = false;
    for (const auto& [pc, targets] : resolved) {
      auto& known = hints.indirect_targets[pc];
      for (const std::uint32_t target : targets) {
        if (std::find(known.begin(), known.end(), target) == known.end()) {
          known.push_back(target);
          grew = true;
        }
      }
    }
    if (!grew) break;
  }
  report.timings.decode_ms = decode_ms;
  report.timings.value_ms = value_ms;

  report.functions = static_cast<int>(program->functions().size());
  for (const auto& [addr, fn] : program->functions()) {
    report.blocks += static_cast<int>(fn.blocks.size());
  }
  report.sg_nodes = static_cast<int>(supergraph->nodes().size());
  report.sg_edges = static_cast<int>(supergraph->edges().size());

  for (const cfg::DecodeIssue& issue : program->issues()) {
    std::ostringstream os;
    os << "decode: " << issue.message << " at " << image_.describe(issue.pc);
    report.obstructions.push_back(os.str());
  }
  for (const cfg::SupergraphIssue& issue : supergraph->issues()) {
    std::ostringstream os;
    os << "expansion: " << issue.message << " at " << image_.describe(issue.pc);
    report.obstructions.push_back(os.str());
  }

  // ------------------------------------------------------- loop bounds
  auto t = std::chrono::steady_clock::now();
  analysis::LoopBoundAnalysis loop_analysis(*supergraph, *forest, *dominators, *values);
  const std::vector<analysis::LoopBoundResult> loop_results = loop_analysis.run();

  std::map<int, std::uint64_t> merged_bounds;
  report.loop_count = static_cast<int>(forest->loops().size());
  for (const cfg::Loop& loop : forest->loops()) {
    const analysis::LoopBoundResult& lr = loop_results[static_cast<std::size_t>(loop.id)];
    LoopInfo info;
    const cfg::SgNode& header = supergraph->node(loop.header);
    info.header_addr = header.block->begin;
    info.context = supergraph->context_of(loop.header);
    info.irreducible = loop.irreducible;
    info.analyzed_bound = lr.bound;
    info.detail = lr.detail;
    if (lr.irreducible) ++report.irreducible_loops;

    if (options.use_annotations) {
      // An annotation "loop at X" applies to the innermost loop whose
      // body covers X.
      std::optional<std::uint64_t> annotated;
      for (const annot::LoopBoundFact& fact : annotations_.loop_bounds) {
        if (!fact.mode.empty() && fact.mode != options.mode) continue;
        bool covers = false;
        for (const int node_id : loop.nodes) {
          const cfg::CfgBlock& block = *supergraph->node(node_id).block;
          if (fact.addr >= block.begin && fact.addr < block.end) {
            covers = true;
            break;
          }
        }
        if (!covers) continue;
        // Innermost: no child loop also covers the address.
        bool child_covers = false;
        for (const int child : loop.children) {
          for (const int node_id : forest->loop(child).nodes) {
            const cfg::CfgBlock& block = *supergraph->node(node_id).block;
            if (fact.addr >= block.begin && fact.addr < block.end) {
              child_covers = true;
              break;
            }
          }
          if (child_covers) break;
        }
        if (child_covers) continue;
        annotated = annotated ? std::min(*annotated, fact.max_iterations)
                              : fact.max_iterations;
      }
      info.annotated_bound = annotated;
    }

    if (info.analyzed_bound && info.annotated_bound) {
      info.used_bound = std::min(*info.analyzed_bound, *info.annotated_bound);
    } else if (info.analyzed_bound) {
      info.used_bound = info.analyzed_bound;
    } else {
      info.used_bound = info.annotated_bound;
    }
    if (info.used_bound) {
      merged_bounds[loop.id] = *info.used_bound;
      ++report.bounded_loops;
    }
    report.loops.push_back(std::move(info));
  }
  report.timings.loop_ms = ms_since(t);

  // ---------------------------------------------------- cache analysis
  t = std::chrono::steady_clock::now();
  analysis::CacheAnalysis caches(*supergraph, *forest, *values, hw_.memory, hw_.icache,
                                 hw_.dcache, analysis::CacheAnalysis::Schedule::priority,
                                 schedule);
  caches.run();
  report.cache_stats = caches.stats();
  report.timings.cache_ms = ms_since(t);

  // ------------------------------------------------- pipeline analysis
  t = std::chrono::steady_clock::now();
  analysis::PipelineAnalysis pipeline(*supergraph, *values, caches, hw_);
  pipeline.run();
  report.timings.pipeline_ms = ms_since(t);

  // ----------------------------------------------------- path analysis
  t = std::chrono::steady_clock::now();
  analysis::Ipet ipet(*supergraph, *forest, *values, pipeline);
  analysis::IpetOptions ipet_options;
  ipet_options.loop_bounds = merged_bounds;
  if (options.use_annotations) {
    for (const annot::FlowCapFact& cap : annotations_.flow_caps) {
      if (cap.mode.empty() || cap.mode == options.mode) ipet_options.flow_caps.push_back(cap);
    }
    ipet_options.flow_ratios = annotations_.flow_ratios;
    ipet_options.infeasible_pairs = annotations_.infeasible_pairs;
    ipet_options.excluded_addrs = annotations_.excluded_addrs(options.mode);
  }

  ipet_options.maximize = true;
  const analysis::IpetResult wcet_result = ipet.solve(ipet_options);
  report.ilp_variables = wcet_result.variables;
  report.ilp_constraints = wcet_result.constraints;

  switch (wcet_result.status) {
  case analysis::IpetResult::Status::ok:
    report.wcet_cycles = wcet_result.bound;
    for (const auto& [node, count] : wcet_result.node_counts) {
      report.wcet_block_counts[supergraph->node(node).block->begin] += count;
    }
    break;
  case analysis::IpetResult::Status::missing_loop_bounds:
    for (const int loop_id : wcet_result.loops_missing_bounds) {
      const cfg::Loop& loop = forest->loop(loop_id);
      std::ostringstream os;
      os << "loop bound missing for loop at "
         << image_.describe(supergraph->node(loop.header).block->begin) << " ("
         << supergraph->context_of(loop.header) << "): "
         << report.loops[static_cast<std::size_t>(loop_id)].detail;
      report.obstructions.push_back(os.str());
    }
    break;
  case analysis::IpetResult::Status::infeasible:
    report.obstructions.push_back("path analysis: ILP infeasible (contradictory flow facts?)");
    break;
  case analysis::IpetResult::Status::unbounded:
    report.obstructions.push_back("path analysis: ILP unbounded (missing loop bound?)");
    break;
  case analysis::IpetResult::Status::node_limit:
    report.obstructions.push_back("path analysis: branch & bound node limit reached");
    break;
  }

  if (wcet_result.ok()) {
    ipet_options.maximize = false;
    const analysis::IpetResult bcet_result = ipet.solve(ipet_options);
    if (bcet_result.ok()) report.bcet_cycles = bcet_result.bound;
  }
  report.timings.path_ms = ms_since(t);
  report.timings.total_ms = ms_since(t_total);

  report.ok = wcet_result.ok() && report.obstructions.empty();
  return report;
}

std::string WcetReport::to_string() const {
  std::ostringstream os;
  os << "=== WCET analysis report ===\n";
  os << (ok ? "status: OK" : "status: NO BOUND (obstructions present)") << '\n';
  if (ok) {
    os << "WCET bound: " << wcet_cycles << " cycles\n";
    os << "BCET bound: " << bcet_cycles << " cycles\n";
  }
  for (const std::string& issue : obstructions) {
    os << "obstruction: " << issue << '\n';
  }
  os << "decoding: " << functions << " functions, " << blocks << " blocks; supergraph "
     << sg_nodes << " nodes / " << sg_edges << " edges\n";
  os << "loops: " << loop_count << " total, " << bounded_loops << " bounded, "
     << irreducible_loops << " irreducible\n";
  for (const LoopInfo& loop : loops) {
    os << "  loop @0x" << std::hex << loop.header_addr << std::dec << " [" << loop.context
       << "]";
    if (loop.irreducible) os << " IRREDUCIBLE";
    if (loop.used_bound) {
      os << " bound=" << *loop.used_bound
         << (loop.analyzed_bound ? " (analysis" : " (annotation");
      if (loop.analyzed_bound && loop.annotated_bound) os << "+annotation";
      os << ")";
    } else {
      os << " UNBOUNDED";
    }
    os << " -- " << loop.detail << '\n';
  }
  os << "cache: ifetch AH/AM/NC/UC = " << cache_stats.fetch_hit << '/'
     << cache_stats.fetch_miss << '/' << cache_stats.fetch_nc << '/'
     << cache_stats.fetch_uncached << "; data AH/AM/NC/UC = " << cache_stats.data_hit
     << '/' << cache_stats.data_miss << '/' << cache_stats.data_nc << '/'
     << cache_stats.data_uncached << "; persistent = " << cache_stats.persistent << '\n';
  os << "ILP: " << ilp_variables << " variables, " << ilp_constraints << " constraints\n";
  os << "timings (ms): decode " << timings.decode_ms << ", value " << timings.value_ms
     << ", loop " << timings.loop_ms << ", cache " << timings.cache_ms << ", pipeline "
     << timings.pipeline_ms << ", path " << timings.path_ms << ", total "
     << timings.total_ms << '\n';
  return os.str();
}

} // namespace wcet
