#!/usr/bin/env python3
"""Diff two BENCH_analysis.json files (google-benchmark JSON output).

Usage: diff_bench.py OLD NEW

Prints per-benchmark speedup (old real_time / new real_time) and FAILS
(exit 1) when any shared benchmark's wcet_cycles counter changed: the
computed bounds are a regression oracle — perf work must keep every
bound bit-identical.

Benchmarks that record per-phase timing counters (decode_ms, value_ms,
loop_ms, cache_ms, pipeline_ms, path_ms, ilp_ms — see
bench_analysis_perf.cpp) additionally get a phase-level comparison so a
regression hiding inside an unchanged total stays visible. Phase times
are wall-clock and noisy, so they inform but never fail the diff.
Structural counters (sub_ilps: IPET sub-ILPs per decomposition mode;
cache_joins / cache_join_skips: abstract-cache set joins examined vs.
skipped by COW pointer equality; set_image_allocs /
live_set_images_peak: set-image allocation traffic and high-water mark;
budget_checks: governor checkpoints consulted; degradations:
budget-ledger size, must stay 0 in the unlimited-budget bench;
cancel_latency_us: cancel-request-to-unwind latency, -1 when the run
was never cancelled; phase1_pivots / phase2_pivots: simplex pivots
spent proving feasibility vs. optimizing — network-flow crash bases
keep phase1_pivots at 0 on fact-free workloads; crash_basis_rows:
artificial variables replaced by spanning-tree columns at tableau
construction; sese_regions: sub-function single-entry/single-exit
regions split into their own sub-ILPs) are printed old -> new when
present.

Validation-oracle counters (paths_explored: complete paths costed by
the exhaustive path-exploration oracle; witness_replayed: whether the
ILP witness replayed on the simulator; tightness_x1000: stated WCET
over measured cycles, x1000 — see src/validate) are printed when
present, and tightness is gated: the replay is deterministic, so a
looser ratio means the bound itself loosened.

Four hard gates beyond the oracle:
  * a nonzero `degradations` counter in the new run fails the diff —
    the tracked numbers would describe a degraded analysis;
  * `tightness_x1000` may not grow by more than 5% — a deterministic
    replay measuring the same cycles under a >5% larger bound means
    the analysis lost precision;
  * a benchmark whose baseline recorded a nonzero `tightness_x1000`
    may neither drop the counter nor report 0 — both are exactly the
    states a broken replay leaves behind, and a truthiness check here
    once let them bypass the 5% gate silently;
  * the GUARDED benchmarks' end-to-end time may not regress by more
    than 5% AND 2 ms — the budget/cancellation checkpoints ride the
    hottest loops, and their overhead is part of what this file
    tracks. Both real_time AND cpu_time must cross the threshold to
    fail: the guarded benchmark runs 4 analysis threads, so on a
    loaded or single-core runner its wall clock is dominated by the
    scheduler, not by the code under test — cpu_time regressing with
    it is what distinguishes a real slowdown from oversubscription.
"""
import json
import sys

PHASES = ["decode_ms", "value_ms", "loop_ms", "cache_ms", "pipeline_ms", "path_ms", "ilp_ms"]
COUNTERS = [
    "sub_ilps",
    "sese_regions",
    "phase1_pivots",
    "phase2_pivots",
    "crash_basis_rows",
    "cache_joins",
    "cache_join_skips",
    "set_image_allocs",
    "live_set_images_peak",
    "budget_checks",
    "degradations",
    "cancel_latency_us",
    "paths_explored",
    "witness_replayed",
    "tightness_x1000",
    "serve_requests",
    "fingerprint_hits",
    "dirty_instances",
]

# Allowed growth of tightness_x1000 (WCET over deterministic measured
# cycles) before the diff fails: looser than this means lost precision.
TIGHTNESS_RATIO = 1.05

# Benchmarks whose end-to-end total is guarded against regression:
# both real_time and cpu_time must stay within GUARD_RATIO of the
# baseline (with a GUARD_FLOOR_MS absolute allowance for scheduler
# noise on short runs) — see the docstring for why a single-signal
# guard misfires on loaded runners.
GUARDED = ["BM_analyze_scaling/64"]
GUARD_RATIO = 1.05
GUARD_FLOOR_MS = 2.0


def load(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = b
    return out


def main():
    if len(sys.argv) != 3:
        sys.stderr.write(__doc__)
        return 2
    old, new = load(sys.argv[1]), load(sys.argv[2])
    missing = [name for name in old if name not in new]
    if missing:
        # A tracked benchmark silently disappearing would bypass the
        # oracle gate entirely — treat it as a failure.
        print(f"diff_bench: FAIL — benchmarks missing from new run: {', '.join(missing)}")
        return 1
    shared = [name for name in old if name in new]
    if not shared:
        print("diff_bench: baseline has no benchmarks; nothing to compare")
        return 0
    mismatches = []
    degraded = []
    slow = []
    loosened = []
    lost_tightness = []
    print(f"{'benchmark':<32} {'old ms':>12} {'new ms':>12} {'speedup':>8}  wcet_cycles")
    for name in shared:
        o, n = old[name], new[name]
        scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}
        o_ms = o["real_time"] * scale.get(o.get("time_unit", "ns"), 1e-6)
        n_ms = n["real_time"] * scale.get(n.get("time_unit", "ns"), 1e-6)
        o_cpu = o["cpu_time"] * scale.get(o.get("time_unit", "ns"), 1e-6)
        n_cpu = n["cpu_time"] * scale.get(n.get("time_unit", "ns"), 1e-6)
        speedup = o_ms / n_ms if n_ms > 0 else float("inf")
        if n.get("degradations", 0) != 0:
            degraded.append(name)
        # Explicit `is not None` throughout: `if o_t and n_t` treated a
        # recorded 0 exactly like a missing counter, so a run whose
        # replay silently stopped happening (tightness 0) or stopped
        # being recorded at all sailed past the looseness gate.
        o_t, n_t = o.get("tightness_x1000"), n.get("tightness_x1000")
        if o_t is not None and o_t != 0:
            if n_t is None:
                lost_tightness.append(f"{name} (tightness_x1000 counter dropped)")
            elif n_t == 0:
                lost_tightness.append(f"{name} (tightness_x1000 {int(o_t)} -> 0)")
            elif n_t > o_t * TIGHTNESS_RATIO:
                loosened.append(f"{name} ({int(o_t)} -> {int(n_t)})")
        real_slow = n_ms > o_ms * GUARD_RATIO and n_ms - o_ms > GUARD_FLOOR_MS
        cpu_slow = n_cpu > o_cpu * GUARD_RATIO and n_cpu - o_cpu > GUARD_FLOOR_MS
        if name in GUARDED and real_slow and cpu_slow:
            slow.append(f"{name} (real {o_ms:.3f} -> {n_ms:.3f} ms, "
                        f"cpu {o_cpu:.3f} -> {n_cpu:.3f} ms)")
        o_w, n_w = o.get("wcet_cycles"), n.get("wcet_cycles")
        verdict = ""
        if o_w is not None and n_w is not None:
            verdict = f"{int(n_w)}" if o_w == n_w else f"{int(o_w)} -> {int(n_w)}  ORACLE CHANGED"
            if o_w != n_w:
                mismatches.append(name)
        print(f"{name:<32} {o_ms:>12.3f} {n_ms:>12.3f} {speedup:>7.2f}x  {verdict}")
        for phase in PHASES:
            o_p, n_p = o.get(phase), n.get(phase)
            if o_p is None or n_p is None:
                continue
            ratio = o_p / n_p if n_p > 0 else float("inf")
            flag = "  << slower" if n_p > o_p * 1.25 and n_p - o_p > 1.0 else ""
            print(f"    {phase:<28} {o_p:>12.3f} {n_p:>12.3f} {ratio:>7.2f}x{flag}")
        for counter in COUNTERS:
            o_c, n_c = o.get(counter), n.get(counter)
            if o_c is None or n_c is None:
                continue
            print(f"    {counter:<28} {int(o_c):>12} {int(n_c):>12}")
    if mismatches:
        print(f"\ndiff_bench: FAIL — wcet_cycles oracle changed for: {', '.join(mismatches)}")
        return 1
    if degraded:
        print(f"\ndiff_bench: FAIL — degradations recorded in unlimited-budget run: "
              f"{', '.join(degraded)}")
        return 1
    if lost_tightness:
        print(f"\ndiff_bench: FAIL — tracked tightness_x1000 lost or zeroed "
              f"(the looseness gate would be silently bypassed): "
              f"{'; '.join(lost_tightness)}")
        return 1
    if loosened:
        print(f"\ndiff_bench: FAIL — tightness_x1000 regressed past "
              f"{TIGHTNESS_RATIO:.2f}x (bound loosened vs deterministic replay): "
              f"{'; '.join(loosened)}")
        return 1
    if slow:
        print(f"\ndiff_bench: FAIL — guarded benchmark regressed past "
              f"{GUARD_RATIO:.2f}x + {GUARD_FLOOR_MS} ms: {'; '.join(slow)}")
        return 1
    print("\ndiff_bench: OK — all wcet_cycles oracle values identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
