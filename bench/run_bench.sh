#!/bin/sh
# Build the benchmarks in Release and record the analysis-perf results
# as BENCH_analysis.json at the repo root, so successive PRs have a perf
# trajectory to compare against.
#
#   $ bench/run_bench.sh [extra benchmark args...]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="$repo_root/build-bench"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release -DWCET_BENCH=ON
cmake --build "$build_dir" -j"$(nproc)" --target bench_analysis_perf

"$build_dir/bench_analysis_perf" \
  --benchmark_format=json \
  --benchmark_out="$repo_root/BENCH_analysis.json" \
  --benchmark_out_format=json \
  "$@"

echo "wrote $repo_root/BENCH_analysis.json"
