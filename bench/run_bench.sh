#!/bin/sh
# Build the benchmarks in Release and record the analysis-perf results
# as BENCH_analysis.json at the repo root, so successive PRs have a perf
# trajectory to compare against.
#
# When a previous BENCH_analysis.json exists, the fresh run is diffed
# against it (bench/diff_bench.py): per-arg speedup is printed and the
# script FAILS if any wcet_cycles oracle value changed — computed
# bounds must stay bit-identical across perf work.
#
#   $ bench/run_bench.sh [extra benchmark args...]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="$repo_root/build-bench"
bench_json="$repo_root/BENCH_analysis.json"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release -DWCET_BENCH=ON
cmake --build "$build_dir" -j"$(nproc)" --target bench_analysis_perf

prev_json=""
if [ -f "$bench_json" ]; then
  prev_json="$bench_json.prev"
  cp "$bench_json" "$prev_json"
fi

"$build_dir/bench_analysis_perf" \
  --benchmark_format=json \
  --benchmark_out="$bench_json" \
  --benchmark_out_format=json \
  "$@"

echo "wrote $bench_json"

# The COW cache-state and validation-oracle counters are part of the
# tracked perf surface: a fresh run that silently stops recording them
# would hide state-sharing or bound-tightness regressions from every
# future diff (diff_bench.py fails when tightness_x1000 grows >5%) —
# fail loudly instead.
for counter in cache_joins cache_join_skips set_image_allocs live_set_images_peak \
               budget_checks degradations cancel_latency_us \
               paths_explored witness_replayed tightness_x1000 \
               serve_requests fingerprint_hits dirty_instances; do
  if ! grep -q "\"$counter\"" "$bench_json"; then
    echo "error: counter '$counter' missing from fresh bench run" >&2
    if [ -n "$prev_json" ]; then
      mv "$bench_json" "$bench_json.rejected"
      mv "$prev_json" "$bench_json"
      echo "restored $bench_json, counter-less run at $bench_json.rejected" >&2
    fi
    exit 4
  fi
done

# The tracked run holds no budget, so the governor must never trip: a
# nonzero degradations counter would mean the recorded wcet_cycles and
# timings describe a *degraded* analysis, poisoning every future diff.
if grep '"degradations"' "$bench_json" | grep -Evq '"degradations": 0(\.0*)?(e[+-]?[0-9]+)?,?$'; then
  echo "error: nonzero degradations counter in the unlimited-budget bench run" >&2
  grep '"degradations"' "$bench_json" >&2
  if [ -n "$prev_json" ]; then
    mv "$bench_json" "$bench_json.rejected"
    mv "$prev_json" "$bench_json"
    echo "restored $bench_json, degraded run at $bench_json.rejected" >&2
  fi
  exit 5
fi

if [ -n "$prev_json" ]; then
  if command -v python3 > /dev/null 2>&1; then
    status=0
    python3 "$repo_root/bench/diff_bench.py" "$prev_json" "$bench_json" || status=$?
  else
    # A silently skipped diff would let an oracle regression through —
    # fail loudly instead.
    echo "error: python3 not found; the wcet_cycles oracle diff cannot run" >&2
    status=3
  fi
  if [ "$status" -ne 0 ]; then
    # Keep the committed oracle intact so the failure reproduces on
    # re-runs; park the regressed results next to it for inspection.
    mv "$bench_json" "$bench_json.rejected"
    mv "$prev_json" "$bench_json"
    echo "oracle diff failed: restored $bench_json, regressed run at $bench_json.rejected" >&2
  else
    rm -f "$prev_json"
  fi
  exit "$status"
fi
