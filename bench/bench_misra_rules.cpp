// R13.4–R20.7 — quantified version of the paper's Section 4.2: for each
// of the nine discussed MISRA-C:2004 rules, a violating and a conforming
// program variant go through the full tool chain. The table reports what
// the paper argues qualitatively:
//   - does the checker flag the violation,
//   - does the analyzer bound the task without annotations,
//   - the WCET bound (with a rescue annotation where analysis fails),
//   - the simulator's observed cycles (bound soundness cross-check).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "core/toolkit.hpp"
#include "mcc/runtime.hpp"

namespace {

using namespace wcet;

struct RuleExperiment {
  const char* rule;
  const char* effect; // the paper's predicted analysis effect
  const char* violating;
  const char* conforming;
  const char* rescue_annotations; // for the violating variant
};

const RuleExperiment experiments[] = {
    {"13.4", "float loop condition defeats loop-bound detection",
     R"(int main(void) {
  float f; int n = 0;
  for (f = 0.0f; f < 16.0f; f = f + 1.0f) { n += 3; }
  return n;
})",
     R"(int main(void) {
  int i; int n = 0;
  for (i = 0; i < 16; i++) { n += 3; }
  return n;
})",
     "" /* filled dynamically: loop headers */},
    {"13.6", "counter modified in body defeats the counter pattern",
     R"(int main(void) {
  int i; int n = 0;
  for (i = 0; i < 16; i++) { n += i; if (n > 1000) { i = i + 1; } }
  return n;
})",
     R"(int main(void) {
  int i; int n = 0;
  for (i = 0; i < 16; i++) { n += i; }
  return n;
})",
     ""},
    {"14.1", "unreachable code widens the over-approximation",
     R"(int check(int x) {
  return x * 2;
  x = x + 100;   /* unreachable */
  return x;
}
int main(void) { return check(21); })",
     R"(int check(int x) { return x * 2; }
int main(void) { return check(21); })",
     ""},
    {"14.4", "goto builds an irreducible loop: no auto bounds, no unrolling",
     R"(int flag = 1;
int main(void) {
  int i = 0; int s = 0;
  if (flag) goto mid;
head:
  s += 2;
mid:
  s += i;
  i++;
  if (i < 12) goto head;
  return s;
})",
     R"(int main(void) {
  int i; int s = 0;
  for (i = 0; i < 12; i++) { s += i + 2; }
  return s;
})",
     ""},
    {"14.5", "continue only adds back edges (style rule; analysis unharmed)",
     R"(int main(void) {
  int i; int s = 0;
  for (i = 0; i < 16; i++) { if ((i & 1) == 0) continue; s += i; }
  return s;
})",
     R"(int main(void) {
  int i; int s = 0;
  for (i = 0; i < 16; i++) { if ((i & 1) != 0) { s += i; } }
  return s;
})",
     ""},
    {"16.1", "varargs imply data-dependent loops over the argument list",
     R"(int sum_all(int count, ...) {
  int* ap = __va_start();
  int s = 0; int i;
  for (i = 0; i < count; i++) { s += ap[i]; }
  return s;
}
int main(void) { return sum_all(4, 1, 2, 3, 4); })",
     R"(int sum4(int a, int b, int c, int d) { return a + b + c + d; }
int main(void) { return sum4(1, 2, 3, 4); })",
     ""},
    {"16.2", "recursion needs depth annotations (call-graph cycle)",
     R"(int fac(int n) {
  if (n < 2) { return 1; }
  return n * fac(n - 1);
}
int main(void) { return fac(6); })",
     R"(int fac(int n) {
  int r = 1; int i;
  for (i = 2; i <= n; i++) { r *= i; }
  return r;
}
int main(void) { return fac(6); })",
     "recursion \"fac\" max 6\n"},
    {"20.4", "heap addresses are statically unknown: memory/cache damage",
     R"(int main(void) {
  int* buf = (int*)malloc(32);
  int i; int s = 0;
  for (i = 0; i < 8; i++) { buf[i] = i; }
  for (i = 0; i < 8; i++) { s += buf[i]; }
  return s;
})",
     R"(int buf[8];
int main(void) {
  int i; int s = 0;
  for (i = 0; i < 8; i++) { buf[i] = i; }
  for (i = 0; i < 8; i++) { s += buf[i]; }
  return s;
})",
     ""},
    {"20.7", "setjmp/longjmp create irreducible control flow",
     R"(int env[16];
int step(int i) { if (i >= 10) { longjmp(env, i); } return i + 1; }
int main(void) {
  int i = 0;
  int r = setjmp(env);
  if (r != 0) { return r; }
  for (;;) { i = step(i); }
})",
     R"(int step(int acc) { return acc + 3; }
int main(void) {
  int i; int acc = 0;
  for (i = 0; i < 10; i++) { acc = step(acc); }
  return acc;
})",
     ""},
};

struct Outcome {
  bool flagged = false;
  bool auto_bounded = false;
  std::uint64_t wcet = 0;
  std::uint64_t observed = 0;
  bool sound = true;
  bool used_rescue = false;
  int irreducible = 0;
};

Outcome evaluate(const std::string& source, const char* rule,
                 const std::string& rescue) {
  Outcome outcome;
  const mcc::CompileResult built = mcc::compile_program(source);
  for (const auto& v : built.violations) {
    if (v.rule == rule) outcome.flagged = true;
  }
  const mem::HwConfig hw = mem::typical_hw();
  Analyzer plain(built.image, hw);
  WcetReport report = plain.analyze();
  outcome.auto_bounded = report.ok;
  outcome.irreducible = report.irreducible_loops;
  if (!report.ok) {
    // Rescue: user-supplied annotation plus loop bounds at every
    // unbounded header (what an aiT user would add).
    std::ostringstream annotations;
    annotations << rescue;
    for (const LoopInfo& loop : report.loops) {
      if (!loop.used_bound) annotations << "loop at " << loop.header_addr << " max 64\n";
    }
    Analyzer rescued(built.image, hw, annotations.str());
    report = rescued.analyze();
    outcome.used_rescue = true;
  }
  if (report.ok) {
    outcome.wcet = report.wcet_cycles;
    sim::Simulator sim(built.image, hw);
    const auto run = sim.run();
    outcome.observed = run.cycles;
    outcome.sound = run.completed() && run.cycles <= report.wcet_cycles;
  }
  return outcome;
}

void run_rule_study() {
  std::printf("\n=== Section 4.2 study: MISRA-C:2004 rules vs. WCET analyzability "
              "===\n\n");
  std::printf("%-6s %-10s | %-8s %-10s %-6s %-9s %-9s %-6s | %s\n", "rule", "variant",
              "flagged", "auto-bound", "irred", "WCET", "observed", "sound", "effect");
  std::printf("---------------------------------------------------------------------"
              "-----------------------------------\n");
  for (const RuleExperiment& e : experiments) {
    const Outcome bad = evaluate(e.violating, e.rule, e.rescue_annotations);
    const Outcome good = evaluate(e.conforming, e.rule, "");
    const auto print = [&](const char* variant, const Outcome& o) {
      std::printf("%-6s %-10s | %-8s %-10s %-6d %-9llu %-9llu %-6s | %s\n", e.rule,
                  variant, o.flagged ? "yes" : "no",
                  o.auto_bounded ? "yes" : (o.used_rescue ? "ANNOT" : "no"),
                  o.irreducible, static_cast<unsigned long long>(o.wcet),
                  static_cast<unsigned long long>(o.observed),
                  o.wcet == 0 ? "-" : (o.sound ? "yes" : "NO!"),
                  variant[0] == 'v' ? e.effect : "");
    };
    print("violating", bad);
    print("conforming", good);
  }
  std::printf("\nReading: 'auto-bound = ANNOT' means the analyzer refused a bound "
              "until design-level annotations were added — the paper's tier-one "
              "challenge made measurable. Rule 14.5 (continue) shows no analysis "
              "penalty, matching the paper's correction of Wenzel et al. Rule 16.1 "
              "auto-bounds here only because the call site is static (count = 4 "
              "propagates through the stack); with environment-provided counts the "
              "argument-list loop is unboundable. Rule 20.7's violating task has no "
              "statically reachable exit at all (the longjmp warp), so even "
              "annotations cannot rescue it.\n");
}

void BM_full_toolchain_conforming(benchmark::State& state) {
  for (auto _ : state) {
    const auto built = mcc::compile_program(experiments[1].conforming);
    const Analyzer analyzer(built.image, mem::typical_hw());
    benchmark::DoNotOptimize(analyzer.analyze().wcet_cycles);
  }
}
BENCHMARK(BM_full_toolchain_conforming);

} // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  run_rule_study();
  return 0;
}
