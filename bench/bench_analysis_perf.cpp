// PERF — the paper's Section 3 "efficiency" requirement: analyzer phase
// runtimes as the analyzed program grows (loop nests and call trees of
// increasing size), plus simulator throughput.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>

#include "core/toolkit.hpp"
#include "mcc/runtime.hpp"
#include "serve/analysis_server.hpp"

namespace {

using namespace wcet;

std::string synthetic_program(int functions, int loops_per_function) {
  std::ostringstream os;
  os << "int data[16] = {1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16};\n";
  for (int f = 0; f < functions; ++f) {
    os << "int work" << f << "(int x) {\n  int s = x;\n";
    for (int l = 0; l < loops_per_function; ++l) {
      os << "  { int i" << l << "; for (i" << l << " = 0; i" << l << " < "
         << (4 + (l % 5)) << "; i" << l << "++) { s += data[(s + i" << l
         << ") & 15]; } }\n";
    }
    os << "  return s;\n}\n";
  }
  os << "int main(void) {\n  int total = 0;\n";
  for (int f = 0; f < functions; ++f) os << "  total += work" << f << "(total);\n";
  os << "  return total;\n}\n";
  return os.str();
}

// The tracked macro benchmark. Runs with the thread pool enabled
// (4 workers); the per-instance schedules are deterministic, so the
// wcet_cycles regression oracle is identical to a sequential run —
// BM_analyze_scaling_seq below is the proof point in every report.
void BM_analyze_scaling(benchmark::State& state) {
  const int functions = static_cast<int>(state.range(0));
  const auto built = mcc::compile_program(synthetic_program(functions, 3));
  AnalysisOptions options;
  options.threads = 4;
  std::uint64_t bound = 0;
  PhaseTimings timings;
  int sub_ilps = 0;
  WcetReport last;
  for (auto _ : state) {
    const Analyzer analyzer(built.image, mem::typical_hw());
    WcetReport report = analyzer.analyze(options);
    bound = report.wcet_cycles;
    timings = report.timings;
    sub_ilps = report.ipet_sub_ilps;
    last = std::move(report);
    benchmark::DoNotOptimize(bound);
  }
  state.counters["wcet_cycles"] = static_cast<double>(bound);
  state.counters["image_bytes"] =
      static_cast<double>(built.image.sections()[0].bytes.size());
  // Per-phase wall-clock of the last iteration: recorded into
  // BENCH_analysis.json so bench/diff_bench.py can surface phase-level
  // regressions (a hot path getting slower inside an unchanged total),
  // not just end-to-end time.
  state.counters["decode_ms"] = timings.decode_ms;
  state.counters["value_ms"] = timings.value_ms;
  state.counters["loop_ms"] = timings.loop_ms;
  state.counters["cache_ms"] = timings.cache_ms;
  state.counters["pipeline_ms"] = timings.pipeline_ms;
  state.counters["path_ms"] = timings.path_ms;
  state.counters["ilp_ms"] = timings.ilp_ms;
  state.counters["sub_ilps"] = static_cast<double>(sub_ilps);
  state.counters["total_ms"] = timings.total_ms;
  // COW cache-state telemetry of the last iteration's cache pass
  // (wcet/analyzer.hpp): set-level joins examined vs. skipped by
  // pointer equality, plus set-image allocation/peak-live counts —
  // the structural signals behind cache_ms (run_bench.sh fails when a
  // fresh run stops recording them).
  state.counters["cache_joins"] = static_cast<double>(last.cache_joins);
  state.counters["cache_join_skips"] = static_cast<double>(last.cache_join_skips);
  state.counters["set_image_allocs"] = static_cast<double>(last.set_image_allocs);
  state.counters["live_set_images_peak"] = static_cast<double>(last.live_set_images_peak);
  // Budget-governor telemetry (wcet/analyzer.hpp): checkpoints
  // consulted, and the degradation-ledger size — which must stay 0 in
  // this unlimited-budget run (run_bench.sh fails otherwise: a tripped
  // governor here would mean the tracked numbers are no longer the
  // exact analysis).
  state.counters["budget_checks"] = static_cast<double>(last.budget_checks);
  state.counters["degradations"] = static_cast<double>(last.degradations.size());
  state.counters["cancel_latency_us"] = static_cast<double>(last.cancel_latency_us);
  // Simplex phase split (wcet/analyzer.hpp): crash bases must keep
  // phase1_pivots at zero on this fact-free workload — a nonzero value
  // means the network-flow seeding regressed into phase-1 work.
  state.counters["phase1_pivots"] = static_cast<double>(last.phase1_pivots);
  state.counters["phase2_pivots"] = static_cast<double>(last.phase2_pivots);
  state.counters["crash_basis_rows"] = static_cast<double>(last.crash_basis_rows);
  state.counters["sese_regions"] = static_cast<double>(last.sese_regions);
  // Validation-oracle telemetry from one untimed validated run
  // (AnalysisOptions::validate): oracle path count, whether the witness
  // replayed on the simulator, and the tightness ratio of the stated
  // WCET against the measured cycles. The replay and the oracle budgets
  // are deterministic, so tightness_x1000 is a tracked number —
  // bench/diff_bench.py fails the diff when it loosens by >5%.
  {
    AnalysisOptions validated = options;
    validated.validate = true;
    validated.validate_max_paths = 4000;
    validated.validate_max_steps = 400'000;
    const Analyzer analyzer(built.image, mem::typical_hw());
    const WcetReport vr = analyzer.analyze(validated);
    state.counters["paths_explored"] = static_cast<double>(vr.paths_explored);
    state.counters["witness_replayed"] = vr.witness_replayed ? 1.0 : 0.0;
    state.counters["tightness_x1000"] = static_cast<double>(vr.tightness_x1000);
  }
}
BENCHMARK(BM_analyze_scaling)->Arg(1)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_analyze_scaling_seq(benchmark::State& state) {
  const int functions = static_cast<int>(state.range(0));
  const auto built = mcc::compile_program(synthetic_program(functions, 3));
  std::uint64_t bound = 0;
  for (auto _ : state) {
    const Analyzer analyzer(built.image, mem::typical_hw());
    const WcetReport report = analyzer.analyze();
    bound = report.wcet_cycles;
    benchmark::DoNotOptimize(bound);
  }
  state.counters["wcet_cycles"] = static_cast<double>(bound);
}
BENCHMARK(BM_analyze_scaling_seq)->Arg(16)->Arg(64);

// Path analysis per IPET decomposition mode on the 64-function call
// tree: monolithic (Arg 0), flat (Arg 1), recursive (Arg 2). Records
// ilp_ms and the sub-ILP count per mode; the wcet_cycles counter
// doubles as a cross-mode oracle — the diff fails if any mode ever
// computes a different bound.
void BM_path_decomposition(benchmark::State& state) {
  const auto built = mcc::compile_program(synthetic_program(64, 3));
  AnalysisOptions options;
  options.threads = 4;
  switch (state.range(0)) {
  case 0: options.decomposition = analysis::IpetDecomposition::monolithic; break;
  case 1: options.decomposition = analysis::IpetDecomposition::flat; break;
  default: options.decomposition = analysis::IpetDecomposition::recursive; break;
  }
  std::uint64_t bound = 0;
  PhaseTimings timings;
  int sub_ilps = 0;
  std::uint64_t phase1 = 0;
  std::uint64_t phase2 = 0;
  for (auto _ : state) {
    const Analyzer analyzer(built.image, mem::typical_hw());
    const WcetReport report = analyzer.analyze(options);
    bound = report.wcet_cycles;
    timings = report.timings;
    sub_ilps = report.ipet_sub_ilps;
    phase1 = report.phase1_pivots;
    phase2 = report.phase2_pivots;
    benchmark::DoNotOptimize(bound);
  }
  state.counters["wcet_cycles"] = static_cast<double>(bound);
  state.counters["path_ms"] = timings.path_ms;
  state.counters["ilp_ms"] = timings.ilp_ms;
  state.counters["sub_ilps"] = static_cast<double>(sub_ilps);
  state.counters["phase1_pivots"] = static_cast<double>(phase1);
  state.counters["phase2_pivots"] = static_cast<double>(phase2);
}
BENCHMARK(BM_path_decomposition)->Arg(0)->Arg(1)->Arg(2);

// Tracked incremental macro benchmark (src/serve): alternate a base
// image and a 1-function edit of it against a persistent
// AnalysisServer. The priming submissions outside the timed loop pay
// the cold run and the warm 1-dirty-instance re-analysis; the timed
// steady state is the serve path itself (request fingerprint + report
// cache), which is what a daemon actually amortizes per submission.
// dirty_instances records the primed warm edit's fingerprint verdict —
// exactly one instance (work0) may be dirty.
void BM_incremental_reanalyze(benchmark::State& state) {
  const int functions = static_cast<int>(state.range(0));
  const std::string base_src = synthetic_program(functions, 3);
  std::string edited_src = base_src;
  // work0's first loop bound 4 -> 5: an immediate-only edit, so the
  // code layout (and the supergraph structure) is unchanged.
  edited_src.replace(edited_src.find("i0 < 4"), 6, "i0 < 5");
  const auto base = mcc::compile_program(base_src);
  const auto edited = mcc::compile_program(edited_src);

  serve::ServeOptions options;
  options.analysis.threads = 4;
  serve::AnalysisServer server(mem::typical_hw(), options);
  const std::uint64_t cold_bound = server.submit(base.image).wcet_cycles;
  const WcetReport primed = server.submit(edited.image);
  benchmark::DoNotOptimize(cold_bound);

  bool flip = false;
  std::uint64_t bound = 0;
  for (auto _ : state) {
    bound = server.submit(flip ? base.image : edited.image).wcet_cycles;
    flip = !flip;
    benchmark::DoNotOptimize(bound);
  }

  // Re-submit the edited image once outside the loop so the tracked
  // oracle value never depends on the iteration count's parity.
  const WcetReport last = server.submit(edited.image);
  state.counters["wcet_cycles"] = static_cast<double>(last.wcet_cycles);
  state.counters["serve_requests"] = static_cast<double>(server.stats().requests);
  state.counters["fingerprint_hits"] =
      static_cast<double>(server.stats().fingerprint_hits);
  state.counters["dirty_instances"] = static_cast<double>(primed.serve_dirty_instances);
  state.counters["degradations"] = static_cast<double>(last.degradations.size());
}
BENCHMARK(BM_incremental_reanalyze)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_compile_scaling(benchmark::State& state) {
  const std::string source = synthetic_program(static_cast<int>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mcc::compile_program(source).image.entry());
  }
}
BENCHMARK(BM_compile_scaling)->Arg(4)->Arg(16);

// Cooperative-cancellation latency on the big workload: fire a cancel
// token a few ms into the Arg(64) analysis and measure request ->
// unwind. Checkpoints sit on every worklist pop / pivot batch / B&B
// expansion, so the tracked worst case should stay far under the 50 ms
// product target.
void BM_cancel_latency(benchmark::State& state) {
  const auto built = mcc::compile_program(synthetic_program(64, 3));
  const mem::HwConfig hw = mem::typical_hw();
  std::int64_t worst_us = 0;
  for (auto _ : state) {
    CancelToken token;
    AnalysisOptions options;
    options.threads = 4;
    options.budget.cancel = &token;
    const Analyzer analyzer(built.image, hw);
    std::thread firer([&token] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      token.cancel();
    });
    bool cancelled = false;
    try {
      benchmark::DoNotOptimize(analyzer.analyze(options).wcet_cycles);
    } catch (const CancelledError&) {
      cancelled = true;
    }
    firer.join();
    if (cancelled) {
      const std::int64_t latency_us =
          (CancelToken::now_ns() - token.request_ns()) / 1000;
      worst_us = std::max(worst_us, latency_us);
    }
  }
  state.counters["cancel_latency_us"] = static_cast<double>(worst_us);
}
BENCHMARK(BM_cancel_latency)->Unit(benchmark::kMillisecond);

void BM_simulator_throughput(benchmark::State& state) {
  const auto built = mcc::compile_program(synthetic_program(8, 3));
  const mem::HwConfig hw = mem::typical_hw();
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    sim::Simulator sim(built.image, hw);
    const auto run = sim.run();
    instructions += run.instructions;
    benchmark::DoNotOptimize(run.cycles);
  }
  state.counters["insts_per_s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_simulator_throughput);

void print_phase_breakdown() {
  std::printf("\n=== PERF: phase-time breakdown on the 16-function workload ===\n\n");
  const auto built = mcc::compile_program(synthetic_program(16, 3));
  const Analyzer analyzer(built.image, mem::typical_hw());
  const WcetReport report = analyzer.analyze();
  std::printf("%s\n", report.to_string().c_str());
}

} // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_phase_breakdown();
  return 0;
}
